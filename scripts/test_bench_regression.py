#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py on synthetic benchmark JSON:
median extraction (raw and aggregate forms), machine-speed normalization,
regression detection, and the multi-pair gate.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, _HERE)

import check_bench_regression as cbr  # noqa: E402


def raw_doc(times_by_name):
    """Raw-form benchmark doc: name -> list of repetition real_times."""
    return {"benchmarks": [
        {"name": name, "real_time": t, "run_type": "iteration"}
        for name, times in times_by_name.items() for t in times
    ]}


def aggregate_doc(medians_by_name):
    return {"benchmarks": [
        {"run_name": name, "real_time": t, "run_type": "aggregate",
         "aggregate_name": agg}
        for name, t in medians_by_name.items()
        for agg in ("median", "mean")
    ]}


class Tests(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = self._tmp.name
        self.addCleanup(self._tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.dir, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def test_raw_medians(self):
        path = self.write("r.json", raw_doc({"A": [10.0, 30.0, 20.0]}))
        self.assertEqual(cbr.load_medians(path), {"A": 20.0})

    def test_aggregate_medians_win(self):
        doc = aggregate_doc({"A": 15.0})
        doc["benchmarks"].append(
            {"name": "A", "real_time": 99.0, "run_type": "iteration"})
        path = self.write("a.json", doc)
        self.assertEqual(cbr.load_medians(path), {"A": 15.0})

    def test_identical_is_clean(self):
        b = self.write("b.json", raw_doc({"A": [100.0], "B": [200.0]}))
        c = self.write("c.json", raw_doc({"A": [100.0], "B": [200.0]}))
        self.assertEqual(cbr.main([b, c]), 0)

    def test_uniform_slowdown_is_machine_speed(self):
        """A slower machine moves every ratio together: not a regression."""
        b = self.write("b.json",
                       raw_doc({"A": [100.0], "B": [200.0], "C": [50.0]}))
        c = self.write("c.json",
                       raw_doc({"A": [300.0], "B": [600.0], "C": [150.0]}))
        self.assertEqual(cbr.main([b, c]), 0)

    def test_single_bench_regression_detected(self):
        """One bench 10x slower while the rest hold: flagged."""
        b = self.write("b.json",
                       raw_doc({"A": [100.0], "B": [200.0], "C": [50.0]}))
        c = self.write("c.json",
                       raw_doc({"A": [1000.0], "B": [200.0], "C": [50.0]}))
        self.assertEqual(cbr.main([b, c]), 1)

    def test_no_common_benches_is_usage_error(self):
        b = self.write("b.json", raw_doc({"A": [100.0]}))
        c = self.write("c.json", raw_doc({"Z": [100.0]}))
        self.assertEqual(cbr.main([b, c]), 2)

    def test_calibration_bench_pins_factor(self):
        # B regresses 4x but --calibrate A (which holds) still exposes it.
        b = self.write("b.json", raw_doc({"A": [100.0], "B": [100.0]}))
        c = self.write("c.json", raw_doc({"A": [100.0], "B": [400.0]}))
        self.assertEqual(cbr.main([b, c, "--calibrate", "A"]), 1)
        self.assertEqual(
            cbr.main([b, c, "--calibrate", "MISSING"]), 2)

    def test_multi_pair_worst_status_wins(self):
        b1 = self.write("b1.json", raw_doc({"A": [100.0], "B": [50.0]}))
        c1 = self.write("c1.json", raw_doc({"A": [100.0], "B": [50.0]}))
        b2 = self.write("b2.json", raw_doc({"X": [10.0], "Y": [10.0]}))
        c2 = self.write("c2.json", raw_doc({"X": [10.0], "Y": [100.0]}))
        self.assertEqual(cbr.main(["--pair", b1, c1, "--pair", b2, c2]), 1)
        self.assertEqual(cbr.main(["--pair", b1, c1]), 0)

    def test_positional_and_pair_compose(self):
        b = self.write("b.json", raw_doc({"A": [100.0]}))
        c = self.write("c.json", raw_doc({"A": [100.0]}))
        self.assertEqual(cbr.main([b, c, "--pair", b, c]), 0)

    def test_missing_positional_half_is_usage_error(self):
        b = self.write("b.json", raw_doc({"A": [100.0]}))
        self.assertEqual(cbr.main([b]), 2)
        self.assertEqual(cbr.main([]), 2)


if __name__ == "__main__":
    unittest.main(verbosity=2)
