#!/usr/bin/env python3
"""Gate google-benchmark results against a checked-in baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json \
        [--tolerance 1.5] [--calibrate NAME]

Compares the median real_time of every benchmark present in both files and
fails (exit 1) when any current median exceeds baseline * speed_factor *
tolerance. The speed factor defaults to the *median* of the per-bench
current/baseline ratios: CI runners and the machine that recorded the
baseline differ in absolute speed, and a machine-speed difference moves
every ratio together while a real regression moves only its own bench —
so normalizing by the median ratio cancels the former and flags the
latter. (--calibrate NAME pins the factor to one bench instead; the
median is the robust default.) Tolerance defaults to 1.5x — wide enough
for scheduler noise, narrow enough to catch a real slowdown in the
labeling kernel or the incremental/sharded paths.

Reads both the aggregate form (--benchmark_report_aggregates_only=true,
entries tagged aggregate_name == "median") and the raw form (medians are
computed here across repetitions of the same name).
"""

import argparse
import json
import statistics
import sys


def load_medians(path):
    """name -> median real_time (ns unless the file says otherwise)."""
    with open(path) as f:
        doc = json.load(f)
    aggregates = {}
    raw = {}
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == "median":
                aggregates[entry["run_name"]] = float(entry["real_time"])
        else:
            raw.setdefault(entry["name"], []).append(float(entry["real_time"]))
    if aggregates:
        return aggregates
    return {name: statistics.median(times) for name, times in raw.items()}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=1.5,
                        help="allowed slowdown factor after calibration")
    parser.add_argument("--calibrate", default="",
                        help="pin the speed factor to this benchmark "
                             "(default: median of per-bench ratios)")
    args = parser.parse_args()

    baseline = load_medians(args.baseline)
    current = load_medians(args.current)
    common = sorted(set(baseline) & set(current))
    if not common:
        print("error: no benchmarks common to baseline and current run",
              file=sys.stderr)
        return 2

    if args.calibrate:
        if args.calibrate not in baseline or args.calibrate not in current:
            print(f"error: calibration bench {args.calibrate!r} missing",
                  file=sys.stderr)
            return 2
        factor = current[args.calibrate] / baseline[args.calibrate]
        print(f"machine speed factor ({args.calibrate}): {factor:.3f}")
    else:
        factor = statistics.median(
            current[name] / baseline[name] for name in common)
        print(f"machine speed factor (median of {len(common)} ratios): "
              f"{factor:.3f}")

    regressions = []
    width = max(len(name) for name in common)
    for name in common:
        allowed = baseline[name] * factor * args.tolerance
        ratio = current[name] / (baseline[name] * factor)
        status = "ok"
        if current[name] > allowed:
            status = "REGRESSION"
            regressions.append(name)
        print(f"{name:<{width}}  baseline {baseline[name]:>14.0f}  "
              f"current {current[name]:>14.0f}  x{ratio:5.2f}  {status}")

    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"note: {len(missing)} baseline bench(es) absent from the "
              f"current run: {', '.join(missing)}")
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.tolerance:.2f}x: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    print(f"\nall {len(common)} benches within {args.tolerance:.2f}x "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
