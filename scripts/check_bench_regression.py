#!/usr/bin/env python3
"""Gate google-benchmark results against checked-in baselines.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [options]
    check_bench_regression.py --pair B1.json C1.json --pair B2.json C2.json \
        [options]

Compares the median real_time of every benchmark present in both files of
a pair and fails (exit 1) when any current median exceeds baseline *
speed_factor * tolerance. The speed factor defaults to the *median* of the
per-bench current/baseline ratios: CI runners and the machine that
recorded the baseline differ in absolute speed, and a machine-speed
difference moves every ratio together while a real regression moves only
its own bench — so normalizing by the median ratio cancels the former and
flags the latter. (--calibrate NAME pins the factor to one bench instead;
the median is the robust default.) Tolerance defaults to 1.5x — wide
enough for scheduler noise, narrow enough to catch a real slowdown in the
labeling kernel or the incremental/sharded paths.

Several baseline/current pairs gate in one invocation via repeated
--pair: each pair is normalized independently (the labeling and streaming
suites have different bench families and may have been recorded on
different machines), and the run fails if any pair regresses.

Reads both the aggregate form (--benchmark_report_aggregates_only=true,
entries tagged aggregate_name == "median") and the raw form (medians are
computed here across repetitions of the same name).
"""

import argparse
import json
import statistics
import sys


def load_medians(path):
    """name -> median real_time (ns unless the file says otherwise)."""
    with open(path) as f:
        doc = json.load(f)
    aggregates = {}
    raw = {}
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == "median":
                aggregates[entry["run_name"]] = float(entry["real_time"])
        else:
            raw.setdefault(entry["name"], []).append(float(entry["real_time"]))
    if aggregates:
        return aggregates
    return {name: statistics.median(times) for name, times in raw.items()}


def check_pair(baseline_path, current_path, tolerance, calibrate):
    """Gates one baseline/current pair. Returns 0 ok, 1 regression, 2 error."""
    baseline = load_medians(baseline_path)
    current = load_medians(current_path)
    common = sorted(set(baseline) & set(current))
    print(f"== {baseline_path} vs {current_path}")
    if not common:
        print("error: no benchmarks common to baseline and current run",
              file=sys.stderr)
        return 2

    if calibrate:
        if calibrate not in baseline or calibrate not in current:
            print(f"error: calibration bench {calibrate!r} missing",
                  file=sys.stderr)
            return 2
        factor = current[calibrate] / baseline[calibrate]
        print(f"machine speed factor ({calibrate}): {factor:.3f}")
    else:
        factor = statistics.median(
            current[name] / baseline[name] for name in common)
        print(f"machine speed factor (median of {len(common)} ratios): "
              f"{factor:.3f}")

    regressions = []
    width = max(len(name) for name in common)
    for name in common:
        allowed = baseline[name] * factor * tolerance
        ratio = current[name] / (baseline[name] * factor)
        status = "ok"
        if current[name] > allowed:
            status = "REGRESSION"
            regressions.append(name)
        print(f"{name:<{width}}  baseline {baseline[name]:>14.0f}  "
              f"current {current[name]:>14.0f}  x{ratio:5.2f}  {status}")

    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"note: {len(missing)} baseline bench(es) absent from the "
              f"current run: {', '.join(missing)}")
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{tolerance:.2f}x: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    print(f"\nall {len(common)} benches within {tolerance:.2f}x of baseline")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?", default="")
    parser.add_argument("current", nargs="?", default="")
    parser.add_argument("--pair", nargs=2, action="append", default=[],
                        metavar=("BASELINE", "CURRENT"),
                        help="gate this baseline/current pair (repeatable); "
                             "each pair is speed-normalized independently")
    parser.add_argument("--tolerance", type=float, default=1.5,
                        help="allowed slowdown factor after calibration")
    parser.add_argument("--calibrate", default="",
                        help="pin the speed factor to this benchmark "
                             "(default: median of per-bench ratios; applies "
                             "to the positional pair only)")
    args = parser.parse_args(argv)

    pairs = []
    if args.baseline and args.current:
        pairs.append((args.baseline, args.current, args.calibrate))
    elif args.baseline or args.current:
        print("error: positional form needs both BASELINE and CURRENT",
              file=sys.stderr)
        return 2
    pairs.extend((b, c, "") for b, c in args.pair)
    if not pairs:
        parser.print_usage(sys.stderr)
        return 2

    worst = 0
    for i, (baseline_path, current_path, calibrate) in enumerate(pairs):
        if i:
            print()
        worst = max(worst, check_pair(baseline_path, current_path,
                                      args.tolerance, calibrate))
    return worst


if __name__ == "__main__":
    sys.exit(main())
