#!/usr/bin/env python3
"""spr_source: source-handling machinery shared by spr_lint and spr_analyze.

Both tools walk the same C++ tree, blank comments/strings the same way, and
honor the same pragma grammar — only the tag differs (`spr-lint` vs
`spr-analyze`). This module owns that common layer so the two stay in
lockstep:

  * strip_comments_and_strings — per-line source with comments and
    string/char literals blanked, line structure intact.
  * PragmaSet / parse_pragmas — `<tag>: allow(rule) reason` line pragmas
    and `<tag>-file: allow(rule) reason` file pragmas (first 10 lines),
    with malformed/unjustified pragmas surfaced as findings.
  * Finding — one (path, line, rule, message) record.
  * collect_files / relpath — deterministic tree walking.
"""

from __future__ import annotations

import os
import re


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> list[str]:
    """Per-line source with comments and string/char literals blanked.

    Keeps line structure (and therefore line numbers) intact.  Raw strings
    are handled with their full delimiter; escapes inside ordinary literals
    are honored.  Blanked spans become spaces so column-sensitive regexes
    keep working.
    """
    out = []
    i = 0
    n = len(text)
    buf = []
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_terminator = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                buf.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                buf.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^\s()\\]{0,16})\(', text[i:])
                if m:
                    raw_terminator = ")" + m.group(1) + '"'
                    state = "raw"
                    buf.append(" " * (len(m.group(0))))
                    i += len(m.group(0))
                    continue
            if c == '"':
                state = "string"
                buf.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                buf.append(" ")
                i += 1
                continue
            buf.append(c)
            i += 1
            continue
        if state == "line_comment":
            if c == "\n":
                state = "code"
                buf.append("\n")
            else:
                buf.append(" ")
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                buf.append("  ")
                i += 2
            else:
                buf.append("\n" if c == "\n" else " ")
                i += 1
            continue
        if state == "raw":
            if text.startswith(raw_terminator, i):
                buf.append(" " * len(raw_terminator))
                i += len(raw_terminator)
                state = "code"
            else:
                buf.append("\n" if c == "\n" else " ")
                i += 1
            continue
        # string / char
        if c == "\\":
            buf.append("  ")
            i += 2
            continue
        if (state == "string" and c == '"') or (state == "char" and c == "'"):
            state = "code"
            buf.append(" ")
            i += 1
            continue
        buf.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(buf).split("\n")


class PragmaSet:
    """Per-file allow pragmas: line-scoped and file-wide rule sets."""

    def __init__(self, line_allow: dict[int, set[str]], file_allow: set[str]):
        self.line_allow = line_allow
        self.file_allow = file_allow

    def allows(self, line: int, rule: str) -> bool:
        return rule in self.file_allow or rule in self.line_allow.get(
            line, set()
        )


def parse_pragmas(
    raw_lines: list[str],
    findings: list[Finding],
    path: str,
    tag: str,
    rules: dict[str, str],
    pragma_rule: str = "pragma",
) -> PragmaSet:
    """Parses `<tag>: allow(...)` / `<tag>-file: allow(...)` pragmas.

    Malformed pragmas (unknown rule, missing reason, file pragma past line
    10, unparseable tag mention) are appended to `findings` under
    `pragma_rule`.
    """
    line_re = re.compile(rf"{re.escape(tag)}:\s*allow\(([a-z\-,\s]+)\)\s*(.*)")
    file_re = re.compile(
        rf"{re.escape(tag)}-file:\s*allow\(([a-z\-,\s]+)\)\s*(.*)"
    )
    line_allow: dict[int, set[str]] = {}
    file_allow: set[str] = set()
    for idx, line in enumerate(raw_lines, start=1):
        if tag not in line:
            continue
        m = file_re.search(line)
        if m:
            wanted = {r.strip() for r in m.group(1).split(",") if r.strip()}
            bad = wanted - set(rules)
            if bad:
                findings.append(
                    Finding(path, idx, pragma_rule,
                            f"unknown rule(s) {sorted(bad)}")
                )
            if not m.group(2).strip():
                findings.append(
                    Finding(path, idx, pragma_rule,
                            "file pragma without a reason")
                )
            if idx > 10:
                findings.append(
                    Finding(
                        path,
                        idx,
                        pragma_rule,
                        "file pragma must sit in the first 10 lines",
                    )
                )
            file_allow |= wanted & set(rules)
            continue
        m = line_re.search(line)
        if m:
            wanted = {r.strip() for r in m.group(1).split(",") if r.strip()}
            bad = wanted - set(rules)
            if bad:
                findings.append(
                    Finding(path, idx, pragma_rule,
                            f"unknown rule(s) {sorted(bad)}")
                )
            if not m.group(2).strip():
                findings.append(
                    Finding(path, idx, pragma_rule, "pragma without a reason")
                )
            line_allow.setdefault(idx, set()).update(wanted & set(rules))
            continue
        findings.append(
            Finding(path, idx, pragma_rule, f"unparseable {tag} pragma")
        )
    return PragmaSet(line_allow, file_allow)


def bind_comment_pragmas(
    pragmas: PragmaSet, stripped_lines: list[str]
) -> None:
    """A pragma on a comment-only line covers the next line holding code,
    so long statements can carry their justification above them."""
    for idx in sorted(pragmas.line_allow):
        if idx <= len(stripped_lines) and not stripped_lines[idx - 1].strip():
            for nxt in range(idx + 1, len(stripped_lines) + 1):
                if stripped_lines[nxt - 1].strip():
                    pragmas.line_allow.setdefault(nxt, set()).update(
                        pragmas.line_allow[idx]
                    )
                    break


def relpath(path: str, root: str) -> str:
    return os.path.relpath(path, root).replace(os.sep, "/")


def collect_files(paths: list[str], root: str,
                  exts: tuple[str, ...] = (".h", ".cpp", ".cc",
                                           ".hpp")) -> list[str]:
    out = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            out.append(full)
            continue
        for dirpath, _dirnames, filenames in os.walk(full):
            for name in sorted(filenames):
                if name.endswith(exts):
                    out.append(os.path.join(dirpath, name))
    return sorted(set(out))
