// Must-pass fixture: the sanctioned counterparts of every lint rule.
#include <chrono>
#include <map>
#include <memory>
#include <unordered_map>

namespace lint_fixture {

// steady_clock durations for console timing are allowed (only the
// wall-clock family that can stamp artifacts is banned).
double elapsed(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Ownership through smart pointers, not raw new/delete.
std::unique_ptr<int> owned() { return std::make_unique<int>(7); }

// Keyed lookups into unordered containers are fine; only iteration
// leaks hash order.
int lookup(const std::unordered_map<int, int>& counts, int key) {
  auto it = counts.find(key);
  return it == counts.end() ? 0 : it->second;
}

// Ordered iteration is deterministic.
int ordered_sum(const std::map<int, int>& counts) {
  int sum = 0;
  for (const auto& kv : counts) sum += kv.second;
  return sum;
}

}  // namespace lint_fixture
