// Must-fire fixture for the token-level lint rules. EXPECT markers name
// the finding the harness asserts on that line.
#include <chrono>
#include <cstdlib>
#include <random>
#include <unordered_map>

namespace lint_fixture {

void wallclock_leak() {
  auto stamp = std::chrono::system_clock::now();  // EXPECT[wallclock]
  (void)stamp;
}

int thread_stamp();
void thread_leak() {
  auto id = std::this_thread::get_id();  // EXPECT[wallclock]
  (void)id;
}

int unseeded() {
  std::random_device rd;  // EXPECT[raw-rng]
  std::mt19937 gen(rd());  // EXPECT[raw-rng]
  return rand();  // EXPECT[raw-rng]
}

int* leaky() {
  int* p = new int(7);  // EXPECT[raw-new]
  delete p;  // EXPECT[raw-new]
  return nullptr;
}

int hash_order_sum() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  int sum = 0;
  for (const auto& kv : counts) {  // EXPECT[unordered-iter]
    sum += kv.second;
  }
  return sum;
}

}  // namespace lint_fixture
