// Must-fire fixture: pragma hygiene findings.
#include <random>

namespace lint_fixture {

unsigned unjustified(unsigned seed) {
  std::mt19937 gen(seed);  // spr-lint: allow(raw-rng)
  return static_cast<unsigned>(gen());
}
// EXPECT-NO-REASON: the allow above carries no reason text.

int bogus() {
  // spr-lint: allow(not-a-rule) reason text present
  return 0;
}
// EXPECT-UNKNOWN-RULE: allow names a rule the lint does not know.

}  // namespace lint_fixture
