#include "../util/check.h"  // EXPECT[header-hygiene] EXPECT[header-hygiene]

namespace lint_fixture {
inline int two() { return 2; }
}  // namespace lint_fixture
