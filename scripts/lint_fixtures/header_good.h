#pragma once

#include "util/check.h"

namespace lint_fixture {
inline int three() { return 3; }
}  // namespace lint_fixture
