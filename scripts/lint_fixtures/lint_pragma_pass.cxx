// Must-pass fixture: justified pragmas silence findings, including from
// a comment line binding to the next code line.
#include <random>

namespace lint_fixture {

unsigned seeded_draw(unsigned seed) {
  // spr-lint: allow(raw-rng) fixture proves comment-line pragma binding
  std::mt19937 gen(seed);
  return static_cast<unsigned>(gen());
}

int* arena_backed() {
  int* p = new int(7);  // spr-lint: allow(raw-new) fixture same-line pragma
  return p;
}

}  // namespace lint_fixture
