// Must-fire fixture: a file named `serialize*` sits in the ordered-only
// layer, where unordered containers are banned outright.
#include <unordered_map>

namespace lint_fixture {

struct Sink {
  std::unordered_map<int, int> by_id;  // EXPECT[unordered-iter]
};

}  // namespace lint_fixture
