#!/usr/bin/env python3
"""Self-tests for spr_lint: per-rule must-fire/must-pass fixtures, pragma
binding, and libclang-vs-token agreement where both engines exist.

Fixture convention mirrors tools/spr_analyze: `EXPECT[rule]` markers on
the exact finding line; `*_pass*` fixtures must come back clean. Run
directly or through ctest (`spr_lint_fixtures`).
"""

from __future__ import annotations

import os
import re
import sys
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, _HERE)

import spr_lint  # noqa: E402

_FIXTURES = os.path.join(_HERE, "lint_fixtures")
_EXPECT_RE = re.compile(r"EXPECT\[([a-z\-]+)\]")


def expected_findings(path: str) -> set[tuple[int, str]]:
    out = set()
    with open(path) as f:
        for idx, line in enumerate(f, start=1):
            for m in _EXPECT_RE.finditer(line):
                out.add((idx, m.group(1)))
    return out


def lint(path: str, use_clang: bool = False) -> set[tuple[int, str]]:
    findings = spr_lint.lint_file(path, _FIXTURES, use_clang)
    return {(f.line, f.rule) for f in findings}


class FixtureCorpus(unittest.TestCase):
    def assert_fixture(self, name: str):
        path = os.path.join(_FIXTURES, name)
        self.assertEqual(lint(path), expected_findings(path),
                         f"{name}: findings diverge from EXPECT markers")

    def test_lint_fire(self):
        self.assert_fixture("lint_fire.cxx")

    def test_lint_pass(self):
        self.assert_fixture("lint_pass.cxx")

    def test_serialize_layer(self):
        self.assert_fixture("serialize_bad.cxx")

    def test_header_bad(self):
        self.assert_fixture("header_bad.h")

    def test_header_good(self):
        self.assert_fixture("header_good.h")

    def test_every_rule_has_fire_coverage(self):
        covered = set()
        for name in os.listdir(_FIXTURES):
            covered |= {r for _, r in expected_findings(
                os.path.join(_FIXTURES, name))}
        expected = set(spr_lint.RULES) - {"pragma"}  # pragma: proven below
        self.assertEqual(covered & expected, expected,
                         "lint rules without a must-fire fixture")


class PragmaMachinery(unittest.TestCase):
    def test_justified_pragmas_suppress(self):
        path = os.path.join(_FIXTURES, "lint_pragma_pass.cxx")
        self.assertEqual(lint(path), set(),
                         "justified same-line and comment-line pragmas "
                         "must suppress the findings they cover")

    def test_pragma_hygiene_findings(self):
        path = os.path.join(_FIXTURES, "lint_pragma_fire.cxx")
        got = lint(path)
        with open(path) as f:
            lines = f.readlines()
        no_reason = next(i for i, l in enumerate(lines, 1)
                         if "allow(raw-rng)" in l)
        unknown = next(i for i, l in enumerate(lines, 1)
                       if "not-a-rule" in l)
        self.assertEqual(got, {(no_reason, "pragma"), (unknown, "pragma")})


class Baseline(unittest.TestCase):
    def test_src_and_tools_are_clean(self):
        files = spr_lint.collect_files(["src", "tools"],
                                       os.path.dirname(_HERE))
        findings = []
        for path in files:
            findings.extend(
                spr_lint.lint_file(path, os.path.dirname(_HERE), False))
        self.assertEqual([str(f) for f in findings], [])


class EngineAgreement(unittest.TestCase):
    @unittest.skipUnless(spr_lint.HAVE_LIBCLANG,
                         "libclang bindings not importable")
    def test_fixtures_agree_across_engines(self):
        for name in sorted(os.listdir(_FIXTURES)):
            path = os.path.join(_FIXTURES, name)
            self.assertEqual(lint(path, use_clang=True),
                             lint(path, use_clang=False),
                             f"{name}: engines disagree")


if __name__ == "__main__":
    unittest.main(verbosity=2)
