#!/usr/bin/env python3
"""spr_lint: repo-specific determinism and hygiene lint for the spr tree.

The repo's core contract is bit-identical statuses, anchors and reports
across thread counts, tile grids, machines and reruns. This lint enforces
the source-level invariants that keep that true, as named rules:

  wallclock         No wall-clock time, thread ids or pointer values where
                    they could flow into reports or serialized artifacts:
                    std::chrono::system_clock, time()/localtime()/gmtime()/
                    strftime()/gettimeofday(), std::this_thread::get_id and
                    %p-style pointer formatting are banned everywhere under
                    src/.  (steady_clock durations for *console* timing are
                    fine and used by core/experiment.)
  raw-rng           No unseeded/global randomness outside the seeded RNG
                    wrapper (src/deploy/rng.*): rand(), srand(),
                    std::random_device, and direct std::mt19937 /
                    default_random_engine construction.
  unordered-iter    No iteration over std::unordered_map/std::unordered_set
                    (hash order is implementation- and run-dependent), and
                    no unordered containers at all in the report/serialize/
                    merge layer (src/report/, src/stats/).  Keyed lookups
                    elsewhere are fine.
  raw-new           No raw `new` / `delete` in src/ — allocation goes
                    through containers, smart pointers or util/arena.h.
  header-hygiene    Every header under src/ starts with #pragma once, and
                    project includes are root-relative ("util/check.h"),
                    never parent-relative ("../util/check.h").

False positives are silenced per line with a justified pragma:

    foo();  // spr-lint: allow(raw-new) reason why this one is fine

or for a whole file (first 10 lines):

    // spr-lint-file: allow(wallclock) reason

A pragma with no reason text is itself a finding.  The lint is token-level
by default (comments and string/char literals are stripped before rules
run); when python libclang bindings are importable, the unordered-iter rule
upgrades to an AST walk over range-for statements.

Exit status: 0 when clean, 1 when any finding, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from spr_source import (Finding, bind_comment_pragmas, collect_files,
                        parse_pragmas, relpath, strip_comments_and_strings)

try:
    import clang.cindex  # type: ignore

    HAVE_LIBCLANG = True
except Exception:  # pragma: no cover - environment dependent
    HAVE_LIBCLANG = False

RULES = {
    "wallclock": "wall-clock/thread-id/pointer value in deterministic code",
    "raw-rng": "randomness outside the seeded RNG wrapper",
    "unordered-iter": "hash-order iteration (or unordered container in "
    "report/serialize path)",
    "raw-new": "raw new/delete outside containers/arena",
    "header-hygiene": "public header include hygiene",
    "pragma": "malformed or unjustified spr-lint pragma",
}

# Paths whose *whole purpose* is nondeterministic-source wrapping.
RAW_RNG_ALLOWED = ("deploy/rng.h", "deploy/rng.cpp")

# Report/serialize/merge layer: no unordered containers at all.
ORDERED_ONLY_DIRS = ("src/report/", "src/stats/")

WALLCLOCK_PATTERNS = [
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bstd::time\s*\("), "std::time()"),
    (re.compile(r"[^:\w]time\s*\(\s*(NULL|nullptr|0)\s*\)"), "time(NULL)"),
    (re.compile(r"\blocaltime\s*\("), "localtime()"),
    (re.compile(r"\bgmtime\s*\("), "gmtime()"),
    (re.compile(r"\bstrftime\s*\("), "strftime()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bthis_thread::get_id\s*\("), "std::this_thread::get_id()"),
    (re.compile(r"%p\b"), "%p pointer formatting"),
]

RAW_RNG_PATTERNS = [
    (re.compile(r"[^\w:.]s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(_64)?\b"), "direct std::mt19937"),
    (re.compile(r"\bdefault_random_engine\b"), "std::default_random_engine"),
]

# `new` used as an allocation expression. Excludes placement-new-ish forms
# by virtue of the codebase not using them; operator-overload declarations
# ("operator new") are matched and must be pragma'd if ever added.
RAW_NEW_RE = re.compile(r"(^|[^\w.])new\s+[\w:<]")
RAW_DELETE_RE = re.compile(r"(^|[^\w.])delete(\s*\[\s*\])?\s+[\w:*(]")

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(map|set|multimap|multiset)\s*<[^;{}]*?>\s+(\w+)"
)
UNORDERED_ANY_RE = re.compile(r"\bstd::unordered_(map|set|multimap|multiset)\b")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*?:\s*\(?\s*([A-Za-z_]\w*)")


def lint_wallclock(rel: str, lines: list[str], emit):
    for idx, line in enumerate(lines, start=1):
        for pattern, what in WALLCLOCK_PATTERNS:
            if pattern.search(line):
                emit(idx, "wallclock", f"{what} is nondeterministic across "
                     "runs/machines; reports must not depend on it")


def lint_raw_rng(rel: str, lines: list[str], emit):
    if rel.endswith(RAW_RNG_ALLOWED):
        return
    for idx, line in enumerate(lines, start=1):
        for pattern, what in RAW_RNG_PATTERNS:
            if pattern.search(line):
                emit(idx, "raw-rng", f"{what} outside deploy/rng — use the "
                     "seeded spr::Rng wrapper")


def lint_raw_new(rel: str, lines: list[str], emit):
    for idx, line in enumerate(lines, start=1):
        if RAW_NEW_RE.search(line):
            emit(idx, "raw-new", "raw `new` — use make_unique/containers "
                 "or util/arena.h")
        if RAW_DELETE_RE.search(line):
            emit(idx, "raw-new", "raw `delete` — ownership belongs in "
                 "smart pointers/containers")


def lint_unordered_token(rel: str, lines: list[str], emit):
    in_report_layer = any(d in rel for d in ORDERED_ONLY_DIRS) or (
        "serialize" in os.path.basename(rel)
    )
    unordered_vars: set[str] = set()
    for idx, line in enumerate(lines, start=1):
        if in_report_layer and UNORDERED_ANY_RE.search(line):
            emit(idx, "unordered-iter", "unordered container in the "
                 "report/serialize layer — hash order would leak into "
                 "artifacts; use std::map/std::vector")
            continue
        for m in UNORDERED_DECL_RE.finditer(line):
            unordered_vars.add(m.group(2))
    if in_report_layer or not unordered_vars:
        return
    for idx, line in enumerate(lines, start=1):
        m = RANGE_FOR_RE.search(line)
        if m and m.group(1) in unordered_vars:
            emit(idx, "unordered-iter", f"range-for over unordered container "
                 f"'{m.group(1)}' — iteration order is hash-order; copy into "
                 "a sorted container first")


def lint_unordered_clang(path: str, rel: str, emit) -> bool:
    """AST-accurate unordered-iter rule; returns False to request fallback."""
    try:
        index = clang.cindex.Index.create()
        tu = index.parse(path, args=["-std=c++20", "-Isrc"])
    except Exception:
        return False
    from clang.cindex import CursorKind

    for cursor in tu.cursor.walk_preorder():
        if cursor.kind != CursorKind.CXX_FOR_RANGE_STMT:
            continue
        children = list(cursor.get_children())
        if len(children) < 2:
            continue
        range_expr = children[-2]
        type_name = range_expr.type.get_canonical().spelling
        if "unordered_" in type_name:
            emit(
                cursor.location.line,
                "unordered-iter",
                "range-for over unordered container — iteration order is "
                "hash-order; copy into a sorted container first",
            )
    return True


def lint_header_hygiene(rel: str, raw_lines: list[str], lines: list[str], emit):
    if not rel.endswith(".h"):
        return
    first_directive = None
    for idx, line in enumerate(lines, start=1):
        if line.strip():
            first_directive = (idx, line.strip())
            break
    if first_directive is None or first_directive[1] != "#pragma once":
        emit(first_directive[0] if first_directive else 1, "header-hygiene",
             "header must start with #pragma once")
    for idx, line in enumerate(raw_lines, start=1):
        m = re.match(r'\s*#\s*include\s+"([^"]+)"', line)
        if m and m.group(1).startswith(".."):
            emit(idx, "header-hygiene", f'parent-relative include '
                 f'"{m.group(1)}" — include root-relative from src/')


def lint_file(path: str, root: str, use_clang: bool) -> list[Finding]:
    rel = relpath(path, root)
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [Finding(rel, 0, "pragma", f"unreadable: {e}")]

    raw_lines = text.split("\n")
    findings: list[Finding] = []
    pragmas = parse_pragmas(raw_lines, findings, rel, "spr-lint", RULES)
    lines = strip_comments_and_strings(text)
    bind_comment_pragmas(pragmas, lines)

    suppressed: list[Finding] = []

    def emit(line_no: int, rule: str, message: str):
        if pragmas.allows(line_no, rule):
            suppressed.append(Finding(rel, line_no, rule, message))
            return
        findings.append(Finding(rel, line_no, rule, message))

    lint_wallclock(rel, lines, emit)
    lint_raw_rng(rel, lines, emit)
    lint_raw_new(rel, lines, emit)
    if not (use_clang and lint_unordered_clang(path, rel, emit)):
        lint_unordered_token(rel, lines, emit)
    lint_header_hygiene(rel, raw_lines, lines, emit)
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories (default: src tools)")
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repo root findings are reported relative to")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--no-clang", action="store_true",
                        help="force the token-level unordered-iter rule even "
                        "when libclang is importable")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, doc in RULES.items():
            print(f"{name:16} {doc}")
        return 0

    paths = args.paths or ["src", "tools"]
    files = collect_files(paths, args.root)
    if not files:
        print("spr_lint: no input files", file=sys.stderr)
        return 2

    use_clang = HAVE_LIBCLANG and not args.no_clang
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path, args.root, use_clang))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for finding in findings:
        print(finding)
    mode = "libclang" if use_clang else "token-level"
    print(
        f"spr_lint: {len(files)} files, {len(findings)} finding(s) ({mode})",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
