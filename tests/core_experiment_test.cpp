#include "core/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "graph/graph_algos.h"

namespace spr {
namespace {

SweepConfig tiny_sweep() {
  SweepConfig config;
  config.node_counts = {400};
  config.networks_per_point = 2;
  config.pairs_per_network = 4;
  config.schemes = SweepConfig::paper_schemes();
  return config;
}

TEST(Experiment, RunsAllSchemesAndPoints) {
  SweepConfig config = tiny_sweep();
  config.node_counts = {400, 450};
  auto points = run_sweep(config);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].node_count, 400);
  EXPECT_EQ(points[1].node_count, 450);
  for (const auto& point : points) {
    ASSERT_EQ(point.by_scheme.size(), 4u);
    for (const auto& [label, agg] : point.by_scheme) {
      EXPECT_EQ(agg.attempted, 8u) << label;  // 2 networks x 4 pairs
    }
  }
}

TEST(Experiment, PairedSchemesSeeSamePairCount) {
  auto points = run_sweep(tiny_sweep());
  const auto& by_scheme = points[0].by_scheme;
  std::size_t attempted = by_scheme.begin()->second.attempted;
  for (const auto& [label, agg] : by_scheme) {
    EXPECT_EQ(agg.attempted, attempted) << label;
  }
}

TEST(Experiment, DeterministicAcrossRuns) {
  auto a = run_sweep(tiny_sweep());
  auto b = run_sweep(tiny_sweep());
  const auto& agg_a = a[0].by_scheme.at("SLGF2");
  const auto& agg_b = b[0].by_scheme.at("SLGF2");
  EXPECT_EQ(agg_a.delivered, agg_b.delivered);
  EXPECT_DOUBLE_EQ(agg_a.hops.mean(), agg_b.hops.mean());
  EXPECT_DOUBLE_EQ(agg_a.length.mean(), agg_b.length.mean());
}

TEST(Experiment, ModelsProduceDifferentNetworks) {
  SweepConfig ia = tiny_sweep();
  SweepConfig fa = tiny_sweep();
  fa.model = DeployModel::kForbiddenAreas;
  auto pa = run_sweep(ia);
  auto pb = run_sweep(fa);
  // Different deployments: at least the mean hop counts should differ.
  EXPECT_NE(pa[0].by_scheme.at("SLGF2").hops.mean(),
            pb[0].by_scheme.at("SLGF2").hops.mean());
}

TEST(Experiment, ProgressCallbackFires) {
  int calls = 0;
  SweepConfig config = tiny_sweep();
  run_sweep(config, [&](int, int, int) { ++calls; });
  EXPECT_EQ(calls, 2);  // one per network
}

TEST(Experiment, ProgressCallbackFiresOncePerCellUnderParallelism) {
  // The callback is serialized by the sweep, so a plain int is enough even
  // with worker threads.
  int calls = 0;
  SweepConfig config = tiny_sweep();
  config.node_counts = {400, 450};
  config.threads = 4;
  run_sweep(config, [&](int, int, int) { ++calls; });
  EXPECT_EQ(calls, 4);  // 2 points x 2 networks
}

TEST(Experiment, ParallelAggregatesBitIdenticalToSerial) {
  SweepConfig config = tiny_sweep();
  config.node_counts = {400, 450};
  config.networks_per_point = 3;
  config.pairs_per_network = 3;

  config.threads = 1;
  auto serial = run_sweep(config);
  for (int threads : {0, 2, 5}) {
    config.threads = threads;
    auto parallel = run_sweep(config);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t pi = 0; pi < serial.size(); ++pi) {
      for (const auto& [label, agg] : serial[pi].by_scheme) {
        const auto& other = parallel[pi].by_scheme.at(label);
        EXPECT_EQ(agg.attempted, other.attempted) << label;
        EXPECT_EQ(agg.delivered, other.delivered) << label;
        // Bit-identical, not just approximately equal: the merge replays
        // samples in cell order, so every moment matches exactly.
        EXPECT_EQ(agg.hops.count(), other.hops.count()) << label;
        EXPECT_EQ(agg.hops.sum(), other.hops.sum()) << label;
        EXPECT_EQ(agg.hops.mean(), other.hops.mean()) << label;
        EXPECT_EQ(agg.hops.variance(), other.hops.variance()) << label;
        EXPECT_EQ(agg.length.sum(), other.length.sum()) << label;
        EXPECT_EQ(agg.length.mean(), other.length.mean()) << label;
        EXPECT_EQ(agg.stretch_hops.mean(), other.stretch_hops.mean()) << label;
        EXPECT_EQ(agg.stretch_length.mean(), other.stretch_length.mean())
            << label;
        EXPECT_EQ(agg.local_minima.sum(), other.local_minima.sum()) << label;
        EXPECT_EQ(agg.hops.max(), other.hops.max()) << label;
        EXPECT_EQ(agg.hops.min(), other.hops.min()) << label;
      }
    }
  }
}

/// Labeling each cell through a spatial-tile grid (`--tiles RxC`) is an
/// execution strategy, not a different experiment: the tile layer's
/// shard-count-invariance contract makes every aggregate bit-identical to
/// the monolithic sweep for every grid.
TEST(Experiment, SpatialTileSweepBitIdenticalToMonolithic) {
  SweepConfig config = tiny_sweep();
  config.networks_per_point = 2;
  config.pairs_per_network = 3;

  auto monolithic = run_sweep(config);
  for (auto [rows, cols] : {std::pair{1, 2}, std::pair{2, 2}}) {
    config.tile_rows = rows;
    config.tile_cols = cols;
    auto tiled = run_sweep(config);
    ASSERT_EQ(monolithic.size(), tiled.size());
    for (std::size_t pi = 0; pi < monolithic.size(); ++pi) {
      for (const auto& [label, agg] : monolithic[pi].by_scheme) {
        const auto& other = tiled[pi].by_scheme.at(label);
        EXPECT_EQ(agg.attempted, other.attempted) << label;
        EXPECT_EQ(agg.delivered, other.delivered) << label;
        EXPECT_EQ(agg.hops.sum(), other.hops.sum()) << label;
        EXPECT_EQ(agg.hops.variance(), other.hops.variance()) << label;
        EXPECT_EQ(agg.length.sum(), other.length.sum()) << label;
        EXPECT_EQ(agg.stretch_hops.mean(), other.stretch_hops.mean()) << label;
        EXPECT_EQ(agg.local_minima.sum(), other.local_minima.sum()) << label;
      }
    }
  }
}

TEST(Experiment, OneSearchPerDistinctSourcePerCell) {
  // The acceptance check for the batched oracle: a cell must run exactly
  // one BFS and one Dijkstra per distinct pair source, however many pairs
  // and schemes it routes.
  SweepConfig config = tiny_sweep();
  config.networks_per_point = 1;
  config.pairs_per_network = 12;

  // Reconstruct the cell's traffic to count its distinct sources.
  NetworkConfig nc;
  nc.deployment = config.deployment_template;
  nc.deployment.model = config.model;
  nc.deployment.node_count = 400;
  nc.seed = sweep_cell_seed(config, 400, 0);
  Network network = Network::create(nc);
  auto pairs = sweep_cell_pairs(config, network, 400, 0);
  ASSERT_FALSE(pairs.empty());
  std::set<NodeId> sources;
  for (auto [s, d] : pairs) sources.insert(s);

  reset_oracle_search_counts();
  SweepTimings timings;
  run_sweep(config, {}, &timings);
  EXPECT_EQ(timings.bfs_searches, sources.size());
  EXPECT_EQ(timings.dijkstra_searches, sources.size());
  EXPECT_EQ(timings.pairs_routed, pairs.size());
  // The process-wide hook agrees: the sweep ran no other tree searches.
  auto counts = oracle_search_counts();
  EXPECT_EQ(counts.bfs_trees, sources.size());
  EXPECT_EQ(counts.dijkstra_trees, sources.size());
}

TEST(Experiment, RequestedPairsAccounted) {
  SweepConfig config = tiny_sweep();
  auto points = run_sweep(config);
  for (const auto& [label, agg] : points[0].by_scheme) {
    EXPECT_EQ(agg.requested, 8u) << label;  // 2 networks x 4 pairs
    EXPECT_LE(agg.attempted, agg.requested) << label;
    EXPECT_EQ(agg.pair_shortfall(), agg.requested - agg.attempted) << label;
  }
}

TEST(Experiment, PairShortfallSurfacesOnUndrawablePairs) {
  // Three nodes cannot yield interior pairs (the hull owns them all), so
  // every configured pair goes undrawn — which must be visible, not a
  // silently smaller sample.
  SweepConfig config = tiny_sweep();
  config.node_counts = {3};
  config.networks_per_point = 1;
  SweepTimings timings;
  auto points = run_sweep(config, {}, &timings);
  for (const auto& [label, agg] : points[0].by_scheme) {
    EXPECT_EQ(agg.requested, 4u) << label;
    EXPECT_EQ(agg.attempted, 0u) << label;
    EXPECT_EQ(agg.pair_shortfall(), 4u) << label;
  }
  EXPECT_EQ(timings.pairs_requested, 4u);
  EXPECT_EQ(timings.pairs_routed, 0u);
}

TEST(Experiment, TimingsAccumulateAcrossCells) {
  SweepConfig config = tiny_sweep();
  SweepTimings timings;
  run_sweep(config, {}, &timings);
  EXPECT_EQ(timings.pairs_requested, 8u);  // 2 networks x 4 pairs
  EXPECT_GE(timings.construction_seconds, 0.0);
  EXPECT_GE(timings.oracle_seconds, 0.0);
  EXPECT_GE(timings.routing_seconds, 0.0);
  // Search counts are deterministic, so a second run must agree exactly.
  SweepTimings again;
  run_sweep(config, {}, &again);
  EXPECT_EQ(timings.bfs_searches, again.bfs_searches);
  EXPECT_EQ(timings.dijkstra_searches, again.dijkstra_searches);
  EXPECT_EQ(timings.pairs_routed, again.pairs_routed);
}

TEST(Experiment, SweepCellSeedMatchesSweepNetworks) {
  // Exposed so scenarios/tests can rebuild any sweep cell; must differ
  // across cells and models.
  SweepConfig ia = tiny_sweep();
  SweepConfig fa = tiny_sweep();
  fa.model = DeployModel::kForbiddenAreas;
  EXPECT_NE(sweep_cell_seed(ia, 400, 0), sweep_cell_seed(ia, 400, 1));
  EXPECT_NE(sweep_cell_seed(ia, 400, 0), sweep_cell_seed(ia, 450, 0));
  EXPECT_NE(sweep_cell_seed(ia, 400, 0), sweep_cell_seed(fa, 400, 0));
  EXPECT_EQ(sweep_cell_seed(ia, 400, 0), sweep_cell_seed(ia, 400, 0));
}

TEST(Experiment, CustomSchemeLabels) {
  SweepConfig config = tiny_sweep();
  config.schemes = {{Scheme::kSlgf2, {}, "full"},
                    {Scheme::kSlgf2, {false, true, true}, "no-either-hand"}};
  auto points = run_sweep(config);
  EXPECT_TRUE(points[0].by_scheme.contains("full"));
  EXPECT_TRUE(points[0].by_scheme.contains("no-either-hand"));
}

TEST(Experiment, AggregateRecordsMetrics) {
  RouteAggregate agg;
  PathResult ok;
  ok.status = RouteStatus::kDelivered;
  ok.path = {0, 1, 2};
  ok.hop_phases = {HopPhase::kGreedy, HopPhase::kPerimeter};
  ok.length = 25.0;
  ShortestPath oracle;
  oracle.path = {0, 1, 2};
  oracle.length = 20.0;
  agg.record(ok, &oracle, &oracle);
  PathResult fail;
  fail.status = RouteStatus::kTtlExpired;
  fail.path = {0, 1};
  agg.record(fail, nullptr, nullptr);
  EXPECT_EQ(agg.attempted, 2u);
  EXPECT_EQ(agg.delivered, 1u);
  EXPECT_DOUBLE_EQ(agg.delivery_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(agg.hops.mean(), 2.0);
  EXPECT_DOUBLE_EQ(agg.max_hops(), 2.0);
  EXPECT_DOUBLE_EQ(agg.stretch_hops.mean(), 1.0);
  EXPECT_DOUBLE_EQ(agg.stretch_length.mean(), 1.25);
  EXPECT_DOUBLE_EQ(agg.perimeter_hops.mean(), 1.0);
}

TEST(Experiment, AggregateMerge) {
  RouteAggregate a, b;
  PathResult ok;
  ok.status = RouteStatus::kDelivered;
  ok.path = {0, 1};
  ok.hop_phases = {HopPhase::kGreedy};
  ok.length = 10.0;
  a.record(ok, nullptr, nullptr);
  b.record(ok, nullptr, nullptr);
  a.merge(b);
  EXPECT_EQ(a.attempted, 2u);
  EXPECT_EQ(a.delivered, 2u);
  EXPECT_EQ(a.hops.count(), 2u);
}

TEST(Experiment, EnvIntOr) {
  ::unsetenv("SPR_TEST_KNOB");
  EXPECT_EQ(env_int_or("SPR_TEST_KNOB", 42), 42);
  ::setenv("SPR_TEST_KNOB", "7", 1);
  EXPECT_EQ(env_int_or("SPR_TEST_KNOB", 42), 7);
  ::setenv("SPR_TEST_KNOB", "junk", 1);
  EXPECT_EQ(env_int_or("SPR_TEST_KNOB", 42), 42);
  ::unsetenv("SPR_TEST_KNOB");
}

}  // namespace
}  // namespace spr
