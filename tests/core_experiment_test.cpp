#include "core/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace spr {
namespace {

SweepConfig tiny_sweep() {
  SweepConfig config;
  config.node_counts = {400};
  config.networks_per_point = 2;
  config.pairs_per_network = 4;
  config.schemes = SweepConfig::paper_schemes();
  return config;
}

TEST(Experiment, RunsAllSchemesAndPoints) {
  SweepConfig config = tiny_sweep();
  config.node_counts = {400, 450};
  auto points = run_sweep(config);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].node_count, 400);
  EXPECT_EQ(points[1].node_count, 450);
  for (const auto& point : points) {
    ASSERT_EQ(point.by_scheme.size(), 4u);
    for (const auto& [label, agg] : point.by_scheme) {
      EXPECT_EQ(agg.attempted, 8u) << label;  // 2 networks x 4 pairs
    }
  }
}

TEST(Experiment, PairedSchemesSeeSamePairCount) {
  auto points = run_sweep(tiny_sweep());
  const auto& by_scheme = points[0].by_scheme;
  std::size_t attempted = by_scheme.begin()->second.attempted;
  for (const auto& [label, agg] : by_scheme) {
    EXPECT_EQ(agg.attempted, attempted) << label;
  }
}

TEST(Experiment, DeterministicAcrossRuns) {
  auto a = run_sweep(tiny_sweep());
  auto b = run_sweep(tiny_sweep());
  const auto& agg_a = a[0].by_scheme.at("SLGF2");
  const auto& agg_b = b[0].by_scheme.at("SLGF2");
  EXPECT_EQ(agg_a.delivered, agg_b.delivered);
  EXPECT_DOUBLE_EQ(agg_a.hops.mean(), agg_b.hops.mean());
  EXPECT_DOUBLE_EQ(agg_a.length.mean(), agg_b.length.mean());
}

TEST(Experiment, ModelsProduceDifferentNetworks) {
  SweepConfig ia = tiny_sweep();
  SweepConfig fa = tiny_sweep();
  fa.model = DeployModel::kForbiddenAreas;
  auto pa = run_sweep(ia);
  auto pb = run_sweep(fa);
  // Different deployments: at least the mean hop counts should differ.
  EXPECT_NE(pa[0].by_scheme.at("SLGF2").hops.mean(),
            pb[0].by_scheme.at("SLGF2").hops.mean());
}

TEST(Experiment, ProgressCallbackFires) {
  int calls = 0;
  SweepConfig config = tiny_sweep();
  run_sweep(config, [&](int, int, int) { ++calls; });
  EXPECT_EQ(calls, 2);  // one per network
}

TEST(Experiment, ProgressCallbackFiresOncePerCellUnderParallelism) {
  // The callback is serialized by the sweep, so a plain int is enough even
  // with worker threads.
  int calls = 0;
  SweepConfig config = tiny_sweep();
  config.node_counts = {400, 450};
  config.threads = 4;
  run_sweep(config, [&](int, int, int) { ++calls; });
  EXPECT_EQ(calls, 4);  // 2 points x 2 networks
}

TEST(Experiment, ParallelAggregatesBitIdenticalToSerial) {
  SweepConfig config = tiny_sweep();
  config.node_counts = {400, 450};
  config.networks_per_point = 3;
  config.pairs_per_network = 3;

  config.threads = 1;
  auto serial = run_sweep(config);
  for (int threads : {0, 2, 5}) {
    config.threads = threads;
    auto parallel = run_sweep(config);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t pi = 0; pi < serial.size(); ++pi) {
      for (const auto& [label, agg] : serial[pi].by_scheme) {
        const auto& other = parallel[pi].by_scheme.at(label);
        EXPECT_EQ(agg.attempted, other.attempted) << label;
        EXPECT_EQ(agg.delivered, other.delivered) << label;
        // Bit-identical, not just approximately equal: the merge replays
        // samples in cell order, so every moment matches exactly.
        EXPECT_EQ(agg.hops.count(), other.hops.count()) << label;
        EXPECT_EQ(agg.hops.sum(), other.hops.sum()) << label;
        EXPECT_EQ(agg.hops.mean(), other.hops.mean()) << label;
        EXPECT_EQ(agg.hops.variance(), other.hops.variance()) << label;
        EXPECT_EQ(agg.length.sum(), other.length.sum()) << label;
        EXPECT_EQ(agg.length.mean(), other.length.mean()) << label;
        EXPECT_EQ(agg.stretch_hops.mean(), other.stretch_hops.mean()) << label;
        EXPECT_EQ(agg.stretch_length.mean(), other.stretch_length.mean())
            << label;
        EXPECT_EQ(agg.local_minima.sum(), other.local_minima.sum()) << label;
        EXPECT_EQ(agg.hops.max(), other.hops.max()) << label;
        EXPECT_EQ(agg.hops.min(), other.hops.min()) << label;
      }
    }
  }
}

TEST(Experiment, SweepCellSeedMatchesSweepNetworks) {
  // Exposed so scenarios/tests can rebuild any sweep cell; must differ
  // across cells and models.
  SweepConfig ia = tiny_sweep();
  SweepConfig fa = tiny_sweep();
  fa.model = DeployModel::kForbiddenAreas;
  EXPECT_NE(sweep_cell_seed(ia, 400, 0), sweep_cell_seed(ia, 400, 1));
  EXPECT_NE(sweep_cell_seed(ia, 400, 0), sweep_cell_seed(ia, 450, 0));
  EXPECT_NE(sweep_cell_seed(ia, 400, 0), sweep_cell_seed(fa, 400, 0));
  EXPECT_EQ(sweep_cell_seed(ia, 400, 0), sweep_cell_seed(ia, 400, 0));
}

TEST(Experiment, CustomSchemeLabels) {
  SweepConfig config = tiny_sweep();
  config.schemes = {{Scheme::kSlgf2, {}, "full"},
                    {Scheme::kSlgf2, {false, true, true}, "no-either-hand"}};
  auto points = run_sweep(config);
  EXPECT_TRUE(points[0].by_scheme.contains("full"));
  EXPECT_TRUE(points[0].by_scheme.contains("no-either-hand"));
}

TEST(Experiment, AggregateRecordsMetrics) {
  RouteAggregate agg;
  PathResult ok;
  ok.status = RouteStatus::kDelivered;
  ok.path = {0, 1, 2};
  ok.hop_phases = {HopPhase::kGreedy, HopPhase::kPerimeter};
  ok.length = 25.0;
  ShortestPath oracle;
  oracle.path = {0, 1, 2};
  oracle.length = 20.0;
  agg.record(ok, &oracle, &oracle);
  PathResult fail;
  fail.status = RouteStatus::kTtlExpired;
  fail.path = {0, 1};
  agg.record(fail, nullptr, nullptr);
  EXPECT_EQ(agg.attempted, 2u);
  EXPECT_EQ(agg.delivered, 1u);
  EXPECT_DOUBLE_EQ(agg.delivery_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(agg.hops.mean(), 2.0);
  EXPECT_DOUBLE_EQ(agg.max_hops(), 2.0);
  EXPECT_DOUBLE_EQ(agg.stretch_hops.mean(), 1.0);
  EXPECT_DOUBLE_EQ(agg.stretch_length.mean(), 1.25);
  EXPECT_DOUBLE_EQ(agg.perimeter_hops.mean(), 1.0);
}

TEST(Experiment, AggregateMerge) {
  RouteAggregate a, b;
  PathResult ok;
  ok.status = RouteStatus::kDelivered;
  ok.path = {0, 1};
  ok.hop_phases = {HopPhase::kGreedy};
  ok.length = 10.0;
  a.record(ok, nullptr, nullptr);
  b.record(ok, nullptr, nullptr);
  a.merge(b);
  EXPECT_EQ(a.attempted, 2u);
  EXPECT_EQ(a.delivered, 2u);
  EXPECT_EQ(a.hops.count(), 2u);
}

TEST(Experiment, EnvIntOr) {
  ::unsetenv("SPR_TEST_KNOB");
  EXPECT_EQ(env_int_or("SPR_TEST_KNOB", 42), 42);
  ::setenv("SPR_TEST_KNOB", "7", 1);
  EXPECT_EQ(env_int_or("SPR_TEST_KNOB", 42), 7);
  ::setenv("SPR_TEST_KNOB", "junk", 1);
  EXPECT_EQ(env_int_or("SPR_TEST_KNOB", 42), 42);
  ::unsetenv("SPR_TEST_KNOB");
}

}  // namespace
}  // namespace spr
