#include "core/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace spr {
namespace {

SweepConfig tiny_sweep() {
  SweepConfig config;
  config.node_counts = {400};
  config.networks_per_point = 2;
  config.pairs_per_network = 4;
  config.schemes = SweepConfig::paper_schemes();
  return config;
}

TEST(Experiment, RunsAllSchemesAndPoints) {
  SweepConfig config = tiny_sweep();
  config.node_counts = {400, 450};
  auto points = run_sweep(config);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].node_count, 400);
  EXPECT_EQ(points[1].node_count, 450);
  for (const auto& point : points) {
    ASSERT_EQ(point.by_scheme.size(), 4u);
    for (const auto& [label, agg] : point.by_scheme) {
      EXPECT_EQ(agg.attempted, 8u) << label;  // 2 networks x 4 pairs
    }
  }
}

TEST(Experiment, PairedSchemesSeeSamePairCount) {
  auto points = run_sweep(tiny_sweep());
  const auto& by_scheme = points[0].by_scheme;
  std::size_t attempted = by_scheme.begin()->second.attempted;
  for (const auto& [label, agg] : by_scheme) {
    EXPECT_EQ(agg.attempted, attempted) << label;
  }
}

TEST(Experiment, DeterministicAcrossRuns) {
  auto a = run_sweep(tiny_sweep());
  auto b = run_sweep(tiny_sweep());
  const auto& agg_a = a[0].by_scheme.at("SLGF2");
  const auto& agg_b = b[0].by_scheme.at("SLGF2");
  EXPECT_EQ(agg_a.delivered, agg_b.delivered);
  EXPECT_DOUBLE_EQ(agg_a.hops.mean(), agg_b.hops.mean());
  EXPECT_DOUBLE_EQ(agg_a.length.mean(), agg_b.length.mean());
}

TEST(Experiment, ModelsProduceDifferentNetworks) {
  SweepConfig ia = tiny_sweep();
  SweepConfig fa = tiny_sweep();
  fa.model = DeployModel::kForbiddenAreas;
  auto pa = run_sweep(ia);
  auto pb = run_sweep(fa);
  // Different deployments: at least the mean hop counts should differ.
  EXPECT_NE(pa[0].by_scheme.at("SLGF2").hops.mean(),
            pb[0].by_scheme.at("SLGF2").hops.mean());
}

TEST(Experiment, ProgressCallbackFires) {
  int calls = 0;
  SweepConfig config = tiny_sweep();
  run_sweep(config, [&](int, int, int) { ++calls; });
  EXPECT_EQ(calls, 2);  // one per network
}

TEST(Experiment, CustomSchemeLabels) {
  SweepConfig config = tiny_sweep();
  config.schemes = {{Scheme::kSlgf2, {}, "full"},
                    {Scheme::kSlgf2, {false, true, true}, "no-either-hand"}};
  auto points = run_sweep(config);
  EXPECT_TRUE(points[0].by_scheme.contains("full"));
  EXPECT_TRUE(points[0].by_scheme.contains("no-either-hand"));
}

TEST(Experiment, AggregateRecordsMetrics) {
  RouteAggregate agg;
  PathResult ok;
  ok.status = RouteStatus::kDelivered;
  ok.path = {0, 1, 2};
  ok.hop_phases = {HopPhase::kGreedy, HopPhase::kPerimeter};
  ok.length = 25.0;
  ShortestPath oracle;
  oracle.path = {0, 1, 2};
  oracle.length = 20.0;
  agg.record(ok, &oracle, &oracle);
  PathResult fail;
  fail.status = RouteStatus::kTtlExpired;
  fail.path = {0, 1};
  agg.record(fail, nullptr, nullptr);
  EXPECT_EQ(agg.attempted, 2u);
  EXPECT_EQ(agg.delivered, 1u);
  EXPECT_DOUBLE_EQ(agg.delivery_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(agg.hops.mean(), 2.0);
  EXPECT_DOUBLE_EQ(agg.max_hops(), 2.0);
  EXPECT_DOUBLE_EQ(agg.stretch_hops.mean(), 1.0);
  EXPECT_DOUBLE_EQ(agg.stretch_length.mean(), 1.25);
  EXPECT_DOUBLE_EQ(agg.perimeter_hops.mean(), 1.0);
}

TEST(Experiment, AggregateMerge) {
  RouteAggregate a, b;
  PathResult ok;
  ok.status = RouteStatus::kDelivered;
  ok.path = {0, 1};
  ok.hop_phases = {HopPhase::kGreedy};
  ok.length = 10.0;
  a.record(ok, nullptr, nullptr);
  b.record(ok, nullptr, nullptr);
  a.merge(b);
  EXPECT_EQ(a.attempted, 2u);
  EXPECT_EQ(a.delivered, 2u);
  EXPECT_EQ(a.hops.count(), 2u);
}

TEST(Experiment, EnvIntOr) {
  ::unsetenv("SPR_TEST_KNOB");
  EXPECT_EQ(env_int_or("SPR_TEST_KNOB", 42), 42);
  ::setenv("SPR_TEST_KNOB", "7", 1);
  EXPECT_EQ(env_int_or("SPR_TEST_KNOB", 42), 7);
  ::setenv("SPR_TEST_KNOB", "junk", 1);
  EXPECT_EQ(env_int_or("SPR_TEST_KNOB", 42), 42);
  ::unsetenv("SPR_TEST_KNOB");
}

}  // namespace
}  // namespace spr
