#include "util/task_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace spr {
namespace {

TEST(TaskPool, HardwareThreadsAtLeastOne) {
  EXPECT_GE(TaskPool::hardware_threads(), 1);
}

TEST(TaskPool, DefaultsToHardwareThreads) {
  TaskPool pool;
  EXPECT_EQ(pool.thread_count(),
            static_cast<std::size_t>(TaskPool::hardware_threads()));
}

TEST(TaskPool, ParallelForCoversEveryIndexExactlyOnce) {
  const std::size_t n = 500;
  std::vector<std::atomic<int>> hits(n);
  TaskPool pool(4);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskPool, SingleThreadPoolStillRunsEverything) {
  std::atomic<int> sum{0};
  TaskPool pool(1);
  pool.parallel_for(100, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(TaskPool, SubmitAndWaitIdle) {
  std::atomic<int> done{0};
  TaskPool pool(3);
  for (int i = 0; i < 50; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
  // The pool is reusable after an idle wait.
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 51);
}

TEST(TaskPool, ImbalancedTasksAllComplete) {
  // A few long tasks and many short ones: idle workers must steal the short
  // ones instead of waiting behind the long ones' home queues.
  std::atomic<int> done{0};
  TaskPool pool(4);
  pool.parallel_for(64, [&](std::size_t i) {
    if (i % 16 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 64);
}

TEST(TaskPool, TaskExceptionPropagatesToCaller) {
  TaskPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives the failed batch.
  std::atomic<int> ok{0};
  pool.parallel_for(4, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(TaskPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    TaskPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1);
      });
    }
  }  // ~TaskPool waits
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace spr
