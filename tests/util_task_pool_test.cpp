#include "util/task_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace spr {
namespace {

TEST(TaskPool, HardwareThreadsAtLeastOne) {
  EXPECT_GE(TaskPool::hardware_threads(), 1);
}

TEST(TaskPool, DefaultsToHardwareThreads) {
  TaskPool pool;
  EXPECT_EQ(pool.thread_count(),
            static_cast<std::size_t>(TaskPool::hardware_threads()));
}

TEST(TaskPool, ParallelForCoversEveryIndexExactlyOnce) {
  const std::size_t n = 500;
  std::vector<std::atomic<int>> hits(n);
  TaskPool pool(4);
  pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskPool, SingleThreadPoolStillRunsEverything) {
  std::atomic<int> sum{0};
  TaskPool pool(1);
  pool.parallel_for(100, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(TaskPool, SubmitAndWaitIdle) {
  std::atomic<int> done{0};
  TaskPool pool(3);
  for (int i = 0; i < 50; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
  // The pool is reusable after an idle wait.
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 51);
}

TEST(TaskPool, ImbalancedTasksAllComplete) {
  // A few long tasks and many short ones: idle workers must steal the short
  // ones instead of waiting behind the long ones' home queues.
  std::atomic<int> done{0};
  TaskPool pool(4);
  pool.parallel_for(64, [&](std::size_t i) {
    if (i % 16 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 64);
}

TEST(TaskPool, TaskExceptionPropagatesToCaller) {
  TaskPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives the failed batch.
  std::atomic<int> ok{0};
  pool.parallel_for(4, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(TaskPool, ZeroThreadRequestFallsBackToHardwareConcurrency) {
  // `threads == 0` means "use the hardware": never a thread-less pool that
  // would strand submitted tasks forever.
  TaskPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  std::atomic<int> done{0};
  pool.parallel_for(8, [&](std::size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 8);
}

TEST(TaskPool, BlockedDispatchSerialFallbacks) {
  // Null pool, single-worker pool, and an n too small to split all take the
  // inline serial path; coverage and block disjointness hold in each.
  std::vector<int> hits(100, 0);
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  };
  parallel_for_blocked(nullptr, hits.size(), 16, body);
  TaskPool single(1);
  parallel_for_blocked(&single, hits.size(), 16, body);
  TaskPool pool(4);
  parallel_for_blocked(&pool, hits.size(), 64, body);  // n < 2 * grain
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 3) << "index " << i;
  }
}

TEST(TaskPool, ShutdownDrainsAndIsIdempotent) {
  std::atomic<int> done{0};
  TaskPool pool(2);
  for (int i = 0; i < 16; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  pool.shutdown();
  EXPECT_EQ(done.load(), 16);
  EXPECT_TRUE(pool.is_shutdown());
  pool.shutdown();  // double shutdown: a no-op, not a double join
  EXPECT_TRUE(pool.is_shutdown());
}  // ~TaskPool after explicit shutdown: also a no-op

TEST(TaskPool, ShutdownSwallowsStoredTaskException) {
  // Like the destructor, an explicit shutdown must not throw; wait_idle
  // first is the way to observe failures.
  TaskPool pool(2);
  pool.submit([] { throw std::runtime_error("lost"); });
  EXPECT_NO_THROW(pool.shutdown());
}

TEST(TaskPool, WorkerThreadDetection) {
  TaskPool pool(2);
  TaskPool other(2);
  EXPECT_FALSE(pool.on_worker_thread());
  std::atomic<int> inside{0}, outside{0};
  pool.parallel_for(8, [&](std::size_t) {
    if (pool.on_worker_thread()) inside.fetch_add(1);
    if (other.on_worker_thread()) outside.fetch_add(1);
  });
  EXPECT_EQ(inside.load(), 8);
  EXPECT_EQ(outside.load(), 0);
}

TEST(TaskPool, NestedBlockedDispatchRunsInlineInsteadOfDeadlocking) {
  // A worker that re-enters parallel_for_blocked on its own pool must not
  // block on the pool (classic self-deadlock); the nested call degrades to
  // the serial path on the worker itself.
  TaskPool pool(2);
  constexpr std::size_t kOuter = 4;
  constexpr std::size_t kInner = 512;
  std::vector<std::vector<int>> hits(kOuter, std::vector<int>(kInner, 0));
  std::atomic<int> nested_inline{0};
  pool.parallel_for(kOuter, [&](std::size_t outer) {
    parallel_for_blocked(&pool, kInner, 16,
                         [&](std::size_t lo, std::size_t hi) {
                           if (pool.on_worker_thread()) {
                             nested_inline.fetch_add(1);
                           }
                           for (std::size_t i = lo; i < hi; ++i) {
                             ++hits[outer][i];
                           }
                         });
  });
  for (std::size_t outer = 0; outer < kOuter; ++outer) {
    for (std::size_t i = 0; i < kInner; ++i) {
      EXPECT_EQ(hits[outer][i], 1) << "outer " << outer << " index " << i;
    }
  }
  // Inline means one whole-range call per outer task, on a worker thread.
  EXPECT_EQ(nested_inline.load(), static_cast<int>(kOuter));
}

TEST(TaskPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    TaskPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1);
      });
    }
  }  // ~TaskPool waits
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace spr
