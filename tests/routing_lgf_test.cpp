#include "routing/lgf.h"

#include <gtest/gtest.h>

#include "graph/graph_algos.h"
#include "test_helpers.h"

namespace spr {
namespace {

TEST(Lgf, DeliversOnLine) {
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {30.0, 0.0}}, 12.0);
  LgfRouter router(g);
  PathResult r = router.route(0, 3);
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.hops(), 3u);
  EXPECT_DOUBLE_EQ(r.length, 30.0);
  EXPECT_EQ(r.local_minima, 0u);
  EXPECT_EQ(r.perimeter_hops(), 0u);
}

TEST(Lgf, SourceEqualsDestination) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}}, 12.0);
  LgfRouter router(g);
  PathResult r = router.route(0, 0);
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.hops(), 0u);
}

TEST(Lgf, DirectNeighborOneHop) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}}, 12.0);
  LgfRouter router(g);
  PathResult r = router.route(0, 1);
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.hops(), 1u);
}

TEST(Lgf, DisconnectedFails) {
  auto g = test::make_graph({{0.0, 0.0}, {100.0, 0.0}}, 10.0);
  LgfRouter router(g);
  PathResult r = router.route(0, 1);
  EXPECT_FALSE(r.delivered());
}

TEST(Lgf, PathIsValidWalk) {
  Network net = test::random_network(400, 11, DeployModel::kForbiddenAreas);
  const auto& g = net.graph();
  LgfRouter router(g);
  Rng rng(2);
  for (int trial = 0; trial < 40; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    PathResult r = router.route(s, d);
    ASSERT_GE(r.path.size(), 1u);
    EXPECT_EQ(r.path.front(), s);
    for (std::size_t i = 1; i < r.path.size(); ++i) {
      EXPECT_TRUE(g.are_neighbors(r.path[i - 1], r.path[i]))
          << "hop " << i << " is not an edge";
    }
    if (r.delivered()) {
      EXPECT_EQ(r.path.back(), d);
    }
    EXPECT_EQ(r.hop_phases.size(), r.path.size() - 1);
  }
}

TEST(Lgf, GreedyPhaseStaysInRequestZone) {
  Network net = test::random_network(400, 13);
  const auto& g = net.graph();
  LgfRouter router(g);
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    PathResult r = router.route(s, d);
    Vec2 dest = g.position(d);
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
      if (r.hop_phases[i] != HopPhase::kGreedy) continue;
      // Greedy hops keep the successor inside Z(u, d).
      EXPECT_TRUE(in_request_zone(g.position(r.path[i]), dest,
                                  g.position(r.path[i + 1])));
    }
  }
}

TEST(Lgf, GreedyHopsMonotonicallyApproach) {
  Network net = test::random_network(400, 17);
  const auto& g = net.graph();
  LgfRouter router(g);
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    PathResult r = router.route(s, d);
    Vec2 dest = g.position(d);
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
      if (r.hop_phases[i] != HopPhase::kGreedy) continue;
      EXPECT_LE(distance(g.position(r.path[i + 1]), dest),
                distance(g.position(r.path[i]), dest) + 1e-9);
    }
  }
}

TEST(Lgf, PerimeterNeverRevisits) {
  Network net = test::random_network(450, 19, DeployModel::kForbiddenAreas);
  LgfRouter router(net.graph());
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    PathResult r = router.route(s, d);
    // Perimeter successors are always fresh nodes under the untried rule.
    std::vector<bool> seen(net.graph().size(), false);
    seen[r.path[0]] = true;
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
      NodeId next = r.path[i + 1];
      if (r.hop_phases[i] == HopPhase::kPerimeter && next != d) {
        EXPECT_FALSE(seen[next]) << "perimeter revisited node " << next;
      }
      seen[next] = true;
    }
  }
}

TEST(Lgf, StuckAtWallDetours) {
  // Flat void wall: the degenerate request zone at equal y forces perimeter.
  Deployment dep = test::grid_with_void(
      20, 10.0, Rect::from_corners({60.0, 60.0}, {140.0, 140.0}));
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  // Find nodes at (50,100) and (150,100).
  NodeId s = kInvalidNode, d = kInvalidNode;
  for (NodeId u = 0; u < g.size(); ++u) {
    if (g.position(u) == Vec2(50.0, 100.0)) s = u;
    if (g.position(u) == Vec2(150.0, 100.0)) d = u;
  }
  ASSERT_NE(s, kInvalidNode);
  ASSERT_NE(d, kInvalidNode);
  ASSERT_TRUE(connected(g, s, d));
  LgfRouter router(g);
  PathResult r = router.route(s, d);
  EXPECT_TRUE(r.delivered());
  EXPECT_GE(r.local_minima, 1u);  // wall forces at least one perimeter phase
  // The detour is longer than the blocked straight line.
  EXPECT_GT(r.length, 100.0);
}

TEST(Lgf, HighDeliveryOnIdealNetworks) {
  int delivered = 0, total = 0;
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(500, seed);
    LgfRouter router(net.graph());
    Rng rng(seed);
    for (int trial = 0; trial < 10; ++trial) {
      auto [s, d] = net.random_connected_interior_pair(rng);
      ++total;
      if (router.route(s, d).delivered()) ++delivered;
    }
  }
  EXPECT_GE(static_cast<double>(delivered) / total, 0.9);
}

}  // namespace
}  // namespace spr
