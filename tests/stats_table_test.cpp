#include "stats/table.h"

#include <gtest/gtest.h>

namespace spr {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"n", "GF", "SLGF2"});
  t.add_row({"400", "12.5", "9.1"});
  t.add_row({"450", "11.0", "8.7"});
  std::string out = t.render();
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("SLGF2"), std::string::npos);
  EXPECT_NE(out.find("12.5"), std::string::npos);
  EXPECT_NE(out.find("450"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAligned) {
  Table t({"a", "bbbb"});
  t.add_row({"xxxxxx", "1"});
  std::string out = t.render();
  // Each line has the same length (aligned columns).
  std::size_t first_nl = out.find('\n');
  std::size_t second_nl = out.find('\n', first_nl + 1);
  std::size_t third_nl = out.find('\n', second_nl + 1);
  EXPECT_EQ(first_nl, second_nl - first_nl - 1);
  EXPECT_EQ(first_nl, third_nl - second_nl - 1);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  std::string out = t.render();
  EXPECT_NE(out.find('1'), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t({"n", "hops"});
  t.add_row({"400", "12.5"});
  EXPECT_EQ(t.to_csv(), "n,hops\n400,12.5\n");
}

TEST(Table, CsvQuotesEmbeddedCommas) {
  Table t({"label"});
  t.add_row({"a,b"});
  EXPECT_EQ(t.to_csv(), "label\n\"a,b\"\n");
}

TEST(Table, CsvQuotesAndDoublesEmbeddedQuotes) {
  Table t({"label"});
  t.add_row({"he said \"hi\""});
  EXPECT_EQ(t.to_csv(), "label\n\"he said \"\"hi\"\"\"\n");
}

TEST(Table, CsvQuotesEmbeddedLineBreaks) {
  Table t({"a", "b"});
  t.add_row({"one\ntwo", "cr\rcell"});
  EXPECT_EQ(t.to_csv(), "a,b\n\"one\ntwo\",\"cr\rcell\"\n");
}

TEST(Table, CsvQuotedHeaderCells) {
  Table t({"plain", "with,comma"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "plain,\"with,comma\"\n1,2\n");
}

TEST(Table, FmtFixedPoint) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.0, 0), "3");
  EXPECT_EQ(Table::fmt(-1.5, 1), "-1.5");
  EXPECT_EQ(Table::fmt(2.675, 3), "2.675");
}

}  // namespace
}  // namespace spr
