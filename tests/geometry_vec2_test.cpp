#include "geometry/vec2.h"

#include <gtest/gtest.h>

#include <sstream>

namespace spr {
namespace {

TEST(Vec2, DefaultIsOrigin) {
  Vec2 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
}

TEST(Vec2, Arithmetic) {
  Vec2 a{1.0, 2.0}, b{3.0, -4.0};
  EXPECT_EQ(a + b, Vec2(4.0, -2.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 6.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(b / 2.0, Vec2(1.5, -2.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 a{1.0, 1.0};
  a += {2.0, 3.0};
  EXPECT_EQ(a, Vec2(3.0, 4.0));
  a -= {1.0, 1.0};
  EXPECT_EQ(a, Vec2(2.0, 3.0));
}

TEST(Vec2, DotAndCross) {
  Vec2 a{1.0, 0.0}, b{0.0, 1.0};
  EXPECT_EQ(a.dot(b), 0.0);
  EXPECT_EQ(a.cross(b), 1.0);   // b is CCW from a
  EXPECT_EQ(b.cross(a), -1.0);  // a is CW from b
  EXPECT_EQ(a.dot(a), 1.0);
}

TEST(Vec2, NormAndDistance) {
  Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, a), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({0.0, 0.0}, a), 25.0);
}

TEST(Vec2, NormalizedUnitLength) {
  Vec2 v = Vec2{10.0, 0.0}.normalized();
  EXPECT_DOUBLE_EQ(v.x, 1.0);
  EXPECT_DOUBLE_EQ(v.y, 0.0);
}

TEST(Vec2, NormalizedZeroVectorIsZero) {
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Vec2, PerpRotatesCcw) {
  EXPECT_EQ(Vec2(1.0, 0.0).perp(), Vec2(0.0, 1.0));
  EXPECT_EQ(Vec2(0.0, 1.0).perp(), Vec2(-1.0, 0.0));
}

TEST(Vec2, Midpoint) {
  EXPECT_EQ(midpoint({0.0, 0.0}, {2.0, 4.0}), Vec2(1.0, 2.0));
}

TEST(Vec2, OrientSigns) {
  Vec2 a{0.0, 0.0}, b{1.0, 0.0};
  EXPECT_GT(orient(a, b, {0.5, 1.0}), 0.0);   // left turn
  EXPECT_LT(orient(a, b, {0.5, -1.0}), 0.0);  // right turn
  EXPECT_EQ(orient(a, b, {2.0, 0.0}), 0.0);   // collinear
}

TEST(Vec2, AlmostEqual) {
  EXPECT_TRUE(almost_equal({1.0, 1.0}, {1.0, 1.0 + 1e-12}));
  EXPECT_FALSE(almost_equal({1.0, 1.0}, {1.0, 1.1}));
}

TEST(Vec2, StreamOutput) {
  std::ostringstream os;
  os << Vec2{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

}  // namespace
}  // namespace spr
