#include <gtest/gtest.h>

#include "safety/distributed.h"
#include "test_helpers.h"

namespace spr {
namespace {

TEST(AsyncSafety, ConvergesToCentralizedStatuses) {
  for (std::uint64_t seed : {11ull, 23ull, 37ull, 59ull}) {
    for (DeployModel model :
         {DeployModel::kIdeal, DeployModel::kForbiddenAreas}) {
      Network net = test::random_network(250, seed, model);
      Rng rng(seed ^ 0xa5a5);
      auto result =
          compute_safety_distributed_async(net.graph(), net.interest_area(), rng);
      for (NodeId u = 0; u < result.info.size(); ++u) {
        for (ZoneType t : kAllZoneTypes) {
          EXPECT_EQ(result.info.is_safe(u, t), net.safety().is_safe(u, t))
              << "seed " << seed << " node " << u << " type "
              << static_cast<int>(t);
        }
      }
    }
  }
}

TEST(AsyncSafety, ConvergesToCentralizedAnchors) {
  Network net = test::random_network(300, 71, DeployModel::kForbiddenAreas);
  Rng rng(0x5eed);
  auto result =
      compute_safety_distributed_async(net.graph(), net.interest_area(), rng);
  for (NodeId u = 0; u < result.info.size(); ++u) {
    for (ZoneType t : kAllZoneTypes) {
      if (net.safety().is_safe(u, t)) continue;
      const auto& central = net.safety().tuple(u).anchors_for(t);
      const auto& async = result.info.tuple(u).anchors_for(t);
      EXPECT_EQ(async.first, central.first) << "node " << u;
      EXPECT_EQ(async.last, central.last) << "node " << u;
      EXPECT_EQ(async.first_pos, central.first_pos);
      EXPECT_EQ(async.last_pos, central.last_pos);
    }
  }
}

TEST(AsyncSafety, DelayDistributionDoesNotAffectResult) {
  // Different delay seeds reorder every delivery; the fixpoint must not
  // change (self-stabilization under reordering).
  Network net = test::random_network(250, 83, DeployModel::kForbiddenAreas);
  Rng rng_a(1), rng_b(999);
  auto a = compute_safety_distributed_async(net.graph(), net.interest_area(),
                                            rng_a);
  auto b = compute_safety_distributed_async(net.graph(), net.interest_area(),
                                            rng_b);
  EXPECT_TRUE(a.info == b.info);
}

TEST(AsyncSafety, TerminatesWellUnderEventCap) {
  Network net = test::random_network(300, 89, DeployModel::kForbiddenAreas);
  Rng rng(5);
  auto result =
      compute_safety_distributed_async(net.graph(), net.interest_area(), rng);
  // Quiescence implies receptions strictly below the runaway cap.
  std::size_t cap =
      64 * net.graph().size() *
      std::max<std::size_t>(
          static_cast<std::size_t>(net.graph().average_degree()), 8);
  EXPECT_LT(result.stats.receptions, cap);
  EXPECT_GE(result.stats.broadcasts, net.graph().size());  // hellos at least
}

TEST(AsyncSafety, MatchesSynchronousProtocol) {
  Network net = test::random_network(250, 97, DeployModel::kForbiddenAreas);
  auto sync = compute_safety_distributed(net.graph(), net.interest_area());
  Rng rng(6);
  auto async =
      compute_safety_distributed_async(net.graph(), net.interest_area(), rng);
  EXPECT_TRUE(sync.info == async.info);
}

}  // namespace
}  // namespace spr
