/// \file report_golden_test.cpp
/// Byte-identity of the ConsoleSink path: the report-based scenarios must
/// print exactly what the printf-based scenarios printed before the
/// ScenarioReport refactor. The golden strings below are verbatim captures
/// of the pre-refactor binaries at fixed seeds (spr_cli scenario ... with
/// the options each test sets), so any drift in the console stream — a
/// changed format string, a reordered block, a lost table — fails here.
///
/// The goldens replay sweeps at tiny sizes; each test runs in well under a
/// second.

#include <gtest/gtest.h>

#include "core/scenario.h"

namespace spr {
namespace {

int run_capturing(const char* name, const ScenarioOptions& opts,
                  std::string& captured) {
  testing::internal::CaptureStdout();
  int code = ScenarioSuite::builtin().run(name, opts);
  captured = testing::internal::GetCapturedStdout();
  return code;
}

TEST(ConsoleGolden, Fig5MaxHops) {
  ScenarioOptions opts;
  opts.networks = 1; opts.pairs = 2; opts.seed = 7; opts.threads = 2;
  std::string captured;
  ASSERT_EQ(run_capturing("fig5-max-hops", opts, captured), 0);
  const std::string expected = R"GOLD(== Fig. 5: maximum number of hops of a GF, LGF, SLGF, SLGF2 routing ==

Fig. 5 — IA (uniform) model, 1 networks x 2 pairs per point
nodes  GF  LGF  SLGF  SLGF2
---------------------------
  400   7    7     7      7
  450  10   12    12     12
  500   6    6     6      6
  550   7    8     8      8
  600  11    9     8      8
  650   5    5     5      6
  700   6    6     6      6
  750   6    8     8      8
  800   6    6     6      6
delivery ratio per scheme (worst point):  GF>=1.00  LGF>=1.00  SLGF>=1.00  SLGF2>=1.00

Fig. 5 — FA (forbidden areas) model, 1 networks x 2 pairs per point
nodes  GF  LGF  SLGF  SLGF2
---------------------------
  400  12    2     2     16
  450  39    2     2     15
  500   6    7     7      7
  550   6    6     6      6
  600   8    8     8      8
  650  12   12    12     12
  700   6    6     6      6
  750   9    9     9      9
  800  13   14    15     14
delivery ratio per scheme (worst point):  GF>=1.00  LGF>=0.50  SLGF>=0.50  SLGF2>=1.00

)GOLD";
  EXPECT_EQ(captured, expected);
}

TEST(ConsoleGolden, Ablation) {
  ScenarioOptions opts;
  opts.networks = 1; opts.pairs = 2; opts.seed = 7; opts.threads = 2;
  std::string captured;
  ASSERT_EQ(run_capturing("ablation", opts, captured), 0);
  const std::string expected = R"GOLD(== SLGF2 ablation: contribution of each mechanism (FA model) ==

avg-hops
nodes   SLGF  SLGF2  -eitherhand  -backup  -limitperim
------------------------------------------------------
  400   2.00   9.00        40.00    32.50         9.00
  600   6.00   6.00         6.00     6.00         6.00
  800  11.00  11.00        11.50    11.00        11.00

avg-length
nodes    SLGF   SLGF2  -eitherhand  -backup  -limitperim
--------------------------------------------------------
  400   27.83  125.92       497.57   451.50       125.92
  600   90.23   90.23        90.23    90.23        90.23
  800  148.76  152.87       152.87   150.52       152.87

perimeter-hops
nodes  SLGF  SLGF2  -eitherhand  -backup  -limitperim
-----------------------------------------------------
  400  0.00   0.00         0.00    14.00         0.00
  600  0.50   0.00         0.00     0.50         0.00
  800  3.50   0.00         0.00     3.00         0.00

delivery
nodes  SLGF  SLGF2  -eitherhand  -backup  -limitperim
-----------------------------------------------------
  400  0.50   1.00         1.00     1.00         1.00
  600  1.00   1.00         1.00     1.00         1.00
  800  1.00   1.00         1.00     1.00         1.00

)GOLD";
  EXPECT_EQ(captured, expected);
}

TEST(ConsoleGolden, HoleField) {
  ScenarioOptions opts;
  opts.networks = 2; opts.pairs = 2; opts.seed = 11; opts.threads = 2;
  std::string captured;
  ASSERT_EQ(run_capturing("hole-field", opts, captured), 0);
  const std::string expected = R"GOLD(== Hole field: unsafe labeling share and per-scheme delivery (FA model) ==

nodes  unsafe%  GF deliv  LGF deliv  SLGF deliv  SLGF2 deliv  SLGF2 perim
-------------------------------------------------------------------------
  500     17.3      1.00       1.00        1.00         1.00         0.00
  600     18.1      1.00       1.00        1.00         1.00         0.00
  700     18.1      1.00       1.00        1.00         1.00         0.00
)GOLD";
  EXPECT_EQ(captured, expected);
}

TEST(ConsoleGolden, FailureDynamics) {
  ScenarioOptions opts;
  opts.networks = 2; opts.seed = 3; opts.threads = 2;
  std::string captured;
  ASSERT_EQ(run_capturing("failure-dynamics", opts, captured), 0);
  const std::string expected = R"GOLD(== Failure dynamics: 2 trials, 700 nodes, 35m blast ==

scheme  delivered before  delivered after
-----------------------------------------
    GF               2/2              2/2
   LGF               2/2              1/2
  SLGF               2/2              1/2
 SLGF2               2/2              2/2
incremental relabeling: 39.5 flips, 306.5 re-evaluations per failure (mean over 2 trials)
)GOLD";
  EXPECT_EQ(captured, expected);
}

TEST(ConsoleGolden, MobileStream) {
  ScenarioOptions opts;
  opts.networks = 3; opts.seed = 9;
  std::string captured;
  ASSERT_EQ(run_capturing("mobile-stream", opts, captured), 0);
  const std::string expected = R"GOLD(== Mobile stream: 3 epochs, 600 nodes, dt=20s ==

epoch  time  links  delivered  hops  unsafe
-------------------------------------------
    0     0   5026        yes    10      18
    1    20   6359        yes     8       4
    2    40   7881        yes     5      12
delivered 3/3 epochs, mean hops 7.7
)GOLD";
  EXPECT_EQ(captured, expected);
}

}  // namespace
}  // namespace spr
