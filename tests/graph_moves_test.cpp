#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "deploy/deployment.h"
#include "graph/spatial_grid.h"
#include "graph/unit_disk.h"
#include "mobility/waypoint.h"
#include "test_helpers.h"
#include "util/task_pool.h"

namespace spr {
namespace {

Deployment draw(int nodes, std::uint64_t seed,
                DeployModel model = DeployModel::kIdeal) {
  DeploymentConfig config;
  config.node_count = nodes;
  config.model = model;
  Rng rng(seed);
  return deploy(config, rng);
}

/// Moves every node by an independent bounded offset (clamped to the
/// field), returning the new position vector.
std::vector<Vec2> jitter_positions(const std::vector<Vec2>& positions,
                                   const Rect& field, double magnitude,
                                   Rng& rng) {
  std::vector<Vec2> moved = positions;
  for (Vec2& p : moved) {
    p.x = std::clamp(p.x + rng.uniform(-magnitude, magnitude), field.lo().x,
                     field.hi().x);
    p.y = std::clamp(p.y + rng.uniform(-magnitude, magnitude), field.lo().y,
                     field.hi().y);
  }
  return moved;
}

bool same_adjacency(const UnitDiskGraph& a, const UnitDiskGraph& b) {
  if (a.size() != b.size()) return false;
  for (NodeId u = 0; u < a.size(); ++u) {
    auto na = a.neighbors(u);
    auto nb = b.neighbors(u);
    if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end())) return false;
  }
  return true;
}

/// A relocated grid must answer every query exactly like a grid built from
/// scratch over the moved point set (same ids, same order).
TEST(SpatialGridRelocate, MatchesFreshBuildOnQueries) {
  for (std::uint64_t seed : test::property_seeds()) {
    Deployment dep = draw(300, seed);
    SpatialGrid grid(dep.positions, dep.field, dep.radio_range);

    Rng rng(seed ^ 0x90e);
    std::vector<Vec2> moved_positions =
        jitter_positions(dep.positions, dep.field, 30.0, rng);
    // Move only a subset: every third node keeps its old position.
    std::vector<NodeId> moved_ids;
    std::vector<Vec2> moved_to;
    for (NodeId u = 0; u < moved_positions.size(); ++u) {
      if (u % 3 == 0) {
        moved_positions[u] = dep.positions[u];
        continue;
      }
      moved_ids.push_back(u);
      moved_to.push_back(moved_positions[u]);
    }
    grid.relocate(moved_ids, moved_to);
    SpatialGrid fresh(moved_positions, dep.field, dep.radio_range);

    for (int probe = 0; probe < 64; ++probe) {
      Vec2 center{rng.uniform(dep.field.lo().x, dep.field.hi().x),
                  rng.uniform(dep.field.lo().y, dep.field.hi().y)};
      double radius = rng.uniform(1.0, 45.0);
      std::vector<NodeId> got, want;
      grid.query_radius(center, radius, kInvalidNode, got);
      fresh.query_radius(center, radius, kInvalidNode, want);
      ASSERT_EQ(got, want) << "seed " << seed << " probe " << probe;
    }
    for (NodeId u = 0; u < moved_positions.size(); ++u) {
      ASSERT_EQ(grid.position(u), moved_positions[u]);
    }
  }
}

/// Moves every fourth node by a bounded offset, leaving the other three
/// quarters exactly in place — below the adaptive cutover threshold, so
/// with_moves takes the relocate-and-patch branch rather than delegating
/// to a fresh build.
std::vector<Vec2> jitter_subset(const std::vector<Vec2>& positions,
                                const Rect& field, double magnitude,
                                Rng& rng) {
  std::vector<Vec2> moved = positions;
  for (std::size_t i = 0; i < moved.size(); i += 4) {
    moved[i].x = std::clamp(moved[i].x + rng.uniform(-magnitude, magnitude),
                            field.lo().x, field.hi().x);
    moved[i].y = std::clamp(moved[i].y + rng.uniform(-magnitude, magnitude),
                            field.lo().y, field.hi().y);
  }
  return moved;
}

/// with_moves must produce exactly the adjacency a from-scratch build over
/// the new positions produces — offsets, order, and aliveness included —
/// on *both* internal paths: whole-field motion (the adaptive fresh-build
/// cutover) and subset motion (the relocate-and-patch branch).
TEST(UnitDiskMoves, PatchedAdjacencyBitIdenticalToFreshBuild) {
  for (std::uint64_t seed : test::property_seeds()) {
    for (bool subset : {false, true}) {
      Deployment dep = draw(350, seed, DeployModel::kForbiddenAreas);
      UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
      Rng rng(seed ^ 0x3a1);
      std::vector<Vec2> moved =
          subset ? jitter_subset(dep.positions, dep.field, 25.0, rng)
                 : jitter_positions(dep.positions, dep.field, 25.0, rng);

      EdgeDiff diff;
      UnitDiskGraph patched = g.with_moves(moved, &diff);
      UnitDiskGraph fresh(moved, dep.radio_range, dep.field);
      EXPECT_TRUE(same_adjacency(patched, fresh))
          << "seed " << seed << " subset " << subset;
      EXPECT_EQ(patched.edge_count(), fresh.edge_count());
      for (NodeId u = 0; u < patched.size(); ++u) {
        ASSERT_EQ(patched.position(u), moved[u]);
      }
      std::size_t moved_count = 0;
      for (NodeId u = 0; u < g.size(); ++u) {
        if (!(moved[u] == dep.positions[u])) ++moved_count;
      }
      EXPECT_EQ(diff.moved_nodes, moved_count);

      // The diff is exactly the symmetric difference of the edge sets.
      std::size_t common = 0;
      for (NodeId u = 0; u < g.size(); ++u) {
        for (NodeId v : g.neighbors(u)) {
          if (v > u && patched.are_neighbors(u, v)) ++common;
        }
      }
      EXPECT_EQ(diff.removed.size(), g.edge_count() - common);
      EXPECT_EQ(diff.added.size(), patched.edge_count() - common);
      for (auto [u, v] : diff.added) {
        EXPECT_LT(u, v);
        EXPECT_TRUE(patched.are_neighbors(u, v));
        EXPECT_FALSE(g.are_neighbors(u, v));
      }
      for (auto [u, v] : diff.removed) {
        EXPECT_LT(u, v);
        EXPECT_TRUE(g.are_neighbors(u, v));
        EXPECT_FALSE(patched.are_neighbors(u, v));
      }
    }
  }
}

/// Dead nodes move with everyone else but stay edgeless, and the patched
/// graph matches a fresh build with the same aliveness mask — on both the
/// cutover and the patch branch.
TEST(UnitDiskMoves, AlivenessCarriesOver) {
  for (bool subset : {false, true}) {
    Deployment dep = draw(300, 11);
    UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
    std::vector<NodeId> failed;
    for (NodeId u = 20; u < 60; u += 3) failed.push_back(u);
    UnitDiskGraph degraded = g.with_failures(failed);

    Rng rng(0xbeef);
    std::vector<Vec2> moved =
        subset ? jitter_subset(dep.positions, dep.field, 20.0, rng)
               : jitter_positions(dep.positions, dep.field, 20.0, rng);
    UnitDiskGraph patched = degraded.with_moves(moved);
    std::vector<bool> alive(dep.positions.size(), true);
    for (NodeId u : failed) alive[u] = false;
    UnitDiskGraph fresh(moved, dep.radio_range, dep.field, alive);
    EXPECT_TRUE(same_adjacency(patched, fresh)) << "subset " << subset;
    for (NodeId u : failed) {
      EXPECT_FALSE(patched.alive(u));
      EXPECT_EQ(patched.degree(u), 0u);
    }
  }
}

/// A no-op move (identical positions) is an identity: no diff, identical
/// adjacency, and the relocated grid still answers queries.
TEST(UnitDiskMoves, NoMovesIsIdentity) {
  Deployment dep = draw(250, 5);
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  EdgeDiff diff;
  UnitDiskGraph same = g.with_moves(dep.positions, &diff);
  EXPECT_TRUE(same_adjacency(g, same));
  EXPECT_TRUE(diff.added.empty());
  EXPECT_TRUE(diff.removed.empty());
}

/// Successive with_moves epochs driven by the random-waypoint process keep
/// matching from-scratch builds — the re-pin regime StreamSim runs.
TEST(UnitDiskMoves, WaypointEpochsStayBitIdentical) {
  Deployment dep = draw(300, 77);
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  WaypointConfig wc;
  wc.field = dep.field;
  WaypointModel model(dep.positions, wc, Rng(0x77));
  for (int epoch = 0; epoch < 4; ++epoch) {
    model.advance(15.0);
    g = g.with_moves(model.positions());
    UnitDiskGraph fresh(model.positions(), dep.radio_range, dep.field);
    ASSERT_TRUE(same_adjacency(g, fresh)) << "epoch " << epoch;
  }
}

/// with_moves with a build pool produces the same graph as the serial
/// path — subset motion drives the patch branch's moved-node query
/// fan-out, whole-field motion the cutover's parallel fresh build.
TEST(UnitDiskMoves, ParallelMovedQueriesAreBitIdentical) {
  for (bool subset : {false, true}) {
    Deployment dep = draw(400, 13);
    UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
    Rng rng(31);
    std::vector<Vec2> moved =
        subset ? jitter_subset(dep.positions, dep.field, 30.0, rng)
               : jitter_positions(dep.positions, dep.field, 30.0, rng);
    TaskPool pool(4);
    UnitDiskGraph serial = g.with_moves(moved);
    UnitDiskGraph parallel = g.with_moves(moved, nullptr, &pool);
    EXPECT_TRUE(same_adjacency(serial, parallel)) << "subset " << subset;
  }
}

}  // namespace
}  // namespace spr
