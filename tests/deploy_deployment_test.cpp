#include "deploy/deployment.h"

#include <gtest/gtest.h>

namespace spr {
namespace {

TEST(Deployment, IaPlacesRequestedCount) {
  DeploymentConfig config;
  config.node_count = 500;
  Rng rng(1);
  Deployment d = deploy(config, rng);
  EXPECT_EQ(d.positions.size(), 500u);
  EXPECT_TRUE(d.forbidden_areas.empty());
  EXPECT_DOUBLE_EQ(d.radio_range, 20.0);
}

TEST(Deployment, IaPositionsInsideField) {
  DeploymentConfig config;
  config.node_count = 400;
  Rng rng(2);
  Deployment d = deploy(config, rng);
  for (Vec2 p : d.positions) EXPECT_TRUE(config.field.contains(p));
}

TEST(Deployment, IaIsDeterministicPerSeed) {
  DeploymentConfig config;
  config.node_count = 100;
  Rng r1(42), r2(42);
  Deployment a = deploy(config, r1);
  Deployment b = deploy(config, r2);
  ASSERT_EQ(a.positions.size(), b.positions.size());
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_EQ(a.positions[i], b.positions[i]);
  }
}

TEST(Deployment, IaUniformCoverage) {
  // Quadrant counts of a 2000-node draw should be roughly balanced.
  DeploymentConfig config;
  config.node_count = 2000;
  Rng rng(3);
  Deployment d = deploy(config, rng);
  int counts[4] = {0, 0, 0, 0};
  for (Vec2 p : d.positions) {
    int qx = p.x < 100.0 ? 0 : 1;
    int qy = p.y < 100.0 ? 0 : 1;
    ++counts[qx * 2 + qy];
  }
  for (int c : counts) EXPECT_NEAR(c, 500, 120);
}

TEST(Deployment, FaCreatesForbiddenAreas) {
  DeploymentConfig config;
  config.model = DeployModel::kForbiddenAreas;
  config.node_count = 300;
  Rng rng(4);
  Deployment d = deploy(config, rng);
  EXPECT_GE(d.forbidden_areas.size(),
            static_cast<std::size_t>(config.min_forbidden_areas));
  EXPECT_LE(d.forbidden_areas.size(),
            static_cast<std::size_t>(config.max_forbidden_areas));
}

TEST(Deployment, FaNodesNeverInsideForbiddenAreas) {
  DeploymentConfig config;
  config.model = DeployModel::kForbiddenAreas;
  config.node_count = 600;
  for (std::uint64_t seed : {5ull, 6ull, 7ull, 8ull}) {
    Rng rng(seed);
    Deployment d = deploy(config, rng);
    EXPECT_EQ(d.positions.size(), 600u);
    for (Vec2 p : d.positions) {
      EXPECT_FALSE(d.in_forbidden_area(p)) << "seed " << seed;
    }
  }
}

TEST(Deployment, FaForbiddenAreasHaveSaneExtent) {
  DeploymentConfig config;
  config.model = DeployModel::kForbiddenAreas;
  Rng rng(9);
  Deployment d = deploy(config, rng);
  for (const Polygon& area : d.forbidden_areas) {
    Rect box = area.bounding_box();
    EXPECT_LE(box.width(), config.max_forbidden_extent + 1e-9);
    EXPECT_LE(box.height(), config.max_forbidden_extent + 1e-9);
    EXPECT_GT(area.area(), 0.0);
  }
}

TEST(Deployment, InForbiddenAreaQuery) {
  Deployment d;
  d.forbidden_areas.push_back(
      Polygon::from_rect(Rect::from_corners({10.0, 10.0}, {20.0, 20.0})));
  EXPECT_TRUE(d.in_forbidden_area({15.0, 15.0}));
  EXPECT_FALSE(d.in_forbidden_area({5.0, 5.0}));
}

TEST(Deployment, PerturbedGridCoversField) {
  DeploymentConfig config;
  config.node_count = 400;
  Rng rng(10);
  Deployment d = deploy_perturbed_grid(config, rng);
  EXPECT_EQ(d.positions.size(), 400u);  // 20 x 20
  // Every 20m x 20m tile should be populated for a 200m field with 400 nodes.
  int tiles[10][10] = {};
  for (Vec2 p : d.positions) {
    int tx = std::min(9, static_cast<int>(p.x / 20.0));
    int ty = std::min(9, static_cast<int>(p.y / 20.0));
    tiles[std::max(0, tx)][std::max(0, ty)]++;
  }
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) EXPECT_GT(tiles[x][y], 0);
  }
}

TEST(Deployment, CustomField) {
  DeploymentConfig config;
  config.field = Rect::from_bounds({-50.0, -50.0}, {50.0, 50.0});
  config.node_count = 50;
  Rng rng(11);
  Deployment d = deploy(config, rng);
  for (Vec2 p : d.positions) EXPECT_TRUE(config.field.contains(p));
}

}  // namespace
}  // namespace spr
