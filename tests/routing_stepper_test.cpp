#include "routing/router.h"

#include <gtest/gtest.h>

#include "core/network.h"
#include "test_helpers.h"

namespace spr {
namespace {

const Scheme kAllSchemes[] = {Scheme::kGf, Scheme::kGfFace, Scheme::kLgf,
                              Scheme::kSlgf, Scheme::kSlgf2};

/// Stepping a stepper to exhaustion must reproduce route() exactly —
/// nodes, phases, float-exact length, status, local-minimum count.
TEST(RouteStepper, StepToCompletionEqualsRoutePerScheme) {
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(500, seed, DeployModel::kForbiddenAreas);
    Rng rng(seed ^ 0xabc);
    for (Scheme scheme : kAllSchemes) {
      auto router = net.make_router(scheme);
      for (int trial = 0; trial < 8; ++trial) {
        auto [s, d] = net.random_connected_interior_pair(rng);
        if (s == kInvalidNode) continue;
        PathResult atomic = router->route(s, d);
        auto stepper = router->make_stepper(s, d);
        while (stepper->step()) {
        }
        PathResult stepped = stepper->take_result();
        EXPECT_EQ(stepped.status, atomic.status);
        EXPECT_EQ(stepped.path, atomic.path);
        EXPECT_EQ(stepped.hop_phases, atomic.hop_phases);
        EXPECT_EQ(stepped.length, atomic.length);  // bit-exact
        EXPECT_EQ(stepped.local_minima, atomic.local_minima);
      }
    }
  }
}

TEST(RouteStepper, PartialWalkIsObservableBetweenSteps) {
  Network net = test::random_network(400, 7);
  Rng rng(3);
  auto [s, d] = net.random_connected_interior_pair(rng);
  ASSERT_NE(s, kInvalidNode);
  auto router = net.make_router(Scheme::kSlgf2);
  auto stepper = router->make_stepper(s, d);
  ASSERT_TRUE(stepper->in_flight());
  EXPECT_EQ(stepper->current(), s);
  EXPECT_EQ(stepper->destination(), d);
  ASSERT_EQ(stepper->result().path.size(), 1u);
  std::size_t hops = 0;
  while (stepper->step()) {
    ++hops;
    // The partial result grows hop by hop; the head is always `s`.
    EXPECT_EQ(stepper->result().path.size(), hops + 1);
    EXPECT_EQ(stepper->result().path.front(), s);
    EXPECT_EQ(stepper->result().path.back(), stepper->current());
  }
}

TEST(RouteStepper, TtlLimitCapsTheWalk) {
  Network net = test::random_network(400, 9);
  Rng rng(5);
  auto [s, d] = net.random_connected_interior_pair(rng);
  ASSERT_NE(s, kInvalidNode);
  auto router = net.make_router(Scheme::kLgf);
  PathResult full = router->route(s, d);
  ASSERT_TRUE(full.delivered());
  if (full.hops() < 2) GTEST_SKIP() << "pair too close for a cap test";
  auto stepper = router->make_stepper(s, d, {}, full.hops() - 1);
  while (stepper->step()) {
  }
  PathResult capped = stepper->take_result();
  EXPECT_EQ(capped.status, RouteStatus::kTtlExpired);
  EXPECT_EQ(capped.hops(), full.hops() - 1);
}

TEST(RouteStepper, RemainingTtlResumesWithoutExtendingLife) {
  // A walk split at hop k and resumed with the remaining budget must spend
  // exactly the same total budget as the unsplit walk.
  Network net = test::random_network(400, 11);
  Rng rng(8);
  auto [s, d] = net.random_connected_interior_pair(rng);
  ASSERT_NE(s, kInvalidNode);
  auto router = net.make_router(Scheme::kLgf);
  auto first = router->make_stepper(s, d);
  std::size_t initial_budget = first->ttl_remaining();
  ASSERT_TRUE(first->step());
  EXPECT_EQ(first->ttl_remaining(), initial_budget - 1);
  NodeId at = first->current();
  auto resumed = router->make_stepper(at, d, {}, first->ttl_remaining());
  EXPECT_EQ(resumed->ttl_remaining(), initial_budget - 1);
}

/// A pooled slot restarted in place across many pairs must walk exactly
/// like a fresh stepper every time — the reuse path (header reset,
/// capacity-keeping buffer clears, release between lives) must leak no
/// state from one flight into the next.
TEST(RouteStepper, RestartInPlaceEqualsFreshStepperPerScheme) {
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(500, seed, DeployModel::kForbiddenAreas);
    Rng rng(seed ^ 0xdef);
    for (Scheme scheme : kAllSchemes) {
      auto router = net.make_router(scheme);
      RouteStepper pooled;  // one slot, re-armed for every pair
      for (int trial = 0; trial < 8; ++trial) {
        auto [s, d] = net.random_connected_interior_pair(rng);
        if (s == kInvalidNode) continue;
        auto fresh = router->make_stepper(s, d);
        router->restart_stepper(pooled, s, d, {});
        EXPECT_EQ(pooled.in_flight(), fresh->in_flight());
        while (fresh->step()) {
          ASSERT_TRUE(pooled.step());
          EXPECT_EQ(pooled.current(), fresh->current());
        }
        EXPECT_FALSE(pooled.step());
        PathResult want = fresh->take_result();
        PathResult got = pooled.take_result();
        EXPECT_EQ(got.status, want.status);
        EXPECT_EQ(got.path, want.path);
        EXPECT_EQ(got.hop_phases, want.hop_phases);
        EXPECT_EQ(got.length, want.length);  // bit-exact
        EXPECT_EQ(got.local_minima, want.local_minima);
        if (trial % 3 == 0) pooled.release();  // reuse after release too
      }
    }
  }
}

/// Restarting honors the same degenerate-endpoint contract as
/// make_stepper: s == d delivers immediately, out-of-range endpoints
/// finish as an empty dead end, and an explicit TTL caps the walk.
TEST(RouteStepper, RestartHandlesDegenerateEndpointsAndTtl) {
  Network net = test::random_network(400, 17);
  auto router = net.make_router(Scheme::kLgf);
  RouteStepper pooled;
  router->restart_stepper(pooled, 5, 5, {});
  EXPECT_FALSE(pooled.in_flight());
  EXPECT_EQ(pooled.result().status, RouteStatus::kDelivered);
  EXPECT_EQ(pooled.result().path, std::vector<NodeId>{5});
  router->restart_stepper(pooled, kInvalidNode, 5, {});
  EXPECT_FALSE(pooled.in_flight());
  EXPECT_EQ(pooled.result().status, RouteStatus::kDeadEnd);
  EXPECT_TRUE(pooled.result().path.empty());

  Rng rng(6);
  auto [s, d] = net.random_connected_interior_pair(rng);
  ASSERT_NE(s, kInvalidNode);
  PathResult full = router->route(s, d);
  if (full.delivered() && full.hops() >= 2) {
    router->restart_stepper(pooled, s, d, {}, full.hops() - 1);
    while (pooled.step()) {
    }
    PathResult capped = pooled.take_result();
    EXPECT_EQ(capped.status, RouteStatus::kTtlExpired);
    EXPECT_EQ(capped.hops(), full.hops() - 1);
  }
}

TEST(RouteStepper, DegenerateEndpointsFinishOnConstruction) {
  Network net = test::random_network(400, 13);
  auto router = net.make_router(Scheme::kGf);
  // s == d: delivered with the single-node path, no steps taken.
  auto same = router->make_stepper(5, 5);
  EXPECT_FALSE(same->in_flight());
  EXPECT_EQ(same->result().status, RouteStatus::kDelivered);
  EXPECT_EQ(same->result().path, std::vector<NodeId>{5});
  EXPECT_FALSE(same->step());
  // Invalid endpoints: the empty dead-end result route() returns.
  auto invalid = router->make_stepper(kInvalidNode, 5);
  EXPECT_FALSE(invalid->in_flight());
  EXPECT_EQ(invalid->result().status, RouteStatus::kDeadEnd);
  EXPECT_TRUE(invalid->result().path.empty());
}

}  // namespace
}  // namespace spr
