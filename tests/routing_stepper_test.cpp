#include "routing/router.h"

#include <gtest/gtest.h>

#include "core/network.h"
#include "test_helpers.h"

namespace spr {
namespace {

const Scheme kAllSchemes[] = {Scheme::kGf, Scheme::kGfFace, Scheme::kLgf,
                              Scheme::kSlgf, Scheme::kSlgf2};

/// Stepping a stepper to exhaustion must reproduce route() exactly —
/// nodes, phases, float-exact length, status, local-minimum count.
TEST(RouteStepper, StepToCompletionEqualsRoutePerScheme) {
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(500, seed, DeployModel::kForbiddenAreas);
    Rng rng(seed ^ 0xabc);
    for (Scheme scheme : kAllSchemes) {
      auto router = net.make_router(scheme);
      for (int trial = 0; trial < 8; ++trial) {
        auto [s, d] = net.random_connected_interior_pair(rng);
        if (s == kInvalidNode) continue;
        PathResult atomic = router->route(s, d);
        auto stepper = router->make_stepper(s, d);
        while (stepper->step()) {
        }
        PathResult stepped = stepper->take_result();
        EXPECT_EQ(stepped.status, atomic.status);
        EXPECT_EQ(stepped.path, atomic.path);
        EXPECT_EQ(stepped.hop_phases, atomic.hop_phases);
        EXPECT_EQ(stepped.length, atomic.length);  // bit-exact
        EXPECT_EQ(stepped.local_minima, atomic.local_minima);
      }
    }
  }
}

TEST(RouteStepper, PartialWalkIsObservableBetweenSteps) {
  Network net = test::random_network(400, 7);
  Rng rng(3);
  auto [s, d] = net.random_connected_interior_pair(rng);
  ASSERT_NE(s, kInvalidNode);
  auto router = net.make_router(Scheme::kSlgf2);
  auto stepper = router->make_stepper(s, d);
  ASSERT_TRUE(stepper->in_flight());
  EXPECT_EQ(stepper->current(), s);
  EXPECT_EQ(stepper->destination(), d);
  ASSERT_EQ(stepper->result().path.size(), 1u);
  std::size_t hops = 0;
  while (stepper->step()) {
    ++hops;
    // The partial result grows hop by hop; the head is always `s`.
    EXPECT_EQ(stepper->result().path.size(), hops + 1);
    EXPECT_EQ(stepper->result().path.front(), s);
    EXPECT_EQ(stepper->result().path.back(), stepper->current());
  }
}

TEST(RouteStepper, TtlLimitCapsTheWalk) {
  Network net = test::random_network(400, 9);
  Rng rng(5);
  auto [s, d] = net.random_connected_interior_pair(rng);
  ASSERT_NE(s, kInvalidNode);
  auto router = net.make_router(Scheme::kLgf);
  PathResult full = router->route(s, d);
  ASSERT_TRUE(full.delivered());
  if (full.hops() < 2) GTEST_SKIP() << "pair too close for a cap test";
  auto stepper = router->make_stepper(s, d, {}, full.hops() - 1);
  while (stepper->step()) {
  }
  PathResult capped = stepper->take_result();
  EXPECT_EQ(capped.status, RouteStatus::kTtlExpired);
  EXPECT_EQ(capped.hops(), full.hops() - 1);
}

TEST(RouteStepper, RemainingTtlResumesWithoutExtendingLife) {
  // A walk split at hop k and resumed with the remaining budget must spend
  // exactly the same total budget as the unsplit walk.
  Network net = test::random_network(400, 11);
  Rng rng(8);
  auto [s, d] = net.random_connected_interior_pair(rng);
  ASSERT_NE(s, kInvalidNode);
  auto router = net.make_router(Scheme::kLgf);
  auto first = router->make_stepper(s, d);
  std::size_t initial_budget = first->ttl_remaining();
  ASSERT_TRUE(first->step());
  EXPECT_EQ(first->ttl_remaining(), initial_budget - 1);
  NodeId at = first->current();
  auto resumed = router->make_stepper(at, d, {}, first->ttl_remaining());
  EXPECT_EQ(resumed->ttl_remaining(), initial_budget - 1);
}

TEST(RouteStepper, DegenerateEndpointsFinishOnConstruction) {
  Network net = test::random_network(400, 13);
  auto router = net.make_router(Scheme::kGf);
  // s == d: delivered with the single-node path, no steps taken.
  auto same = router->make_stepper(5, 5);
  EXPECT_FALSE(same->in_flight());
  EXPECT_EQ(same->result().status, RouteStatus::kDelivered);
  EXPECT_EQ(same->result().path, std::vector<NodeId>{5});
  EXPECT_FALSE(same->step());
  // Invalid endpoints: the empty dead-end result route() returns.
  auto invalid = router->make_stepper(kInvalidNode, 5);
  EXPECT_FALSE(invalid->in_flight());
  EXPECT_EQ(invalid->result().status, RouteStatus::kDeadEnd);
  EXPECT_TRUE(invalid->result().path.empty());
}

}  // namespace
}  // namespace spr
