#include "test_helpers.h"

namespace spr::test {

UnitDiskGraph make_graph(std::vector<Vec2> positions, double range) {
  Rect bounds = Rect::from_bounds({0.0, 0.0}, {1.0, 1.0});
  for (Vec2 p : positions) bounds = bounds.expanded_to(p);
  bounds = bounds.inflated(range);
  return UnitDiskGraph(std::move(positions), range, bounds);
}

Deployment dense_grid_deployment(int node_count, std::uint64_t seed) {
  DeploymentConfig config;
  config.node_count = node_count;
  Rng rng(seed);
  return deploy_perturbed_grid(config, rng, 0.2);
}

Deployment grid_with_void(int per_side, double spacing, Rect void_rect) {
  Deployment d;
  d.field = Rect::from_bounds({0.0, 0.0},
                              {spacing * (per_side + 1), spacing * (per_side + 1)});
  d.radio_range = spacing * 1.5;  // 8-connected grid
  for (int row = 1; row <= per_side; ++row) {
    for (int col = 1; col <= per_side; ++col) {
      Vec2 p{col * spacing, row * spacing};
      if (void_rect.contains(p)) continue;
      d.positions.push_back(p);
    }
  }
  return d;
}

Network random_network(int node_count, std::uint64_t seed, DeployModel model) {
  NetworkConfig config;
  config.deployment.node_count = node_count;
  config.deployment.model = model;
  config.seed = seed;
  return Network::create(config);
}

std::vector<std::uint64_t> property_seeds() {
  return {11, 23, 37, 59, 71, 97, 113, 131};
}

}  // namespace spr::test
