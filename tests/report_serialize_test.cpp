/// \file report_serialize_test.cpp
/// Exact JSON round-trip of the sweep result model (Summary,
/// RouteAggregate, SweepPoint, CellResult, SweepTimings, shard files) and
/// the acceptance check behind distributed sweeps: merging N single-cell
/// shard JSONs reproduces the in-process run_sweep aggregates
/// bit-identically.

#include "report/serialize.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "core/scenario.h"

namespace spr {
namespace {

/// Serializes with to_json, parses the text, deserializes with from_json.
template <typename T>
T round_trip(const T& value) {
  JsonWriter w;
  to_json(w, value);
  JsonValue parsed;
  std::string error;
  EXPECT_TRUE(JsonValue::parse(w.str(), parsed, &error)) << error;
  T out;
  EXPECT_TRUE(from_json(parsed, out)) << w.str();
  return out;
}

/// Bitwise equality of every derived moment — the same definition the
/// sweep determinism checks use.
void expect_summaries_identical(const Summary& a, const Summary& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.values(), b.values());
}

Summary sample_summary() {
  Summary s;
  for (double v : {3.0, 1.0 / 3.0, 7.25, -2.5, 1e-12, 123456.789}) s.add(v);
  return s;
}

TEST(Serialize, SummaryRoundTripIsBitExact) {
  Summary original = sample_summary();
  Summary copy = round_trip(original);
  expect_summaries_identical(original, copy);
  // The reconstructed accumulator merges exactly like the original.
  Summary merged_a, merged_b;
  merged_a.merge(original);
  merged_a.merge(copy);
  merged_b.merge(copy);
  merged_b.merge(original);
  expect_summaries_identical(merged_a, merged_b);
}

TEST(Serialize, EmptySummaryRoundTrips) {
  Summary empty;
  Summary copy = round_trip(empty);
  EXPECT_TRUE(copy.empty());
}

TEST(Serialize, SummaryRejectsMalformed) {
  Summary out;
  JsonValue v;
  ASSERT_TRUE(JsonValue::parse(R"({"values":[1,"two"]})", v));
  EXPECT_FALSE(from_json(v, out));
  ASSERT_TRUE(JsonValue::parse(R"({"values":7})", v));
  EXPECT_FALSE(from_json(v, out));
  ASSERT_TRUE(JsonValue::parse(R"({})", v));
  EXPECT_FALSE(from_json(v, out));
  ASSERT_TRUE(JsonValue::parse(R"({"values":[null]})", v));
  EXPECT_FALSE(from_json(v, out));
}

RouteAggregate sample_aggregate(std::uint64_t seed) {
  RouteAggregate agg;
  agg.requested = 10 + seed % 3;
  agg.attempted = 9;
  agg.delivered = 8;
  for (int i = 0; i < 6; ++i) {
    double x = static_cast<double>((seed + 1) * (i + 1));
    agg.hops.add(x);
    agg.length.add(x * 17.5);
    agg.stretch_hops.add(1.0 + x / 100.0);
    agg.stretch_length.add(1.0 + x / 300.0);
    agg.perimeter_hops.add(static_cast<double>(i % 2));
    agg.backup_hops.add(static_cast<double>(i % 3));
    agg.local_minima.add(static_cast<double>(i));
  }
  return agg;
}

void expect_aggregates_identical(const RouteAggregate& a,
                                 const RouteAggregate& b) {
  EXPECT_EQ(a.requested, b.requested);
  EXPECT_EQ(a.attempted, b.attempted);
  EXPECT_EQ(a.delivered, b.delivered);
  expect_summaries_identical(a.hops, b.hops);
  expect_summaries_identical(a.length, b.length);
  expect_summaries_identical(a.stretch_hops, b.stretch_hops);
  expect_summaries_identical(a.stretch_length, b.stretch_length);
  expect_summaries_identical(a.perimeter_hops, b.perimeter_hops);
  expect_summaries_identical(a.backup_hops, b.backup_hops);
  expect_summaries_identical(a.local_minima, b.local_minima);
}

TEST(Serialize, RouteAggregateRoundTrip) {
  RouteAggregate original = sample_aggregate(5);
  expect_aggregates_identical(original, round_trip(original));
}

TEST(Serialize, CellResultAndSweepPointRoundTrip) {
  CellResult cell;
  cell.emplace("GF", sample_aggregate(1));
  cell.emplace("SLGF2", sample_aggregate(2));
  CellResult cell_copy = round_trip(cell);
  ASSERT_EQ(cell_copy.size(), 2u);
  expect_aggregates_identical(cell.at("GF"), cell_copy.at("GF"));
  expect_aggregates_identical(cell.at("SLGF2"), cell_copy.at("SLGF2"));

  SweepPoint point;
  point.node_count = 600;
  point.by_scheme = cell;
  SweepPoint point_copy = round_trip(point);
  EXPECT_EQ(point_copy.node_count, 600);
  expect_aggregates_identical(point.by_scheme.at("GF"),
                              point_copy.by_scheme.at("GF"));
}

TEST(Serialize, SweepTimingsRoundTrip) {
  SweepTimings t;
  t.construction_seconds = 1.25;
  t.pair_draw_seconds = 0.5;
  t.oracle_seconds = 2.0 / 3.0;
  t.routing_seconds = 0.125;
  t.bfs_searches = 123;
  t.dijkstra_searches = 456;
  t.pairs_requested = 1000;
  t.pairs_routed = 990;
  SweepTimings copy = round_trip(t);
  EXPECT_EQ(copy.construction_seconds, t.construction_seconds);
  EXPECT_EQ(copy.oracle_seconds, t.oracle_seconds);
  EXPECT_EQ(copy.bfs_searches, t.bfs_searches);
  EXPECT_EQ(copy.pairs_routed, t.pairs_routed);
}

SweepConfig small_sweep_config() {
  SweepConfig config;
  config.node_counts = {400, 500};
  config.networks_per_point = 3;
  config.pairs_per_network = 2;
  config.base_seed = 77;
  config.threads = 1;
  config.schemes = SweepConfig::paper_schemes();
  return config;
}

TEST(Shards, SingleCellShardsMergeBitIdenticallyToRunSweep) {
  SweepConfig config = small_sweep_config();
  auto in_process = run_sweep(config);

  // One shard per cell (shard i of N where N = total cells), each
  // round-tripped through its JSON text — the full scp-and-merge workflow.
  int total_cells = static_cast<int>(config.node_counts.size()) *
                    config.networks_per_point;
  std::vector<SweepSlice> shards;
  for (int i = 0; i < total_cells; ++i) {
    auto cells = run_sweep_slice(config, i, total_cells);
    ASSERT_EQ(cells.size(), 1u) << i;
    SweepSlice shard = make_slice(config, i, total_cells, std::move(cells));
    JsonWriter w;
    to_json(w, shard);
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(w.str(), parsed, &error)) << error;
    SweepSlice decoded;
    ASSERT_TRUE(from_json(parsed, decoded));
    shards.push_back(std::move(decoded));
  }

  std::vector<SweepPoint> merged;
  std::string error;
  ASSERT_TRUE(merge_slices(std::move(shards), merged, &error)) << error;
  EXPECT_TRUE(sweep_results_identical(in_process, merged));
}

TEST(Shards, UnevenShardingAlsoMergesIdentically) {
  SweepConfig config = small_sweep_config();
  auto in_process = run_sweep(config);
  std::vector<SweepSlice> shards;
  for (int i = 0; i < 4; ++i) {  // 6 cells over 4 shards: sizes 2,2,1,1
    shards.push_back(
        make_slice(config, i, 4, run_sweep_slice(config, i, 4)));
  }
  std::vector<SweepPoint> merged;
  ASSERT_TRUE(merge_slices(std::move(shards), merged, nullptr));
  EXPECT_TRUE(sweep_results_identical(in_process, merged));
}

TEST(Shards, MergeRejectsBadInput) {
  SweepConfig config = small_sweep_config();
  auto make = [&](int i, int n) {
    return make_slice(config, i, n, run_sweep_slice(config, i, n));
  };
  std::string error;
  std::vector<SweepPoint> points;

  // Empty input.
  EXPECT_FALSE(merge_slices({}, points, &error));

  // Missing cells.
  EXPECT_FALSE(merge_slices({make(0, 2)}, points, &error));
  EXPECT_NE(error.find("incomplete"), std::string::npos);

  // Duplicate cells.
  EXPECT_FALSE(merge_slices({make(0, 2), make(0, 2), make(1, 2)}, points,
                            &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);

  // Config mismatch.
  SweepConfig other = config;
  other.base_seed = 78;
  std::vector<SweepSlice> mixed;
  mixed.push_back(make(0, 2));
  mixed.push_back(make_slice(other, 1, 2, run_sweep_slice(other, 1, 2)));
  EXPECT_FALSE(merge_slices(std::move(mixed), points, &error));
  EXPECT_NE(error.find("different sweep"), std::string::npos);

  // A cell stripped of one scheme's results (truncated/hand-edited shard)
  // must be rejected, not silently merged into wrong aggregates.
  std::vector<SweepSlice> stripped{make(0, 2), make(1, 2)};
  ASSERT_FALSE(stripped[0].cells.empty());
  stripped[0].cells[0].result.erase("GF");
  EXPECT_FALSE(merge_slices(std::move(stripped), points, &error));
  EXPECT_NE(error.find("scheme results"), std::string::npos);

  // Same size but a swapped-in foreign label is rejected too.
  std::vector<SweepSlice> swapped{make(0, 2), make(1, 2)};
  ASSERT_FALSE(swapped[0].cells.empty());
  swapped[0].cells[0].result.erase("GF");
  swapped[0].cells[0].result.emplace("BOGUS", RouteAggregate{});
  EXPECT_FALSE(merge_slices(std::move(swapped), points, &error));
  EXPECT_NE(error.find("missing scheme"), std::string::npos);
}

TEST(Serialize, IntegerFieldsRejectFractionalNumbers) {
  // A corrupted shard with "net_index": 1.7 must not silently truncate
  // into a different cell coordinate.
  SweepTimings t;
  JsonValue v;
  ASSERT_TRUE(JsonValue::parse(
      R"({"construction_seconds":0,"pair_draw_seconds":0,)"
      R"("oracle_seconds":0,"routing_seconds":0,"oracle_bfs_searches":1.5,)"
      R"("oracle_dijkstra_searches":1,"pairs_requested":1,"pairs_routed":1})",
      v));
  EXPECT_FALSE(from_json(v, t));
  SweepPoint point;
  ASSERT_TRUE(JsonValue::parse(R"({"nodes":400.5,"schemes":{}})", v));
  EXPECT_FALSE(from_json(v, point));
}

TEST(Shards, ShardFileRejectsForeignJson) {
  SweepSlice shard;
  JsonValue v;
  ASSERT_TRUE(JsonValue::parse(R"({"scenario":"fig6-avg-hops"})", v));
  EXPECT_FALSE(from_json(v, shard));
  ASSERT_TRUE(JsonValue::parse(R"({"spr_shard":99})", v));
  EXPECT_FALSE(from_json(v, shard));
  ASSERT_TRUE(JsonValue::parse("[1,2,3]", v));
  EXPECT_FALSE(from_json(v, shard));
}

TEST(Shards, RunSweepSlicePartitionsTheCells) {
  SweepConfig config = small_sweep_config();
  std::set<std::pair<int, int>> seen;
  std::size_t total = 0;
  for (int i = 0; i < 3; ++i) {
    for (const auto& cell : run_sweep_slice(config, i, 3)) {
      EXPECT_TRUE(seen.emplace(cell.node_count, cell.net_index).second);
      ++total;
    }
  }
  EXPECT_EQ(total, config.node_counts.size() *
                       static_cast<std::size_t>(config.networks_per_point));
  // Degenerate shard specs yield nothing rather than UB.
  EXPECT_TRUE(run_sweep_slice(config, 3, 3).empty());
  EXPECT_TRUE(run_sweep_slice(config, -1, 3).empty());
  EXPECT_TRUE(run_sweep_slice(config, 0, 0).empty());
}

}  // namespace
}  // namespace spr
