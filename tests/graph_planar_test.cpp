#include "graph/planar.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace spr {
namespace {

TEST(Planar, GabrielDropsWitnessedEdge) {
  // 2 sits inside the diameter disc of (0,1): edge 0-1 must go.
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}, {5.0, 1.0}}, 12.0);
  EXPECT_TRUE(g.are_neighbors(0, 1));
  EXPECT_FALSE(gabriel_keeps_edge(g, 0, 1));
  EXPECT_TRUE(gabriel_keeps_edge(g, 0, 2));
  EXPECT_TRUE(gabriel_keeps_edge(g, 2, 1));
}

TEST(Planar, GabrielKeepsUnwitnessedEdge) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}, {5.0, 30.0}}, 12.0);
  EXPECT_TRUE(gabriel_keeps_edge(g, 0, 1));
}

TEST(Planar, RngSubsetOfGabriel) {
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(250, seed);
    const auto& g = net.graph();
    for (NodeId u = 0; u < g.size(); ++u) {
      for (NodeId v : g.neighbors(u)) {
        if (v < u) continue;
        if (rng_keeps_edge(g, u, v)) {
          EXPECT_TRUE(gabriel_keeps_edge(g, u, v))
              << "RNG kept an edge Gabriel dropped: " << u << "-" << v;
        }
      }
    }
  }
}

TEST(Planar, GabrielOverlayIsPlanar) {
  for (std::uint64_t seed : {11ull, 23ull, 37ull}) {
    Network net = test::random_network(220, seed);
    PlanarOverlay overlay(net.graph(), PlanarOverlay::Kind::kGabriel);
    EXPECT_TRUE(overlay_is_planar(net.graph(), overlay)) << "seed " << seed;
  }
}

TEST(Planar, RngOverlayIsPlanar) {
  Network net = test::random_network(220, 59);
  PlanarOverlay overlay(net.graph(), PlanarOverlay::Kind::kRng);
  EXPECT_TRUE(overlay_is_planar(net.graph(), overlay));
}

TEST(Planar, GabrielPreservesConnectivity) {
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(300, seed);
    PlanarOverlay overlay(net.graph(), PlanarOverlay::Kind::kGabriel);
    EXPECT_TRUE(overlay_preserves_connectivity(net.graph(), overlay))
        << "seed " << seed;
  }
}

TEST(Planar, RngPreservesConnectivity) {
  for (std::uint64_t seed : {71ull, 97ull}) {
    Network net = test::random_network(300, seed);
    PlanarOverlay overlay(net.graph(), PlanarOverlay::Kind::kRng);
    EXPECT_TRUE(overlay_preserves_connectivity(net.graph(), overlay))
        << "seed " << seed;
  }
}

TEST(Planar, OverlayNeighborsAreGraphNeighbors) {
  Network net = test::random_network(250, 31);
  const auto& g = net.graph();
  PlanarOverlay overlay(g, PlanarOverlay::Kind::kGabriel);
  for (NodeId u = 0; u < g.size(); ++u) {
    for (NodeId v : overlay.neighbors(u)) {
      EXPECT_TRUE(g.are_neighbors(u, v));
      EXPECT_TRUE(overlay.are_neighbors(v, u));  // symmetry
    }
  }
  EXPECT_LE(overlay.edge_count(), g.edge_count());
}

TEST(Planar, FewerEdgesThanUdgOnDenseNetworks) {
  Network net = test::random_network(500, 101);
  PlanarOverlay gabriel(net.graph(), PlanarOverlay::Kind::kGabriel);
  PlanarOverlay rng(net.graph(), PlanarOverlay::Kind::kRng);
  EXPECT_LT(gabriel.edge_count(), net.graph().edge_count());
  EXPECT_LE(rng.edge_count(), gabriel.edge_count());
}

}  // namespace
}  // namespace spr
