/// \file parallel_build_test.cpp
/// Within-network build parallelism: unit-disk adjacency and the
/// safety-labeling initialization fan out over a TaskPool with node-id-
/// ordered merges, so the built structures must be bit-identical to a
/// serial build for every pool size.

#include <gtest/gtest.h>

#include "core/network.h"
#include "safety/labeling.h"
#include "test_helpers.h"
#include "util/task_pool.h"

namespace spr {
namespace {

void expect_same_graph(const UnitDiskGraph& a, const UnitDiskGraph& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.edge_count(), b.edge_count());
  for (NodeId u = 0; u < a.size(); ++u) {
    auto na = a.neighbors(u);
    auto nb = b.neighbors(u);
    ASSERT_EQ(na.size(), nb.size()) << "node " << u;
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i], nb[i]) << "node " << u;
    }
  }
}

TEST(ParallelBuild, AdjacencyIdenticalAcrossPoolSizes) {
  // 600 nodes clears the parallel grain threshold (2 * 256).
  Deployment d = test::dense_grid_deployment(600, 5);
  UnitDiskGraph serial(d.positions, d.radio_range, d.field);
  for (int threads : {2, 3, 7}) {
    TaskPool pool(threads);
    UnitDiskGraph parallel(d.positions, d.radio_range, d.field, &pool);
    expect_same_graph(serial, parallel);
  }
}

TEST(ParallelBuild, AdjacencyWithFailuresIdentical) {
  Deployment d = test::dense_grid_deployment(600, 6);
  UnitDiskGraph base(d.positions, d.radio_range, d.field);
  std::vector<NodeId> failed = {3, 50, 51, 52, 200, 333};
  TaskPool pool(3);
  expect_same_graph(base.with_failures(failed),
                    base.with_failures(failed, &pool));
}

TEST(ParallelBuild, SafetyLabelingIdenticalAcrossPoolSizes) {
  Deployment d = test::dense_grid_deployment(600, 7);
  UnitDiskGraph g(d.positions, d.radio_range, d.field);
  InterestArea area(g, d.radio_range);
  SafetyInfo serial = compute_safety(g, area);
  for (int threads : {2, 5}) {
    TaskPool pool(threads);
    SafetyInfo parallel = compute_safety(g, area, &pool);
    EXPECT_EQ(serial, parallel);
  }
}

TEST(ParallelBuild, SafetyLabelingWithHolesIdentical) {
  // A punched-out void produces real unsafe areas, exercising the worklist
  // propagation seeded by the parallel initialization round.
  Deployment d = test::grid_with_void(
      26, 12.0, Rect::from_bounds({120.0, 120.0}, {200.0, 200.0}));
  UnitDiskGraph g(d.positions, d.radio_range, d.field);
  InterestArea area(g, d.radio_range);
  SafetyInfo serial = compute_safety(g, area);
  ASSERT_GT(serial.unsafe_node_count(), 0u);  // the fixture must have holes
  TaskPool pool(4);
  SafetyInfo parallel = compute_safety(g, area, &pool);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelBuild, NetworkWithBuildPoolRoutesIdentically) {
  NetworkConfig config;
  config.deployment.node_count = 600;
  config.deployment.model = DeployModel::kForbiddenAreas;
  config.seed = 11;
  Network serial_net = Network::create(config);

  TaskPool pool(3);
  config.build_pool = &pool;
  Network parallel_net = Network::create(config);

  expect_same_graph(serial_net.graph(), parallel_net.graph());
  EXPECT_EQ(serial_net.safety(), parallel_net.safety());

  Rng rng(13);
  auto [s, dst] = serial_net.random_connected_interior_pair(rng);
  ASSERT_NE(s, kInvalidNode);
  for (Scheme scheme : {Scheme::kGf, Scheme::kSlgf2}) {
    PathResult a = serial_net.make_router(scheme)->route(s, dst);
    PathResult b = parallel_net.make_router(scheme)->route(s, dst);
    EXPECT_EQ(a.path, b.path) << scheme_name(scheme);
    EXPECT_EQ(a.length, b.length) << scheme_name(scheme);
  }
}

}  // namespace
}  // namespace spr
