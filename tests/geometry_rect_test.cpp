#include "geometry/rect.h"

#include <gtest/gtest.h>

namespace spr {
namespace {

TEST(Rect, FromCornersNormalizes) {
  Rect r = Rect::from_corners({5.0, 1.0}, {2.0, 3.0});
  EXPECT_EQ(r.lo(), Vec2(2.0, 1.0));
  EXPECT_EQ(r.hi(), Vec2(5.0, 3.0));
}

TEST(Rect, PaperNotationAnyCornerOrder) {
  // [x1 : x2, y1 : y2] must mean the same rectangle for all corner orders.
  Rect a = Rect::from_corners({0.0, 0.0}, {4.0, 2.0});
  Rect b = Rect::from_corners({4.0, 2.0}, {0.0, 0.0});
  Rect c = Rect::from_corners({0.0, 2.0}, {4.0, 0.0});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(Rect, Dimensions) {
  Rect r = Rect::from_corners({1.0, 2.0}, {4.0, 6.0});
  EXPECT_DOUBLE_EQ(r.width(), 3.0);
  EXPECT_DOUBLE_EQ(r.height(), 4.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_EQ(r.center(), Vec2(2.5, 4.0));
}

TEST(Rect, ContainsIsClosed) {
  Rect r = Rect::from_corners({0.0, 0.0}, {2.0, 2.0});
  EXPECT_TRUE(r.contains({1.0, 1.0}));
  EXPECT_TRUE(r.contains({0.0, 0.0}));  // corner counts
  EXPECT_TRUE(r.contains({2.0, 1.0}));  // edge counts
  EXPECT_FALSE(r.contains({2.1, 1.0}));
  EXPECT_FALSE(r.contains({-0.1, 1.0}));
}

TEST(Rect, ContainsWithTolerance) {
  Rect r = Rect::from_corners({0.0, 0.0}, {2.0, 2.0});
  EXPECT_TRUE(r.contains({2.05, 1.0}, 0.1));
  EXPECT_FALSE(r.contains({2.2, 1.0}, 0.1));
}

TEST(Rect, ContainsRect) {
  Rect outer = Rect::from_corners({0.0, 0.0}, {10.0, 10.0});
  EXPECT_TRUE(outer.contains(Rect::from_corners({1.0, 1.0}, {2.0, 2.0})));
  EXPECT_FALSE(outer.contains(Rect::from_corners({9.0, 9.0}, {11.0, 11.0})));
}

TEST(Rect, Intersects) {
  Rect a = Rect::from_corners({0.0, 0.0}, {2.0, 2.0});
  EXPECT_TRUE(a.intersects(Rect::from_corners({1.0, 1.0}, {3.0, 3.0})));
  EXPECT_TRUE(a.intersects(Rect::from_corners({2.0, 2.0}, {3.0, 3.0})));  // touch
  EXPECT_FALSE(a.intersects(Rect::from_corners({2.1, 0.0}, {3.0, 1.0})));
}

TEST(Rect, United) {
  Rect a = Rect::from_corners({0.0, 0.0}, {1.0, 1.0});
  Rect b = Rect::from_corners({2.0, -1.0}, {3.0, 0.5});
  Rect u = a.united(b);
  EXPECT_EQ(u.lo(), Vec2(0.0, -1.0));
  EXPECT_EQ(u.hi(), Vec2(3.0, 1.0));
}

TEST(Rect, Inflated) {
  Rect r = Rect::from_corners({1.0, 1.0}, {2.0, 2.0}).inflated(1.0);
  EXPECT_EQ(r.lo(), Vec2(0.0, 0.0));
  EXPECT_EQ(r.hi(), Vec2(3.0, 3.0));
}

TEST(Rect, OverShrinkCollapsesToCenter) {
  Rect r = Rect::from_corners({0.0, 0.0}, {2.0, 2.0}).inflated(-5.0);
  EXPECT_DOUBLE_EQ(r.width(), 0.0);
  EXPECT_DOUBLE_EQ(r.height(), 0.0);
  EXPECT_EQ(r.center(), Vec2(1.0, 1.0));
}

TEST(Rect, ExpandedTo) {
  Rect r = Rect::from_corners({0.0, 0.0}, {1.0, 1.0}).expanded_to({5.0, -2.0});
  EXPECT_EQ(r.lo(), Vec2(0.0, -2.0));
  EXPECT_EQ(r.hi(), Vec2(5.0, 1.0));
}

TEST(Rect, DistanceToPoint) {
  Rect r = Rect::from_corners({0.0, 0.0}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(r.distance_to({1.0, 1.0}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(r.distance_to({4.0, 1.0}), 2.0);   // right
  EXPECT_DOUBLE_EQ(r.distance_to({5.0, 6.0}), 5.0);   // 3-4-5 corner
}

}  // namespace
}  // namespace spr
