#include "routing/trace.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace spr {
namespace {

PathResult make_result(std::vector<NodeId> path, std::vector<HopPhase> phases) {
  PathResult r;
  r.status = RouteStatus::kDelivered;
  r.path = std::move(path);
  r.hop_phases = std::move(phases);
  return r;
}

TEST(Trace, PerHopProgressOnLine) {
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {30.0, 0.0}}, 12.0);
  auto r = make_result({0, 1, 2, 3}, {HopPhase::kGreedy, HopPhase::kGreedy,
                                      HopPhase::kGreedy});
  RouteTrace trace(g, r, 3);
  ASSERT_EQ(trace.hops().size(), 3u);
  for (const auto& hop : trace.hops()) {
    EXPECT_DOUBLE_EQ(hop.hop_length, 10.0);
    EXPECT_DOUBLE_EQ(hop.progress, 10.0);
  }
  EXPECT_DOUBLE_EQ(trace.straightness(), 1.0);
  EXPECT_TRUE(trace.detours().empty());
  EXPECT_DOUBLE_EQ(trace.worst_regression(), 0.0);
}

TEST(Trace, RegressionAndDetourSegmentation) {
  // 0 -> 1 (greedy), 1 -> 2 backwards (perimeter), 2 -> 1? No: use a path
  // that regresses then recovers: positions chosen so hop 1 moves away.
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {20.0, 10.0}, {30.0, 0.0}},
      16.0);
  auto r = make_result({0, 1, 2, 3, 4},
                       {HopPhase::kGreedy, HopPhase::kPerimeter,
                        HopPhase::kPerimeter, HopPhase::kGreedy});
  RouteTrace trace(g, r, 4);
  ASSERT_EQ(trace.detours().size(), 1u);
  const auto& detour = trace.detours()[0];
  EXPECT_EQ(detour.first_hop, 1u);
  EXPECT_EQ(detour.hop_count, 2u);
  EXPECT_DOUBLE_EQ(detour.length, 20.0);
  // Hop 1->2 moves from distance 20 to distance sqrt(400+100): regression.
  EXPECT_GT(trace.worst_regression(), 0.0);
  EXPECT_LT(trace.straightness(), 1.0);
}

TEST(Trace, BackupHopsCountAsDetours) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}}, 12.0);
  auto r = make_result({0, 1, 2}, {HopPhase::kBackup, HopPhase::kGreedy});
  RouteTrace trace(g, r, 2);
  ASSERT_EQ(trace.detours().size(), 1u);
  EXPECT_DOUBLE_EQ(trace.detour_length(), 10.0);
}

TEST(Trace, CsvHasHeaderAndRows) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}}, 12.0);
  auto r = make_result({0, 1}, {HopPhase::kGreedy});
  RouteTrace trace(g, r, 1);
  std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("hop,from,to,phase,length,progress"), std::string::npos);
  EXPECT_NE(csv.find("0,0,1,greedy,10,10"), std::string::npos);
}

TEST(Trace, ToStringMentionsEpisodes) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}}, 12.0);
  auto r = make_result({0, 1, 2}, {HopPhase::kPerimeter, HopPhase::kGreedy});
  RouteTrace trace(g, r, 2);
  std::string text = trace.to_string();
  EXPECT_NE(text.find("perimeter"), std::string::npos);
  EXPECT_NE(text.find("1 detour episode(s)"), std::string::npos);
}

TEST(Trace, EmptyPath) {
  auto g = test::make_graph({{0.0, 0.0}}, 12.0);
  PathResult r;
  r.path = {0};
  RouteTrace trace(g, r, 0);
  EXPECT_TRUE(trace.hops().empty());
  EXPECT_DOUBLE_EQ(trace.straightness(), 1.0);
}

TEST(Trace, RealRoutesStraightnessOrdering) {
  // SLGF2's straightness should roughly match or beat LGF's on average
  // (paired over both-delivered pairs, which biases toward the easy pairs
  // LGF survives; a 10% band absorbs that skew — the full benches show the
  // true ordering).
  double lgf_sum = 0.0, slgf2_sum = 0.0;
  int counted = 0;
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(500, seed, DeployModel::kForbiddenAreas);
    auto lgf = net.make_router(Scheme::kLgf);
    auto slgf2 = net.make_router(Scheme::kSlgf2);
    Rng rng(seed ^ 0x1212);
    for (int trial = 0; trial < 10; ++trial) {
      auto [s, d] = net.random_connected_interior_pair(rng);
      auto a = lgf->route(s, d);
      auto b = slgf2->route(s, d);
      if (!a.delivered() || !b.delivered()) continue;
      lgf_sum += RouteTrace(net.graph(), a, d).straightness();
      slgf2_sum += RouteTrace(net.graph(), b, d).straightness();
      ++counted;
    }
  }
  ASSERT_GT(counted, 20);
  EXPECT_GE(slgf2_sum, lgf_sum * 0.90);
}

}  // namespace
}  // namespace spr
