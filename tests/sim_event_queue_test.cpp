#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/async_engine.h"
#include "sim/engine.h"

namespace spr {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> queue;
  queue.push(3.0, 3);
  queue.push(1.0, 1);
  queue.push(2.0, 2);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.pop().event, 1);
  EXPECT_EQ(queue.pop().event, 2);
  EXPECT_EQ(queue.pop().event, 3);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, TiesBreakFifoByInsertionOrder) {
  EventQueue<int> queue;
  for (int i = 0; i < 100; ++i) queue.push(1.0, i);
  for (int i = 0; i < 100; ++i) {
    auto timed = queue.pop();
    EXPECT_EQ(timed.event, i);
    EXPECT_EQ(timed.seq, static_cast<std::uint64_t>(i));
  }
}

TEST(EventQueue, InterleavedPushPopKeepsTotalOrder) {
  EventQueue<std::string> queue;
  queue.push(5.0, "e");
  queue.push(1.0, "a");
  EXPECT_EQ(queue.pop().event, "a");
  queue.push(2.0, "b");
  queue.push(5.0, "d");  // same instant as "e" but pushed later
  EXPECT_EQ(queue.pop().event, "b");
  EXPECT_EQ(queue.top().event, "e");
  EXPECT_EQ(queue.pop().event, "e");
  EXPECT_EQ(queue.pop().event, "d");
}

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance_to(2.5);
  EXPECT_DOUBLE_EQ(clock.now(), 2.5);
  clock.advance_to(1.0);  // never backwards
  EXPECT_DOUBLE_EQ(clock.now(), 2.5);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(FifoLinkDelays, DelaysWithinRangeAndFifoPerLink) {
  Rng rng(11);
  FifoLinkDelays links(4, 0.5, 1.5);
  double last = 0.0;
  for (int i = 0; i < 50; ++i) {
    double when = links.schedule(0, 1, 0.0, rng);
    // FIFO: every later send on the same link delivers strictly later.
    EXPECT_GT(when, last);
    last = when;
  }
  // An unrelated link is not clamped by link (0,1)'s history.
  double other = links.schedule(2, 3, 0.0, rng);
  EXPECT_GE(other, 0.5);
  EXPECT_LT(other, 1.5);
}

TEST(FifoLinkDelays, FirstDeliveryRespectsDrawnDelay) {
  Rng rng(12);
  FifoLinkDelays links(2, 1.0, 2.0);
  double when = links.schedule(0, 1, 10.0, rng);
  EXPECT_GE(when, 11.0);
  EXPECT_LT(when, 12.0);
}

TEST(SimStatsFormatting, SharedCountersRenderIdentically) {
  EngineStats round;
  round.rounds = 3;
  round.broadcasts = 5;
  round.receptions = 12;
  EXPECT_EQ(round.to_string(), "rounds=3 broadcasts=5 receptions=12");

  AsyncEngineStats async_stats;
  async_stats.activations = 2;
  async_stats.broadcasts = 5;
  async_stats.receptions = 12;
  async_stats.virtual_time = 1.5;
  EXPECT_EQ(async_stats.to_string(),
            "activations=2 broadcasts=5 receptions=12 t=1.5");
}

}  // namespace
}  // namespace spr
