#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/async_engine.h"
#include "sim/engine.h"

namespace spr {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> queue;
  queue.push(3.0, 3);
  queue.push(1.0, 1);
  queue.push(2.0, 2);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.pop().event, 1);
  EXPECT_EQ(queue.pop().event, 2);
  EXPECT_EQ(queue.pop().event, 3);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, TiesBreakFifoByInsertionOrder) {
  EventQueue<int> queue;
  for (int i = 0; i < 100; ++i) queue.push(1.0, i);
  for (int i = 0; i < 100; ++i) {
    auto timed = queue.pop();
    EXPECT_EQ(timed.event, i);
    EXPECT_EQ(timed.seq, static_cast<std::uint64_t>(i));
  }
}

TEST(EventQueue, InterleavedPushPopKeepsTotalOrder) {
  EventQueue<std::string> queue;
  queue.push(5.0, "e");
  queue.push(1.0, "a");
  EXPECT_EQ(queue.pop().event, "a");
  queue.push(2.0, "b");
  queue.push(5.0, "d");  // same instant as "e" but pushed later
  EXPECT_EQ(queue.pop().event, "b");
  EXPECT_EQ(queue.top().event, "e");
  EXPECT_EQ(queue.pop().event, "e");
  EXPECT_EQ(queue.pop().event, "d");
}

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance_to(2.5);
  EXPECT_DOUBLE_EQ(clock.now(), 2.5);
  clock.advance_to(1.0);  // never backwards
  EXPECT_DOUBLE_EQ(clock.now(), 2.5);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(FifoLinkDelays, DelaysWithinRangeAndFifoPerLink) {
  Rng rng(11);
  FifoLinkDelays links(4, 0.5, 1.5);
  double last = 0.0;
  for (int i = 0; i < 50; ++i) {
    double when = links.schedule(0, 1, 0.0, rng);
    // FIFO: every later send on the same link delivers strictly later.
    EXPECT_GT(when, last);
    last = when;
  }
  // An unrelated link is not clamped by link (0,1)'s history.
  double other = links.schedule(2, 3, 0.0, rng);
  EXPECT_GE(other, 0.5);
  EXPECT_LT(other, 1.5);
}

TEST(FifoLinkDelays, FirstDeliveryRespectsDrawnDelay) {
  Rng rng(12);
  FifoLinkDelays links(2, 1.0, 2.0);
  double when = links.schedule(0, 1, 10.0, rng);
  EXPECT_GE(when, 11.0);
  EXPECT_LT(when, 12.0);
}

TEST(FifoLinkDelays, ClampGuaranteesStrictFifoWhenDrawnDelaysCollide) {
  // A degenerate delay range makes every draw identical, so without the
  // clamp two sends at the same `now` would deliver at the same instant.
  Rng rng(1);
  FifoLinkDelays links(2, 0.5, 0.5);
  double a = links.schedule(0, 1, 0.0, rng);
  double b = links.schedule(0, 1, 0.0, rng);
  double c = links.schedule(0, 1, 0.0, rng);
  EXPECT_DOUBLE_EQ(a, 0.5);
  EXPECT_GT(b, a);
  EXPECT_GT(c, b);
  EXPECT_NEAR(b - a, 1e-9, 1e-15);
  EXPECT_NEAR(c - b, 1e-9, 1e-15);
}

TEST(FifoLinkDelays, FlatTableMatchesMapReferenceUnderHeavyLinkReuse) {
  // The flat open-addressed link clock must behave exactly like the
  // unordered_map it replaced: same clamp arithmetic, bit-identical
  // delivery times, including across table growth. 150 nodes x 20k sends
  // creates far more distinct links than the constructor reserve, so the
  // table rehashes several times mid-run while hot links are clamped over
  // and over.
  constexpr std::size_t kNodes = 150;
  Rng rng(77);
  Rng ref_rng(77);
  Rng pick(5);
  FifoLinkDelays links(kNodes, 0.25, 0.75);
  std::unordered_map<std::uint64_t, double> ref_clock;
  double now = 0.0;
  for (int i = 0; i < 20000; ++i) {
    NodeId from = static_cast<NodeId>(pick.next_below(kNodes));
    NodeId to = static_cast<NodeId>(pick.next_below(kNodes));
    now += 0.01;
    double got = links.schedule(from, to, now, rng);
    double delay = ref_rng.uniform(0.25, 0.75);
    double& clock = ref_clock[static_cast<std::uint64_t>(from) * kNodes + to];
    double want = std::max(now + delay, clock + 1e-9);
    clock = want;
    ASSERT_EQ(got, want) << "send " << i << " link " << from << "->" << to;
  }
}

TEST(SimStatsFormatting, SharedCountersRenderIdentically) {
  EngineStats round;
  round.rounds = 3;
  round.broadcasts = 5;
  round.receptions = 12;
  EXPECT_EQ(round.to_string(), "rounds=3 broadcasts=5 receptions=12");

  AsyncEngineStats async_stats;
  async_stats.activations = 2;
  async_stats.broadcasts = 5;
  async_stats.receptions = 12;
  async_stats.virtual_time = 1.5;
  EXPECT_EQ(async_stats.to_string(),
            "activations=2 broadcasts=5 receptions=12 t=1.5");
}

}  // namespace
}  // namespace spr
