#include "sim/engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_helpers.h"

namespace spr {
namespace {

TEST(Engine, QuiescesWhenNothingSent) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}}, 20.0);
  RoundEngine<int> engine(g);
  auto stats = engine.run(
      [](NodeId, std::size_t, std::span<const RoundEngine<int>::Incoming>)
          -> std::optional<int> { return std::nullopt; },
      100);
  EXPECT_EQ(stats.rounds, 1u);  // one silent round then stop
  EXPECT_EQ(stats.broadcasts, 0u);
  EXPECT_EQ(stats.receptions, 0u);
}

TEST(Engine, BroadcastReachesNeighborsNextRound) {
  // Line 0-1-2: node 0 sends once in round 0; 1 hears it in round 1; 2 never.
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}}, 12.0);
  std::vector<std::vector<std::pair<std::size_t, int>>> heard(3);
  RoundEngine<int> engine(g);
  auto stats = engine.run(
      [&](NodeId self, std::size_t round,
          std::span<const RoundEngine<int>::Incoming> inbox)
          -> std::optional<int> {
        for (const auto& m : inbox) heard[self].emplace_back(round, m.payload);
        if (self == 0 && round == 0) return 42;
        return std::nullopt;
      },
      100);
  EXPECT_EQ(stats.broadcasts, 1u);
  EXPECT_EQ(stats.receptions, 1u);  // only node 1 in range
  ASSERT_EQ(heard[1].size(), 1u);
  EXPECT_EQ(heard[1][0], (std::pair<std::size_t, int>{1, 42}));
  EXPECT_TRUE(heard[2].empty());
  EXPECT_TRUE(heard[0].empty());
}

TEST(Engine, FloodPropagatesOneHopPerRound) {
  // Line of 5 nodes; node 0 floods; node i first hears in round i.
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0},
                             {30.0, 0.0}, {40.0, 0.0}}, 12.0);
  std::vector<std::size_t> first_heard(5, 0);
  std::vector<bool> has_sent(5, false);
  RoundEngine<int> engine(g);
  engine.run(
      [&](NodeId self, std::size_t round,
          std::span<const RoundEngine<int>::Incoming> inbox)
          -> std::optional<int> {
        if (!inbox.empty() && first_heard[self] == 0 && self != 0) {
          first_heard[self] = round;
        }
        bool should_send =
            (self == 0 && round == 0) || (!inbox.empty() && !has_sent[self]);
        if (should_send && !has_sent[self]) {
          has_sent[self] = true;
          return 1;
        }
        return std::nullopt;
      },
      100);
  for (std::size_t i = 1; i < 5; ++i) EXPECT_EQ(first_heard[i], i);
}

TEST(Engine, RoundCapStopsRunawayProtocol) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}}, 20.0);
  RoundEngine<int> engine(g);
  auto stats = engine.run(
      [](NodeId, std::size_t, std::span<const RoundEngine<int>::Incoming>)
          -> std::optional<int> { return 1; },  // chatter forever
      25);
  EXPECT_EQ(stats.rounds, 25u);
  EXPECT_EQ(stats.broadcasts, 50u);
}

TEST(Engine, DeadNodesNeitherSendNorReceive) {
  std::vector<Vec2> pts = {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}};
  Rect bounds = Rect::from_bounds({-20.0, -20.0}, {40.0, 20.0});
  UnitDiskGraph g(pts, 12.0, bounds, {true, false, true});
  int calls_to_dead = 0;
  RoundEngine<int> engine(g);
  auto stats = engine.run(
      [&](NodeId self, std::size_t round,
          std::span<const RoundEngine<int>::Incoming>) -> std::optional<int> {
        if (self == 1) ++calls_to_dead;
        if (round == 0) return static_cast<int>(self);
        return std::nullopt;
      },
      10);
  EXPECT_EQ(calls_to_dead, 0);
  // 0 and 2 broadcast but are not in range of each other (node 1 dead).
  EXPECT_EQ(stats.broadcasts, 2u);
  EXPECT_EQ(stats.receptions, 0u);
}

TEST(Engine, StatsToString) {
  EngineStats stats;
  stats.rounds = 3;
  stats.broadcasts = 5;
  stats.receptions = 12;
  EXPECT_EQ(stats.to_string(), "rounds=3 broadcasts=5 receptions=12");
}

}  // namespace
}  // namespace spr
