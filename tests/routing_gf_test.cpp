#include "routing/gf.h"

#include <gtest/gtest.h>

#include "graph/graph_algos.h"
#include "test_helpers.h"

namespace spr {
namespace {

struct GfFixture {
  explicit GfFixture(Deployment dep)
      : g(dep.positions, dep.radio_range, dep.field),
        overlay(g, PlanarOverlay::Kind::kGabriel),
        boundhole(g) {}

  GfRouter face_router() {
    return GfRouter(g, overlay, nullptr, GfRouter::Recovery::kFace);
  }
  GfRouter boundhole_router() {
    return GfRouter(g, overlay, &boundhole, GfRouter::Recovery::kBoundHole);
  }

  UnitDiskGraph g;
  PlanarOverlay overlay;
  BoundHoleInfo boundhole;
};

TEST(Gf, GreedyDeliversOnLine) {
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {30.0, 0.0}}, 12.0);
  PlanarOverlay overlay(g, PlanarOverlay::Kind::kGabriel);
  GfRouter router(g, overlay, nullptr, GfRouter::Recovery::kFace);
  PathResult r = router.route(0, 3);
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.hops(), 3u);
  EXPECT_EQ(r.local_minima, 0u);
}

TEST(Gf, GreedyHopsAlwaysProgress) {
  Network net = test::random_network(400, 29);
  auto router = net.make_router(Scheme::kGfFace);
  const auto& g = net.graph();
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    ASSERT_NE(s, kInvalidNode);
    PathResult r = router->route(s, d);
    Vec2 dest = g.position(d);
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
      if (r.hop_phases[i] != HopPhase::kGreedy) continue;
      EXPECT_LT(distance(g.position(r.path[i + 1]), dest),
                distance(g.position(r.path[i]), dest) + 1e-9);
    }
  }
}

TEST(Gf, FaceRecoveryCrossesVoid) {
  Deployment dep = test::grid_with_void(
      20, 10.0, Rect::from_corners({60.0, 60.0}, {140.0, 140.0}));
  GfFixture fx(std::move(dep));
  NodeId s = kInvalidNode, d = kInvalidNode;
  for (NodeId u = 0; u < fx.g.size(); ++u) {
    if (fx.g.position(u) == Vec2(50.0, 100.0)) s = u;
    if (fx.g.position(u) == Vec2(150.0, 100.0)) d = u;
  }
  ASSERT_NE(s, kInvalidNode);
  ASSERT_NE(d, kInvalidNode);
  GfRouter router = fx.face_router();
  PathResult r = router.route(s, d);
  EXPECT_TRUE(r.delivered());
  EXPECT_GE(r.local_minima, 1u);
  EXPECT_GT(r.perimeter_hops(), 0u);
}

TEST(Gf, BoundholeRecoveryCrossesVoid) {
  Deployment dep = test::grid_with_void(
      20, 10.0, Rect::from_corners({60.0, 60.0}, {140.0, 140.0}));
  GfFixture fx(std::move(dep));
  NodeId s = kInvalidNode, d = kInvalidNode;
  for (NodeId u = 0; u < fx.g.size(); ++u) {
    if (fx.g.position(u) == Vec2(40.0, 100.0)) s = u;
    if (fx.g.position(u) == Vec2(160.0, 100.0)) d = u;
  }
  ASSERT_NE(s, kInvalidNode);
  ASSERT_NE(d, kInvalidNode);
  GfRouter router = fx.boundhole_router();
  PathResult r = router.route(s, d);
  EXPECT_TRUE(r.delivered());
}

TEST(Gf, FaceRoutingDeliversOnConnectedPairs) {
  // GPSR with Gabriel planarization should essentially always deliver.
  int delivered = 0, total = 0;
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(450, seed, DeployModel::kForbiddenAreas);
    auto router = net.make_router(Scheme::kGfFace);
    Rng rng(seed ^ 0xabcd);
    for (int trial = 0; trial < 10; ++trial) {
      auto [s, d] = net.random_connected_interior_pair(rng);
      ++total;
      if (router->route(s, d).delivered()) ++delivered;
    }
  }
  EXPECT_GE(static_cast<double>(delivered) / total, 0.95)
      << delivered << "/" << total;
}

TEST(Gf, BoundholeVariantDeliversComparably) {
  int delivered = 0, total = 0;
  for (std::uint64_t seed : {11ull, 23ull, 37ull, 59ull}) {
    Network net = test::random_network(450, seed, DeployModel::kForbiddenAreas);
    auto router = net.make_router(Scheme::kGf);
    Rng rng(seed ^ 0x1234);
    for (int trial = 0; trial < 10; ++trial) {
      auto [s, d] = net.random_connected_interior_pair(rng);
      ++total;
      if (router->route(s, d).delivered()) ++delivered;
    }
  }
  EXPECT_GE(static_cast<double>(delivered) / total, 0.85)
      << delivered << "/" << total;
}

TEST(Gf, PathIsValidWalk) {
  Network net = test::random_network(400, 41, DeployModel::kForbiddenAreas);
  const auto& g = net.graph();
  for (Scheme scheme : {Scheme::kGf, Scheme::kGfFace}) {
    auto router = net.make_router(scheme);
    Rng rng(6);
    for (int trial = 0; trial < 25; ++trial) {
      auto [s, d] = net.random_connected_interior_pair(rng);
      ASSERT_NE(s, kInvalidNode);
      PathResult r = router->route(s, d);
      EXPECT_EQ(r.path.front(), s);
      for (std::size_t i = 1; i < r.path.size(); ++i) {
        EXPECT_TRUE(g.are_neighbors(r.path[i - 1], r.path[i]));
      }
      if (r.delivered()) {
        EXPECT_EQ(r.path.back(), d);
      }
    }
  }
}

TEST(Gf, NoRecoveryNeededOnDenseGrid) {
  Deployment dep = test::dense_grid_deployment(400, 8);
  GfFixture fx(std::move(dep));
  GfRouter router = fx.face_router();
  InterestArea area(fx.g, fx.g.range());
  Rng rng(9);
  const auto& interior = area.interior_nodes();
  ASSERT_GE(interior.size(), 2u);
  for (int trial = 0; trial < 20; ++trial) {
    NodeId s = interior[rng.next_below(interior.size())];
    NodeId d = interior[rng.next_below(interior.size())];
    PathResult r = router.route(s, d);
    EXPECT_TRUE(r.delivered());
    EXPECT_EQ(r.local_minima, 0u) << "dense grid should never be stuck";
  }
}

}  // namespace
}  // namespace spr
