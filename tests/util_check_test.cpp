#include "util/check.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "geometry/rect.h"
#include "graph/unit_disk.h"
#include "util/task_pool.h"

namespace spr {
namespace {

TEST(Check, PassingCheckHasNoEffect) {
  ScopedCheckHandler guard(&throwing_check_handler);
  SPR_CHECK(1 + 1 == 2);
  SPR_CHECK(true, "context is never formatted on success");
  SPR_DCHECK(2 + 2 == 4, "nor for dchecks");
}

TEST(Check, FailureMessageCarriesExpressionAndContext) {
  ScopedCheckHandler guard(&throwing_check_handler);
  const int lhs = 3;
  try {
    SPR_CHECK(lhs == 4, "lhs=", lhs, " expected=", 4);
    FAIL() << "SPR_CHECK(false) did not reach the handler";
  } catch (const CheckError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("SPR_CHECK(lhs == 4) failed"), std::string::npos)
        << message;
    EXPECT_NE(message.find("lhs=3 expected=4"), std::string::npos) << message;
    EXPECT_NE(message.find("util_check_test.cpp"), std::string::npos)
        << message;
  }
}

TEST(Check, ScopedHandlerRestoresPrevious) {
  {
    ScopedCheckHandler guard(&throwing_check_handler);
    EXPECT_THROW(SPR_CHECK(false), CheckError);
  }
  // Cannot fail a check here (the default handler aborts); instead verify
  // that installing and removing reports the expected previous handlers.
  CheckHandler previous = set_check_handler(&throwing_check_handler);
  EXPECT_EQ(previous, nullptr);
  EXPECT_EQ(set_check_handler(nullptr), &throwing_check_handler);
}

TEST(Check, DcheckCompilesOutInReleaseAndFiresInDebug) {
  ScopedCheckHandler guard(&throwing_check_handler);
  if (kDchecksEnabled) {
    EXPECT_THROW(SPR_DCHECK(false, "must fire"), CheckError);
  } else {
    SPR_DCHECK(false, "must not evaluate");  // no-op by construction
    SUCCEED();
  }
}

// ---------------------------------------------------------------------------
// Negative tests: violated invariants in real call paths are caught.

std::vector<Vec2> three_positions() {
  return {{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
}

TEST(CheckedInvariants, FromPartsRejectsOffsetCountMismatch) {
  // Always-on SPR_CHECK: fires in every build type.
  ScopedCheckHandler guard(&throwing_check_handler);
  const Rect bounds = Rect::from_bounds({0.0, 0.0}, {3.0, 1.0});
  std::vector<std::size_t> offsets{0, 0};  // needs 4 entries for 3 nodes
  EXPECT_THROW(UnitDiskGraph::from_parts(three_positions(), 1.5, bounds,
                                         std::vector<bool>(3, true),
                                         std::move(offsets), {}),
               CheckError);
}

TEST(CheckedInvariants, FromPartsRejectsDanglingAdjacencyTail) {
  ScopedCheckHandler guard(&throwing_check_handler);
  const Rect bounds = Rect::from_bounds({0.0, 0.0}, {3.0, 1.0});
  std::vector<std::size_t> offsets{0, 1, 2, 2};  // claims 2 entries...
  std::vector<NodeId> adjacency{1, 0, 2};        // ...but hands over 3
  EXPECT_THROW(UnitDiskGraph::from_parts(three_positions(), 1.5, bounds,
                                         std::vector<bool>(3, true),
                                         std::move(offsets),
                                         std::move(adjacency)),
               CheckError);
}

TEST(CheckedInvariants, FromPartsRejectsUnsortedRowUnderDchecks) {
  if (!kDchecksEnabled) {
    GTEST_SKIP() << "SPR_DCHECK inactive in this build type";
  }
  ScopedCheckHandler guard(&throwing_check_handler);
  const Rect bounds = Rect::from_bounds({0.0, 0.0}, {3.0, 1.0});
  // Node 1's row lists {2, 0} — violates the sorted-row CSR contract the
  // quadrant bucketing and tandem merges silently rely on.
  std::vector<std::size_t> offsets{0, 1, 3, 4};
  std::vector<NodeId> adjacency{1, 2, 0, 1};
  EXPECT_THROW(UnitDiskGraph::from_parts(three_positions(), 1.5, bounds,
                                         std::vector<bool>(3, true),
                                         std::move(offsets),
                                         std::move(adjacency)),
               CheckError);
}

TEST(CheckedInvariants, FromPartsRejectsOutOfRangeNeighborUnderDchecks) {
  if (!kDchecksEnabled) {
    GTEST_SKIP() << "SPR_DCHECK inactive in this build type";
  }
  ScopedCheckHandler guard(&throwing_check_handler);
  const Rect bounds = Rect::from_bounds({0.0, 0.0}, {3.0, 1.0});
  std::vector<std::size_t> offsets{0, 1, 1, 1};
  std::vector<NodeId> adjacency{7};  // node 7 of a 3-node graph
  EXPECT_THROW(UnitDiskGraph::from_parts(three_positions(), 1.5, bounds,
                                         std::vector<bool>(3, true),
                                         std::move(offsets),
                                         std::move(adjacency)),
               CheckError);
}

TEST(CheckedInvariants, SubmitToShutDownPoolIsCaught) {
  ScopedCheckHandler guard(&throwing_check_handler);
  TaskPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), CheckError);
}

// ---------------------------------------------------------------------------
// EdgeDiff normalization predicate (DCHECKed by with_moves producers).

TEST(EdgeDiffNormalized, AcceptsCanonicalDiff) {
  EdgeDiff diff;
  diff.added = {{0, 1}, {0, 2}, {1, 3}};
  diff.removed = {{0, 3}, {2, 3}};
  EXPECT_TRUE(edge_diff_normalized(diff));
  EXPECT_TRUE(edge_diff_normalized(EdgeDiff{}));
}

TEST(EdgeDiffNormalized, RejectsUnorderedPair) {
  EdgeDiff diff;
  diff.added = {{2, 1}};
  EXPECT_FALSE(edge_diff_normalized(diff));
  diff.added = {{1, 1}};  // self-loop
  EXPECT_FALSE(edge_diff_normalized(diff));
}

TEST(EdgeDiffNormalized, RejectsUnsortedOrDuplicateList) {
  EdgeDiff diff;
  diff.removed = {{1, 3}, {0, 2}};
  EXPECT_FALSE(edge_diff_normalized(diff));
  diff.removed = {{0, 2}, {0, 2}};
  EXPECT_FALSE(edge_diff_normalized(diff));
}

TEST(EdgeDiffNormalized, RejectsPairInBothLists) {
  EdgeDiff diff;
  diff.added = {{0, 1}, {2, 3}};
  diff.removed = {{2, 3}};
  EXPECT_FALSE(edge_diff_normalized(diff));
}

}  // namespace
}  // namespace spr
