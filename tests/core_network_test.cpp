#include "core/network.h"

#include <gtest/gtest.h>

#include "graph/graph_algos.h"
#include "test_helpers.h"

namespace spr {
namespace {

TEST(Network, CreateBuildsAllStructures) {
  NetworkConfig config;
  config.deployment.node_count = 300;
  config.seed = 5;
  Network net = Network::create(config);
  EXPECT_EQ(net.graph().size(), 300u);
  EXPECT_EQ(net.safety().size(), 300u);
  EXPECT_GT(net.interest_area().interior_nodes().size(), 0u);
  EXPECT_GT(net.overlay().edge_count(), 0u);
}

TEST(Network, DerivedStructuresStartUnbuilt) {
  NetworkConfig config;
  config.deployment.node_count = 300;
  config.seed = 5;
  Network net = Network::create(config);
  EXPECT_FALSE(net.has_safety());
  EXPECT_FALSE(net.has_overlay());
  EXPECT_FALSE(net.has_boundhole());
  // The eager core is there regardless.
  EXPECT_EQ(net.graph().size(), 300u);
  EXPECT_GT(net.interest_area().interior_nodes().size(), 0u);
}

TEST(Network, AccessorsMemoize) {
  Network net = test::random_network(250, 3);
  const SafetyInfo* first = &net.safety();
  EXPECT_TRUE(net.has_safety());
  EXPECT_EQ(first, &net.safety());  // stable reference, built once
  const PlanarOverlay* overlay = &net.overlay();
  EXPECT_EQ(overlay, &net.overlay());
}

TEST(Network, ForceBuildsRequestedStructures) {
  Network net = test::random_network(250, 3);
  net.force(Network::kNeedsSafety | Network::kNeedsBoundhole);
  EXPECT_TRUE(net.has_safety());
  EXPECT_FALSE(net.has_overlay());
  EXPECT_TRUE(net.has_boundhole());
}

TEST(Network, NeedsForScheme) {
  EXPECT_EQ(Network::needs_for(Scheme::kGf), Network::kNeedsNone);
  EXPECT_EQ(Network::needs_for(Scheme::kLgf), Network::kNeedsNone);
  EXPECT_EQ(Network::needs_for(Scheme::kGfFace), Network::kNeedsOverlay);
  EXPECT_EQ(Network::needs_for(Scheme::kSlgf), Network::kNeedsSafety);
  EXPECT_EQ(Network::needs_for(Scheme::kSlgf2), Network::kNeedsSafety);
}

TEST(Network, MakeRouterForcesOnlyWhatTheSchemeUses) {
  {
    Network net = test::random_network(250, 3);
    auto router = net.make_router(Scheme::kSlgf2);
    EXPECT_TRUE(net.has_safety());
    EXPECT_FALSE(net.has_overlay());
    EXPECT_FALSE(net.has_boundhole());
  }
  {
    Network net = test::random_network(250, 3);
    auto router = net.make_router(Scheme::kGfFace);
    EXPECT_FALSE(net.has_safety());
    EXPECT_TRUE(net.has_overlay());
    EXPECT_FALSE(net.has_boundhole());
  }
  {
    Network net = test::random_network(250, 3);
    auto router = net.make_router(Scheme::kLgf);
    EXPECT_FALSE(net.has_safety());
    EXPECT_FALSE(net.has_overlay());
    EXPECT_FALSE(net.has_boundhole());
  }
}

TEST(Network, GfRoutingWithoutLocalMinimaBuildsNothing) {
  // Dense hole-free grid: greedy forwarding always progresses, so GF must
  // never materialize the overlay, BOUNDHOLE or safety labeling.
  Network net{test::dense_grid_deployment(400, 7)};
  auto router = net.make_router(Scheme::kGf);
  EXPECT_FALSE(net.has_overlay());
  EXPECT_FALSE(net.has_boundhole());

  Rng rng(21);
  int routed = 0;
  for (int trial = 0; trial < 12; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    ASSERT_NE(s, kInvalidNode);
    PathResult r = router->route(s, d);
    EXPECT_TRUE(r.delivered());
    ++routed;
  }
  EXPECT_GT(routed, 0);
  EXPECT_FALSE(net.has_safety());
  EXPECT_FALSE(net.has_overlay());
  EXPECT_FALSE(net.has_boundhole());
}

TEST(Network, GfRecoveryLazilyBuildsOnFirstLocalMinimum) {
  // A grid with a large void: some pair hits a local minimum, which must
  // pull in the recovery structures — and routing must still work.
  Deployment d = test::grid_with_void(
      20, 10.0, Rect::from_bounds({60.0, 60.0}, {140.0, 140.0}));
  Network net{std::move(d)};
  auto router = net.make_router(Scheme::kGf);
  EXPECT_FALSE(net.has_overlay());
  EXPECT_FALSE(net.has_boundhole());

  Rng rng(4);
  bool hit_minimum = false;
  for (int trial = 0; trial < 60 && !hit_minimum; ++trial) {
    auto [s, dd] = net.random_connected_interior_pair(rng);
    if (s == kInvalidNode) break;
    PathResult r = router->route(s, dd);
    hit_minimum = r.local_minima > 0;
  }
  ASSERT_TRUE(hit_minimum) << "no pair hit a local minimum; weak fixture";
  EXPECT_TRUE(net.has_boundhole());
}

TEST(Network, SameSeedSameNetwork) {
  NetworkConfig config;
  config.deployment.node_count = 200;
  config.seed = 77;
  Network a = Network::create(config);
  Network b = Network::create(config);
  for (NodeId u = 0; u < a.graph().size(); ++u) {
    EXPECT_EQ(a.graph().position(u), b.graph().position(u));
  }
  EXPECT_TRUE(a.safety() == b.safety());
}

TEST(Network, DifferentSeedsDiffer) {
  NetworkConfig config;
  config.deployment.node_count = 200;
  config.seed = 1;
  Network a = Network::create(config);
  config.seed = 2;
  Network b = Network::create(config);
  int same_positions = 0;
  for (NodeId u = 0; u < a.graph().size(); ++u) {
    if (a.graph().position(u) == b.graph().position(u)) ++same_positions;
  }
  EXPECT_EQ(same_positions, 0);
}

TEST(Network, MakeRouterAllSchemes) {
  Network net = test::random_network(250, 3);
  for (Scheme scheme : {Scheme::kGf, Scheme::kGfFace, Scheme::kLgf,
                        Scheme::kSlgf, Scheme::kSlgf2}) {
    auto router = net.make_router(scheme);
    ASSERT_NE(router, nullptr);
    EXPECT_FALSE(router->name().empty());
  }
}

TEST(Network, SchemeNames) {
  EXPECT_STREQ(scheme_name(Scheme::kGf), "GF");
  EXPECT_STREQ(scheme_name(Scheme::kGfFace), "GF/face");
  EXPECT_STREQ(scheme_name(Scheme::kLgf), "LGF");
  EXPECT_STREQ(scheme_name(Scheme::kSlgf), "SLGF");
  EXPECT_STREQ(scheme_name(Scheme::kSlgf2), "SLGF2");
}

TEST(Network, RandomInteriorPairDistinctInterior) {
  Network net = test::random_network(300, 9);
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    auto [s, d] = net.random_interior_pair(rng);
    ASSERT_NE(s, kInvalidNode);
    EXPECT_NE(s, d);
    EXPECT_FALSE(net.interest_area().is_edge_node(s));
    EXPECT_FALSE(net.interest_area().is_edge_node(d));
  }
}

TEST(Network, ConnectedPairIsConnected) {
  Network net = test::random_network(400, 10, DeployModel::kForbiddenAreas);
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    ASSERT_NE(s, kInvalidNode);
    EXPECT_TRUE(connected(net.graph(), s, d));
  }
}

TEST(Network, FaModelPropagatesToDeployment) {
  NetworkConfig config;
  config.deployment.node_count = 300;
  config.deployment.model = DeployModel::kForbiddenAreas;
  config.seed = 4;
  Network net = Network::create(config);
  EXPECT_FALSE(net.deployment().forbidden_areas.empty());
}

TEST(Network, TinyNetworkNoInterior) {
  Deployment d;
  d.field = Rect::from_bounds({0.0, 0.0}, {50.0, 50.0});
  d.radio_range = 20.0;
  d.positions = {{10.0, 10.0}, {30.0, 30.0}};
  Network net{std::move(d)};
  Rng rng(3);
  auto [s, dd] = net.random_interior_pair(rng);
  EXPECT_EQ(s, kInvalidNode);
  EXPECT_EQ(dd, kInvalidNode);
}

}  // namespace
}  // namespace spr
