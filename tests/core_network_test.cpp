#include "core/network.h"

#include <gtest/gtest.h>

#include "graph/graph_algos.h"
#include "test_helpers.h"

namespace spr {
namespace {

TEST(Network, CreateBuildsAllStructures) {
  NetworkConfig config;
  config.deployment.node_count = 300;
  config.seed = 5;
  Network net = Network::create(config);
  EXPECT_EQ(net.graph().size(), 300u);
  EXPECT_EQ(net.safety().size(), 300u);
  EXPECT_GT(net.interest_area().interior_nodes().size(), 0u);
  EXPECT_GT(net.overlay().edge_count(), 0u);
}

TEST(Network, SameSeedSameNetwork) {
  NetworkConfig config;
  config.deployment.node_count = 200;
  config.seed = 77;
  Network a = Network::create(config);
  Network b = Network::create(config);
  for (NodeId u = 0; u < a.graph().size(); ++u) {
    EXPECT_EQ(a.graph().position(u), b.graph().position(u));
  }
  EXPECT_TRUE(a.safety() == b.safety());
}

TEST(Network, DifferentSeedsDiffer) {
  NetworkConfig config;
  config.deployment.node_count = 200;
  config.seed = 1;
  Network a = Network::create(config);
  config.seed = 2;
  Network b = Network::create(config);
  int same_positions = 0;
  for (NodeId u = 0; u < a.graph().size(); ++u) {
    if (a.graph().position(u) == b.graph().position(u)) ++same_positions;
  }
  EXPECT_EQ(same_positions, 0);
}

TEST(Network, MakeRouterAllSchemes) {
  Network net = test::random_network(250, 3);
  for (Scheme scheme : {Scheme::kGf, Scheme::kGfFace, Scheme::kLgf,
                        Scheme::kSlgf, Scheme::kSlgf2}) {
    auto router = net.make_router(scheme);
    ASSERT_NE(router, nullptr);
    EXPECT_FALSE(router->name().empty());
  }
}

TEST(Network, SchemeNames) {
  EXPECT_STREQ(scheme_name(Scheme::kGf), "GF");
  EXPECT_STREQ(scheme_name(Scheme::kGfFace), "GF/face");
  EXPECT_STREQ(scheme_name(Scheme::kLgf), "LGF");
  EXPECT_STREQ(scheme_name(Scheme::kSlgf), "SLGF");
  EXPECT_STREQ(scheme_name(Scheme::kSlgf2), "SLGF2");
}

TEST(Network, RandomInteriorPairDistinctInterior) {
  Network net = test::random_network(300, 9);
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    auto [s, d] = net.random_interior_pair(rng);
    ASSERT_NE(s, kInvalidNode);
    EXPECT_NE(s, d);
    EXPECT_FALSE(net.interest_area().is_edge_node(s));
    EXPECT_FALSE(net.interest_area().is_edge_node(d));
  }
}

TEST(Network, ConnectedPairIsConnected) {
  Network net = test::random_network(400, 10, DeployModel::kForbiddenAreas);
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    ASSERT_NE(s, kInvalidNode);
    EXPECT_TRUE(connected(net.graph(), s, d));
  }
}

TEST(Network, FaModelPropagatesToDeployment) {
  NetworkConfig config;
  config.deployment.node_count = 300;
  config.deployment.model = DeployModel::kForbiddenAreas;
  config.seed = 4;
  Network net = Network::create(config);
  EXPECT_FALSE(net.deployment().forbidden_areas.empty());
}

TEST(Network, TinyNetworkNoInterior) {
  Deployment d;
  d.field = Rect::from_bounds({0.0, 0.0}, {50.0, 50.0});
  d.radio_range = 20.0;
  d.positions = {{10.0, 10.0}, {30.0, 30.0}};
  Network net{std::move(d)};
  Rng rng(3);
  auto [s, dd] = net.random_interior_pair(rng);
  EXPECT_EQ(s, kInvalidNode);
  EXPECT_EQ(dd, kInvalidNode);
}

}  // namespace
}  // namespace spr
