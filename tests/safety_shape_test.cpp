#include "safety/shape.h"

#include <gtest/gtest.h>

#include <queue>

#include "test_helpers.h"

namespace spr {
namespace {

/// Greedy region G_t(u): type-t unsafe nodes reachable from u through
/// type-t unsafe nodes by quadrant steps (v_{i+1} in Q_t(v_i)).
std::vector<NodeId> greedy_region(const UnitDiskGraph& g, const SafetyInfo& info,
                                  NodeId u, ZoneType t) {
  std::vector<NodeId> out;
  std::vector<bool> seen(g.size(), false);
  std::queue<NodeId> frontier;
  seen[u] = true;
  frontier.push(u);
  while (!frontier.empty()) {
    NodeId w = frontier.front();
    frontier.pop();
    if (w != u) out.push_back(w);
    for (NodeId v : g.neighbors(w)) {
      if (seen[v]) continue;
      if (!in_quadrant(g.position(w), g.position(v), t)) continue;
      if (info.is_safe(v, t)) continue;
      seen[v] = true;
      frontier.push(v);
    }
  }
  return out;
}

TEST(SafetyShape, EstimateOnlyForUnsafeTypes) {
  Network net = test::random_network(400, 31, DeployModel::kForbiddenAreas);
  const auto& info = net.safety();
  for (NodeId u = 0; u < info.size(); ++u) {
    for (ZoneType t : kAllZoneTypes) {
      auto e = estimate_for(net.graph(), info, u, t);
      EXPECT_EQ(e.has_value(), !info.is_safe(u, t));
    }
  }
}

TEST(SafetyShape, EstimateRectContainsOriginAndAnchors) {
  Network net = test::random_network(450, 37, DeployModel::kForbiddenAreas);
  const auto& g = net.graph();
  const auto& info = net.safety();
  for (NodeId u = 0; u < info.size(); ++u) {
    for (ZoneType t : kAllZoneTypes) {
      auto e = estimate_for(g, info, u, t);
      if (!e) continue;
      const auto& a = info.tuple(u).anchors_for(t);
      EXPECT_TRUE(e->rect.contains(g.position(u), 1e-9));
      EXPECT_TRUE(e->rect.contains(a.first_pos, 1e-9));
      EXPECT_TRUE(e->rect.contains(a.last_pos, 1e-9));
    }
  }
}

TEST(SafetyShape, AnchorsAreInGreedyRegion) {
  // u(1)/u(2) are endpoints of genuine type-t forwarding chains, so they
  // must lie in G_t(u) ∪ {u}.
  for (std::uint64_t seed : {41ull, 43ull, 47ull}) {
    Network net = test::random_network(400, seed, DeployModel::kForbiddenAreas);
    const auto& g = net.graph();
    const auto& info = net.safety();
    for (NodeId u = 0; u < info.size(); ++u) {
      for (ZoneType t : kAllZoneTypes) {
        if (info.is_safe(u, t)) continue;
        auto region = greedy_region(g, info, u, t);
        const auto& a = info.tuple(u).anchors_for(t);
        auto in_region = [&](NodeId x) {
          return x == u ||
                 std::find(region.begin(), region.end(), x) != region.end();
        };
        EXPECT_TRUE(in_region(a.first)) << "seed " << seed << " node " << u;
        EXPECT_TRUE(in_region(a.last)) << "seed " << seed << " node " << u;
      }
    }
  }
}

TEST(SafetyShape, EstimateWithinGreedyRegionBounds) {
  // E_t(u) never exceeds the bounding box of G_t(u) ∪ {u}: the estimate is
  // built from real chain endpoints.
  Network net = test::random_network(400, 53, DeployModel::kForbiddenAreas);
  const auto& g = net.graph();
  const auto& info = net.safety();
  for (NodeId u = 0; u < info.size(); ++u) {
    for (ZoneType t : kAllZoneTypes) {
      auto e = estimate_for(g, info, u, t);
      if (!e) continue;
      Rect region_box = Rect::from_corners(g.position(u), g.position(u));
      for (NodeId v : greedy_region(g, info, u, t)) {
        region_box = region_box.expanded_to(g.position(v));
      }
      EXPECT_TRUE(region_box.inflated(1e-9).contains(e->rect))
          << "node " << u << " type " << static_cast<int>(t);
    }
  }
}

TEST(SafetyShape, FarCornerMatchesQuadrantDirection) {
  UnsafeAreaEstimate e;
  e.origin = {10.0, 10.0};
  e.rect = Rect::from_corners({10.0, 10.0}, {30.0, 25.0});
  e.type = ZoneType::k1;
  EXPECT_EQ(e.far_corner(), Vec2(30.0, 25.0));
  e.type = ZoneType::k3;
  e.origin = {30.0, 25.0};
  EXPECT_EQ(e.far_corner(), Vec2(10.0, 10.0));
  e.type = ZoneType::k2;
  e.origin = {30.0, 10.0};
  EXPECT_EQ(e.far_corner(), Vec2(10.0, 25.0));
  e.type = ZoneType::k4;
  e.origin = {10.0, 25.0};
  EXPECT_EQ(e.far_corner(), Vec2(30.0, 10.0));
}

TEST(SafetyShape, VisibleEstimatesIncludeOwnAndNeighbors) {
  Network net = test::random_network(400, 59, DeployModel::kForbiddenAreas);
  const auto& g = net.graph();
  const auto& info = net.safety();
  for (NodeId u = 0; u < g.size(); ++u) {
    auto estimates = visible_estimates(g, info, u);
    for (const auto& e : estimates) {
      bool owner_visible = e.owner == u || g.are_neighbors(u, e.owner);
      EXPECT_TRUE(owner_visible);
      EXPECT_FALSE(info.is_safe(e.owner, e.type));
    }
    // Count must equal the sum of unsafe types over u and its neighbors.
    std::size_t expected = 0;
    auto count_unsafe = [&](NodeId v) {
      for (ZoneType t : kAllZoneTypes) {
        if (!info.is_safe(v, t)) ++expected;
      }
    };
    count_unsafe(u);
    for (NodeId v : g.neighbors(u)) count_unsafe(v);
    EXPECT_EQ(estimates.size(), expected);
  }
}

TEST(SafetyShape, CoveringRect) {
  std::vector<UnsafeAreaEstimate> estimates;
  EXPECT_FALSE(covering_rect(estimates, 5.0).has_value());
  UnsafeAreaEstimate a;
  a.rect = Rect::from_corners({0.0, 0.0}, {10.0, 10.0});
  UnsafeAreaEstimate b;
  b.rect = Rect::from_corners({20.0, 5.0}, {30.0, 15.0});
  estimates = {a, b};
  auto cover = covering_rect(estimates, 2.0);
  ASSERT_TRUE(cover.has_value());
  EXPECT_EQ(cover->lo(), Vec2(-2.0, -2.0));
  EXPECT_EQ(cover->hi(), Vec2(32.0, 17.0));
}

}  // namespace
}  // namespace spr
