#include "mobility/waypoint.h"

#include <gtest/gtest.h>

#include "deploy/deployment.h"
#include "test_helpers.h"

namespace spr {
namespace {

WaypointModel make_model(int nodes, std::uint64_t seed,
                         WaypointConfig config = {}) {
  DeploymentConfig dc;
  dc.node_count = nodes;
  Rng rng(seed);
  Deployment d = deploy(dc, rng);
  return WaypointModel(d.positions, config, Rng(seed ^ 0xabc));
}

TEST(Waypoint, StaysInsideField) {
  WaypointConfig config;
  WaypointModel model = make_model(100, 1, config);
  for (int step = 0; step < 200; ++step) {
    model.advance(1.0);
    for (Vec2 p : model.positions()) {
      EXPECT_TRUE(config.field.contains(p, 1e-9));
    }
  }
}

TEST(Waypoint, TimeAdvances) {
  WaypointModel model = make_model(10, 2);
  EXPECT_DOUBLE_EQ(model.now(), 0.0);
  model.advance(2.5);
  model.advance(2.5);
  EXPECT_DOUBLE_EQ(model.now(), 5.0);
}

TEST(Waypoint, NodesEventuallyMove) {
  WaypointConfig config;
  config.pause_s = 1.0;
  WaypointModel model = make_model(50, 3, config);
  std::vector<Vec2> start = model.positions();
  model.advance(30.0);
  int moved = 0;
  for (std::size_t i = 0; i < start.size(); ++i) {
    if (!almost_equal(start[i], model.positions()[i], 1e-6)) ++moved;
  }
  EXPECT_GT(moved, 40);  // nearly everyone moved within 30s
}

TEST(Waypoint, SpeedBoundsRespected) {
  WaypointConfig config;
  config.min_speed_mps = 1.0;
  config.max_speed_mps = 2.0;
  config.pause_s = 0.0;
  WaypointModel model = make_model(50, 4, config);
  std::vector<Vec2> prev = model.positions();
  for (int step = 0; step < 50; ++step) {
    model.advance(1.0);
    for (std::size_t i = 0; i < prev.size(); ++i) {
      double moved = distance(prev[i], model.positions()[i]);
      // Straight-line displacement per second can't exceed max speed (it
      // can be less, e.g. when turning at a waypoint).
      EXPECT_LE(moved, config.max_speed_mps + 1e-6);
    }
    prev = model.positions();
  }
}

TEST(Waypoint, TraveledAccountsDistance) {
  WaypointConfig config;
  config.pause_s = 0.0;
  WaypointModel model = make_model(20, 5, config);
  model.advance(60.0);
  for (NodeId u = 0; u < model.size(); ++u) {
    EXPECT_GE(model.traveled(u), 0.0);
    EXPECT_LE(model.traveled(u), config.max_speed_mps * 60.0 + 1e-6);
  }
  double total = 0.0;
  for (NodeId u = 0; u < model.size(); ++u) total += model.traveled(u);
  EXPECT_GT(total, 0.0);
}

TEST(Waypoint, DeterministicForSeed) {
  WaypointModel a = make_model(30, 6);
  WaypointModel b = make_model(30, 6);
  a.advance(17.0);
  b.advance(17.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.positions()[i], b.positions()[i]);
  }
}

TEST(Waypoint, AdvanceGranularityInvariance) {
  // One 10s step vs ten 1s steps land nodes in (nearly) the same place.
  WaypointModel coarse = make_model(30, 7);
  WaypointModel fine = make_model(30, 7);
  coarse.advance(10.0);
  for (int i = 0; i < 10; ++i) fine.advance(1.0);
  for (std::size_t i = 0; i < coarse.size(); ++i) {
    EXPECT_TRUE(almost_equal(coarse.positions()[i], fine.positions()[i], 1e-6))
        << "node " << i;
  }
}

TEST(Waypoint, SafetyInfoTracksMobility) {
  // Rebuild the network per epoch; the labeling follows the topology.
  WaypointConfig config;
  config.pause_s = 0.0;
  config.max_speed_mps = 5.0;
  WaypointModel model = make_model(300, 8, config);
  Rect field = config.field;
  std::size_t first_unsafe = 0;
  for (int epoch = 0; epoch < 3; ++epoch) {
    UnitDiskGraph g(model.positions(), 20.0, field);
    InterestArea area(g, 20.0);
    SafetyInfo info = compute_safety(g, area);
    if (epoch == 0) first_unsafe = info.unsafe_node_count();
    model.advance(30.0);
  }
  (void)first_unsafe;  // labeling recomputed per epoch without issues
  SUCCEED();
}

}  // namespace
}  // namespace spr
