#include "mobility/waypoint.h"

#include <gtest/gtest.h>

#include "deploy/deployment.h"
#include "test_helpers.h"

namespace spr {
namespace {

WaypointModel make_model(int nodes, std::uint64_t seed,
                         WaypointConfig config = {}) {
  DeploymentConfig dc;
  dc.node_count = nodes;
  Rng rng(seed);
  Deployment d = deploy(dc, rng);
  return WaypointModel(d.positions, config, Rng(seed ^ 0xabc));
}

TEST(Waypoint, StaysInsideField) {
  WaypointConfig config;
  WaypointModel model = make_model(100, 1, config);
  for (int step = 0; step < 200; ++step) {
    model.advance(1.0);
    for (Vec2 p : model.positions()) {
      EXPECT_TRUE(config.field.contains(p, 1e-9));
    }
  }
}

TEST(Waypoint, TimeAdvances) {
  WaypointModel model = make_model(10, 2);
  EXPECT_DOUBLE_EQ(model.now(), 0.0);
  model.advance(2.5);
  model.advance(2.5);
  EXPECT_DOUBLE_EQ(model.now(), 5.0);
}

TEST(Waypoint, NodesEventuallyMove) {
  WaypointConfig config;
  config.pause_s = 1.0;
  WaypointModel model = make_model(50, 3, config);
  std::vector<Vec2> start = model.positions();
  model.advance(30.0);
  int moved = 0;
  for (std::size_t i = 0; i < start.size(); ++i) {
    if (!almost_equal(start[i], model.positions()[i], 1e-6)) ++moved;
  }
  EXPECT_GT(moved, 40);  // nearly everyone moved within 30s
}

TEST(Waypoint, SpeedBoundsRespected) {
  WaypointConfig config;
  config.min_speed_mps = 1.0;
  config.max_speed_mps = 2.0;
  config.pause_s = 0.0;
  WaypointModel model = make_model(50, 4, config);
  std::vector<Vec2> prev = model.positions();
  for (int step = 0; step < 50; ++step) {
    model.advance(1.0);
    for (std::size_t i = 0; i < prev.size(); ++i) {
      double moved = distance(prev[i], model.positions()[i]);
      // Straight-line displacement per second can't exceed max speed (it
      // can be less, e.g. when turning at a waypoint).
      EXPECT_LE(moved, config.max_speed_mps + 1e-6);
    }
    prev = model.positions();
  }
}

TEST(Waypoint, TraveledAccountsDistance) {
  WaypointConfig config;
  config.pause_s = 0.0;
  WaypointModel model = make_model(20, 5, config);
  model.advance(60.0);
  for (NodeId u = 0; u < model.size(); ++u) {
    EXPECT_GE(model.traveled(u), 0.0);
    EXPECT_LE(model.traveled(u), config.max_speed_mps * 60.0 + 1e-6);
  }
  double total = 0.0;
  for (NodeId u = 0; u < model.size(); ++u) total += model.traveled(u);
  EXPECT_GT(total, 0.0);
}

TEST(Waypoint, DeterministicForSeed) {
  WaypointModel a = make_model(30, 6);
  WaypointModel b = make_model(30, 6);
  a.advance(17.0);
  b.advance(17.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.positions()[i], b.positions()[i]);
  }
}

TEST(Waypoint, AdvanceGranularityInvariance) {
  // One 10s step vs ten 1s steps land nodes in (nearly) the same place.
  WaypointModel coarse = make_model(30, 7);
  WaypointModel fine = make_model(30, 7);
  coarse.advance(10.0);
  for (int i = 0; i < 10; ++i) fine.advance(1.0);
  for (std::size_t i = 0; i < coarse.size(); ++i) {
    EXPECT_TRUE(almost_equal(coarse.positions()[i], fine.positions()[i], 1e-6))
        << "node " << i;
  }
}

TEST(Waypoint, GoldenTrajectoryForFixedSeed) {
  // Locks in the cross-platform determinism claim of deploy/rng.h: the
  // xoshiro256++ streams (and the exact-integration advance) must land
  // every node on exactly these coordinates, epoch by epoch. The goldens
  // were captured from this model with seed 2009; any change to the RNG,
  // the per-node stream forking, or the advance() integration order shows
  // up here as a diff, not as silent drift.
  WaypointConfig config;  // default 200x200 field, speeds 0.5..2.0, pause 5s
  std::vector<Vec2> initial = {{10.0, 10.0}, {50.0, 120.0}, {190.0, 40.0},
                               {100.0, 100.0}, {0.0, 200.0}};
  WaypointModel model(initial, config, Rng(2009));

  const std::vector<std::vector<Vec2>> golden = {
      // after 1 epoch (t = 12.5 s)
      {{34.60283134052635, 9.2603655740949602}, {52.79026045174254, 128.45558833115538}, {182.46167883861847, 49.045069109684846}, {96.043684777218175, 114.68958963075541}, {2.4568613813092339, 193.61153031063171}},
      // after 2 epochs (t = 25.0 s)
      {{59.289366282450459, 8.5182147684973089}, {56.529402113685975, 139.78666052032}, {174.04045807004167, 59.149510431435431}, {89.97963966091244, 137.20506912237278}, {6.5366606118235779, 183.00300598722851}},
      // after 3 epochs (t = 37.5 s)
      {{83.975901224374553, 7.7760639628996584}, {60.268543775629404, 151.11773270948461}, {165.61923730146486, 69.253951753186016}, {83.915594544606705, 159.72054861399016}, {10.616459842337921, 172.3944816638253}},
      // after 4 epochs (t = 50.0 s)
      {{108.66243616629866, 7.0339131573020079}, {63.257803602376427, 160.17636753837616}, {157.19801653288806, 79.3583930749366}, {77.851549428300956, 182.23602810560755}, {14.696259072852264, 161.7859573404221}},
      // after 5 epochs (t = 62.5 s)
      {{133.34897110822277, 6.2917623517043575}, {59.669528409458238, 141.10681909755155}, {148.77679576431129, 89.462834396687185}, {81.788702089058944, 178.76444427642446}, {18.776058303366607, 151.1774330170189}},
  };
  for (std::size_t epoch = 0; epoch < golden.size(); ++epoch) {
    model.advance(12.5);
    for (std::size_t i = 0; i < initial.size(); ++i) {
      EXPECT_DOUBLE_EQ(model.positions()[i].x, golden[epoch][i].x)
          << "epoch " << epoch + 1 << " node " << i;
      EXPECT_DOUBLE_EQ(model.positions()[i].y, golden[epoch][i].y)
          << "epoch " << epoch + 1 << " node " << i;
    }
  }
  const double golden_traveled[] = {123.40469885670242, 61.711537169779007,
                                    64.388854268509874, 92.54491486869091,
                                    52.308540528474907};
  for (std::size_t i = 0; i < initial.size(); ++i) {
    EXPECT_DOUBLE_EQ(model.traveled(static_cast<NodeId>(i)),
                     golden_traveled[i])
        << "node " << i;
  }
}

TEST(Waypoint, SafetyInfoTracksMobility) {
  // Rebuild the network per epoch; the labeling follows the topology.
  WaypointConfig config;
  config.pause_s = 0.0;
  config.max_speed_mps = 5.0;
  WaypointModel model = make_model(300, 8, config);
  Rect field = config.field;
  std::size_t first_unsafe = 0;
  for (int epoch = 0; epoch < 3; ++epoch) {
    UnitDiskGraph g(model.positions(), 20.0, field);
    InterestArea area(g, 20.0);
    SafetyInfo info = compute_safety(g, area);
    if (epoch == 0) first_unsafe = info.unsafe_node_count();
    model.advance(30.0);
  }
  (void)first_unsafe;  // labeling recomputed per epoch without issues
  SUCCEED();
}

}  // namespace
}  // namespace spr
