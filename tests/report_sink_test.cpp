/// \file report_sink_test.cpp
/// The ReportSink backends: JSON documents that the bundled reader parses
/// (for every built-in scenario), CSV table export paths and RFC-4180
/// quoting, SVG curve rendering, format-list parsing, and the composable
/// sink selection in ScenarioSuite::run.

#include "report/sink.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/scenario.h"
#include "report/serialize.h"

namespace spr {
namespace {

ScenarioReport build_report(const char* name, const ScenarioOptions& opts) {
  const Scenario* scenario = ScenarioSuite::builtin().find(name);
  EXPECT_NE(scenario, nullptr) << name;
  ScenarioReport report;
  report.scenario = name;
  EXPECT_EQ(scenario->build(opts, report), 0) << name;
  return report;
}

ScenarioOptions tiny_options() {
  ScenarioOptions opts;
  opts.networks = 1;
  opts.pairs = 1;
  opts.seed = 13;
  opts.threads = 2;
  return opts;
}

TEST(JsonSinkTest, EveryBuiltinScenarioReportParses) {
  for (const char* name :
       {"fig5-max-hops", "fig6-avg-hops", "fig7-path-length", "ablation",
        "hole-field", "failure-dynamics", "mobile-stream", "sweep-scaling"}) {
    ScenarioReport report = build_report(name, tiny_options());
    std::string document = JsonSink::render(report);
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(document, parsed, &error))
        << name << ": " << error;
    EXPECT_EQ(parsed.get("scenario").as_string(), name);
    // Parse -> dump -> parse is stable (what the merge path relies on).
    JsonValue reparsed;
    ASSERT_TRUE(JsonValue::parse(parsed.dump(), reparsed, &error)) << name;
    EXPECT_EQ(parsed.dump(), reparsed.dump()) << name;
  }
}

TEST(JsonSinkTest, FigureReportKeepsTheLegacyShape) {
  ScenarioReport report = build_report("fig6-avg-hops", tiny_options());
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::parse(JsonSink::render(report), parsed));
  const JsonValue& models = parsed.get("models");
  ASSERT_TRUE(models.is_array());
  ASSERT_EQ(models.size(), 2u);  // IA + FA
  EXPECT_EQ(models.at(0).get("model").as_string(), "IA");
  EXPECT_EQ(models.at(1).get("model").as_string(), "FA");
  const JsonValue& points = models.at(0).get("points");
  ASSERT_TRUE(points.is_array());
  EXPECT_EQ(points.size(), 9u);  // the paper's 400..800 grid
  const JsonValue& gf = points.at(0).get("schemes").get("GF");
  EXPECT_TRUE(gf.get("delivery_ratio").is_number());
  EXPECT_TRUE(gf.get("hops").get("mean").is_number());
}

TEST(JsonSinkTest, WritesFileWithTrailingNewline) {
  ScenarioReport report;
  report.scenario = "unit";
  report.param("x", JsonValue::of(1));
  std::string path = testing::TempDir() + "/spr_sink_test.json";
  ASSERT_TRUE(JsonSink(path).emit(report));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "{\"scenario\":\"unit\",\"x\":1}\n");
  std::remove(path.c_str());
}

TEST(CsvSinkTest, SingleTableUsesTheConfiguredPath) {
  EXPECT_EQ(CsvSink::table_path("out.csv", 0, 1), "out.csv");
  EXPECT_EQ(CsvSink::table_path("out.csv", 0, 3), "out-1.csv");
  EXPECT_EQ(CsvSink::table_path("out.csv", 2, 3), "out-3.csv");
  EXPECT_EQ(CsvSink::table_path("noext", 1, 2), "noext-2");
  EXPECT_EQ(CsvSink::table_path("dir.d/noext", 1, 2), "dir.d/noext-2");
}

TEST(CsvSinkTest, WritesEveryTable) {
  ScenarioReport report;
  report.scenario = "unit";
  Table a({"n", "v"});
  a.add_row({"1", "x,y"});
  report.add_table(std::move(a), "first");
  Table b({"m"});
  b.add_row({"he said \"hi\""});
  report.add_table(std::move(b), "second");

  std::string base = testing::TempDir() + "/spr_sink_test.csv";
  ASSERT_TRUE(CsvSink(base).emit(report));
  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  std::string first = CsvSink::table_path(base, 0, 2);
  std::string second = CsvSink::table_path(base, 1, 2);
  EXPECT_EQ(slurp(first), "n,v\n1,\"x,y\"\n");
  EXPECT_EQ(slurp(second), "m\n\"he said \"\"hi\"\"\"\n");
  std::remove(first.c_str());
  std::remove(second.c_str());
}

TEST(SvgSinkTest, RendersOnePanelPerCurve) {
  ScenarioReport report = build_report("fig6-avg-hops", tiny_options());
  ASSERT_EQ(report.curves.size(), 2u);  // IA + FA panels
  std::string svg = SvgSink::render(report);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  EXPECT_NE(svg.find("GF"), std::string::npos);
  EXPECT_NE(svg.find("SLGF2"), std::string::npos);
  EXPECT_NE(svg.find("Fig. 6"), std::string::npos);
}

TEST(SvgSinkTest, CurvelessReportStillProducesADocument) {
  ScenarioReport report;
  report.scenario = "unit";
  std::string svg = SvgSink::render(report);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("no sweep curves"), std::string::npos);
}

TEST(ConsoleSinkTest, PrintsBlocksInOrder) {
  ScenarioReport report;
  report.text("before\n");
  Table t({"a"});
  t.add_row({"1"});
  report.add_table(std::move(t));
  report.note("after");
  testing::internal::CaptureStdout();
  ASSERT_TRUE(ConsoleSink().emit(report));
  std::string out = testing::internal::GetCapturedStdout();
  EXPECT_EQ(out, "before\na\n-\n1\nafter\n");
}

TEST(ReportFormats, ParseAndValidate) {
  std::vector<ReportFormat> formats;
  EXPECT_TRUE(parse_report_formats("console,json,csv,svg", formats));
  EXPECT_EQ(formats.size(), 4u);
  EXPECT_TRUE(parse_report_formats("", formats));
  EXPECT_TRUE(formats.empty());
  EXPECT_TRUE(parse_report_formats(" json , json ", formats));
  EXPECT_EQ(formats.size(), 1u);
  EXPECT_EQ(formats[0], ReportFormat::kJson);
  std::string error;
  EXPECT_FALSE(parse_report_formats("json,xml", formats, &error));
  EXPECT_NE(error.find("xml"), std::string::npos);
}

/// Unknown format tokens are rejected with the same near-match suggestion
/// machinery unknown scenario names get — a typo points at the fix.
TEST(ReportFormats, UnknownTokenSuggestsNearMatch) {
  std::vector<ReportFormat> formats;
  std::string error;
  EXPECT_FALSE(parse_report_formats("jsno", formats, &error));
  EXPECT_NE(error.find("did you mean 'json'"), std::string::npos) << error;
  error.clear();
  EXPECT_FALSE(parse_report_formats("console,svgg", formats, &error));
  EXPECT_NE(error.find("did you mean 'svg'"), std::string::npos) << error;
  error.clear();
  // A prefix of a valid name also points at it.
  EXPECT_FALSE(parse_report_formats("cons", formats, &error));
  EXPECT_NE(error.find("did you mean 'console'"), std::string::npos) << error;
  // Nothing close: the error still lists the valid names, no suggestion.
  error.clear();
  EXPECT_FALSE(parse_report_formats("spreadsheet", formats, &error));
  EXPECT_EQ(error.find("did you mean"), std::string::npos) << error;
  EXPECT_NE(error.find("expected console, json, csv or svg"),
            std::string::npos);
}

TEST(ScenarioRun, FormatSelectionEmitsTheRequestedSinks) {
  std::string base = testing::TempDir() + "/spr_run_formats";
  ScenarioOptions opts = tiny_options();
  opts.networks = 3;  // mobile-stream epochs
  opts.seed = 9;
  opts.formats = "json,csv,svg";
  opts.json_path = base + ".json";
  opts.csv_path = base + ".csv";
  opts.svg_path = base + ".svg";
  // No console in the list: nothing on stdout.
  testing::internal::CaptureStdout();
  ASSERT_EQ(ScenarioSuite::builtin().run("mobile-stream", opts), 0);
  EXPECT_EQ(testing::internal::GetCapturedStdout(), "");
  for (const char* ext : {".json", ".csv", ".svg"}) {
    std::ifstream in(base + ext);
    EXPECT_TRUE(in.good()) << ext;
  }
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::parse_file(base + ".json", parsed));
  EXPECT_EQ(parsed.get("scenario").as_string(), "mobile-stream");
  EXPECT_TRUE(parsed.get("notes").is_array());
  for (const char* ext : {".json", ".csv", ".svg"}) {
    std::remove((base + ext).c_str());
  }
}

TEST(ScenarioRun, AbortedReportRoutesMessageToStderrWithoutConsoleSink) {
  ScenarioSuite suite;
  suite.add({"aborting", "always aborts",
             [](const ScenarioOptions&, ScenarioReport& r) {
               r.textf("something went wrong\n");
               r.aborted = true;
               return 1;
             }});
  ScenarioOptions opts;
  opts.formats = "json";
  opts.json_path = testing::TempDir() + "/spr_aborted_test.json";
  std::remove(opts.json_path.c_str());
  testing::internal::CaptureStdout();
  testing::internal::CaptureStderr();
  EXPECT_EQ(suite.run("aborting", opts), 1);
  std::string out = testing::internal::GetCapturedStdout();
  std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out, "");  // console sink was not selected
  EXPECT_NE(err.find("something went wrong"), std::string::npos);
  // Structured sinks skip the half-built report entirely.
  std::ifstream in(opts.json_path);
  EXPECT_FALSE(in.good());
}

TEST(ScenarioRun, UnwritableSinkFailsWithExitCode1) {
  ScenarioOptions opts = tiny_options();
  opts.networks = 2;
  opts.json_path = "/nonexistent-dir/report.json";
  testing::internal::CaptureStdout();
  int code = ScenarioSuite::builtin().run("mobile-stream", opts);
  testing::internal::GetCapturedStdout();
  EXPECT_EQ(code, 1);
}

}  // namespace
}  // namespace spr
