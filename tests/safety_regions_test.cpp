#include "safety/regions.h"

#include <gtest/gtest.h>

namespace spr {
namespace {

UnsafeAreaEstimate type1_estimate() {
  UnsafeAreaEstimate e;
  e.owner = 0;
  e.type = ZoneType::k1;
  e.origin = {0.0, 0.0};
  e.rect = Rect::from_corners({0.0, 0.0}, {20.0, 10.0});
  return e;
}

TEST(Regions, DiagonalSideSigns) {
  auto e = type1_estimate();
  // Diagonal runs toward (20,10); points above it are CCW (positive).
  EXPECT_GT(diagonal_side(e, {5.0, 10.0}), 0.0);
  EXPECT_LT(diagonal_side(e, {10.0, 1.0}), 0.0);
  EXPECT_NEAR(diagonal_side(e, {10.0, 5.0}), 0.0, 1e-9);  // on the ray
}

TEST(Regions, CriticalIsDestinationSide) {
  auto e = type1_estimate();
  Vec2 d{5.0, 30.0};  // above the diagonal, inside Q1
  EXPECT_EQ(classify_region(e, d, {2.0, 20.0}), RegionClass::kCritical);
  EXPECT_EQ(classify_region(e, d, {20.0, 2.0}), RegionClass::kForbidden);
}

TEST(Regions, MirrorWhenDestinationBelowDiagonal) {
  auto e = type1_estimate();
  Vec2 d{30.0, 3.0};  // below the diagonal
  EXPECT_EQ(classify_region(e, d, {20.0, 2.0}), RegionClass::kCritical);
  EXPECT_EQ(classify_region(e, d, {2.0, 20.0}), RegionClass::kForbidden);
}

TEST(Regions, OutsideQuadrantNeverForbidden) {
  auto e = type1_estimate();
  Vec2 d{5.0, 30.0};
  EXPECT_EQ(classify_region(e, d, {-5.0, 10.0}), RegionClass::kOutsideQuadrant);
  EXPECT_EQ(classify_region(e, d, {5.0, -10.0}), RegionClass::kOutsideQuadrant);
  EXPECT_FALSE(in_forbidden_region(e, d, {-5.0, 10.0}));
}

TEST(Regions, DestinationOutsideQuadrantDisablesSplit) {
  auto e = type1_estimate();
  Vec2 d{-10.0, 5.0};  // d not in Q1(origin): no forbidden region
  EXPECT_EQ(classify_region(e, d, {20.0, 2.0}), RegionClass::kCritical);
  EXPECT_EQ(classify_region(e, d, {2.0, 20.0}), RegionClass::kCritical);
}

TEST(Regions, DestinationOnDiagonalDisablesSplit) {
  auto e = type1_estimate();
  Vec2 d{10.0, 5.0};  // exactly on the diagonal
  EXPECT_EQ(classify_region(e, d, {2.0, 20.0}), RegionClass::kCritical);
  EXPECT_EQ(classify_region(e, d, {20.0, 2.0}), RegionClass::kCritical);
}

TEST(Regions, DegenerateEstimateUsesQuadrantDiagonal) {
  UnsafeAreaEstimate e;
  e.type = ZoneType::k1;
  e.origin = {0.0, 0.0};
  e.rect = Rect::from_corners({0.0, 0.0}, {0.0, 0.0});  // single point
  Vec2 d{1.0, 10.0};  // CCW of the 45-degree diagonal
  EXPECT_EQ(classify_region(e, d, {2.0, 10.0}), RegionClass::kCritical);
  EXPECT_EQ(classify_region(e, d, {10.0, 1.0}), RegionClass::kForbidden);
}

TEST(Regions, Type3MirrorCase) {
  UnsafeAreaEstimate e;
  e.type = ZoneType::k3;
  e.origin = {0.0, 0.0};
  e.rect = Rect::from_corners({-20.0, -10.0}, {0.0, 0.0});
  EXPECT_EQ(e.far_corner(), Vec2(-20.0, -10.0));
  Vec2 d{-5.0, -30.0};  // CCW side of the ray toward (-20,-10)
  EXPECT_EQ(classify_region(e, d, {-2.0, -20.0}), RegionClass::kCritical);
  EXPECT_EQ(classify_region(e, d, {-20.0, -2.0}), RegionClass::kForbidden);
}

TEST(Regions, ChooseHandFollowsDestinationSide) {
  auto e = type1_estimate();
  EXPECT_EQ(choose_hand(e, {5.0, 30.0}), Hand::kRight);  // CCW side
  EXPECT_EQ(choose_hand(e, {30.0, 3.0}), Hand::kLeft);   // CW side
  EXPECT_EQ(choose_hand(e, {10.0, 5.0}), Hand::kRight);  // on ray -> right
}

}  // namespace
}  // namespace spr
