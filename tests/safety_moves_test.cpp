#include "safety/incremental.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/network.h"
#include "mobility/waypoint.h"
#include "test_helpers.h"

namespace spr {
namespace {

std::vector<Vec2> jitter_positions(const std::vector<Vec2>& positions,
                                   const Rect& field, double magnitude,
                                   Rng& rng) {
  std::vector<Vec2> moved = positions;
  for (Vec2& p : moved) {
    p.x = std::clamp(p.x + rng.uniform(-magnitude, magnitude), field.lo().x,
                     field.hi().x);
    p.y = std::clamp(p.y + rng.uniform(-magnitude, magnitude), field.lo().y,
                     field.hi().y);
  }
  return moved;
}

/// The bidirectional updater must land on exactly the fixpoint a
/// from-scratch compute_safety produces on the moved graph — statuses AND
/// anchors (SafetyInfo equality covers both) — for random whole-field
/// motion of varying magnitude.
TEST(IncrementalMoves, MatchesFullRecomputeOnRandomMotion) {
  for (std::uint64_t seed : test::property_seeds()) {
    for (double magnitude : {2.0, 12.0, 40.0}) {
      Network net =
          test::random_network(350, seed, DeployModel::kForbiddenAreas);
      net.force(Network::kNeedsSafety);
      Rng rng(seed ^ 0x700e);
      std::vector<Vec2> moved = jitter_positions(
          net.graph().positions(), net.deployment().field, magnitude, rng);

      IncrementalStats stats;
      Network after = net.with_moves(moved, &stats);
      ASSERT_TRUE(after.has_safety());  // derived, not rebuilt lazily
      SafetyInfo from_scratch =
          compute_safety(after.graph(), after.interest_area());
      EXPECT_EQ(after.safety(), from_scratch)
          << "seed " << seed << " magnitude " << magnitude
          << ": incremental fixpoint diverged from compute_safety";
    }
  }
}

/// Localized motion — only every fourth node drifts, which keeps
/// with_moves on its relocate-and-patch branch and leaves most nodes
/// untouched for the updater's pre-pass — must still land exactly on the
/// from-scratch fixpoint, including across chained epochs.
TEST(IncrementalMoves, LocalizedMotionMatchesFullRecompute) {
  for (std::uint64_t seed : test::property_seeds()) {
    Network net =
        test::random_network(350, seed, DeployModel::kForbiddenAreas);
    net.force(Network::kNeedsSafety);
    Rng rng(seed ^ 0x10ca1);
    for (int epoch = 0; epoch < 3; ++epoch) {
      std::vector<Vec2> moved = net.graph().positions();
      for (std::size_t i = 0; i < moved.size(); i += 4) {
        moved[i].x = std::clamp(moved[i].x + rng.uniform(-12.0, 12.0),
                                net.deployment().field.lo().x,
                                net.deployment().field.hi().x);
        moved[i].y = std::clamp(moved[i].y + rng.uniform(-12.0, 12.0),
                                net.deployment().field.lo().y,
                                net.deployment().field.hi().y);
      }
      IncrementalStats stats;
      Network after = net.with_moves(moved, &stats);
      SafetyInfo from_scratch =
          compute_safety(after.graph(), after.interest_area());
      ASSERT_EQ(after.safety(), from_scratch)
          << "seed " << seed << " epoch " << epoch;
      net = std::move(after);
    }
  }
}

/// Motion that *fills* a hole must promote labels back to safe: deploy with
/// forbidden areas (big holes), then move every node toward the field
/// center. The updater must both promote and match the fresh fixpoint.
TEST(IncrementalMoves, FillingAHolePromotesLabels) {
  Network net = test::random_network(500, 97, DeployModel::kForbiddenAreas);
  net.force(Network::kNeedsSafety);
  ASSERT_GT(net.safety().unsafe_node_count(), 0u);

  Vec2 center = net.deployment().field.center();
  std::vector<Vec2> moved = net.graph().positions();
  for (Vec2& p : moved) p += (center - p) * 0.45;  // contract toward center

  IncrementalStats stats;
  Network after = net.with_moves(moved, &stats);
  SafetyInfo from_scratch =
      compute_safety(after.graph(), after.interest_area());
  EXPECT_EQ(after.safety(), from_scratch);
  EXPECT_GT(stats.promotions, 0u)
      << "contracting into the holes must re-raise labels";
}

/// No motion is a no-op: zero seeds, zero promotions/demotions, and the
/// labeling object is unchanged.
TEST(IncrementalMoves, NoMotionIsNoOp) {
  Network net = test::random_network(300, 41, DeployModel::kForbiddenAreas);
  net.force(Network::kNeedsSafety);
  IncrementalStats stats;
  Network same = net.with_moves(net.graph().positions(), &stats);
  EXPECT_EQ(stats.seeds, 0u);
  EXPECT_EQ(stats.flips, 0u);
  EXPECT_EQ(stats.promotions, 0u);
  EXPECT_EQ(same.safety(), net.safety());
}

/// Without a built labeling, with_moves leaves safety lazy (and the lazily
/// built labeling is the moved graph's own fixpoint).
TEST(IncrementalMoves, LazySafetyStaysLazyAndCorrect) {
  Network net = test::random_network(300, 53, DeployModel::kForbiddenAreas);
  ASSERT_FALSE(net.has_safety());
  Rng rng(7);
  std::vector<Vec2> moved = jitter_positions(
      net.graph().positions(), net.deployment().field, 15.0, rng);
  IncrementalStats stats;
  stats.seeds = 999;  // must be zeroed: nothing incremental happened
  Network after = net.with_moves(moved, &stats);
  EXPECT_FALSE(after.has_safety());
  EXPECT_EQ(stats.seeds, 0u);
  SafetyInfo from_scratch =
      compute_safety(after.graph(), after.interest_area());
  EXPECT_EQ(after.safety(), from_scratch);
}

/// The acceptance criterion: a staged-mobility run — waypoint re-pin epochs
/// *interleaved with failure waves* — where the incrementally maintained
/// labeling equals a from-scratch compute_safety at every stage, and the
/// diff/edge-delta plumbing stays consistent throughout the chain.
TEST(IncrementalMoves, StagedMobilityWithFailureWavesMatchesAtEveryEpoch) {
  for (std::uint64_t seed : test::property_seeds()) {
    Network net =
        test::random_network(450, seed, DeployModel::kForbiddenAreas);
    net.force(Network::kNeedsSafety);
    WaypointConfig wc;
    wc.field = net.deployment().field;
    wc.max_speed_mps = 3.0;
    WaypointModel model(net.deployment().positions, wc, Rng(seed ^ 0xabc));
    Rng rng(seed ^ 0xfa11);

    for (int epoch = 0; epoch < 4; ++epoch) {
      // Move epoch.
      model.advance(10.0);
      IncrementalStats move_stats;
      EdgeDiff diff;
      Network moved = net.with_moves(model.positions(), &move_stats, &diff);
      ASSERT_TRUE(moved.has_safety());
      SafetyInfo fresh_moved =
          compute_safety(moved.graph(), moved.interest_area());
      ASSERT_EQ(moved.safety(), fresh_moved)
          << "seed " << seed << " move epoch " << epoch;

      // Interleaved failure wave on the moved snapshot.
      std::vector<NodeId> casualties;
      for (NodeId u = static_cast<NodeId>(epoch * 13 + 5);
           u < moved.graph().size() && casualties.size() < 12; u += 29) {
        if (moved.graph().alive(u)) casualties.push_back(u);
      }
      Network degraded = moved.with_failures(casualties);
      SafetyInfo fresh_degraded =
          compute_safety(degraded.graph(), degraded.interest_area());
      ASSERT_EQ(degraded.safety(), fresh_degraded)
          << "seed " << seed << " failure epoch " << epoch;
      for (NodeId u : casualties) {
        ASSERT_FALSE(degraded.graph().alive(u));
      }
      net = std::move(degraded);
    }
  }
}

/// Promotions and demotions are both counted, and the counters line up
/// with the observable label delta.
TEST(IncrementalMoves, StatsCountLabelChanges) {
  Network net = test::random_network(400, 19, DeployModel::kForbiddenAreas);
  net.force(Network::kNeedsSafety);
  Rng rng(0x57a75);
  std::vector<Vec2> moved = jitter_positions(
      net.graph().positions(), net.deployment().field, 35.0, rng);
  SafetyInfo before_info = net.safety();
  IncrementalStats stats;
  Network after = net.with_moves(moved, &stats);

  // Every status that differs between the old and new fixpoint was either
  // promoted or demoted at least once (a pair can also be raised and then
  // re-demoted, so the counters bound the delta from above).
  std::size_t went_safe = 0, went_unsafe = 0;
  for (NodeId u = 0; u < after.graph().size(); ++u) {
    if (!after.graph().alive(u)) continue;
    for (ZoneType t : kAllZoneTypes) {
      bool was = before_info.is_safe(u, t);
      bool is = after.safety().is_safe(u, t);
      if (!was && is) ++went_safe;
      if (was && !is) ++went_unsafe;
    }
  }
  EXPECT_LE(went_safe, stats.promotions);
  EXPECT_LE(went_unsafe, stats.flips);
  EXPECT_GT(stats.seeds, 0u);
}

}  // namespace
}  // namespace spr
