#include "shard/tiling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "deploy/rng.h"

namespace spr {
namespace {

TEST(Tiling, TileRectsPartitionTheField) {
  const Rect field = Rect::from_bounds({10.0, -5.0}, {210.0, 95.0});
  const Tiling tiling(field, 3, 4, 25.0);
  ASSERT_EQ(tiling.tile_count(), 12);
  double area = 0.0;
  for (int t = 0; t < tiling.tile_count(); ++t) {
    const Rect r = tiling.tile_rect(t);
    area += r.width() * r.height();
    EXPECT_GE(r.lo().x, field.lo().x);
    EXPECT_GE(r.lo().y, field.lo().y);
    EXPECT_LE(r.hi().x, field.hi().x);
    EXPECT_LE(r.hi().y, field.hi().y);
  }
  EXPECT_NEAR(area, field.width() * field.height(), 1e-6);
  // The last row/column absorbs the remainder exactly.
  EXPECT_DOUBLE_EQ(tiling.tile_rect(11).hi().x, field.hi().x);
  EXPECT_DOUBLE_EQ(tiling.tile_rect(11).hi().y, field.hi().y);
}

TEST(Tiling, OwnerTileContainsThePoint) {
  const Rect field = Rect::from_bounds({0.0, 0.0}, {200.0, 200.0});
  const Tiling tiling(field, 4, 4, 20.0);
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const Vec2 p{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)};
    const int owner = tiling.owner_tile(p);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, tiling.tile_count());
    EXPECT_LE(tiling.tile_rect(owner).distance_to(p), 1e-12)
        << "(" << p.x << ", " << p.y << ")";
  }
  // Points outside the field snap to the nearest border tile.
  EXPECT_EQ(tiling.owner_tile({-5.0, -5.0}), 0);
  EXPECT_EQ(tiling.owner_tile({205.0, 205.0}), tiling.tile_count() - 1);
}

TEST(Tiling, TilesContainingMatchesBruteForce) {
  const Rect field = Rect::from_bounds({0.0, 0.0}, {180.0, 120.0});
  for (const double halo : {0.0, 15.0, 40.0}) {
    const Tiling tiling(field, 2, 3, halo);
    Rng rng(23);
    std::vector<int> got;
    for (int i = 0; i < 400; ++i) {
      const Vec2 p{rng.uniform(-10.0, 190.0), rng.uniform(-10.0, 130.0)};
      got.clear();
      tiling.tiles_containing(p, got);
      std::vector<int> expected;
      for (int t = 0; t < tiling.tile_count(); ++t) {
        if (tiling.tile_rect(t).distance_to(p) <= halo) expected.push_back(t);
      }
      ASSERT_EQ(got, expected) << "halo " << halo << " point (" << p.x << ", "
                               << p.y << ")";
      EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    }
  }
}

TEST(Tiling, InFieldPointsAlwaysHaveTheirOwnerInContaining) {
  const Tiling tiling(Rect::from_bounds({0.0, 0.0}, {100.0, 100.0}), 2, 2,
                      10.0);
  Rng rng(5);
  std::vector<int> touching;
  for (int i = 0; i < 300; ++i) {
    const Vec2 p{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
    touching.clear();
    tiling.tiles_containing(p, touching);
    EXPECT_TRUE(std::find(touching.begin(), touching.end(),
                          tiling.owner_tile(p)) != touching.end());
  }
}

TEST(Tiling, SingleTileOwnsEverything) {
  const Tiling tiling(Rect::from_bounds({0.0, 0.0}, {50.0, 50.0}), 1, 1, 30.0);
  EXPECT_EQ(tiling.tile_count(), 1);
  std::vector<int> touching;
  tiling.tiles_containing({25.0, 25.0}, touching);
  EXPECT_EQ(touching, std::vector<int>{0});
  EXPECT_EQ(tiling.owner_tile({-100.0, 400.0}), 0);
}

}  // namespace
}  // namespace spr
