#pragma once

/// \file test_helpers.h
/// Shared fixtures: hand-crafted topologies with known safety structure and
/// seeded random networks for property sweeps.

#include <utility>
#include <vector>

#include "core/network.h"
#include "deploy/deployment.h"
#include "geometry/vec2.h"
#include "graph/unit_disk.h"

namespace spr::test {

/// Unit-disk graph from explicit positions (default range 20, field sized to
/// fit with margin).
UnitDiskGraph make_graph(std::vector<Vec2> positions, double range = 20.0);

/// A dense perturbed-grid deployment: hole-free, every interior node safe.
Deployment dense_grid_deployment(int node_count = 400, std::uint64_t seed = 7);

/// A grid deployment with a rectangular void punched in the middle —
/// guaranteed hole with a clean boundary. `void_rect` in field coordinates.
Deployment grid_with_void(int per_side, double spacing, Rect void_rect);

/// Full paper-style random network (IA or FA).
Network random_network(int node_count, std::uint64_t seed,
                       DeployModel model = DeployModel::kIdeal);

/// Seeds used by property sweeps (kept small enough for test runtime).
std::vector<std::uint64_t> property_seeds();

}  // namespace spr::test
