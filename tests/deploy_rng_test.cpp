#include "deploy/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace spr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(99);
  auto first = a.next_u64();
  a.next_u64();
  a.reseed(99);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.uniform(-5.0, 3.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformMeanReasonable) {
  Rng rng(21);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowZeroAndOne) {
  Rng rng(14);
  EXPECT_EQ(rng.next_below(0), 0u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(15);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    int v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // 2,3,4,5 all hit
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(16);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIndependentStreams) {
  Rng base(55);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.next_u64() == f2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkDeterministic) {
  Rng a(55), b(55);
  Rng fa = a.fork(9), fb = b.fork(9);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

}  // namespace
}  // namespace spr
