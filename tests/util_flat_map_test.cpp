#include "util/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "deploy/rng.h"
#include "util/check.h"

namespace spr {
namespace {

TEST(FlatMap64, EmptyMapFindsNothing) {
  FlatMap64<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(0), nullptr);
  EXPECT_EQ(map.find(123456789ull), nullptr);
}

TEST(FlatMap64, InsertThenFind) {
  FlatMap64<int> map;
  map.find_or_insert(7, 70) = 71;
  map.find_or_insert(9, 90);
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), 71);
  ASSERT_NE(map.find(9), nullptr);
  EXPECT_EQ(*map.find(9), 90);
  EXPECT_EQ(map.find(8), nullptr);
}

TEST(FlatMap64, FindOrInsertIsIdempotentOnExistingKey) {
  FlatMap64<int> map;
  map.find_or_insert(42, 1);
  int& second = map.find_or_insert(42, 999);  // fallback must not apply
  EXPECT_EQ(second, 1);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap64, KeyZeroIsARealKey) {
  FlatMap64<int> map;
  map.find_or_insert(0, 5);
  ASSERT_NE(map.find(0), nullptr);
  EXPECT_EQ(*map.find(0), 5);
}

TEST(FlatMap64, SentinelKeyIsRejectedUnderDcheck) {
  if (!kDchecksEnabled) {
    GTEST_SKIP() << "SPR_DCHECK compiled out in this configuration";
  }
  ScopedCheckHandler guard(&throwing_check_handler);
  FlatMap64<int> map;
  EXPECT_THROW(map.find_or_insert(FlatMap64<int>::kEmptyKey, 1), CheckError);
}

TEST(FlatMap64, CollidingKeysProbeToDistinctSlots) {
  // Sequential keys Fibonacci-mix far apart, so manufacture collisions the
  // honest way: enough keys that probe chains must form (load near 3/4).
  FlatMap64<std::uint64_t> map;
  constexpr std::uint64_t kCount = 3000;
  for (std::uint64_t k = 0; k < kCount; ++k) {
    map.find_or_insert(k * 0x10001ull, k);
  }
  EXPECT_EQ(map.size(), kCount);
  for (std::uint64_t k = 0; k < kCount; ++k) {
    auto* v = map.find(k * 0x10001ull);
    ASSERT_NE(v, nullptr) << "key " << k;
    EXPECT_EQ(*v, k);
  }
  EXPECT_EQ(map.find(0x10001ull * kCount), nullptr);
}

TEST(FlatMap64, GrowthPreservesEveryEntry) {
  FlatMap64<std::uint64_t> map;
  std::map<std::uint64_t, std::uint64_t> reference;
  Rng rng(2026);
  for (int i = 0; i < 20000; ++i) {
    const auto key = static_cast<std::uint64_t>(
        rng.uniform_int(0, 1 << 30));
    const auto value = static_cast<std::uint64_t>(i);
    map.find_or_insert(key, value);
    reference.emplace(key, value);  // first value wins, same as the map
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [key, value] : reference) {
    auto* got = map.find(key);
    ASSERT_NE(got, nullptr) << "key " << key;
    EXPECT_EQ(*got, value);
  }
}

TEST(FlatMap64, ReserveAvoidsRehashInvalidation) {
  // The find_or_insert reference contract: valid until the *next*
  // insertion. With reserve() large enough, no growth happens mid-fill,
  // so pointers taken after the last insert stay comparable.
  FlatMap64<int> map(1000);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    map.find_or_insert(k, static_cast<int>(k));
  }
  int* before = map.find(500);
  // Lookups never rehash.
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(map.find(k), nullptr);
  }
  EXPECT_EQ(map.find(500), before);
}

TEST(FlatMap64, ClearKeepsCapacityAndDropsEntries) {
  FlatMap64<int> map;
  for (std::uint64_t k = 0; k < 100; ++k) map.find_or_insert(k, 1);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(5), nullptr);
  // Reusable after clear, including previously present keys.
  map.find_or_insert(5, 50);
  ASSERT_NE(map.find(5), nullptr);
  EXPECT_EQ(*map.find(5), 50);
}

TEST(FlatMap64, DeterminismContractSameInsertsSameLookups) {
  // The map exposes no iteration, so the only observable behavior is
  // lookup results — identical across two maps filled in different
  // orders. This is the determinism contract flat_map.h documents.
  FlatMap64<std::uint64_t> forward;
  FlatMap64<std::uint64_t> backward;
  constexpr std::uint64_t kCount = 5000;
  for (std::uint64_t k = 0; k < kCount; ++k) {
    forward.find_or_insert(k * 7919, k);
  }
  for (std::uint64_t k = kCount; k-- > 0;) {
    backward.find_or_insert(k * 7919, k);
  }
  EXPECT_EQ(forward.size(), backward.size());
  for (std::uint64_t k = 0; k < kCount; ++k) {
    auto* a = forward.find(k * 7919);
    auto* b = backward.find(k * 7919);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(*a, *b);
  }
}

TEST(FlatMap64, LinkKeyAndTickKeyShapes) {
  // The two production key families: directed-link keys (from * n + to)
  // and double-bit tick timestamps.
  FlatMap64<float> map;
  constexpr std::uint64_t n = 100000;
  map.find_or_insert(3 * n + 4, 0.25f);
  map.find_or_insert(4 * n + 3, 0.75f);  // reverse link is a distinct key
  EXPECT_NE(map.find(3 * n + 4), nullptr);
  EXPECT_NE(map.find(4 * n + 3), nullptr);
  EXPECT_NE(*map.find(3 * n + 4), *map.find(4 * n + 3));

  const double tick = 1.5;
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(tick));
  __builtin_memcpy(&bits, &tick, sizeof(bits));
  map.find_or_insert(bits, 9.0f);
  ASSERT_NE(map.find(bits), nullptr);
  EXPECT_EQ(*map.find(bits), 9.0f);
}

}  // namespace
}  // namespace spr
