#include "deploy/interest_area.h"

#include <gtest/gtest.h>

#include "geometry/hull.h"
#include "test_helpers.h"

namespace spr {
namespace {

TEST(InterestArea, HullCornersAreEdgeNodes) {
  auto g = test::make_graph({{0.0, 0.0}, {100.0, 0.0}, {100.0, 100.0},
                             {0.0, 100.0}, {50.0, 50.0}}, 20.0);
  InterestArea area(g, 5.0);
  EXPECT_TRUE(area.is_edge_node(0));
  EXPECT_TRUE(area.is_edge_node(1));
  EXPECT_TRUE(area.is_edge_node(2));
  EXPECT_TRUE(area.is_edge_node(3));
  EXPECT_FALSE(area.is_edge_node(4));
}

TEST(InterestArea, BandWidensEdgeSet) {
  Deployment d = test::dense_grid_deployment(400);
  UnitDiskGraph g(d.positions, d.radio_range, d.field);
  InterestArea narrow(g, 1.0);
  InterestArea wide(g, 30.0);
  EXPECT_LT(narrow.edge_count(), wide.edge_count());
  // Widening the band can only shrink the interior.
  EXPECT_GT(narrow.interior_nodes().size(), wide.interior_nodes().size());
}

TEST(InterestArea, InteriorAndEdgePartition) {
  Network net = test::random_network(400, 21);
  const auto& area = net.interest_area();
  const auto& g = net.graph();
  std::size_t interior = area.interior_nodes().size();
  EXPECT_EQ(interior + area.edge_count(), g.size());
  for (NodeId u : area.interior_nodes()) EXPECT_FALSE(area.is_edge_node(u));
}

TEST(InterestArea, InteriorNodesAwayFromHull) {
  Network net = test::random_network(400, 22);
  const auto& area = net.interest_area();
  const auto& g = net.graph();
  for (NodeId u : area.interior_nodes()) {
    EXPECT_GT(distance_to_hull_boundary(area.hull(), g.position(u)),
              g.range());
  }
}

TEST(InterestArea, HullIsConvexAndCoversNodes) {
  Network net = test::random_network(300, 23);
  Polygon hull(net.interest_area().hull());
  for (Vec2 p : net.graph().positions()) {
    EXPECT_TRUE(hull.contains(p));
  }
}

TEST(InterestArea, DegenerateTinyNetworks) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}}, 20.0);
  InterestArea area(g, 5.0);
  // Both nodes are on the (degenerate) hull: everything is edge.
  EXPECT_EQ(area.edge_count(), 2u);
  EXPECT_TRUE(area.interior_nodes().empty());
}

}  // namespace
}  // namespace spr
