#include "graph/spatial_grid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "deploy/deployment.h"
#include "graph/unit_disk.h"

namespace spr {
namespace {

std::vector<NodeId> sorted(std::vector<NodeId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

Deployment random_deployment(int nodes, std::uint64_t seed, DeployModel model) {
  DeploymentConfig config;
  config.node_count = nodes;
  config.model = model;
  Rng rng(seed);
  return deploy(config, rng);
}

TEST(SpatialGrid, QueryRadiusMatchesBruteForce) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (DeployModel model :
         {DeployModel::kIdeal, DeployModel::kForbiddenAreas}) {
      Deployment d = random_deployment(300, seed, model);
      SpatialGrid grid(d.positions, d.field, d.radio_range);
      Rng rng(seed ^ 0xabc);
      for (double radius : {5.0, d.radio_range, 55.0}) {
        for (int trial = 0; trial < 20; ++trial) {
          NodeId center_id =
              static_cast<NodeId>(rng.next_below(d.positions.size()));
          Vec2 center = d.positions[center_id];
          std::vector<NodeId> fast;
          grid.query_radius(center, radius, center_id, fast);
          std::vector<NodeId> brute;
          for (NodeId v = 0; v < d.positions.size(); ++v) {
            if (v == center_id) continue;
            if (distance(d.positions[v], center) <= radius) brute.push_back(v);
          }
          EXPECT_EQ(sorted(fast), sorted(brute))
              << "seed " << seed << " radius " << radius;
        }
      }
    }
  }
}

TEST(SpatialGrid, QueryRadiusKeepsEverythingWithInvalidExclude) {
  Deployment d = random_deployment(200, 5, DeployModel::kIdeal);
  SpatialGrid grid(d.positions, d.field, d.radio_range);
  Vec2 center = d.positions[0];
  std::vector<NodeId> with_self;
  grid.query_radius(center, 10.0, kInvalidNode, with_self);
  EXPECT_TRUE(std::find(with_self.begin(), with_self.end(), NodeId{0}) !=
              with_self.end());
}

TEST(SpatialGrid, QueryRectMatchesBruteForce) {
  for (std::uint64_t seed : {7ull, 8ull}) {
    Deployment d = random_deployment(300, seed, DeployModel::kForbiddenAreas);
    SpatialGrid grid(d.positions, d.field, d.radio_range);
    Rng rng(seed ^ 0x5a);
    for (int trial = 0; trial < 25; ++trial) {
      Vec2 a{d.field.lo().x + rng.next_double() * d.field.width(),
             d.field.lo().y + rng.next_double() * d.field.height()};
      Vec2 b{d.field.lo().x + rng.next_double() * d.field.width(),
             d.field.lo().y + rng.next_double() * d.field.height()};
      Rect query = Rect::from_bounds({std::min(a.x, b.x), std::min(a.y, b.y)},
                                     {std::max(a.x, b.x), std::max(a.y, b.y)});
      std::vector<NodeId> fast;
      grid.query_rect(query, fast);
      std::vector<NodeId> brute;
      for (NodeId v = 0; v < d.positions.size(); ++v) {
        if (query.contains(d.positions[v])) brute.push_back(v);
      }
      EXPECT_EQ(sorted(fast), sorted(brute)) << "seed " << seed;
    }
  }
}

TEST(SpatialGrid, OwnsItsPointCopy) {
  std::vector<Vec2> points = {{1.0, 1.0}, {5.0, 5.0}};
  Rect bounds = Rect::from_bounds({0.0, 0.0}, {10.0, 10.0});
  SpatialGrid grid(points, bounds, 5.0);
  points.clear();  // the grid must not dangle
  std::vector<NodeId> out;
  grid.query_radius({1.0, 1.0}, 1.0, kInvalidNode, out);
  EXPECT_EQ(out, std::vector<NodeId>{0});
  EXPECT_EQ(grid.point_count(), 2u);
}

TEST(UnitDiskGraph, WithFailuresSharesGrid) {
  Deployment d = random_deployment(250, 11, DeployModel::kIdeal);
  UnitDiskGraph g(d.positions, d.radio_range, d.field);
  UnitDiskGraph degraded = g.with_failures({3, 4, 5});
  EXPECT_EQ(&g.grid(), &degraded.grid());
  // And the chain keeps sharing.
  UnitDiskGraph twice = degraded.with_failures({9});
  EXPECT_EQ(&g.grid(), &twice.grid());
}

TEST(UnitDiskGraph, WithFailuresMatchesFreshBuild) {
  Deployment d = random_deployment(250, 12, DeployModel::kForbiddenAreas);
  UnitDiskGraph g(d.positions, d.radio_range, d.field);
  std::vector<NodeId> failed = {1, 17, 42, 99, 200};
  UnitDiskGraph reused = g.with_failures(failed);

  std::vector<bool> alive(d.positions.size(), true);
  for (NodeId u : failed) alive[u] = false;
  UnitDiskGraph fresh(d.positions, d.radio_range, d.field, alive);

  ASSERT_EQ(reused.size(), fresh.size());
  EXPECT_EQ(reused.edge_count(), fresh.edge_count());
  for (NodeId u = 0; u < reused.size(); ++u) {
    EXPECT_EQ(reused.alive(u), fresh.alive(u));
    auto a = reused.neighbors(u);
    auto b = fresh.neighbors(u);
    ASSERT_EQ(a.size(), b.size()) << "node " << u;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "node " << u;
  }
}

}  // namespace
}  // namespace spr
