#include "routing/slgf2.h"

#include <gtest/gtest.h>

#include "routing/slgf.h"
#include "safety/regions.h"
#include "test_helpers.h"

namespace spr {
namespace {

TEST(Slgf2, DeliversOnDenseGrid) {
  Deployment dep = test::dense_grid_deployment(400, 4);
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  InterestArea area(g, g.range());
  SafetyInfo info = compute_safety(g, area);
  Slgf2Router router(g, info);
  const auto& interior = area.interior_nodes();
  ASSERT_GE(interior.size(), 2u);
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    NodeId s = interior[rng.next_below(interior.size())];
    NodeId d = interior[rng.next_below(interior.size())];
    PathResult r = router.route(s, d);
    EXPECT_TRUE(r.delivered());
    // No unsafe areas exist, so no perimeter phase is ever needed. (A few
    // backup hops are legitimate: the bounded request zone can be too thin
    // to hold any neighbor when u and d are nearly axis-aligned.)
    EXPECT_EQ(r.perimeter_hops(), 0u);
    EXPECT_LE(r.backup_hops(), r.hops() / 2 + 2);
  }
}

TEST(Slgf2, PathIsValidWalk) {
  Network net = test::random_network(450, 53, DeployModel::kForbiddenAreas);
  auto router = net.make_router(Scheme::kSlgf2);
  const auto& g = net.graph();
  Rng rng(10);
  for (int trial = 0; trial < 30; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    PathResult r = router->route(s, d);
    EXPECT_EQ(r.path.front(), s);
    for (std::size_t i = 1; i < r.path.size(); ++i) {
      EXPECT_TRUE(g.are_neighbors(r.path[i - 1], r.path[i]));
    }
    if (r.delivered()) {
      EXPECT_EQ(r.path.back(), d);
    }
    EXPECT_EQ(r.hop_phases.size(), r.path.size() - 1);
  }
}

TEST(Slgf2, BackupPhaseUsesPartiallySafeNodes) {
  // Every backup hop must land on a node that is safe in some type
  // (Algorithm 3 step 4: exists S_i(v) > 0).
  Network net = test::random_network(500, 59, DeployModel::kForbiddenAreas);
  auto router = net.make_router(Scheme::kSlgf2);
  const auto& info = net.safety();
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    PathResult r = router->route(s, d);
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
      if (r.hop_phases[i] == HopPhase::kBackup) {
        EXPECT_TRUE(info.tuple(r.path[i + 1]).any_safe())
            << "backup hop onto all-unsafe node " << r.path[i + 1];
      }
    }
  }
}

TEST(Slgf2, DeliveryAtLeastAsHighAsSlgf) {
  int slgf2_delivered = 0, slgf_delivered = 0;
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(550, seed, DeployModel::kForbiddenAreas);
    auto slgf2 = net.make_router(Scheme::kSlgf2);
    auto slgf = net.make_router(Scheme::kSlgf);
    Rng rng(seed ^ 0x2222);
    for (int trial = 0; trial < 8; ++trial) {
      auto [s, d] = net.random_connected_interior_pair(rng);
      if (slgf2->route(s, d).delivered()) ++slgf2_delivered;
      if (slgf->route(s, d).delivered()) ++slgf_delivered;
    }
  }
  EXPECT_GE(slgf2_delivered + 3, slgf_delivered);
}

TEST(Slgf2, NoWorseHopsThanLgfOnAverage) {
  // Paper headline: SLGF2 shortens paths. Check the paired per-pair sums.
  double slgf2_hops = 0.0, lgf_hops = 0.0;
  int both = 0;
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(600, seed, DeployModel::kForbiddenAreas);
    auto slgf2 = net.make_router(Scheme::kSlgf2);
    auto lgf = net.make_router(Scheme::kLgf);
    Rng rng(seed ^ 0x3333);
    for (int trial = 0; trial < 16; ++trial) {
      auto [s, d] = net.random_connected_interior_pair(rng);
      auto r2 = slgf2->route(s, d);
      auto rl = lgf->route(s, d);
      if (r2.delivered() && rl.delivered()) {
        slgf2_hops += static_cast<double>(r2.hops());
        lgf_hops += static_cast<double>(rl.hops());
        ++both;
      }
    }
  }
  ASSERT_GT(both, 0);
  // Paired over both-delivered pairs, which biases toward easy pairs (LGF
  // fails exactly the hard ones); a modest slack absorbs that survivorship
  // skew. The full-size benches show SLGF2 clearly ahead.
  EXPECT_LE(slgf2_hops, lgf_hops * 1.15)
      << "SLGF2 avg " << slgf2_hops / both << " vs LGF " << lgf_hops / both;
}

TEST(Slgf2, AblationTogglesCompile) {
  Network net = test::random_network(400, 61, DeployModel::kForbiddenAreas);
  for (bool either_hand : {false, true}) {
    for (bool backup : {false, true}) {
      for (bool limit : {false, true}) {
        Slgf2Options opts;
        opts.use_either_hand = either_hand;
        opts.use_backup_paths = backup;
        opts.limit_perimeter = limit;
        auto router = net.make_router(Scheme::kSlgf2, opts);
        Rng rng(12);
        auto [s, d] = net.random_connected_interior_pair(rng);
        PathResult r = router->route(s, d);
        EXPECT_GE(r.path.size(), 1u);
      }
    }
  }
}

TEST(Slgf2, WithoutBackupBehavesLikeSlgfOnSafePaths) {
  // With backup disabled and no unsafe areas (dense grid), the ablated
  // SLGF2 and SLGF produce identical paths.
  Deployment dep = test::dense_grid_deployment(400, 6);
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  InterestArea area(g, g.range());
  SafetyInfo info = compute_safety(g, area);
  Slgf2Options opts;
  opts.use_backup_paths = false;
  Slgf2Router ablated(g, info, opts);
  SlgfRouter slgf(g, info);
  const auto& interior = area.interior_nodes();
  Rng rng(13);
  for (int trial = 0; trial < 15; ++trial) {
    NodeId s = interior[rng.next_below(interior.size())];
    NodeId d = interior[rng.next_below(interior.size())];
    PathResult a = ablated.route(s, d);
    PathResult b = slgf.route(s, d);
    ASSERT_TRUE(a.delivered());
    ASSERT_TRUE(b.delivered());
    EXPECT_EQ(a.path, b.path);
  }
}

TEST(Slgf2, HandStaysCommittedDuringBackupRun) {
  // Over many runs, consecutive backup hops never flip between hands in a
  // way that revisits: the walk must be simple in backup/perimeter phases.
  Network net = test::random_network(500, 67, DeployModel::kForbiddenAreas);
  auto router = net.make_router(Scheme::kSlgf2);
  Rng rng(14);
  for (int trial = 0; trial < 30; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    PathResult r = router->route(s, d);
    std::vector<bool> seen(net.graph().size(), false);
    seen[r.path[0]] = true;
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
      NodeId next = r.path[i + 1];
      if ((r.hop_phases[i] == HopPhase::kBackup ||
           r.hop_phases[i] == HopPhase::kPerimeter) &&
          next != r.path.back()) {
        EXPECT_FALSE(seen[next]) << "detour revisited " << next;
      }
      seen[next] = true;
    }
  }
}

}  // namespace
}  // namespace spr
