#include <gtest/gtest.h>

#include <vector>

#include "core/network.h"
#include "safety/incremental.h"
#include "safety/labeling.h"
#include "test_helpers.h"

namespace spr {
namespace {

/// Draws `count` distinct alive nodes (excluding `keep`), deterministic.
std::vector<NodeId> draw_casualties(const UnitDiskGraph& g, Rng& rng,
                                    std::size_t count,
                                    const std::vector<NodeId>& keep) {
  std::vector<NodeId> candidates;
  for (NodeId u = 0; u < g.size(); ++u) {
    if (!g.alive(u)) continue;
    bool kept = false;
    for (NodeId k : keep) kept |= (k == u);
    if (!kept) candidates.push_back(u);
  }
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < count && !candidates.empty(); ++i) {
    std::size_t pick = rng.next_below(candidates.size());
    out.push_back(candidates[pick]);
    candidates[pick] = candidates.back();
    candidates.pop_back();
  }
  return out;
}

/// N successive failure waves applied wave-by-wave through
/// Network::with_failures must equal one compute_safety from scratch on
/// the final degraded graph — statuses AND anchors (SafetyInfo equality
/// covers both) — at *every* intermediate stage, not just the last.
TEST(StagedFailures, WaveByWaveEqualsFromScratchAtEveryStage) {
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(500, seed, DeployModel::kForbiddenAreas);
    net.force(Network::kNeedsSafety);  // the fixpoint the waves continue
    Rng rng(seed ^ 0xfa11);
    const int waves = 4;
    for (int w = 0; w < waves; ++w) {
      std::vector<NodeId> casualties = draw_casualties(net.graph(), rng, 18, {});
      IncrementalStats stats;
      Network degraded = net.with_failures(casualties, &stats);
      ASSERT_TRUE(degraded.has_safety());  // derived, not rebuilt lazily
      if (!casualties.empty()) {
        EXPECT_GT(stats.seeds, 0u) << "wave " << w << " seeded nothing";
      }
      SafetyInfo from_scratch =
          compute_safety(degraded.graph(), degraded.interest_area());
      EXPECT_EQ(degraded.safety(), from_scratch)
          << "wave " << w << " of seed " << seed
          << ": incremental fixpoint diverged from compute_safety";
      net = std::move(degraded);
    }
  }
}

/// The chain of waves also equals a single batched failure of the union.
TEST(StagedFailures, ChainEqualsOneShotUnion) {
  Network net = test::random_network(500, 21, DeployModel::kForbiddenAreas);
  net.force(Network::kNeedsSafety);
  Rng rng(77);
  std::vector<NodeId> all;
  Network staged = test::random_network(500, 21, DeployModel::kForbiddenAreas);
  staged.force(Network::kNeedsSafety);
  for (int w = 0; w < 3; ++w) {
    std::vector<NodeId> casualties =
        draw_casualties(staged.graph(), rng, 25, {});
    all.insert(all.end(), casualties.begin(), casualties.end());
    staged = staged.with_failures(casualties);
  }
  Network one_shot = net.with_failures(all);
  EXPECT_EQ(staged.safety(), one_shot.safety());
  EXPECT_EQ(staged.graph().edge_count(), one_shot.graph().edge_count());
}

/// Without a built labeling, with_failures leaves safety lazy (and the
/// lazily built labeling is the degraded graph's own fixpoint).
TEST(StagedFailures, LazySafetyStaysLazyAndCorrect) {
  Network net = test::random_network(450, 33, DeployModel::kForbiddenAreas);
  ASSERT_FALSE(net.has_safety());
  Rng rng(5);
  std::vector<NodeId> casualties = draw_casualties(net.graph(), rng, 30, {});
  IncrementalStats stats;
  stats.seeds = 999;  // must be zeroed: nothing incremental happened
  Network degraded = net.with_failures(casualties, &stats);
  EXPECT_FALSE(degraded.has_safety());
  EXPECT_EQ(stats.seeds, 0u);
  SafetyInfo from_scratch =
      compute_safety(degraded.graph(), degraded.interest_area());
  EXPECT_EQ(degraded.safety(), from_scratch);
}

/// Dead inputs are tolerated: re-killing dead nodes and out-of-range ids
/// neither crashes nor changes the fixpoint.
TEST(StagedFailures, RepeatedAndInvalidCasualtiesAreHarmless) {
  Network net = test::random_network(450, 41, DeployModel::kForbiddenAreas);
  net.force(Network::kNeedsSafety);
  Rng rng(6);
  std::vector<NodeId> casualties = draw_casualties(net.graph(), rng, 20, {});
  Network degraded = net.with_failures(casualties);
  // Re-kill the same set, plus nonsense ids.
  std::vector<NodeId> again = casualties;
  again.push_back(static_cast<NodeId>(net.graph().size() + 7));
  Network twice = degraded.with_failures(again);
  SafetyInfo from_scratch =
      compute_safety(twice.graph(), twice.interest_area());
  EXPECT_EQ(twice.safety(), from_scratch);
  EXPECT_EQ(twice.safety(), degraded.safety());
}

}  // namespace
}  // namespace spr
