/// \file graph_oracle_test.cpp
/// The batched oracle machinery: ShortestPathTree against brute-force
/// single-pair searches, OracleBatch's per-source sharing, and the search
/// counters the sweep cells are asserted with.

#include "graph/graph_algos.h"

#include <gtest/gtest.h>

#include <limits>
#include <utility>
#include <vector>

#include "deploy/rng.h"
#include "test_helpers.h"

namespace spr {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Heap-free O(n^2) Dijkstra distances — an implementation independent of
/// the tree under test.
std::vector<double> brute_force_distances(const UnitDiskGraph& g,
                                          NodeId source) {
  std::vector<double> dist(g.size(), kInf);
  std::vector<bool> done(g.size(), false);
  dist[source] = 0.0;
  for (std::size_t round = 0; round < g.size(); ++round) {
    NodeId u = kInvalidNode;
    for (NodeId v = 0; v < g.size(); ++v) {
      if (!done[v] && dist[v] < kInf &&
          (u == kInvalidNode || dist[v] < dist[u])) {
        u = v;
      }
    }
    if (u == kInvalidNode) break;
    done[u] = true;
    for (NodeId v : g.neighbors(u)) {
      double nd = dist[u] + distance(g.position(u), g.position(v));
      if (nd < dist[v]) dist[v] = nd;
    }
  }
  return dist;
}

/// A path must walk existing edges from s to d and report its own length.
void expect_valid_path(const UnitDiskGraph& g, const ShortestPath& sp,
                       NodeId s, NodeId d) {
  ASSERT_FALSE(sp.path.empty());
  EXPECT_EQ(sp.path.front(), s);
  EXPECT_EQ(sp.path.back(), d);
  double length = 0.0;
  for (std::size_t i = 1; i < sp.path.size(); ++i) {
    EXPECT_TRUE(g.are_neighbors(sp.path[i - 1], sp.path[i]));
    length += distance(g.position(sp.path[i - 1]), g.position(sp.path[i]));
  }
  EXPECT_DOUBLE_EQ(sp.length, length);
}

UnitDiskGraph holey_graph(std::uint64_t seed) {
  Deployment d = test::dense_grid_deployment(200, seed);
  return UnitDiskGraph(d.positions, d.radio_range, d.field);
}

TEST(ShortestPathTree, BfsMatchesBruteForceHops) {
  for (std::uint64_t seed : test::property_seeds()) {
    UnitDiskGraph g = holey_graph(seed);
    NodeId source = static_cast<NodeId>(seed % g.size());
    ShortestPathTree tree(g, source, ShortestPathTree::Metric::kHops);
    auto hops = bfs_hops(g, source);  // independent implementation
    for (NodeId t = 0; t < g.size(); ++t) {
      ShortestPath sp = tree.extract(t);
      if (hops[t] == std::numeric_limits<std::size_t>::max()) {
        EXPECT_TRUE(sp.path.empty());
        EXPECT_FALSE(tree.reached(t));
        continue;
      }
      EXPECT_EQ(sp.hops(), hops[t]) << "target " << t;
      expect_valid_path(g, sp, source, t);
    }
  }
}

TEST(ShortestPathTree, DijkstraMatchesBruteForceDistances) {
  for (std::uint64_t seed : test::property_seeds()) {
    UnitDiskGraph g = holey_graph(seed);
    NodeId source = static_cast<NodeId>((seed * 7) % g.size());
    ShortestPathTree tree(g, source, ShortestPathTree::Metric::kLength);
    auto dist = brute_force_distances(g, source);
    for (NodeId t = 0; t < g.size(); ++t) {
      ShortestPath sp = tree.extract(t);
      if (dist[t] == kInf) {
        EXPECT_TRUE(sp.path.empty());
        continue;
      }
      EXPECT_NEAR(sp.length, dist[t], 1e-9) << "target " << t;
      expect_valid_path(g, sp, source, t);
    }
  }
}

TEST(ShortestPathTree, ExtractIdenticalToPerPairWrappers) {
  UnitDiskGraph g = holey_graph(3);
  NodeId source = 5;
  ShortestPathTree hop_tree(g, source, ShortestPathTree::Metric::kHops);
  ShortestPathTree len_tree(g, source, ShortestPathTree::Metric::kLength);
  for (NodeId t = 0; t < g.size(); ++t) {
    ShortestPath hop = hop_tree.extract(t);
    ShortestPath len = len_tree.extract(t);
    ShortestPath hop_pp = bfs_path(g, source, t);
    ShortestPath len_pp = dijkstra_path(g, source, t);
    EXPECT_EQ(hop.path, hop_pp.path);
    EXPECT_EQ(hop.length, hop_pp.length);  // bitwise: same summation order
    EXPECT_EQ(len.path, len_pp.path);
    EXPECT_EQ(len.length, len_pp.length);
  }
}

TEST(OracleBatch, EquivalentToPerPairSearches) {
  UnitDiskGraph g = holey_graph(11);
  Rng rng(99);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 40; ++i) {
    NodeId s = static_cast<NodeId>(rng.next_below(g.size()));
    NodeId d = static_cast<NodeId>(rng.next_below(g.size()));
    pairs.emplace_back(s, d);
  }
  // Force shared sources, a repeated pair, and a self-pair.
  pairs.emplace_back(pairs[0].first, pairs[1].second);
  pairs.push_back(pairs[2]);
  pairs.emplace_back(pairs[3].first, pairs[3].first);

  OracleBatch batch(g, pairs);
  ASSERT_EQ(batch.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ShortestPath hop = bfs_path(g, pairs[i].first, pairs[i].second);
    ShortestPath len = dijkstra_path(g, pairs[i].first, pairs[i].second);
    EXPECT_EQ(batch.hop_optimal(i).path, hop.path) << "pair " << i;
    EXPECT_EQ(batch.hop_optimal(i).length, hop.length) << "pair " << i;
    EXPECT_EQ(batch.length_optimal(i).path, len.path) << "pair " << i;
    EXPECT_EQ(batch.length_optimal(i).length, len.length) << "pair " << i;
  }
}

TEST(OracleBatch, OneSearchPairPerDistinctSource) {
  UnitDiskGraph g = holey_graph(13);
  std::vector<std::pair<NodeId, NodeId>> pairs = {
      {0, 10}, {0, 20}, {0, 30}, {1, 10}, {2, 10}, {1, 40}};
  reset_oracle_search_counts();
  OracleBatch batch(g, pairs);
  EXPECT_EQ(batch.distinct_sources(), 3u);
  auto counts = oracle_search_counts();
  EXPECT_EQ(counts.bfs_trees, 3u);
  EXPECT_EQ(counts.dijkstra_trees, 3u);
}

TEST(OracleBatch, InvalidPairsYieldEmptyOptima) {
  UnitDiskGraph g = holey_graph(23);
  std::vector<std::pair<NodeId, NodeId>> pairs = {
      {kInvalidNode, 0}, {0, kInvalidNode}, {0, 5}};
  OracleBatch batch(g, pairs);
  EXPECT_TRUE(batch.hop_optimal(0).path.empty());
  EXPECT_TRUE(batch.length_optimal(0).path.empty());
  EXPECT_TRUE(batch.hop_optimal(1).path.empty());
  EXPECT_FALSE(batch.hop_optimal(2).path.empty());
  // The per-pair wrappers degrade the same way.
  EXPECT_TRUE(bfs_path(g, kInvalidNode, 0).path.empty());
  EXPECT_TRUE(dijkstra_path(g, 0, kInvalidNode).path.empty());
}

TEST(OracleBatch, EmptySpan) {
  UnitDiskGraph g = holey_graph(17);
  OracleBatch batch(g, {});
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_EQ(batch.distinct_sources(), 0u);
}

TEST(OracleSearchCounts, WrappersCountOneTreeEach) {
  UnitDiskGraph g = holey_graph(19);
  reset_oracle_search_counts();
  bfs_path(g, 0, 1);
  bfs_path(g, 0, 2);
  dijkstra_path(g, 0, 1);
  auto counts = oracle_search_counts();
  EXPECT_EQ(counts.bfs_trees, 2u);
  EXPECT_EQ(counts.dijkstra_trees, 1u);
  // bfs_hops and connectivity checks are not tree searches.
  bfs_hops(g, 0);
  connected(g, 0, 1);
  counts = oracle_search_counts();
  EXPECT_EQ(counts.bfs_trees, 2u);
}

}  // namespace
}  // namespace spr
