#include "geometry/quadrant.h"

#include <gtest/gtest.h>

namespace spr {
namespace {

TEST(Quadrant, ZoneTypeOfQuadrants) {
  Vec2 u{10.0, 10.0};
  EXPECT_EQ(zone_type(u, {15.0, 15.0}), ZoneType::k1);  // NE
  EXPECT_EQ(zone_type(u, {5.0, 15.0}), ZoneType::k2);   // NW
  EXPECT_EQ(zone_type(u, {5.0, 5.0}), ZoneType::k3);    // SW
  EXPECT_EQ(zone_type(u, {15.0, 5.0}), ZoneType::k4);   // SE
}

TEST(Quadrant, BoundaryConvention) {
  Vec2 u{0.0, 0.0};
  EXPECT_EQ(zone_type(u, {1.0, 0.0}), ZoneType::k1);   // +x axis -> type 1
  EXPECT_EQ(zone_type(u, {0.0, 1.0}), ZoneType::k1);   // +y axis -> type 1
  EXPECT_EQ(zone_type(u, {-1.0, 0.0}), ZoneType::k2);  // -x axis -> type 2
  EXPECT_EQ(zone_type(u, {0.0, -1.0}), ZoneType::k4);  // -y axis -> type 4
}

TEST(Quadrant, OppositeZone) {
  EXPECT_EQ(opposite_zone(ZoneType::k1), ZoneType::k3);
  EXPECT_EQ(opposite_zone(ZoneType::k2), ZoneType::k4);
  EXPECT_EQ(opposite_zone(ZoneType::k3), ZoneType::k1);
  EXPECT_EQ(opposite_zone(ZoneType::k4), ZoneType::k2);
}

TEST(Quadrant, ZoneIndexRoundTrip) {
  for (ZoneType t : kAllZoneTypes) {
    EXPECT_EQ(zone_from_index(zone_index(t)), t);
  }
  EXPECT_EQ(zone_index(ZoneType::k1), 0);
  EXPECT_EQ(zone_index(ZoneType::k4), 3);
}

TEST(Quadrant, InQuadrantConsistentWithZoneType) {
  Vec2 u{3.0, -2.0};
  std::vector<Vec2> probes = {
      {4.0, 0.0}, {2.0, 0.0}, {2.0, -3.0}, {4.0, -3.0},
      {3.0, 5.0}, {3.0, -5.0}, {9.0, -2.0}, {-9.0, -2.0}};
  for (Vec2 p : probes) {
    ZoneType t = zone_type(u, p);
    EXPECT_TRUE(in_quadrant(u, p, t));
    for (ZoneType other : kAllZoneTypes) {
      if (other != t) {
        EXPECT_FALSE(in_quadrant(u, p, other));
      }
    }
  }
}

TEST(Quadrant, RequestZoneIsCornerRect) {
  Rect z = request_zone({2.0, 8.0}, {6.0, 3.0});
  EXPECT_EQ(z.lo(), Vec2(2.0, 3.0));
  EXPECT_EQ(z.hi(), Vec2(6.0, 8.0));
  EXPECT_TRUE(in_request_zone({2.0, 8.0}, {6.0, 3.0}, {4.0, 5.0}));
  EXPECT_FALSE(in_request_zone({2.0, 8.0}, {6.0, 3.0}, {1.0, 5.0}));
}

TEST(Quadrant, RequestZoneContainsEndpoints) {
  Vec2 u{1.0, 1.0}, d{5.0, 9.0};
  EXPECT_TRUE(in_request_zone(u, d, u));
  EXPECT_TRUE(in_request_zone(u, d, d));
}

TEST(Quadrant, StartBearings) {
  EXPECT_NEAR(quadrant_start_bearing(ZoneType::k1), 0.0, 1e-12);
  EXPECT_NEAR(quadrant_start_bearing(ZoneType::k2), kPi / 2, 1e-12);
  EXPECT_NEAR(quadrant_start_bearing(ZoneType::k3), kPi, 1e-12);
  EXPECT_NEAR(quadrant_start_bearing(ZoneType::k4), 3 * kPi / 2, 1e-12);
}

TEST(Quadrant, DiagonalPointsIntoQuadrant) {
  Vec2 u{0.0, 0.0};
  for (ZoneType t : kAllZoneTypes) {
    Vec2 diag = quadrant_diagonal(t);
    EXPECT_NEAR(diag.norm(), 1.0, 1e-12);
    EXPECT_TRUE(in_quadrant(u, diag, t)) << "type " << static_cast<int>(t);
  }
}

TEST(Quadrant, SignsMatchDiagonal) {
  for (ZoneType t : kAllZoneTypes) {
    Vec2 s = quadrant_signs(t);
    Vec2 d = quadrant_diagonal(t);
    EXPECT_GT(s.x * d.x, 0.0);
    EXPECT_GT(s.y * d.y, 0.0);
  }
}

/// Type-k' relation used by the paper: if d is in Z_k(u,d) seen from u, then
/// u is in Z_{k'}(d,u) seen from d with k' = (k+2) mod 4 — strictly interior
/// placements only (axis-boundary cases differ by the half-open convention).
TEST(Quadrant, OppositePerspective) {
  Vec2 u{0.0, 0.0};
  std::vector<Vec2> ds = {{3.0, 4.0}, {-3.0, 4.0}, {-3.0, -4.0}, {3.0, -4.0}};
  for (Vec2 d : ds) {
    ZoneType k = zone_type(u, d);
    ZoneType back = zone_type(d, u);
    EXPECT_EQ(back, opposite_zone(k));
  }
}

}  // namespace
}  // namespace spr
