/// \file safety_flat_kernel_test.cpp
/// The flat SoA labeling kernel against its scalar oracle: the default
/// `compute_safety`, both incremental updaters and the anchor pass must be
/// bit-identical — statuses AND anchors — to `compute_safety_scalar` across
/// property seeds, deployment models, thread counts and staged
/// failure+move chains. Also pins the quadrant CSR itself: bucket contents
/// against a brute-force `zone_type` filter, and the patched epoch-to-epoch
/// view against a fresh build.

#include "safety/flat_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/network.h"
#include "graph/quadrant_csr.h"
#include "safety/incremental.h"
#include "safety/labeling.h"
#include "test_helpers.h"
#include "util/task_pool.h"

namespace spr {
namespace {

std::vector<Vec2> jitter_positions(const std::vector<Vec2>& positions,
                                   const Rect& field, double magnitude,
                                   Rng& rng) {
  std::vector<Vec2> moved = positions;
  for (Vec2& p : moved) {
    p.x = std::clamp(p.x + rng.uniform(-magnitude, magnitude), field.lo().x,
                     field.hi().x);
    p.y = std::clamp(p.y + rng.uniform(-magnitude, magnitude), field.lo().y,
                     field.hi().y);
  }
  return moved;
}

std::vector<NodeId> draw_casualties(const UnitDiskGraph& g, Rng& rng,
                                    std::size_t count) {
  std::vector<NodeId> candidates;
  for (NodeId u = 0; u < g.size(); ++u) {
    if (g.alive(u)) candidates.push_back(u);
  }
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < count && !candidates.empty(); ++i) {
    std::size_t pick = rng.next_below(candidates.size());
    out.push_back(candidates[pick]);
    candidates[pick] = candidates.back();
    candidates.pop_back();
  }
  return out;
}

/// The default (flat) compute_safety must equal the scalar oracle bit for
/// bit on both deployment models. The fixpoint is unique, so the flip
/// totals must agree too, even though the evaluation orders differ.
TEST(FlatKernel, MatchesScalarOracleAcrossSeedsAndModels) {
  for (std::uint64_t seed : test::property_seeds()) {
    for (DeployModel model :
         {DeployModel::kIdeal, DeployModel::kForbiddenAreas}) {
      Network net = test::random_network(500, seed, model);
      LabelingStats flat_stats, scalar_stats;
      SafetyInfo flat = compute_safety(net.graph(), net.interest_area(),
                                       nullptr, &flat_stats);
      SafetyInfo scalar = compute_safety_scalar(
          net.graph(), net.interest_area(), &scalar_stats);
      EXPECT_EQ(flat, scalar) << "seed " << seed;
      EXPECT_EQ(flat_stats.init_flips, scalar_stats.init_flips);
      EXPECT_EQ(flat_stats.flips, scalar_stats.flips);
      EXPECT_GE(flat_stats.reevaluations, flat_stats.flips);
    }
  }
}

/// Serial kernel vs pool-backed kernel, several worker counts. 1200 nodes
/// keeps the parallel-round and per-cluster anchor fan-outs reachable.
TEST(FlatKernel, ComputeSafetyIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(1200, seed, DeployModel::kForbiddenAreas);
    SafetyInfo serial = compute_safety(net.graph(), net.interest_area());
    for (int threads : {1, 2, 4}) {
      TaskPool pool(threads);
      SafetyInfo parallel =
          compute_safety(net.graph(), net.interest_area(), &pool);
      EXPECT_EQ(serial, parallel) << "seed " << seed << " threads " << threads;
    }
  }
}

/// A heavy failure wave (frontier past the parallel-round threshold) must
/// produce the same continuation serially and on pools of any size, and
/// both must equal the from-scratch scalar oracle.
TEST(FlatKernel, FailureUpdaterIdenticalAcrossThreadCounts) {
  Network net = test::random_network(1500, 23, DeployModel::kForbiddenAreas);
  net.force(Network::kNeedsSafety);
  Rng rng(0x5eed);
  std::vector<NodeId> casualties = draw_casualties(net.graph(), rng, 400);

  Network degraded = net.with_failures(casualties);
  ASSERT_TRUE(degraded.has_safety());
  SafetyInfo oracle =
      compute_safety_scalar(degraded.graph(), degraded.interest_area());
  EXPECT_EQ(degraded.safety(), oracle);

  for (int threads : {2, 4}) {
    TaskPool pool(threads);
    SafetyInfo continued = net.safety();
    update_safety_after_failures(degraded.graph(), degraded.interest_area(),
                                 casualties, continued, &pool);
    EXPECT_EQ(continued, oracle) << "threads " << threads;
  }
}

/// Whole-field motion (many promotion sources, added and removed edges)
/// through the moves updater: serial == pooled == scalar oracle.
TEST(FlatKernel, MovesUpdaterIdenticalAcrossThreadCounts) {
  Network net = test::random_network(900, 31, DeployModel::kForbiddenAreas);
  net.force(Network::kNeedsSafety);
  Rng rng(0x303e5);
  std::vector<Vec2> moved_positions = jitter_positions(
      net.graph().positions(), net.deployment().field, 14.0, rng);

  Network moved = net.with_moves(moved_positions);
  ASSERT_TRUE(moved.has_safety());
  SafetyInfo oracle =
      compute_safety_scalar(moved.graph(), moved.interest_area());
  EXPECT_EQ(moved.safety(), oracle);

  for (int threads : {2, 3}) {
    TaskPool pool(threads);
    SafetyInfo continued = net.safety();
    update_safety_after_moves(net.graph(), net.interest_area(), moved.graph(),
                              moved.interest_area(), continued, &pool);
    EXPECT_EQ(continued, oracle) << "threads " << threads;
  }
}

/// Staged chains interleaving failure waves and motion epochs: the
/// kernel-continued labeling must equal the scalar oracle at *every*
/// epoch, serially and through a pool-backed Network.
TEST(FlatKernel, StagedFailureAndMoveChainMatchesScalarEveryEpoch) {
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(420, seed, DeployModel::kForbiddenAreas);
    net.force(Network::kNeedsSafety);
    TaskPool pool(3);
    Network pooled(net.deployment(), net.edge_band(), &pool);
    pooled.force(Network::kNeedsSafety);
    ASSERT_EQ(net.safety(), pooled.safety()) << "seed " << seed;

    Rng rng(seed ^ 0xc4a1);
    for (int epoch = 0; epoch < 4; ++epoch) {
      if (epoch % 2 == 0) {
        std::vector<NodeId> casualties = draw_casualties(net.graph(), rng, 15);
        net = net.with_failures(casualties);
        pooled = pooled.with_failures(casualties);
      } else {
        const double magnitude = epoch == 1 ? 3.0 : 25.0;
        std::vector<Vec2> moved_positions = jitter_positions(
            net.graph().positions(), net.deployment().field, magnitude, rng);
        net = net.with_moves(moved_positions);
        pooled = pooled.with_moves(moved_positions);
      }
      ASSERT_TRUE(net.has_safety());
      SafetyInfo oracle =
          compute_safety_scalar(net.graph(), net.interest_area());
      EXPECT_EQ(net.safety(), oracle)
          << "seed " << seed << " epoch " << epoch << " (serial chain)";
      EXPECT_EQ(pooled.safety(), oracle)
          << "seed " << seed << " epoch " << epoch << " (pooled chain)";
    }
  }
}

/// The quadrant buckets must be exactly the brute-force zone_type filter of
/// each sorted neighbor list, in both directions.
TEST(QuadrantZones, MatchesBruteForceFilter) {
  Network net = test::random_network(300, 5, DeployModel::kForbiddenAreas);
  const UnitDiskGraph& g = net.graph();
  const QuadrantZones& zones = g.zones();
  ASSERT_EQ(zones.size(), g.size());
  for (NodeId u = 0; u < g.size(); ++u) {
    const Vec2 pu = g.position(u);
    for (ZoneType t : kAllZoneTypes) {
      std::vector<NodeId> members, observers;
      for (NodeId v : g.neighbors(u)) {
        if (zone_type(pu, g.position(v)) == t) members.push_back(v);
        if (zone_type(g.position(v), pu) == t) observers.push_back(v);
      }
      auto ms = zones.members(u, t);
      auto os = zones.observers(u, t);
      ASSERT_EQ(std::vector<NodeId>(ms.begin(), ms.end()), members)
          << "node " << u;
      ASSERT_EQ(std::vector<NodeId>(os.begin(), os.end()), observers)
          << "node " << u;
    }
  }
}

/// Patched zones across failure and move epochs (including chains, both
/// the patch branch and the rebuild cutover) must equal a fresh build of
/// the sibling graph.
TEST(QuadrantZones, PatchedEqualsFreshAcrossFailureAndMoveChains) {
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(350, seed, DeployModel::kForbiddenAreas);
    net.force(Network::kNeedsSafety);  // builds the base epoch's zones
    ASSERT_TRUE(net.graph().has_zones());
    Rng rng(seed ^ 0x20e5);
    for (int epoch = 0; epoch < 3; ++epoch) {
      if (epoch % 2 == 0) {
        net = net.with_failures(draw_casualties(net.graph(), rng, 12));
      } else {
        net = net.with_moves(jitter_positions(
            net.graph().positions(), net.deployment().field, 8.0, rng));
      }
      ASSERT_TRUE(net.graph().has_zones())
          << "epoch " << epoch << ": sibling did not inherit patched zones";
      EXPECT_EQ(net.graph().zones(), QuadrantZones::build(net.graph()))
          << "seed " << seed << " epoch " << epoch;
    }
  }
}

/// A combined wave — a failure batch AND a move batch applied in one epoch
/// before anything is checked — patches zones through both siblings and
/// continues the labeling through both updaters: patched zones must equal a
/// fresh build and the carried labeling must equal compute_safety.
TEST(QuadrantZones, CombinedFailureAndMoveWavePatchesEqualFresh) {
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(350, seed, DeployModel::kForbiddenAreas);
    net.force(Network::kNeedsSafety);
    Rng rng(seed ^ 0xc0b1);
    for (int epoch = 0; epoch < 2; ++epoch) {
      net = net.with_failures(draw_casualties(net.graph(), rng, 10));
      net = net.with_moves(jitter_positions(
          net.graph().positions(), net.deployment().field, 8.0, rng));
      ASSERT_TRUE(net.graph().has_zones())
          << "epoch " << epoch << ": combined wave dropped the patched zones";
      EXPECT_EQ(net.graph().zones(), QuadrantZones::build(net.graph()))
          << "seed " << seed << " epoch " << epoch;
      ASSERT_TRUE(net.has_safety());
      EXPECT_EQ(net.safety(),
                compute_safety(net.graph(), net.interest_area()))
          << "seed " << seed << " epoch " << epoch;
    }
  }
}

/// Parallel zones build is bit-identical to serial.
TEST(QuadrantZones, BuildIdenticalAcrossPoolSizes) {
  Deployment d = test::dense_grid_deployment(700, 9);
  UnitDiskGraph g(d.positions, d.radio_range, d.field);
  QuadrantZones serial = QuadrantZones::build(g);
  for (int threads : {2, 5}) {
    TaskPool pool(threads);
    EXPECT_EQ(serial, QuadrantZones::build(g, &pool));
  }
}

/// recompute_all_anchors through the kernel (serial and pooled) must leave
/// a fixpoint labeling unchanged: anchors are a pure function of statuses.
TEST(FlatKernel, RecomputeAllAnchorsIsIdempotent) {
  Network net = test::random_network(500, 13, DeployModel::kForbiddenAreas);
  SafetyInfo info = compute_safety(net.graph(), net.interest_area());
  SafetyInfo copy = info;
  recompute_all_anchors(net.graph(), copy);
  EXPECT_EQ(copy, info);
  TaskPool pool(3);
  recompute_all_anchors(net.graph(), copy, &pool);
  EXPECT_EQ(copy, info);
}

}  // namespace
}  // namespace spr
