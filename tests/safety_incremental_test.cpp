#include "safety/incremental.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace spr {
namespace {

std::vector<NodeId> random_failures(const Network& net, Rng& rng, int count) {
  std::vector<NodeId> failed;
  const auto& interior = net.interest_area().interior_nodes();
  while (static_cast<int>(failed.size()) < count && !interior.empty()) {
    NodeId u = interior[rng.next_below(interior.size())];
    if (std::find(failed.begin(), failed.end(), u) == failed.end()) {
      failed.push_back(u);
    }
  }
  return failed;
}

TEST(IncrementalSafety, MatchesFullRecomputeOnRandomFailures) {
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(350, seed, DeployModel::kForbiddenAreas);
    Rng rng(seed ^ 0x1111);
    auto failed = random_failures(net, rng, 12);
    UnitDiskGraph degraded = net.graph().with_failures(failed);
    InterestArea degraded_area(degraded, degraded.range());

    SafetyInfo incremental = net.safety();
    update_safety_after_failures(degraded, degraded_area, failed, incremental);
    SafetyInfo full = compute_safety(degraded, degraded_area);
    EXPECT_TRUE(incremental == full) << "seed " << seed;
  }
}

TEST(IncrementalSafety, MatchesFullRecomputeOnClusteredFailures) {
  // A disc of failures (the failure_dynamics scenario) — the hard case,
  // since it creates a brand-new hole.
  Network net = test::random_network(500, 77);
  Vec2 center{100.0, 100.0};
  std::vector<NodeId> failed;
  for (NodeId u = 0; u < net.graph().size(); ++u) {
    if (distance(net.graph().position(u), center) <= 30.0) failed.push_back(u);
  }
  ASSERT_GT(failed.size(), 5u);
  UnitDiskGraph degraded = net.graph().with_failures(failed);
  InterestArea degraded_area(degraded, degraded.range());

  SafetyInfo incremental = net.safety();
  auto stats = update_safety_after_failures(degraded, degraded_area, failed,
                                            incremental);
  SafetyInfo full = compute_safety(degraded, degraded_area);
  EXPECT_TRUE(incremental == full);
  EXPECT_GT(stats.flips, 0u) << "a new hole must create unsafe nodes";
}

TEST(IncrementalSafety, NoFailuresIsNoOp) {
  Network net = test::random_network(300, 31, DeployModel::kForbiddenAreas);
  SafetyInfo info = net.safety();
  InterestArea area(net.graph(), net.graph().range());
  auto stats = update_safety_after_failures(net.graph(), area, {}, info);
  EXPECT_TRUE(info == net.safety());
  EXPECT_EQ(stats.flips, 0u);
  EXPECT_EQ(stats.seeds, 0u);
}

TEST(IncrementalSafety, TouchesOnlyAffectedRegion) {
  // The worklist seeds are bounded by the failed nodes' neighborhoods, so
  // re-evaluations stay far below a full reconstruction's n*4 evaluations.
  Network net = test::random_network(600, 41);
  Rng rng(9);
  auto failed = random_failures(net, rng, 3);
  UnitDiskGraph degraded = net.graph().with_failures(failed);
  InterestArea degraded_area(degraded, degraded.range());
  SafetyInfo info = net.safety();
  auto stats = update_safety_after_failures(degraded, degraded_area, failed, info);
  EXPECT_LT(stats.seeds, 4 * degraded.size() / 4)
      << "seeding should be local to the failures";
}

TEST(IncrementalSafety, MonotoneOnlyUnsafeFlips) {
  Network net = test::random_network(400, 53, DeployModel::kForbiddenAreas);
  Rng rng(10);
  auto failed = random_failures(net, rng, 15);
  UnitDiskGraph degraded = net.graph().with_failures(failed);
  InterestArea degraded_area(degraded, degraded.range());
  SafetyInfo before = net.safety();
  SafetyInfo after = before;
  update_safety_after_failures(degraded, degraded_area, failed, after);
  for (NodeId u = 0; u < degraded.size(); ++u) {
    if (!degraded.alive(u)) continue;
    for (ZoneType t : kAllZoneTypes) {
      if (!before.is_safe(u, t)) {
        EXPECT_FALSE(after.is_safe(u, t))
            << "failure flipped node " << u << " back to safe";
      }
    }
  }
}

TEST(IncrementalSafety, RepeatedWavesOfFailures) {
  // Apply three failure waves incrementally; final state must equal the
  // one-shot recompute with all failures applied.
  Network net = test::random_network(450, 67, DeployModel::kForbiddenAreas);
  Rng rng(11);
  SafetyInfo rolling = net.safety();
  std::vector<NodeId> all_failed;
  UnitDiskGraph current = net.graph();
  for (int wave = 0; wave < 3; ++wave) {
    auto failed = random_failures(net, rng, 6);
    // Skip duplicates across waves.
    std::vector<NodeId> fresh;
    for (NodeId f : failed) {
      if (std::find(all_failed.begin(), all_failed.end(), f) == all_failed.end()) {
        fresh.push_back(f);
        all_failed.push_back(f);
      }
    }
    current = current.with_failures(fresh);
    InterestArea area(current, current.range());
    update_safety_after_failures(current, area, fresh, rolling);
  }
  InterestArea final_area(current, current.range());
  SafetyInfo oneshot = compute_safety(current, final_area);
  EXPECT_TRUE(rolling == oneshot);
}

}  // namespace
}  // namespace spr
