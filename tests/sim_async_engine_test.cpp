#include "sim/async_engine.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace spr {
namespace {

using IntEngine = AsyncEngine<int>;

TEST(AsyncEngine, InitialActivationForEveryAliveNode) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}}, 12.0);
  Rng rng(1);
  IntEngine engine(g, rng);
  int initial_calls = 0;
  auto stats = engine.run(
      [&](NodeId, double, std::optional<IntEngine::Incoming> msg)
          -> std::optional<int> {
        if (!msg) ++initial_calls;
        return std::nullopt;
      },
      1000);
  EXPECT_EQ(initial_calls, 3);
  EXPECT_EQ(stats.activations, 3u);
  EXPECT_EQ(stats.broadcasts, 0u);
}

TEST(AsyncEngine, BroadcastDeliveredWithDelay) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}}, 12.0);
  Rng rng(2);
  IntEngine engine(g, rng, 1.0, 2.0);
  std::vector<double> delivery_times;
  auto stats = engine.run(
      [&](NodeId self, double now, std::optional<IntEngine::Incoming> msg)
          -> std::optional<int> {
        if (!msg) return self == 0 ? std::optional<int>(7) : std::nullopt;
        delivery_times.push_back(now);
        EXPECT_EQ(msg->payload, 7);
        EXPECT_EQ(msg->sender, 0u);
        return std::nullopt;
      },
      1000);
  ASSERT_EQ(delivery_times.size(), 1u);
  EXPECT_GE(delivery_times[0], 1.0);
  EXPECT_LT(delivery_times[0], 2.0);
  EXPECT_EQ(stats.receptions, 1u);
  EXPECT_DOUBLE_EQ(stats.virtual_time, delivery_times[0]);
}

TEST(AsyncEngine, EventsDeliveredInTimeOrder) {
  // Node 0 floods; every reception is at a non-decreasing virtual time.
  Deployment dep = test::dense_grid_deployment(100, 5);
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  Rng rng(3);
  IntEngine engine(g, rng);
  double last_time = -1.0;
  std::vector<bool> forwarded(g.size(), false);
  bool monotone = true;
  engine.run(
      [&](NodeId self, double now, std::optional<IntEngine::Incoming> msg)
          -> std::optional<int> {
        if (!msg) {
          return self == 0 ? std::optional<int>(1) : std::nullopt;
        }
        if (now < last_time) monotone = false;
        last_time = now;
        if (!forwarded[self]) {
          forwarded[self] = true;
          return 1;
        }
        return std::nullopt;
      },
      100000);
  EXPECT_TRUE(monotone);
}

TEST(AsyncEngine, FloodReachesWholeComponent) {
  Deployment dep = test::dense_grid_deployment(144, 6);
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  Rng rng(4);
  IntEngine engine(g, rng);
  std::vector<bool> heard(g.size(), false);
  std::vector<bool> forwarded(g.size(), false);
  engine.run(
      [&](NodeId self, double, std::optional<IntEngine::Incoming> msg)
          -> std::optional<int> {
        if (!msg) return self == 0 ? std::optional<int>(1) : std::nullopt;
        heard[self] = true;
        if (!forwarded[self]) {
          forwarded[self] = true;
          return 1;
        }
        return std::nullopt;
      },
      1000000);
  for (NodeId u = 1; u < g.size(); ++u) {
    EXPECT_TRUE(heard[u]) << "node " << u << " never heard the flood";
  }
}

TEST(AsyncEngine, MaxEventsCapStopsRun) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}}, 12.0);
  Rng rng(5);
  IntEngine engine(g, rng);
  auto stats = engine.run(
      [&](NodeId, double, std::optional<IntEngine::Incoming>)
          -> std::optional<int> { return 1; },  // chatter forever
      50);
  EXPECT_EQ(stats.receptions, 50u);
}

TEST(AsyncEngine, DeterministicForSameSeed) {
  Deployment dep = test::dense_grid_deployment(400, 7);
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  auto run_once = [&](std::uint64_t seed) {
    Rng rng(seed);
    IntEngine engine(g, rng);
    std::vector<bool> forwarded(g.size(), false);
    return engine
        .run(
            [&](NodeId self, double, std::optional<IntEngine::Incoming> msg)
                -> std::optional<int> {
              if (!msg) return self == 0 ? std::optional<int>(1) : std::nullopt;
              if (!forwarded[self]) {
                forwarded[self] = true;
                return 1;
              }
              return std::nullopt;
            },
            100000)
        .virtual_time;
  };
  EXPECT_DOUBLE_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

TEST(AsyncEngine, DeadNodesSkipped) {
  std::vector<Vec2> pts = {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}};
  Rect bounds = Rect::from_bounds({-20.0, -20.0}, {40.0, 20.0});
  UnitDiskGraph g(pts, 12.0, bounds, {true, false, true});
  Rng rng(6);
  IntEngine engine(g, rng);
  int dead_activations = 0;
  engine.run(
      [&](NodeId self, double, std::optional<IntEngine::Incoming> msg)
          -> std::optional<int> {
        if (self == 1) ++dead_activations;
        if (!msg) return 1;
        return std::nullopt;
      },
      1000);
  EXPECT_EQ(dead_activations, 0);
}

}  // namespace
}  // namespace spr
