#include "routing/boundhole.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace spr {
namespace {

TEST(TentRule, IsolatedAndLeafNodesAreStuck) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}, {100.0, 100.0}}, 12.0);
  EXPECT_TRUE(tent_rule_stuck(g, 0));  // single neighbor
  EXPECT_TRUE(tent_rule_stuck(g, 1));
}

TEST(TentRule, WideGapIsStuck) {
  // Two neighbors 90 degrees apart leave a 270-degree gap: stuck.
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}}, 12.0);
  EXPECT_TRUE(tent_rule_stuck(g, 0));
}

TEST(TentRule, DenseGridInteriorNotStuck) {
  Deployment dep = test::dense_grid_deployment(400, 12);
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  InterestArea area(g, g.range());
  int stuck_interior = 0;
  for (NodeId u : area.interior_nodes()) {
    if (tent_rule_stuck(g, u)) ++stuck_interior;
  }
  // A dense perturbed grid has no stuck interior nodes (holes need voids).
  EXPECT_EQ(stuck_interior, 0);
}

TEST(TentRule, VoidEdgeNodesAreStuck) {
  Deployment dep = test::grid_with_void(
      20, 10.0, Rect::from_corners({60.0, 60.0}, {140.0, 140.0}));
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  // Node just west of the void looking east into it: (50,100).
  NodeId wall = kInvalidNode;
  for (NodeId u = 0; u < g.size(); ++u) {
    if (g.position(u) == Vec2(50.0, 100.0)) wall = u;
  }
  ASSERT_NE(wall, kInvalidNode);
  EXPECT_TRUE(tent_rule_stuck(g, wall));
}

TEST(BoundHole, FindsBoundaryAroundVoid) {
  Deployment dep = test::grid_with_void(
      20, 10.0, Rect::from_corners({60.0, 60.0}, {140.0, 140.0}));
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  BoundHoleInfo info(g);
  EXPECT_GT(info.stuck_count(), 0u);
  ASSERT_GT(info.boundaries().size(), 0u);
  // At least one boundary should ring the void: it must contain nodes on
  // at least three sides of the void rectangle.
  bool found_ring = false;
  for (const auto& b : info.boundaries()) {
    bool west = false, east = false, north = false, south = false;
    for (NodeId u : b.cycle) {
      Vec2 p = g.position(u);
      if (p.x <= 60.0 && p.y > 60.0 && p.y < 140.0) west = true;
      if (p.x >= 140.0 && p.y > 60.0 && p.y < 140.0) east = true;
      if (p.y >= 140.0 && p.x > 60.0 && p.x < 140.0) north = true;
      if (p.y <= 60.0 && p.x > 60.0 && p.x < 140.0) south = true;
    }
    if (static_cast<int>(west) + east + north + south >= 3) found_ring = true;
  }
  EXPECT_TRUE(found_ring);
}

TEST(BoundHole, CyclesAreClosedWalks) {
  Deployment dep = test::grid_with_void(
      20, 10.0, Rect::from_corners({60.0, 60.0}, {140.0, 140.0}));
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  BoundHoleInfo info(g);
  for (const auto& b : info.boundaries()) {
    ASSERT_GE(b.cycle.size(), 3u);
    for (std::size_t i = 0; i + 1 < b.cycle.size(); ++i) {
      EXPECT_TRUE(g.are_neighbors(b.cycle[i], b.cycle[i + 1]))
          << "cycle gap at " << i;
    }
    // Closing edge back to the start.
    EXPECT_TRUE(g.are_neighbors(b.cycle.back(), b.cycle.front()));
  }
}

TEST(BoundHole, MembershipIndexConsistent) {
  Network net = test::random_network(450, 61, DeployModel::kForbiddenAreas);
  const auto& info = net.boundhole();
  for (std::size_t b = 0; b < info.boundaries().size(); ++b) {
    for (NodeId u : info.boundaries()[b].cycle) {
      int owner = info.boundary_of(u);
      ASSERT_NE(owner, -1);
      // A node may appear on several walks; its recorded cycle position must
      // point back at itself within its owning boundary.
      int pos = info.cycle_position(u);
      ASSERT_GE(pos, 0);
      EXPECT_EQ(info.boundaries()[static_cast<size_t>(owner)]
                    .cycle[static_cast<size_t>(pos)],
                u);
    }
  }
}

TEST(BoundHole, RandomNetworksProduceStuckNodesUnderFa) {
  std::size_t total_stuck = 0;
  for (std::uint64_t seed : {11ull, 23ull}) {
    Network net = test::random_network(500, seed, DeployModel::kForbiddenAreas);
    total_stuck += net.boundhole().stuck_count();
  }
  EXPECT_GT(total_stuck, 0u);
}

}  // namespace
}  // namespace spr
