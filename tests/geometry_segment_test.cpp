#include "geometry/segment.h"

#include <gtest/gtest.h>

namespace spr {
namespace {

TEST(Segment, LengthAndDirection) {
  Segment s{{0.0, 0.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(s.length(), 5.0);
  EXPECT_NEAR(s.direction().x, 0.6, 1e-12);
  EXPECT_NEAR(s.direction().y, 0.8, 1e-12);
  EXPECT_EQ(s.at(0.5), Vec2(1.5, 2.0));
}

TEST(Segment, OnSegment) {
  Segment s{{0.0, 0.0}, {2.0, 2.0}};
  EXPECT_TRUE(on_segment(s, {1.0, 1.0}));
  EXPECT_TRUE(on_segment(s, {0.0, 0.0}));
  EXPECT_FALSE(on_segment(s, {3.0, 3.0}));  // beyond endpoint
  EXPECT_FALSE(on_segment(s, {1.0, 1.2}));
}

TEST(Segment, ProperCrossing) {
  Segment a{{0.0, 0.0}, {2.0, 2.0}};
  Segment b{{0.0, 2.0}, {2.0, 0.0}};
  EXPECT_TRUE(segments_intersect(a, b));
  EXPECT_TRUE(segments_cross_properly(a, b));
}

TEST(Segment, SharedEndpointIsNotProperCrossing) {
  Segment a{{0.0, 0.0}, {2.0, 2.0}};
  Segment b{{2.0, 2.0}, {3.0, 0.0}};
  EXPECT_TRUE(segments_intersect(a, b));
  EXPECT_FALSE(segments_cross_properly(a, b));
}

TEST(Segment, TTouchIsNotProper) {
  // b's endpoint lies in a's interior: improper.
  Segment a{{0.0, 0.0}, {4.0, 0.0}};
  Segment b{{2.0, 0.0}, {2.0, 3.0}};
  EXPECT_TRUE(segments_intersect(a, b));
  EXPECT_FALSE(segments_cross_properly(a, b));
}

TEST(Segment, DisjointSegments) {
  Segment a{{0.0, 0.0}, {1.0, 0.0}};
  Segment b{{2.0, 1.0}, {3.0, 1.0}};
  EXPECT_FALSE(segments_intersect(a, b));
  EXPECT_FALSE(segments_cross_properly(a, b));
}

TEST(Segment, CollinearOverlap) {
  Segment a{{0.0, 0.0}, {2.0, 0.0}};
  Segment b{{1.0, 0.0}, {3.0, 0.0}};
  EXPECT_TRUE(segments_intersect(a, b));
  EXPECT_FALSE(segments_cross_properly(a, b));
}

TEST(Segment, CollinearDisjoint) {
  Segment a{{0.0, 0.0}, {1.0, 0.0}};
  Segment b{{2.0, 0.0}, {3.0, 0.0}};
  EXPECT_FALSE(segments_intersect(a, b));
}

TEST(Segment, LineIntersectionPoint) {
  auto p = line_intersection({{0.0, 0.0}, {2.0, 2.0}}, {{0.0, 2.0}, {2.0, 0.0}});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-12);
  EXPECT_NEAR(p->y, 1.0, 1e-12);
}

TEST(Segment, ParallelLinesNoIntersection) {
  EXPECT_FALSE(line_intersection({{0.0, 0.0}, {1.0, 0.0}},
                                 {{0.0, 1.0}, {1.0, 1.0}})
                   .has_value());
}

TEST(Segment, SegmentIntersectionPoint) {
  auto p = segment_intersection({{0.0, 0.0}, {2.0, 0.0}}, {{1.0, -1.0}, {1.0, 1.0}});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-12);
  EXPECT_NEAR(p->y, 0.0, 1e-12);
}

TEST(Segment, SegmentIntersectionMissing) {
  EXPECT_FALSE(segment_intersection({{0.0, 0.0}, {1.0, 0.0}},
                                    {{0.0, 1.0}, {1.0, 1.0}})
                   .has_value());
}

TEST(Segment, PointSegmentDistance) {
  Segment s{{0.0, 0.0}, {2.0, 0.0}};
  EXPECT_DOUBLE_EQ(point_segment_distance({1.0, 1.0}, s), 1.0);   // above middle
  EXPECT_DOUBLE_EQ(point_segment_distance({-3.0, 4.0}, s), 5.0);  // off the end
  EXPECT_DOUBLE_EQ(point_segment_distance({1.0, 0.0}, s), 0.0);   // on it
}

TEST(Segment, DegenerateSegmentDistance) {
  Segment s{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(point_segment_distance({4.0, 5.0}, s), 5.0);
}

TEST(Segment, CircumcenterEquidistant) {
  Vec2 u{0.0, 0.0}, v1{2.0, 0.0}, v2{0.0, 2.0};
  auto c = circumcenter(u, v1, v2);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(distance(*c, u), distance(*c, v1), 1e-9);
  EXPECT_NEAR(distance(*c, u), distance(*c, v2), 1e-9);
  EXPECT_NEAR(c->x, 1.0, 1e-9);
  EXPECT_NEAR(c->y, 1.0, 1e-9);
}

TEST(Segment, CircumcenterCollinearEmpty) {
  EXPECT_FALSE(circumcenter({0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}).has_value());
}

}  // namespace
}  // namespace spr
