/// \file integration_test.cpp
/// End-to-end checks: a miniature version of the paper's evaluation must
/// reproduce the qualitative *shape* of Figs. 5-7 (SLGF2 <= SLGF and both
/// clearly better than LGF; every scheme delivers), and the distributed
/// pipeline must compose with routing.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "safety/distributed.h"
#include "test_helpers.h"

namespace spr {
namespace {

SweepConfig mini_config(DeployModel model) {
  SweepConfig config;
  config.model = model;
  config.node_counts = {500, 700};
  config.networks_per_point = 6;
  config.pairs_per_network = 8;
  config.schemes = SweepConfig::paper_schemes();
  config.base_seed = 4242;
  return config;
}

TEST(Integration, PaperShapeUnderIa) {
  auto points = run_sweep(mini_config(DeployModel::kIdeal));
  for (const auto& point : points) {
    const auto& lgf = point.by_scheme.at("LGF");
    const auto& slgf = point.by_scheme.at("SLGF");
    const auto& slgf2 = point.by_scheme.at("SLGF2");
    const auto& gf = point.by_scheme.at("GF");
    // Everyone delivers most packets on IA networks.
    EXPECT_GE(gf.delivery_ratio(), 0.8) << "n=" << point.node_count;
    EXPECT_GE(lgf.delivery_ratio(), 0.8);
    EXPECT_GE(slgf.delivery_ratio(), 0.9);
    EXPECT_GE(slgf2.delivery_ratio(), 0.9);
    // Information-based routings do not lose to LGF on average hops.
    EXPECT_LE(slgf2.hops.mean(), lgf.hops.mean() * 1.10)
        << "n=" << point.node_count;
    EXPECT_LE(slgf.hops.mean(), lgf.hops.mean() * 1.10);
  }
}

TEST(Integration, PaperShapeUnderFa) {
  auto points = run_sweep(mini_config(DeployModel::kForbiddenAreas));
  for (const auto& point : points) {
    const auto& slgf2 = point.by_scheme.at("SLGF2");
    EXPECT_GE(slgf2.delivery_ratio(), 0.85) << "n=" << point.node_count;
  }
  // Fig. 5's headline, evaluated *paired* to avoid survivorship bias (a
  // scheme that fails the hard pairs would otherwise report a small max):
  // over pairs that both schemes deliver, SLGF2's worst detour does not
  // exceed LGF's by more than a hop.
  std::size_t lgf_max = 0, slgf2_max = 0;
  for (std::uint64_t seed : {90001ull, 90002ull, 90003ull, 90004ull}) {
    Network net = test::random_network(600, seed, DeployModel::kForbiddenAreas);
    auto lgf = net.make_router(Scheme::kLgf);
    auto slgf2 = net.make_router(Scheme::kSlgf2);
    Rng rng(seed);
    for (int trial = 0; trial < 12; ++trial) {
      auto [s, d] = net.random_connected_interior_pair(rng);
      auto rl = lgf->route(s, d);
      auto r2 = slgf2->route(s, d);
      if (!rl.delivered() || !r2.delivered()) continue;
      lgf_max = std::max(lgf_max, rl.hops());
      slgf2_max = std::max(slgf2_max, r2.hops());
    }
  }
  ASSERT_GT(lgf_max, 0u);
  EXPECT_LE(slgf2_max, lgf_max + 1);
}

TEST(Integration, DistributedInfoDrivesRoutingIdentically) {
  // Routing with distributed-constructed safety info must match routing
  // with the centralized reference exactly.
  Network net = test::random_network(400, 4242, DeployModel::kForbiddenAreas);
  auto distributed =
      compute_safety_distributed(net.graph(), net.interest_area());
  Slgf2Router central_router(net.graph(), net.safety());
  Slgf2Router dist_router(net.graph(), distributed.info);
  Rng rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    PathResult a = central_router.route(s, d);
    PathResult b = dist_router.route(s, d);
    EXPECT_EQ(a.path, b.path) << "trial " << trial;
    EXPECT_EQ(a.status, b.status);
  }
}

TEST(Integration, StretchIsBoundedOnDelivered) {
  // Sanity bound: SLGF2's delivered paths stay within a loose constant
  // factor of optimal on these mini sweeps.
  auto points = run_sweep(mini_config(DeployModel::kIdeal));
  for (const auto& point : points) {
    const auto& agg = point.by_scheme.at("SLGF2");
    if (agg.stretch_hops.empty()) continue;
    EXPECT_LT(agg.stretch_hops.mean(), 3.0);
    EXPECT_GE(agg.stretch_hops.min(), 1.0 - 1e-9);
  }
}

TEST(Integration, PhaseMixReflectsDesign) {
  // SLGF2 should resolve most blocking with greedy/backup rather than
  // perimeter hops; LGF has no backup phase at all.
  auto points = run_sweep(mini_config(DeployModel::kForbiddenAreas));
  for (const auto& point : points) {
    const auto& lgf = point.by_scheme.at("LGF");
    const auto& slgf2 = point.by_scheme.at("SLGF2");
    EXPECT_DOUBLE_EQ(lgf.backup_hops.sum(), 0.0);
    EXPECT_LE(slgf2.perimeter_hops.mean(), lgf.perimeter_hops.mean() + 1e-9)
        << "n=" << point.node_count;
  }
}

}  // namespace
}  // namespace spr
