#include "routing/baselines.h"

#include <gtest/gtest.h>

#include "graph/graph_algos.h"
#include "test_helpers.h"

namespace spr {
namespace {

TEST(Mfr, DeliversOnLine) {
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {30.0, 0.0}}, 12.0);
  MfrRouter router(g);
  PathResult r = router.route(0, 3);
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.hops(), 3u);
}

TEST(Mfr, PicksMostForwardNotClosest) {
  // Candidate 1 is closest to d; candidate 2 projects farther forward.
  auto g = test::make_graph(
      {{0.0, 0.0}, {12.0, 6.0}, {18.0, 9.0}, {100.0, 50.0}}, 21.0);
  MfrRouter router(g);
  PathResult r = router.route(0, 3);
  ASSERT_GE(r.path.size(), 2u);
  EXPECT_EQ(r.path[1], 2u);  // the farther projection wins
}

TEST(Mfr, FailsAtLocalMinimumWithoutRecovery) {
  // Wall: the only neighbors are backwards.
  auto g = test::make_graph(
      {{0.0, 0.0}, {-10.0, 0.0}, {100.0, 0.0}}, 15.0);
  MfrRouter router(g);
  PathResult r = router.route(0, 2);
  EXPECT_FALSE(r.delivered());
  EXPECT_EQ(r.status, RouteStatus::kDeadEnd);
  EXPECT_EQ(r.local_minima, 1u);
}

TEST(Compass, DeliversOnLine) {
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {30.0, 0.0}}, 12.0);
  CompassRouter router(g);
  PathResult r = router.route(0, 3);
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.hops(), 3u);
}

TEST(Compass, PicksSmallestAngularDeviation) {
  // Node 1 deviates ~27 deg, node 2 only ~9 deg though it advances less.
  auto g = test::make_graph(
      {{0.0, 0.0}, {16.0, 8.0}, {10.0, 1.6}, {100.0, 0.0}}, 20.0);
  CompassRouter router(g);
  PathResult r = router.route(0, 3);
  ASSERT_GE(r.path.size(), 2u);
  EXPECT_EQ(r.path[1], 2u);
}

TEST(Compass, StopsInsteadOfCycling) {
  Network net = test::random_network(400, 61, DeployModel::kForbiddenAreas);
  CompassRouter router(net.graph());
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    PathResult r = router.route(s, d);
    // Whatever happens, the walk is simple (visited-set) and terminates.
    std::vector<bool> seen(net.graph().size(), false);
    for (NodeId u : r.path) {
      EXPECT_FALSE(seen[u]) << "compass revisited " << u;
      seen[u] = true;
    }
  }
}

TEST(Flooding, AlwaysDeliversOnConnectedPairs) {
  Network net = test::random_network(400, 71, DeployModel::kForbiddenAreas);
  FloodingRouter router(net.graph());
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    PathResult r = router.route(s, d);
    EXPECT_TRUE(r.delivered());
    // Flooding reports the BFS-optimal path.
    EXPECT_EQ(r.hops(), bfs_path(net.graph(), s, d).hops());
  }
}

TEST(Flooding, FailsAcrossDisconnection) {
  auto g = test::make_graph({{0.0, 0.0}, {100.0, 0.0}}, 10.0);
  FloodingRouter router(g);
  EXPECT_FALSE(router.route(0, 1).delivered());
}

TEST(Flooding, BroadcastCostCountsComponent) {
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {200.0, 0.0}}, 12.0);
  FloodingRouter router(g);
  EXPECT_EQ(router.broadcast_cost(0), 3u);  // the far node is unreachable
  EXPECT_EQ(router.broadcast_cost(3), 1u);
}

TEST(Baselines, GreedyOnlySchemesFailMoreThanSlgf2) {
  int mfr_fail = 0, compass_fail = 0, slgf2_fail = 0, total = 0;
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(500, seed, DeployModel::kForbiddenAreas);
    MfrRouter mfr(net.graph());
    CompassRouter compass(net.graph());
    auto slgf2 = net.make_router(Scheme::kSlgf2);
    Rng rng(seed ^ 0x4444);
    for (int trial = 0; trial < 8; ++trial) {
      auto [s, d] = net.random_connected_interior_pair(rng);
      ++total;
      if (!mfr.route(s, d).delivered()) ++mfr_fail;
      if (!compass.route(s, d).delivered()) ++compass_fail;
      if (!slgf2->route(s, d).delivered()) ++slgf2_fail;
    }
  }
  EXPECT_GE(mfr_fail, slgf2_fail);
  EXPECT_GE(compass_fail, slgf2_fail);
  EXPECT_GT(total, 0);
}

}  // namespace
}  // namespace spr
