#include "geometry/polygon.h"

#include <gtest/gtest.h>

namespace spr {
namespace {

Polygon unit_square() {
  return Polygon({{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}});
}

TEST(Polygon, ContainsInterior) {
  Polygon p = unit_square();
  EXPECT_TRUE(p.contains({0.5, 0.5}));
  EXPECT_FALSE(p.contains({1.5, 0.5}));
  EXPECT_FALSE(p.contains({0.5, -0.5}));
}

TEST(Polygon, BoundaryCountsAsInside) {
  Polygon p = unit_square();
  EXPECT_TRUE(p.contains({0.0, 0.5}));
  EXPECT_TRUE(p.contains({1.0, 1.0}));
  EXPECT_TRUE(p.contains({0.5, 0.0}));
}

TEST(Polygon, SignedAreaOrientation) {
  EXPECT_DOUBLE_EQ(unit_square().signed_area(), 1.0);  // CCW positive
  Polygon cw({{0.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {1.0, 0.0}});
  EXPECT_DOUBLE_EQ(cw.signed_area(), -1.0);
  EXPECT_DOUBLE_EQ(cw.area(), 1.0);
}

TEST(Polygon, Perimeter) {
  EXPECT_DOUBLE_EQ(unit_square().perimeter(), 4.0);
}

TEST(Polygon, ConcaveContainment) {
  // L-shape: the notch must be outside.
  Polygon l({{0.0, 0.0}, {2.0, 0.0}, {2.0, 1.0}, {1.0, 1.0},
             {1.0, 2.0}, {0.0, 2.0}});
  EXPECT_TRUE(l.contains({0.5, 1.5}));
  EXPECT_TRUE(l.contains({1.5, 0.5}));
  EXPECT_FALSE(l.contains({1.5, 1.5}));  // the notch
  EXPECT_DOUBLE_EQ(l.area(), 3.0);
}

TEST(Polygon, FromRect) {
  Polygon p = Polygon::from_rect(Rect::from_corners({1.0, 2.0}, {3.0, 5.0}));
  EXPECT_EQ(p.size(), 4u);
  EXPECT_DOUBLE_EQ(p.area(), 6.0);
  EXPECT_TRUE(p.contains({2.0, 3.0}));
}

TEST(Polygon, RegularApproximatesDisc) {
  Polygon p = Polygon::regular({5.0, 5.0}, 2.0, 64);
  EXPECT_TRUE(p.contains({5.0, 5.0}));
  EXPECT_TRUE(p.contains({6.5, 5.0}));
  EXPECT_FALSE(p.contains({7.5, 5.0}));
  EXPECT_NEAR(p.area(), 3.14159265 * 4.0, 0.1);
}

TEST(Polygon, BoundingBox) {
  Polygon p({{1.0, 2.0}, {5.0, -1.0}, {3.0, 7.0}});
  Rect box = p.bounding_box();
  EXPECT_EQ(box.lo(), Vec2(1.0, -1.0));
  EXPECT_EQ(box.hi(), Vec2(5.0, 7.0));
}

TEST(Polygon, Centroid) {
  Vec2 c = unit_square().centroid();
  EXPECT_NEAR(c.x, 0.5, 1e-12);
  EXPECT_NEAR(c.y, 0.5, 1e-12);
}

TEST(Polygon, EmptyAndDegenerate) {
  Polygon empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.contains({0.0, 0.0}));
  EXPECT_DOUBLE_EQ(empty.area(), 0.0);
  Polygon two({{0.0, 0.0}, {1.0, 0.0}});
  EXPECT_FALSE(two.contains({0.5, 0.0}));
  EXPECT_DOUBLE_EQ(two.area(), 0.0);
}

}  // namespace
}  // namespace spr
