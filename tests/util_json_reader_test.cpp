/// \file util_json_reader_test.cpp
/// The JsonValue parser: strict acceptance of what JsonWriter emits (and
/// ordinary JSON beyond it), exact number round-trips, and rejection of
/// truncated / malformed input without crashes (the suite runs under
/// ASan/UBSan in CI).

#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

namespace spr {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_TRUE(JsonValue::parse(text, v, &error)) << text << ": " << error;
  return v;
}

void expect_reject(const std::string& text) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(JsonValue::parse(text, v, &error)) << text;
  EXPECT_FALSE(error.empty()) << text;
}

TEST(JsonReader, Scalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").as_bool());
  EXPECT_FALSE(parse_ok("false").as_bool(true));
  EXPECT_EQ(parse_ok("42").as_int64(), 42);
  EXPECT_EQ(parse_ok("-7").as_int64(), -7);
  EXPECT_DOUBLE_EQ(parse_ok("0.5").as_double(), 0.5);
  EXPECT_DOUBLE_EQ(parse_ok("-1e3").as_double(), -1000.0);
  EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");
  EXPECT_TRUE(parse_ok("  [ ]  ").is_array());
  EXPECT_TRUE(parse_ok("\t{ }\n").is_object());
}

TEST(JsonReader, NestedContainersAndOrder) {
  JsonValue v = parse_ok(
      R"({"a":1,"list":[1,2,{"x":7}],"b":{"nested":true},"z":null})");
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.get("a").as_int64(), 1);
  EXPECT_EQ(v.get("list").size(), 3u);
  EXPECT_EQ(v.get("list").at(2).get("x").as_int64(), 7);
  EXPECT_TRUE(v.get("b").get("nested").as_bool());
  EXPECT_TRUE(v.get("z").is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
  // Members keep document order.
  EXPECT_EQ(v.members()[0].first, "a");
  EXPECT_EQ(v.members()[3].first, "z");
}

TEST(JsonReader, StringEscapes) {
  EXPECT_EQ(parse_ok(R"("line\nbreak \"quoted\" \\ \/ \t")").as_string(),
            "line\nbreak \"quoted\" \\ / \t");
  EXPECT_EQ(parse_ok(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair -> U+1F600 (4-byte UTF-8).
  EXPECT_EQ(parse_ok(R"("\ud83d\ude00")").as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonReader, ParsesWhatTheWriterEmits) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("line\nbreak \"quoted\"");
  w.key("count").value(3);
  w.key("big").value(std::uint64_t{18446744073709551615ULL});
  w.key("neg").value(std::int64_t{-9223372036854775807LL});
  w.key("ratio").value(0.1);
  w.key("bad").value(std::numeric_limits<double>::quiet_NaN());
  w.key("list").begin_array().value(1).value(true).null().end_array();
  w.end_object();

  JsonValue v = parse_ok(w.str());
  EXPECT_EQ(v.get("name").as_string(), "line\nbreak \"quoted\"");
  EXPECT_EQ(v.get("count").as_int64(), 3);
  EXPECT_EQ(v.get("big").as_uint64(), 18446744073709551615ULL);
  EXPECT_EQ(v.get("neg").as_int64(), -9223372036854775807LL);
  EXPECT_DOUBLE_EQ(v.get("ratio").as_double(), 0.1);
  EXPECT_TRUE(v.get("bad").is_null());  // NaN was emitted as null
  EXPECT_EQ(v.get("list").size(), 3u);
  // Re-emitting the parsed DOM reproduces the document byte-for-byte.
  EXPECT_EQ(v.dump(), w.str());
}

TEST(JsonReader, DoublesRoundTripBitExactly) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0 / 3.0,
                          6.02214076e23,
                          -2.2250738585072014e-308,
                          123456789.123456789,
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::denorm_min()};
  for (double expected : cases) {
    JsonWriter w;
    w.value(expected);
    JsonValue v = parse_ok(w.str());
    double actual = v.as_double();
    // Bit-exact, not just approximately equal.
    EXPECT_EQ(std::memcmp(&expected, &actual, sizeof expected), 0)
        << expected << " -> " << w.str() << " -> " << actual;
  }
}

TEST(JsonReader, OutOfRangeDoublesFallBackInIntegerAccessors) {
  // Casting an out-of-range double would be UB; the accessors must return
  // the fallback instead.
  JsonValue huge = parse_ok("1e300");
  EXPECT_EQ(huge.as_int64(7), 7);
  EXPECT_EQ(huge.as_uint64(7u), 7u);
  JsonValue negative = parse_ok("-1e300");
  EXPECT_EQ(negative.as_int64(7), 7);
  EXPECT_EQ(negative.as_uint64(7u), 7u);
  // In-range doubles still convert.
  EXPECT_EQ(parse_ok("3.9").as_int64(), 3);
  EXPECT_EQ(parse_ok("3.9").as_uint64(), 3u);
}

TEST(JsonReader, OutOfRangeLiteralsKeepMagnitudeAndSign) {
  // Tokens beyond double range follow IEEE strtod semantics: overflow to
  // a signed infinity, underflow to a signed zero — never a silent +0.
  EXPECT_TRUE(std::isinf(parse_ok("1e999").as_double()));
  EXPECT_GT(parse_ok("1e999").as_double(), 0.0);
  EXPECT_TRUE(std::isinf(parse_ok("-1e999").as_double()));
  EXPECT_LT(parse_ok("-1e999").as_double(), 0.0);
  EXPECT_EQ(parse_ok("1e-999").as_double(), 0.0);
  EXPECT_TRUE(std::signbit(parse_ok("-1e-999").as_double()));
}

TEST(JsonReader, IsIntegerDistinguishesReprs) {
  EXPECT_TRUE(parse_ok("42").is_integer());
  EXPECT_TRUE(parse_ok("-7").is_integer());
  EXPECT_TRUE(parse_ok("18446744073709551615").is_integer());
  EXPECT_FALSE(parse_ok("1.7").is_integer());
  EXPECT_FALSE(parse_ok("1e3").is_integer());
  EXPECT_FALSE(parse_ok("\"42\"").is_integer());
  EXPECT_FALSE(parse_ok("null").is_integer());
}

TEST(JsonReader, DuplicateKeysLastWins) {
  JsonValue v = parse_ok(R"({"k":1,"k":2})");
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.get("k").as_int64(), 2);
}

TEST(JsonReader, RejectsMalformedInput) {
  for (const char* text :
       {"", "   ", "{", "[", "\"unterminated", "{\"a\":}", "{\"a\" 1}",
        "{\"a\":1,}", "[1,]", "[1 2]", "tru", "nul", "falsee", "01", "1.",
        "1e", "+1", ".5", "--1", "\"\\x\"", "\"\\u12\"", "\"\\ud83d\"",
        "\"\\ude00\"", "\"raw\ncontrol\"", "{\"a\":1} extra", "[1],",
        "{'a':1}", "[01]", "1 2"}) {
    expect_reject(text);
  }
}

TEST(JsonReader, RejectsTruncatedWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("list").begin_array();
  for (int i = 0; i < 20; ++i) w.value(i);
  w.end_array();
  w.key("tail").value("x");
  w.end_object();
  const std::string& full = w.str();
  // Every strict prefix must be rejected (no crash, no acceptance).
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    JsonValue v;
    EXPECT_FALSE(JsonValue::parse(full.substr(0, cut), v))
        << "prefix length " << cut;
  }
}

TEST(JsonReader, RejectsOverDeepNesting) {
  std::string deep(500, '[');
  deep += std::string(500, ']');
  expect_reject(deep);
  // ...but reasonable nesting is fine.
  std::string ok(64, '[');
  ok += std::string(64, ']');
  parse_ok(ok);
}

TEST(JsonReader, ParseFileErrors) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(JsonValue::parse_file("/nonexistent/path.json", v, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(JsonValueBuilder, BuildsDocuments) {
  JsonValue doc = JsonValue::object();
  doc.set("name", JsonValue::of("spr"));
  doc.set("count", JsonValue::of(2));
  JsonValue list = JsonValue::array();
  list.push(JsonValue::of(1.5)).push(JsonValue::of(false));
  doc.set("list", std::move(list));
  doc.set("count", JsonValue::of(3));  // replaces, keeps position
  EXPECT_EQ(doc.dump(), R"({"name":"spr","count":3,"list":[1.5,false]})");
}

}  // namespace
}  // namespace spr
