#include <gtest/gtest.h>

#include "radio/energy.h"
#include "radio/interference.h"
#include "test_helpers.h"

namespace spr {
namespace {

PathResult path_of(std::vector<NodeId> nodes, const UnitDiskGraph& g) {
  PathResult r;
  r.status = RouteStatus::kDelivered;
  r.path = std::move(nodes);
  for (std::size_t i = 1; i < r.path.size(); ++i) {
    r.length += distance(g.position(r.path[i - 1]), g.position(r.path[i]));
    r.hop_phases.push_back(HopPhase::kGreedy);
  }
  return r;
}

TEST(Energy, HopEnergyComposition) {
  EnergyModel model;
  double bits = 8000.0;
  double tx = model.tx_energy(10.0, bits);
  double rx = model.rx_energy(bits);
  EXPECT_DOUBLE_EQ(model.hop_energy(10.0, bits), tx + rx);
  EXPECT_GT(tx, rx);  // amplifier term adds on top of electronics
}

TEST(Energy, AmplifierGrowsQuadratically) {
  EnergyModel model;
  model.electronics_j_per_bit = 0.0;
  double e10 = model.tx_energy(10.0, 1.0);
  double e20 = model.tx_energy(20.0, 1.0);
  EXPECT_NEAR(e20 / e10, 4.0, 1e-9);
}

TEST(Energy, PathEnergySumsHops) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}}, 12.0);
  auto r = path_of({0, 1, 2}, g);
  EnergyModel model;
  PathEnergy pe = path_energy(g, r, model, 8000.0);
  EXPECT_NEAR(pe.total_j, 2.0 * model.hop_energy(10.0, 8000.0), 1e-12);
  EXPECT_NEAR(pe.max_hop_j, model.hop_energy(10.0, 8000.0), 1e-12);
  EXPECT_EQ(pe.relays, 1u);
}

TEST(Energy, EmptyPathZero) {
  auto g = test::make_graph({{0.0, 0.0}}, 12.0);
  PathResult r;
  r.path = {0};
  EnergyModel model;
  EXPECT_DOUBLE_EQ(path_energy(g, r, model, 1000.0).total_j, 0.0);
}

TEST(Energy, StreamScalesLinearly) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}}, 12.0);
  auto r = path_of({0, 1}, g);
  EnergyModel model;
  double one = stream_energy(g, r, model, 8000.0, 1);
  double thousand = stream_energy(g, r, model, 8000.0, 1000);
  EXPECT_NEAR(thousand, 1000.0 * one, 1e-9);
}

TEST(Energy, DetourCostsMore) {
  // Straight 2-hop path vs 3-hop detour of the same endpoints.
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {5.0, 8.0}, {15.0, 8.0}}, 13.0);
  EnergyModel model;
  auto straight = path_of({0, 1, 2}, g);
  auto detour = path_of({0, 3, 4, 2}, g);
  EXPECT_LT(path_energy(g, straight, model, 8000.0).total_j,
            path_energy(g, detour, model, 8000.0).total_j);
}

TEST(Interference, FootprintCountsOverhearers) {
  // Line 0-1-2 with a bystander 3 near node 1 only.
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {10.0, 8.0}}, 12.0);
  auto r = path_of({0, 1, 2}, g);
  auto fp = interference_footprint(g, r);
  EXPECT_EQ(fp.transmitters, 2u);   // 0 and 1 transmit
  EXPECT_GE(fp.overhearers, 1u);    // 3 overhears
  EXPECT_EQ(fp.blocked_nodes, fp.transmitters + fp.overhearers);
}

TEST(Interference, ShorterFootprintForStraighterPath) {
  Network net = test::random_network(500, 21, DeployModel::kForbiddenAreas);
  auto lgf = net.make_router(Scheme::kLgf);
  auto slgf2 = net.make_router(Scheme::kSlgf2);
  Rng rng(3);
  std::size_t lgf_blocked = 0, slgf2_blocked = 0;
  int counted = 0;
  for (int trial = 0; trial < 25; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    auto a = lgf->route(s, d);
    auto b = slgf2->route(s, d);
    if (!a.delivered() || !b.delivered()) continue;
    lgf_blocked += interference_footprint(net.graph(), a).blocked_nodes;
    slgf2_blocked += interference_footprint(net.graph(), b).blocked_nodes;
    ++counted;
  }
  ASSERT_GT(counted, 5);
  // The paper's motivation: straighter paths involve fewer nodes.
  EXPECT_LE(slgf2_blocked, lgf_blocked * 11 / 10);
}

TEST(Interference, DisjointPathsDoNotConflict) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0},            // path A
                             {100.0, 100.0}, {110.0, 100.0}},    // path B
                            12.0);
  auto a = path_of({0, 1}, g);
  auto b = path_of({2, 3}, g);
  EXPECT_FALSE(paths_conflict(g, a, b));
}

TEST(Interference, NearbyPathsConflict) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0},
                             {10.0, 8.0}, {20.0, 8.0}}, 12.0);
  auto a = path_of({0, 1}, g);
  auto b = path_of({2, 3}, g);
  EXPECT_TRUE(paths_conflict(g, a, b));
  EXPECT_TRUE(paths_conflict(g, b, a));  // symmetric
}

TEST(Interference, GreedyScheduleSeparatesConflicts) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0},
                             {10.0, 8.0}, {20.0, 8.0},
                             {100.0, 100.0}, {110.0, 100.0}}, 12.0);
  std::vector<PathResult> paths = {path_of({0, 1}, g), path_of({2, 3}, g),
                                   path_of({4, 5}, g)};
  auto channels = greedy_schedule(g, paths);
  ASSERT_EQ(channels.size(), 3u);
  EXPECT_NE(channels[0], channels[1]);  // conflicting pair separated
  EXPECT_EQ(channels[2], 0);            // far path reuses channel 0
}

}  // namespace
}  // namespace spr
