#include "util/ascii_canvas.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace spr {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(AsciiCanvas, FrameDimensions) {
  AsciiCanvas canvas(10, 4, 0.0, 0.0, 100.0, 40.0);
  auto lines = lines_of(canvas.render());
  ASSERT_EQ(lines.size(), 6u);  // 4 rows + top/bottom border
  for (const auto& line : lines) EXPECT_EQ(line.size(), 12u);  // 10 + borders
}

TEST(AsciiCanvas, PlotAppearsAtExpectedCell) {
  AsciiCanvas canvas(10, 10, 0.0, 0.0, 100.0, 100.0);
  canvas.plot(5.0, 95.0, 'X');  // near top-left
  auto lines = lines_of(canvas.render());
  EXPECT_EQ(lines[1][1], 'X');
}

TEST(AsciiCanvas, YAxisGrowsUpward) {
  AsciiCanvas canvas(10, 10, 0.0, 0.0, 100.0, 100.0);
  canvas.plot(50.0, 5.0, 'B');   // low y -> bottom row
  canvas.plot(50.0, 95.0, 'T');  // high y -> top row
  auto lines = lines_of(canvas.render());
  EXPECT_EQ(lines[1][6], 'T');
  EXPECT_EQ(lines[10][6], 'B');
}

TEST(AsciiCanvas, OutOfRangeIgnored) {
  AsciiCanvas canvas(5, 5, 0.0, 0.0, 10.0, 10.0);
  canvas.plot(-1.0, 5.0, 'X');
  canvas.plot(11.0, 5.0, 'X');
  canvas.plot(5.0, 20.0, 'X');
  EXPECT_EQ(canvas.render().find('X'), std::string::npos);
}

TEST(AsciiCanvas, LineDrawsContiguousGlyphs) {
  AsciiCanvas canvas(20, 20, 0.0, 0.0, 100.0, 100.0);
  canvas.line(5.0, 5.0, 95.0, 95.0, '*');
  std::string out = canvas.render();
  int stars = 0;
  for (char c : out) {
    if (c == '*') ++stars;
  }
  EXPECT_GE(stars, 15);  // roughly one per diagonal cell
}

TEST(AsciiCanvas, FillRect) {
  AsciiCanvas canvas(10, 10, 0.0, 0.0, 100.0, 100.0);
  canvas.fill_rect(20.0, 20.0, 50.0, 50.0, '#');
  std::string out = canvas.render();
  int hashes = 0;
  for (char c : out) {
    if (c == '#') ++hashes;
  }
  EXPECT_GE(hashes, 9);  // ~3x3 cells minimum
}

TEST(AsciiCanvas, LaterDrawsOverwrite) {
  AsciiCanvas canvas(10, 10, 0.0, 0.0, 100.0, 100.0);
  canvas.plot(50.0, 50.0, 'a');
  canvas.plot(50.0, 50.0, 'b');
  std::string out = canvas.render();
  EXPECT_EQ(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

}  // namespace
}  // namespace spr
