#include "graph/metrics.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace spr {
namespace {

TEST(GraphMetrics, DegreeStatsOnLine) {
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {30.0, 0.0}}, 12.0);
  auto stats = degree_stats(g);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 2u);
  EXPECT_DOUBLE_EQ(stats.mean, 1.5);
  ASSERT_GE(stats.histogram.size(), 3u);
  EXPECT_EQ(stats.histogram[1], 2u);
  EXPECT_EQ(stats.histogram[2], 2u);
}

TEST(GraphMetrics, DegreeStatsEmpty) {
  UnitDiskGraph g({}, 10.0, Rect::from_bounds({0.0, 0.0}, {1.0, 1.0}));
  auto stats = degree_stats(g);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
  EXPECT_TRUE(stats.histogram.empty());
}

TEST(GraphMetrics, LargestComponentFraction) {
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {200.0, 0.0}}, 12.0);
  EXPECT_DOUBLE_EQ(largest_component_fraction(g), 0.75);
}

TEST(GraphMetrics, DiameterOnLine) {
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {30.0, 0.0}, {40.0, 0.0}}, 12.0);
  EXPECT_EQ(hop_diameter(g), 4u);
  EXPECT_EQ(hop_diameter_estimate(g), 4u);
}

TEST(GraphMetrics, EstimateNeverExceedsExact) {
  for (std::uint64_t seed : {11ull, 23ull, 37ull}) {
    Network net = test::random_network(200, seed);
    std::size_t exact = hop_diameter(net.graph());
    std::size_t estimate = hop_diameter_estimate(net.graph());
    EXPECT_LE(estimate, exact) << "seed " << seed;
    // Double-sweep is nearly always tight on unit-disk graphs.
    EXPECT_GE(estimate + 2, exact) << "seed " << seed;
  }
}

TEST(GraphMetrics, AverageHopDistancePositive) {
  Network net = test::random_network(300, 41);
  double avg = average_hop_distance(net.graph(), 50, 7);
  EXPECT_GT(avg, 1.0);
  EXPECT_LT(avg, static_cast<double>(hop_diameter_estimate(net.graph())) + 1);
}

TEST(GraphMetrics, DensityIncreasesDegreeDecreasesDiameter) {
  Network sparse = test::random_network(400, 5);
  Network dense = test::random_network(800, 5);
  EXPECT_LT(degree_stats(sparse.graph()).mean, degree_stats(dense.graph()).mean);
  EXPECT_GE(hop_diameter_estimate(sparse.graph()),
            hop_diameter_estimate(dense.graph()));
}

}  // namespace
}  // namespace spr
