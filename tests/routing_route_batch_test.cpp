/// \file routing_route_batch_test.cpp
/// route_batch ≡ loop-of-route, for every scheme the sweep runs (the four
/// paper schemes plus GF/face) and for the default implementation the
/// baselines inherit. The batch path reuses headers and buffers, so any
/// state leaking between packets shows up as a divergence here.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/network.h"
#include "routing/baselines.h"
#include "test_helpers.h"

namespace spr {
namespace {

std::vector<std::pair<NodeId, NodeId>> batch_pairs(const Network& net,
                                                   std::uint64_t seed,
                                                   int count) {
  Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < count; ++i) {
    auto pair = net.random_connected_interior_pair(rng);
    if (pair.first != kInvalidNode) pairs.push_back(pair);
  }
  // Shared sources, a repeated pair, and a self-pair: the states most
  // likely to expose stale header reuse.
  if (pairs.size() >= 2) {
    pairs.emplace_back(pairs[0].first, pairs[1].second);
    pairs.push_back(pairs[0]);
    pairs.emplace_back(pairs[1].first, pairs[1].first);
  }
  return pairs;
}

void expect_identical(const PathResult& a, const PathResult& b,
                      const char* label, std::size_t i) {
  EXPECT_EQ(a.status, b.status) << label << " pair " << i;
  EXPECT_EQ(a.path, b.path) << label << " pair " << i;
  EXPECT_EQ(a.hop_phases, b.hop_phases) << label << " pair " << i;
  EXPECT_EQ(a.length, b.length) << label << " pair " << i;  // bitwise
  EXPECT_EQ(a.local_minima, b.local_minima) << label << " pair " << i;
}

TEST(RouteBatch, EquivalentToLoopOfRouteForEveryScheme) {
  const Scheme schemes[] = {Scheme::kGf, Scheme::kGfFace, Scheme::kLgf,
                            Scheme::kSlgf, Scheme::kSlgf2};
  for (DeployModel model :
       {DeployModel::kIdeal, DeployModel::kForbiddenAreas}) {
    Network net = test::random_network(400, 21, model);
    auto pairs = batch_pairs(net, 77, 12);
    ASSERT_FALSE(pairs.empty());
    for (Scheme scheme : schemes) {
      auto router = net.make_router(scheme);
      auto batch = router->route_batch(pairs);
      ASSERT_EQ(batch.size(), pairs.size()) << scheme_name(scheme);
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        PathResult single = router->route(pairs[i].first, pairs[i].second);
        expect_identical(batch[i], single, scheme_name(scheme), i);
      }
    }
  }
}

TEST(RouteBatch, RespectsRouteOptions) {
  Network net = test::random_network(400, 23, DeployModel::kForbiddenAreas);
  auto pairs = batch_pairs(net, 5, 8);
  RouteOptions tight;
  tight.ttl_factor = 1;
  auto router = net.make_router(Scheme::kSlgf2);
  auto batch = router->route_batch(pairs, tight);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    PathResult single = router->route(pairs[i].first, pairs[i].second, tight);
    expect_identical(batch[i], single, "SLGF2/ttl", i);
  }
}

TEST(RouteBatch, DefaultImplementationCoversBaselineRouters) {
  Network net = test::random_network(400, 29);
  auto pairs = batch_pairs(net, 31, 8);
  MfrRouter mfr(net.graph());
  CompassRouter compass(net.graph());
  FloodingRouter flooding(net.graph());
  const Router* routers[] = {&mfr, &compass, &flooding};
  for (const Router* router : routers) {
    auto batch = router->route_batch(pairs);
    ASSERT_EQ(batch.size(), pairs.size()) << router->name();
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      PathResult single = router->route(pairs[i].first, pairs[i].second);
      expect_identical(batch[i], single, router->name().data(), i);
    }
  }
}

TEST(RouteBatch, InvalidEndpointsYieldDeadEnd) {
  // A failed connected-pair draw hands callers {kInvalidNode, kInvalidNode};
  // routing it must degrade to an empty dead-end result, batch and single.
  Network net = test::random_network(400, 41);
  std::vector<std::pair<NodeId, NodeId>> pairs = {
      {kInvalidNode, kInvalidNode}, {0, kInvalidNode}, {kInvalidNode, 0}};
  for (Scheme scheme : {Scheme::kGf, Scheme::kSlgf2}) {
    auto router = net.make_router(scheme);
    auto batch = router->route_batch(pairs);
    ASSERT_EQ(batch.size(), pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      PathResult single = router->route(pairs[i].first, pairs[i].second);
      EXPECT_EQ(single.status, RouteStatus::kDeadEnd);
      EXPECT_TRUE(single.path.empty());
      expect_identical(batch[i], single, scheme_name(scheme), i);
    }
  }
}

TEST(RouteBatch, EmptySpanYieldsEmptyResult) {
  Network net = test::random_network(400, 37);
  auto router = net.make_router(Scheme::kLgf);
  EXPECT_TRUE(router->route_batch({}).empty());
}

}  // namespace
}  // namespace spr
