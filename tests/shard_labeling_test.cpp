#include "shard/sharded_network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "core/network.h"
#include "safety/labeling.h"
#include "test_helpers.h"
#include "util/task_pool.h"

namespace spr {
namespace {

std::vector<Vec2> jitter_positions(const std::vector<Vec2>& positions,
                                   const Rect& field, double magnitude,
                                   Rng& rng) {
  std::vector<Vec2> moved = positions;
  for (Vec2& p : moved) {
    p.x = std::clamp(p.x + rng.uniform(-magnitude, magnitude), field.lo().x,
                     field.hi().x);
    p.y = std::clamp(p.y + rng.uniform(-magnitude, magnitude), field.lo().y,
                     field.hi().y);
  }
  return moved;
}

std::vector<NodeId> draw_casualties(const UnitDiskGraph& g, Rng& rng,
                                    int count) {
  std::vector<NodeId> failed;
  while (static_cast<int>(failed.size()) < count) {
    const NodeId u = static_cast<NodeId>(rng.next_below(g.size()));
    if (!g.alive(u)) continue;
    if (std::find(failed.begin(), failed.end(), u) == failed.end()) {
      failed.push_back(u);
    }
  }
  return failed;
}

const std::vector<std::pair<int, int>>& tile_grids() {
  static const std::vector<std::pair<int, int>> grids = {
      {1, 1}, {2, 2}, {3, 2}, {4, 4}};
  return grids;
}

/// Shard-count invariance of the from-scratch labeling: statuses AND
/// anchors (SafetyInfo equality covers both) are bit-identical to the
/// single-shard compute_safety for every tile grid, model and seed.
TEST(ShardedLabeling, ComputeMatchesSingleShardAcrossGrids) {
  for (const std::uint64_t seed : test::property_seeds()) {
    for (const DeployModel model :
         {DeployModel::kIdeal, DeployModel::kForbiddenAreas}) {
      Network net = test::random_network(350, seed, model);
      const SafetyInfo single =
          compute_safety(net.graph(), net.interest_area());
      for (const auto& [rows, cols] : tile_grids()) {
        ShardedNetwork sharded(net.graph(), -1.0,
                               ShardedNetwork::Config{rows, cols});
        EXPECT_EQ(sharded.safety(), single)
            << "seed " << seed << " model " << static_cast<int>(model)
            << " grid " << rows << "x" << cols;
      }
    }
  }
}

/// The partition itself: every node owned exactly once, and every neighbor
/// of an owned node is replicated in the tile (the halo invariant the
/// local flip evaluation relies on).
TEST(ShardedLabeling, PartitionOwnsEachNodeOnceAndCoversNeighborhoods) {
  Network net = test::random_network(400, 11, DeployModel::kForbiddenAreas);
  ShardedNetwork sharded(net.graph(), -1.0, ShardedNetwork::Config{3, 2});
  std::vector<int> owners(net.graph().size(), 0);
  for (int t = 0; t < sharded.tile_count(); ++t) {
    const auto members = sharded.tile_members(t);
    const std::size_t owned = sharded.tile_owned(t);
    ASSERT_LE(owned, members.size());
    EXPECT_TRUE(std::is_sorted(members.begin(),
                               members.begin() + static_cast<long>(owned)));
    EXPECT_TRUE(std::is_sorted(members.begin() + static_cast<long>(owned),
                               members.end()));
    for (std::size_t i = 0; i < owned; ++i) {
      ++owners[members[i]];
      for (const NodeId v : net.graph().neighbors(members[i])) {
        EXPECT_TRUE(std::find(members.begin(), members.end(), v) !=
                    members.end())
            << "neighbor " << v << " of owned node " << members[i]
            << " missing from tile " << t;
      }
    }
  }
  for (const int c : owners) EXPECT_EQ(c, 1);
}

/// Results and exchange stats are bit-identical for every thread count —
/// per-tile drains are serial and routing runs in tile order between
/// barriers, so the pool only changes who executes, not what happens.
TEST(ShardedLabeling, IdenticalAcrossThreadCounts) {
  Network net = test::random_network(500, 21, DeployModel::kForbiddenAreas);
  ShardedNetwork serial(net.graph(), -1.0, ShardedNetwork::Config{2, 2});
  const SafetyInfo base = serial.safety();
  const ShardStats& base_stats = serial.last_stats();
  for (const int threads : {2, 5}) {
    TaskPool pool(threads);
    ShardedNetwork sharded(net.graph(), -1.0, ShardedNetwork::Config{2, 2},
                           &pool);
    EXPECT_EQ(sharded.safety(), base) << threads << " threads";
    EXPECT_EQ(sharded.last_stats().exchange_rounds,
              base_stats.exchange_rounds);
    EXPECT_EQ(sharded.last_stats().halo_demotions, base_stats.halo_demotions);
    EXPECT_EQ(sharded.last_stats().incremental.flips,
              base_stats.incremental.flips);
  }
}

/// Staged failure waves continue the labeling shard-locally with halo
/// mirroring; after every wave the result equals a from-scratch
/// compute_safety on the degraded graph.
TEST(ShardedLabeling, StagedFailureWavesMatchFullRecompute) {
  for (const std::uint64_t seed : test::property_seeds()) {
    for (const auto& [rows, cols] : tile_grids()) {
      Network net = test::random_network(350, seed,
                                         DeployModel::kForbiddenAreas);
      ShardedNetwork sharded(net.graph(), -1.0,
                             ShardedNetwork::Config{rows, cols});
      sharded.safety();
      Rng rng(seed ^ 0xf001);
      for (int wave = 0; wave < 3; ++wave) {
        sharded.apply_failures(draw_casualties(sharded.graph(), rng, 10));
        EXPECT_EQ(sharded.safety(),
                  compute_safety(sharded.graph(), sharded.area()))
            << "seed " << seed << " grid " << rows << "x" << cols << " wave "
            << wave;
      }
    }
  }
}

/// A hole punched at the 2x2 corner point demotes nodes in all four tiles,
/// so the demotion frontier must actually cross halos.
TEST(ShardedLabeling, CornerHoleCrossesHalos) {
  Deployment d = test::dense_grid_deployment(700, 9);
  UnitDiskGraph g(d.positions, d.radio_range, d.field);
  ShardedNetwork sharded(g, -1.0, ShardedNetwork::Config{2, 2});
  sharded.safety();
  const Vec2 center = d.field.center();
  std::vector<NodeId> failed;
  for (NodeId u = 0; u < g.size(); ++u) {
    if (distance(g.position(u), center) <= 30.0) failed.push_back(u);
  }
  ASSERT_GT(failed.size(), 5u);
  sharded.apply_failures(failed);
  EXPECT_GT(sharded.last_stats().incremental.flips, 0u);
  EXPECT_GT(sharded.last_stats().halo_demotions, 0u)
      << "a corner hole must mirror demotions across tiles";
  EXPECT_GT(sharded.last_stats().exchange_rounds, 1u);
  EXPECT_EQ(sharded.safety(), compute_safety(sharded.graph(), sharded.area()));
}

/// Mobility epochs: small whole-field jitter rides the frozen partition
/// (in-slack fast path) until cumulative drift forces a re-partition;
/// either way every epoch lands exactly on the from-scratch fixpoint.
TEST(ShardedLabeling, MobilityEpochsMatchFullRecompute) {
  std::size_t total_promotions = 0;
  for (const std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(350, seed,
                                       DeployModel::kForbiddenAreas);
    ShardedNetwork sharded(net.graph(), -1.0, ShardedNetwork::Config{2, 2});
    sharded.safety();
    Rng rng(seed ^ 0x5afe);
    for (int epoch = 0; epoch < 3; ++epoch) {
      const std::vector<Vec2> moved = jitter_positions(
          sharded.graph().positions(), net.deployment().field, 8.0, rng);
      sharded.apply_moves(moved);
      EXPECT_EQ(sharded.safety(),
                compute_safety(sharded.graph(), sharded.area()))
          << "seed " << seed << " epoch " << epoch;
      total_promotions += sharded.last_stats().incremental.promotions;
    }
  }
  EXPECT_GT(total_promotions, 0u)
      << "whole-field jitter should promote somewhere across the sweep";
}

/// Large motion exceeds the drift slack and must re-partition — and still
/// match the from-scratch fixpoint on the moved field.
TEST(ShardedLabeling, LargeMotionRepartitionsAndMatches) {
  Network net = test::random_network(400, 33, DeployModel::kForbiddenAreas);
  ShardedNetwork sharded(net.graph(), -1.0, ShardedNetwork::Config{2, 2});
  sharded.safety();
  Rng rng(0xb16);
  const std::vector<Vec2> moved = jitter_positions(
      sharded.graph().positions(), net.deployment().field, 60.0, rng);
  sharded.apply_moves(moved);
  EXPECT_EQ(sharded.last_stats().repartitions, 1u);
  EXPECT_EQ(sharded.safety(), compute_safety(sharded.graph(), sharded.area()));
}

/// Promotion forwarding: a wide rectangular hole straddles the tile
/// boundary, then fillers march into its *western* end only — every
/// promotion source lands in the left tile (fillers stay more than a radio
/// range west of the boundary), while the unsafe band hugging the hole
/// extends east past the left tile's halo. Raising the whole band
/// therefore requires forwarding raised ghosts to the right tile's owner
/// copies.
TEST(ShardedLabeling, OneSidedHoleFillingForwardsRaisesAcrossHalos) {
  Deployment d = test::dense_grid_deployment(700, 13);
  UnitDiskGraph g(d.positions, d.radio_range, d.field);
  ShardedNetwork sharded(g, -1.0, ShardedNetwork::Config{1, 2});
  sharded.safety();
  const Rect hole = Rect::from_bounds({40.0, 80.0}, {160.0, 120.0});
  std::vector<NodeId> failed;
  for (NodeId u = 0; u < g.size(); ++u) {
    if (hole.contains(g.position(u))) failed.push_back(u);
  }
  ASSERT_GT(failed.size(), 10u);
  sharded.apply_failures(failed);
  ASSERT_EQ(sharded.safety(), compute_safety(sharded.graph(), sharded.area()));

  // Fillers come from the far west edge and land in x in [45, 72]: their
  // support discs (range 20) stay west of the x = 100 boundary, so no
  // promotion source is owned by the right tile.
  Rng rng(0xf111);
  std::vector<Vec2> moved = sharded.graph().positions();
  int movers = 0;
  for (NodeId u = 0; u < sharded.graph().size() && movers < 40; ++u) {
    if (!sharded.graph().alive(u)) continue;
    if (moved[u].x > 30.0) continue;
    moved[u] = {rng.uniform(45.0, 72.0), rng.uniform(85.0, 115.0)};
    ++movers;
  }
  ASSERT_GT(movers, 10);
  sharded.apply_moves(moved);
  EXPECT_GT(sharded.last_stats().incremental.promotions, 0u);
  EXPECT_GT(sharded.last_stats().halo_raises, 0u)
      << "a cross-tile cluster raise must forward to owners";
  EXPECT_EQ(sharded.safety(), compute_safety(sharded.graph(), sharded.area()));
}

/// The full dynamic chain — failures and moves interleaved over several
/// epochs, across tile grids and thread counts — stays bit-identical to
/// from-scratch recomputes and to the serial sharded run.
TEST(ShardedLabeling, InterleavedFailureAndMoveChainsMatch) {
  for (const std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(350, seed,
                                       DeployModel::kForbiddenAreas);
    TaskPool pool(4);
    ShardedNetwork serial(net.graph(), -1.0, ShardedNetwork::Config{2, 2});
    ShardedNetwork threaded(net.graph(), -1.0, ShardedNetwork::Config{2, 2},
                            &pool);
    ShardedNetwork coarse(net.graph(), -1.0, ShardedNetwork::Config{1, 1});
    serial.safety();
    threaded.safety();
    coarse.safety();
    Rng rng(seed ^ 0xc4a1);
    for (int epoch = 0; epoch < 4; ++epoch) {
      if (epoch % 2 == 0) {
        const auto failed = draw_casualties(serial.graph(), rng, 8);
        serial.apply_failures(failed);
        threaded.apply_failures(failed);
        coarse.apply_failures(failed);
      } else {
        const auto moved = jitter_positions(serial.graph().positions(),
                                            net.deployment().field, 10.0, rng);
        serial.apply_moves(moved);
        threaded.apply_moves(moved);
        coarse.apply_moves(moved);
      }
      const SafetyInfo full =
          compute_safety(serial.graph(), serial.area());
      EXPECT_EQ(serial.safety(), full) << "seed " << seed << " epoch " << epoch;
      EXPECT_EQ(threaded.safety(), full)
          << "seed " << seed << " epoch " << epoch << " (threaded)";
      EXPECT_EQ(coarse.safety(), full)
          << "seed " << seed << " epoch " << epoch << " (1x1)";
      EXPECT_EQ(threaded.last_stats().halo_demotions,
                serial.last_stats().halo_demotions);
      EXPECT_EQ(coarse.last_stats().halo_demotions, 0u);
      EXPECT_EQ(coarse.last_stats().halo_raises, 0u);
    }
  }
}

/// create() draws the same deployment as Network::create for the same
/// config, so the sharded path drops into existing experiment plumbing.
TEST(ShardedLabeling, CreateMatchesNetworkCreate) {
  NetworkConfig config;
  config.deployment.node_count = 300;
  config.deployment.model = DeployModel::kForbiddenAreas;
  config.seed = 77;
  Network net = Network::create(config);
  ShardedNetwork sharded =
      ShardedNetwork::create(config, ShardedNetwork::Config{2, 2});
  ASSERT_EQ(sharded.graph().size(), net.graph().size());
  EXPECT_EQ(sharded.graph().positions(), net.graph().positions());
  EXPECT_EQ(sharded.graph().edge_count(), net.graph().edge_count());
  EXPECT_EQ(sharded.safety(), net.safety());
}

}  // namespace
}  // namespace spr
