#include "graph/unit_disk.h"

#include <gtest/gtest.h>

#include "deploy/rng.h"
#include "test_helpers.h"

namespace spr {
namespace {

TEST(UnitDisk, EdgeIffWithinRange) {
  auto g = test::make_graph({{0.0, 0.0}, {15.0, 0.0}, {40.0, 0.0}}, 20.0);
  EXPECT_TRUE(g.are_neighbors(0, 1));
  EXPECT_TRUE(g.are_neighbors(1, 0));
  EXPECT_FALSE(g.are_neighbors(0, 2));
  EXPECT_FALSE(g.are_neighbors(1, 2));  // 25m apart
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(UnitDisk, RangeBoundaryIsInclusive) {
  auto g = test::make_graph({{0.0, 0.0}, {20.0, 0.0}}, 20.0);
  EXPECT_TRUE(g.are_neighbors(0, 1));
}

TEST(UnitDisk, NeighborsSortedAndSymmetric) {
  Rng rng(5);
  std::vector<Vec2> pts;
  for (int i = 0; i < 150; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  auto g = test::make_graph(pts, 20.0);
  for (NodeId u = 0; u < g.size(); ++u) {
    auto nbrs = g.neighbors(u);
    for (std::size_t i = 1; i < nbrs.size(); ++i) EXPECT_LT(nbrs[i - 1], nbrs[i]);
    for (NodeId v : nbrs) {
      EXPECT_NE(v, u);
      EXPECT_TRUE(g.are_neighbors(v, u));
      EXPECT_LE(distance(g.position(u), g.position(v)), g.range() + 1e-9);
    }
  }
}

TEST(UnitDisk, MatchesBruteForce) {
  Rng rng(9);
  std::vector<Vec2> pts;
  for (int i = 0; i < 120; ++i) {
    pts.push_back({rng.uniform(0.0, 80.0), rng.uniform(0.0, 80.0)});
  }
  auto g = test::make_graph(pts, 15.0);
  for (NodeId u = 0; u < g.size(); ++u) {
    for (NodeId v = 0; v < g.size(); ++v) {
      if (u == v) continue;
      bool expected = distance(pts[u], pts[v]) <= 15.0;
      EXPECT_EQ(g.are_neighbors(u, v), expected) << u << "," << v;
    }
  }
}

TEST(UnitDisk, DegreeAndAverageDegree) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}}, 12.0);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 4.0 / 3.0);
}

TEST(UnitDisk, DeadNodesHaveNoEdges) {
  std::vector<Vec2> pts = {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}};
  Rect bounds = Rect::from_bounds({-20.0, -20.0}, {40.0, 20.0});
  UnitDiskGraph g(pts, 12.0, bounds, {true, false, true});
  EXPECT_FALSE(g.alive(1));
  EXPECT_EQ(g.degree(1), 0u);
  EXPECT_FALSE(g.are_neighbors(0, 1));
  EXPECT_FALSE(g.are_neighbors(2, 1));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(UnitDisk, WithFailuresRemovesEdges) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}}, 12.0);
  auto g2 = g.with_failures({1});
  EXPECT_TRUE(g.are_neighbors(0, 1));   // original untouched
  EXPECT_FALSE(g2.are_neighbors(0, 1));
  EXPECT_FALSE(g2.alive(1));
  EXPECT_TRUE(g2.alive(0));
  EXPECT_EQ(g2.position(1), Vec2(10.0, 0.0));  // position retained
}

TEST(UnitDisk, EmptyGraph) {
  UnitDiskGraph g({}, 10.0, Rect::from_bounds({0.0, 0.0}, {1.0, 1.0}));
  EXPECT_EQ(g.size(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(UnitDisk, SingleNode) {
  auto g = test::make_graph({{5.0, 5.0}}, 10.0);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(UnitDisk, CoincidentNodesAreNeighbors) {
  auto g = test::make_graph({{5.0, 5.0}, {5.0, 5.0}}, 10.0);
  EXPECT_TRUE(g.are_neighbors(0, 1));
}

}  // namespace
}  // namespace spr
