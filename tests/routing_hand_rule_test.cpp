#include "routing/hand_rule.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace spr {
namespace {

/// Pivot at origin with four neighbors on the axes, destination due east.
class CrossFixture : public ::testing::Test {
 protected:
  CrossFixture()
      : g_(test::make_graph({{0.0, 0.0},
                             {10.0, 0.0},    // 1: east
                             {0.0, 10.0},    // 2: north
                             {-10.0, 0.0},   // 3: west
                             {0.0, -10.0}},  // 4: south
                            15.0)) {}
  UnitDiskGraph g_;
};

TEST_F(CrossFixture, RightHandRotatesCcw) {
  // Start just past east (exclude the east node): CCW hits north first.
  NodeId v = first_by_rotation_from(g_, 0, g_.position(1), Hand::kRight,
                                    [](NodeId w) { return w != 1; });
  EXPECT_EQ(v, 2u);
}

TEST_F(CrossFixture, LeftHandRotatesCw) {
  NodeId v = first_by_rotation_from(g_, 0, g_.position(1), Hand::kLeft,
                                    [](NodeId w) { return w != 1; });
  EXPECT_EQ(v, 4u);  // CW from east: south
}

TEST_F(CrossFixture, NodeOnRayHitsImmediately) {
  NodeId v = first_by_rotation_from(g_, 0, {20.0, 0.0}, Hand::kRight);
  EXPECT_EQ(v, 1u);  // east node exactly on the ray u->dest
}

TEST_F(CrossFixture, FilterSkipsToNext) {
  NodeId v = first_by_rotation_from(
      g_, 0, {20.0, 0.0}, Hand::kRight,
      [](NodeId w) { return w != 1 && w != 2; });
  EXPECT_EQ(v, 3u);  // CCW past east and north
}

TEST_F(CrossFixture, NoEligibleNeighbor) {
  NodeId v = first_by_rotation_from(g_, 0, {20.0, 0.0}, Hand::kRight,
                                    [](NodeId) { return false; });
  EXPECT_EQ(v, kInvalidNode);
}

TEST(HandRule, ExplicitStartBearing) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}}, 15.0);
  // Start ray at 45 degrees: CCW (right hand) reaches north first, CW
  // (left hand) reaches east first.
  EXPECT_EQ(first_by_rotation(g, 0, kPi / 4, Hand::kRight), 2u);
  EXPECT_EQ(first_by_rotation(g, 0, kPi / 4, Hand::kLeft), 1u);
}

TEST(HandRule, NodeOnStartRayWinsEitherHand) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}}, 15.0);
  // North node sits exactly on the start ray: sweep 0 for both hands.
  EXPECT_EQ(first_by_rotation(g, 0, kPi / 2, Hand::kRight), 2u);
  EXPECT_EQ(first_by_rotation(g, 0, kPi / 2, Hand::kLeft), 2u);
}

TEST(HandRule, TieOnBearingBreaksByDistance) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}, {5.0, 0.0}}, 15.0);
  EXPECT_EQ(first_by_rotation(g, 0, 0.0, Hand::kRight), 2u);  // nearer first
}

TEST(HandRule, LeftRightSymmetry) {
  // For generic positions, right-hand first pick == left-hand last pick.
  Network net = test::random_network(300, 23);
  const auto& g = net.graph();
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    NodeId u = static_cast<NodeId>(rng.next_below(g.size()));
    if (g.degree(u) < 2) continue;
    Vec2 dest{rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)};
    NodeId right = first_by_rotation_from(g, u, dest, Hand::kRight);
    NodeId left = first_by_rotation_from(g, u, dest, Hand::kLeft);
    ASSERT_NE(right, kInvalidNode);
    ASSERT_NE(left, kInvalidNode);
    // Both must be real neighbors.
    EXPECT_TRUE(g.are_neighbors(u, right));
    EXPECT_TRUE(g.are_neighbors(u, left));
  }
}

}  // namespace
}  // namespace spr
