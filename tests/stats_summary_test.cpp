#include "stats/summary.h"

#include <gtest/gtest.h>

namespace spr {
namespace {

TEST(Summary, EmptyDefaults) {
  // Every statistic of an empty summary is 0.0 — consistently, so a report
  // over an empty aggregate renders zeros instead of throwing from some
  // accessors but not others.
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
}

/// An aggregate whose Summary fields never saw a sample (a scheme with zero
/// delivered packets) serializes and renders without throwing.
TEST(Summary, EmptySummaryStatsFormIsAllZeros) {
  Summary s;
  EXPECT_NE(s.to_string().find("n=0"), std::string::npos);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 4.0);
}

TEST(Summary, MeanMinMaxSum) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
  EXPECT_EQ(s.count(), 5u);
}

TEST(Summary, SampleVariance) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_NEAR(s.variance(), 4.571428571, 1e-8);  // n-1 denominator
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);
}

TEST(Summary, WelfordMatchesNaive) {
  Summary s;
  double naive_sum = 0.0, naive_sq = 0.0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    double v = 0.001 * i * i - 3.0 * i + 7.0;
    s.add(v);
    naive_sum += v;
    naive_sq += v * v;
  }
  double mean = naive_sum / n;
  double var = (naive_sq - n * mean * mean) / (n - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-6);
  EXPECT_NEAR(s.variance(), var, var * 1e-9);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(90.0), 90.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 1.0);
}

TEST(Summary, Ci95ShrinksWithSamples) {
  Summary small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2 ? 1.0 : -1.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 ? 1.0 : -1.0);
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(Summary, Merge) {
  Summary a, b;
  for (double v : {1.0, 2.0, 3.0}) a.add(v);
  for (double v : {4.0, 5.0}) b.add(v);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Summary, ToStringMentionsCount) {
  Summary s;
  s.add(2.0);
  s.add(4.0);
  EXPECT_NE(s.to_string().find("n=2"), std::string::npos);
}

}  // namespace
}  // namespace spr
