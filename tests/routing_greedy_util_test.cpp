#include "routing/greedy_util.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace spr {
namespace {

TEST(GreedyUtil, PicksClosestToDestination) {
  // u=0 at origin; candidates 1 (closer to dest) and 2 (closer to u).
  auto g = test::make_graph(
      {{0.0, 0.0}, {15.0, 0.0}, {5.0, 0.0}, {50.0, 0.0}}, 20.0);
  NodeId v = greedy_successor(g, 0, g.position(3));
  EXPECT_EQ(v, 1u);
}

TEST(GreedyUtil, LocalMinimumReturnsInvalid) {
  // All neighbors farther from the destination than u.
  auto g = test::make_graph(
      {{0.0, 0.0}, {-10.0, 0.0}, {0.0, -10.0}, {100.0, 0.0}}, 20.0);
  EXPECT_EQ(greedy_successor(g, 0, g.position(3)), kInvalidNode);
}

TEST(GreedyUtil, RequiresStrictProgress) {
  // Neighbor exactly as far as u: not progress.
  auto g = test::make_graph({{0.0, 0.0}, {0.0, 10.0}, {50.0, 5.0}}, 20.0);
  double d_u = distance(g.position(0), g.position(2));
  double d_v = distance(g.position(1), g.position(2));
  ASSERT_NEAR(d_u, d_v, 1e-9);
  EXPECT_EQ(greedy_successor(g, 0, g.position(2)), kInvalidNode);
}

TEST(GreedyUtil, ZoneGreedyRespectsRequestZone) {
  // Neighbor 1 advances but lies outside the request zone (north of d's y).
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 12.0}, {10.0, 2.0}, {40.0, 5.0}}, 21.0);
  Vec2 dest = g.position(3);
  ASSERT_TRUE(request_zone(g.position(0), dest).contains(g.position(2)));
  ASSERT_FALSE(request_zone(g.position(0), dest).contains(g.position(1)));
  EXPECT_EQ(zone_greedy_successor(g, 0, dest), 2u);
}

TEST(GreedyUtil, ZoneGreedyEmptyZone) {
  // Only neighbor is behind u: zone has nobody.
  auto g = test::make_graph({{0.0, 0.0}, {-10.0, 0.0}, {40.0, 0.0}}, 20.0);
  EXPECT_EQ(zone_greedy_successor(g, 0, g.position(2)), kInvalidNode);
}

TEST(GreedyUtil, ZoneGreedyNeverIncreasesDistance) {
  // Inside Z(u,d), every point is at most as far from d as u is.
  Network net = test::random_network(400, 17);
  const auto& g = net.graph();
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    NodeId u = static_cast<NodeId>(rng.next_below(g.size()));
    NodeId d = static_cast<NodeId>(rng.next_below(g.size()));
    if (u == d) continue;
    Vec2 dest = g.position(d);
    NodeId v = zone_greedy_successor(g, u, dest);
    if (v == kInvalidNode) continue;
    EXPECT_LE(distance(g.position(v), dest),
              distance(g.position(u), dest) + 1e-9);
  }
}

TEST(GreedyUtil, FilterExcludesCandidates) {
  auto g = test::make_graph(
      {{0.0, 0.0}, {15.0, 0.0}, {10.0, 0.0}, {50.0, 0.0}}, 20.0);
  Vec2 dest = g.position(3);
  EXPECT_EQ(zone_greedy_successor(g, 0, dest), 1u);
  NodeId v = zone_greedy_successor(g, 0, dest,
                                   [](NodeId w) { return w != 1; });
  EXPECT_EQ(v, 2u);
}

TEST(GreedyUtil, ClosestSuccessorIgnoresProgress) {
  // closest_successor may pick a node farther than u (used by recovery).
  auto g = test::make_graph(
      {{0.0, 0.0}, {-10.0, 0.0}, {-15.0, 0.0}, {100.0, 0.0}}, 20.0);
  NodeId v = closest_successor(g, 0, g.position(3), [](NodeId) { return true; });
  EXPECT_EQ(v, 1u);
}

TEST(GreedyUtil, DeliversToDestinationWhenNeighbor) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}}, 20.0);
  EXPECT_EQ(greedy_successor(g, 0, g.position(1)), 1u);
}

}  // namespace
}  // namespace spr
