#include "util/svg.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace spr {
namespace {

Rect world() { return Rect::from_bounds({0.0, 0.0}, {100.0, 50.0}); }

TEST(Svg, DocumentSkeleton) {
  SvgCanvas canvas(world(), 2.0);
  std::string doc = canvas.render();
  EXPECT_NE(doc.find("<?xml"), std::string::npos);
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_NE(doc.find("width=\"200\""), std::string::npos);   // 100m * 2
  EXPECT_NE(doc.find("height=\"100\""), std::string::npos);  // 50m * 2
}

TEST(Svg, CircleCoordinatesFlipY) {
  SvgCanvas canvas(world(), 1.0);
  canvas.circle({10.0, 10.0}, 2.0, "red");
  std::string doc = canvas.render();
  // world y=10 with height 50 -> svg y = 40.
  EXPECT_NE(doc.find("cx=\"10\""), std::string::npos);
  EXPECT_NE(doc.find("cy=\"40\""), std::string::npos);
  EXPECT_NE(doc.find("r=\"2\""), std::string::npos);
  EXPECT_NE(doc.find("fill=\"red\""), std::string::npos);
}

TEST(Svg, LineAndPolyline) {
  SvgCanvas canvas(world(), 1.0);
  canvas.line({0.0, 0.0}, {10.0, 0.0}, "blue", 0.5);
  canvas.polyline({{0.0, 0.0}, {5.0, 5.0}, {10.0, 0.0}}, "green", 0.25);
  std::string doc = canvas.render();
  EXPECT_NE(doc.find("<line"), std::string::npos);
  EXPECT_NE(doc.find("<polyline"), std::string::npos);
  EXPECT_EQ(canvas.element_count(), 2u);
}

TEST(Svg, PolylineNeedsTwoPoints) {
  SvgCanvas canvas(world(), 1.0);
  canvas.polyline({{1.0, 1.0}}, "green", 0.25);
  EXPECT_EQ(canvas.element_count(), 0u);
}

TEST(Svg, RectUsesTopLeft) {
  SvgCanvas canvas(world(), 1.0);
  canvas.rect(Rect::from_corners({10.0, 10.0}, {30.0, 20.0}), "gray", "none",
              0.0);
  std::string doc = canvas.render();
  EXPECT_NE(doc.find("x=\"10\""), std::string::npos);
  EXPECT_NE(doc.find("y=\"30\""), std::string::npos);  // 50 - 20
  EXPECT_NE(doc.find("width=\"20\""), std::string::npos);
  EXPECT_NE(doc.find("height=\"10\""), std::string::npos);
}

TEST(Svg, PolygonElement) {
  SvgCanvas canvas(world(), 1.0);
  canvas.polygon(Polygon({{0.0, 0.0}, {10.0, 0.0}, {5.0, 10.0}}), "yellow",
                 "black", 0.1);
  EXPECT_NE(canvas.render().find("<polygon"), std::string::npos);
  // Degenerate polygons emit nothing.
  canvas.polygon(Polygon({{0.0, 0.0}, {1.0, 1.0}}), "x", "y", 0.1);
  EXPECT_EQ(canvas.element_count(), 1u);
}

TEST(Svg, TextElement) {
  SvgCanvas canvas(world(), 1.0);
  canvas.text({5.0, 5.0}, "hello", 3.0);
  std::string doc = canvas.render();
  EXPECT_NE(doc.find(">hello</text>"), std::string::npos);
}

TEST(Svg, WriteFileRoundTrip) {
  SvgCanvas canvas(world(), 1.0);
  canvas.circle({1.0, 1.0}, 1.0, "black");
  std::string path = "/tmp/spr_svg_test.svg";
  ASSERT_TRUE(canvas.write_file(path));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, canvas.render());
  std::remove(path.c_str());
}

TEST(Svg, WriteFileFailsOnBadPath) {
  SvgCanvas canvas(world(), 1.0);
  EXPECT_FALSE(canvas.write_file("/nonexistent_dir_xyz/file.svg"));
}

}  // namespace
}  // namespace spr
