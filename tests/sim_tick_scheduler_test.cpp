#include "sim/tick_scheduler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "util/check.h"

namespace spr {
namespace {

TEST(TickBuckets, SameInstantSharesOneBucketInScheduleOrder) {
  TickBuckets ticks;
  auto a = ticks.schedule(1.25, 7);
  auto b = ticks.schedule(1.25, 3);
  auto c = ticks.schedule(1.25, 9);
  EXPECT_TRUE(a.created);
  EXPECT_FALSE(b.created);
  EXPECT_FALSE(c.created);
  EXPECT_EQ(b.slot, a.slot);
  EXPECT_EQ(c.slot, a.slot);
  EXPECT_EQ(ticks.pending(), 3u);
  EXPECT_EQ(ticks.live_buckets(), 1u);
  std::vector<std::uint32_t> batch = ticks.take(a.slot);
  EXPECT_EQ(batch, (std::vector<std::uint32_t>{7, 3, 9}));
  EXPECT_EQ(ticks.pending(), 0u);
  EXPECT_EQ(ticks.live_buckets(), 0u);
}

TEST(TickBuckets, DistinctInstantsGetDistinctBuckets) {
  TickBuckets ticks;
  auto a = ticks.schedule(1.0, 1);
  auto b = ticks.schedule(2.0, 2);
  EXPECT_TRUE(a.created);
  EXPECT_TRUE(b.created);
  EXPECT_NE(a.slot, b.slot);
  EXPECT_EQ(ticks.live_buckets(), 2u);
  EXPECT_EQ(ticks.take(a.slot), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(ticks.take(b.slot), (std::vector<std::uint32_t>{2}));
}

TEST(TickBuckets, TimesAreKeyedOnExactBits) {
  // 0.1 + 0.2 != 0.3 in binary floating point: the scheduler must NOT
  // bucket them together, exactly as a heap would not pop them at equal
  // times.
  TickBuckets ticks;
  auto a = ticks.schedule(0.1 + 0.2, 1);
  auto b = ticks.schedule(0.3, 2);
  EXPECT_TRUE(a.created);
  EXPECT_TRUE(b.created);
  EXPECT_NE(a.slot, b.slot);
}

TEST(TickBuckets, TakenTimeRestartsAFreshBucket) {
  // A zero-delay reschedule lands at the current instant *after* its
  // bucket fired: it must start a new bucket (a later FIFO position), not
  // resurrect the taken one.
  TickBuckets ticks;
  auto a = ticks.schedule(1.0, 1);
  EXPECT_EQ(ticks.take(a.slot), (std::vector<std::uint32_t>{1}));
  auto b = ticks.schedule(1.0, 2);
  EXPECT_TRUE(b.created);
  EXPECT_EQ(ticks.take(b.slot), (std::vector<std::uint32_t>{2}));
}

TEST(TickBuckets, StaleIndexEntryDoesNotJoinARecycledSlot) {
  // Take time T1's bucket, recycle its slot for time T2, then schedule at
  // T1 again: the stale index entry for T1 still names the recycled slot,
  // but the bucket now belongs to T2 — the scheduler must create a fresh
  // bucket for T1 instead of leaking id 3 into T2's batch.
  TickBuckets ticks;
  auto t1 = ticks.schedule(1.0, 1);
  EXPECT_EQ(ticks.take(t1.slot), (std::vector<std::uint32_t>{1}));
  auto t2 = ticks.schedule(2.0, 2);
  EXPECT_TRUE(t2.created);
  EXPECT_EQ(t2.slot, t1.slot);  // the free list recycled the slot
  auto again = ticks.schedule(1.0, 3);
  EXPECT_TRUE(again.created);
  EXPECT_NE(again.slot, t2.slot);
  EXPECT_EQ(ticks.take(t2.slot), (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(ticks.take(again.slot), (std::vector<std::uint32_t>{3}));
}

TEST(TickBuckets, TakingADeadSlotFailsTheCheck) {
  ScopedCheckHandler guard(throwing_check_handler);
  TickBuckets ticks;
  EXPECT_THROW(ticks.take(0), CheckError);  // never created
  auto a = ticks.schedule(1.0, 1);
  ticks.take(a.slot);
  EXPECT_THROW(ticks.take(a.slot), CheckError);  // already taken
}

TEST(TickBuckets, BatchedDrainMatchesPerItemEventQueue) {
  // The equivalence property behind the flight-record engine: draining
  // tick batches through a shared EventQueue visits exactly the (time, id)
  // sequence a one-event-per-item heap visits. Items start at colliding
  // times and reschedule themselves with a per-(id, hop) delay drawn from
  // a small set that includes 0 (the taken-bucket re-creation edge) — all
  // decisions are pure functions of (id, hop) so both drains see the same
  // workload.
  constexpr std::uint32_t kItems = 64;
  constexpr int kMaxHops = 40;
  auto continues = [](std::uint32_t id, int hop) {
    return hop < kMaxHops &&
           (id * 2654435761u + static_cast<std::uint32_t>(hop) * 97u) % 11u !=
               0u;
  };
  const double kDelays[] = {0.25, 0.5, 0.0, 1.0};
  auto delay_of = [&kDelays](std::uint32_t id, int hop) {
    return kDelays[(id + static_cast<std::uint32_t>(hop)) % 4u];
  };
  auto start_of = [](std::uint32_t id) {
    return 0.5 * static_cast<double>(id % 8u);
  };

  // Reference drain: one heap event per item per hop.
  std::vector<std::pair<double, std::uint32_t>> ref_order;
  std::size_t ref_events = 0;
  {
    EventQueue<std::uint32_t> queue;
    std::vector<int> hop(kItems, 0);
    for (std::uint32_t i = 0; i < kItems; ++i) queue.push(start_of(i), i);
    while (!queue.empty()) {
      auto timed = queue.pop();
      ++ref_events;
      ref_order.push_back({timed.time, timed.event});
      int h = hop[timed.event]++;
      if (continues(timed.event, h)) {
        queue.push(timed.time + delay_of(timed.event, h), timed.event);
      }
    }
  }

  // Ticked drain: one heap event per distinct instant, ids batched.
  std::vector<std::pair<double, std::uint32_t>> tick_order;
  std::size_t tick_events = 0;
  {
    EventQueue<std::uint32_t> queue;  // event payload = bucket slot
    TickBuckets ticks;
    std::vector<int> hop(kItems, 0);
    auto schedule = [&ticks, &queue](double when, std::uint32_t id) {
      auto scheduled = ticks.schedule(when, id);
      if (scheduled.created) queue.push(when, scheduled.slot);
    };
    for (std::uint32_t i = 0; i < kItems; ++i) schedule(start_of(i), i);
    while (!queue.empty()) {
      auto timed = queue.pop();
      ++tick_events;
      std::vector<std::uint32_t> batch = ticks.take(timed.event);
      for (std::uint32_t id : batch) {
        tick_order.push_back({timed.time, id});
        int h = hop[id]++;
        if (continues(id, h)) schedule(timed.time + delay_of(id, h), id);
      }
    }
  }

  EXPECT_EQ(tick_order, ref_order);
  // Batching must actually collapse events, not just relabel them.
  EXPECT_LT(tick_events, ref_events);
}

}  // namespace
}  // namespace spr
