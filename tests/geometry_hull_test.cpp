#include "geometry/hull.h"

#include <gtest/gtest.h>

#include "deploy/rng.h"
#include "geometry/vec2.h"

namespace spr {
namespace {

TEST(Hull, SquareWithInteriorPoint) {
  std::vector<Vec2> pts = {{0.0, 0.0}, {2.0, 0.0}, {2.0, 2.0}, {0.0, 2.0},
                           {1.0, 1.0}};
  auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 4u);
  for (Vec2 v : hull) EXPECT_NE(v, Vec2(1.0, 1.0));
}

TEST(Hull, CollinearPointsDropped) {
  std::vector<Vec2> pts = {{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {2.0, 2.0},
                           {0.0, 2.0}};
  auto hull = convex_hull(pts);
  EXPECT_EQ(hull.size(), 4u);
}

TEST(Hull, CcwOrientation) {
  auto hull = convex_hull({{0.0, 0.0}, {4.0, 0.0}, {4.0, 3.0}, {0.0, 3.0},
                           {2.0, 1.0}});
  ASSERT_GE(hull.size(), 3u);
  double area2 = 0.0;
  for (std::size_t i = 0, j = hull.size() - 1; i < hull.size(); j = i++) {
    area2 += hull[j].cross(hull[i]);
  }
  EXPECT_GT(area2, 0.0);  // CCW
}

TEST(Hull, DegenerateInputs) {
  EXPECT_TRUE(convex_hull({}).empty());
  EXPECT_EQ(convex_hull({{1.0, 1.0}}).size(), 1u);
  EXPECT_EQ(convex_hull({{1.0, 1.0}, {2.0, 2.0}}).size(), 2u);
  EXPECT_EQ(convex_hull({{1.0, 1.0}, {1.0, 1.0}}).size(), 1u);  // duplicates
}

TEST(Hull, AllPointsInsideHullPolygon) {
  Rng rng(42);
  std::vector<Vec2> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  Polygon hull = convex_hull_polygon(pts);
  for (Vec2 p : pts) EXPECT_TRUE(hull.contains(p));
}

TEST(Hull, IndicesReferenceInput) {
  std::vector<Vec2> pts = {{1.0, 1.0}, {0.0, 0.0}, {2.0, 0.0}, {2.0, 2.0},
                           {0.0, 2.0}};
  auto idx = convex_hull_indices(pts);
  EXPECT_EQ(idx.size(), 4u);
  for (std::size_t i : idx) {
    EXPECT_LT(i, pts.size());
    EXPECT_NE(pts[i], Vec2(1.0, 1.0));
  }
}

TEST(Hull, DistanceToBoundary) {
  auto hull = convex_hull({{0.0, 0.0}, {4.0, 0.0}, {4.0, 4.0}, {0.0, 4.0}});
  EXPECT_DOUBLE_EQ(distance_to_hull_boundary(hull, {2.0, 2.0}), 2.0);  // center
  EXPECT_DOUBLE_EQ(distance_to_hull_boundary(hull, {2.0, 0.0}), 0.0);  // on edge
  EXPECT_DOUBLE_EQ(distance_to_hull_boundary(hull, {2.0, -3.0}), 3.0); // outside
  EXPECT_DOUBLE_EQ(distance_to_hull_boundary(hull, {0.0, 0.0}), 0.0);  // vertex
}

TEST(Hull, DistanceDegenerate) {
  EXPECT_DOUBLE_EQ(distance_to_hull_boundary({{1.0, 1.0}}, {4.0, 5.0}), 5.0);
}

}  // namespace
}  // namespace spr
