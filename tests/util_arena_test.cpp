#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "core/experiment.h"
#include "graph/graph_algos.h"
#include "report/serialize.h"
#include "test_helpers.h"

namespace spr {
namespace {

TEST(Arena, AllocationsAreDisjointAndAligned) {
  Arena arena(128);
  char* a = static_cast<char*>(arena.allocate(10, 1));
  char* b = static_cast<char*>(arena.allocate(10, 1));
  EXPECT_NE(a, b);
  std::memset(a, 0xAA, 10);
  std::memset(b, 0xBB, 10);
  EXPECT_EQ(static_cast<unsigned char>(a[9]), 0xAA);  // no overlap

  void* d = arena.allocate(1, 1);
  void* aligned = arena.allocate(8, 64);
  EXPECT_NE(d, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(aligned) % 64, 0u);
  EXPECT_GE(arena.bytes_allocated(), 29u);
}

TEST(Arena, GrowsBeyondTheFirstBlock) {
  Arena arena(64);
  // Far more than the first block; every allocation must still succeed
  // and be writable.
  for (int i = 0; i < 100; ++i) {
    void* p = arena.allocate(100, 8);
    std::memset(p, i, 100);
  }
  EXPECT_GE(arena.capacity(), 100u * 100u);
}

TEST(Arena, ResetKeepsTheHighWaterBlock) {
  Arena arena(64);
  for (int i = 0; i < 50; ++i) arena.allocate(200, 8);
  std::size_t grown = arena.capacity();
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  std::size_t kept = arena.capacity();
  EXPECT_GT(kept, 0u);
  EXPECT_LE(kept, grown);
  // A second identical pass must fit the kept block: capacity is stable.
  for (int i = 0; i < 50; ++i) arena.allocate(200, 8);
  EXPECT_EQ(arena.capacity(), kept);
}

TEST(Arena, VectorGrowsThroughTheArena) {
  Arena arena;
  ArenaVector<int> v{ArenaAllocator<int>(arena)};
  for (int i = 0; i < 10000; ++i) v.push_back(i);
  for (int i = 0; i < 10000; ++i) ASSERT_EQ(v[i], i);
  EXPECT_GE(arena.bytes_allocated(), 10000u * sizeof(int));
}

TEST(Arena, OracleBatchScratchVariantMatchesHeapVariant) {
  Network net = test::random_network(450, 19);
  Rng rng(2);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 12; ++i) {
    auto pair = net.random_connected_interior_pair(rng);
    if (pair.first != kInvalidNode) pairs.push_back(pair);
  }
  // Repeat sources so the grouping actually groups.
  if (pairs.size() >= 2) pairs.push_back({pairs[0].first, pairs[1].second});
  ASSERT_FALSE(pairs.empty());

  OracleBatch heap(net.graph(), pairs);
  Arena arena;
  OracleBatch scratch(net.graph(), pairs, &arena);
  ASSERT_EQ(heap.size(), scratch.size());
  EXPECT_EQ(heap.distinct_sources(), scratch.distinct_sources());
  EXPECT_GT(arena.bytes_allocated(), 0u);
  for (std::size_t i = 0; i < heap.size(); ++i) {
    EXPECT_EQ(heap.hop_optimal(i).path, scratch.hop_optimal(i).path);
    EXPECT_EQ(heap.hop_optimal(i).length, scratch.hop_optimal(i).length);
    EXPECT_EQ(heap.length_optimal(i).path, scratch.length_optimal(i).path);
    EXPECT_EQ(heap.length_optimal(i).length, scratch.length_optimal(i).length);
  }
}

TEST(Arena, SweepCellIdenticalWithAndWithoutArena) {
  SweepConfig config;
  config.node_counts = {450};
  config.networks_per_point = 1;
  config.pairs_per_network = 10;
  config.threads = 1;
  config.schemes = SweepConfig::paper_schemes();

  config.cell_arena = true;
  CellResult with_arena = run_sweep_cell(config, 450, 0);
  config.cell_arena = false;
  CellResult without_arena = run_sweep_cell(config, 450, 0);

  JsonWriter a, b;
  to_json(a, with_arena);
  to_json(b, without_arena);
  EXPECT_EQ(a.str(), b.str());  // bit-identical aggregates, samples and all
}

}  // namespace
}  // namespace spr
