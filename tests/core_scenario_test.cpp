#include "core/scenario.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

namespace spr {
namespace {

TEST(JsonWriter, NestedContainersAndEscaping) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("line\nbreak \"quoted\"");
  w.key("count").value(3);
  w.key("ratio").value(0.5);
  w.key("ok").value(true);
  w.key("missing").null();
  w.key("list").begin_array();
  w.value(1).value(2);
  w.begin_object().key("x").value(7).end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"line\\nbreak \\\"quoted\\\"\",\"count\":3,"
            "\"ratio\":0.5,\"ok\":true,\"missing\":null,"
            "\"list\":[1,2,{\"x\":7}]}");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(ScenarioSuite, BuiltinRegistersTheNamedScenarios) {
  const auto& suite = ScenarioSuite::builtin();
  for (const char* name :
       {"fig5-max-hops", "fig6-avg-hops", "fig7-path-length", "ablation",
        "hole-field", "failure-dynamics", "mobile-stream", "sweep-scaling"}) {
    EXPECT_NE(suite.find(name), nullptr) << name;
  }
  EXPECT_EQ(suite.find("no-such-scenario"), nullptr);
}

TEST(ScenarioSuite, UnknownScenarioReturns2) {
  EXPECT_EQ(ScenarioSuite::builtin().run("no-such-scenario"), 2);
}

TEST(ScenarioSuite, SweepScalingVerifiesDeterminismAndWritesJson) {
  std::string json_path =
      testing::TempDir() + "/spr_scenario_scaling_test.json";
  ScenarioOptions opts;
  opts.networks = 2;
  opts.pairs = 2;
  opts.threads = 3;
  opts.json_path = json_path;
  ASSERT_EQ(ScenarioSuite::builtin().run("sweep-scaling", opts), 0);

  std::ifstream in(json_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string json = buffer.str();
  EXPECT_NE(json.find("\"scenario\":\"sweep-scaling\""), std::string::npos);
  EXPECT_NE(json.find("\"bit_identical\":true"), std::string::npos);
  EXPECT_NE(json.find("\"speedup\":"), std::string::npos);
  std::remove(json_path.c_str());
}

TEST(ScenarioSuite, SweepResultsIdenticalDetectsDivergence) {
  SweepConfig config;
  config.node_counts = {400};
  config.networks_per_point = 1;
  config.pairs_per_network = 2;
  config.schemes = SweepConfig::paper_schemes();
  auto a = run_sweep(config);
  auto b = run_sweep(config);
  EXPECT_TRUE(sweep_results_identical(a, b));
  b[0].by_scheme.at("GF").attempted += 1;
  EXPECT_FALSE(sweep_results_identical(a, b));
}

TEST(ScenarioOptions, FromEnvReadsOverrides) {
  ::setenv("SPR_NETWORKS", "5", 1);
  ::setenv("SPR_PAIRS", "3", 1);
  ::setenv("SPR_THREADS", "2", 1);
  ::setenv("SPR_JSON", "/tmp/x.json", 1);
  ScenarioOptions opts = scenario_options_from_env();
  EXPECT_EQ(opts.networks, 5);
  EXPECT_EQ(opts.pairs, 3);
  EXPECT_EQ(opts.threads, 2);
  EXPECT_EQ(opts.json_path, "/tmp/x.json");
  ::unsetenv("SPR_NETWORKS");
  ::unsetenv("SPR_PAIRS");
  ::unsetenv("SPR_THREADS");
  ::unsetenv("SPR_JSON");
  ScenarioOptions defaults = scenario_options_from_env();
  EXPECT_EQ(defaults.networks, 0);
  EXPECT_TRUE(defaults.json_path.empty());
}

}  // namespace
}  // namespace spr
