#include "core/scenario.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

namespace spr {
namespace {

TEST(JsonWriter, NestedContainersAndEscaping) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("line\nbreak \"quoted\"");
  w.key("count").value(3);
  w.key("ratio").value(0.5);
  w.key("ok").value(true);
  w.key("missing").null();
  w.key("list").begin_array();
  w.value(1).value(2);
  w.begin_object().key("x").value(7).end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"line\\nbreak \\\"quoted\\\"\",\"count\":3,"
            "\"ratio\":0.5,\"ok\":true,\"missing\":null,"
            "\"list\":[1,2,{\"x\":7}]}");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(ScenarioSuite, BuiltinRegistersTheNamedScenarios) {
  const auto& suite = ScenarioSuite::builtin();
  for (const char* name :
       {"fig5-max-hops", "fig6-avg-hops", "fig7-path-length", "ablation",
        "hole-field", "failure-dynamics", "mobile-stream", "sweep-scaling"}) {
    EXPECT_NE(suite.find(name), nullptr) << name;
  }
  EXPECT_EQ(suite.find("no-such-scenario"), nullptr);
}

TEST(ScenarioSuite, UnknownScenarioReturns2) {
  EXPECT_EQ(ScenarioSuite::builtin().run("no-such-scenario"), 2);
}

TEST(ScenarioSuite, SweepScalingVerifiesDeterminismAndWritesJson) {
  std::string json_path =
      testing::TempDir() + "/spr_scenario_scaling_test.json";
  ScenarioOptions opts;
  opts.networks = 2;
  opts.pairs = 2;
  opts.threads = 3;
  opts.json_path = json_path;
  ASSERT_EQ(ScenarioSuite::builtin().run("sweep-scaling", opts), 0);

  std::ifstream in(json_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string json = buffer.str();
  EXPECT_NE(json.find("\"scenario\":\"sweep-scaling\""), std::string::npos);
  EXPECT_NE(json.find("\"bit_identical\":true"), std::string::npos);
  EXPECT_NE(json.find("\"speedup\":"), std::string::npos);
  std::remove(json_path.c_str());
}

TEST(ScenarioSuite, SweepResultsIdenticalDetectsDivergence) {
  SweepConfig config;
  config.node_counts = {400};
  config.networks_per_point = 1;
  config.pairs_per_network = 2;
  config.schemes = SweepConfig::paper_schemes();
  auto a = run_sweep(config);
  auto b = run_sweep(config);
  EXPECT_TRUE(sweep_results_identical(a, b));
  b[0].by_scheme.at("GF").attempted += 1;
  EXPECT_FALSE(sweep_results_identical(a, b));
}

void clear_scenario_env() {
  for (const char* name : {"SPR_NETWORKS", "SPR_PAIRS", "SPR_SEED",
                           "SPR_THREADS", "SPR_FORMATS", "SPR_JSON",
                           "SPR_CSV", "SPR_SVG"}) {
    ::unsetenv(name);
  }
}

TEST(ScenarioOptions, FromEnvReadsOverrides) {
  ::setenv("SPR_NETWORKS", "5", 1);
  ::setenv("SPR_PAIRS", "3", 1);
  ::setenv("SPR_SEED", "11", 1);
  ::setenv("SPR_THREADS", "2", 1);
  ::setenv("SPR_FORMATS", "console,json", 1);
  ::setenv("SPR_JSON", "/tmp/x.json", 1);
  ::setenv("SPR_CSV", "/tmp/x.csv", 1);
  ::setenv("SPR_SVG", "/tmp/x.svg", 1);
  ScenarioOptions opts = scenario_options_from_env();
  EXPECT_EQ(opts.networks, 5);
  EXPECT_EQ(opts.pairs, 3);
  EXPECT_EQ(opts.seed, 11u);
  EXPECT_EQ(opts.threads, 2);
  EXPECT_EQ(opts.formats, "console,json");
  EXPECT_EQ(opts.json_path, "/tmp/x.json");
  EXPECT_EQ(opts.csv_path, "/tmp/x.csv");
  EXPECT_EQ(opts.svg_path, "/tmp/x.svg");
  clear_scenario_env();
  ScenarioOptions defaults = scenario_options_from_env();
  EXPECT_EQ(defaults.networks, 0);
  EXPECT_TRUE(defaults.formats.empty());
  EXPECT_TRUE(defaults.json_path.empty());
  EXPECT_TRUE(defaults.csv_path.empty());
  EXPECT_TRUE(defaults.svg_path.empty());
}

TEST(ScenarioOptions, FromEnvFallsBackOnMalformedValues) {
  // Non-numeric, partially numeric, and empty values are not numbers:
  // every numeric knob falls back to its default instead of UB/garbage.
  for (const char* bad : {"abc", "12abc", "", " ", "1.5", "0x10"}) {
    ::setenv("SPR_NETWORKS", bad, 1);
    ::setenv("SPR_PAIRS", bad, 1);
    ::setenv("SPR_SEED", bad, 1);
    ::setenv("SPR_THREADS", bad, 1);
    ScenarioOptions opts = scenario_options_from_env();
    EXPECT_EQ(opts.networks, 0) << "'" << bad << "'";
    EXPECT_EQ(opts.pairs, 0) << "'" << bad << "'";
    EXPECT_EQ(opts.seed, 0u) << "'" << bad << "'";
    EXPECT_EQ(opts.threads, 0) << "'" << bad << "'";
  }
  clear_scenario_env();
}

TEST(ScenarioOptions, FromEnvFallsBackOnNegativeValues) {
  ::setenv("SPR_NETWORKS", "-5", 1);
  ::setenv("SPR_PAIRS", "-1", 1);
  ::setenv("SPR_SEED", "-2009", 1);
  ::setenv("SPR_THREADS", "-8", 1);
  ScenarioOptions opts = scenario_options_from_env();
  EXPECT_EQ(opts.networks, 0);
  EXPECT_EQ(opts.pairs, 0);
  EXPECT_EQ(opts.seed, 0u);
  EXPECT_EQ(opts.threads, 0);
  clear_scenario_env();
}

TEST(ScenarioOptions, FromEnvFallsBackOnOverflowValues) {
  for (const char* huge :
       {"99999999999999999999", "2147483648", "-99999999999999999999"}) {
    ::setenv("SPR_NETWORKS", huge, 1);
    ::setenv("SPR_PAIRS", huge, 1);
    ::setenv("SPR_THREADS", huge, 1);
    ScenarioOptions opts = scenario_options_from_env();
    EXPECT_EQ(opts.networks, 0) << huge;
    EXPECT_EQ(opts.pairs, 0) << huge;
    EXPECT_EQ(opts.threads, 0) << huge;
  }
  // The seed is a full uint64: values past INT_MAX are real seeds, only
  // values past UINT64_MAX (or negative) fall back.
  ::setenv("SPR_SEED", "3000000000", 1);
  EXPECT_EQ(scenario_options_from_env().seed, 3000000000u);
  ::setenv("SPR_SEED", "18446744073709551615", 1);
  EXPECT_EQ(scenario_options_from_env().seed, 18446744073709551615u);
  for (const char* bad : {"99999999999999999999", "-99999999999999999999",
                          "-2009"}) {
    ::setenv("SPR_SEED", bad, 1);
    EXPECT_EQ(scenario_options_from_env().seed, 0u) << bad;
  }
  clear_scenario_env();
}

TEST(ScenarioSuite, SuggestsNearMatchesForUnknownNames) {
  const auto& suite = ScenarioSuite::builtin();
  // Prefix match.
  auto by_prefix = suite.suggestions("fig6");
  ASSERT_FALSE(by_prefix.empty());
  EXPECT_EQ(by_prefix.front(), "fig6-avg-hops");
  // Small typo (edit distance).
  auto by_typo = suite.suggestions("mobile-strem");
  ASSERT_FALSE(by_typo.empty());
  EXPECT_EQ(by_typo.front(), "mobile-stream");
  auto by_typo2 = suite.suggestions("sweep-scalng");
  ASSERT_FALSE(by_typo2.empty());
  EXPECT_EQ(by_typo2.front(), "sweep-scaling");
  // Nothing close.
  EXPECT_TRUE(suite.suggestions("zzzzzzzz").empty());
}

}  // namespace
}  // namespace spr
