#include "graph/graph_algos.h"

#include <gtest/gtest.h>

#include <limits>

#include "test_helpers.h"

namespace spr {
namespace {

constexpr auto kUnreached = std::numeric_limits<std::size_t>::max();

TEST(GraphAlgos, BfsHopsOnLine) {
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {30.0, 0.0}}, 12.0);
  auto dist = bfs_hops(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], 3u);
}

TEST(GraphAlgos, BfsUnreachable) {
  auto g = test::make_graph({{0.0, 0.0}, {100.0, 0.0}}, 10.0);
  auto dist = bfs_hops(g, 0);
  EXPECT_EQ(dist[1], kUnreached);
  EXPECT_FALSE(connected(g, 0, 1));
}

TEST(GraphAlgos, BfsPathEndpoints) {
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {30.0, 0.0}}, 12.0);
  auto sp = bfs_path(g, 0, 3);
  ASSERT_EQ(sp.path.size(), 4u);
  EXPECT_EQ(sp.path.front(), 0u);
  EXPECT_EQ(sp.path.back(), 3u);
  EXPECT_EQ(sp.hops(), 3u);
  EXPECT_DOUBLE_EQ(sp.length, 30.0);
}

TEST(GraphAlgos, BfsPathSameNode) {
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}}, 12.0);
  auto sp = bfs_path(g, 0, 0);
  EXPECT_EQ(sp.path.size(), 1u);
  EXPECT_EQ(sp.hops(), 0u);
}

TEST(GraphAlgos, BfsPathUnreachableEmpty) {
  auto g = test::make_graph({{0.0, 0.0}, {100.0, 0.0}}, 10.0);
  EXPECT_TRUE(bfs_path(g, 0, 1).path.empty());
}

TEST(GraphAlgos, DijkstraPrefersShorterLength) {
  // 0 -> 2 directly (length 20) vs via 1 (two 10.2m hops): direct wins.
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 2.0}, {20.0, 0.0}}, 20.5);
  auto sp = dijkstra_path(g, 0, 2);
  ASSERT_EQ(sp.path.size(), 2u);
  EXPECT_DOUBLE_EQ(sp.length, 20.0);
}

TEST(GraphAlgos, DijkstraVsBfsTradeoff) {
  // BFS minimizes hops, Dijkstra length; on a line they agree.
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {30.0, 0.0}}, 12.0);
  auto bp = bfs_path(g, 0, 3);
  auto dp = dijkstra_path(g, 0, 3);
  EXPECT_EQ(bp.hops(), dp.hops());
  EXPECT_DOUBLE_EQ(bp.length, dp.length);
}

TEST(GraphAlgos, DijkstraLengthNeverBelowEuclidean) {
  Network net = test::random_network(300, 77);
  const auto& g = net.graph();
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    NodeId s = static_cast<NodeId>(rng.next_below(g.size()));
    NodeId d = static_cast<NodeId>(rng.next_below(g.size()));
    auto sp = dijkstra_path(g, s, d);
    if (sp.path.empty()) continue;
    EXPECT_GE(sp.length + 1e-9, distance(g.position(s), g.position(d)));
  }
}

TEST(GraphAlgos, ConnectedComponentsLabels) {
  // Two clusters far apart.
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 0.0}, {200.0, 0.0}, {210.0, 0.0}}, 15.0);
  auto label = connected_components(g);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[2], label[3]);
  EXPECT_NE(label[0], label[2]);
}

TEST(GraphAlgos, LargestComponent) {
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {200.0, 0.0}, {210.0, 0.0}}, 15.0);
  auto comp = largest_component(g);
  EXPECT_EQ(comp.size(), 3u);
  EXPECT_EQ(comp[0], 0u);
  EXPECT_EQ(comp[2], 2u);
}

TEST(GraphAlgos, BfsOptimalityAgainstDijkstraHops) {
  Network net = test::random_network(250, 13);
  const auto& g = net.graph();
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    NodeId s = static_cast<NodeId>(rng.next_below(g.size()));
    NodeId d = static_cast<NodeId>(rng.next_below(g.size()));
    auto bp = bfs_path(g, s, d);
    auto dp = dijkstra_path(g, s, d);
    EXPECT_EQ(bp.path.empty(), dp.path.empty());
    if (bp.path.empty()) continue;
    EXPECT_LE(bp.hops(), dp.hops());          // BFS is hop-optimal
    EXPECT_LE(dp.length, bp.length + 1e-9);   // Dijkstra is length-optimal
  }
}

}  // namespace
}  // namespace spr
