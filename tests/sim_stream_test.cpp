#include "sim/stream_sim.h"

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "graph/graph_algos.h"
#include "report/serialize.h"
#include "report/sink.h"
#include "test_helpers.h"

namespace spr {
namespace {

std::pair<NodeId, NodeId> far_pair(const Network& net, std::uint64_t seed) {
  Rng rng(seed);
  NodeId s = kInvalidNode, d = kInvalidNode;
  double best = -1.0;
  for (int trial = 0; trial < 16; ++trial) {
    auto pair = net.random_connected_interior_pair(rng);
    if (pair.first == kInvalidNode) continue;
    double dist =
        distance(net.graph().position(pair.first), net.graph().position(pair.second));
    if (dist > best) {
      best = dist;
      s = pair.first;
      d = pair.second;
    }
  }
  return {s, d};
}

std::string stream_json(const StreamStats& stats) {
  JsonWriter w;
  to_json(w, stats);
  return w.str();
}

/// With no world events, the stream is the atomic route repeated: per
/// scheme, every packet walks route(s, d) exactly — same hops, length, and
/// an exact per-hop latency.
TEST(StreamSim, StaticStreamMatchesAtomicRoutePerScheme) {
  Network reference = test::random_network(500, 15, DeployModel::kForbiddenAreas);
  auto [s, d] = far_pair(reference, 0x15);
  ASSERT_NE(s, kInvalidNode);

  StreamConfig config;
  config.pairs.emplace_back(s, d);
  config.packets = 8;
  config.packet_interval = 1.0;
  config.hop_delay = 0.25;
  StreamSim sim(test::random_network(500, 15, DeployModel::kForbiddenAreas),
                config);
  StreamStats stats = sim.run();

  auto specs = SweepConfig::paper_schemes();
  ASSERT_EQ(stats.schemes.size(), specs.size());
  for (std::size_t k = 0; k < specs.size(); ++k) {
    const StreamSchemeStats& scheme = stats.schemes[k];
    PathResult atomic = reference.make_router(specs[k].scheme)->route(s, d);
    EXPECT_EQ(scheme.injected, 8u);
    EXPECT_EQ(scheme.label, specs[k].display_label());
    if (atomic.delivered()) {
      EXPECT_EQ(scheme.delivered, 8u) << scheme.label;
      EXPECT_DOUBLE_EQ(scheme.hops.mean(),
                       static_cast<double>(atomic.hops()));
      EXPECT_DOUBLE_EQ(scheme.hops.min(), scheme.hops.max());
      EXPECT_DOUBLE_EQ(scheme.length.mean(), atomic.length);
      // Hop-by-hop timing: h hops at 0.25 virtual seconds each.
      EXPECT_DOUBLE_EQ(scheme.latency.mean(),
                       0.25 * static_cast<double>(atomic.hops()));
      EXPECT_DOUBLE_EQ(scheme.replans.max(), 0.0);
    } else {
      EXPECT_EQ(scheme.delivered, 0u) << scheme.label;
    }
  }
  EXPECT_TRUE(stats.waves.empty());
}

/// A mid-stream blast: outcome counts stay consistent, the wave record
/// carries the incremental relabeling, and the incremental fixpoint
/// matches a from-scratch recompute.
TEST(StreamSim, MidStreamWaveRelabelsIncrementallyAndConsistently) {
  Network net = test::random_network(600, 4, DeployModel::kForbiddenAreas);
  auto [s, d] = far_pair(net, 0x44);
  ASSERT_NE(s, kInvalidNode);
  Vec2 mid = midpoint(net.graph().position(s), net.graph().position(d));
  StreamWave wave;
  wave.time = 5.0;
  for (NodeId u = 0; u < net.graph().size(); ++u) {
    if (u == s || u == d) continue;
    if (distance(net.graph().position(u), mid) <= 30.0) {
      wave.casualties.push_back(u);
    }
  }
  ASSERT_FALSE(wave.casualties.empty());

  StreamConfig config;
  config.pairs.emplace_back(s, d);
  config.packets = 12;
  config.packet_interval = 1.0;
  config.hop_delay = 0.5;  // several packets are mid-flight at t=5
  config.verify_relabeling = true;
  config.waves.push_back(wave);
  StreamSim sim(std::move(net), config);
  StreamStats stats = sim.run();

  ASSERT_EQ(stats.waves.size(), 1u);
  const WaveRecord& record = stats.waves.front();
  EXPECT_DOUBLE_EQ(record.time, 5.0);
  EXPECT_EQ(record.casualties, wave.casualties.size());
  EXPECT_TRUE(record.verified);
  EXPECT_TRUE(record.matches_full_recompute);
  EXPECT_GT(record.relabel.seeds, 0u);
  // Per-update scratch peak: the wave relabeled, so it allocated.
  EXPECT_GT(record.relabel.arena_high_water, 0u);

  for (const StreamSchemeStats& scheme : stats.schemes) {
    EXPECT_EQ(scheme.injected, 12u);
    EXPECT_EQ(scheme.delivered + scheme.dead_end + scheme.ttl_expired +
                  scheme.node_failed,
              scheme.injected)
        << scheme.label;
  }
  // The post-run network is the degraded one.
  EXPECT_FALSE(sim.network().graph().alive(wave.casualties.front()));
}

/// Same (network, config) twice => byte-identical full stream stats.
TEST(StreamSim, RunIsAPureFunctionOfItsInputs) {
  auto run_once = [] {
    Network net = test::random_network(500, 23, DeployModel::kForbiddenAreas);
    auto [s, d] = far_pair(net, 0x23);
    StreamConfig config;
    if (s != kInvalidNode) config.pairs.emplace_back(s, d);
    config.packets = 10;
    config.hop_delay = 0.5;
    StreamWave wave;
    wave.time = 3.0;
    for (NodeId u = 0; u < net.graph().size(); u += 17) {
      if (u != s && u != d) wave.casualties.push_back(u);
    }
    config.waves.push_back(std::move(wave));
    config.mobility_interval = 6.0;  // exercise the re-pin path too
    config.mobility_dt = 15.0;
    StreamSim sim(std::move(net), config);
    return stream_json(sim.run());
  };
  std::string first = run_once();
  std::string second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

/// No endpoints means no traffic: the run terminates immediately even
/// with mobility enabled (the re-pin loop must not wait for injections
/// that can never happen).
TEST(StreamSim, EmptyPairsTerminatesEvenWithMobility) {
  StreamConfig config;
  config.packets = 10;  // clamped: there is nothing to inject
  config.mobility_interval = 1.0;
  StreamSim sim(test::random_network(200, 3), config);
  StreamStats stats = sim.run();
  for (const StreamSchemeStats& scheme : stats.schemes) {
    EXPECT_EQ(scheme.injected, 0u);
  }
  EXPECT_EQ(stats.repins, 0u);
}

/// A mobility re-pin continues the snapshot incrementally and records what
/// it did: moved nodes, the edge delta, and the bidirectional relabeling —
/// which, under verify_relabeling, must match a from-scratch
/// compute_safety at every epoch (statuses and anchors).
TEST(StreamSim, RepinContinuesLabelingIncrementallyAndVerified) {
  Network net = test::random_network(500, 61, DeployModel::kForbiddenAreas);
  auto [s, d] = far_pair(net, 0x61);
  ASSERT_NE(s, kInvalidNode);
  StreamConfig config;
  config.pairs.emplace_back(s, d);
  config.packets = 12;
  config.packet_interval = 1.0;
  config.hop_delay = 0.4;
  config.mobility_interval = 3.0;
  config.mobility_dt = 8.0;
  config.verify_relabeling = true;
  StreamSim sim(std::move(net), config);
  StreamStats stats = sim.run();

  ASSERT_GT(stats.repins, 0u);
  ASSERT_EQ(stats.repin_records.size(), stats.repins);
  for (const RepinRecord& record : stats.repin_records) {
    EXPECT_GT(record.moved, 0u);
    EXPECT_TRUE(record.verified);
    EXPECT_TRUE(record.matches_full_recompute)
        << "re-pin at t=" << record.time
        << ": incremental with_moves labeling diverged from compute_safety";
    EXPECT_GT(record.edges_added + record.edges_removed, 0u);
  }
}

/// Injection at a source killed by an earlier wave is a *defined* drop:
/// every scheme's copy is counted kNodeFailed, never UB.
TEST(StreamSim, InjectionAtDeadSourceCountsAsNodeFailed) {
  Network net = test::random_network(500, 71, DeployModel::kForbiddenAreas);
  auto [s, d] = far_pair(net, 0x71);
  ASSERT_NE(s, kInvalidNode);
  StreamConfig config;
  config.pairs.emplace_back(s, d);
  config.packets = 6;
  config.packet_interval = 1.0;
  config.hop_delay = 10.0;  // nothing delivers before the wave
  StreamWave wave;
  wave.time = 2.5;  // injections 0,1,2 pre-wave; 3,4,5 at a dead source
  wave.casualties.push_back(s);
  config.waves.push_back(wave);
  StreamSim sim(std::move(net), config);
  StreamStats stats = sim.run();

  ASSERT_EQ(stats.waves.size(), 1u);
  EXPECT_EQ(stats.waves.front().casualties, 1u);
  for (const StreamSchemeStats& scheme : stats.schemes) {
    EXPECT_EQ(scheme.injected, 6u);
    // Packets 3..5 inject at the dead source; packets 0..2 were at most one
    // hop out with hop_delay 10, so their copies died with the carrier or
    // re-planned — either way the accounting stays closed.
    EXPECT_GE(scheme.node_failed, 3u) << scheme.label;
    EXPECT_EQ(scheme.delivered + scheme.dead_end + scheme.ttl_expired +
                  scheme.node_failed,
              scheme.injected)
        << scheme.label;
  }
}

/// An out-of-range source id is equally defined: every copy drops as
/// kNodeFailed (and an out-of-range destination cannot crash either).
TEST(StreamSim, OutOfRangeEndpointsAreDefinedDrops) {
  Network net = test::random_network(300, 9);
  NodeId far_id = static_cast<NodeId>(net.graph().size() + 17);
  StreamConfig config;
  config.pairs.emplace_back(far_id, NodeId{3});
  config.pairs.emplace_back(NodeId{3}, far_id);
  config.packets = 4;
  StreamSim sim(std::move(net), config);
  StreamStats stats = sim.run();
  for (const StreamSchemeStats& scheme : stats.schemes) {
    EXPECT_EQ(scheme.injected, 4u);
    // Packets 0 and 2 (dead source) drop; 1 and 3 route toward a
    // nonexistent destination and end in a defined non-delivered outcome.
    EXPECT_GE(scheme.node_failed, 2u);
    EXPECT_EQ(scheme.delivered, 0u);
    EXPECT_EQ(scheme.delivered + scheme.dead_end + scheme.ttl_expired +
                  scheme.node_failed,
              scheme.injected);
  }
}

/// The same-timestamp tie: an injection due exactly at a wave's timestamp
/// fires *before* the wave (FIFO push order — injections are scheduled
/// first), sees the pre-wave substrate, and its copies are then
/// immediately dropped by the wave when the wave kills their carrier.
TEST(StreamSim, InjectionAtWaveTimestampFiresBeforeTheWave) {
  Network net = test::random_network(500, 83, DeployModel::kForbiddenAreas);
  auto [s, d] = far_pair(net, 0x83);
  ASSERT_NE(s, kInvalidNode);
  StreamConfig config;
  config.pairs.emplace_back(s, d);
  config.packets = 3;
  config.packet_interval = 1.0;
  config.hop_delay = 10.0;  // injected copies sit at the source
  StreamWave wave;
  wave.time = 2.0;  // exactly the third packet's injection time
  wave.casualties.push_back(s);
  config.waves.push_back(wave);
  const std::size_t n_schemes = SweepConfig::paper_schemes().size();
  StreamSim sim(std::move(net), config);
  StreamStats stats = sim.run();

  ASSERT_EQ(stats.waves.size(), 1u);
  const WaveRecord& record = stats.waves.front();
  // The t=2 injection ran first: its copies (and the two earlier packets',
  // all still at the source) were alive in-flight when the wave hit, so
  // the wave — not the injection handler — dropped them.
  EXPECT_EQ(record.packets_dropped, 3 * n_schemes);
  for (const StreamSchemeStats& scheme : stats.schemes) {
    EXPECT_EQ(scheme.injected, 3u);
    EXPECT_EQ(scheme.node_failed, 3u) << scheme.label;
  }
}

/// A mobility re-pin rebuilds the snapshot but must not resurrect nodes
/// killed by an earlier failure wave.
TEST(StreamSim, RepinKeepsWaveCasualtiesDead) {
  Network net = test::random_network(400, 27);
  auto [s, d] = far_pair(net, 0x27);
  ASSERT_NE(s, kInvalidNode);
  StreamConfig config;
  config.pairs.emplace_back(s, d);
  config.packets = 12;
  config.packet_interval = 1.0;
  config.hop_delay = 0.4;
  config.mobility_interval = 4.5;  // re-pins fire after the wave
  config.mobility_dt = 10.0;
  StreamWave wave;
  wave.time = 2.0;
  for (NodeId u = 0; u < 30; ++u) {
    if (u != s && u != d) wave.casualties.push_back(u);
  }
  config.waves.push_back(wave);
  StreamSim sim(std::move(net), config);
  StreamStats stats = sim.run();
  ASSERT_GT(stats.repins, 0u);
  for (NodeId u : wave.casualties) {
    EXPECT_FALSE(sim.network().graph().alive(u)) << "node " << u
                                                 << " came back to life";
  }
}

/// Mobility re-pins happen while traffic remains and stop afterwards (the
/// event queue drains), and outcome accounting stays consistent.
TEST(StreamSim, MobilityRepinsRebuildTheSnapshot) {
  Network net = test::random_network(450, 31);
  auto [s, d] = far_pair(net, 0x31);
  ASSERT_NE(s, kInvalidNode);
  StreamConfig config;
  config.pairs.emplace_back(s, d);
  config.packets = 10;
  config.packet_interval = 1.0;
  config.hop_delay = 0.4;
  config.mobility_interval = 2.5;
  config.mobility_dt = 10.0;
  StreamSim sim(std::move(net), config);
  StreamStats stats = sim.run();
  EXPECT_GT(stats.repins, 0u);
  for (const StreamSchemeStats& scheme : stats.schemes) {
    EXPECT_EQ(scheme.injected, 10u);
    EXPECT_EQ(scheme.delivered + scheme.dead_end + scheme.ttl_expired +
                  scheme.node_failed,
              scheme.injected);
  }
}

/// Full-form StreamStats JSON round-trips bit-identically (samples and
/// all), like the sweep cell forms.
TEST(StreamSim, StreamStatsJsonRoundTrip) {
  Network net = test::random_network(500, 8, DeployModel::kForbiddenAreas);
  auto [s, d] = far_pair(net, 0x8);
  ASSERT_NE(s, kInvalidNode);
  StreamConfig config;
  config.pairs.emplace_back(s, d);
  config.packets = 6;
  StreamWave wave;
  wave.time = 2.0;
  for (NodeId u = 0; u < 40; ++u) {
    if (u != s && u != d) wave.casualties.push_back(u);
  }
  config.waves.push_back(std::move(wave));
  config.verify_relabeling = true;
  config.mobility_interval = 2.5;  // repin_records round-trip too
  config.mobility_dt = 8.0;
  StreamSim sim(std::move(net), config);
  StreamStats stats = sim.run();
  ASSERT_GT(stats.repin_records.size(), 0u);

  std::string text = stream_json(stats);
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::parse(text, parsed));
  StreamStats decoded;
  ASSERT_TRUE(from_json(parsed, decoded));
  EXPECT_EQ(stream_json(decoded), text);
}

/// The acceptance contract of the flight-record engine: everything in
/// StreamStats except `events` is byte-identical to the per-hop reference
/// engine — across seeds, failure waves, mobility re-pins, their
/// combination, and thread counts — and tick batching pops strictly fewer
/// heap events than one-event-per-hop.
TEST(StreamSim, FlightRecordEngineMatchesPerHopReferenceByteForByte) {
  struct Case {
    std::uint64_t seed;
    bool waves;
    bool mobility;
  };
  const Case cases[] = {
      {23, false, false}, {23, true, false}, {23, false, true},
      {23, true, true},   {61, true, true},  {83, false, true},
  };
  for (const Case& c : cases) {
    auto run = [&c](StreamEngine engine, int threads, std::size_t* events) {
      Network net =
          test::random_network(500, c.seed, DeployModel::kForbiddenAreas);
      auto [s, d] = far_pair(net, c.seed);
      StreamConfig config;
      if (s != kInvalidNode) config.pairs.emplace_back(s, d);
      config.packets = 10;
      config.packet_interval = 1.0;
      config.hop_delay = 0.5;
      if (c.waves) {
        StreamWave wave;
        wave.time = 3.0;
        for (NodeId u = 0; u < net.graph().size(); u += 17) {
          if (u != s && u != d) wave.casualties.push_back(u);
        }
        config.waves.push_back(std::move(wave));
      }
      if (c.mobility) {
        config.mobility_interval = 2.5;
        config.mobility_dt = 10.0;
      }
      config.engine = engine;
      config.threads = threads;
      StreamSim sim(std::move(net), config);
      StreamStats stats = sim.run();
      *events = stats.events;
      stats.events = 0;  // the one field the engines legitimately differ on
      return stream_json(stats);
    };
    std::size_t ref_events = 0;
    std::size_t tick_events = 0;
    std::size_t threaded_events = 0;
    std::string ref = run(StreamEngine::kPerHopEvents, 1, &ref_events);
    std::string tick = run(StreamEngine::kFlightRecord, 1, &tick_events);
    std::string threaded = run(StreamEngine::kFlightRecord, 4, &threaded_events);
    const char* shape = c.waves ? (c.mobility ? "waves+mobility" : "waves")
                                : (c.mobility ? "mobility" : "plain");
    EXPECT_EQ(tick, ref) << "seed " << c.seed << " " << shape;
    EXPECT_EQ(threaded, tick) << "seed " << c.seed << " " << shape
                              << ": thread count changed the report";
    EXPECT_EQ(threaded_events, tick_events) << "seed " << c.seed << " "
                                            << shape;
    // With a shared hop_delay the dyadic tick times collide across flights,
    // so batching must collapse the heap traffic, not just relabel it.
    EXPECT_LT(tick_events, ref_events) << "seed " << c.seed << " " << shape;
  }
}

/// The streaming-delivery scenario's JSON report is byte-identical across
/// reruns and across thread counts (the acceptance criterion behind
/// SPR_SEED determinism).
TEST(StreamingDeliveryScenario, JsonReportIdenticalSerialVsThreaded) {
  auto render = [](int threads) {
    ScenarioOptions opts;
    opts.networks = 1;
    opts.pairs = 6;
    opts.threads = threads;
    const Scenario* scenario =
        ScenarioSuite::builtin().find("streaming-delivery");
    EXPECT_NE(scenario, nullptr);
    ScenarioReport report;
    report.scenario = scenario->name;
    EXPECT_EQ(scenario->build(opts, report), 0);
    return JsonSink::render(report);
  };
  std::string serial = render(1);
  std::string threaded = render(4);
  std::string threaded_again = render(4);
  EXPECT_EQ(serial, threaded);
  EXPECT_EQ(threaded, threaded_again);
}

/// The mobility-rate scenario's JSON report is byte-identical across
/// reruns and across thread counts, like streaming-delivery.
TEST(MobilityRateScenario, JsonReportIdenticalSerialVsThreaded) {
  auto render = [](int threads) {
    ScenarioOptions opts;
    opts.networks = 1;
    opts.pairs = 6;
    opts.threads = threads;
    const Scenario* scenario = ScenarioSuite::builtin().find("mobility-rate");
    EXPECT_NE(scenario, nullptr);
    ScenarioReport report;
    report.scenario = scenario->name;
    EXPECT_EQ(scenario->build(opts, report), 0);
    return JsonSink::render(report);
  };
  std::string serial = render(1);
  std::string threaded = render(4);
  std::string threaded_again = render(4);
  EXPECT_EQ(serial, threaded);
  EXPECT_EQ(threaded, threaded_again);
}

}  // namespace
}  // namespace spr
