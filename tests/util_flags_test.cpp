#include "util/flags.h"

#include <gtest/gtest.h>

namespace spr {
namespace {

TEST(Flags, ParsesIntAndDouble) {
  int n = 5;
  double x = 1.0;
  FlagSet flags("test");
  flags.add_int("n", &n, "count");
  flags.add_double("x", &x, "factor");
  const char* argv[] = {"prog", "--n=42", "--x", "2.5"};
  ASSERT_TRUE(flags.parse(4, argv));
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(x, 2.5);
}

TEST(Flags, DefaultsSurviveWhenUnset) {
  int n = 7;
  FlagSet flags("test");
  flags.add_int("n", &n, "count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_EQ(n, 7);
}

TEST(Flags, BoolForms) {
  bool verbose = false, color = true;
  FlagSet flags("test");
  flags.add_bool("verbose", &verbose, "v");
  flags.add_bool("color", &color, "c");
  const char* argv[] = {"prog", "--verbose", "--no-color"};
  ASSERT_TRUE(flags.parse(3, argv));
  EXPECT_TRUE(verbose);
  EXPECT_FALSE(color);
}

TEST(Flags, BoolExplicitValue) {
  bool flag = false;
  FlagSet flags("test");
  flags.add_bool("flag", &flag, "f");
  const char* argv[] = {"prog", "--flag=true"};
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_TRUE(flag);
}

TEST(Flags, StringAndUint64) {
  std::string name = "default";
  unsigned long long seed = 0;
  FlagSet flags("test");
  flags.add_string("name", &name, "n");
  flags.add_uint64("seed", &seed, "s");
  const char* argv[] = {"prog", "--name=hello", "--seed=18446744073709551615"};
  ASSERT_TRUE(flags.parse(3, argv));
  EXPECT_EQ(name, "hello");
  EXPECT_EQ(seed, 18446744073709551615ull);
}

TEST(Flags, UnknownFlagFails) {
  FlagSet flags("test");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(Flags, BadValueFails) {
  int n = 0;
  FlagSet flags("test");
  flags.add_int("n", &n, "count");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(Flags, MissingValueFails) {
  int n = 0;
  FlagSet flags("test");
  flags.add_int("n", &n, "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(Flags, HelpReturnsFalse) {
  FlagSet flags("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(Flags, PositionalCollected) {
  FlagSet flags("test");
  const char* argv[] = {"prog", "alpha", "beta"};
  ASSERT_TRUE(flags.parse(3, argv));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "alpha");
  EXPECT_EQ(flags.positional()[1], "beta");
}

TEST(Flags, UsageListsFlagsAndDefaults) {
  int n = 9;
  FlagSet flags("my tool");
  flags.add_int("nodes", &n, "node count");
  std::string usage = flags.usage();
  EXPECT_NE(usage.find("my tool"), std::string::npos);
  EXPECT_NE(usage.find("--nodes"), std::string::npos);
  EXPECT_NE(usage.find("default: 9"), std::string::npos);
  EXPECT_NE(usage.find("node count"), std::string::npos);
}

}  // namespace
}  // namespace spr
