/// \file paper_scenarios_test.cpp
/// Hand-built versions of the situations the paper's figures narrate:
/// Fig. 1(a)'s intertwined blocking areas, Fig. 4's safe-forwarding /
/// backup-path / critical-forbidden cases. Each fixture pins the geometry
/// so the expected mechanism can be asserted deterministically.

#include <gtest/gtest.h>

#include <cmath>

#include "core/network.h"
#include "geometry/segment.h"
#include "graph/graph_algos.h"
#include "routing/trace.h"
#include "safety/regions.h"
#include "test_helpers.h"

namespace spr {
namespace {

/// A field with a large void between source and destination regions, built
/// as a grid so results are deterministic: the paper's basic blocking
/// scenario.
class BlockedFieldScenario : public ::testing::Test {
 protected:
  BlockedFieldScenario() {
    dep_ = test::grid_with_void(
        22, 10.0, Rect::from_corners({70.0, 40.0}, {150.0, 180.0}));
    net_.emplace(Network(dep_, 15.0));
    // West of the void at mid height / east of the void.
    s_ = find_node({50.0, 110.0});
    d_ = find_node({170.0, 110.0});
  }

  NodeId find_node(Vec2 p) {
    for (NodeId u = 0; u < net_->graph().size(); ++u) {
      if (almost_equal(net_->graph().position(u), p)) return u;
    }
    return kInvalidNode;
  }

  Deployment dep_;
  std::optional<Network> net_;
  NodeId s_ = kInvalidNode, d_ = kInvalidNode;
};

TEST_F(BlockedFieldScenario, SetupIsSound) {
  ASSERT_NE(s_, kInvalidNode);
  ASSERT_NE(d_, kInvalidNode);
  EXPECT_TRUE(connected(net_->graph(), s_, d_));
  // The void creates unsafe nodes on its west rim.
  EXPECT_GT(net_->safety().unsafe_node_count(), 0u);
}

TEST_F(BlockedFieldScenario, EverySchemeCrossesTheVoid) {
  for (Scheme scheme : {Scheme::kGf, Scheme::kGfFace, Scheme::kLgf,
                        Scheme::kSlgf, Scheme::kSlgf2}) {
    auto router = net_->make_router(scheme);
    PathResult r = router->route(s_, d_);
    EXPECT_TRUE(r.delivered()) << scheme_name(scheme);
  }
}

TEST_F(BlockedFieldScenario, Slgf2DetourIsCompetitive) {
  auto slgf2 = net_->make_router(Scheme::kSlgf2);
  auto lgf = net_->make_router(Scheme::kLgf);
  PathResult r2 = slgf2->route(s_, d_);
  PathResult rl = lgf->route(s_, d_);
  ASSERT_TRUE(r2.delivered());
  ASSERT_TRUE(rl.delivered());
  // The shape information lets SLGF2 pick a side before reaching the wall;
  // LGF discovers the wall by walking into it.
  EXPECT_LE(r2.hops(), rl.hops());
  // And the detour stays within sight of optimal.
  auto oracle = bfs_path(net_->graph(), s_, d_);
  EXPECT_LE(r2.hops(), oracle.hops() * 3);
}

TEST_F(BlockedFieldScenario, Slgf2AvoidsPerimeterViaBackup) {
  auto slgf2 = net_->make_router(Scheme::kSlgf2);
  PathResult r = slgf2->route(s_, d_);
  ASSERT_TRUE(r.delivered());
  // Fig. 4(d): the unsafe area is circumvented with backup-path forwarding,
  // not the perimeter phase.
  EXPECT_EQ(r.perimeter_hops(), 0u);
}

TEST_F(BlockedFieldScenario, TraceShowsSingleDetourEpisode) {
  auto slgf2 = net_->make_router(Scheme::kSlgf2);
  PathResult r = slgf2->route(s_, d_);
  ASSERT_TRUE(r.delivered());
  RouteTrace trace(net_->graph(), r, d_);
  // One void, one detour around it (allowing one extra micro-episode for
  // the re-approach).
  EXPECT_LE(trace.detours().size(), 2u);
  EXPECT_GT(trace.straightness(), 0.4);
}

/// Fig. 4(a-c): when source and destination are both safe and no unsafe
/// area intervenes, the path is pure safe forwarding in possibly changing
/// zone types.
TEST(PaperScenarios, PureSafeForwardingAcrossZoneTypes) {
  Deployment dep = test::dense_grid_deployment(400, 17);
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  InterestArea area(g, g.range());
  SafetyInfo info = compute_safety(g, area);
  Slgf2Router router(g, info);
  const auto& interior = area.interior_nodes();
  ASSERT_GE(interior.size(), 2u);
  Rng rng(3);
  int zone_change_paths = 0;
  for (int trial = 0; trial < 40; ++trial) {
    NodeId s = interior[rng.next_below(interior.size())];
    NodeId d = interior[rng.next_below(interior.size())];
    if (s == d) continue;
    PathResult r = router.route(s, d);
    ASSERT_TRUE(r.delivered());
    EXPECT_EQ(r.perimeter_hops(), 0u);
    // Count paths whose request-zone type changes en route (Fig. 2(b)).
    Vec2 dest = g.position(d);
    ZoneType first = zone_type(g.position(s), dest);
    for (NodeId u : r.path) {
      if (u == d) break;
      if (zone_type(g.position(u), dest) != first) {
        ++zone_change_paths;
        break;
      }
    }
  }
  EXPECT_GT(zone_change_paths, 0)
      << "sampled paths never changed zone type; fixture too small";
}

/// Fig. 1(b)/4(b): the superseding rule keeps SLGF2's hops out of forbidden
/// regions. Measured behaviorally over random FA networks: for every hop
/// u -> v of a delivered path, count landings where v sits in the forbidden
/// region of a visible estimate that blocks the straight line u -> d. The
/// either-hand rule must not land there more often than the rule-free LGF,
/// and disabling the rule must not *reduce* the landings of SLGF2 itself.
TEST(PaperScenarios, ForbiddenRegionLandingsSuppressed) {
  std::size_t slgf2_landings = 0, ablated_landings = 0, slgf2_hops = 0,
              ablated_hops = 0;
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(550, seed, DeployModel::kForbiddenAreas);
    const auto& g = net.graph();
    const auto& info = net.safety();
    auto full = net.make_router(Scheme::kSlgf2);
    Slgf2Options no_rule;
    no_rule.use_either_hand = false;
    auto ablated = net.make_router(Scheme::kSlgf2, no_rule);

    auto count_landings = [&](const PathResult& r, NodeId d) {
      std::size_t landings = 0;
      Vec2 dest = g.position(d);
      for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
        NodeId u = r.path[i], v = r.path[i + 1];
        if (v == d) continue;
        Vec2 pu = g.position(u);
        for (const auto& e : visible_estimates(g, info, u)) {
          if (!segment_intersects_rect({pu, dest}, e.rect)) continue;
          if (in_forbidden_region(e, dest, g.position(v))) {
            ++landings;
            break;
          }
        }
      }
      return landings;
    };

    Rng rng(seed ^ 0x6a6a);
    for (int trial = 0; trial < 10; ++trial) {
      auto [s, d] = net.random_connected_interior_pair(rng);
      PathResult a = full->route(s, d);
      PathResult b = ablated->route(s, d);
      if (a.delivered()) {
        slgf2_landings += count_landings(a, d);
        slgf2_hops += a.hops();
      }
      if (b.delivered()) {
        ablated_landings += count_landings(b, d);
        ablated_hops += b.hops();
      }
    }
  }
  ASSERT_GT(slgf2_hops, 0u);
  ASSERT_GT(ablated_hops, 0u);
  // Rates, to be robust to slightly different path lengths.
  double with_rule = static_cast<double>(slgf2_landings) /
                     static_cast<double>(slgf2_hops);
  double without_rule = static_cast<double>(ablated_landings) /
                        static_cast<double>(ablated_hops);
  EXPECT_LE(with_rule, without_rule + 1e-9)
      << "with=" << with_rule << " without=" << without_rule;
}

/// Fig. 4(e): an all-unsafe source still delivers via backup/perimeter when
/// the graph is physically connected.
TEST(PaperScenarios, AllUnsafeSourceStillDelivers) {
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(500, seed, DeployModel::kForbiddenAreas);
    const auto& info = net.safety();
    auto slgf2 = net.make_router(Scheme::kSlgf2);
    // Find a node unsafe in its zone type toward some interior destination.
    const auto& interior = net.interest_area().interior_nodes();
    Rng rng(seed);
    int tested = 0;
    for (int trial = 0; trial < 200 && tested < 3; ++trial) {
      NodeId s = interior[rng.next_below(interior.size())];
      NodeId d = interior[rng.next_below(interior.size())];
      if (s == d) continue;
      if (info.tuple(s).any_safe()) continue;  // want tuple near (0,0,0,0)
      if (!connected(net.graph(), s, d)) continue;
      ++tested;
      PathResult r = slgf2->route(s, d);
      EXPECT_TRUE(r.delivered())
          << "all-unsafe source " << s << " failed, seed " << seed;
    }
  }
  SUCCEED();  // all-unsafe sources are rare; the loop asserts when found
}

}  // namespace
}  // namespace spr
