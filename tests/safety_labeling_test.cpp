#include "safety/labeling.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/angle.h"
#include "test_helpers.h"

namespace spr {
namespace {

/// Fig. 3-style fixture: a pocket {u1, u2} with empty type-1 forwarding
/// zones, their predecessor u, and a deeper predecessor w — surrounded by a
/// far-away ring that owns the convex hull (so the pocket is interior).
class PocketFixture : public ::testing::Test {
 protected:
  PocketFixture() {
    // Ring of hull nodes at radius 150 around (100,100).
    for (int i = 0; i < 8; ++i) {
      double a = kTwoPi * i / 8;
      positions_.push_back({100.0 + 150.0 * std::cos(a),
                            100.0 + 150.0 * std::sin(a)});
    }
    w_ = add({90.0, 100.0});
    u_ = add({100.0, 100.0});
    u1_ = add({110.0, 105.0});
    u2_ = add({105.0, 110.0});
    graph_.emplace(test::make_graph(positions_, 20.0));
    area_.emplace(*graph_, 1.0);
    info_ = compute_safety(*graph_, *area_);
  }

  NodeId add(Vec2 p) {
    positions_.push_back(p);
    return static_cast<NodeId>(positions_.size() - 1);
  }

  std::vector<Vec2> positions_;
  std::optional<UnitDiskGraph> graph_;
  std::optional<InterestArea> area_;
  SafetyInfo info_;
  NodeId w_, u_, u1_, u2_;
};

TEST_F(PocketFixture, PocketNodesAreInterior) {
  EXPECT_FALSE(area_->is_edge_node(u_));
  EXPECT_FALSE(area_->is_edge_node(u1_));
  EXPECT_FALSE(area_->is_edge_node(u2_));
  EXPECT_FALSE(area_->is_edge_node(w_));
}

TEST_F(PocketFixture, FirstRoundFlips) {
  // u1 and u2 have no neighbor in their type-1 forwarding zones.
  EXPECT_FALSE(info_.is_safe(u1_, ZoneType::k1));
  EXPECT_FALSE(info_.is_safe(u2_, ZoneType::k1));
}

TEST_F(PocketFixture, SecondRoundPropagation) {
  // u's only type-1 neighbors are the (unsafe) u1, u2; w's are u and u2.
  EXPECT_FALSE(info_.is_safe(u_, ZoneType::k1));
  EXPECT_FALSE(info_.is_safe(w_, ZoneType::k1));
}

TEST_F(PocketFixture, EdgeNodesStayAllSafe) {
  for (NodeId i = 0; i < 8; ++i) {
    EXPECT_EQ(info_.tuple(i).to_string(), "(1,1,1,1)");
  }
}

TEST_F(PocketFixture, AnchorsSelfWhenZoneEmpty) {
  const auto& a1 = info_.tuple(u1_).anchors_for(ZoneType::k1);
  EXPECT_EQ(a1.first, u1_);
  EXPECT_EQ(a1.last, u1_);
  const auto& a2 = info_.tuple(u2_).anchors_for(ZoneType::k1);
  EXPECT_EQ(a2.first, u2_);
  EXPECT_EQ(a2.last, u2_);
}

TEST_F(PocketFixture, AnchorsFollowFirstAndLastScanChains) {
  // At u: CCW scan of Q1 hits u1 first (lower bearing), u2 last.
  const auto& au = info_.tuple(u_).anchors_for(ZoneType::k1);
  EXPECT_EQ(au.first, u1_);
  EXPECT_EQ(au.last, u2_);
  // At w: first hit is u (bearing 0), whose first-anchor is u1.
  const auto& aw = info_.tuple(w_).anchors_for(ZoneType::k1);
  EXPECT_EQ(aw.first, u1_);
  EXPECT_EQ(aw.last, u2_);
}

TEST_F(PocketFixture, EstimatedAreaIsPaperRectangle) {
  // E_1(u) = [x_u : x_{u(1)}, y_u : y_{u(2)}] = [100:110, 100:110].
  const auto& au = info_.tuple(u_).anchors_for(ZoneType::k1);
  Rect e = estimated_area(graph_->position(u_), au);
  EXPECT_EQ(e.lo(), Vec2(100.0, 100.0));
  EXPECT_EQ(e.hi(), Vec2(110.0, 110.0));
  // E_1(w) = [90:110, 100:110].
  const auto& aw = info_.tuple(w_).anchors_for(ZoneType::k1);
  Rect ew = estimated_area(graph_->position(w_), aw);
  EXPECT_EQ(ew.lo(), Vec2(90.0, 100.0));
  EXPECT_EQ(ew.hi(), Vec2(110.0, 110.0));
}

TEST_F(PocketFixture, UnsafeAreaMembers) {
  auto members = unsafe_area_members(*graph_, info_, u_, ZoneType::k1);
  // All four pocket nodes are type-1 unsafe and mutually connected.
  EXPECT_EQ(members.size(), 4u);
  EXPECT_TRUE(std::binary_search(members.begin(), members.end(), w_));
  EXPECT_TRUE(std::binary_search(members.begin(), members.end(), u1_));
  auto none = unsafe_area_members(*graph_, info_, u1_, ZoneType::k2);
  // u1 is type-2 unsafe too (u2's zone-2 chain), so this is non-empty; but
  // querying a *safe* pair must return empty:
  auto safe_query = unsafe_area_members(*graph_, info_, 0, ZoneType::k1);
  EXPECT_TRUE(safe_query.empty());
  (void)none;
}

TEST(SafetyLabeling, HoleFreeGridHasNoUnsafeInterior) {
  Deployment d = test::dense_grid_deployment(400, 3);
  UnitDiskGraph g(d.positions, d.radio_range, d.field);
  InterestArea area(g, d.radio_range);
  SafetyInfo info = compute_safety(g, area);
  for (NodeId u : area.interior_nodes()) {
    EXPECT_TRUE(info.tuple(u).any_safe());
    // A dense perturbed grid leaves every interior node fully safe.
    EXPECT_EQ(info.tuple(u).to_string(), "(1,1,1,1)") << "node " << u;
  }
}

TEST(SafetyLabeling, ForbiddenAreaNetworksHaveUnsafeNodes) {
  // Large holes create quadrant pockets; across seeds, unsafe nodes appear.
  std::size_t total_unsafe = 0;
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(500, seed, DeployModel::kForbiddenAreas);
    total_unsafe += net.safety().unsafe_node_count();
  }
  EXPECT_GT(total_unsafe, 0u);
}

TEST(SafetyLabeling, WorklistMatchesRoundBased) {
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(300, seed, DeployModel::kForbiddenAreas);
    SafetyInfo round_based =
        compute_safety_round_based(net.graph(), net.interest_area());
    EXPECT_EQ(net.safety(), round_based) << "seed " << seed;
  }
}

TEST(SafetyLabeling, FixpointConsistency) {
  // At the fixpoint: interior safe node => has a safe same-type neighbor in
  // the quadrant; unsafe node => every quadrant neighbor is unsafe.
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(400, seed, DeployModel::kForbiddenAreas);
    const auto& g = net.graph();
    const auto& info = net.safety();
    const auto& area = net.interest_area();
    for (NodeId u = 0; u < g.size(); ++u) {
      Vec2 pu = g.position(u);
      for (ZoneType t : kAllZoneTypes) {
        bool has_safe_neighbor = false;
        for (NodeId v : g.neighbors(u)) {
          if (in_quadrant(pu, g.position(v), t) && info.is_safe(v, t)) {
            has_safe_neighbor = true;
            break;
          }
        }
        if (area.is_edge_node(u)) {
          EXPECT_TRUE(info.is_safe(u, t));
        } else if (info.is_safe(u, t)) {
          EXPECT_TRUE(has_safe_neighbor)
              << "safe node " << u << " lacks safe successor, seed " << seed;
        } else {
          EXPECT_FALSE(has_safe_neighbor)
              << "unsafe node " << u << " has safe successor, seed " << seed;
        }
      }
    }
  }
}

TEST(SafetyLabeling, MonotoneUnderDensification) {
  // Adding nodes can only make existing nodes safer (more safe successors),
  // never less safe... this does NOT hold in general (new nodes can be
  // unsafe and new edges don't remove old safe successors, but new unsafe
  // nodes never *cause* flips of previously safe nodes: a previously safe
  // node keeps its safe successor). We assert exactly that weaker form.
  Deployment base = test::dense_grid_deployment(324, 5);  // 18x18
  UnitDiskGraph g1(base.positions, base.radio_range, base.field);
  InterestArea a1(g1, base.radio_range);
  SafetyInfo i1 = compute_safety(g1, a1);

  // Insert strictly interior nodes so the hull (and thus the edge-node set)
  // is unchanged and the greatest-fixpoint argument applies.
  Deployment denser = base;
  Rng rng(99);
  for (int i = 0; i < 80; ++i) {
    denser.positions.push_back({rng.uniform(40.0, 160.0), rng.uniform(40.0, 160.0)});
  }
  UnitDiskGraph g2(denser.positions, denser.radio_range, denser.field);
  InterestArea a2(g2, denser.radio_range);
  SafetyInfo i2 = compute_safety(g2, a2);

  for (NodeId u = 0; u < g1.size(); ++u) {
    if (a1.is_edge_node(u) || a2.is_edge_node(u)) continue;
    for (ZoneType t : kAllZoneTypes) {
      if (i1.is_safe(u, t)) {
        EXPECT_TRUE(i2.is_safe(u, t)) << "node " << u << " type "
                                      << static_cast<int>(t);
      }
    }
  }
}

TEST(SafetyLabeling, AnchorsPresentForEveryUnsafeType) {
  Network net = test::random_network(400, 31, DeployModel::kForbiddenAreas);
  const auto& info = net.safety();
  for (NodeId u = 0; u < info.size(); ++u) {
    for (ZoneType t : kAllZoneTypes) {
      if (!info.is_safe(u, t)) {
        EXPECT_TRUE(info.tuple(u).anchors_for(t).valid())
            << "unsafe node " << u << " lacks anchors";
      }
    }
  }
}

TEST(SafetyLabeling, TupleToString) {
  SafetyTuple t;
  EXPECT_EQ(t.to_string(), "(1,1,1,1)");
  t.set_safe(ZoneType::k2, false);
  EXPECT_EQ(t.to_string(), "(1,0,1,1)");
  EXPECT_TRUE(t.any_safe());
  EXPECT_FALSE(t.all_unsafe());
  for (ZoneType z : kAllZoneTypes) t.set_safe(z, false);
  EXPECT_EQ(t.to_string(), "(0,0,0,0)");
  EXPECT_TRUE(t.all_unsafe());
}

}  // namespace
}  // namespace spr
