#include "safety/distributed.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace spr {
namespace {

TEST(DistributedSafety, ConvergesToCentralizedStatuses) {
  for (std::uint64_t seed : test::property_seeds()) {
    for (DeployModel model :
         {DeployModel::kIdeal, DeployModel::kForbiddenAreas}) {
      Network net = test::random_network(300, seed, model);
      auto result = compute_safety_distributed(net.graph(), net.interest_area());
      ASSERT_EQ(result.info.size(), net.safety().size());
      for (NodeId u = 0; u < result.info.size(); ++u) {
        for (ZoneType t : kAllZoneTypes) {
          EXPECT_EQ(result.info.is_safe(u, t), net.safety().is_safe(u, t))
              << "seed " << seed << " node " << u << " type "
              << static_cast<int>(t);
        }
      }
    }
  }
}

TEST(DistributedSafety, ConvergesToCentralizedAnchors) {
  for (std::uint64_t seed : {11ull, 23ull, 37ull}) {
    Network net = test::random_network(350, seed, DeployModel::kForbiddenAreas);
    auto result = compute_safety_distributed(net.graph(), net.interest_area());
    for (NodeId u = 0; u < result.info.size(); ++u) {
      for (ZoneType t : kAllZoneTypes) {
        if (net.safety().is_safe(u, t)) continue;
        const auto& central = net.safety().tuple(u).anchors_for(t);
        const auto& dist = result.info.tuple(u).anchors_for(t);
        EXPECT_EQ(dist.first, central.first)
            << "seed " << seed << " node " << u;
        EXPECT_EQ(dist.last, central.last) << "seed " << seed << " node " << u;
        EXPECT_EQ(dist.first_pos, central.first_pos);
        EXPECT_EQ(dist.last_pos, central.last_pos);
      }
    }
  }
}

TEST(DistributedSafety, QuiescesWellUnderRoundCap) {
  Network net = test::random_network(400, 71, DeployModel::kForbiddenAreas);
  auto result = compute_safety_distributed(net.graph(), net.interest_area());
  EXPECT_LT(result.stats.rounds, 4 * net.graph().size() + 8);
}

TEST(DistributedSafety, EveryNodeBroadcastsHello) {
  Network net = test::random_network(250, 13);
  auto result = compute_safety_distributed(net.graph(), net.interest_area());
  EXPECT_GE(result.stats.broadcasts, net.graph().size());
}

TEST(DistributedSafety, CostScalesWithChangesNotRounds) {
  // A hole-free dense grid converges with one hello per node plus a handful
  // of rounds: broadcasts stay close to n.
  Deployment d = test::dense_grid_deployment(400, 3);
  UnitDiskGraph g(d.positions, d.radio_range, d.field);
  InterestArea area(g, d.radio_range);
  auto result = compute_safety_distributed(g, area);
  EXPECT_LE(result.stats.broadcasts, 2 * g.size());
  EXPECT_LE(result.stats.rounds, 10u);
}

TEST(DistributedSafety, DeterministicAcrossRuns) {
  Network net = test::random_network(300, 97, DeployModel::kForbiddenAreas);
  auto r1 = compute_safety_distributed(net.graph(), net.interest_area());
  auto r2 = compute_safety_distributed(net.graph(), net.interest_area());
  EXPECT_EQ(r1.stats.broadcasts, r2.stats.broadcasts);
  EXPECT_EQ(r1.stats.rounds, r2.stats.rounds);
  EXPECT_TRUE(r1.info == r2.info);
}

}  // namespace
}  // namespace spr
