#include "routing/slgf.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace spr {
namespace {

TEST(Slgf, DeliversOnLine) {
  Deployment dep = test::dense_grid_deployment(400, 2);
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  InterestArea area(g, g.range());
  SafetyInfo info = compute_safety(g, area);
  SlgfRouter router(g, info);
  const auto& interior = area.interior_nodes();
  ASSERT_GE(interior.size(), 2u);
  PathResult r = router.route(interior.front(), interior.back());
  EXPECT_TRUE(r.delivered());
}

TEST(Slgf, PathIsValidWalk) {
  Network net = test::random_network(400, 43, DeployModel::kForbiddenAreas);
  auto router = net.make_router(Scheme::kSlgf);
  const auto& g = net.graph();
  Rng rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    ASSERT_NE(s, kInvalidNode);
    PathResult r = router->route(s, d);
    EXPECT_EQ(r.path.front(), s);
    for (std::size_t i = 1; i < r.path.size(); ++i) {
      EXPECT_TRUE(g.are_neighbors(r.path[i - 1], r.path[i]));
    }
    if (r.delivered()) {
      EXPECT_EQ(r.path.back(), d);
    }
  }
}

TEST(Slgf, PrefersSafeSuccessors) {
  // When both a safe and an unsafe candidate advance inside the zone, SLGF
  // must take a safe one. Verified over random networks by replaying the
  // selection at every greedy hop.
  Network net = test::random_network(450, 47, DeployModel::kForbiddenAreas);
  const auto& g = net.graph();
  const auto& info = net.safety();
  auto router = net.make_router(Scheme::kSlgf);
  Rng rng(9);
  for (int trial = 0; trial < 25; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    PathResult r = router->route(s, d);
    Vec2 dest = g.position(d);
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
      if (r.hop_phases[i] != HopPhase::kGreedy) continue;
      NodeId u = r.path[i], v = r.path[i + 1];
      if (v == d) continue;
      bool v_safe = info.is_safe(v, zone_type(g.position(v), dest));
      if (v_safe) continue;
      // v unsafe: then no safe zone candidate may have existed at u.
      bool safe_candidate_existed = false;
      for (NodeId w : g.neighbors(u)) {
        if (!in_request_zone(g.position(u), dest, g.position(w))) continue;
        if (info.is_safe(w, zone_type(g.position(w), dest))) {
          safe_candidate_existed = true;
          break;
        }
      }
      EXPECT_FALSE(safe_candidate_existed)
          << "SLGF took unsafe " << v << " although a safe candidate existed";
    }
  }
}

TEST(Slgf, AtLeastAsRobustAsLgfOnDelivery) {
  int slgf_delivered = 0, lgf_delivered = 0, total = 0;
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(500, seed, DeployModel::kForbiddenAreas);
    auto slgf = net.make_router(Scheme::kSlgf);
    auto lgf = net.make_router(Scheme::kLgf);
    Rng rng(seed ^ 0x5151);
    for (int trial = 0; trial < 8; ++trial) {
      auto [s, d] = net.random_connected_interior_pair(rng);
      ++total;
      if (slgf->route(s, d).delivered()) ++slgf_delivered;
      if (lgf->route(s, d).delivered()) ++lgf_delivered;
    }
  }
  EXPECT_GE(slgf_delivered + total / 20, lgf_delivered)
      << "SLGF should not be materially less reliable than LGF";
}

TEST(Slgf, FewerMinimaThanLgfOnAverage) {
  // The safety information lets SLGF dodge many local minima: summed over
  // pairs, its minima count should not exceed LGF's.
  std::size_t slgf_minima = 0, lgf_minima = 0;
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(550, seed, DeployModel::kForbiddenAreas);
    auto slgf = net.make_router(Scheme::kSlgf);
    auto lgf = net.make_router(Scheme::kLgf);
    Rng rng(seed ^ 0x7777);
    for (int trial = 0; trial < 8; ++trial) {
      auto [s, d] = net.random_connected_interior_pair(rng);
      slgf_minima += slgf->route(s, d).local_minima;
      lgf_minima += lgf->route(s, d).local_minima;
    }
  }
  EXPECT_LE(slgf_minima, lgf_minima + 2);
}

}  // namespace
}  // namespace spr
