/// \file regression_test.cpp
/// Pinned reproductions of bugs found during development, so they stay
/// fixed. Each test names the failure mode it guards against.

#include <gtest/gtest.h>

#include "graph/graph_algos.h"
#include "routing/boundhole.h"
#include "routing/slgf2.h"
#include "sim/async_engine.h"
#include "test_helpers.h"

namespace spr {
namespace {

/// Bug: SLGF2's safe forwarding did not exclude visited nodes. With a
/// degenerate request zone (source and destination at exactly equal y), the
/// zone-greedy kept bouncing back to the wall node after every backup hop
/// until its whole neighborhood was exhausted -> spurious dead-end after ~9
/// hops on a trivially routable pair.
TEST(Regression, ThinZonePingPongDeadEnd) {
  Deployment dep = test::grid_with_void(
      22, 10.0, Rect::from_corners({70.0, 40.0}, {150.0, 180.0}));
  Network net(dep, 15.0);
  NodeId s = kInvalidNode, d = kInvalidNode;
  for (NodeId u = 0; u < net.graph().size(); ++u) {
    if (almost_equal(net.graph().position(u), {50.0, 110.0})) s = u;
    if (almost_equal(net.graph().position(u), {170.0, 110.0})) d = u;
  }
  ASSERT_NE(s, kInvalidNode);
  ASSERT_NE(d, kInvalidNode);
  auto router = net.make_router(Scheme::kSlgf2);
  PathResult r = router->route(s, d);
  EXPECT_TRUE(r.delivered());
}

/// Bug: releasing the backup hand on distance progress let the hand be
/// re-chosen next to the same obstacle; with the void's degenerate point
/// estimates the new hand flipped and the walk reversed, turning a 25-hop
/// detour into 69 hops. The committed hand must survive until safe
/// forwarding resumes, and the detour must stay comparable to LGF's.
TEST(Regression, BackupHandNotRechoseMidDetour) {
  Deployment dep = test::grid_with_void(
      22, 10.0, Rect::from_corners({70.0, 40.0}, {150.0, 180.0}));
  Network net(dep, 15.0);
  NodeId s = kInvalidNode, d = kInvalidNode;
  for (NodeId u = 0; u < net.graph().size(); ++u) {
    if (almost_equal(net.graph().position(u), {50.0, 110.0})) s = u;
    if (almost_equal(net.graph().position(u), {170.0, 110.0})) d = u;
  }
  auto slgf2 = net.make_router(Scheme::kSlgf2);
  auto lgf = net.make_router(Scheme::kLgf);
  PathResult r2 = slgf2->route(s, d);
  PathResult rl = lgf->route(s, d);
  ASSERT_TRUE(r2.delivered());
  ASSERT_TRUE(rl.delivered());
  EXPECT_LE(r2.hops(), rl.hops() + 2) << "hand flip mid-detour reverses walks";
}

/// Bug: the naive circumcenter TENT test flagged near-collinear neighbor
/// pairs as stuck (circumradius blows up for thin triangles even when the
/// wedge holds no stuck direction), marking ~60% of a dense grid's interior
/// as stuck.
TEST(Regression, TentRuleNearCollinearNeighbors) {
  // u with two nearly-collinear neighbors east plus a ring of support.
  auto g = test::make_graph({{0.0, 0.0},
                             {10.0, 0.0},
                             {19.0, 0.4},   // nearly collinear with the first
                             {0.0, 10.0},
                             {-10.0, 0.0},
                             {0.0, -10.0},
                             {7.0, 7.0},
                             {-7.0, 7.0},
                             {-7.0, -7.0},
                             {7.0, -7.0}},
                            20.0);
  EXPECT_FALSE(tent_rule_stuck(g, 0));
}

/// Bug: BOUNDHOLE's sweep can "close" a figure-eight mega-walk whose net
/// signed area is small; GF then walked ~1300 hops of "boundary". Such
/// walks must be discarded at construction.
TEST(Regression, BoundholeMegaCycleDiscarded) {
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(600, seed, DeployModel::kForbiddenAreas);
    const auto& info = net.boundhole();
    for (const auto& b : info.boundaries()) {
      EXPECT_LE(b.cycle.size(), std::max<std::size_t>(16, 600 / 4))
          << "seed " << seed;
    }
  }
}

/// Bug: GF's boundary-walk fallback kept the original perimeter entry
/// point, corrupting the face-change geometry; packets wandered for
/// hundreds of hops. Guard: on FA networks no delivered GF packet may spend
/// more than ~2n hops.
TEST(Regression, GfRecoveryHopBound) {
  for (std::uint64_t seed : {11ull, 23ull, 37ull}) {
    Network net = test::random_network(600, seed, DeployModel::kForbiddenAreas);
    auto router = net.make_router(Scheme::kGf);
    Rng rng(seed ^ 0x42);
    for (int trial = 0; trial < 10; ++trial) {
      auto [s, d] = net.random_connected_interior_pair(rng);
      PathResult r = router->route(s, d);
      if (r.delivered()) {
        EXPECT_LE(r.hops(), 2 * net.graph().size()) << "seed " << seed;
      }
    }
  }
}

/// Bug: the async engine delivered per-link messages out of order, so a
/// stale safety broadcast could overwrite a newer one in the receiver's
/// cache and the protocol under-flipped. Guard: FIFO per link.
TEST(Regression, AsyncEngineFifoLinks) {
  // Node 0 emits an increasing sequence (one send per activation, bounced
  // by node 1's echoes); with a wide delay spread, unordered delivery would
  // interleave. Node 1 must observe a strictly increasing stream.
  auto g = test::make_graph({{0.0, 0.0}, {10.0, 0.0}}, 12.0);
  std::vector<int> received;
  int next = 0;
  Rng rng(4);
  AsyncEngine<int> engine(g, rng, 0.1, 5.0);  // wide delay spread
  engine.run(
      [&](NodeId self, double,
          std::optional<AsyncEngine<int>::Incoming> msg) -> std::optional<int> {
        if (self == 0) {
          return next < 20 ? std::optional<int>(next++) : std::nullopt;
        }
        if (msg) {
          received.push_back(msg->payload);
          return -1;  // echo to re-activate node 0
        }
        return std::nullopt;
      },
      10000);
  ASSERT_GE(received.size(), 10u);
  for (std::size_t i = 1; i < received.size(); ++i) {
    EXPECT_LT(received[i - 1], received[i]) << "per-link reordering";
  }
}

}  // namespace
}  // namespace spr
