/// \file property_test.cpp
/// Parameterized property sweeps across deployment models, densities and
/// seeds: walk validity, termination, delivery, and labeling invariants for
/// every router on every sampled network.

#include <gtest/gtest.h>

#include <tuple>

#include "graph/graph_algos.h"
#include "test_helpers.h"

namespace spr {
namespace {

struct PropertyCase {
  DeployModel model;
  int node_count;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  std::string model =
      info.param.model == DeployModel::kIdeal ? "IA" : "FA";
  return model + "_n" + std::to_string(info.param.node_count) + "_s" +
         std::to_string(info.param.seed);
}

class RouterProperties : public ::testing::TestWithParam<PropertyCase> {
 protected:
  RouterProperties()
      : net_(test::random_network(GetParam().node_count, GetParam().seed,
                                  GetParam().model)) {}
  Network net_;
};

TEST_P(RouterProperties, AllRoutersProduceValidTerminatingWalks) {
  const auto& g = net_.graph();
  Rng rng(GetParam().seed ^ 0xfeed);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 6; ++i) {
    pairs.push_back(net_.random_connected_interior_pair(rng));
  }
  for (Scheme scheme : {Scheme::kGf, Scheme::kGfFace, Scheme::kLgf,
                        Scheme::kSlgf, Scheme::kSlgf2}) {
    auto router = net_.make_router(scheme);
    for (auto [s, d] : pairs) {
      PathResult r = router->route(s, d);
      // Termination: the driver returned (by construction) and the TTL cap
      // bounds the walk.
      EXPECT_LE(r.hops(), 8 * g.size()) << router->name();
      // Walk validity.
      ASSERT_FALSE(r.path.empty());
      EXPECT_EQ(r.path.front(), s);
      for (std::size_t i = 1; i < r.path.size(); ++i) {
        EXPECT_TRUE(g.are_neighbors(r.path[i - 1], r.path[i]))
            << router->name() << " illegal hop";
      }
      EXPECT_EQ(r.hop_phases.size(), r.path.size() - 1);
      // Length bookkeeping matches the hops taken.
      double length = 0.0;
      for (std::size_t i = 1; i < r.path.size(); ++i) {
        length += distance(g.position(r.path[i - 1]), g.position(r.path[i]));
      }
      EXPECT_NEAR(length, r.length, 1e-6) << router->name();
      if (r.delivered()) {
        EXPECT_EQ(r.path.back(), d) << router->name();
        // No delivered path can beat the BFS oracle.
        auto oracle = bfs_path(g, s, d);
        EXPECT_GE(r.hops(), oracle.hops()) << router->name();
      }
    }
  }
}

TEST_P(RouterProperties, SafetyDeterminismAndEdgePinning) {
  const auto& info = net_.safety();
  const auto& area = net_.interest_area();
  SafetyInfo again = compute_safety(net_.graph(), area);
  EXPECT_TRUE(info == again);
  for (NodeId u = 0; u < info.size(); ++u) {
    if (area.is_edge_node(u)) {
      EXPECT_EQ(info.tuple(u).to_string(), "(1,1,1,1)");
    }
  }
}

TEST_P(RouterProperties, SafeForwardingPathsNeedNoRecovery) {
  // For pairs where every hop of the SLGF2 walk stays on nodes safe toward
  // d, the walk must contain zero perimeter hops.
  const auto& g = net_.graph();
  const auto& info = net_.safety();
  auto router = net_.make_router(Scheme::kSlgf2);
  Rng rng(GetParam().seed ^ 0xbeef);
  for (int trial = 0; trial < 6; ++trial) {
    auto [s, d] = net_.random_connected_interior_pair(rng);
    PathResult r = router->route(s, d);
    if (!r.delivered()) continue;
    Vec2 dest = g.position(d);
    bool all_safe = true;
    for (NodeId u : r.path) {
      if (u == d) break;
      if (!info.is_safe(u, zone_type(g.position(u), dest))) {
        all_safe = false;
        break;
      }
    }
    if (all_safe) {
      EXPECT_EQ(r.perimeter_hops(), 0u)
          << "safe-node walk needed perimeter recovery";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RouterProperties,
    ::testing::Values(PropertyCase{DeployModel::kIdeal, 400, 101},
                      PropertyCase{DeployModel::kIdeal, 600, 103},
                      PropertyCase{DeployModel::kIdeal, 800, 107},
                      PropertyCase{DeployModel::kForbiddenAreas, 400, 109},
                      PropertyCase{DeployModel::kForbiddenAreas, 600, 113},
                      PropertyCase{DeployModel::kForbiddenAreas, 800, 127}),
    case_name);

/// Density sweep for the labeling: unsafe share shrinks as density grows.
class DensityLabeling : public ::testing::TestWithParam<int> {};

TEST_P(DensityLabeling, UnsafeShareIsSmallAndShrinks) {
  int n = GetParam();
  double unsafe_share_sum = 0.0;
  for (std::uint64_t seed : {11ull, 23ull, 37ull}) {
    Network net = test::random_network(n, seed);
    unsafe_share_sum += static_cast<double>(net.safety().unsafe_node_count()) /
                        static_cast<double>(n);
  }
  double share = unsafe_share_sum / 3.0;
  // Under IA the holes are small: unsafe nodes are a modest minority.
  EXPECT_LT(share, 0.35) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Densities, DensityLabeling,
                         ::testing::Values(400, 500, 600, 700, 800));

}  // namespace
}  // namespace spr
