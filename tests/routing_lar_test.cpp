#include "routing/lar.h"

#include <gtest/gtest.h>

#include "mobility/waypoint.h"
#include "test_helpers.h"

namespace spr {
namespace {

DestinationEstimate static_estimate(Vec2 where) {
  return DestinationEstimate{where, 0.0, 0.0};
}

TEST(Lar, ExpectedZoneGeometry) {
  DestinationEstimate e{{100.0, 100.0}, 2.0, 10.0};  // radius 20
  EXPECT_DOUBLE_EQ(e.expected_radius(), 20.0);
  EXPECT_TRUE(e.in_expected_zone({110.0, 100.0}));
  EXPECT_TRUE(e.in_expected_zone({100.0, 120.0}));
  EXPECT_FALSE(e.in_expected_zone({121.0, 100.0}));
}

TEST(Lar, RequestZoneContainsSourceAndExpectedZone) {
  DestinationEstimate e{{100.0, 100.0}, 1.0, 30.0};  // radius 30
  Rect zone = e.request_zone_from({20.0, 50.0});
  EXPECT_TRUE(zone.contains({20.0, 50.0}));
  EXPECT_TRUE(zone.contains({70.0, 100.0}));   // west edge of the disc
  EXPECT_TRUE(zone.contains({130.0, 130.0}));  // disc bounding corner
  EXPECT_EQ(zone.lo(), Vec2(20.0, 50.0));
  EXPECT_EQ(zone.hi(), Vec2(130.0, 130.0));
}

TEST(Lar, ZeroSpeedCollapsesToPaperRequestZone) {
  DestinationEstimate e = static_estimate({60.0, 80.0});
  Rect zone = e.request_zone_from({10.0, 20.0});
  EXPECT_EQ(zone, request_zone({10.0, 20.0}, {60.0, 80.0}));
}

TEST(Lar, StaticEstimateDeliversLikeLgf) {
  auto g = test::make_graph(
      {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {30.0, 0.0}}, 12.0);
  LarRouter router(g, static_estimate(g.position(3)));
  PathResult r = router.route(0, 3);
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.hops(), 3u);
}

TEST(Lar, DeliversOnRandomNetworksWithExactEstimate) {
  Network net = test::random_network(450, 91, DeployModel::kForbiddenAreas);
  Rng rng(7);
  int delivered = 0, total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    LarRouter router(net.graph(), static_estimate(net.graph().position(d)));
    ++total;
    if (router.route(s, d).delivered()) ++delivered;
  }
  EXPECT_GE(static_cast<double>(delivered) / total, 0.85);
}

TEST(Lar, StaleEstimateStillDeliversWithinExpectedZone) {
  // The destination moved, but stayed inside the expected zone: LAR must
  // still find it (the final d-in-N(u) check is position-independent).
  Deployment dep = test::dense_grid_deployment(400, 21);
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  InterestArea area(g, g.range());
  const auto& interior = area.interior_nodes();
  ASSERT_GE(interior.size(), 2u);
  Rng rng(8);
  for (int trial = 0; trial < 15; ++trial) {
    NodeId s = interior[rng.next_below(interior.size())];
    NodeId d = interior[rng.next_below(interior.size())];
    if (s == d) continue;
    // Pretend d was last seen 25m away from where it actually is, with an
    // expected radius that covers the truth.
    Vec2 truth = g.position(d);
    Vec2 stale{truth.x + rng.uniform(-18.0, 18.0),
               truth.y + rng.uniform(-18.0, 18.0)};
    DestinationEstimate e{stale, 1.0, 30.0};  // radius 30 covers the truth
    ASSERT_TRUE(e.in_expected_zone(truth));
    LarRouter router(g, e);
    PathResult r = router.route(s, d);
    EXPECT_TRUE(r.delivered()) << "trial " << trial;
  }
}

TEST(Lar, WiderExpectedZoneNeverHurtsDelivery) {
  // Growing the expected zone only enlarges the request zone, so delivery
  // is monotone in the radius (paired pairs).
  Network net = test::random_network(500, 93, DeployModel::kForbiddenAreas);
  Rng rng(9);
  int tight_delivered = 0, wide_delivered = 0;
  for (int trial = 0; trial < 25; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    Vec2 truth = net.graph().position(d);
    LarRouter tight(net.graph(), DestinationEstimate{truth, 0.0, 0.0});
    LarRouter wide(net.graph(), DestinationEstimate{truth, 2.0, 20.0});
    if (tight.route(s, d).delivered()) ++tight_delivered;
    if (wide.route(s, d).delivered()) ++wide_delivered;
  }
  EXPECT_GE(wide_delivered, tight_delivered - 1);
}

TEST(Lar, ComposesWithMobilityModel) {
  // End-to-end: destination moves under random waypoint; the source uses
  // the last-known position with the model's max speed as the estimate.
  Deployment dep = test::dense_grid_deployment(400, 23);
  WaypointConfig wc;
  wc.min_speed_mps = 0.5;
  wc.max_speed_mps = 1.5;
  wc.pause_s = 0.0;
  WaypointModel model(dep.positions, wc, Rng(5));
  NodeId s = 30, d = 370;
  Vec2 last_known = model.position(d);
  double elapsed = 8.0;
  model.advance(elapsed);
  // Snapshot after movement; route with the stale estimate.
  UnitDiskGraph g(model.positions(), dep.radio_range, dep.field);
  DestinationEstimate e{last_known, wc.max_speed_mps, elapsed};
  EXPECT_TRUE(e.in_expected_zone(g.position(d)));
  LarRouter router(g, e);
  PathResult r = router.route(s, d);
  EXPECT_TRUE(r.delivered());
}

}  // namespace
}  // namespace spr
