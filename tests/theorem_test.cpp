/// \file theorem_test.cpp
/// Executable statements of the paper's two theorems, as far as they are
/// decidable from the implemented model (see DESIGN.md Section 7).
///
/// Theorem 1: "Any LGF routing can be blocked by a local minimum if and
/// only if one type-i unsafe node is used."
/// Theorem 2: "The type-i forwarding from node u in LGF routing will be
/// blocked iff any node inside the estimated type-i unsafe area E_i(u)
/// [x_u : x_{u(1)}, y_u : y_{u(2)}] is used."

#include <gtest/gtest.h>

#include "routing/lgf.h"
#include "safety/shape.h"
#include "test_helpers.h"

namespace spr {
namespace {

/// Theorem 1, "if" direction contrapositive: a walk that only ever stands on
/// nodes safe w.r.t. their current zone type toward d never hits a local
/// minimum — because Definition 1's fixpoint guarantees a same-type safe
/// successor in the quadrant, the walk can always continue.
TEST(Theorem1, SafeNodesAlwaysHaveQuadrantSuccessors) {
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(500, seed, DeployModel::kForbiddenAreas);
    const auto& g = net.graph();
    const auto& info = net.safety();
    for (NodeId u = 0; u < g.size(); ++u) {
      if (net.interest_area().is_edge_node(u)) continue;
      for (ZoneType t : kAllZoneTypes) {
        if (!info.is_safe(u, t)) continue;
        bool has = false;
        for (NodeId v : g.neighbors(u)) {
          if (in_quadrant(g.position(u), g.position(v), t) &&
              info.is_safe(v, t)) {
            has = true;
            break;
          }
        }
        EXPECT_TRUE(has) << "safe node " << u << " type "
                         << static_cast<int>(t) << " stuck, seed " << seed;
      }
    }
  }
}

/// Theorem 1, "only if" direction: when LGF hits a local minimum at node m
/// (perimeter phase begins), m is type-k unsafe for the zone type k of m
/// toward the destination — i.e. blocks only happen on unsafe nodes.
///
/// Caveat (documented in DESIGN.md): Definition 1 labels via the unbounded
/// quadrant Q_k while LGF forwards within the bounded zone Z_k(u,d), so a
/// *safe* node can still be zone-blocked when d is very close (its safe
/// successors lie beyond the zone). The theorem therefore holds for blocks
/// that occur while d is outside u's radio neighborhood by more than the
/// zone-degenerate margin; we assert over exactly those and additionally
/// require at least one genuine block to have been observed.
TEST(Theorem1, LgfBlocksHappenAtUnsafeNodes) {
  std::size_t blocks_checked = 0, blocks_at_unsafe = 0;
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(500, seed, DeployModel::kForbiddenAreas);
    const auto& g = net.graph();
    const auto& info = net.safety();
    LgfRouter router(g);
    Rng rng(seed ^ 0x9e37);
    for (int trial = 0; trial < 12; ++trial) {
      auto [s, d] = net.random_connected_interior_pair(rng);
      PathResult r = router.route(s, d);
      Vec2 dest = g.position(d);
      for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
        bool entering_perimeter =
            r.hop_phases[i] == HopPhase::kPerimeter &&
            (i == 0 || r.hop_phases[i - 1] != HopPhase::kPerimeter);
        if (!entering_perimeter) continue;
        NodeId m = r.path[i];
        if (net.interest_area().is_edge_node(m)) continue;
        // Skip zone-degenerate blocks: request zone thinner than the radio
        // range in either dimension.
        Rect zone = request_zone(g.position(m), dest);
        if (zone.width() < g.range() || zone.height() < g.range()) continue;
        ++blocks_checked;
        if (!info.is_safe(m, zone_type(g.position(m), dest))) {
          ++blocks_at_unsafe;
        }
      }
    }
  }
  ASSERT_GT(blocks_checked, 0u) << "no informative local minima sampled";
  EXPECT_EQ(blocks_at_unsafe, blocks_checked)
      << "some LGF block occurred at a node labeled safe";
}

/// Theorem 2 consequence: the anchors defining E_i(u) are endpoints of real
/// type-i forwarding chains from u, and the estimate covers both the origin
/// and those endpoints — so any forwarding that would be blocked beyond the
/// estimate is impossible.
TEST(Theorem2, ForwardingWithinUnsafeChainStaysInEstimate) {
  std::size_t nodes_checked = 0, contained = 0;
  for (std::uint64_t seed : test::property_seeds()) {
    Network net = test::random_network(450, seed, DeployModel::kForbiddenAreas);
    const auto& g = net.graph();
    const auto& info = net.safety();
    for (NodeId u = 0; u < g.size(); ++u) {
      for (ZoneType t : kAllZoneTypes) {
        auto e = estimate_for(g, info, u, t);
        if (!e) continue;
        // Walk the first-scan chain (the path to u(1)) and the last-scan
        // chain (to u(2)): every chain node must lie in E_t(u).
        for (bool first_chain : {true, false}) {
          NodeId w = u;
          for (int guard = 0; guard < 1000; ++guard) {
            ++nodes_checked;
            if (e->rect.contains(g.position(w), 1e-9)) ++contained;
            const auto& a = info.tuple(w).anchors_for(t);
            NodeId target = first_chain ? a.first : a.last;
            if (target == w) break;
            // Step to the scan-extreme unsafe neighbor (the chain link).
            CcwScan scan(g.position(w), quadrant_start_bearing(t));
            NodeId next = kInvalidNode;
            double best = first_chain ? 1e18 : -1.0;
            for (NodeId v : g.neighbors(w)) {
              if (!in_quadrant(g.position(w), g.position(v), t)) continue;
              if (info.is_safe(v, t)) continue;
              double sweep = scan.sweep_to(g.position(v));
              if (first_chain ? sweep < best : sweep > best) {
                best = sweep;
                next = v;
              }
            }
            if (next == kInvalidNode) break;
            w = next;
          }
        }
      }
    }
  }
  ASSERT_GT(nodes_checked, 0u);
  EXPECT_EQ(contained, nodes_checked)
      << "an anchor-chain node escaped its estimated unsafe area";
}

/// Theorem 2 (empirical breadth): the whole greedy region G_t(u) — every
/// type-t unsafe node reachable by type-t forwarding — should overwhelmingly
/// fall inside E_t(u). The two-anchor rectangle is an estimate, so we assert
/// a high fraction rather than totality and report the measured value.
TEST(Theorem2, GreedyRegionMostlyInsideEstimate) {
  std::size_t total = 0, inside = 0;
  for (std::uint64_t seed : {11ull, 23ull, 37ull}) {
    Network net = test::random_network(450, seed, DeployModel::kForbiddenAreas);
    const auto& g = net.graph();
    const auto& info = net.safety();
    for (NodeId u = 0; u < g.size(); ++u) {
      for (ZoneType t : kAllZoneTypes) {
        auto e = estimate_for(g, info, u, t);
        if (!e) continue;
        // BFS over type-t unsafe quadrant steps.
        std::vector<bool> seen(g.size(), false);
        std::vector<NodeId> stack{u};
        seen[u] = true;
        while (!stack.empty()) {
          NodeId w = stack.back();
          stack.pop_back();
          ++total;
          if (e->rect.contains(g.position(w), 1e-9)) ++inside;
          for (NodeId v : g.neighbors(w)) {
            if (seen[v]) continue;
            if (!in_quadrant(g.position(w), g.position(v), t)) continue;
            if (info.is_safe(v, t)) continue;
            seen[v] = true;
            stack.push_back(v);
          }
        }
      }
    }
  }
  ASSERT_GT(total, 0u);
  double fraction = static_cast<double>(inside) / static_cast<double>(total);
  RecordProperty("containment_fraction", std::to_string(fraction));
  EXPECT_GE(fraction, 0.75) << "estimate covers only " << fraction;
}

}  // namespace
}  // namespace spr
