#include "geometry/angle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace spr {
namespace {

TEST(Angle, BearingCardinalDirections) {
  EXPECT_NEAR(bearing({1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(bearing({0.0, 1.0}), kPi / 2, 1e-12);
  EXPECT_NEAR(bearing({-1.0, 0.0}), kPi, 1e-12);
  EXPECT_NEAR(bearing({0.0, -1.0}), 3 * kPi / 2, 1e-12);
}

TEST(Angle, BearingFromTo) {
  EXPECT_NEAR(bearing({1.0, 1.0}, {2.0, 2.0}), kPi / 4, 1e-12);
}

TEST(Angle, NormalizeIntoRange) {
  EXPECT_NEAR(normalize_angle(kTwoPi + 0.5), 0.5, 1e-12);
  EXPECT_NEAR(normalize_angle(-0.5), kTwoPi - 0.5, 1e-12);
  EXPECT_NEAR(normalize_angle(0.0), 0.0, 1e-12);
  EXPECT_NEAR(normalize_angle(-kTwoPi), 0.0, 1e-12);
}

TEST(Angle, CcwDelta) {
  EXPECT_NEAR(ccw_delta(0.0, kPi / 2), kPi / 2, 1e-12);
  EXPECT_NEAR(ccw_delta(kPi / 2, 0.0), 3 * kPi / 2, 1e-12);
  EXPECT_NEAR(ccw_delta(1.0, 1.0), 0.0, 1e-12);
}

TEST(Angle, CwDelta) {
  EXPECT_NEAR(cw_delta(kPi / 2, 0.0), kPi / 2, 1e-12);
  EXPECT_NEAR(cw_delta(0.0, kPi / 2), 3 * kPi / 2, 1e-12);
}

TEST(Angle, CcwPlusCwIsFullTurn) {
  for (double a : {0.1, 1.0, 2.5, 4.0}) {
    for (double b : {0.2, 1.5, 3.0, 5.5}) {
      if (a == b) continue;
      EXPECT_NEAR(ccw_delta(a, b) + cw_delta(a, b), kTwoPi, 1e-9);
    }
  }
}

TEST(Angle, InteriorAngle) {
  EXPECT_NEAR(interior_angle({1.0, 0.0}, {0.0, 0.0}, {0.0, 1.0}), kPi / 2, 1e-12);
  EXPECT_NEAR(interior_angle({1.0, 0.0}, {0.0, 0.0}, {-1.0, 0.0}), kPi, 1e-12);
  EXPECT_NEAR(interior_angle({1.0, 0.0}, {0.0, 0.0}, {2.0, 0.0}), 0.0, 1e-12);
}

TEST(CcwScan, OrdersBySweep) {
  CcwScan scan({0.0, 0.0}, 0.0);  // start at +x
  std::vector<Vec2> pts = {{0.0, 1.0}, {1.0, 0.1}, {-1.0, 0.5}, {0.5, -1.0}};
  std::sort(pts.begin(), pts.end(), scan);
  // Expected order of bearings: ~0.1 rad, ~90deg, ~153deg, ~296deg.
  EXPECT_EQ(pts[0], Vec2(1.0, 0.1));
  EXPECT_EQ(pts[1], Vec2(0.0, 1.0));
  EXPECT_EQ(pts[2], Vec2(-1.0, 0.5));
  EXPECT_EQ(pts[3], Vec2(0.5, -1.0));
}

TEST(CcwScan, TieBrokenByDistance) {
  CcwScan scan({0.0, 0.0}, 0.0);
  EXPECT_TRUE(scan({1.0, 1.0}, {2.0, 2.0}));   // same bearing, nearer first
  EXPECT_FALSE(scan({2.0, 2.0}, {1.0, 1.0}));
}

TEST(CcwScan, SweepToExactStartIsZero) {
  CcwScan scan({0.0, 0.0}, kPi / 2);
  EXPECT_NEAR(scan.sweep_to({0.0, 5.0}), 0.0, 1e-12);
}

TEST(CwScan, MirrorsCcw) {
  CwScan scan({0.0, 0.0}, kPi / 2);  // start at +y, rotate clockwise
  std::vector<Vec2> pts = {{1.0, 0.0}, {0.5, 1.0}, {-1.0, 0.0}};
  std::sort(pts.begin(), pts.end(), scan);
  EXPECT_EQ(pts[0], Vec2(0.5, 1.0));   // just CW of +y
  EXPECT_EQ(pts[1], Vec2(1.0, 0.0));   // quarter turn CW
  EXPECT_EQ(pts[2], Vec2(-1.0, 0.0));  // three quarters CW
}

}  // namespace
}  // namespace spr
