# Artifact validity gate (ctest): run a quick scenario with the JSON, CSV
# and SVG sinks enabled, then re-parse the emitted JSON artifact with the
# bundled reader (`spr_cli validate`). Catches a writer/reader drift the
# unit tests could miss — the gate exercises the exact bytes CI uploads.
#
# Invoked as:
#   cmake -DSPR_CLI=<path-to-spr_cli> -DOUT_DIR=<scratch-dir> -P artifact_gate.cmake

if(NOT DEFINED SPR_CLI OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "artifact_gate.cmake needs -DSPR_CLI=... and -DOUT_DIR=...")
endif()

set(json "${OUT_DIR}/artifact-gate.json")
set(csv "${OUT_DIR}/artifact-gate.csv")
set(svg "${OUT_DIR}/artifact-gate.svg")

execute_process(
  COMMAND "${SPR_CLI}" scenario mobile-stream --networks 2
          --json "${json}" --csv "${csv}" --svg "${svg}"
  RESULT_VARIABLE run_result
  OUTPUT_QUIET)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "scenario run failed (exit ${run_result})")
endif()

foreach(artifact "${json}" "${csv}" "${svg}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "expected artifact missing: ${artifact}")
  endif()
endforeach()

execute_process(
  COMMAND "${SPR_CLI}" validate "${json}"
  RESULT_VARIABLE validate_result)
if(NOT validate_result EQUAL 0)
  message(FATAL_ERROR "emitted JSON artifact failed to re-parse")
endif()

# Streaming-delivery: the discrete-event stream with mid-stream failure
# waves. The scenario itself cross-checks each wave's incremental
# relabeling against a from-scratch recompute (nonzero exit on mismatch),
# so this gate also guards the safety layer's incremental path.
set(stream_json "${OUT_DIR}/artifact-gate-stream.json")
set(stream_csv "${OUT_DIR}/artifact-gate-stream.csv")

execute_process(
  COMMAND "${SPR_CLI}" run streaming-delivery --networks 1 --pairs 4
          --format json,csv --json "${stream_json}" --csv "${stream_csv}"
  RESULT_VARIABLE stream_result
  OUTPUT_QUIET)
if(NOT stream_result EQUAL 0)
  message(FATAL_ERROR "streaming-delivery run failed (exit ${stream_result})")
endif()

foreach(artifact "${stream_json}" "${stream_csv}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "expected artifact missing: ${artifact}")
  endif()
endforeach()

execute_process(
  COMMAND "${SPR_CLI}" validate "${stream_json}"
  RESULT_VARIABLE stream_validate)
if(NOT stream_validate EQUAL 0)
  message(FATAL_ERROR "streaming-delivery JSON artifact failed to re-parse")
endif()

# Mobility-rate: random-waypoint re-pins riding the *incremental* motion
# path (Network::with_moves). The scenario cross-checks every re-pin's
# bidirectional relabeling against a from-scratch compute_safety and exits
# nonzero on divergence, so this gate also guards the motion updater.
set(mobility_json "${OUT_DIR}/artifact-gate-mobility.json")
set(mobility_csv "${OUT_DIR}/artifact-gate-mobility.csv")

execute_process(
  COMMAND "${SPR_CLI}" run mobility-rate --networks 1 --pairs 4
          --format json,csv --json "${mobility_json}" --csv "${mobility_csv}"
  RESULT_VARIABLE mobility_result
  OUTPUT_QUIET)
if(NOT mobility_result EQUAL 0)
  message(FATAL_ERROR "mobility-rate run failed (exit ${mobility_result})")
endif()

foreach(artifact "${mobility_json}" "${mobility_csv}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "expected artifact missing: ${artifact}")
  endif()
endforeach()

execute_process(
  COMMAND "${SPR_CLI}" validate "${mobility_json}"
  RESULT_VARIABLE mobility_validate)
if(NOT mobility_validate EQUAL 0)
  message(FATAL_ERROR "mobility-rate JSON artifact failed to re-parse")
endif()
