/// \file mobile_stream.cpp
/// Routing under node mobility — the paper's Section 1 lists mobility among
/// the dynamic causes of holes, and its related-work discussion stresses
/// that position-dependent information "needs to re-constitute every time"
/// relative positions change. This example runs a long-lived stream between
/// two (static) endpoints while every other node follows a random-waypoint
/// process; each epoch the network snapshot is rebuilt, the safety
/// information is reconstructed distributively, and the stream reroutes.
///
///   ./mobile_stream [--nodes=600] [--seed=9] [--epochs=10] [--dt=20]

#include <cstdio>

#include "core/network.h"
#include "graph/graph_algos.h"
#include "mobility/waypoint.h"
#include "report/sink.h"
#include "routing/slgf2.h"
#include "safety/distributed.h"
#include "stats/table.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace spr;

  int nodes = 600;
  unsigned long long seed = 9;
  int epochs = 10;
  double dt = 20.0;
  std::string csv_path;
  FlagSet flags("mobile_stream: SLGF2 across mobility epochs");
  flags.add_int("nodes", &nodes, "number of sensors");
  flags.add_uint64("seed", &seed, "seed");
  flags.add_int("epochs", &epochs, "snapshots to route over");
  flags.add_double("dt", &dt, "seconds of movement between snapshots");
  flags.add_string("csv", &csv_path, "also export the per-epoch table as CSV");
  if (!flags.parse(argc, argv)) return 1;

  DeploymentConfig dc;
  dc.node_count = nodes;
  Rng deploy_rng(seed);
  Deployment d = deploy(dc, deploy_rng);

  WaypointConfig wc;
  wc.field = dc.field;
  WaypointModel model(d.positions, wc, Rng(seed ^ 0x11));

  // Fixed endpoints: the first snapshot's farthest routable pair.
  UnitDiskGraph g0(model.positions(), dc.radio_range, dc.field);
  InterestArea area0(g0, dc.radio_range);
  NodeId s = kInvalidNode, t = kInvalidNode;
  double best = -1.0;
  Rng pick_rng(seed ^ 0x22);
  const auto& interior = area0.interior_nodes();
  if (interior.size() < 2) {
    std::printf("network too small\n");
    return 1;
  }
  for (int trial = 0; trial < 64; ++trial) {
    NodeId a = interior[pick_rng.next_below(interior.size())];
    NodeId b = interior[pick_rng.next_below(interior.size())];
    if (a == b || !connected(g0, a, b)) continue;
    double dist = distance(g0.position(a), g0.position(b));
    if (dist > best) {
      best = dist;
      s = a;
      t = b;
    }
  }
  if (s == kInvalidNode) {
    std::printf("no routable pair\n");
    return 1;
  }
  std::printf("stream %u -> %u over %d mobility epochs (%.0fs apart)\n\n", s,
              t, epochs, dt);
  std::printf("%5s %9s %7s %9s %9s %10s %9s\n", "epoch", "time_s", "hops",
              "length_m", "optimal", "constr.bc", "unsafe");
  Table csv_table({"epoch", "time_s", "hops", "length_m", "optimal",
                   "constr_bc", "unsafe", "delivered"});

  for (int epoch = 0; epoch < epochs; ++epoch) {
    UnitDiskGraph g(model.positions(), dc.radio_range, dc.field);
    InterestArea area(g, dc.radio_range);
    auto constructed = compute_safety_distributed(g, area);
    Slgf2Router router(g, constructed.info);
    auto oracle = bfs_path(g, s, t);
    if (oracle.path.empty()) {
      std::printf("%5d %9.0f   (pair disconnected this epoch)\n", epoch,
                  model.now());
    } else {
      PathResult r = router.route(s, t);
      std::printf("%5d %9.0f %7zu %9.1f %9zu %10zu %9zu %s\n", epoch,
                  model.now(), r.hops(), r.length, oracle.hops(),
                  constructed.stats.broadcasts,
                  constructed.info.unsafe_node_count(),
                  r.delivered() ? "" : "FAILED");
      csv_table.add_row({std::to_string(epoch), Table::fmt(model.now(), 0),
                         std::to_string(r.hops()), Table::fmt(r.length, 1),
                         std::to_string(oracle.hops()),
                         std::to_string(constructed.stats.broadcasts),
                         std::to_string(constructed.info.unsafe_node_count()),
                         r.delivered() ? "yes" : "no"});
    }
    model.advance(dt);
  }

  if (!csv_path.empty()) {
    ScenarioReport report;
    report.scenario = "mobile-stream-example";
    report.add_table(std::move(csv_table));
    if (!CsvSink(csv_path).emit(report)) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
  }
  std::printf("\nthe safety construction re-runs per epoch at ~1 broadcast\n"
              "per node, so the information keeps up with mobility.\n");
  return 0;
}
