/// \file hole_field.cpp
/// Visual tour of the safety information model on a field with large holes
/// (FA deployment): renders the field as ASCII, showing forbidden areas,
/// unsafe nodes, one estimated unsafe-area rectangle E_i(u), and the paths
/// LGF and SLGF2 take around the blocking — the paper's Fig. 1/Fig. 4
/// scenario, live.
///
///   ./hole_field [--nodes=600] [--seed=11]

#include <cstdio>

#include "core/network.h"
#include "report/sink.h"
#include "safety/shape.h"
#include "util/ascii_canvas.h"
#include "util/flags.h"
#include "util/svg.h"

int main(int argc, char** argv) {
  using namespace spr;

  int nodes = 600;
  unsigned long long seed = 11;
  std::string svg_path, json_path;
  FlagSet flags("hole_field: visualize unsafe areas and detours");
  flags.add_int("nodes", &nodes, "number of sensors");
  flags.add_uint64("seed", &seed, "deployment seed");
  flags.add_string("svg", &svg_path, "also write an SVG rendering here");
  flags.add_string("json", &json_path,
                   "also write a machine-readable report here");
  if (!flags.parse(argc, argv)) return 1;

  NetworkConfig config;
  config.deployment.node_count = nodes;
  config.deployment.model = DeployModel::kForbiddenAreas;
  config.seed = seed;
  Network net = Network::create(config);
  const auto& g = net.graph();

  // Find the pair whose LGF detour is worst (most perimeter hops) among a
  // small sample, so the picture actually shows a blocking situation.
  auto lgf = net.make_router(Scheme::kLgf);
  auto slgf2 = net.make_router(Scheme::kSlgf2);
  Rng rng(seed ^ 0xfeed);
  NodeId best_s = kInvalidNode, best_d = kInvalidNode;
  std::size_t worst_perimeter = 0;
  for (int trial = 0; trial < 60; ++trial) {
    auto [s, d] = net.random_connected_interior_pair(rng);
    if (s == kInvalidNode) continue;
    PathResult r = lgf->route(s, d);
    if (!r.delivered()) continue;
    if (best_s == kInvalidNode || r.perimeter_hops() > worst_perimeter) {
      best_s = s;
      best_d = d;
      worst_perimeter = r.perimeter_hops();
    }
  }
  if (best_s == kInvalidNode) {
    std::printf("no delivered pair found\n");
    return 1;
  }

  PathResult r_lgf = lgf->route(best_s, best_d);
  PathResult r_slgf2 = slgf2->route(best_s, best_d);

  AsciiCanvas canvas(100, 50, 0.0, 0.0, 200.0, 200.0);
  // Layers, background to foreground: forbidden areas, nodes, unsafe nodes,
  // estimates, paths, endpoints.
  for (const Polygon& area : net.deployment().forbidden_areas) {
    Rect box = area.bounding_box();
    canvas.fill_rect(box.lo().x, box.lo().y, box.hi().x, box.hi().y, ':');
  }
  for (NodeId u = 0; u < g.size(); ++u) {
    canvas.plot(g.position(u).x, g.position(u).y, '.');
  }
  std::size_t unsafe_count = 0;
  for (NodeId u = 0; u < g.size(); ++u) {
    for (ZoneType t : kAllZoneTypes) {
      if (!net.safety().is_safe(u, t)) {
        canvas.plot(g.position(u).x, g.position(u).y, 'u');
        ++unsafe_count;
        break;
      }
    }
  }
  for (std::size_t i = 1; i < r_lgf.path.size(); ++i) {
    Vec2 a = g.position(r_lgf.path[i - 1]), b = g.position(r_lgf.path[i]);
    canvas.line(a.x, a.y, b.x, b.y, 'o');
  }
  for (std::size_t i = 1; i < r_slgf2.path.size(); ++i) {
    Vec2 a = g.position(r_slgf2.path[i - 1]), b = g.position(r_slgf2.path[i]);
    canvas.line(a.x, a.y, b.x, b.y, '#');
  }
  canvas.plot(g.position(best_s).x, g.position(best_s).y, 'S');
  canvas.plot(g.position(best_d).x, g.position(best_d).y, 'D');

  std::fputs(canvas.render().c_str(), stdout);
  std::printf("legend: . node   u unsafe node   : forbidden area   o LGF path"
              "   # SLGF2 path   S source   D destination\n\n");

  if (!svg_path.empty()) {
    SvgCanvas svg(net.deployment().field, 4.0);
    for (const Polygon& area : net.deployment().forbidden_areas) {
      svg.polygon(area, "#f4c7c3", "#c0392b", 0.3, 0.8);
    }
    for (NodeId u = 0; u < g.size(); ++u) {
      bool unsafe = false;
      for (ZoneType t : kAllZoneTypes) unsafe |= !net.safety().is_safe(u, t);
      svg.circle(g.position(u), 0.8, unsafe ? "#e67e22" : "#95a5a6");
    }
    std::vector<Vec2> lgf_pts, slgf2_pts;
    for (NodeId u : r_lgf.path) lgf_pts.push_back(g.position(u));
    for (NodeId u : r_slgf2.path) slgf2_pts.push_back(g.position(u));
    svg.polyline(lgf_pts, "#2980b9", 0.8, 0.85);
    svg.polyline(slgf2_pts, "#27ae60", 1.0, 0.95);
    svg.circle(g.position(best_s), 2.2, "#2c3e50");
    svg.text(g.position(best_s) + Vec2{2.5, 2.5}, "S", 6.0);
    svg.circle(g.position(best_d), 2.2, "#2c3e50");
    svg.text(g.position(best_d) + Vec2{2.5, 2.5}, "D", 6.0);
    if (svg.write_file(svg_path)) {
      std::printf("wrote %s (blue = LGF, green = SLGF2)\n\n", svg_path.c_str());
    }
  }
  std::printf("%zu nodes unsafe in some type; LGF: %zu hops (%zu perimeter), "
              "SLGF2: %zu hops (%zu backup, %zu perimeter)\n",
              unsafe_count, r_lgf.hops(), r_lgf.perimeter_hops(),
              r_slgf2.hops(), r_slgf2.backup_hops(), r_slgf2.perimeter_hops());

  if (!json_path.empty()) {
    ScenarioReport report;
    report.scenario = "hole-field-example";
    report.param("nodes", JsonValue::of(nodes));
    report.param("unsafe_nodes",
                 JsonValue::of(static_cast<std::uint64_t>(unsafe_count)));
    auto route_entry = [](const PathResult& r) {
      JsonValue entry = JsonValue::object();
      entry.set("hops", JsonValue::of(static_cast<std::uint64_t>(r.hops())));
      entry.set("perimeter_hops",
                JsonValue::of(static_cast<std::uint64_t>(r.perimeter_hops())));
      entry.set("backup_hops",
                JsonValue::of(static_cast<std::uint64_t>(r.backup_hops())));
      entry.set("length_m", JsonValue::of(r.length));
      return entry;
    };
    report.param("lgf", route_entry(r_lgf));
    report.param("slgf2", route_entry(r_slgf2));
    if (!JsonSink(json_path).emit(report)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }

  // Show one estimated unsafe area as the paper's [x_u:x_u(1), y_u:y_u(2)].
  for (NodeId u = 0; u < g.size(); ++u) {
    for (ZoneType t : kAllZoneTypes) {
      auto e = estimate_for(g, net.safety(), u, t);
      if (!e || e->rect.area() < 100.0) continue;
      std::printf("example estimate: node %u is %s-unsafe, E = "
                  "[%.0f:%.0f, %.0f:%.0f] (%.0f m^2)\n",
                  u, t == ZoneType::k1   ? "type-1"
                     : t == ZoneType::k2 ? "type-2"
                     : t == ZoneType::k3 ? "type-3"
                                         : "type-4",
                  e->rect.lo().x, e->rect.hi().x, e->rect.lo().y,
                  e->rect.hi().y, e->rect.area());
      return 0;
    }
  }
  return 0;
}
