/// \file failure_dynamics.cpp
/// The paper's Section 1 lists dynamic hole causes: node failures, power
/// exhaustion, jamming. This example kills a patch of nodes mid-operation,
/// re-runs the *distributed* safety construction (Algorithm 2) on the
/// degraded network, and shows (a) how the labeling reacts, (b) what the
/// incremental reconstruction costs in rounds/messages, and (c) how each
/// routing scheme copes before and after.
///
///   ./failure_dynamics [--nodes=700] [--seed=3] [--blast=35]

#include <cstdio>
#include <vector>

#include "core/network.h"
#include "graph/graph_algos.h"
#include "report/sink.h"
#include "routing/gf.h"
#include "routing/lgf.h"
#include "routing/slgf.h"
#include "safety/distributed.h"
#include "safety/incremental.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace spr;

  int nodes = 700;
  unsigned long long seed = 3;
  double blast = 35.0;
  std::string json_path;
  FlagSet flags("failure_dynamics: labeling and routing under node failures");
  flags.add_int("nodes", &nodes, "number of sensors");
  flags.add_uint64("seed", &seed, "deployment seed");
  flags.add_double("blast", &blast, "radius (m) of the failure patch");
  flags.add_string("json", &json_path,
                   "also write a machine-readable report here");
  if (!flags.parse(argc, argv)) return 1;

  NetworkConfig config;
  config.deployment.node_count = nodes;
  config.seed = seed;
  Network before = Network::create(config);

  // Choose a routable pair, then fail every node in a disc placed on the
  // midpoint of the straight line — the worst spot for this pair.
  Rng rng(seed ^ 0xdead);
  auto [s, d] = before.random_connected_interior_pair(rng);
  if (s == kInvalidNode) {
    std::printf("no routable pair\n");
    return 1;
  }
  Vec2 mid = midpoint(before.graph().position(s), before.graph().position(d));
  std::vector<NodeId> casualties;
  for (NodeId u = 0; u < before.graph().size(); ++u) {
    if (u == s || u == d) continue;
    if (distance(before.graph().position(u), mid) <= blast) {
      casualties.push_back(u);
    }
  }

  Deployment degraded = before.deployment();
  // Rebuild the network facade over the degraded graph: positions are kept,
  // failed nodes lose their links.
  UnitDiskGraph dead_graph = before.graph().with_failures(casualties);
  std::vector<Vec2> alive_positions;
  for (NodeId u = 0; u < dead_graph.size(); ++u) {
    if (dead_graph.alive(u)) alive_positions.push_back(dead_graph.position(u));
  }

  std::printf("failure patch: %.0fm disc at (%.0f,%.0f) kills %zu of %d "
              "nodes\n\n",
              blast, mid.x, mid.y, casualties.size(), nodes);

  // Distributed reconstruction cost on the degraded network, compared with
  // the incremental updater (safety/incremental.h) that touches only the
  // failure's neighborhood.
  InterestArea degraded_area(dead_graph, dead_graph.range());
  auto rebuilt = compute_safety_distributed(dead_graph, degraded_area);
  std::printf("distributed relabeling after failure: %s\n",
              rebuilt.stats.to_string().c_str());
  SafetyInfo incremental = before.safety();
  auto inc_stats = update_safety_after_failures(dead_graph, degraded_area,
                                                casualties, incremental);
  std::printf("incremental update: %zu seeds, %zu re-evaluations, %zu flips "
              "(exactly matches full recompute: %s)\n",
              inc_stats.seeds, inc_stats.reevaluations, inc_stats.flips,
              incremental == rebuilt.info ? "yes" : "NO");
  SafetyInfo before_info = before.safety();
  std::size_t flips = 0;
  for (NodeId u = 0; u < dead_graph.size(); ++u) {
    if (!dead_graph.alive(u)) continue;
    for (ZoneType t : kAllZoneTypes) {
      if (before_info.is_safe(u, t) != rebuilt.info.is_safe(u, t)) ++flips;
    }
  }
  std::printf("safety statuses changed on %zu (node,type) pairs; unsafe "
              "nodes %zu -> %zu\n\n",
              flips, before_info.unsafe_node_count(),
              rebuilt.info.unsafe_node_count());

  ScenarioReport report;
  report.scenario = "failure-dynamics-example";
  report.param("nodes", JsonValue::of(nodes));
  report.param("casualties",
               JsonValue::of(static_cast<std::uint64_t>(casualties.size())));
  report.param("incremental_seeds",
               JsonValue::of(static_cast<std::uint64_t>(inc_stats.seeds)));
  report.param("incremental_reevaluations",
               JsonValue::of(static_cast<std::uint64_t>(inc_stats.reevaluations)));
  report.param("status_flips", JsonValue::of(static_cast<std::uint64_t>(flips)));
  report.param("matches_full_recompute",
               JsonValue::of(incremental == rebuilt.info));
  auto write_report = [&]() {
    if (json_path.empty()) return true;
    if (JsonSink(json_path).emit(report)) return true;
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return false;
  };

  // Route the same pair before and after.
  if (!connected(dead_graph, s, d)) {
    std::printf("the failure disconnected the pair; no routing possible\n");
    report.param("pair_disconnected", JsonValue::of(true));
    return write_report() ? 0 : 1;
  }
  JsonValue routes = JsonValue::array();
  std::printf("%-8s %18s %22s\n", "scheme", "before (hops/len)",
              "after (hops/len/status)");
  InterestArea before_area(before.graph(), before.graph().range());
  PlanarOverlay degraded_overlay(dead_graph, PlanarOverlay::Kind::kGabriel);
  BoundHoleInfo degraded_boundhole(dead_graph);
  for (Scheme scheme : {Scheme::kGf, Scheme::kLgf, Scheme::kSlgf, Scheme::kSlgf2}) {
    auto router_before = before.make_router(scheme);
    PathResult rb = router_before->route(s, d);
    // Routers over the degraded substrate.
    std::unique_ptr<Router> router_after;
    switch (scheme) {
      case Scheme::kGf:
        router_after = std::make_unique<GfRouter>(
            dead_graph, degraded_overlay, &degraded_boundhole,
            GfRouter::Recovery::kBoundHole);
        break;
      case Scheme::kLgf:
        router_after = std::make_unique<LgfRouter>(dead_graph);
        break;
      case Scheme::kSlgf:
        router_after = std::make_unique<SlgfRouter>(dead_graph, rebuilt.info);
        break;
      default:
        router_after = std::make_unique<Slgf2Router>(dead_graph, rebuilt.info);
    }
    PathResult ra = router_after->route(s, d);
    std::printf("%-8s %10zu/%-7.0f %12zu/%-7.0f %s\n", scheme_name(scheme),
                rb.hops(), rb.length, ra.hops(), ra.length,
                ra.delivered() ? "delivered" : "FAILED");
    JsonValue entry = JsonValue::object();
    entry.set("scheme", JsonValue::of(scheme_name(scheme)));
    entry.set("hops_before", JsonValue::of(static_cast<std::uint64_t>(rb.hops())));
    entry.set("hops_after", JsonValue::of(static_cast<std::uint64_t>(ra.hops())));
    entry.set("delivered_after", JsonValue::of(ra.delivered()));
    routes.push(std::move(entry));
  }
  report.param("routes", std::move(routes));
  std::printf("\nthe safety model adapts: the new hole is labeled unsafe and\n"
              "SLGF2 detours around it without blind perimeter probing.\n");
  return write_report() ? 0 : 1;
}
