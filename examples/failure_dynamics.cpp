/// \file failure_dynamics.cpp
/// The paper's Section 1 lists dynamic hole causes: node failures, power
/// exhaustion, jamming. This example streams packets across a routable
/// pair while a disc of nodes dies *mid-stream* — rebased on the
/// discrete-event StreamSim (sim/stream_sim.h), which replaces the old
/// route-before/route-after snapshot comparison: the failure wave lands
/// between the hops of in-flight packets, the safety labeling updates
/// incrementally (Network::with_failures + update_safety_after_failures,
/// cross-checked against a from-scratch recompute), and every scheme's
/// packets re-plan on the degraded substrate.
///
///   ./failure_dynamics [--nodes=700] [--seed=3] [--blast=35]
///                      [--packets=40] [--json=out.json]

#include <cstdio>
#include <vector>

#include "core/network.h"
#include "graph/graph_algos.h"
#include "report/serialize.h"
#include "report/sink.h"
#include "sim/stream_sim.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace spr;

  int nodes = 700;
  unsigned long long seed = 3;
  double blast = 35.0;
  int packets = 40;
  std::string json_path;
  FlagSet flags("failure_dynamics: streaming under a mid-stream node blast");
  flags.add_int("nodes", &nodes, "number of sensors");
  flags.add_uint64("seed", &seed, "deployment seed");
  flags.add_double("blast", &blast, "radius (m) of the failure patch");
  flags.add_int("packets", &packets, "packets in the stream");
  flags.add_string("json", &json_path,
                   "also write a machine-readable report here");
  if (!flags.parse(argc, argv)) return 1;

  NetworkConfig config;
  config.deployment.node_count = nodes;
  config.seed = seed;
  Network net = Network::create(config);

  // Choose a routable pair, then fail every node in a disc placed on the
  // midpoint of the straight line — the worst spot for this pair.
  Rng rng(seed ^ 0xdead);
  auto [s, d] = net.random_connected_interior_pair(rng);
  if (s == kInvalidNode) {
    std::printf("no routable pair\n");
    return 1;
  }
  Vec2 mid = midpoint(net.graph().position(s), net.graph().position(d));
  std::vector<NodeId> casualties;
  for (NodeId u = 0; u < net.graph().size(); ++u) {
    if (u == s || u == d) continue;
    if (distance(net.graph().position(u), mid) <= blast) {
      casualties.push_back(u);
    }
  }
  std::printf("failure patch: %.0fm disc at (%.0f,%.0f) kills %zu of %d "
              "nodes, half-way through a %d-packet stream %u -> %u\n\n",
              blast, mid.x, mid.y, casualties.size(), nodes, packets, s, d);

  // One wave at mid-stream; the halves before/after it show the impact.
  StreamConfig sc;
  sc.pairs.emplace_back(s, d);
  sc.packets = packets;
  sc.packet_interval = 1.0;
  sc.hop_delay = 0.2;
  sc.seed = seed;
  sc.verify_relabeling = true;
  StreamWave wave;
  wave.time = static_cast<double>(packets) * sc.packet_interval * 0.5;
  wave.casualties = casualties;
  sc.waves.push_back(std::move(wave));

  StreamSim sim(std::move(net), sc);
  StreamStats stats = sim.run();

  if (!stats.waves.empty()) {
    const WaveRecord& record = stats.waves.front();
    std::printf("incremental relabeling at t=%.1f: %zu seeds, %zu "
                "re-evaluations, %zu flips (exactly matches full recompute: "
                "%s)\n",
                record.time, record.relabel.seeds,
                record.relabel.reevaluations, record.relabel.flips,
                record.verified && record.matches_full_recompute ? "yes"
                                                                 : "NO");
    std::printf("in-flight at the wave: %zu re-planned, %zu dropped with "
                "their carrier\n\n",
                record.packets_in_flight, record.packets_dropped);
  }

  std::printf("%-8s %9s %8s %10s %7s %9s %8s\n", "scheme", "delivered",
              "deadend", "ttl/failed", "hops", "stretch", "replans");
  for (const StreamSchemeStats& scheme : stats.schemes) {
    std::printf("%-8s %4zu/%-4zu %8zu %7zu/%-2zu %7.1f %9.2f %8.2f\n",
                scheme.label.c_str(), scheme.delivered, scheme.injected,
                scheme.dead_end, scheme.ttl_expired, scheme.node_failed,
                scheme.hops.empty() ? 0.0 : scheme.hops.mean(),
                scheme.stretch_hops.empty() ? 0.0
                                            : scheme.stretch_hops.mean(),
                scheme.replans.empty() ? 0.0 : scheme.replans.mean());
  }

  if (!json_path.empty()) {
    ScenarioReport report;
    report.scenario = "failure-dynamics-example";
    report.param("nodes", JsonValue::of(nodes));
    report.param("casualties",
                 JsonValue::of(static_cast<std::uint64_t>(casualties.size())));
    report.param("blast_radius_m", JsonValue::of(blast));
    report.param("stream", stream_stats_json(stats));
    if (!JsonSink(json_path).emit(report)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }

  std::printf("\nthe safety model adapts mid-stream: the new hole is labeled\n"
              "unsafe by the incremental update and SLGF2 detours around it\n"
              "without blind perimeter probing.\n");
  return 0;
}
