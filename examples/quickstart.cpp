/// \file quickstart.cpp
/// Smallest end-to-end use of the library: deploy a WASN, build the safety
/// information, route one packet with each scheme, and print the results.
///
///   ./quickstart [--nodes=600] [--seed=42] [--fa] [--json=out.json]

#include <cstdio>

#include "core/network.h"
#include "graph/graph_algos.h"
#include "report/sink.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace spr;

  int nodes = 600;
  unsigned long long seed = 42;
  bool fa = false;
  std::string json_path;
  FlagSet flags("quickstart: route one packet with GF/LGF/SLGF/SLGF2");
  flags.add_int("nodes", &nodes, "number of sensors in the 200m x 200m field");
  flags.add_uint64("seed", &seed, "deployment seed");
  flags.add_bool("fa", &fa, "use the forbidden-area (large holes) model");
  flags.add_string("json", &json_path,
                   "also write a machine-readable report here");
  if (!flags.parse(argc, argv)) return 1;

  // 1. Deploy the network and derive everything the routers need: the
  //    unit-disk graph, interest area, safety labeling + shape estimates,
  //    Gabriel overlay and BOUNDHOLE boundaries.
  NetworkConfig config;
  config.deployment.node_count = nodes;
  config.deployment.model = fa ? DeployModel::kForbiddenAreas : DeployModel::kIdeal;
  config.seed = seed;
  Network net = Network::create(config);

  std::printf("network: %d nodes, %zu links, avg degree %.1f, %zu unsafe nodes\n",
              nodes, net.graph().edge_count(), net.graph().average_degree(),
              net.safety().unsafe_node_count());

  // 2. Pick a connected source/destination pair inside the interest area
  //    (edge nodes are excluded, as in the paper), preferring a far pair so
  //    the path is interesting.
  Rng rng(seed ^ 0xbeef);
  NodeId s = kInvalidNode, d = kInvalidNode;
  double best = -1.0;
  for (int trial = 0; trial < 32; ++trial) {
    auto [a, b] = net.random_connected_interior_pair(rng);
    if (a == kInvalidNode) continue;
    double dist = distance(net.graph().position(a), net.graph().position(b));
    if (dist > best) {
      best = dist;
      s = a;
      d = b;
    }
  }
  if (s == kInvalidNode) {
    std::printf("no routable pair found (network too small?)\n");
    return 1;
  }
  Vec2 ps = net.graph().position(s), pd = net.graph().position(d);
  auto optimal = bfs_path(net.graph(), s, d);
  std::printf("routing %u(%.0f,%.0f) -> %u(%.0f,%.0f), straight line %.1fm, "
              "optimal %zu hops\n\n",
              s, ps.x, ps.y, d, pd.x, pd.y, distance(ps, pd), optimal.hops());

  // 3. Route with each scheme and compare; the structured report mirrors
  //    the printed comparison for machine consumers (see report/sink.h).
  ScenarioReport report;
  report.scenario = "quickstart";
  report.param("nodes", JsonValue::of(nodes));
  report.param("optimal_hops",
               JsonValue::of(static_cast<std::uint64_t>(optimal.hops())));
  JsonValue results = JsonValue::array();
  std::printf("%-8s %-10s %5s %9s %8s %8s %7s\n", "scheme", "status", "hops",
              "length_m", "greedy", "backup", "perim");
  for (Scheme scheme : {Scheme::kGf, Scheme::kLgf, Scheme::kSlgf, Scheme::kSlgf2}) {
    auto router = net.make_router(scheme);
    PathResult r = router->route(s, d);
    std::printf("%-8s %-10s %5zu %9.1f %8zu %8zu %7zu\n",
                scheme_name(scheme),
                r.delivered() ? "delivered" : "FAILED", r.hops(), r.length,
                r.greedy_hops(), r.backup_hops(), r.perimeter_hops());
    JsonValue entry = JsonValue::object();
    entry.set("scheme", JsonValue::of(scheme_name(scheme)));
    entry.set("delivered", JsonValue::of(r.delivered()));
    entry.set("hops", JsonValue::of(static_cast<std::uint64_t>(r.hops())));
    entry.set("length_m", JsonValue::of(r.length));
    results.push(std::move(entry));
  }
  report.param("routes", std::move(results));
  if (!json_path.empty() && !JsonSink(json_path).emit(report)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
