/// \file streaming_delivery.cpp
/// The paper's motivating workload (Section 1): a streaming service that
/// delivers a large amount of data from one sensor to a sink. A
/// straightforward path matters twice over there — it spends less energy in
/// detours, and it interferes with fewer concurrent transmissions because
/// fewer nodes relay the stream.
///
/// This example streams `--packets` packets over each scheme's path and
/// reports: relays involved (interference footprint), total transmissions,
/// per-node peak load, and a simple radio-energy estimate.
///
///   ./streaming_delivery [--nodes=650] [--seed=7] [--packets=1000]
///                        [--csv=out.csv]

#include <cstdio>

#include "core/network.h"
#include "graph/graph_algos.h"
#include "radio/energy.h"
#include "radio/interference.h"
#include "report/sink.h"
#include "stats/table.h"
#include "util/flags.h"

namespace {
constexpr double kPacketBits = 8.0 * 1024.0;  // 1 kB payload
}  // namespace

int main(int argc, char** argv) {
  using namespace spr;

  int nodes = 650;
  unsigned long long seed = 7;
  int packets = 1000;
  std::string csv_path;
  FlagSet flags("streaming_delivery: energy/interference of a data stream");
  flags.add_int("nodes", &nodes, "number of sensors");
  flags.add_uint64("seed", &seed, "deployment seed");
  flags.add_int("packets", &packets, "packets in the stream");
  flags.add_string("csv", &csv_path, "also export the comparison as CSV");
  if (!flags.parse(argc, argv)) return 1;

  NetworkConfig config;
  config.deployment.node_count = nodes;
  config.deployment.model = DeployModel::kForbiddenAreas;
  config.seed = seed;
  Network net = Network::create(config);

  // Stream across the field: prefer the farthest connected pair sampled.
  Rng rng(seed ^ 0x51);
  NodeId source = kInvalidNode, sink = kInvalidNode;
  double best = -1.0;
  for (int trial = 0; trial < 32; ++trial) {
    auto [a, b] = net.random_connected_interior_pair(rng);
    if (a == kInvalidNode) continue;
    double dist = distance(net.graph().position(a), net.graph().position(b));
    if (dist > best) {
      best = dist;
      source = a;
      sink = b;
    }
  }
  if (source == kInvalidNode) {
    std::printf("no routable pair\n");
    return 1;
  }
  auto optimal = dijkstra_path(net.graph(), source, sink);
  std::printf("stream: node %u -> sink %u, %d packets of 1kB; optimal path "
              "%zu hops / %.1fm\n\n",
              source, sink, packets, optimal.hops(), optimal.length);

  EnergyModel model;
  PathResult optimal_as_path;
  optimal_as_path.status = RouteStatus::kDelivered;
  optimal_as_path.path = optimal.path;
  double optimal_stream_j = stream_energy(
      net.graph(), optimal_as_path, model, kPacketBits,
      static_cast<std::size_t>(packets));

  std::printf("%-8s %6s %9s %8s %12s %11s %11s %9s\n", "scheme", "hops",
              "length_m", "relays", "transmissions", "energy_mJ",
              "vs_optimal", "blocked");
  Table csv_table({"scheme", "hops", "length_m", "relays", "transmissions",
                   "energy_mJ", "vs_optimal", "blocked"});
  for (Scheme scheme : {Scheme::kGf, Scheme::kLgf, Scheme::kSlgf, Scheme::kSlgf2}) {
    auto router = net.make_router(scheme);
    PathResult r = router->route(source, sink);
    if (!r.delivered()) {
      std::printf("%-8s FAILED to deliver\n", scheme_name(scheme));
      continue;
    }
    // The whole stream follows the same path (static network): per-packet
    // cost scales linearly. "blocked" is the interference footprint — nodes
    // that cannot receive other traffic while the stream transmits.
    PathEnergy pe = path_energy(net.graph(), r, model, kPacketBits);
    double stream_j = pe.total_j * packets;
    auto footprint = interference_footprint(net.graph(), r);
    std::printf("%-8s %6zu %9.1f %8zu %13zu %11.2f %10.2fx %9zu\n",
                scheme_name(scheme), r.hops(), r.length, pe.relays,
                r.hops() * static_cast<std::size_t>(packets),
                stream_j * 1000.0, stream_j / optimal_stream_j,
                footprint.blocked_nodes);
    csv_table.add_row({scheme_name(scheme), std::to_string(r.hops()),
                       Table::fmt(r.length, 1), std::to_string(pe.relays),
                       std::to_string(r.hops() *
                                      static_cast<std::size_t>(packets)),
                       Table::fmt(stream_j * 1000.0, 2),
                       Table::fmt(stream_j / optimal_stream_j, 2),
                       std::to_string(footprint.blocked_nodes)});
  }
  if (!csv_path.empty()) {
    ScenarioReport report;
    report.scenario = "streaming-delivery";
    report.add_table(std::move(csv_table));
    if (!CsvSink(csv_path).emit(report)) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
  }

  std::printf("\nfewer relays -> smaller interference footprint for other\n"
              "transmissions; straighter paths -> lower energy per stream.\n");
  return 0;
}
