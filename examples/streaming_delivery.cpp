/// \file streaming_delivery.cpp
/// The paper's motivating workload (Section 1): a streaming service that
/// delivers a large amount of data from one sensor to a sink. Rebased on
/// the discrete-event StreamSim (sim/stream_sim.h): every packet moves hop
/// by hop on a shared timeline, and — unlike the old static estimate that
/// routed once and multiplied — failure waves can land *mid-stream*, with
/// the safety labeling updated incrementally and in-flight packets
/// re-planning from wherever they are.
///
///   ./streaming_delivery [--nodes=650] [--seed=7] [--packets=1000]
///                        [--fail=0.15] [--waves=2]
///                        [--csv=out.csv] [--json=out.json]

#include <algorithm>
#include <cstdio>

#include "core/network.h"
#include "graph/graph_algos.h"
#include "radio/energy.h"
#include "report/serialize.h"
#include "report/sink.h"
#include "sim/stream_sim.h"
#include "stats/table.h"
#include "util/flags.h"

namespace {
constexpr double kPacketBits = 8.0 * 1024.0;  // 1 kB payload
}  // namespace

int main(int argc, char** argv) {
  using namespace spr;

  int nodes = 650;
  unsigned long long seed = 7;
  int packets = 1000;
  double fail = 0.15;
  int waves = 2;
  std::string csv_path, json_path;
  FlagSet flags("streaming_delivery: a packet stream under mid-stream failures");
  flags.add_int("nodes", &nodes, "number of sensors");
  flags.add_uint64("seed", &seed, "deployment seed");
  flags.add_int("packets", &packets, "packets in the stream");
  flags.add_double("fail", &fail, "fraction of nodes failing mid-stream");
  flags.add_int("waves", &waves, "failure waves the failures split into");
  flags.add_string("csv", &csv_path, "also export the comparison as CSV");
  flags.add_string("json", &json_path, "also write the full stream stats here");
  if (!flags.parse(argc, argv)) return 1;

  NetworkConfig config;
  config.deployment.node_count = nodes;
  config.deployment.model = DeployModel::kForbiddenAreas;
  config.seed = seed;
  Network net = Network::create(config);

  // Stream across the field: prefer the farthest connected pair sampled.
  Rng rng(seed ^ 0x51);
  NodeId source = kInvalidNode, sink = kInvalidNode;
  double best = -1.0;
  for (int trial = 0; trial < 32; ++trial) {
    auto [a, b] = net.random_connected_interior_pair(rng);
    if (a == kInvalidNode) continue;
    double dist = distance(net.graph().position(a), net.graph().position(b));
    if (dist > best) {
      best = dist;
      source = a;
      sink = b;
    }
  }
  if (source == kInvalidNode) {
    std::printf("no routable pair\n");
    return 1;
  }
  auto optimal = dijkstra_path(net.graph(), source, sink);
  std::printf("stream: node %u -> sink %u, %d packets of 1kB; optimal path "
              "%zu hops / %.1fm at injection\n",
              source, sink, packets, optimal.hops(), optimal.length);

  // The stream's world: `fail` of the nodes dies across `waves` waves
  // spread over the injection span, never the endpoints themselves.
  StreamConfig sc;
  sc.pairs.emplace_back(source, sink);
  sc.packets = packets;
  sc.packet_interval = 0.5;
  sc.hop_delay = 0.1;
  sc.seed = seed;
  sc.verify_relabeling = true;
  Rng fail_rng(seed ^ 0x99);
  sc.waves = spread_failure_waves(
      net.graph(), sc.pairs, fail, waves,
      static_cast<double>(packets) * sc.packet_interval, fail_rng);
  std::size_t total_casualties = 0;
  for (const StreamWave& wave : sc.waves) {
    total_casualties += wave.casualties.size();
  }
  if (total_casualties > 0) {
    std::printf("failures: %zu nodes die across %zu waves mid-stream\n\n",
                total_casualties, sc.waves.size());
  } else {
    std::printf("failures: none (static stream)\n\n");
  }

  StreamSim sim(std::move(net), sc);
  StreamStats stats = sim.run();

  EnergyModel model;
  std::printf("%-8s %9s %7s %9s %9s %9s %8s %11s\n", "scheme", "delivered",
              "hops", "length_m", "stretch", "latency_s", "replans",
              "energy_mJ*");
  Table csv_table({"scheme", "injected", "delivered", "hops", "length_m",
                   "stretch", "latency_s", "replans", "energy_mJ"});
  for (const StreamSchemeStats& s : stats.schemes) {
    double hops = s.hops.empty() ? 0.0 : s.hops.mean();
    double length = s.length.empty() ? 0.0 : s.length.mean();
    double stretch = s.stretch_hops.empty() ? 0.0 : s.stretch_hops.mean();
    double latency = s.latency.empty() ? 0.0 : s.latency.mean();
    double replans = s.replans.empty() ? 0.0 : s.replans.mean();
    // First-order estimate from the stream totals, assuming uniform hop
    // length within each delivered packet's walk (*: estimate, not a
    // per-hop account — the paths are not retained across the stream).
    double mean_hop_m = hops > 0.0 ? length / hops : 0.0;
    double per_packet_j = hops * model.hop_energy(mean_hop_m, kPacketBits);
    double stream_mj = per_packet_j * static_cast<double>(s.delivered) * 1e3;
    std::printf("%-8s %4zu/%-4zu %7.1f %9.1f %9.2f %9.2f %8.2f %11.2f\n",
                s.label.c_str(), s.delivered, s.injected, hops, length,
                stretch, latency, replans, stream_mj);
    csv_table.add_row({s.label, std::to_string(s.injected),
                       std::to_string(s.delivered), Table::fmt(hops, 1),
                       Table::fmt(length, 1), Table::fmt(stretch, 2),
                       Table::fmt(latency, 2), Table::fmt(replans, 2),
                       Table::fmt(stream_mj, 2)});
  }
  for (const WaveRecord& record : stats.waves) {
    std::printf("wave t=%.1f: %zu casualties, %zu in-flight re-planned, %zu "
                "dropped; relabel %zu flips (%s from-scratch recompute)\n",
                record.time, record.casualties, record.packets_in_flight,
                record.packets_dropped, record.relabel.flips,
                record.verified && record.matches_full_recompute
                    ? "matches"
                    : "DIFFERS FROM");
  }

  // Structured exports go through the shared report machinery: one
  // ScenarioReport, rendered by whichever sinks were requested.
  ScenarioReport report;
  report.scenario = "streaming-delivery-example";
  report.param("nodes", JsonValue::of(nodes));
  report.param("source", JsonValue::of(static_cast<std::uint64_t>(source)));
  report.param("sink", JsonValue::of(static_cast<std::uint64_t>(sink)));
  report.param("stream", stream_stats_json(stats));
  report.add_table(std::move(csv_table));
  if (!csv_path.empty() && !CsvSink(csv_path).emit(report)) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }
  if (!json_path.empty() && !JsonSink(json_path).emit(report)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }

  std::printf("\nsafety-aware schemes keep delivering after the waves: the\n"
              "labels update incrementally and in-flight packets re-plan\n"
              "around the new holes instead of probing them blind.\n");
  return 0;
}
