"""Micro-AST over C++ sources: the analyzer's fallback front-end.

The analyzer's rules (rules.py) run over a deliberately small intermediate
model — classes with typed fields, functions with ordered statements —
that two front-ends can produce: clang_backend.py lowers libclang cursors
into it when the bindings are importable, and this module lexes and
scope-scans the raw source when they are not (the common case on build
boxes without libclang wheels; mirrors spr_lint's libclang-or-fallback
split).

The fallback is not a C++ parser. It is a brace/paren-matched token
scanner tuned to this repo's idiom (one class per header, root-relative
includes, clang-format layout). Where real C++ would defeat it (macros
beyond simple constants, template metaprogramming), the repo's style gate
keeps such code out of src/; fixtures pin the constructs the rules need.

Model:
  Token(kind, text, line)           kind: id | num | punct
  Field(name, type_text, line)
  ClassInfo(name, fields, line, file)
  Param(name, type_text)
  Stmt(tokens, line, text)          ordered, flow-insensitive statement list
  FunctionInfo(name, class_name, return_type_text, params, stmts, ...)
  Registry                          cross-file class/function/global lookup
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_ID_RE = re.compile(r"[A-Za-z_]\w*")
_NUM_RE = re.compile(r"(?:0[xX][0-9a-fA-F']+|[0-9][0-9a-fA-F'.eEpPxXulUL]*)")
# Longest-match punctuation; multi-char operators first.
_PUNCT = [
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", "~", "!", "%", "^", "&", "*", "(", ")", "-", "+", "=", "{", "}",
    "[", "]", "|", ";", ":", "<", ">", ",", ".", "?", "/",
]

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch"}


@dataclass
class Token:
    kind: str
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.text}@{self.line}"


def lex(stripped_lines: list[str]) -> list[Token]:
    """Tokens from comment/string-stripped source lines.

    Preprocessor directive lines (and their backslash continuations) are
    dropped whole: rules reason about code, and `#include`/macro bodies
    would otherwise masquerade as statements.
    """
    tokens: list[Token] = []
    in_directive = False
    for line_no, line in enumerate(stripped_lines, start=1):
        stripped = line.lstrip()
        if in_directive or stripped.startswith("#"):
            in_directive = line.rstrip().endswith("\\")
            continue
        i = 0
        n = len(line)
        while i < n:
            c = line[i]
            if c.isspace():
                i += 1
                continue
            m = _ID_RE.match(line, i)
            if m:
                tokens.append(Token("id", m.group(0), line_no))
                i = m.end()
                continue
            if c.isdigit():
                m = _NUM_RE.match(line, i)
                if m:
                    tokens.append(Token("num", m.group(0), line_no))
                    i = m.end()
                    continue
            for p in _PUNCT:
                if line.startswith(p, i):
                    tokens.append(Token("punct", p, line_no))
                    i += len(p)
                    break
            else:
                i += 1  # stray byte: skip
    return tokens


@dataclass
class Field:
    name: str
    type_text: str
    line: int


@dataclass
class ClassInfo:
    name: str
    fields: list[Field]
    line: int
    file: str

    def field(self, name: str) -> Field | None:
        for f in self.fields:
            if f.name == name:
                return f
        return None


@dataclass
class Param:
    name: str
    type_text: str


@dataclass
class Stmt:
    tokens: list[Token]
    line: int

    @property
    def text(self) -> str:
        return " ".join(t.text for t in self.tokens)


@dataclass
class FunctionInfo:
    name: str
    class_name: str
    return_type_text: str
    params: list[Param]
    stmts: list[Stmt]
    body_tokens: list[Token]
    line: int
    file: str

    @property
    def qualified(self) -> str:
        return f"{self.class_name}::{self.name}" if self.class_name \
            else self.name


@dataclass
class FileModel:
    path: str
    classes: list[ClassInfo] = field(default_factory=list)
    functions: list[FunctionInfo] = field(default_factory=list)
    globals: list[Field] = field(default_factory=list)


class Registry:
    """Cross-file lookup: class by name, functions, sink files."""

    def __init__(self) -> None:
        self.classes: dict[str, ClassInfo] = {}
        self.functions: list[FunctionInfo] = []
        self.globals: list[Field] = []

    def add(self, model: FileModel) -> None:
        for c in model.classes:
            self.classes.setdefault(c.name, c)
        self.functions.extend(model.functions)
        self.globals.extend(model.globals)

    def class_of(self, fn: FunctionInfo) -> ClassInfo | None:
        return self.classes.get(fn.class_name) if fn.class_name else None


def _match_braces(tokens: list[Token]) -> dict[int, int]:
    """Index of matching '}' for each '{' (and ')' for '(' / ']' for '[')."""
    match: dict[int, int] = {}
    stack: list[int] = []
    pairs = {"{": "}", "(": ")", "[": "]"}
    closers = {"}": "{", ")": "(", "]": "["}
    for i, t in enumerate(tokens):
        if t.text in pairs:
            stack.append(i)
        elif t.text in closers:
            # Tolerate imbalance (macro remnants): pop the nearest opener.
            while stack:
                j = stack.pop()
                if tokens[j].text == closers[t.text]:
                    match[j] = i
                    break
    return match


def _skip_template(tokens: list[Token], i: int) -> int:
    """Given i at 'template', returns index past its <...> parameter list."""
    j = i + 1
    if j < len(tokens) and tokens[j].text == "<":
        depth = 0
        while j < len(tokens):
            if tokens[j].text == "<":
                depth += 1
            elif tokens[j].text == ">":
                depth -= 1
                if depth == 0:
                    return j + 1
            elif tokens[j].text == ">>":
                depth -= 2
                if depth <= 0:
                    return j + 1
            elif tokens[j].text in (";", "{"):
                return j  # gave up: malformed
            j += 1
    return j


def _name_before_paren(tokens: list[Token], paren: int) -> tuple[int, str]:
    """The (possibly qualified) name ending just before tokens[paren] == '('.

    Returns (start_index, 'Class::name') — empty name when the tokens
    before the paren don't look like a declarator id.
    """
    j = paren - 1
    if j < 0:
        return paren, ""
    parts: list[str] = []
    if tokens[j].kind == "punct" and j >= 1 \
            and tokens[j - 1].text == "operator":
        parts = [tokens[j].text, "operator"]
        j -= 2
    elif tokens[j].kind == "id":
        parts = [tokens[j].text]
        j -= 1
        if j >= 0 and tokens[j].text == "~":
            parts.append("~")
            j -= 1
    else:
        return paren, ""
    # Accept a qualification chain: `id ::` pairs (destructors included).
    while j >= 1 and tokens[j].text == "::" and tokens[j - 1].kind == "id":
        parts.append("::")
        parts.append(tokens[j - 1].text)
        j -= 2
    parts.reverse()
    return j + 1, "".join(parts)


_QUALIFIER_TOKENS = {"const", "noexcept", "override", "final", "mutable",
                     "&", "&&", "->", "try"}


def _is_function_body(tokens: list[Token], start: int, brace: int,
                      match: dict[int, int]) -> int:
    """Whether the '{' at `brace` opens a function body for a declaration
    beginning at `start`. Returns the index of the parameter-list '(' or -1.

    Accepts `name(args) quals { `, trailing-return `) -> T {` and ctor
    init lists `) : a_(x), b_{y} {`.
    """
    j = brace - 1
    # Walk back over the init list: `: id(...)` / `: id{...}` groups.
    while j > start:
        t = tokens[j].text
        if t in (")", "}"):
            opener = {")": "(", "}": "{"}[t]
            k = j - 1
            depth = 1
            while k >= start:
                if tokens[k].text == t:
                    depth += 1
                elif tokens[k].text == opener:
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            if k < start:
                return -1
            # `(` preceded by an identifier: call-ish group; keep walking.
            j = k - 1
            continue
        if t in _QUALIFIER_TOKENS or t == "," or t == ":":
            j -= 1
            continue
        if tokens[j].kind == "id":
            # trailing return type tokens / init-list member names
            j -= 1
            continue
        if t in ("<", ">", "::", "*"):
            j -= 1
            continue
        return -1
    # Now find the parameter list: the last top-level `(...)` group whose
    # name precedes it. Rescan forward from start.
    paren = -1
    depth = 0
    k = start
    while k < brace:
        t = tokens[k].text
        if t == "(":
            if depth == 0:
                before = tokens[k - 1] if k > 0 else None
                if before is not None and (
                    before.kind == "id" or before.text in (">", "~")
                    or before.kind == "punct" and k >= 2
                    and tokens[k - 2].text == "operator"
                ):
                    paren = k
            depth += 1
        elif t == ")":
            depth -= 1
        elif t == ":" and depth == 0 and paren != -1:
            break  # ctor init list begins; parameter list already seen
        k += 1
    if paren == -1:
        return -1
    _, name = _name_before_paren(tokens, paren)
    if not name or name.split("::")[-1] in CONTROL_KEYWORDS:
        return -1
    return paren


def _parse_params(tokens: list[Token], paren: int,
                  match: dict[int, int]) -> list[Param]:
    end = match.get(paren)
    if end is None:
        return []
    params: list[Param] = []
    depth = 0
    group: list[Token] = []
    for t in tokens[paren + 1:end]:
        if t.text in ("(", "[", "{", "<"):
            depth += 1
        elif t.text in (")", "]", "}", ">"):
            depth -= 1
        if t.text == "," and depth == 0:
            if group:
                params.append(_param_from(group))
            group = []
        else:
            group.append(t)
    if group:
        params.append(_param_from(group))
    return params


def _param_from(group: list[Token]) -> Param:
    # name = last identifier not part of the type's template args; drop
    # trailing default `= expr`.
    eq = next((i for i, t in enumerate(group) if t.text == "="), len(group))
    group = group[:eq]
    name = ""
    if group and group[-1].kind == "id" and len(group) > 1:
        name = group[-1].text
        group = group[:-1]
    return Param(name, " ".join(t.text for t in group))


def split_statements(tokens: list[Token]) -> list[Stmt]:
    """Ordered statement list for a function body.

    Control-flow braces flush statements (linearized body); lambda bodies
    and brace initializers stay inside their host statement. `;` inside
    parens (for-headers, lambda bodies passed as arguments) never splits.
    """
    stmts: list[Stmt] = []
    cur: list[Token] = []
    paren_kind_stack: list[str] = []
    contain_depth = 0
    pending_lambda = False
    i = 0
    n = len(tokens)

    def flush() -> None:
        nonlocal cur
        if cur:
            stmts.append(Stmt(cur, cur[0].line))
            cur = []

    while i < n:
        t = tokens[i]
        if t.text == "(":
            prev = cur[-1] if cur else None
            if prev is not None and prev.text == "]":
                kind = "lambda"
            elif prev is not None and prev.text in CONTROL_KEYWORDS:
                kind = "control"
            else:
                kind = "call"
            paren_kind_stack.append(kind)
            cur.append(t)
            i += 1
            continue
        if t.text == ")":
            kind = paren_kind_stack.pop() if paren_kind_stack else "call"
            if kind == "lambda":
                pending_lambda = True
            cur.append(t)
            i += 1
            continue
        if t.text == "]" and not paren_kind_stack and contain_depth == 0:
            # `[caps]` followed by `{`: lambda without a parameter list.
            nxt = tokens[i + 1] if i + 1 < n else None
            if nxt is not None and nxt.text in ("{", "(", "mutable",
                                                "noexcept", "->"):
                pending_lambda = True
            cur.append(t)
            i += 1
            continue
        if t.text == "{":
            inside_parens = bool(paren_kind_stack)
            prev = cur[-1] if cur else None
            if inside_parens or contain_depth > 0:
                contain = True
            elif pending_lambda:
                contain = True
            elif prev is not None and (
                prev.text in ("=", ",", ">") or prev.kind == "id"
            ):
                contain = True  # brace initializer
            else:
                contain = False
            if contain:
                contain_depth += 1
                cur.append(t)
            else:
                flush()
            pending_lambda = False
            i += 1
            continue
        if t.text == "}":
            if contain_depth > 0:
                contain_depth -= 1
                cur.append(t)
                # `};` of a lambda-assignment statement ends at the `;`.
            else:
                flush()
            i += 1
            continue
        if t.text == ";" and not paren_kind_stack and contain_depth == 0:
            flush()
            pending_lambda = False
            i += 1
            continue
        cur.append(t)
        i += 1
    flush()
    return stmts


def _parse_field(group: list[Token], file: str) -> Field | None:
    """A class-scope (or namespace-scope) declaration -> Field, or None
    when the group is a function declaration / using / friend / etc."""
    if not group:
        return None
    head = group[0].text
    if head in ("using", "typedef", "friend", "public", "private",
                "protected", "static_assert", "template", "class", "struct",
                "enum", "namespace", "return"):
        return None
    # Name: last identifier before `=`, `{`, or `[` at depth 0; function
    # declarations are recognized by a '(' directly after that name.
    depth = 0
    name_idx = -1
    stop = len(group)
    for i, t in enumerate(group):
        if t.text in ("(", "[", "{", "<"):
            if depth == 0 and t.text in ("{", "["):
                stop = min(stop, i)
            if depth == 0 and t.text == "(":
                # id '(' => function declaration (repo style: members use
                # `{}` or `=` initializers, never parens).
                if i > 0 and group[i - 1].kind == "id":
                    return None
            depth += 1
        elif t.text in (")", "]", "}", ">"):
            depth -= 1
        elif t.text == "=" and depth == 0:
            stop = min(stop, i)
    for i in range(stop - 1, -1, -1):
        if group[i].kind == "id":
            name_idx = i
            break
    if name_idx <= 0:
        return None
    name = group[name_idx].text
    if name == "operator":  # deleted/defaulted operator declarations
        return None
    type_text = " ".join(t.text for t in group[:name_idx])
    if not type_text or type_text in ("return",):
        return None
    return Field(name, type_text, group[0].line)


def parse_file(path: str, stripped_lines: list[str]) -> FileModel:
    tokens = lex(stripped_lines)
    match = _match_braces(tokens)
    model = FileModel(path)
    _scan_scope(tokens, 0, len(tokens), match, model, class_name="")
    return model


def _scan_scope(tokens: list[Token], start: int, end: int,
                match: dict[int, int], model: FileModel,
                class_name: str) -> None:
    i = start
    while i < end:
        t = tokens[i]
        if t.text == "template":
            i = _skip_template(tokens, i)
            continue
        if t.text == "namespace":
            j = i + 1
            while j < end and tokens[j].text not in ("{", ";", "="):
                j += 1
            if j < end and tokens[j].text == "{" and j in match:
                _scan_scope(tokens, j + 1, match[j], match, model, class_name)
                i = match[j] + 1
            else:
                i = j + 1
            continue
        if t.text == "extern":  # extern "C" { ... } — rare; treat inline
            i += 1
            continue
        if t.text in ("class", "struct"):
            prev = tokens[i - 1] if i > start else None
            if prev is not None and prev.text == "enum":
                i += 1
                continue
            # Find the definition brace or the declaration `;`.
            j = i + 1
            name = ""
            while j < end and tokens[j].text not in ("{", ";"):
                if tokens[j].kind == "id" and not name:
                    name = tokens[j].text
                if tokens[j].text == "(":  # `struct` in a declarator — bail
                    break
                j += 1
            if j < end and tokens[j].text == "{" and j in match and name:
                cls = ClassInfo(name, [], t.line, model.path)
                model.classes.append(cls)
                _scan_class_body(tokens, j + 1, match[j], match, model, cls)
                i = match[j] + 1
                # Skip trailing `;` / instance declarators.
                while i < end and tokens[i].text != ";":
                    i += 1
                i += 1
                continue
            i = j + 1
            continue
        if t.text == "enum":
            j = i + 1
            while j < end and tokens[j].text not in ("{", ";"):
                j += 1
            if j < end and tokens[j].text == "{" and j in match:
                i = match[j] + 1
            else:
                i = j + 1
            continue
        if t.text in ("using", "typedef", "friend"):
            while i < end and tokens[i].text != ";":
                i += 1
            i += 1
            continue
        # Declaration or function definition: scan to `;` or body `{`.
        j = i
        depth = 0
        while j < end:
            tj = tokens[j].text
            if tj == "(":
                depth += 1
            elif tj == ")":
                depth -= 1
            elif tj == ";" and depth == 0:
                break
            elif tj == "{" and depth == 0:
                paren = _is_function_body(tokens, i, j, match)
                if paren != -1 and j in match:
                    _add_function(tokens, i, paren, j, match, model,
                                  class_name)
                    j = match[j]
                    # Function bodies end without `;`.
                    break
                # Brace initializer or aggregate: skip the braced group.
                if j in match:
                    j = match[j]
                else:
                    break
            j += 1
        else:
            break
        if j < end and tokens[j].text == "}":
            i = j + 1
            continue
        group = tokens[i:j]
        if class_name == "" and group:
            f = _parse_field(group, model.path)
            if f is not None:
                model.globals.append(f)
        i = j + 1


def _scan_class_body(tokens: list[Token], start: int, end: int,
                     match: dict[int, int], model: FileModel,
                     cls: ClassInfo) -> None:
    i = start
    while i < end:
        t = tokens[i]
        if t.text in ("public", "private", "protected") and i + 1 < end \
                and tokens[i + 1].text == ":":
            i += 2
            continue
        if t.text == "template":
            i = _skip_template(tokens, i)
            continue
        if t.text in ("class", "struct", "enum"):
            prev_i = i
            _scan_scope(tokens, i, end, match, model, class_name=cls.name)
            # _scan_scope consumed from i to end; nested-class scan is a
            # one-shot: find where the nested definition ends and continue.
            j = i + 1
            while j < end and tokens[j].text not in ("{", ";"):
                j += 1
            if j < end and tokens[j].text == "{" and j in match:
                i = match[j] + 1
                while i < end and tokens[i].text != ";":
                    i += 1
                i += 1
            else:
                i = j + 1
            if i <= prev_i:
                i = prev_i + 1
            continue
        if t.text in ("using", "typedef", "friend"):
            while i < end and tokens[i].text != ";":
                i += 1
            i += 1
            continue
        j = i
        depth = 0
        while j < end:
            tj = tokens[j].text
            if tj == "(":
                depth += 1
            elif tj == ")":
                depth -= 1
            elif tj == ";" and depth == 0:
                break
            elif tj == "{" and depth == 0:
                paren = _is_function_body(tokens, i, j, match)
                if paren != -1 and j in match:
                    _add_function(tokens, i, paren, j, match, model, cls.name)
                    j = match[j]
                    break
                if j in match:
                    j = match[j]
                else:
                    break
            j += 1
        else:
            break
        if j < end and tokens[j].text == "}":
            # Function body consumed; skip an optional trailing `;`.
            i = j + 1
            if i < end and tokens[i].text == ";":
                i += 1
            continue
        group = tokens[i:j]
        f = _parse_field(group, model.path)
        if f is not None:
            cls.fields.append(f)
        i = j + 1


def _add_function(tokens: list[Token], start: int, paren: int, brace: int,
                  match: dict[int, int], model: FileModel,
                  scope_class: str) -> None:
    name_start, name = _name_before_paren(tokens, paren)
    class_name = scope_class
    fn_name = name
    if "::" in name:
        parts = name.split("::")
        fn_name = parts[-1]
        class_name = parts[-2] if len(parts) >= 2 else scope_class
    ret = " ".join(t.text for t in tokens[start:name_start]
                   if t.text not in ("inline", "static", "constexpr",
                                     "virtual", "explicit", "friend"))
    params = _parse_params(tokens, paren, match)
    body = tokens[brace + 1:match[brace]]
    model.functions.append(FunctionInfo(
        name=fn_name,
        class_name=class_name,
        return_type_text=ret,
        params=params,
        stmts=split_statements(body),
        body_tokens=body,
        line=tokens[start].line,
        file=model.path,
    ))
