#!/usr/bin/env python3
"""spr_analyze: AST/dataflow contract analyzer for the spr tree.

Where spr_lint is token-level (it catches `rand()` by name), spr_analyze
follows values: arena scratch escaping its reset() scope, spans outliving
the topology epoch that built them, nondeterministic values flowing
through assignments into report/serialize/merge sinks, and parallel
callbacks whose shared writes skip the id-ordered merge discipline. See
rules.py for the rule catalog and tools/spr_analyze/README.md for the
contract each rule defends.

Front-ends: libclang (python bindings) when importable, and a
self-contained token/micro-AST engine otherwise — both lower into the
same model (model.py) so the rules and fixtures behave identically.

Inputs: explicit files/directories, or `--compile-commands
build/compile_commands.json` to analyze exactly the TUs the build sees
(headers under src/ are added alongside). Findings print as
`path:line: [rule] message`; `--sarif out.sarif` additionally writes
SARIF 2.1.0 for code-scanning upload.

False positives are silenced per line with a justified pragma:

    foo();  // spr-analyze: allow(arena-escape) reason why this is fine

or file-wide in the first 10 lines:

    // spr-analyze-file: allow(determinism-taint) reason

A pragma with no reason text is itself a finding.

Exit status: 0 when clean, 1 when any finding, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(os.path.dirname(_HERE))
sys.path.insert(0, _HERE)
sys.path.insert(0, os.path.join(_ROOT, "scripts"))

from spr_source import (Finding, bind_comment_pragmas, collect_files,  # noqa: E402
                        parse_pragmas, relpath, strip_comments_and_strings)

import model  # noqa: E402
import rules as rules_mod  # noqa: E402
from rules import (RULES, check_arena_escape, check_determinism_taint,  # noqa: E402
                   check_merge_ordering, check_view_lifetime,
                   check_view_members, compute_taint_summaries, _sink_names)

try:
    import clang_backend

    HAVE_LIBCLANG = clang_backend.available()
except Exception:  # pragma: no cover - environment dependent
    HAVE_LIBCLANG = False


def load_compile_commands(path: str) -> list[str]:
    """Source files named by a compile_commands.json, absolute paths."""
    with open(path) as f:
        db = json.load(f)
    files = set()
    for entry in db:
        src = entry.get("file", "")
        if not os.path.isabs(src):
            src = os.path.join(entry.get("directory", ""), src)
        files.add(os.path.normpath(src))
    return sorted(files)


def analyze_files(files: list[str], root: str,
                  engine: str) -> list[Finding]:
    """Parses every file, builds the cross-file registry, runs the rules."""
    registry = model.Registry()
    per_file: list[tuple[str, model.FileModel, list[str], list[str]]] = []
    findings: list[Finding] = []

    for path in files:
        rel = relpath(path, root)
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            findings.append(Finding(rel, 0, "pragma", f"unreadable: {e}"))
            continue
        raw_lines = text.split("\n")
        stripped = strip_comments_and_strings(text)
        if engine == "clang" and HAVE_LIBCLANG:
            fm = clang_backend.parse_file(path, rel, stripped)
        else:
            fm = model.parse_file(rel, stripped)
        registry.add(fm)
        per_file.append((rel, fm, raw_lines, stripped))

    # Interprocedural-lite summaries need the whole registry first.
    tainted_fns = compute_taint_summaries(registry)
    sink_names = _sink_names(registry)

    for rel, fm, raw_lines, stripped in per_file:
        pragmas = parse_pragmas(raw_lines, findings, rel, "spr-analyze",
                                RULES)
        bind_comment_pragmas(pragmas, stripped)

        def emit(line_no: int, rule: str, message: str,
                 _rel=rel, _pragmas=pragmas):
            if _pragmas.allows(line_no, rule):
                return
            findings.append(Finding(_rel, line_no, rule, message))

        for cls in fm.classes:
            check_view_members(cls, emit)
        for fn in fm.functions:
            check_arena_escape(fn, registry, emit)
            check_view_lifetime(fn, registry, emit)
            check_determinism_taint(fn, registry, tainted_fns, sink_names,
                                    emit)
            check_merge_ordering(fn, registry, emit)

    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    # Deduplicate identical findings (a header parsed for several TUs).
    unique: list[Finding] = []
    for f in findings:
        if not unique or str(f) != str(unique[-1]):
            unique.append(f)
    return unique


def write_sarif(findings: list[Finding], path: str) -> None:
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(1, f.line)},
                    }
                }
            ],
        }
        for f in findings
    ]
    sarif = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
        "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "spr_analyze",
                        "informationUri":
                            "tools/spr_analyze/README.md",
                        "rules": [
                            {
                                "id": rule,
                                "shortDescription": {"text": doc},
                            }
                            for rule, doc in sorted(RULES.items())
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    with open(path, "w") as f:
        json.dump(sarif, f, indent=2, sort_keys=True)
        f.write("\n")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src)")
    parser.add_argument("--root", default=_ROOT,
                        help="repo root findings are reported relative to")
    parser.add_argument("--compile-commands", default="",
                        help="analyze the TUs of this compile_commands.json "
                        "(src/ only) plus the headers next to them")
    parser.add_argument("--sarif", default="",
                        help="also write SARIF 2.1.0 to this path")
    parser.add_argument("--engine", choices=("auto", "clang", "fallback"),
                        default="auto",
                        help="front-end: libclang when importable (auto), "
                        "forced libclang, or the token micro-AST engine")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, doc in RULES.items():
            print(f"{name:18} {doc}")
        return 0

    engine = args.engine
    if engine == "auto":
        engine = "clang" if HAVE_LIBCLANG else "fallback"
    if engine == "clang" and not HAVE_LIBCLANG:
        print("spr_analyze: --engine=clang but libclang bindings are not "
              "importable", file=sys.stderr)
        return 2

    files: list[str] = []
    if args.compile_commands:
        src_root = os.path.join(args.root, "src")
        tu_files = [f for f in load_compile_commands(args.compile_commands)
                    if os.path.normpath(f).startswith(
                        os.path.normpath(src_root) + os.sep)]
        files.extend(tu_files)
        # Headers don't appear as TUs; analyze them alongside.
        files.extend(collect_files(["src"], args.root, exts=(".h", ".hpp")))
    if args.paths:
        files.extend(collect_files(args.paths, args.root))
    if not files and not args.compile_commands:
        files = collect_files(["src"], args.root)
    files = sorted({os.path.normpath(
        f if os.path.isabs(f) else os.path.join(args.root, f))
        for f in files})
    if not files:
        print("spr_analyze: no input files", file=sys.stderr)
        return 2

    findings = analyze_files(files, args.root, engine)
    for finding in findings:
        print(finding)
    if args.sarif:
        write_sarif(findings, args.sarif)
    print(f"spr_analyze: {len(files)} files, {len(findings)} finding(s) "
          f"({engine} engine)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
