"""libclang front-end: lowers cursors into the analyzer's model.

When the python clang bindings are importable (pip `libclang` or a distro
python3-clang), classes/fields/function boundaries come from the real AST
— exact extents, canonical type spellings, no heuristics. Statement
bodies are then lexed through the shared token machinery (model.lex /
model.split_statements) so the rules see the identical Stmt shape either
way; fixtures assert front-end agreement when both are available.

Kept import-safe on machines without the bindings: `available()` gates
every use, and spr_analyze falls back to the micro-AST engine.
"""

from __future__ import annotations

import model

try:
    import clang.cindex as _cx

    _HAVE = True
except Exception:  # pragma: no cover - environment dependent
    _HAVE = False


def available() -> bool:
    if not _HAVE:
        return False
    try:  # the bindings import even when libclang.so is absent
        _cx.Index.create()
        return True
    except Exception:  # pragma: no cover - environment dependent
        return False


def _extent_tokens(stripped_lines: list[str], start_line: int,
                   start_col: int, end_line: int,
                   end_col: int) -> list[model.Token]:
    """Lexes the [start, end) source extent with real line numbers."""
    window: list[str] = []
    for i in range(1, len(stripped_lines) + 1):
        line = stripped_lines[i - 1]
        if i < start_line or i > end_line:
            window.append("")
            continue
        lo = start_col - 1 if i == start_line else 0
        hi = end_col - 1 if i == end_line else len(line)
        window.append(" " * lo + line[lo:hi])
    return model.lex(window)


def parse_file(path: str, rel: str,
               stripped_lines: list[str]) -> model.FileModel:
    index = _cx.Index.create()
    tu = index.parse(path, args=["-std=c++20", "-Isrc", "-x", "c++"])
    fm = model.FileModel(rel)
    _walk(tu.cursor, fm, rel, stripped_lines, class_name="")
    return fm


def _in_file(cursor, path: str) -> bool:
    loc = cursor.location
    return loc.file is not None and loc.file.name.endswith(path.split("/")[-1])


def _walk(cursor, fm: model.FileModel, path: str,
          stripped_lines: list[str], class_name: str) -> None:
    for child in cursor.get_children():
        kind = child.kind
        if kind in (_cx.CursorKind.NAMESPACE,
                    _cx.CursorKind.UNEXPOSED_DECL):
            _walk(child, fm, path, stripped_lines, class_name)
            continue
        if not _in_file(child, path):
            continue
        if kind in (_cx.CursorKind.CLASS_DECL, _cx.CursorKind.STRUCT_DECL,
                    _cx.CursorKind.CLASS_TEMPLATE):
            if not child.is_definition():
                continue
            cls = model.ClassInfo(child.spelling, [],
                                  child.location.line, path)
            for member in child.get_children():
                if member.kind == _cx.CursorKind.FIELD_DECL or (
                    member.kind == _cx.CursorKind.VAR_DECL
                ):
                    cls.fields.append(model.Field(
                        member.spelling, member.type.spelling,
                        member.location.line))
            fm.classes.append(cls)
            _walk(child, fm, path, stripped_lines, child.spelling)
            continue
        if kind in (_cx.CursorKind.FUNCTION_DECL, _cx.CursorKind.CXX_METHOD,
                    _cx.CursorKind.CONSTRUCTOR, _cx.CursorKind.DESTRUCTOR,
                    _cx.CursorKind.FUNCTION_TEMPLATE):
            if not child.is_definition():
                continue
            body = None
            for sub in child.get_children():
                if sub.kind == _cx.CursorKind.COMPOUND_STMT:
                    body = sub
            if body is None:
                continue
            ext = body.extent
            tokens = _extent_tokens(stripped_lines, ext.start.line,
                                    ext.start.column, ext.end.line,
                                    ext.end.column)
            # Drop the surrounding `{ }` of the compound statement.
            if tokens and tokens[0].text == "{":
                tokens = tokens[1:]
            if tokens and tokens[-1].text == "}":
                tokens = tokens[:-1]
            params = [
                model.Param(arg.spelling, arg.type.spelling)
                for arg in child.get_arguments()
            ]
            owner = class_name
            sem = child.semantic_parent
            if sem is not None and sem.kind in (
                _cx.CursorKind.CLASS_DECL, _cx.CursorKind.STRUCT_DECL,
                _cx.CursorKind.CLASS_TEMPLATE,
            ):
                owner = sem.spelling
            fm.functions.append(model.FunctionInfo(
                name=child.spelling,
                class_name=owner,
                return_type_text=child.result_type.spelling,
                params=params,
                stmts=model.split_statements(tokens),
                body_tokens=tokens,
                line=child.location.line,
                file=path,
            ))
            continue
        if kind == _cx.CursorKind.VAR_DECL and class_name == "":
            fm.globals.append(model.Field(
                child.spelling, child.type.spelling, child.location.line))
