// Must-pass fixture: a justified pragma on the preceding comment line
// binds to the next code line and suppresses the finding.
#include <span>
#include <vector>

namespace spr_fixture {

std::span<const int> gated() {
  std::vector<int> local{1};
  // spr-analyze: allow(view-lifetime) fixture proves justified pragmas
  return std::span<const int>(local);
}

}  // namespace spr_fixture
