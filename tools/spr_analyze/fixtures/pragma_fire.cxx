// Must-fire fixture: malformed pragmas are themselves findings.
#include <span>
#include <vector>

namespace spr_fixture {

std::span<const int> bad() {
  std::vector<int> local{1};
  return std::span<const int>(local);  // spr-analyze: allow(view-lifetime)
}
// EXPECT-PRAGMA: the allow above has no reason text.

std::span<const int> worse() {
  std::vector<int> local{2};
  // spr-analyze: allow(made-up-rule) not a rule the analyzer knows
  return std::span<const int>(local);
}
// EXPECT-PRAGMA: unknown rule name.
// EXPECT-VIEW-LIFETIME: the bogus allow suppresses nothing.

}  // namespace spr_fixture
