// Must-fire fixture: spans/string_views outliving storage or epoch.
#include <span>
#include <string_view>
#include <vector>

namespace spr_fixture {

// Returning a view over a local: the storage dies with the function.
std::span<const int> dangling_span() {
  std::vector<int> local{1, 2, 3};
  return std::span<const int>(local);  // EXPECT[view-lifetime]
}

std::string_view dangling_sv() {
  std::string text = "ephemeral";
  return std::string_view(text);  // EXPECT[view-lifetime]
}

// A long-lived class caching a view with no lifetime-binding reference
// member: nothing ties the view to its backing storage.
struct CachedRow {
  std::span<const unsigned> row;  // EXPECT[view-lifetime]
  int epoch = 0;
};

struct Graph {
  std::span<const unsigned> neighbors(unsigned v) const;
  Graph with_failures(const std::vector<unsigned>& down) const;
};

// Caching an epoch-scoped view in a member of a non-subordinate class.
struct Cache {
  void refresh(const Graph& g) {
    row_ = g.neighbors(0);  // EXPECT[view-lifetime]
  }
  std::span<const unsigned> row_;  // EXPECT[view-lifetime]
};

// Using an epoch view after the topology epoch advanced under it.
int stale_use(Graph& g, const std::vector<unsigned>& down) {
  auto row = g.neighbors(0);
  g = g.with_failures(down);
  return static_cast<int>(row.size());  // EXPECT[view-lifetime]
}

}  // namespace spr_fixture
