// Must-fire fixture: nondeterministic values reaching report sinks.
#include <chrono>
#include <thread>
#include <unordered_map>

namespace spr_fixture {

struct Report {
  void param(const char* name, double v);
  void note(const char* text);
};

// Wall clock flowing through a local into a report parameter.
void timing_into_report(Report& report) {
  auto t0 = std::chrono::steady_clock::now();
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  report.param("seconds", seconds);  // EXPECT[determinism-taint]
}

// Interprocedural-lite: a function whose return value is tainted taints
// its call sites.
double stopwatch() {
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

void indirect(Report& report) {
  double v = stopwatch();
  report.param("v", v);  // EXPECT[determinism-taint]
}

// Unordered-container iteration order is load-factor/seed dependent.
void unordered_iter(Report& report,
                    const std::unordered_map<int, double>& scores) {
  for (const auto& kv : scores) {
    report.param("score", kv.second);  // EXPECT[determinism-taint]
  }
}

// A thread id stamped straight into the artifact.
void thread_stamp(Report& report) {
  report.param("tid",  // EXPECT[determinism-taint]
               static_cast<double>(std::hash<std::thread::id>{}(
                   std::this_thread::get_id())));
}

}  // namespace spr_fixture
