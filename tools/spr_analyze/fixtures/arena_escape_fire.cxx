// Must-fire fixture: arena-backed values escaping their reset() scope.
// EXPECT markers name the finding the harness asserts on that line.
#include <cstdint>

namespace spr_fixture {

struct Arena {
  void* allocate(unsigned long bytes, unsigned long align);
  void reset();
};

// A function-local arena dies with the function: returning memory
// allocated from it dangles immediately.
const std::uint64_t* dangling_alloc() {
  Arena arena;
  auto* p = static_cast<std::uint64_t*>(arena.allocate(64, 8));
  return p;  // EXPECT[arena-escape]
}

// A view derived from the dangerous pointer is just as dead.
const std::uint64_t* dangling_view() {
  Arena arena;
  auto* p = static_cast<std::uint64_t*>(arena.allocate(64, 8));
  const std::uint64_t* view = p;
  return view;  // EXPECT[arena-escape]
}

struct Holder {
  const std::uint64_t* cached = nullptr;
};

// Holder has no Arena field: its lifetime is not tied to any reset()
// epoch, so parking scratch in it outlives the arena's scope.
struct Builder {
  Holder h;
  void build(Arena& arena) {
    auto* p = static_cast<std::uint64_t*>(arena.allocate(64, 8));
    h.cached = p;  // EXPECT[arena-escape]
  }
};

// A static local survives every reset() of the caller's arena.
void stash(Arena& arena) {
  auto* p = static_cast<std::uint64_t*>(arena.allocate(64, 8));
  static const std::uint64_t* keep = p;  // EXPECT[arena-escape]
  (void)keep;
}

}  // namespace spr_fixture
