// Must-fire fixture: parallel callbacks writing shared state without a
// per-index slot or id-ordered merge.
#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

namespace spr_fixture {

struct TaskPool {};
void parallel_for_blocked(TaskPool* pool, std::size_t n, std::size_t grain,
                          const std::function<void(std::size_t,
                                                   std::size_t)>& fn);

// Every block accumulates into one captured double: the result depends
// on which thread adds first (and the writes race outright).
double racy_sum(TaskPool* pool, const std::vector<double>& xs) {
  double total = 0.0;
  parallel_for_blocked(
      pool, xs.size(), 256, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          total += xs[i];  // EXPECT[merge-ordering]
        }
      });
  return total;
}

// Concurrent push_back into one captured vector, never merged.
void racy_collect(TaskPool* pool, std::size_t n,
                  std::vector<std::size_t>& out) {
  parallel_for_blocked(
      pool, n, 64, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          out.push_back(i);  // EXPECT[merge-ordering]
        }
      });
}

// A mid-region atomic load snapshots scheduler state: the stored value
// depends on how far the other threads got, not on the input.
void atomic_load_leak(TaskPool* pool, std::size_t n,
                      std::atomic<std::size_t>& live,
                      std::vector<std::size_t>& out) {
  parallel_for_blocked(
      pool, n, 64, [&](std::size_t lo, std::size_t hi) {
        std::size_t snapshot = live.load();
        out[lo] = snapshot;  // EXPECT[determinism-taint]
        (void)hi;
      });
}

}  // namespace spr_fixture
