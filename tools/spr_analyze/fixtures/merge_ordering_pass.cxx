// Must-pass fixture: the sanctioned parallel write disciplines.
#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

namespace spr_fixture {

struct TaskPool {};
void parallel_for_blocked(TaskPool* pool, std::size_t n, std::size_t grain,
                          const std::function<void(std::size_t,
                                                   std::size_t)>& fn);

// Disjoint per-index slots: each iteration owns out[i].
void per_slot(TaskPool* pool, std::vector<double>& out,
              const std::vector<double>& xs) {
  parallel_for_blocked(
      pool, xs.size(), 256, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = xs[i] * 2.0;
        }
      });
}

// Block-local scratch, parked in a per-block slot keyed by the range.
void per_block(TaskPool* pool, std::size_t n,
               std::vector<std::vector<std::size_t>>& blocks) {
  parallel_for_blocked(
      pool, n, 64, [&](std::size_t lo, std::size_t hi) {
        std::vector<std::size_t> local;
        for (std::size_t i = lo; i < hi; ++i) {
          if (i % 3 == 0) local.push_back(i);
        }
        blocks[lo / 64] = std::move(local);
      });
}

// Atomic read-modify-write counters are schedule-safe.
std::size_t atomic_count(TaskPool* pool, std::size_t n) {
  std::atomic<std::size_t> hits{0};
  parallel_for_blocked(
      pool, n, 64, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          hits.fetch_add(1, std::memory_order_relaxed);
        }
      });
  return hits.load();
}

// A reference alias of a per-index slot inherits the slot's disjointness
// (the sharded-network Tile& idiom).
struct Tile {
  std::vector<unsigned> inbox;
};

void tile_local(TaskPool* pool, std::vector<Tile>& tiles) {
  parallel_for_blocked(
      pool, tiles.size(), 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t t = lo; t < hi; ++t) {
          Tile& tile = tiles[t];
          tile.inbox.clear();
          tile.inbox.push_back(static_cast<unsigned>(t));
        }
      });
}

}  // namespace spr_fixture
