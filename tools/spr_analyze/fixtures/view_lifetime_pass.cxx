// Must-pass fixture: sanctioned view lifetimes stay clean.
#include <functional>
#include <span>
#include <string_view>
#include <vector>

namespace spr_fixture {

struct Graph {
  std::span<const unsigned> neighbors(unsigned v) const;
  Graph with_failures(const std::vector<unsigned>& down) const;
};

// A reference member binds the holder's lifetime to its referent:
// lifetime-subordinate classes may cache views (the InterestArea idiom).
struct RowView {
  const Graph& graph;
  std::span<const unsigned> row;
};

// A string_view inside a callable's signature is a parameter type, not a
// stored view (the Flags::Flag::set idiom).
struct Handler {
  std::function<bool(std::string_view)> parse;
};

// Views over member storage share the owner's lifetime.
struct Owner {
  std::span<const unsigned> view() const {
    return std::span<const unsigned>(data_);
  }
  std::vector<unsigned> data_;
};

// Re-querying after the epoch advance is the sanctioned pattern.
int requery(Graph& g, const std::vector<unsigned>& down) {
  auto row = g.neighbors(0);
  int before = static_cast<int>(row.size());
  g = g.with_failures(down);
  auto fresh = g.neighbors(0);
  return before + static_cast<int>(fresh.size());
}

}  // namespace spr_fixture
