// Must-pass fixture: the repo's sanctioned arena idioms stay clean.
#include <cstdint>

namespace spr_fixture {

struct Arena {
  void* allocate(unsigned long bytes, unsigned long align);
  void reset();
};

// The caller owns the arena: returning a fresh allocation hands the
// caller memory whose lifetime the caller already controls (the
// alloc_words/zeroed_words helper idiom).
std::uint64_t* alloc_words(Arena& arena, unsigned long words) {
  auto* p = static_cast<std::uint64_t*>(arena.allocate(words * 8, 8));
  return p;
}

// An arena-scoped class (holds an Arena member) is itself epoch-bound:
// its fields may cache scratch because class and scratch die together.
class Labeler {
 public:
  explicit Labeler(Arena& arena) : arena_(arena) {}
  void build() {
    auto* bits = static_cast<std::uint64_t*>(arena_.allocate(256, 8));
    bits_ = bits;
  }

 private:
  Arena& arena_;
  std::uint64_t* bits_ = nullptr;
};

// A static thread_local arena persists; handing out a reference to the
// arena itself (not scratch carved from a dying arena) is the
// FlatLabeler::scratch() pattern.
Arena& scratch() {
  static thread_local Arena arena;
  return arena;
}

}  // namespace spr_fixture
