// Must-pass fixture: deterministic values and non-sink uses stay clean.
#include <chrono>
#include <map>

namespace spr_fixture {

struct Report {
  void param(const char* name, double v);
  void note(const char* text);
};

// Deterministic inputs into sinks are fine.
void plain(Report& report, double value) { report.param("v", value); }

// Wall clock used only for control flow, never serialized.
bool timed_out(std::chrono::steady_clock::time_point deadline) {
  return std::chrono::steady_clock::now() >= deadline;
}

// Ordered-map iteration is deterministic.
void ordered_iter(Report& report, const std::map<int, double>& scores) {
  for (const auto& kv : scores) {
    report.param("score", kv.second);
  }
}

}  // namespace spr_fixture
