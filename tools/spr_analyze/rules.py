"""The analyzer's semantic rules over the micro-AST (model.py).

Four repo-specific contracts, each a named rule with a pragma escape hatch
(`// spr-analyze: allow(rule) reason`):

  arena-escape       Values derived from Arena-backed allocations
                     (ArenaVector storage, arena.allocate results, spans
                     over either) must not outlive the arena's reset()
                     scope: no stores into fields of non-arena-scoped
                     classes, globals or statics, and no returns of
                     pointers/views over arena-backed locals. A class is
                     arena-scoped when it holds an Arena (reference,
                     pointer or ArenaVector field) — its own lifetime is
                     tied to the epoch, so its fields may hold scratch.

  view-lifetime      No returning std::span/std::string_view over locals;
                     no span/string_view data members in classes that are
                     not lifetime-subordinate (holding a reference member
                     binds the object's lifetime to its referent); no
                     caching of epoch-scoped views (UnitDiskGraph
                     neighbors, QuadrantZones members/observers rows,
                     FlatLabeler flipped/raise_clusters) in members of
                     long-lived classes; and no use of an epoch view after
                     a with_failures/with_moves/adopt_* epoch advance.

  determinism-taint  Dataflow from nondeterministic sources (thread ids,
                     pointer-to-integer casts, wall clock, hardware
                     concurrency, unordered-container iteration, atomic
                     loads inside parallel callbacks) through assignments
                     and call arguments into report/serialize/merge sinks
                     (every function defined under src/report, src/stats
                     or util/json). Interprocedural-lite: functions whose
                     return value is tainted propagate taint to call
                     sites.

  merge-ordering     Callbacks handed to parallel_for_blocked / TaskPool
                     fan-outs may write shared non-atomic state only via
                     disjoint per-index slots (subscripts driven by the
                     block/loop index) or when the enclosing function
                     feeds the written container to an ordered merge
                     (sort/stable_sort/merge family) after the dispatch;
                     anything else needs a pragma.

Heuristics are tuned against this repo's idiom and proven by the fixture
corpus (fixtures/); src/ holds a zero-findings baseline enforced in CI.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from model import (ClassInfo, FunctionInfo, Param, Registry, Stmt, Token,
                   _match_braces, _parse_params, split_statements)

RULES = {
    "arena-escape": "arena-backed value escaping its reset() scope",
    "view-lifetime": "span/string_view outliving its backing storage "
    "or topology epoch",
    "determinism-taint": "nondeterministic value flowing into a "
    "report/serialize/merge sink",
    "merge-ordering": "parallel callback writing shared state without "
    "an id-ordered merge",
    "pragma": "malformed or unjustified spr-analyze pragma",
}

# ----------------------------------------------------------- type classifiers

_VIEW_RE = re.compile(r"\bstring_view\b|\bspan\s*<")
_CONTAINER_RE = re.compile(
    r"\bvector\s*<|\bstring\b|\barray\s*<|\bdeque\s*<|ArenaVector\s*<"
)
_PTRISH_RE = re.compile(r"[*&]|\bspan\s*<|\bstring_view\b|ArenaVector\s*<")

# Epoch-scoped view producers: calls whose results are valid only for the
# current topology epoch of their receiver.
_EPOCH_VIEW_PRODUCERS = (
    "neighbors", "members", "observers", "flipped", "raise_clusters",
)
_EPOCH_PRODUCER_RE = re.compile(
    r"(?:\.|->)\s*(" + "|".join(_EPOCH_VIEW_PRODUCERS) + r")\s*\("
)
# Epoch advancers: calls after which previously-obtained views are stale.
_EPOCH_ADVANCERS = (
    "with_failures", "with_moves", "adopt_safety", "rebuild_partition",
)
_EPOCH_ADVANCER_RE = re.compile(
    r"\b(" + "|".join(_EPOCH_ADVANCERS) + r")\s*\("
)

_ALLOC_CALL_RE = re.compile(r"(?:\.|->)\s*(allocate|allocator)\s*[(<]")

_TAINT_SOURCES = [
    ("thread-id", re.compile(r"\bthis_thread\s*::\s*get_id\b")),
    ("pointer-to-integer cast", re.compile(
        r"\b(?:reinterpret_cast|static_cast)\s*<[^>]*u?intptr_t")),
    ("wall clock", re.compile(
        r"\b(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now\b"
    )),
    ("hardware concurrency", re.compile(r"\bhardware_concurrency\b")),
]

# Files whose functions are report/serialize/merge sinks.
_SINK_FILE_RE = re.compile(r"(?:^|/)src/(report|stats)/|(?:^|/)util/json\.")

_DISPATCH_NAMES = ("parallel_for_blocked", "parallel_for", "submit")
_MUTATOR_METHODS = {
    "push_back", "emplace_back", "insert", "emplace", "erase", "clear",
    "resize", "assign", "append",
}
_ATOMIC_RMW = {"fetch_add", "fetch_sub", "fetch_or", "fetch_and",
               "fetch_xor"}
_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}
_BLESSED_MERGE_RE = re.compile(r"\b(sort|stable_sort|merge|merge_sorted)\b")


@dataclass
class RawFinding:
    line: int
    rule: str
    message: str


# ------------------------------------------------------------- small helpers


def _is_view(type_text: str) -> bool:
    return bool(_VIEW_RE.search(type_text))


def _is_subordinate(cls: ClassInfo) -> bool:
    """A class holding a reference member cannot outlive its referent —
    it is lifetime-subordinate, so epoch/arena-scoped members are fine."""
    return any("&" in f.type_text for f in cls.fields)


def _is_arena_scoped(cls: ClassInfo | None) -> bool:
    if cls is None:
        return False
    return any("Arena" in f.type_text for f in cls.fields)


def _decl_of(stmt: Stmt) -> tuple[str, str, list[Token]] | None:
    """(name, type_text, init_tokens) for a local declaration, else None."""
    toks = stmt.tokens
    if not toks or toks[0].text in ("return", "if", "for", "while", "switch",
                                    "delete", "case", "using", "break",
                                    "continue", "else", "do", "goto"):
        return None
    depth = 0
    eq = -1
    for i, t in enumerate(toks):
        if t.text in ("(", "[", "{", "<"):
            depth += 1
        elif t.text in (")", "]", "}", ">"):
            depth -= 1
        elif t.text in ("=",) and depth == 0:
            eq = i
            break
    if eq > 0:
        left = toks[:eq]
        name_idx = -1
        for i in range(len(left) - 1, -1, -1):
            if left[i].kind == "id":
                name_idx = i
                break
        if name_idx <= 0:
            return None  # plain assignment `x = ...`
        type_toks = left[:name_idx]
        if any(t.text in (".", "->", "(", "[") for t in type_toks):
            return None  # member/array assignment, not a declaration
        type_text = " ".join(t.text for t in type_toks)
        return left[name_idx].text, type_text, toks[eq + 1:]
    # Constructor-style: `Type name ( args )` or `Type name { args }`.
    depth = 0
    for i, t in enumerate(toks):
        if t.text in ("(", "{") and depth == 0 and i >= 2 \
                and toks[i - 1].kind == "id":
            type_toks = toks[:i - 1]
            if not type_toks or any(
                x.text in (".", "->", "(", "=", "return") for x in type_toks
            ):
                return None
            if not any(x.kind == "id" for x in type_toks):
                return None
            type_text = " ".join(x.text for x in type_toks)
            return toks[i - 1].text, type_text, toks[i + 1:]
        if t.text in ("(", "[", "{", "<"):
            depth += 1
        elif t.text in (")", "]", "}", ">"):
            depth -= 1
    # Bare declaration: `Type name` with no initializer at all.
    if len(toks) >= 2 and toks[-1].kind == "id" and all(
        t.kind == "id" or t.text in ("::", "<", ">", ",", "*", "&", ">>")
        for t in toks[:-1]
    ) and any(t.kind == "id" for t in toks[:-1]):
        return toks[-1].text, " ".join(t.text for t in toks[:-1]), []
    return None


def _assign_of(stmt: Stmt) -> tuple[list[Token], str, list[Token]] | None:
    """(lhs_tokens, op, rhs_tokens) for an assignment statement, else
    None. Declarations are excluded (use _decl_of first)."""
    toks = stmt.tokens
    while toks and toks[0].text in ("else", "do"):
        toks = toks[1:]
    if not toks or toks[0].text in ("return", "if", "for", "while",
                                    "switch", "case"):
        return None
    depth = 0
    for i, t in enumerate(toks):
        if t.text in ("(", "[", "{", "<"):
            depth += 1
        elif t.text in (")", "]", "}", ">"):
            depth -= 1
        elif t.text in _ASSIGN_OPS and depth == 0 and i > 0:
            return toks[:i], t.text, toks[i + 1:]
    return None


def _root_id(tokens: list[Token]) -> str:
    """First identifier of an lvalue chain: `this->x` -> x, `a.b[i]` -> a."""
    for i, t in enumerate(tokens):
        if t.kind == "id" and t.text != "this":
            return t.text
    return ""


def _mentions(tokens: list[Token], names: set[str]) -> bool:
    return any(t.kind == "id" and t.text in names for t in tokens)


def _is_member_lhs(lhs: list[Token], fn: FunctionInfo,
                   cls: ClassInfo | None) -> bool:
    """Whether the assignment target is a field of the enclosing class."""
    if not lhs:
        return False
    if lhs[0].text == "this":
        return True
    root = _root_id(lhs)
    if not root:
        return False
    if cls is not None and cls.field(root) is not None:
        # Not shadowed by a local/param of the same name (repo style keeps
        # fields `name_`-suffixed, so collisions are rare anyway).
        return True
    return False


# =============================================================== arena-escape


def check_arena_escape(fn: FunctionInfo, registry: Registry, emit) -> None:
    cls = registry.class_of(fn)
    arena_scoped = _is_arena_scoped(cls)

    arena_handles: set[str] = set()   # locals of type Arena&/Arena*
    arena_vars: set[str] = set()      # arena-backed storage or views over it
    # Handles whose arena dies with this function (`Arena a;` by value):
    # values derived from them dangle when returned. Caller-owned handles
    # (Arena& params, member arenas) outlive the callee, so returning
    # fresh allocations from them is the repo's helper idiom.
    local_value_handles: set[str] = set()
    dangerous_vars: set[str] = set()
    for p in fn.params:
        if "ArenaVector" in p.type_text and p.name:
            arena_vars.add(p.name)
        if re.search(r"\bArena\s*[&*]", p.type_text) and p.name:
            arena_handles.add(p.name)
    if cls is not None:
        for f in cls.fields:
            if re.search(r"\bArena\s*[&*]", f.type_text):
                arena_handles.add(f.name)

    handle_alloc_re = None

    def refresh_handle_re():
        nonlocal handle_alloc_re
        if arena_handles:
            handle_alloc_re = re.compile(
                r"\b(" + "|".join(re.escape(h) for h in arena_handles)
                + r")\s*(?:\.|->)\s*(allocate\b|allocator\s*[(<])")
        else:
            handle_alloc_re = None

    refresh_handle_re()

    for _ in range(2):  # two passes: forward propagation through decls
        for stmt in fn.stmts:
            d = _decl_of(stmt)
            if d is None:
                continue
            name, type_text, init = d
            init_text = " ".join(t.text for t in init)
            if re.search(r"\bArena\s*&|\bArena\s*\*", type_text):
                arena_handles.add(name)
                refresh_handle_re()
                continue
            if re.search(r"\bArena\b", type_text) \
                    and "static" not in type_text.split():
                # `Arena a;` by value: its storage dies with the function.
                arena_handles.add(name)
                local_value_handles.add(name)
                refresh_handle_re()
                continue
            if "ArenaVector" in type_text:
                arena_vars.add(name)
                continue
            if handle_alloc_re is not None:
                m = handle_alloc_re.search(stmt.text)
                if m is not None:
                    arena_vars.add(name)
                    if m.group(1) in local_value_handles:
                        dangerous_vars.add(name)
                    continue
            # Views/pointers derived from an arena-backed value.
            if _mentions(init, arena_vars) and (
                _PTRISH_RE.search(type_text) or type_text.startswith("auto")
                or ".data" in init_text or "& " + name in init_text
            ):
                arena_vars.add(name)
                if _mentions(init, dangerous_vars):
                    dangerous_vars.add(name)

    if not arena_vars and handle_alloc_re is None:
        return

    returns_ref = bool(_PTRISH_RE.search(fn.return_type_text)) \
        or "ArenaVector" in fn.return_type_text
    for stmt in fn.stmts:
        toks = stmt.tokens
        if toks and toks[0].text == "return":
            if returns_ref and _mentions(toks, dangerous_vars):
                emit(stmt.line, "arena-escape",
                     "returning a pointer/view over a function-local "
                     "arena — the storage dies with the arena, before the "
                     "caller can look at it")
            continue
        a = _assign_of(stmt)
        if a is None:
            continue
        lhs, _op, rhs = a
        rhs_is_arena = _mentions(rhs, arena_vars) or (
            handle_alloc_re is not None
            and handle_alloc_re.search(" ".join(t.text for t in rhs))
        )
        if not rhs_is_arena:
            continue
        if _is_member_lhs(lhs, fn, cls) and not arena_scoped:
            emit(stmt.line, "arena-escape",
                 "storing arena-backed scratch into a member of a class "
                 "that is not arena-scoped (holds no Arena) — the field "
                 "outlives reset()")
        elif _root_id(lhs) in {g.name for g in registry.globals}:
            emit(stmt.line, "arena-escape",
                 "storing arena-backed scratch into a global — globals "
                 "outlive every arena reset()")

    # `static` locals initialized from arena scratch.
    for stmt in fn.stmts:
        d = _decl_of(stmt)
        if d is None:
            continue
        name, type_text, init = d
        if "static" in type_text.split() and _mentions(init, arena_vars):
            emit(stmt.line, "arena-escape",
                 "static local holding arena-backed scratch survives "
                 "reset()")


# ============================================================== view-lifetime


def check_view_members(cls: ClassInfo, emit) -> None:
    if _is_subordinate(cls):
        return
    for f in cls.fields:
        if "function" in f.type_text:
            continue  # a view inside a callable's signature is not a view
        if _is_view(f.type_text):
            emit(f.line, "view-lifetime",
                 f"field '{f.name}' is a non-owning view in a class with "
                 "no lifetime-binding reference member — the view can "
                 "outlive its backing storage; copy, or bind the class to "
                 "its epoch with a reference member")


def check_view_lifetime(fn: FunctionInfo, registry: Registry, emit) -> None:
    cls = registry.class_of(fn)
    subordinate = cls is not None and _is_subordinate(cls)

    # Local containers whose storage dies with the function.
    local_containers: set[str] = set()
    view_aliases: set[str] = set()  # local views over local containers
    for stmt in fn.stmts:
        d = _decl_of(stmt)
        if d is None:
            continue
        name, type_text, init = d
        if "static" in type_text.split():
            continue
        if _CONTAINER_RE.search(type_text) and "&" not in type_text:
            local_containers.add(name)
        elif (_is_view(type_text) or type_text.startswith("auto")) \
                and _mentions(init, local_containers):
            if _is_view(type_text) or ".data" in " ".join(
                    t.text for t in init):
                view_aliases.add(name)

    if _is_view(fn.return_type_text):
        dangerous = local_containers | view_aliases
        for stmt in fn.stmts:
            if stmt.tokens and stmt.tokens[0].text == "return" \
                    and _mentions(stmt.tokens, dangerous):
                emit(stmt.line, "view-lifetime",
                     "returning a span/string_view over a local — the "
                     "view dangles when the function returns")

    # Caching an epoch-scoped view in a member of a long-lived class.
    for stmt in fn.stmts:
        a = _assign_of(stmt)
        if a is None:
            continue
        lhs, _op, rhs = a
        rhs_text = " ".join(t.text for t in rhs)
        if _EPOCH_PRODUCER_RE.search(rhs_text) \
                and _is_member_lhs(lhs, fn, cls) and not subordinate:
            emit(stmt.line, "view-lifetime",
                 "caching an epoch-scoped view (neighbors/members/"
                 "observers/flipped row) in a member — it dangles at the "
                 "next with_failures/with_moves/adopt_* epoch")

    # Using an epoch view after an epoch advance in the same function.
    bindings: dict[str, int] = {}   # view var -> stmt index bound
    for i, stmt in enumerate(fn.stmts):
        d = _decl_of(stmt)
        if d is not None:
            name, type_text, init = d
            init_text = " ".join(t.text for t in init)
            if _EPOCH_PRODUCER_RE.search(init_text) and (
                _is_view(type_text) or type_text.startswith("auto")
            ):
                bindings[name] = i
            continue
    if bindings:
        advance_at: int | None = None
        advance_what = ""
        fired: set[str] = set()
        for i, stmt in enumerate(fn.stmts):
            m = _EPOCH_ADVANCER_RE.search(stmt.text)
            if m is not None:
                advance_at = i
                advance_what = m.group(1)
                continue
            if advance_at is None:
                continue
            for name, bound_at in bindings.items():
                if name in fired or bound_at > advance_at:
                    continue
                if bound_at < advance_at < i and _mentions(
                        stmt.tokens, {name}):
                    fired.add(name)
                    emit(stmt.line, "view-lifetime",
                         f"epoch view '{name}' used after "
                         f"{advance_what}() advanced the topology epoch — "
                         "re-query the view from the new epoch")


# ========================================================== determinism-taint


def _source_in(text: str) -> str | None:
    for label, pattern in _TAINT_SOURCES:
        if pattern.search(text):
            return label
    return None


def _sink_names(registry: Registry) -> set[str]:
    names = {"param", "note", "textf", "add_table", "add_timings",
             "add_sweep", "to_json"}
    for fn in registry.functions:
        if _SINK_FILE_RE.search(fn.file):
            names.add(fn.name)
    # Keep ubiquitous identifiers out of the sink set: `text`/`write`-style
    # names fire on every second line of unrelated code.
    names -= {"begin", "end", "size", "empty", "c_str", "data", "get",
              "value", "str", "at", "front", "back", "reserve", "clear",
              "of", "is", "set", "count", "find", "push", "pop", "parse"}
    return names


def _propagate_taint(fn: FunctionInfo, registry: Registry,
                     tainted_fns: set[str],
                     unordered_fields: set[str]) -> tuple[set[str],
                                                          dict[str, str]]:
    """Tainted local names and name -> source label."""
    tainted: set[str] = set()
    origin: dict[str, str] = {}
    unordered_vars: set[str] = set(unordered_fields)
    for p in fn.params:
        if "unordered_" in p.type_text and p.name:
            unordered_vars.add(p.name)

    call_taint_re = None
    if tainted_fns:
        call_taint_re = re.compile(
            r"\b(" + "|".join(re.escape(n) for n in sorted(tainted_fns))
            + r")\s*\(")

    def rhs_taint(tokens: list[Token], text: str) -> str | None:
        label = _source_in(text)
        if label is not None:
            return label
        if _mentions(tokens, tainted):
            for t in tokens:
                if t.kind == "id" and t.text in tainted:
                    return origin.get(t.text, "tainted value")
        if call_taint_re is not None and call_taint_re.search(text):
            return "call to a taint-returning function"
        return None

    for _ in range(2):
        for stmt in fn.stmts:
            text = stmt.text
            # Unordered-container declarations.
            d = _decl_of(stmt)
            if d is not None:
                name, type_text, init = d
                if "unordered_" in type_text:
                    unordered_vars.add(name)
                label = rhs_taint(init, " ".join(t.text for t in init))
                if label is not None:
                    tainted.add(name)
                    origin.setdefault(name, label)
                continue
            # Range-for over an unordered container taints the loop var.
            if stmt.tokens and stmt.tokens[0].text == "for":
                m = re.search(r"\(\s*(.*?)\s+(\w+)\s*:\s*(\w[\w.\->:]*)",
                              text.replace(" :: ", "::"))
                if m and any(u in m.group(3) for u in unordered_vars):
                    tainted.add(m.group(2))
                    origin.setdefault(m.group(2),
                                      "unordered-container iteration order")
                continue
            a = _assign_of(stmt)
            if a is not None:
                lhs, _op, rhs = a
                label = rhs_taint(rhs, " ".join(t.text for t in rhs))
                root = _root_id(lhs)
                if label is not None and root:
                    tainted.add(root)
                    origin.setdefault(root, label)
                continue
            # v.push_back(tainted) taints the container.
            m = re.search(r"\b(\w+)\s*(?:\.|->)\s*"
                          r"(?:push_back|emplace_back|insert|emplace)\s*\(",
                          text)
            if m is not None:
                label = rhs_taint(stmt.tokens, text)
                if label is not None:
                    tainted.add(m.group(1))
                    origin.setdefault(m.group(1), label)
    return tainted, origin


def _returns_taint(fn: FunctionInfo, registry: Registry,
                   tainted_fns: set[str]) -> bool:
    cls = registry.class_of(fn)
    unordered_fields = set()
    if cls is not None:
        unordered_fields = {f.name for f in cls.fields
                            if "unordered_" in f.type_text}
    tainted, _ = _propagate_taint(fn, registry, tainted_fns,
                                  unordered_fields)
    for stmt in fn.stmts:
        if stmt.tokens and stmt.tokens[0].text == "return":
            if _mentions(stmt.tokens, tainted) \
                    or _source_in(stmt.text) is not None:
                return True
    return False


def compute_taint_summaries(registry: Registry) -> set[str]:
    """Names of functions whose return value carries taint."""
    tainted_fns: set[str] = set()
    for _ in range(3):
        changed = False
        for fn in registry.functions:
            if fn.name in tainted_fns:
                continue
            if _returns_taint(fn, registry, tainted_fns):
                tainted_fns.add(fn.name)
                changed = True
        if not changed:
            break
    return tainted_fns


def check_determinism_taint(fn: FunctionInfo, registry: Registry,
                            tainted_fns: set[str], sink_names: set[str],
                            emit) -> None:
    cls = registry.class_of(fn)
    unordered_fields = set()
    if cls is not None:
        unordered_fields = {f.name for f in cls.fields
                            if "unordered_" in f.type_text}
    tainted, origin = _propagate_taint(fn, registry, tainted_fns,
                                       unordered_fields)

    sink_re = re.compile(
        r"\b(" + "|".join(re.escape(n) for n in sorted(sink_names))
        + r")\s*\(")
    for stmt in fn.stmts:
        text = stmt.text
        for m in sink_re.finditer(text):
            args = _call_args_text(stmt.tokens, m.group(1))
            if args is None:
                continue
            arg_tokens, arg_text = args
            direct = _source_in(arg_text)
            if direct is not None:
                emit(stmt.line, "determinism-taint",
                     f"{direct} flows directly into report/serialize sink "
                     f"'{m.group(1)}' — the artifact becomes run-dependent")
                continue
            for t in arg_tokens:
                if t.kind == "id" and t.text in tainted:
                    why = origin.get(t.text, "a nondeterministic source")
                    emit(stmt.line, "determinism-taint",
                         f"value tainted by {why} reaches "
                         f"report/serialize sink '{m.group(1)}' via "
                         f"'{t.text}'")
                    break


def _call_args_text(tokens: list[Token],
                    callee: str) -> tuple[list[Token], str] | None:
    """Tokens inside the parens of the first `callee(...)` call."""
    for i, t in enumerate(tokens):
        if t.kind == "id" and t.text == callee and i + 1 < len(tokens) \
                and tokens[i + 1].text == "(":
            depth = 0
            for j in range(i + 1, len(tokens)):
                if tokens[j].text == "(":
                    depth += 1
                elif tokens[j].text == ")":
                    depth -= 1
                    if depth == 0:
                        inner = tokens[i + 2:j]
                        return inner, " ".join(x.text for x in inner)
    return None


# ============================================================= merge-ordering


def _lambda_bodies(body: list[Token]) -> list[tuple[str, list[Param],
                                                    list[Token], int]]:
    """(dispatch_name, lambda_params, lambda_body_tokens, dispatch_index)
    for every parallel dispatch whose argument list contains a lambda."""
    match = _match_braces(body)
    out = []
    for i, t in enumerate(body):
        if t.kind != "id" or t.text not in _DISPATCH_NAMES:
            continue
        if t.text == "submit":
            # Only pool submits, not e.g. executor frameworks.
            if i < 2 or body[i - 1].text not in (".", "->"):
                continue
        if i + 1 >= len(body) or body[i + 1].text != "(":
            continue
        call_end = match.get(i + 1)
        if call_end is None:
            continue
        # The lambda: first `[` inside the call followed (eventually) by `{`.
        j = i + 2
        while j < call_end:
            if body[j].text == "[":
                intro_end = match.get(j)
                if intro_end is None:
                    break
                k = intro_end + 1
                params: list[Param] = []
                if k < call_end and body[k].text == "(":
                    params = _parse_params(body, k, match)
                    k = match.get(k, k) + 1
                while k < call_end and body[k].text in ("mutable",
                                                        "noexcept"):
                    k += 1
                if k < call_end and body[k].text == "->":
                    while k < call_end and body[k].text != "{":
                        k += 1
                if k < call_end and body[k].text == "{":
                    lam_end = match.get(k)
                    if lam_end is not None:
                        out.append((t.text, params, body[k + 1:lam_end], i))
                        break
            j += 1
    return out


def check_merge_ordering(fn: FunctionInfo, registry: Registry, emit) -> None:
    for dispatch, params, lam_body, dispatch_at in _lambda_bodies(
            fn.body_tokens):
        stmts = split_statements(lam_body)
        declared: set[str] = {p.name for p in params if p.name}
        index_derived: set[str] = set(declared)
        atomics: set[str] = set()
        cls = registry.class_of(fn)
        if cls is not None:
            atomics |= {f.name for f in cls.fields
                        if "atomic" in f.type_text}
        captured_aliases: set[str] = set()
        loads: set[str] = set()   # vars assigned from atomic .load()

        for stmt in fn.stmts:  # locals of the enclosing function
            d = _decl_of(stmt)
            if d is not None and "atomic" in d[1]:
                atomics.add(d[0])

        # Loop headers inside the lambda declare their induction vars.
        for stmt in stmts:
            text = stmt.text
            for m in re.finditer(
                r"for\s*\(\s*[\w:\s<>,*&]+?(\w+)\s*=\s*([^;]*);", text
            ):
                declared.add(m.group(1))
                if any(p and p in m.group(2)
                       for p in index_derived):
                    index_derived.add(m.group(1))
            for m in re.finditer(r"for\s*\([\w:\s<>,*&]*?(\w+)\s*:", text):
                declared.add(m.group(1))
            d = _decl_of(stmt)
            if d is not None:
                name, type_text, init = d
                init_text = " ".join(t.text for t in init)
                if "&" in type_text and not re.search(
                    r"\[[^\]]*\b(" + "|".join(
                        re.escape(v) for v in sorted(index_derived) or ["-"]
                    ) + r")\b[^\]]*\]", init_text
                ) and _root_id(init) not in declared:
                    # Reference alias of captured state: writes through it
                    # are writes to the captured object.
                    captured_aliases.add(name)
                else:
                    declared.add(name)
                if any(v in init_text for v in index_derived):
                    index_derived.add(name)
                if ". load (" in init_text or "-> load (" in init_text:
                    loads.add(name)

        for stmt in stmts:
            text = stmt.text
            if stmt.tokens and stmt.tokens[0].text == "for":
                continue
            if _decl_of(stmt) is not None:
                continue  # declarations were registered in the pass above
            a = _assign_of(stmt)
            target: str = ""
            how = ""
            if a is not None:
                lhs, op, rhs = a
                target = _root_id(lhs)
                how = f"'{op}' assignment"
                if target in declared and target not in captured_aliases:
                    continue
                lhs_text = " ".join(t.text for t in lhs)
                if index_derived and re.search(
                    r"\[[^\]]*\b(" + "|".join(
                        re.escape(v) for v in sorted(index_derived))
                    + r")\b[^\]]*\]", lhs_text
                ):
                    continue  # disjoint per-index slot write
            else:
                # Root of the access chain: `tile.inbox.clear()` writes
                # `tile`, and `tile` may be a per-index alias.
                m = re.search(r"\b(\w+)((?:\s*(?:\.|->)\s*\w+)+)\s*\(", text)
                if m is None:
                    continue
                target = m.group(1)
                method = re.findall(r"\w+", m.group(2))[-1]
                if method in _ATOMIC_RMW or target in atomics:
                    continue
                if method not in _MUTATOR_METHODS:
                    continue
                if target in declared and target not in captured_aliases:
                    continue
                how = f"'{method}()' call"
            if not target:
                continue
            if target in atomics:
                continue
            # Increments of captured counters: `++shared` / `shared++`.
            if _ordered_merge_after(fn, dispatch_at, target):
                continue
            emit(stmt.line, "merge-ordering",
                 f"parallel {dispatch} callback writes captured shared "
                 f"state '{target}' ({how}) without a per-index slot or a "
                 "subsequent id-ordered merge — results depend on thread "
                 "interleaving")

        # Atomic loads feeding captured state: the PR-9 `live_flight`
        # hazard — a mid-region atomic read is schedule-dependent.
        if loads:
            for stmt in stmts:
                if _decl_of(stmt) is not None:
                    continue
                a = _assign_of(stmt)
                if a is None:
                    continue
                lhs, _op, rhs = a
                target = _root_id(lhs)
                if target in declared and target not in captured_aliases:
                    continue
                if _mentions(rhs, loads):
                    emit(stmt.line, "determinism-taint",
                         "atomic .load() read inside a parallel callback "
                         f"flows into captured state '{target}' — the "
                         "value depends on the schedule, not the input")


def _ordered_merge_after(fn: FunctionInfo, dispatch_at: int,
                         target: str) -> bool:
    """Whether a blessed ordered-merge call touches `target` after the
    dispatch statement in the enclosing function."""
    seen_dispatch = False
    for stmt in fn.stmts:
        if not seen_dispatch:
            if any(t.kind == "id" and t.text in _DISPATCH_NAMES
                   for t in stmt.tokens):
                seen_dispatch = True
            continue
        if _BLESSED_MERGE_RE.search(stmt.text) and _mentions(
                stmt.tokens, {target}):
            return True
    return False
