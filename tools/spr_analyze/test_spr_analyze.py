#!/usr/bin/env python3
"""Fixture proofs for spr_analyze: every rule must fire where the corpus
says it fires and stay silent on the sanctioned idioms.

Fixture convention: `*.cxx` files under fixtures/ carry
`EXPECT[rule-name]` comment markers on the exact line a finding is
required. `*_pass.cxx` files carry no markers and must come back clean.
The pragma fixtures assert the escape-hatch machinery itself
(reason-required, unknown-rule rejection, comment-line binding).

Run directly (`python3 test_spr_analyze.py`) or through ctest
(`spr_analyze_fixtures`).
"""

from __future__ import annotations

import json
import os
import re
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(os.path.dirname(_HERE))
sys.path.insert(0, _HERE)
sys.path.insert(0, os.path.join(_ROOT, "scripts"))

import spr_analyze  # noqa: E402

_FIXTURES = os.path.join(_HERE, "fixtures")
_EXPECT_RE = re.compile(r"EXPECT\[([a-z\-]+)\]")


def expected_findings(path: str) -> set[tuple[int, str]]:
    out = set()
    with open(path) as f:
        for idx, line in enumerate(f, start=1):
            for m in _EXPECT_RE.finditer(line):
                out.add((idx, m.group(1)))
    return out


def analyze(path: str, engine: str = "fallback") -> set[tuple[int, str]]:
    findings = spr_analyze.analyze_files([path], _FIXTURES, engine)
    return {(f.line, f.rule) for f in findings}


class FixtureCorpus(unittest.TestCase):
    """Marker-driven: findings must equal the EXPECT set, exactly."""

    def assert_fixture(self, name: str):
        path = os.path.join(_FIXTURES, name)
        self.assertEqual(analyze(path), expected_findings(path),
                         f"{name}: findings diverge from EXPECT markers")

    def test_arena_escape_fire(self):
        self.assert_fixture("arena_escape_fire.cxx")

    def test_arena_escape_pass(self):
        self.assert_fixture("arena_escape_pass.cxx")

    def test_view_lifetime_fire(self):
        self.assert_fixture("view_lifetime_fire.cxx")

    def test_view_lifetime_pass(self):
        self.assert_fixture("view_lifetime_pass.cxx")

    def test_determinism_taint_fire(self):
        self.assert_fixture("determinism_taint_fire.cxx")

    def test_determinism_taint_pass(self):
        self.assert_fixture("determinism_taint_pass.cxx")

    def test_merge_ordering_fire(self):
        self.assert_fixture("merge_ordering_fire.cxx")

    def test_merge_ordering_pass(self):
        self.assert_fixture("merge_ordering_pass.cxx")

    def test_every_rule_has_fire_coverage(self):
        """No rule may silently die: the corpus proves each one fires."""
        covered = set()
        for name in os.listdir(_FIXTURES):
            covered |= {r for _, r in expected_findings(
                os.path.join(_FIXTURES, name))}
        import rules
        expected = set(rules.RULES) - {"pragma"}  # pragma: proven below
        self.assertEqual(covered & expected, expected,
                         "rules without a must-fire fixture")


class PragmaMachinery(unittest.TestCase):
    def test_pragma_fire(self):
        path = os.path.join(_FIXTURES, "pragma_fire.cxx")
        got = analyze(path)
        with open(path) as f:
            lines = f.readlines()
        no_reason = next(i for i, l in enumerate(lines, 1)
                         if "allow(view-lifetime)" in l)
        unknown = next(i for i, l in enumerate(lines, 1)
                       if "made-up-rule" in l)
        self.assertEqual(got, {
            (no_reason, "pragma"),    # allow without a reason
            (unknown, "pragma"),      # unknown rule name
            (unknown + 1, "view-lifetime"),  # bogus allow suppresses nothing
        })

    def test_pragma_pass(self):
        path = os.path.join(_FIXTURES, "pragma_pass.cxx")
        self.assertEqual(analyze(path), set(),
                         "justified comment-line pragma must bind to the "
                         "next code line and suppress the finding")


class Baseline(unittest.TestCase):
    def test_src_is_clean(self):
        """The tree-wide zero-findings baseline the CI job gates."""
        files = spr_analyze.collect_files(["src"], _ROOT)
        findings = spr_analyze.analyze_files(files, _ROOT, "fallback")
        self.assertEqual([str(f) for f in findings], [])


class Sarif(unittest.TestCase):
    def test_sarif_shape(self):
        path = os.path.join(_FIXTURES, "arena_escape_fire.cxx")
        findings = spr_analyze.analyze_files([path], _FIXTURES, "fallback")
        self.assertTrue(findings)
        with tempfile.TemporaryDirectory() as tmp:
            out = os.path.join(tmp, "out.sarif")
            spr_analyze.write_sarif(findings, out)
            with open(out) as f:
                sarif = json.load(f)
        self.assertEqual(sarif["version"], "2.1.0")
        run = sarif["runs"][0]
        self.assertEqual(run["tool"]["driver"]["name"], "spr_analyze")
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        for result in run["results"]:
            self.assertIn(result["ruleId"], rule_ids)
            loc = result["locations"][0]["physicalLocation"]
            self.assertGreaterEqual(loc["region"]["startLine"], 1)


class EngineAgreement(unittest.TestCase):
    @unittest.skipUnless(spr_analyze.HAVE_LIBCLANG,
                         "libclang bindings not importable")
    def test_fixtures_agree_across_engines(self):
        for name in sorted(os.listdir(_FIXTURES)):
            if not name.endswith(".cxx"):
                continue
            path = os.path.join(_FIXTURES, name)
            self.assertEqual(analyze(path, "clang"),
                             analyze(path, "fallback"),
                             f"{name}: engines disagree")


if __name__ == "__main__":
    unittest.main(verbosity=2)
