/// \file spr_cli.cpp
/// Command-line front end to the library:
///
///   spr_cli info     [flags]            network structure summary
///   spr_cli label    [flags]            safety labeling summary / dump
///   spr_cli route    [flags] <s> <d>    route one pair with every scheme
///   spr_cli sweep    [flags]            mini figure sweep (table output);
///                                       --slice i/m writes a slice JSON
///                                       (--shard is a compatibility alias);
///                                       --tiles RxC labels each cell via
///                                       spatial-tile sharding
///   spr_cli merge    [flags] <slice.json>...  merge sweep slices
///   spr_cli validate <file.json>...     parse JSON artifacts (CI gate)
///   spr_cli scenario [flags] <name>     run a registered scenario (--list);
///                                       --format console,json,csv,svg
///                                       ("run" is an alias for "scenario")
///   spr_cli render   [flags] <out.svg>  render deployment + unsafe areas
///
/// Common flags: --nodes, --seed, --fa, --range.
///
/// Distributed sweeps: the sweep's (node_count, network_index) cells are
/// independent, so `sweep --slice i/m` computes every i-th cell and
/// serializes the full per-cell aggregates; run the m slices on any
/// machines, copy the JSONs back, and `merge` reproduces the in-process
/// sweep bit-identically. (Sweep slices are unrelated to the *spatial
/// tiles* of shard/, which partition one deployment's field; see
/// `sweep --tiles`.)

#include <charconv>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.h"
#include "core/network.h"
#include "core/scenario.h"
#include "graph/graph_algos.h"
#include "graph/metrics.h"
#include "report/serialize.h"
#include "safety/distributed.h"
#include "shard/sharded_network.h"
#include "stats/table.h"
#include "util/flags.h"
#include "util/svg.h"

namespace {

using namespace spr;

struct CommonArgs {
  int nodes = 600;
  unsigned long long seed = 1;
  bool fa = false;
  double range = 20.0;
};

void add_common(FlagSet& flags, CommonArgs& args) {
  flags.add_int("nodes", &args.nodes, "number of sensors");
  flags.add_uint64("seed", &args.seed, "deployment seed");
  flags.add_bool("fa", &args.fa, "forbidden-area deployment model");
  flags.add_double("range", &args.range, "transmission radius (m)");
}

Network build_network(const CommonArgs& args) {
  NetworkConfig config;
  config.deployment.node_count = args.nodes;
  config.deployment.radio_range = args.range;
  config.deployment.model =
      args.fa ? DeployModel::kForbiddenAreas : DeployModel::kIdeal;
  config.seed = args.seed;
  return Network::create(config);
}

int cmd_info(int argc, const char* const* argv) {
  CommonArgs args;
  FlagSet flags("spr_cli info: network structure summary");
  add_common(flags, args);
  if (!flags.parse(argc, argv)) return 1;
  Network net = build_network(args);
  const auto& g = net.graph();
  auto degrees = degree_stats(g);
  std::printf("nodes        %zu\n", g.size());
  std::printf("links        %zu\n", g.edge_count());
  std::printf("degree       mean %.2f  min %zu  max %zu\n", degrees.mean,
              degrees.min, degrees.max);
  std::printf("connectivity %.1f%% in largest component\n",
              100.0 * largest_component_fraction(g));
  std::printf("hop diameter ~%zu\n", hop_diameter_estimate(g));
  std::printf("edge nodes   %zu (interest area: %zu interior)\n",
              net.interest_area().edge_count(),
              net.interest_area().interior_nodes().size());
  std::printf("gabriel      %zu edges kept\n", net.overlay().edge_count());
  std::printf("stuck nodes  %zu (TENT rule), %zu hole boundaries\n",
              net.boundhole().stuck_count(), net.boundhole().boundaries().size());
  std::printf("unsafe nodes %zu\n", net.safety().unsafe_node_count());
  return 0;
}

/// Parses "--tiles RxC" (e.g. 2x2); returns false (with a message) when
/// malformed. Empty spec leaves rows/cols at 0 (monolithic labeling).
bool parse_tile_grid(const std::string& spec, int& rows, int& cols) {
  if (spec.empty()) return true;
  auto parse_full = [](std::string_view token, int& out) {
    auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(),
                                     out);
    return ec == std::errc() && ptr == token.data() + token.size();
  };
  std::size_t cross = spec.find('x');
  if (cross == std::string::npos ||
      !parse_full(std::string_view(spec).substr(0, cross), rows) ||
      !parse_full(std::string_view(spec).substr(cross + 1), cols) ||
      rows < 1 || cols < 1) {
    std::fprintf(stderr, "--tiles expects RxC (e.g. 2x2), got '%s'\n",
                 spec.c_str());
    return false;
  }
  return true;
}

int cmd_label(int argc, const char* const* argv) {
  CommonArgs args;
  bool dump = false;
  bool distributed = false;
  std::string tiles_spec;
  FlagSet flags("spr_cli label: safety labeling summary");
  add_common(flags, args);
  flags.add_bool("dump", &dump, "print every unsafe node's tuple and E areas");
  flags.add_bool("distributed", &distributed,
                 "run the distributed construction and report its cost");
  flags.add_string("tiles", &tiles_spec,
                   "also label via an RxC spatial-tile grid and compare");
  if (!flags.parse(argc, argv)) return 1;
  int tile_rows = 0, tile_cols = 0;
  if (!parse_tile_grid(tiles_spec, tile_rows, tile_cols)) return 1;
  Network net = build_network(args);
  const auto& info = net.safety();

  std::size_t per_type[4] = {0, 0, 0, 0};
  for (NodeId u = 0; u < info.size(); ++u) {
    for (ZoneType t : kAllZoneTypes) {
      if (!info.is_safe(u, t)) ++per_type[zone_index(t)];
    }
  }
  std::printf("unsafe nodes: %zu of %zu\n", info.unsafe_node_count(),
              info.size());
  std::printf("unsafe statuses per type: 1:%zu 2:%zu 3:%zu 4:%zu\n",
              per_type[0], per_type[1], per_type[2], per_type[3]);
  if (distributed) {
    auto result = compute_safety_distributed(net.graph(), net.interest_area());
    std::printf("distributed construction: %s\n",
                result.stats.to_string().c_str());
    std::printf("matches centralized: %s\n",
                result.info == info ? "yes" : "NO");
  }
  if (tile_rows > 0) {
    ShardedNetwork::Config tile_config;
    tile_config.tile_rows = tile_rows;
    tile_config.tile_cols = tile_cols;
    ShardedNetwork sharded(net.graph(), /*edge_band=*/-1.0, tile_config);
    const SafetyInfo& tiled = sharded.safety();
    const ShardStats& ts = sharded.last_stats();
    std::printf("spatial tiles: %dx%d grid\n", tile_rows, tile_cols);
    for (int t = 0; t < sharded.tile_count(); ++t) {
      std::printf("  tile %d: %zu owned + %zu ghosts\n", t,
                  sharded.tile_owned(t),
                  sharded.tile_members(t).size() - sharded.tile_owned(t));
    }
    std::printf("  exchange rounds %zu, halo demotions %zu, flips %zu\n",
                ts.exchange_rounds, ts.halo_demotions, ts.incremental.flips);
    std::printf("  matches monolithic labeling: %s\n",
                tiled == info ? "yes" : "NO");
    if (!(tiled == info)) return 1;
  }
  if (dump) {
    for (NodeId u = 0; u < info.size(); ++u) {
      const auto& tuple = info.tuple(u);
      if (tuple.any_safe() && tuple.to_string() == "(1,1,1,1)") continue;
      Vec2 p = net.graph().position(u);
      std::printf("node %u (%.1f,%.1f) %s", u, p.x, p.y,
                  tuple.to_string().c_str());
      for (ZoneType t : kAllZoneTypes) {
        if (tuple.is_safe(t)) continue;
        Rect e = estimated_area(p, tuple.anchors_for(t));
        std::printf("  E%d=[%.0f:%.0f,%.0f:%.0f]", static_cast<int>(t),
                    e.lo().x, e.hi().x, e.lo().y, e.hi().y);
      }
      std::printf("\n");
    }
  }
  return 0;
}

int cmd_route(int argc, const char* const* argv) {
  CommonArgs args;
  FlagSet flags("spr_cli route <s> <d>: route one pair with every scheme");
  add_common(flags, args);
  if (!flags.parse(argc, argv)) return 1;
  Network net = build_network(args);
  NodeId s, d;
  if (flags.positional().size() >= 2) {
    s = static_cast<NodeId>(std::stoul(flags.positional()[0]));
    d = static_cast<NodeId>(std::stoul(flags.positional()[1]));
    if (s >= net.graph().size() || d >= net.graph().size()) {
      std::fprintf(stderr, "node ids out of range (network has %zu nodes)\n",
                   net.graph().size());
      return 1;
    }
  } else {
    Rng rng(args.seed ^ 0x99);
    std::tie(s, d) = net.random_connected_interior_pair(rng);
    if (s == kInvalidNode) {
      std::fprintf(stderr, "no routable pair\n");
      return 1;
    }
    std::printf("(no pair given; picked %u -> %u)\n", s, d);
  }
  auto oracle = bfs_path(net.graph(), s, d);
  std::printf("optimal: %zu hops, %.1fm\n", oracle.hops(), oracle.length);
  for (Scheme scheme : {Scheme::kGf, Scheme::kGfFace, Scheme::kLgf,
                        Scheme::kSlgf, Scheme::kSlgf2}) {
    auto router = net.make_router(scheme);
    PathResult r = router->route(s, d);
    std::printf("%-8s %s\n", scheme_name(scheme), r.to_string().c_str());
  }
  return 0;
}

/// Prints the standard mini-sweep table for paper-scheme points.
void print_sweep_table(const std::vector<SweepPoint>& points) {
  Table table({"nodes", "GF avg", "LGF avg", "SLGF avg", "SLGF2 avg",
               "SLGF2 max", "SLGF2 deliv"});
  for (const auto& point : points) {
    const auto& s2 = point.by_scheme.at("SLGF2");
    table.add_row({std::to_string(point.node_count),
                   Table::fmt(point.by_scheme.at("GF").hops.mean()),
                   Table::fmt(point.by_scheme.at("LGF").hops.mean()),
                   Table::fmt(point.by_scheme.at("SLGF").hops.mean()),
                   Table::fmt(s2.hops.mean()), Table::fmt(s2.max_hops(), 0),
                   Table::fmt(s2.delivery_ratio())});
  }
  std::fputs(table.render().c_str(), stdout);
}

/// Parses "--slice i/m"; returns false (with a message) when malformed.
/// Both numbers must consume their whole token ("0x/2y" is an error, not
/// slice 0/2).
bool parse_slice_spec(const std::string& spec, int& index, int& count) {
  if (spec.empty()) {
    index = 0;
    count = 1;
    return true;
  }
  auto parse_full = [](std::string_view token, int& out) {
    auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(),
                                     out);
    return ec == std::errc() && ptr == token.data() + token.size();
  };
  std::size_t slash = spec.find('/');
  if (slash == std::string::npos ||
      !parse_full(std::string_view(spec).substr(0, slash), index) ||
      !parse_full(std::string_view(spec).substr(slash + 1), count)) {
    std::fprintf(stderr, "--slice expects i/m (e.g. 0/4), got '%s'\n",
                 spec.c_str());
    return false;
  }
  if (count < 1 || index < 0 || index >= count) {
    std::fprintf(stderr, "--slice index out of range: %s\n", spec.c_str());
    return false;
  }
  return true;
}

int cmd_sweep(int argc, const char* const* argv) {
  CommonArgs args;
  int networks = 10, pairs = 10, threads = 0;
  std::string slice_spec, shard_spec, json_path;
  FlagSet flags("spr_cli sweep: mini paper sweep");
  add_common(flags, args);
  flags.add_int("networks", &networks, "networks per point");
  flags.add_int("pairs", &pairs, "pairs per network");
  flags.add_int("threads", &threads, "sweep threads (0=hardware, 1=serial)");
  flags.add_string("slice", &slice_spec,
                   "compute only slice i/m of the sweep's cells");
  flags.add_string("shard", &shard_spec,
                   "deprecated alias for --slice");
  std::string tiles_spec;
  flags.add_string("tiles", &tiles_spec,
                   "label each cell via an RxC spatial-tile grid");
  flags.add_string("json", &json_path,
                   "write the per-cell aggregates as a slice JSON here");
  if (!flags.parse(argc, argv)) return 1;
  if (slice_spec.empty()) slice_spec = shard_spec;  // --shard alias
  int slice_index = 0, slice_count = 1;
  if (!parse_slice_spec(slice_spec, slice_index, slice_count)) return 1;
  int tile_rows = 0, tile_cols = 0;
  if (!parse_tile_grid(tiles_spec, tile_rows, tile_cols)) return 1;
  if (slice_count > 1 && json_path.empty()) {
    std::fprintf(stderr, "--slice needs --json <path> to store the slice\n");
    return 1;
  }

  SweepConfig config;
  config.model = args.fa ? DeployModel::kForbiddenAreas : DeployModel::kIdeal;
  config.networks_per_point = networks;
  config.pairs_per_network = pairs;
  config.base_seed = args.seed;
  config.threads = threads;
  config.schemes = SweepConfig::paper_schemes();
  config.deployment_template.radio_range = args.range;
  config.tile_rows = tile_rows;
  config.tile_cols = tile_cols;

  if (json_path.empty()) {
    // Plain in-process sweep.
    print_sweep_table(run_sweep(config));
    return 0;
  }

  // Serialized path: compute this slice's cells and persist them in full
  // (sample-retaining) form, so `spr_cli merge` can reproduce the sweep
  // bit-identically from the slice files.
  auto cells = run_sweep_slice(config, slice_index, slice_count);
  std::size_t cell_count = cells.size();
  SweepSlice slice = make_slice(config, slice_index, slice_count,
                                std::move(cells));
  JsonWriter w;
  to_json(w, slice);
  if (!w.write_file(json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  if (slice_count == 1) {
    std::vector<std::string> labels;
    for (const auto& spec : config.schemes)
      labels.push_back(spec.display_label());
    print_sweep_table(
        merge_cell_results(config.node_counts, labels, slice.cells));
  }
  std::printf("wrote slice %d/%d (%zu cells) to %s\n", slice_index,
              slice_count, cell_count, json_path.c_str());
  return 0;
}

int cmd_merge(int argc, const char* const* argv) {
  std::string json_path;
  FlagSet flags(
      "spr_cli merge <slice.json>...: merge serialized sweep slices");
  flags.add_string("json", &json_path, "also write the merged report here");
  if (!flags.parse(argc, argv)) return 1;
  if (flags.positional().empty()) {
    std::fprintf(stderr, "usage: spr_cli merge [flags] <slice.json>...\n");
    return 1;
  }

  std::vector<SweepSlice> slices;
  for (const std::string& path : flags.positional()) {
    JsonValue document;
    std::string error;
    if (!JsonValue::parse_file(path, document, &error)) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
      return 1;
    }
    SweepSlice slice;
    if (!from_json(document, slice)) {
      std::fprintf(stderr, "%s: not a spr sweep slice file\n", path.c_str());
      return 1;
    }
    slices.push_back(std::move(slice));
  }

  // Header identity, kept before the slices move into the merge.
  const std::string model_tag = slices.front().model_tag;
  const std::vector<std::string> scheme_labels = slices.front().scheme_labels;
  const int networks_per_point = slices.front().networks_per_point;
  const int pairs_per_network = slices.front().pairs_per_network;
  const std::uint64_t base_seed = slices.front().base_seed;

  std::vector<SweepPoint> points;
  std::string error;
  if (!merge_slices(std::move(slices), points, &error)) {
    std::fprintf(stderr, "merge failed: %s\n", error.c_str());
    return 1;
  }

  std::printf("merged %zu slice file(s): %s model, %d networks x %d pairs "
              "per point, seed %llu\n",
              flags.positional().size(), model_tag.c_str(),
              networks_per_point, pairs_per_network,
              static_cast<unsigned long long>(base_seed));
  Table table({"nodes", "scheme", "avg hops", "max hops", "delivery"});
  for (const auto& point : points) {
    for (const auto& label : scheme_labels) {
      const auto& agg = point.by_scheme.at(label);
      table.add_row({std::to_string(point.node_count), label,
                     Table::fmt(agg.hops.mean()),
                     Table::fmt(agg.max_hops(), 0),
                     Table::fmt(agg.delivery_ratio())});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  if (!json_path.empty()) {
    SweepSection section;
    if (!deploy_model_from_tag(model_tag, section.model)) {
      section.model = DeployModel::kIdeal;
    }
    section.networks_per_point = networks_per_point;
    section.pairs_per_network = pairs_per_network;
    section.base_seed = base_seed;
    section.points = points;
    JsonWriter w;
    w.begin_object();
    w.key("scenario").value("merge");
    w.key("shards").value(
        static_cast<std::uint64_t>(flags.positional().size()));
    w.key("models").begin_array();
    sweep_section_to_json(w, section);
    w.end_array();
    w.end_object();
    if (!w.write_file(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}

int cmd_validate(int argc, const char* const* argv) {
  FlagSet flags(
      "spr_cli validate <file.json>...: parse JSON artifacts with the "
      "bundled reader (CI validity gate)");
  if (!flags.parse(argc, argv)) return 1;
  if (flags.positional().empty()) {
    std::fprintf(stderr, "usage: spr_cli validate <file.json>...\n");
    return 1;
  }
  int failures = 0;
  for (const std::string& path : flags.positional()) {
    JsonValue document;
    std::string error;
    if (JsonValue::parse_file(path, document, &error)) {
      std::printf("%s: valid JSON (%zu top-level members)\n", path.c_str(),
                  document.size());
    } else {
      std::fprintf(stderr, "%s: INVALID — %s\n", path.c_str(), error.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int cmd_scenario(int argc, const char* const* argv) {
  int networks = 0, pairs = 0, threads = 0;
  unsigned long long seed = 0;
  bool list = false;
  std::string formats, json_path, csv_path, svg_path;
  FlagSet flags("spr_cli scenario <name>: run a registered scenario");
  flags.add_bool("list", &list, "list the registered scenarios");
  flags.add_int("networks", &networks, "networks per point (0=default)");
  flags.add_int("pairs", &pairs, "pairs per network (0=default)");
  flags.add_uint64("seed", &seed, "base seed (0=default)");
  flags.add_int("threads", &threads, "sweep threads (0=hardware, 1=serial)");
  flags.add_string("format", &formats,
                   "report sinks, comma-separated: console,json,csv,svg");
  flags.add_string("json", &json_path, "also write a JSON report here");
  flags.add_string("csv", &csv_path, "also write CSV table exports here");
  flags.add_string("svg", &svg_path, "also write an SVG sweep plot here");
  if (!flags.parse(argc, argv)) return 1;

  const auto& suite = ScenarioSuite::builtin();
  if (list || flags.positional().empty()) {
    std::printf("registered scenarios:\n");
    for (const auto& s : suite.scenarios()) {
      std::printf("  %-18s %s\n", s.name.c_str(), s.description.c_str());
    }
    return list ? 0 : 1;
  }

  ScenarioOptions opts;
  opts.networks = networks;
  opts.pairs = pairs;
  opts.seed = seed;
  opts.threads = threads;
  opts.formats = formats;
  opts.json_path = json_path;
  opts.csv_path = csv_path;
  opts.svg_path = svg_path;
  return suite.run(flags.positional().front(), opts);
}

int cmd_render(int argc, const char* const* argv) {
  CommonArgs args;
  FlagSet flags("spr_cli render <out.svg>: render the deployment");
  add_common(flags, args);
  if (!flags.parse(argc, argv)) return 1;
  if (flags.positional().empty()) {
    std::fprintf(stderr, "usage: spr_cli render [flags] <out.svg>\n");
    return 1;
  }
  Network net = build_network(args);
  const auto& g = net.graph();
  SvgCanvas svg(net.deployment().field, 4.0);
  for (const Polygon& area : net.deployment().forbidden_areas) {
    svg.polygon(area, "#f4c7c3", "#c0392b", 0.3, 0.8);
  }
  for (NodeId u = 0; u < g.size(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (v > u) svg.line(g.position(u), g.position(v), "#dddddd", 0.15, 0.6);
    }
  }
  for (NodeId u = 0; u < g.size(); ++u) {
    bool unsafe = false;
    for (ZoneType t : kAllZoneTypes) unsafe |= !net.safety().is_safe(u, t);
    svg.circle(g.position(u), 0.9, unsafe ? "#e67e22" : "#7f8c8d");
  }
  const std::string& path = flags.positional().front();
  if (!svg.write_file(path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu elements)\n", path.c_str(), svg.element_count());
  return 0;
}

void usage() {
  std::fputs(
      "usage: spr_cli <info|label|route|sweep|merge|validate|run|scenario|"
      "render> [flags...]\n"
      "('run' and 'scenario' are synonyms)\n"
      "run 'spr_cli <command> --help' for per-command flags\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  std::string command = argv[1];
  // Shift argv so each command parses its own flags.
  int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  if (command == "info") return cmd_info(sub_argc, sub_argv);
  if (command == "label") return cmd_label(sub_argc, sub_argv);
  if (command == "route") return cmd_route(sub_argc, sub_argv);
  if (command == "sweep") return cmd_sweep(sub_argc, sub_argv);
  if (command == "merge") return cmd_merge(sub_argc, sub_argv);
  if (command == "validate") return cmd_validate(sub_argc, sub_argv);
  if (command == "scenario" || command == "run") {
    return cmd_scenario(sub_argc, sub_argv);
  }
  if (command == "render") return cmd_render(sub_argc, sub_argv);
  usage();
  return 1;
}
