/// \file bench_ablation.cpp
/// Ablation of SLGF2's three mechanisms (DESIGN.md experiment ABL): the
/// either-hand superseding rule, the backup-path phase, and the perimeter
/// rectangle confinement — each disabled in turn, plus SLGF and full SLGF2
/// as anchors. FA model (the regime the mechanisms target). Thin wrapper
/// over the "ablation" scenario; SPR_NETWORKS/SPR_PAIRS/SPR_THREADS/
/// SPR_FORMATS/SPR_JSON/SPR_CSV/SPR_SVG apply (see bench_common.h).

#include "core/scenario.h"

int main() {
  return spr::ScenarioSuite::builtin().run("ablation",
                                           spr::scenario_options_from_env());
}
