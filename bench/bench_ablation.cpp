/// \file bench_ablation.cpp
/// Ablation of SLGF2's three mechanisms (DESIGN.md experiment ABL): the
/// either-hand superseding rule, the backup-path phase, and the perimeter
/// rectangle confinement — each disabled in turn, plus SLGF and full SLGF2
/// as anchors. FA model (the regime the mechanisms target).

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace spr;
  std::printf("== SLGF2 ablation: contribution of each mechanism (FA model) "
              "==\n\n");

  std::vector<SchemeSpec> schemes = {
      {Scheme::kSlgf, {}, "SLGF"},
      {Scheme::kSlgf2, {}, "SLGF2"},
      {Scheme::kSlgf2, {.use_either_hand = false}, "-eitherhand"},
      {Scheme::kSlgf2, {.use_backup_paths = false}, "-backup"},
      {Scheme::kSlgf2, {.limit_perimeter = false}, "-limitperim"},
  };

  SweepConfig config = spr::bench::figure_config(DeployModel::kForbiddenAreas);
  config.networks_per_point = env_int_or("SPR_NETWORKS", 40);
  config.schemes = schemes;
  config.node_counts = {400, 600, 800};

  auto points = run_sweep(config);

  for (const char* metric : {"avg-hops", "avg-length", "perimeter-hops",
                             "delivery"}) {
    std::printf("%s\n", metric);
    std::vector<std::string> header{"nodes"};
    for (const auto& s : schemes) header.push_back(s.display_label());
    Table table(std::move(header));
    for (const auto& point : points) {
      std::vector<std::string> row{std::to_string(point.node_count)};
      for (const auto& s : schemes) {
        const auto& agg = point.by_scheme.at(s.display_label());
        double value = 0.0;
        if (std::string(metric) == "avg-hops") value = agg.hops.mean();
        if (std::string(metric) == "avg-length") value = agg.length.mean();
        if (std::string(metric) == "perimeter-hops")
          value = agg.perimeter_hops.mean();
        if (std::string(metric) == "delivery") value = agg.delivery_ratio();
        row.push_back(Table::fmt(value, 2));
      }
      table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }
  return 0;
}
