/// \file bench_micro.cpp
/// google-benchmark microbenchmarks for the substrate: unit-disk graph
/// construction, planarization, safety labeling (centralized fixpoint and
/// distributed protocol), BOUNDHOLE, and per-packet routing of each scheme.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/network.h"
#include "deploy/deployment.h"
#include "graph/graph_algos.h"
#include "graph/quadrant_csr.h"
#include "mobility/waypoint.h"
#include "report/serialize.h"
#include "safety/distributed.h"
#include "shard/sharded_network.h"
#include "sim/stream_sim.h"
#include "util/task_pool.h"

namespace {

using namespace spr;

Deployment make_deployment(int n, DeployModel model) {
  DeploymentConfig config;
  config.node_count = n;
  config.model = model;
  Rng rng(1234);
  return deploy(config, rng);
}

/// A deployment whose field side grows with sqrt(n/600), holding the mean
/// degree at the paper's default (~18.8) so per-node work is comparable
/// across sizes; forbidden areas scale with the field so holes stay
/// proportionally sized.
Deployment make_scaled_deployment(int n, DeployModel model) {
  DeploymentConfig config;
  config.node_count = n;
  config.model = model;
  const double scale = std::sqrt(static_cast<double>(n) / 600.0);
  if (scale > 1.0) {
    config.field = Rect::from_bounds({0.0, 0.0}, {200.0 * scale, 200.0 * scale});
    config.min_forbidden_extent *= scale;
    config.max_forbidden_extent *= scale;
    config.forbidden_margin *= scale;
  }
  Rng rng(1234);
  return deploy(config, rng);
}

void BM_UnitDiskBuild(benchmark::State& state) {
  Deployment dep = make_deployment(static_cast<int>(state.range(0)),
                                   DeployModel::kIdeal);
  for (auto _ : state) {
    UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
    benchmark::DoNotOptimize(g.edge_count());
  }
}
BENCHMARK(BM_UnitDiskBuild)->Arg(400)->Arg(800);

void BM_GabrielOverlay(benchmark::State& state) {
  Deployment dep = make_deployment(static_cast<int>(state.range(0)),
                                   DeployModel::kIdeal);
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  for (auto _ : state) {
    PlanarOverlay overlay(g, PlanarOverlay::Kind::kGabriel);
    benchmark::DoNotOptimize(overlay.edge_count());
  }
}
BENCHMARK(BM_GabrielOverlay)->Arg(400)->Arg(800);

/// The safety-labeling fixpoint + anchor pass (safety/flat_kernel.h) at
/// paper sizes and at 10^4-10^5 nodes (constant-degree scaled fields). The
/// quadrant CSR is warmed outside the loop — it is built once per topology
/// epoch in every real consumer, so steady-state labeling cost is what the
/// kernel pays on top of it. Three variants over the same graphs:
///
///  * BM_SafetyLabeling        — the flat kernel, serial (the default path);
///  * BM_SafetyLabelingScalar  — the per-node tuple oracle it replaced;
///  * BM_SafetyLabelingParallel — the flat kernel on a 4-worker pool.
///
/// `flips`/`pushes` counters expose the kernel's work volume (identical
/// between flat and scalar at the same size: the fixpoint is unique).
enum class LabelMode { kFlat, kScalar, kParallel };

void safety_labeling_bench(benchmark::State& state, LabelMode mode) {
  Deployment dep = make_scaled_deployment(static_cast<int>(state.range(0)),
                                          DeployModel::kForbiddenAreas);
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  InterestArea area(g, g.range());
  g.zones();  // once-per-epoch structure: warm it so the loop times labeling
  TaskPool pool(4);
  LabelingStats stats;
  for (auto _ : state) {
    SafetyInfo info =
        mode == LabelMode::kScalar
            ? compute_safety_scalar(g, area, &stats)
            : compute_safety(g, area,
                             mode == LabelMode::kParallel ? &pool : nullptr,
                             &stats);
    benchmark::DoNotOptimize(info.unsafe_node_count());
  }
  state.counters["flips"] = static_cast<double>(stats.init_flips + stats.flips);
  state.counters["pushes"] = static_cast<double>(stats.pushes);
}

void BM_SafetyLabeling(benchmark::State& state) {
  safety_labeling_bench(state, LabelMode::kFlat);
}
void BM_SafetyLabelingScalar(benchmark::State& state) {
  safety_labeling_bench(state, LabelMode::kScalar);
}
void BM_SafetyLabelingParallel(benchmark::State& state) {
  safety_labeling_bench(state, LabelMode::kParallel);
}
BENCHMARK(BM_SafetyLabeling)->Arg(400)->Arg(800)->Arg(10000)->Arg(100000);
BENCHMARK(BM_SafetyLabelingScalar)->Arg(400)->Arg(800)->Arg(10000)->Arg(100000);
BENCHMARK(BM_SafetyLabelingParallel)->Arg(10000)->Arg(100000);


/// End-to-end spatial-tile sharding (shard/sharded_network.h): partition
/// build + halo-synced labeling + one fast-path mobility epoch, over a
/// constant-degree scaled field. Args are {nodes, tiles per side}; the
/// 4-worker pool parallelizes per-tile work. The million-node registration
/// runs a single iteration — it is the scale demonstration, not a
/// steady-state timing.
void BM_ShardedLabeling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int side = static_cast<int>(state.range(1));
  Deployment dep = make_scaled_deployment(n, DeployModel::kForbiddenAreas);
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  TaskPool pool(4);
  Rng rng(7);
  std::vector<Vec2> moved = g.positions();
  for (Vec2& p : moved) {
    p.x = std::clamp(p.x + rng.uniform(-4.0, 4.0), dep.field.lo().x,
                     dep.field.hi().x);
    p.y = std::clamp(p.y + rng.uniform(-4.0, 4.0), dep.field.lo().y,
                     dep.field.hi().y);
  }
  std::size_t halo_demotions = 0;
  for (auto _ : state) {
    ShardedNetwork::Config config;
    config.tile_rows = side;
    config.tile_cols = side;
    ShardedNetwork sharded(g, /*edge_band=*/-1.0, config, &pool);
    benchmark::DoNotOptimize(sharded.safety().unsafe_node_count());
    sharded.apply_moves(moved);
    benchmark::DoNotOptimize(sharded.safety().unsafe_node_count());
    halo_demotions = sharded.last_stats().halo_demotions;
  }
  state.counters["halo_demotions"] = static_cast<double>(halo_demotions);
}
BENCHMARK(BM_ShardedLabeling)
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({100000, 2})
    ->Args({100000, 4})
    ->Args({1000000, 4})
    ->Unit(benchmark::kMillisecond);

/// Building the quadrant CSR itself (the warmed-out cost above): the
/// once-per-epoch price of the flat kernel's substrate.
void BM_QuadrantZonesBuild(benchmark::State& state) {
  Deployment dep = make_scaled_deployment(static_cast<int>(state.range(0)),
                                          DeployModel::kForbiddenAreas);
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  for (auto _ : state) {
    QuadrantZones zones = QuadrantZones::build(g);
    benchmark::DoNotOptimize(zones.size());
  }
}
BENCHMARK(BM_QuadrantZonesBuild)->Arg(10000)->Arg(100000);

/// One failure wave (1% of the nodes) on a warm 10^4-node labeling: full
/// recompute on the degraded graph (Arg 0) vs the incremental continuation
/// through update_safety_after_failures (Arg 1). The degraded graph and its
/// patched zones are prepared outside the loop; the incremental arm's
/// per-iteration SafetyInfo copy is part of the price it pays in real use.
void BM_IncrementalFailureWave(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  Deployment dep = make_scaled_deployment(10000, DeployModel::kForbiddenAreas);
  Network net(dep);
  net.force(Network::kNeedsSafety);
  Rng rng(5);
  std::vector<NodeId> casualties;
  for (int i = 0; i < 100; ++i) {
    NodeId u = static_cast<NodeId>(rng.next_below(net.graph().size()));
    if (net.graph().alive(u)) casualties.push_back(u);
  }
  Network degraded = net.with_failures(casualties);
  const SafetyInfo& base = net.safety();
  IncrementalStats last{};
  for (auto _ : state) {
    if (incremental) {
      SafetyInfo info = base;
      last = update_safety_after_failures(degraded.graph(),
                                          degraded.interest_area(), casualties,
                                          info);
      benchmark::DoNotOptimize(info.unsafe_node_count());
    } else {
      SafetyInfo info =
          compute_safety(degraded.graph(), degraded.interest_area());
      benchmark::DoNotOptimize(info.unsafe_node_count());
    }
  }
  if (incremental) {
    state.counters["seeds"] = static_cast<double>(last.seeds);
    state.counters["flips"] = static_cast<double>(last.flips);
  }
}
BENCHMARK(BM_IncrementalFailureWave)->Arg(0)->Arg(1);

void BM_DistributedSafety(benchmark::State& state) {
  Deployment dep = make_deployment(static_cast<int>(state.range(0)),
                                   DeployModel::kForbiddenAreas);
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  InterestArea area(g, g.range());
  for (auto _ : state) {
    auto result = compute_safety_distributed(g, area);
    benchmark::DoNotOptimize(result.stats.broadcasts);
  }
}
BENCHMARK(BM_DistributedSafety)->Arg(400)->Arg(800);

void BM_BoundHole(benchmark::State& state) {
  Deployment dep = make_deployment(static_cast<int>(state.range(0)),
                                   DeployModel::kForbiddenAreas);
  UnitDiskGraph g(dep.positions, dep.radio_range, dep.field);
  for (auto _ : state) {
    BoundHoleInfo info(g);
    benchmark::DoNotOptimize(info.stuck_count());
  }
}
BENCHMARK(BM_BoundHole)->Arg(400)->Arg(800);

void route_scheme_bench(benchmark::State& state, Scheme scheme) {
  NetworkConfig config;
  config.deployment.node_count = 600;
  config.deployment.model = DeployModel::kForbiddenAreas;
  config.seed = 99;
  Network net = Network::create(config);
  auto router = net.make_router(scheme);
  Rng rng(7);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 64; ++i) {
    auto pair = net.random_connected_interior_pair(rng);
    if (pair.first != kInvalidNode) pairs.push_back(pair);
  }
  if (pairs.empty()) {
    state.SkipWithError("no connected interior pairs");
    return;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto [s, d] = pairs[i++ % pairs.size()];
    PathResult r = router->route(s, d);
    benchmark::DoNotOptimize(r.hops());
  }
}

void BM_RouteGf(benchmark::State& state) { route_scheme_bench(state, Scheme::kGf); }
void BM_RouteLgf(benchmark::State& state) { route_scheme_bench(state, Scheme::kLgf); }
void BM_RouteSlgf(benchmark::State& state) { route_scheme_bench(state, Scheme::kSlgf); }
void BM_RouteSlgf2(benchmark::State& state) { route_scheme_bench(state, Scheme::kSlgf2); }
BENCHMARK(BM_RouteGf);
BENCHMARK(BM_RouteLgf);
BENCHMARK(BM_RouteSlgf);
BENCHMARK(BM_RouteSlgf2);

void BM_ShortestPathOracle(benchmark::State& state) {
  NetworkConfig config;
  config.deployment.node_count = 600;
  config.seed = 99;
  Network net = Network::create(config);
  Rng rng(8);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (int i = 0; i < 64; ++i) {
    auto pair = net.random_connected_interior_pair(rng);
    if (pair.first != kInvalidNode) pairs.push_back(pair);
  }
  if (pairs.empty()) {
    state.SkipWithError("no connected interior pairs");
    return;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto [s, d] = pairs[i++ % pairs.size()];
    auto sp = dijkstra_path(net.graph(), s, d);
    benchmark::DoNotOptimize(sp.length);
  }
}
BENCHMARK(BM_ShortestPathOracle);

/// Cost of the shard serialization round trip (report/serialize.h): one
/// sweep cell's full aggregates to JSON text, parsed back, deserialized.
/// This bounds the per-cell overhead the distributed sweep path adds on
/// top of the computation itself.
void BM_CellResultJsonRoundTrip(benchmark::State& state) {
  SweepConfig config;
  config.node_counts = {600};
  config.networks_per_point = 1;
  config.pairs_per_network = 20;
  config.threads = 1;
  config.schemes = SweepConfig::paper_schemes();
  CellResult cell = run_sweep_cell(config, 600, 0);
  for (auto _ : state) {
    JsonWriter w;
    to_json(w, cell);
    JsonValue parsed;
    bool ok = JsonValue::parse(w.str(), parsed);
    CellResult decoded;
    ok = ok && from_json(parsed, decoded);
    if (!ok) {
      state.SkipWithError("round trip failed");
      return;
    }
    benchmark::DoNotOptimize(decoded.size());
  }
}
BENCHMARK(BM_CellResultJsonRoundTrip);

/// Heap vs arena for the sweep cell's scratch (util/arena.h): the same
/// cell with SweepConfig::cell_arena off (Arg 0, the old heap path) and on
/// (Arg 1) — the before/after datapoint for the ROADMAP's per-cell arena
/// item. The delta isolates the pair buffer + oracle grouping allocations;
/// the cell's dominant cost (network build + routing) is identical.
void BM_SweepCellScratch(benchmark::State& state) {
  SweepConfig config;
  config.node_counts = {600};
  config.networks_per_point = 1;
  config.pairs_per_network = 20;
  config.threads = 1;
  config.schemes = SweepConfig::paper_schemes();
  config.cell_arena = state.range(0) != 0;
  for (auto _ : state) {
    CellResult cell = run_sweep_cell(config, 600, 0);
    benchmark::DoNotOptimize(cell.size());
  }
}
BENCHMARK(BM_SweepCellScratch)->Arg(0)->Arg(1);

/// One mobility re-pin epoch, full rebuild (Arg 0: fresh Network + forced
/// safety, the pre-with_moves path) vs incremental (Arg 1:
/// Network::with_moves — relocated grid, patched adjacency, bidirectional
/// safety continuation). Both process the same waypoint trajectory; the
/// delta is the ROADMAP's rebuild-vs-incremental re-pin datapoint.
void BM_MobilityRepin(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  NetworkConfig config;
  config.deployment.node_count = 600;
  config.deployment.model = DeployModel::kForbiddenAreas;
  config.seed = 42;
  Network net = Network::create(config);
  net.force(Network::kNeedsSafety);
  WaypointConfig wc;
  wc.field = net.deployment().field;
  wc.max_speed_mps = 1.5;
  WaypointModel model(net.deployment().positions, wc, Rng(42));
  for (auto _ : state) {
    model.advance(4.0);
    if (incremental) {
      net = net.with_moves(model.positions());
    } else {
      Deployment moved = net.deployment();
      moved.positions = model.positions();
      Network rebuilt(std::move(moved), net.edge_band());
      rebuilt.force(Network::kNeedsSafety);
      net = std::move(rebuilt);
    }
    benchmark::DoNotOptimize(net.safety().unsafe_node_count());
  }
}
BENCHMARK(BM_MobilityRepin)->Arg(0)->Arg(1);

/// The same rebuild-vs-incremental datapoint under *localized* motion (5%
/// of the nodes drift per epoch, everyone else holds still) — the regime
/// the incremental path targets: the grid relocation, adjacency patch and
/// touched-node safety scan all skip the unmoved majority.
void BM_LocalMotionRepin(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  NetworkConfig config;
  config.deployment.node_count = 600;
  config.deployment.model = DeployModel::kForbiddenAreas;
  config.seed = 42;
  Network net = Network::create(config);
  net.force(Network::kNeedsSafety);
  Rng rng(7);
  for (auto _ : state) {
    std::vector<Vec2> moved = net.graph().positions();
    for (int k = 0; k < 30; ++k) {
      NodeId u = static_cast<NodeId>(rng.next_below(moved.size()));
      moved[u].x = std::clamp(moved[u].x + rng.uniform(-8.0, 8.0), 0.0, 200.0);
      moved[u].y = std::clamp(moved[u].y + rng.uniform(-8.0, 8.0), 0.0, 200.0);
    }
    if (incremental) {
      net = net.with_moves(moved);
    } else {
      Deployment d = net.deployment();
      d.positions = std::move(moved);
      Network rebuilt(std::move(d), net.edge_band());
      rebuilt.force(Network::kNeedsSafety);
      net = std::move(rebuilt);
    }
    benchmark::DoNotOptimize(net.safety().unsafe_node_count());
  }
}
BENCHMARK(BM_LocalMotionRepin)->Arg(0)->Arg(1);

/// One full streaming-delivery cell (sim/stream_sim.h): 4 schemes x 30
/// packets with two mid-stream failure waves — the unit of work the
/// streaming-delivery scenario fans out over its sweep pool.
void BM_StreamSimCell(benchmark::State& state) {
  NetworkConfig config;
  config.deployment.node_count = 500;
  config.deployment.model = DeployModel::kForbiddenAreas;
  config.seed = 17;
  for (auto _ : state) {
    Network net = Network::create(config);
    Rng rng(99);
    StreamConfig sc;
    sc.packets = 30;
    auto pair = net.random_connected_interior_pair(rng);
    if (pair.first == kInvalidNode) {
      state.SkipWithError("no connected interior pair");
      return;
    }
    sc.pairs.push_back(pair);
    StreamWave wave;
    wave.time = 5.0;
    for (NodeId u = 0; u < net.graph().size(); u += 23) {
      if (u != pair.first && u != pair.second) wave.casualties.push_back(u);
    }
    sc.waves.push_back(wave);
    StreamSim sim(std::move(net), sc);
    StreamStats stats = sim.run();
    benchmark::DoNotOptimize(stats.events);
  }
}
BENCHMARK(BM_StreamSimCell);

/// The streaming engines head to head at traffic scale: `packets`
/// injections at packet_interval 0 — every flight concurrent — of one
/// scheme (GF: no labeling cost, pure stepping + scheduling) over 16 far
/// pairs of a constant-degree 10^4-node field. The legacy engine pays one
/// heap event per flight-hop; the flight-record engine pays one tick event
/// per distinct hop instant and advances each tick's batch over SoA
/// records with pooled steppers (optionally in parallel). Network
/// construction is excluded from the timed region; the `events` counter
/// shows the heap-traffic collapse.
enum class StreamEngineMode { kPerHop, kFlightRecord, kFlightRecordParallel };

void stream_engine_bench(benchmark::State& state, StreamEngineMode mode) {
  const int packets = static_cast<int>(state.range(0));
  Deployment dep = make_scaled_deployment(10000, DeployModel::kForbiddenAreas);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  {
    Network net(dep);
    Rng rng(321);
    for (int trial = 0; trial < 64 && pairs.size() < 16; ++trial) {
      auto pair = net.random_connected_interior_pair(rng);
      if (pair.first != kInvalidNode) pairs.push_back(pair);
    }
  }
  if (pairs.empty()) {
    state.SkipWithError("no connected interior pairs");
    return;
  }
  std::size_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Network net(dep);
    // Materialize GF's lazy recovery structures outside the timed region:
    // the first local minimum would otherwise charge the planar overlay +
    // BOUNDHOLE build (seconds, identical for every engine) to whichever
    // engine ran, drowning the engine-cost ratio this bench exists to show.
    net.force(Network::kNeedsOverlay | Network::kNeedsBoundhole);
    state.ResumeTiming();
    StreamConfig sc;
    SchemeSpec gf;
    gf.scheme = Scheme::kGf;
    sc.schemes.push_back(std::move(gf));
    sc.pairs = pairs;
    sc.packets = packets;
    sc.packet_interval = 0.0;  // all flights in the air at once
    sc.hop_delay = 0.25;
    sc.engine = mode == StreamEngineMode::kPerHop ? StreamEngine::kPerHopEvents
                                                  : StreamEngine::kFlightRecord;
    sc.threads = mode == StreamEngineMode::kFlightRecordParallel ? 4 : 1;
    StreamSim sim(std::move(net), sc);
    StreamStats stats = sim.run();
    events = stats.events;
    benchmark::DoNotOptimize(stats.events);
  }
  state.counters["events"] = static_cast<double>(events);
}

void BM_StreamSimPerHop(benchmark::State& state) {
  stream_engine_bench(state, StreamEngineMode::kPerHop);
}
BENCHMARK(BM_StreamSimPerHop)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_StreamSimFlightRecord(benchmark::State& state) {
  stream_engine_bench(state, StreamEngineMode::kFlightRecord);
}
BENCHMARK(BM_StreamSimFlightRecord)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_StreamSimFlightRecordParallel(benchmark::State& state) {
  stream_engine_bench(state, StreamEngineMode::kFlightRecordParallel);
}
BENCHMARK(BM_StreamSimFlightRecordParallel)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
