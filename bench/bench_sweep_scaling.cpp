/// \file bench_sweep_scaling.cpp
/// The parallel sweep engine's scaling check: runs the same sweep with
/// threads=1 and threads=hardware, asserts the aggregates are bit-identical
/// and reports the wall-clock speedup. Thin wrapper over the
/// "sweep-scaling" scenario; SPR_NETWORKS/SPR_PAIRS/SPR_THREADS/
/// SPR_FORMATS/SPR_JSON/SPR_CSV/SPR_SVG apply (see bench_common.h). Exits
/// nonzero if the parallel result ever diverges from serial.

#include "core/scenario.h"

int main() {
  return spr::ScenarioSuite::builtin().run("sweep-scaling",
                                           spr::scenario_options_from_env());
}
