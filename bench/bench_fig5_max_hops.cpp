/// \file bench_fig5_max_hops.cpp
/// Reproduces paper Fig. 5 (a)/(b): the maximum number of hops of a routing
/// path for GF, LGF, SLGF and SLGF2, as the node count varies from 400 to
/// 800 over the IA and FA deployment models. Thin wrapper over the
/// "fig5-max-hops" scenario; SPR_NETWORKS/SPR_PAIRS/SPR_THREADS/SPR_FORMATS/SPR_JSON/SPR_CSV/SPR_SVG
/// apply (see bench_common.h).

#include "core/scenario.h"

int main() {
  return spr::ScenarioSuite::builtin().run("fig5-max-hops",
                                           spr::scenario_options_from_env());
}
