/// \file bench_fig5_max_hops.cpp
/// Reproduces paper Fig. 5 (a)/(b): the maximum number of hops of a routing
/// path for GF, LGF, SLGF and SLGF2, as the node count varies from 400 to
/// 800 over the IA and FA deployment models. Maxima are taken over all
/// delivered packets of all sampled networks at each point.

#include <cstdio>

#include "bench_common.h"

int main() {
  std::printf("== Fig. 5: maximum number of hops of a GF, LGF, SLGF, SLGF2 "
              "routing ==\n\n");
  spr::bench::run_figure(
      "Fig. 5", [](const spr::RouteAggregate& agg) { return agg.max_hops(); },
      0);
  return 0;
}
