/// \file bench_stretch.cpp
/// Auxiliary experiment (not a paper figure): hop stretch and length
/// stretch versus the BFS / Dijkstra optima, per scheme and density. The
/// paper argues SLGF2 paths are "straightforward"; stretch is the direct
/// quantitative form of that claim.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace spr;
  std::printf("== Path stretch vs optimal (delivered packets) ==\n\n");
  ScenarioReport report;
  report.scenario = "bench-stretch";

  for (DeployModel model :
       {DeployModel::kIdeal, DeployModel::kForbiddenAreas}) {
    SweepConfig config = spr::bench::figure_config(model);
    config.networks_per_point = env_int_or("SPR_NETWORKS", 30);
    config.node_counts = {400, 500, 600, 700, 800};
    auto points = run_sweep(config);

    std::printf("%s model — hop stretch (routed hops / BFS-optimal hops)\n",
                spr::bench::model_name(model));
    Table hops({"nodes", "GF", "LGF", "SLGF", "SLGF2"});
    Table length({"nodes", "GF", "LGF", "SLGF", "SLGF2"});
    for (const auto& point : points) {
      std::vector<std::string> hop_row{std::to_string(point.node_count)};
      std::vector<std::string> len_row{std::to_string(point.node_count)};
      for (const char* scheme : {"GF", "LGF", "SLGF", "SLGF2"}) {
        const auto& agg = point.by_scheme.at(scheme);
        hop_row.push_back(Table::fmt(
            agg.stretch_hops.empty() ? 0.0 : agg.stretch_hops.mean(), 3));
        len_row.push_back(Table::fmt(
            agg.stretch_length.empty() ? 0.0 : agg.stretch_length.mean(), 3));
      }
      hops.add_row(std::move(hop_row));
      length.add_row(std::move(len_row));
    }
    std::fputs(hops.render().c_str(), stdout);
    std::printf("%s model — length stretch (routed meters / Dijkstra-optimal)\n",
                spr::bench::model_name(model));
    std::fputs(length.render().c_str(), stdout);
    std::printf("\n");
    std::string tag = spr::deploy_model_tag(model);
    report.add_table(std::move(hops), tag + " hop stretch");
    report.add_table(std::move(length), tag + " length stretch");
  }
  if (!spr::bench::export_csv_from_env(report)) return 1;
  return 0;
}
