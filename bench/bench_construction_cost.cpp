/// \file bench_construction_cost.cpp
/// Cost of constructing the safety information (paper Section 5: "the
/// construction cost of safety information has been proved to be the
/// minimum in [7]"). Measures the distributed protocol (Algorithm 2) on the
/// round engine: rounds to quiescence, broadcasts, and per-link message
/// receptions, versus node count and deployment model. A naive epidemic
/// re-flood baseline (every node rebroadcasts its state every round until
/// global stability) is included to show what "minimum" is measured against.

#include <cstdio>

#include "bench_common.h"
#include "safety/distributed.h"
#include "sim/engine.h"
#include "stats/summary.h"

namespace {

using namespace spr;

/// Naive baseline: every node broadcasts its full state each round until
/// the labeling stabilizes; cost is n broadcasts per round.
EngineStats naive_flood_cost(const UnitDiskGraph& g, const InterestArea& area) {
  // Rounds to stabilize equals the fixpoint depth; reuse the round-based
  // reference to count rounds.
  std::size_t rounds = 1;
  {
    std::vector<SafetyTuple> tuples(g.size());
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<std::pair<NodeId, ZoneType>> flips;
      for (NodeId u = 0; u < g.size(); ++u) {
        if (area.is_edge_node(u)) continue;
        for (ZoneType t : kAllZoneTypes) {
          if (!tuples[u].is_safe(t)) continue;
          bool has_safe = false;
          for (NodeId v : g.neighbors(u)) {
            if (in_quadrant(g.position(u), g.position(v), t) &&
                tuples[v].is_safe(t)) {
              has_safe = true;
              break;
            }
          }
          if (!has_safe) flips.emplace_back(u, t);
        }
      }
      for (auto [u, t] : flips) {
        tuples[u].set_safe(t, false);
        changed = true;
      }
      if (changed) ++rounds;
    }
  }
  EngineStats stats;
  stats.rounds = rounds + 1;  // one extra hello round
  stats.broadcasts = g.size() * stats.rounds;
  std::size_t receptions_per_round = 2 * g.edge_count();
  stats.receptions = receptions_per_round * stats.rounds;
  return stats;
}

}  // namespace

int main() {
  using namespace spr;
  std::printf("== Construction cost of the safety information (Algorithm 2) "
              "==\n\n");
  int networks = env_int_or("SPR_NETWORKS", 20);
  ScenarioReport report;
  report.scenario = "bench-construction-cost";
  for (DeployModel model :
       {DeployModel::kIdeal, DeployModel::kForbiddenAreas}) {
    std::printf("%s model, %d networks per point\n",
                spr::bench::model_name(model), networks);
    Table table({"nodes", "rounds", "broadcasts", "bcast/node", "receptions",
                 "naive bcast", "saving"});
    for (int n = 400; n <= 800; n += 50) {
      Summary rounds, broadcasts, receptions, naive_broadcasts;
      for (int i = 0; i < networks; ++i) {
        NetworkConfig config;
        config.deployment.node_count = n;
        config.deployment.model = model;
        config.seed = static_cast<std::uint64_t>(900000 + n * 1000 + i);
        Network net = Network::create(config);
        auto result =
            compute_safety_distributed(net.graph(), net.interest_area());
        rounds.add(static_cast<double>(result.stats.rounds));
        broadcasts.add(static_cast<double>(result.stats.broadcasts));
        receptions.add(static_cast<double>(result.stats.receptions));
        auto naive = naive_flood_cost(net.graph(), net.interest_area());
        naive_broadcasts.add(static_cast<double>(naive.broadcasts));
      }
      table.add_row({std::to_string(n), Table::fmt(rounds.mean(), 1),
                     Table::fmt(broadcasts.mean(), 0),
                     Table::fmt(broadcasts.mean() / n, 2),
                     Table::fmt(receptions.mean(), 0),
                     Table::fmt(naive_broadcasts.mean(), 0),
                     Table::fmt(naive_broadcasts.mean() /
                                    std::max(1.0, broadcasts.mean()),
                                2) +
                         "x"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
    report.add_table(std::move(table), spr::deploy_model_tag(model));
  }
  if (!spr::bench::export_csv_from_env(report)) return 1;
  std::printf("broadcasts stay near one per node: only nodes whose status or\n"
              "anchors change rebroadcast, matching the minimality claim.\n");
  return 0;
}
