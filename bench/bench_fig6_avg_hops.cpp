/// \file bench_fig6_avg_hops.cpp
/// Reproduces paper Fig. 6 (a)/(b): the average number of hops of a routing
/// path for GF, LGF, SLGF and SLGF2 over the IA and FA deployment models.
/// Thin wrapper over the "fig6-avg-hops" scenario;
/// SPR_NETWORKS/SPR_PAIRS/SPR_THREADS/SPR_FORMATS/SPR_JSON/SPR_CSV/SPR_SVG apply (see bench_common.h).

#include "core/scenario.h"

int main() {
  return spr::ScenarioSuite::builtin().run("fig6-avg-hops",
                                           spr::scenario_options_from_env());
}
