/// \file bench_fig6_avg_hops.cpp
/// Reproduces paper Fig. 6 (a)/(b): the average number of hops of a routing
/// path for GF, LGF, SLGF and SLGF2 over the IA and FA deployment models.
/// Averages are over delivered packets (delivery ratios are printed under
/// each panel).

#include <cstdio>

#include "bench_common.h"

int main() {
  std::printf("== Fig. 6: average number of hops of a GF, LGF, SLGF, SLGF2 "
              "routing ==\n\n");
  spr::bench::run_figure(
      "Fig. 6",
      [](const spr::RouteAggregate& agg) { return agg.hops.mean(); }, 2);
  return 0;
}
