/// \file bench_delivery.cpp
/// Auxiliary experiment (not a paper figure): delivery ratio of every
/// implemented scheme — the paper's four plus the greedy-only baselines
/// (MFR, Compass) and the flooding oracle — across the density sweep. This
/// contextualizes the figures: the paper's metrics are over delivered
/// packets, so the failure rates behind them matter.

#include <cstdio>

#include "bench_common.h"
#include "routing/baselines.h"

namespace {

using namespace spr;

struct Row {
  int n;
  double gf, lgf, slgf, slgf2, mfr, compass, flooding;
};

}  // namespace

int main() {
  using namespace spr;
  std::printf("== Delivery ratio per scheme (connected interior pairs) ==\n\n");
  int networks = env_int_or("SPR_NETWORKS", 30);
  int pairs = env_int_or("SPR_PAIRS", 15);
  ScenarioReport report;
  report.scenario = "bench-delivery";

  for (DeployModel model :
       {DeployModel::kIdeal, DeployModel::kForbiddenAreas}) {
    std::printf("%s model, %d networks x %d pairs per point\n",
                spr::bench::model_name(model), networks, pairs);
    Table table({"nodes", "GF", "LGF", "SLGF", "SLGF2", "MFR", "Compass",
                 "Flooding"});
    for (int n = 400; n <= 800; n += 100) {
      std::size_t delivered[7] = {0};
      std::size_t attempted = 0;
      for (int i = 0; i < networks; ++i) {
        NetworkConfig config;
        config.deployment.node_count = n;
        config.deployment.model = model;
        config.seed = static_cast<std::uint64_t>(777000 + n * 131 + i);
        Network net = Network::create(config);
        std::unique_ptr<Router> routers[7] = {
            net.make_router(Scheme::kGf), net.make_router(Scheme::kLgf),
            net.make_router(Scheme::kSlgf), net.make_router(Scheme::kSlgf2),
            std::make_unique<MfrRouter>(net.graph()),
            std::make_unique<CompassRouter>(net.graph()),
            std::make_unique<FloodingRouter>(net.graph())};
        Rng rng(config.seed ^ 0xd00d);
        for (int p = 0; p < pairs; ++p) {
          auto [s, d] = net.random_connected_interior_pair(rng);
          if (s == kInvalidNode) continue;
          ++attempted;
          for (int r = 0; r < 7; ++r) {
            if (routers[r]->route(s, d).delivered()) ++delivered[r];
          }
        }
      }
      std::vector<std::string> row{std::to_string(n)};
      for (int r = 0; r < 7; ++r) {
        row.push_back(Table::fmt(
            static_cast<double>(delivered[r]) / static_cast<double>(attempted),
            3));
      }
      table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
    report.add_table(std::move(table), spr::deploy_model_tag(model));
  }
  if (!spr::bench::export_csv_from_env(report)) return 1;
  std::printf("flooding = oracle (1.000 by construction on connected pairs);\n"
              "MFR/Compass are greedy-only and show the raw local-minimum\n"
              "rate that the recovery machinery must absorb.\n");
  return 0;
}
