/// \file bench_fig7_path_length.cpp
/// Reproduces paper Fig. 7 (a)/(b): the average length (meters) of the
/// entire routing path for GF, LGF, SLGF and SLGF2 over the IA and FA
/// deployment models. Thin wrapper over the "fig7-path-length" scenario;
/// SPR_NETWORKS/SPR_PAIRS/SPR_THREADS/SPR_FORMATS/SPR_JSON/SPR_CSV/SPR_SVG apply (see bench_common.h).

#include "core/scenario.h"

int main() {
  return spr::ScenarioSuite::builtin().run("fig7-path-length",
                                           spr::scenario_options_from_env());
}
