/// \file bench_fig7_path_length.cpp
/// Reproduces paper Fig. 7 (a)/(b): the average length (meters) of the
/// entire routing path for GF, LGF, SLGF and SLGF2 over the IA and FA
/// deployment models.

#include <cstdio>

#include "bench_common.h"

int main() {
  std::printf("== Fig. 7: average length of a GF, LGF, SLGF, SLGF2 routing "
              "==\n\n");
  spr::bench::run_figure(
      "Fig. 7",
      [](const spr::RouteAggregate& agg) { return agg.length.mean(); }, 1);
  return 0;
}
