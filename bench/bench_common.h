#pragma once

/// \file bench_common.h
/// Shared helpers for the auxiliary benches. The figure benches themselves
/// are thin wrappers over the ScenarioSuite (core/scenario.h); what lives
/// here is the sweep-config plumbing the non-figure benches reuse.
///
/// Environment overrides for quick passes:
///   SPR_NETWORKS  networks per point (default 100, the paper's count)
///   SPR_PAIRS     source/destination pairs per network (default 20)
///   SPR_SEED      base seed (default 2009)
///   SPR_THREADS   sweep worker threads (default 0 = hardware, 1 = serial)
///   SPR_FORMATS   report sinks for scenarios ("console,json,csv,svg")
///   SPR_JSON      when set, scenarios also write a JSON report there
///   SPR_CSV       when set, scenarios also export their tables as CSV there
///   SPR_SVG       when set, scenarios also write an SVG sweep plot there

#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"
#include "core/scenario.h"
#include "report/sink.h"
#include "stats/table.h"

namespace spr::bench {

inline SweepConfig figure_config(DeployModel model) {
  SweepConfig config;
  config.model = model;
  config.networks_per_point = env_int_or("SPR_NETWORKS", 100);
  config.pairs_per_network = env_int_or("SPR_PAIRS", 20);
  config.base_seed = static_cast<std::uint64_t>(env_int_or("SPR_SEED", 2009));
  config.threads = env_int_or("SPR_THREADS", 0);
  config.schemes = SweepConfig::paper_schemes();
  return config;
}

inline const char* model_name(DeployModel model) {
  return spr::model_name(model);
}

/// Exports a non-scenario bench's tables as CSV when SPR_CSV is set (the
/// scenario-backed benches get this via the sink selection in
/// ScenarioSuite::run). Returns false after printing when the write fails.
inline bool export_csv_from_env(const ScenarioReport& report) {
  const char* csv = std::getenv("SPR_CSV");
  if (csv == nullptr || *csv == '\0') return true;
  if (CsvSink(csv).emit(report)) return true;
  std::fprintf(stderr, "cannot write %s\n", csv);
  return false;
}

}  // namespace spr::bench
