#pragma once

/// \file bench_common.h
/// Shared driver for the figure benches: runs the paper's sweep (both
/// deployment models, n = 400..800 step 50, 100 networks x 20 pairs per
/// point by default) and prints one table per panel.
///
/// Environment overrides for quick passes:
///   SPR_NETWORKS  networks per point (default 100, the paper's count)
///   SPR_PAIRS     source/destination pairs per network (default 20)
///   SPR_SEED      base seed (default 2009)

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "stats/table.h"

namespace spr::bench {

/// Extracts the number a figure plots from one (scheme, point) aggregate.
using MetricFn = std::function<double(const RouteAggregate&)>;

inline SweepConfig figure_config(DeployModel model) {
  SweepConfig config;
  config.model = model;
  config.networks_per_point = env_int_or("SPR_NETWORKS", 100);
  config.pairs_per_network = env_int_or("SPR_PAIRS", 20);
  config.base_seed = static_cast<std::uint64_t>(env_int_or("SPR_SEED", 2009));
  config.schemes = SweepConfig::paper_schemes();
  return config;
}

inline const char* model_name(DeployModel model) {
  return model == DeployModel::kIdeal ? "IA (uniform)" : "FA (forbidden areas)";
}

/// Runs both panels of one figure and prints them.
inline void run_figure(const std::string& figure_title, const MetricFn& metric,
                       int decimals, const std::vector<SchemeSpec>* schemes_override = nullptr) {
  for (DeployModel model :
       {DeployModel::kIdeal, DeployModel::kForbiddenAreas}) {
    SweepConfig config = figure_config(model);
    if (schemes_override != nullptr) config.schemes = *schemes_override;
    std::printf("%s — %s model, %d networks x %d pairs per point\n",
                figure_title.c_str(), model_name(model),
                config.networks_per_point, config.pairs_per_network);
    auto points = run_sweep(config);

    std::vector<std::string> header{"nodes"};
    for (const auto& spec : config.schemes) header.push_back(spec.display_label());
    Table table(std::move(header));
    for (const auto& point : points) {
      std::vector<std::string> row{std::to_string(point.node_count)};
      for (const auto& spec : config.schemes) {
        const auto& agg = point.by_scheme.at(spec.display_label());
        row.push_back(Table::fmt(metric(agg), decimals));
      }
      table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    // Delivery context so failed routes are visible, not silently dropped.
    std::printf("delivery ratio per scheme (worst point):");
    for (const auto& spec : config.schemes) {
      double worst = 1.0;
      for (const auto& point : points) {
        worst = std::min(worst,
                         point.by_scheme.at(spec.display_label()).delivery_ratio());
      }
      std::printf("  %s>=%.2f", spec.display_label().c_str(), worst);
    }
    std::printf("\n\n");
  }
}

}  // namespace spr::bench
