#pragma once

/// \file bench_common.h
/// Shared helpers for the auxiliary benches. The figure benches themselves
/// are thin wrappers over the ScenarioSuite (core/scenario.h); what lives
/// here is the sweep-config plumbing the non-figure benches reuse.
///
/// Environment overrides for quick passes:
///   SPR_NETWORKS  networks per point (default 100, the paper's count)
///   SPR_PAIRS     source/destination pairs per network (default 20)
///   SPR_SEED      base seed (default 2009)
///   SPR_THREADS   sweep worker threads (default 0 = hardware, 1 = serial)
///   SPR_JSON      when set, scenarios also write a JSON report there

#include "core/experiment.h"
#include "core/scenario.h"
#include "stats/table.h"

namespace spr::bench {

inline SweepConfig figure_config(DeployModel model) {
  SweepConfig config;
  config.model = model;
  config.networks_per_point = env_int_or("SPR_NETWORKS", 100);
  config.pairs_per_network = env_int_or("SPR_PAIRS", 20);
  config.base_seed = static_cast<std::uint64_t>(env_int_or("SPR_SEED", 2009));
  config.threads = env_int_or("SPR_THREADS", 0);
  config.schemes = SweepConfig::paper_schemes();
  return config;
}

inline const char* model_name(DeployModel model) {
  return spr::model_name(model);
}

}  // namespace spr::bench
