#include "stats/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace spr {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return out.str();
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
          << (c < row.size() ? row[c] : "");
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  // RFC 4180: cells containing a comma, a double quote or a line break are
  // quoted; embedded quotes are doubled.
  auto emit_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n\r") == std::string::npos) {
      out << cell;
      return;
    }
    out << '"';
    for (char c : cell) {
      if (c == '"') out << '"';
      out << c;
    }
    out << '"';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      emit_cell(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace spr
