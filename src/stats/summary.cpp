#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace spr {

void Summary::add(double value) {
  values_.push_back(value);
  sum_ += value;
  double delta = value - mean_;
  mean_ += delta / static_cast<double>(values_.size());
  m2_ += delta * (value - mean_);
}

double Summary::min() const noexcept {
  return values_.empty() ? 0.0 : *std::min_element(values_.begin(), values_.end());
}

double Summary::max() const noexcept {
  return values_.empty() ? 0.0 : *std::max_element(values_.begin(), values_.end());
}

double Summary::variance() const noexcept {
  if (values_.size() < 2) return 0.0;
  return m2_ / static_cast<double>(values_.size() - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::percentile(double p) const {
  // Empty summaries answer 0.0 across the board (mean/min/max do), so an
  // aggregate with no samples — a scheme that delivered nothing at a high
  // failure fraction, say — renders as zeros instead of throwing mid-report.
  if (values_.empty()) return 0.0;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  double clamped = std::clamp(p, 0.0, 100.0);
  auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

double Summary::ci95_half_width() const noexcept {
  if (values_.size() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(values_.size()));
}

std::string Summary::to_string() const {
  std::ostringstream out;
  out << mean() << " ± " << ci95_half_width() << " (" << min() << ".." << max()
      << ", n=" << count() << ")";
  return out.str();
}

void Summary::merge(const Summary& other) {
  for (double v : other.values_) add(v);
}

}  // namespace spr
