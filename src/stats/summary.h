#pragma once

/// \file summary.h
/// Streaming statistics accumulator used by the experiment harness: mean,
/// variance (Welford), min/max, and exact percentiles on demand.

#include <cstddef>
#include <string>
#include <vector>

namespace spr {

/// Accumulates doubles; O(1) per insert for moments, values retained for
/// percentile queries.
class Summary {
 public:
  void add(double value);

  std::size_t count() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  /// Every statistic of an *empty* summary is 0.0 — mean, min, max,
  /// variance, percentiles and the CI alike — so empty aggregates (e.g. a
  /// scheme with zero delivered packets) render as zeros everywhere
  /// instead of some accessors throwing while others default.
  double mean() const noexcept { return mean_; }
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept { return sum_; }

  /// Sample variance / standard deviation (n-1 denominator); 0 for n < 2.
  double variance() const noexcept;
  double stddev() const noexcept;

  /// Exact percentile by nearest-rank on the sorted sample, p in [0, 100];
  /// 0.0 when empty (consistent with min()/max()).
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean; 0 for n < 2.
  double ci95_half_width() const noexcept;

  /// "mean ± ci (min..max, n=count)" for logs.
  std::string to_string() const;

  /// Merges another summary into this one.
  void merge(const Summary& other);

  /// The retained samples, in insertion order — what merge() replays and
  /// what the full JSON form (report/serialize.h) persists so a
  /// deserialized Summary reconstructs the accumulator bit-identically.
  const std::vector<double>& values() const noexcept { return values_; }

 private:
  std::vector<double> values_;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace spr
