#pragma once

/// \file table.h
/// Fixed-width console tables and CSV export. The figure benches print one
/// table per paper panel with these helpers.

#include <iosfwd>
#include <string>
#include <vector>

namespace spr {

/// A simple column-oriented table: a header row and string cells.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; pads/truncates to the header width.
  void add_row(std::vector<std::string> row);

  /// Number formatting helper: fixed-point with `digits` decimals.
  static std::string fmt(double value, int digits = 2);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with aligned columns and a separator under the header.
  std::string render() const;

  /// Renders CSV with RFC-4180 quoting (cells containing a comma, a double
  /// quote or a line break are quoted, embedded quotes doubled); rows end
  /// in LF, not the RFC's CRLF.
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spr
