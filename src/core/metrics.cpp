#include "core/metrics.h"

namespace spr {

void RouteAggregate::record(const PathResult& result,
                            const ShortestPath* oracle_hop,
                            const ShortestPath* oracle_len) {
  ++attempted;
  local_minima.add(static_cast<double>(result.local_minima));
  if (!result.delivered()) return;
  ++delivered;
  hops.add(static_cast<double>(result.hops()));
  length.add(result.length);
  perimeter_hops.add(static_cast<double>(result.perimeter_hops()));
  backup_hops.add(static_cast<double>(result.backup_hops()));
  if (oracle_hop != nullptr && oracle_hop->hops() > 0) {
    stretch_hops.add(static_cast<double>(result.hops()) /
                     static_cast<double>(oracle_hop->hops()));
  }
  if (oracle_len != nullptr && oracle_len->length > 0.0) {
    stretch_length.add(result.length / oracle_len->length);
  }
}

void RouteAggregate::merge(const RouteAggregate& other) {
  hops.merge(other.hops);
  length.merge(other.length);
  stretch_hops.merge(other.stretch_hops);
  stretch_length.merge(other.stretch_length);
  perimeter_hops.merge(other.perimeter_hops);
  backup_hops.merge(other.backup_hops);
  local_minima.merge(other.local_minima);
  requested += other.requested;
  attempted += other.attempted;
  delivered += other.delivered;
}

}  // namespace spr
