#include "core/experiment.h"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/task_pool.h"

namespace spr {

namespace {
/// SplitMix-style mixing of sweep coordinates into a network seed.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t a, std::uint64_t b,
                       std::uint64_t c) {
  std::uint64_t z = base ^ (a * 0x9E3779B97F4A7C15ULL) ^
                    (b * 0xBF58476D1CE4E5B9ULL) ^ (c * 0x94D049BB133111EBULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

const std::string& SchemeSpec::display_label() const {
  static const std::string kNames[] = {"GF", "GF/face", "LGF", "SLGF", "SLGF2"};
  if (!label.empty()) return label;
  switch (scheme) {
    case Scheme::kGf: return kNames[0];
    case Scheme::kGfFace: return kNames[1];
    case Scheme::kLgf: return kNames[2];
    case Scheme::kSlgf: return kNames[3];
    case Scheme::kSlgf2: return kNames[4];
  }
  return kNames[4];
}

std::vector<SchemeSpec> SweepConfig::paper_schemes() {
  return {{Scheme::kGf, {}, ""},
          {Scheme::kLgf, {}, ""},
          {Scheme::kSlgf, {}, ""},
          {Scheme::kSlgf2, {}, ""}};
}

std::uint64_t sweep_cell_seed(const SweepConfig& config, int node_count,
                              int net_index) {
  const auto model_tag =
      static_cast<std::uint64_t>(config.model == DeployModel::kIdeal ? 1 : 2);
  return mix_seed(config.base_seed, model_tag,
                  static_cast<std::uint64_t>(node_count),
                  static_cast<std::uint64_t>(net_index));
}

namespace {

/// One (node_count, network_index) cell's aggregates, keyed like SweepPoint.
using CellResult = std::map<std::string, RouteAggregate>;

/// Runs one independent sweep cell: draw the network, pick the pairs,
/// compute the oracles once, route every scheme over the same pairs.
CellResult run_cell(const SweepConfig& config, int n, int net_index) {
  CellResult cell;
  for (const auto& spec : config.schemes) {
    cell.emplace(spec.display_label(), RouteAggregate{});
  }

  NetworkConfig net_config;
  net_config.deployment = config.deployment_template;
  net_config.deployment.model = config.model;
  net_config.deployment.node_count = n;
  net_config.seed = sweep_cell_seed(config, n, net_index);
  Network network = Network::create(net_config);

  // Same pairs for every scheme: the comparison is paired.
  Rng pair_rng(mix_seed(net_config.seed, 7, 7, 7));
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(static_cast<size_t>(config.pairs_per_network));
  for (int p = 0; p < config.pairs_per_network; ++p) {
    auto pair = network.random_connected_interior_pair(pair_rng);
    if (pair.first != kInvalidNode) pairs.push_back(pair);
  }

  // Oracles once per pair, shared across schemes.
  std::vector<ShortestPath> oracle_hop, oracle_len;
  oracle_hop.reserve(pairs.size());
  oracle_len.reserve(pairs.size());
  for (auto [s, d] : pairs) {
    oracle_hop.push_back(bfs_path(network.graph(), s, d));
    oracle_len.push_back(dijkstra_path(network.graph(), s, d));
  }

  for (const auto& spec : config.schemes) {
    auto router = network.make_router(spec.scheme, spec.slgf2_options);
    RouteAggregate& agg = cell.at(spec.display_label());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      PathResult r = router->route(pairs[i].first, pairs[i].second,
                                   config.route_options);
      agg.record(r, &oracle_hop[i], &oracle_len[i]);
    }
  }
  return cell;
}

}  // namespace

std::vector<SweepPoint> run_sweep(const SweepConfig& config,
                                  const SweepProgress& progress) {
  // Flatten the sweep into independent (node_count, network_index) cells.
  struct Cell {
    std::size_t point_index;
    int node_count;
    int net_index;
  };
  std::vector<Cell> cells;
  cells.reserve(config.node_counts.size() *
                static_cast<std::size_t>(config.networks_per_point));
  for (std::size_t pi = 0; pi < config.node_counts.size(); ++pi) {
    for (int i = 0; i < config.networks_per_point; ++i) {
      cells.push_back({pi, config.node_counts[pi], i});
    }
  }

  std::vector<CellResult> results(cells.size());
  std::mutex progress_mutex;
  auto run_one = [&](std::size_t ci) {
    const Cell& cell = cells[ci];
    if (progress) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      progress(cell.node_count, cell.net_index, config.networks_per_point);
    }
    results[ci] = run_cell(config, cell.node_count, cell.net_index);
  };

  if (config.threads == 1) {
    for (std::size_t ci = 0; ci < cells.size(); ++ci) run_one(ci);
  } else {
    TaskPool pool(config.threads);
    pool.parallel_for(cells.size(), run_one);
  }

  // Merge per-cell aggregates in cell order. Summary::merge replays samples
  // in insertion order, so this reduction is bit-identical to the serial
  // accumulation regardless of which thread ran which cell.
  std::vector<SweepPoint> points(config.node_counts.size());
  for (std::size_t pi = 0; pi < config.node_counts.size(); ++pi) {
    points[pi].node_count = config.node_counts[pi];
    for (const auto& spec : config.schemes) {
      points[pi].by_scheme.emplace(spec.display_label(), RouteAggregate{});
    }
  }
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    SweepPoint& point = points[cells[ci].point_index];
    for (auto& [label, agg] : results[ci]) {
      point.by_scheme.at(label).merge(agg);
    }
  }
  return points;
}

int env_int_or(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  int value = 0;
  auto [ptr, ec] = std::from_chars(raw, raw + std::strlen(raw), value);
  if (ec != std::errc() || ptr != raw + std::strlen(raw)) return fallback;
  return value;
}

}  // namespace spr
