#include "core/experiment.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "graph/graph_algos.h"
#include "shard/sharded_network.h"
#include "util/arena.h"
#include "util/task_pool.h"

namespace spr {

namespace {
/// SplitMix-style mixing of sweep coordinates into a network seed.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t a, std::uint64_t b,
                       std::uint64_t c) {
  std::uint64_t z = base ^ (a * 0x9E3779B97F4A7C15ULL) ^
                    (b * 0xBF58476D1CE4E5B9ULL) ^ (c * 0x94D049BB133111EBULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

const std::string& SchemeSpec::display_label() const {
  static const std::string kNames[] = {"GF", "GF/face", "LGF", "SLGF", "SLGF2"};
  if (!label.empty()) return label;
  switch (scheme) {
    case Scheme::kGf: return kNames[0];
    case Scheme::kGfFace: return kNames[1];
    case Scheme::kLgf: return kNames[2];
    case Scheme::kSlgf: return kNames[3];
    case Scheme::kSlgf2: return kNames[4];
  }
  return kNames[4];
}

std::vector<SchemeSpec> SweepConfig::paper_schemes() {
  return {{Scheme::kGf, {}, ""},
          {Scheme::kLgf, {}, ""},
          {Scheme::kSlgf, {}, ""},
          {Scheme::kSlgf2, {}, ""}};
}

std::uint64_t sweep_cell_seed(const SweepConfig& config, int node_count,
                              int net_index) {
  const auto model_tag =
      static_cast<std::uint64_t>(config.model == DeployModel::kIdeal ? 1 : 2);
  return mix_seed(config.base_seed, model_tag,
                  static_cast<std::uint64_t>(node_count),
                  static_cast<std::uint64_t>(net_index));
}

namespace {

/// The exact pair drawing of cell (node_count, net_index), into any
/// vector-like output (heap or arena backed).
template <typename PairVec>
void draw_cell_pairs(const SweepConfig& config, const Network& network,
                     int node_count, int net_index, PairVec& out) {
  Rng pair_rng(
      mix_seed(sweep_cell_seed(config, node_count, net_index), 7, 7, 7));
  out.reserve(static_cast<size_t>(std::max(config.pairs_per_network, 0)));
  for (int p = 0; p < config.pairs_per_network; ++p) {
    auto pair = network.random_connected_interior_pair(pair_rng);
    if (pair.first != kInvalidNode) out.push_back(pair);
  }
}

/// Runs one independent sweep cell: draw the network, pick the pairs, run
/// the shared per-source oracle, batch-route every scheme over the same
/// pairs. `timings` (never null) receives this cell's cost breakdown.
CellResult run_cell(const SweepConfig& config, int n, int net_index,
                    SweepTimings* timings) {
  CellResult cell;
  for (const auto& spec : config.schemes) {
    cell.emplace(spec.display_label(), RouteAggregate{});
  }

  NetworkConfig net_config;
  net_config.deployment = config.deployment_template;
  net_config.deployment.model = config.model;
  net_config.deployment.node_count = n;
  net_config.seed = sweep_cell_seed(config, n, net_index);
  auto start = std::chrono::steady_clock::now();
  Network network = Network::create(net_config);
  if (config.tile_rows > 0 && config.tile_cols > 0) {
    // Spatial-tile execution path: label through the halo-synced sharded
    // fixpoint and adopt the (bit-identical, by the tile layer's
    // invariance contract) result, so force() below finds it built.
    ShardedNetwork::Config tile_config;
    tile_config.tile_rows = config.tile_rows;
    tile_config.tile_cols = config.tile_cols;
    ShardedNetwork sharded(network.graph(), net_config.edge_band,
                           tile_config);
    network.adopt_safety(sharded.safety());
  }
  // Force every structure the scheme set will touch, so the construction
  // bucket really holds construction (GF's recovery structures stay lazy by
  // design — if a packet gets stuck their build lands in the routing
  // bucket, which is exactly the cost model the paper argues about).
  unsigned needs = Network::kNeedsNone;
  for (const auto& spec : config.schemes) {
    needs |= Network::needs_for(spec.scheme);
  }
  network.force(needs);
  timings->construction_seconds += seconds_since(start);

  // Per-cell scratch — the pair buffer and the oracle's grouping arrays —
  // comes from a worker-local monotonic arena: reset per cell, high-water
  // block kept, so steady-state cells stop touching the general heap for
  // it. Allocation placement cannot change results; `config.cell_arena`
  // only exists so bench_micro can measure the before/after.
  thread_local Arena cell_scratch;
  const bool use_arena = config.cell_arena;
  if (use_arena) cell_scratch.reset();
  ArenaVector<std::pair<NodeId, NodeId>> arena_pairs{
      ArenaAllocator<std::pair<NodeId, NodeId>>(cell_scratch)};
  std::vector<std::pair<NodeId, NodeId>> heap_pairs;

  // Same pairs for every scheme: the comparison is paired.
  start = std::chrono::steady_clock::now();
  std::span<const std::pair<NodeId, NodeId>> pairs;
  if (use_arena) {
    draw_cell_pairs(config, network, n, net_index, arena_pairs);
    pairs = arena_pairs;
  } else {
    draw_cell_pairs(config, network, n, net_index, heap_pairs);
    pairs = heap_pairs;
  }
  timings->pair_draw_seconds += seconds_since(start);
  timings->pairs_requested += static_cast<std::uint64_t>(
      std::max(config.pairs_per_network, 0));
  timings->pairs_routed += pairs.size();

  // One BFS + one Dijkstra per distinct source, shared by every pair from
  // that source and every scheme.
  start = std::chrono::steady_clock::now();
  OracleBatch oracles(network.graph(), pairs,
                      use_arena ? &cell_scratch : nullptr);
  timings->oracle_seconds += seconds_since(start);
  timings->bfs_searches += oracles.distinct_sources();
  timings->dijkstra_searches += oracles.distinct_sources();

  start = std::chrono::steady_clock::now();
  for (const auto& spec : config.schemes) {
    auto router = network.make_router(spec.scheme, spec.slgf2_options);
    RouteAggregate& agg = cell.at(spec.display_label());
    agg.requested += static_cast<std::size_t>(
        std::max(config.pairs_per_network, 0));
    std::vector<PathResult> results =
        router->route_batch(pairs, config.route_options);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      agg.record(results[i], &oracles.hop_optimal(i),
                 &oracles.length_optimal(i));
    }
  }
  timings->routing_seconds += seconds_since(start);
  return cell;
}

}  // namespace

CellResult run_sweep_cell(const SweepConfig& config, int node_count,
                          int net_index, SweepTimings* timings) {
  SweepTimings scratch;
  return run_cell(config, node_count, net_index,
                  timings != nullptr ? timings : &scratch);
}

std::vector<SliceCell> run_sweep_slice(const SweepConfig& config,
                                       int slice_index, int slice_count,
                                       SweepTimings* timings) {
  std::vector<SliceCell> slice;
  if (slice_count < 1 || slice_index < 0 || slice_index >= slice_count) {
    return slice;
  }
  // Canonical cell enumeration, filtered by congruence class.
  std::size_t global_index = 0;
  for (int node_count : config.node_counts) {
    for (int i = 0; i < config.networks_per_point; ++i, ++global_index) {
      if (global_index % static_cast<std::size_t>(slice_count) !=
          static_cast<std::size_t>(slice_index)) {
        continue;
      }
      slice.push_back({node_count, i, {}});
    }
  }

  SweepTimings accumulated;
  std::mutex timings_mutex;
  auto run_one = [&](std::size_t ci) {
    SweepTimings cell_timings;
    slice[ci].result = run_cell(config, slice[ci].node_count,
                                slice[ci].net_index, &cell_timings);
    std::lock_guard<std::mutex> lock(timings_mutex);
    accumulated.merge(cell_timings);
  };
  if (config.threads == 1) {
    for (std::size_t ci = 0; ci < slice.size(); ++ci) run_one(ci);
  } else {
    TaskPool pool(config.threads);
    pool.parallel_for(slice.size(), run_one);
  }
  if (timings != nullptr) timings->merge(accumulated);
  return slice;
}

std::vector<SweepPoint> merge_cell_results(
    const std::vector<int>& node_counts,
    const std::vector<std::string>& scheme_labels,
    std::vector<SliceCell> cells) {
  // Point index of each node count; cells at unknown counts are dropped.
  auto point_of = [&](int node_count) -> std::size_t {
    for (std::size_t pi = 0; pi < node_counts.size(); ++pi) {
      if (node_counts[pi] == node_count) return pi;
    }
    return node_counts.size();
  };
  // run_sweep merges cells point-major in net_index order; replay that
  // order exactly so Summary::merge sees the same sample sequence.
  std::stable_sort(cells.begin(), cells.end(),
                   [&](const SliceCell& a, const SliceCell& b) {
                     std::size_t pa = point_of(a.node_count);
                     std::size_t pb = point_of(b.node_count);
                     if (pa != pb) return pa < pb;
                     return a.net_index < b.net_index;
                   });

  std::vector<SweepPoint> points(node_counts.size());
  for (std::size_t pi = 0; pi < node_counts.size(); ++pi) {
    points[pi].node_count = node_counts[pi];
    for (const auto& label : scheme_labels) {
      points[pi].by_scheme.emplace(label, RouteAggregate{});
    }
  }
  for (const auto& cell : cells) {
    std::size_t pi = point_of(cell.node_count);
    if (pi >= points.size()) continue;
    for (const auto& [label, agg] : cell.result) {
      auto it = points[pi].by_scheme.find(label);
      if (it != points[pi].by_scheme.end()) it->second.merge(agg);
    }
  }
  return points;
}

void SweepTimings::merge(const SweepTimings& other) {
  construction_seconds += other.construction_seconds;
  pair_draw_seconds += other.pair_draw_seconds;
  oracle_seconds += other.oracle_seconds;
  routing_seconds += other.routing_seconds;
  bfs_searches += other.bfs_searches;
  dijkstra_searches += other.dijkstra_searches;
  pairs_requested += other.pairs_requested;
  pairs_routed += other.pairs_routed;
}

std::vector<std::pair<NodeId, NodeId>> sweep_cell_pairs(
    const SweepConfig& config, const Network& network, int node_count,
    int net_index) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  draw_cell_pairs(config, network, node_count, net_index, pairs);
  return pairs;
}

std::vector<SweepPoint> run_sweep(const SweepConfig& config,
                                  const SweepProgress& progress,
                                  SweepTimings* timings) {
  // Flatten the sweep into independent (node_count, network_index) cells.
  struct Cell {
    std::size_t point_index;
    int node_count;
    int net_index;
  };
  std::vector<Cell> cells;
  cells.reserve(config.node_counts.size() *
                static_cast<std::size_t>(config.networks_per_point));
  for (std::size_t pi = 0; pi < config.node_counts.size(); ++pi) {
    for (int i = 0; i < config.networks_per_point; ++i) {
      cells.push_back({pi, config.node_counts[pi], i});
    }
  }

  std::vector<CellResult> results(cells.size());
  SweepTimings accumulated;
  std::mutex progress_mutex;
  std::mutex timings_mutex;
  auto run_one = [&](std::size_t ci) {
    const Cell& cell = cells[ci];
    if (progress) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      progress(cell.node_count, cell.net_index, config.networks_per_point);
    }
    SweepTimings cell_timings;
    results[ci] = run_cell(config, cell.node_count, cell.net_index,
                           &cell_timings);
    {
      std::lock_guard<std::mutex> lock(timings_mutex);
      accumulated.merge(cell_timings);
    }
  };

  if (config.threads == 1) {
    for (std::size_t ci = 0; ci < cells.size(); ++ci) run_one(ci);
  } else {
    TaskPool pool(config.threads);
    pool.parallel_for(cells.size(), run_one);
  }

  // Merge per-cell aggregates in cell order. Summary::merge replays samples
  // in insertion order, so this reduction is bit-identical to the serial
  // accumulation regardless of which thread ran which cell.
  std::vector<SweepPoint> points(config.node_counts.size());
  for (std::size_t pi = 0; pi < config.node_counts.size(); ++pi) {
    points[pi].node_count = config.node_counts[pi];
    for (const auto& spec : config.schemes) {
      points[pi].by_scheme.emplace(spec.display_label(), RouteAggregate{});
    }
  }
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    SweepPoint& point = points[cells[ci].point_index];
    for (auto& [label, agg] : results[ci]) {
      point.by_scheme.at(label).merge(agg);
    }
  }
  if (timings != nullptr) *timings = accumulated;
  return points;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int env_int_or(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  int value = 0;
  auto [ptr, ec] = std::from_chars(raw, raw + std::strlen(raw), value);
  if (ec != std::errc() || ptr != raw + std::strlen(raw)) return fallback;
  return value;
}

std::uint64_t env_uint64_or(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(raw, raw + std::strlen(raw), value);
  if (ec != std::errc() || ptr != raw + std::strlen(raw)) return fallback;
  return value;
}

}  // namespace spr
