#include "core/experiment.h"

#include <charconv>
#include <cstdlib>
#include <cstring>

namespace spr {

namespace {
/// SplitMix-style mixing of sweep coordinates into a network seed.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t a, std::uint64_t b,
                       std::uint64_t c) {
  std::uint64_t z = base ^ (a * 0x9E3779B97F4A7C15ULL) ^
                    (b * 0xBF58476D1CE4E5B9ULL) ^ (c * 0x94D049BB133111EBULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

const std::string& SchemeSpec::display_label() const {
  static const std::string kNames[] = {"GF", "GF/face", "LGF", "SLGF", "SLGF2"};
  if (!label.empty()) return label;
  switch (scheme) {
    case Scheme::kGf: return kNames[0];
    case Scheme::kGfFace: return kNames[1];
    case Scheme::kLgf: return kNames[2];
    case Scheme::kSlgf: return kNames[3];
    case Scheme::kSlgf2: return kNames[4];
  }
  return kNames[4];
}

std::vector<SchemeSpec> SweepConfig::paper_schemes() {
  return {{Scheme::kGf, {}, ""},
          {Scheme::kLgf, {}, ""},
          {Scheme::kSlgf, {}, ""},
          {Scheme::kSlgf2, {}, ""}};
}

std::vector<SweepPoint> run_sweep(const SweepConfig& config,
                                  const SweepProgress& progress) {
  std::vector<SweepPoint> points;
  points.reserve(config.node_counts.size());
  const auto model_tag =
      static_cast<std::uint64_t>(config.model == DeployModel::kIdeal ? 1 : 2);

  for (int n : config.node_counts) {
    SweepPoint point;
    point.node_count = n;
    for (const auto& spec : config.schemes) {
      point.by_scheme.emplace(spec.display_label(), RouteAggregate{});
    }

    for (int net_index = 0; net_index < config.networks_per_point; ++net_index) {
      if (progress) progress(n, net_index, config.networks_per_point);
      NetworkConfig net_config;
      net_config.deployment = config.deployment_template;
      net_config.deployment.model = config.model;
      net_config.deployment.node_count = n;
      net_config.seed = mix_seed(config.base_seed, model_tag,
                                 static_cast<std::uint64_t>(n),
                                 static_cast<std::uint64_t>(net_index));
      Network network = Network::create(net_config);

      // Same pairs for every scheme: the comparison is paired.
      Rng pair_rng(mix_seed(net_config.seed, 7, 7, 7));
      std::vector<std::pair<NodeId, NodeId>> pairs;
      pairs.reserve(static_cast<size_t>(config.pairs_per_network));
      for (int p = 0; p < config.pairs_per_network; ++p) {
        auto pair = network.random_connected_interior_pair(pair_rng);
        if (pair.first != kInvalidNode) pairs.push_back(pair);
      }

      // Oracles once per pair, shared across schemes.
      std::vector<ShortestPath> oracle_hop, oracle_len;
      oracle_hop.reserve(pairs.size());
      oracle_len.reserve(pairs.size());
      for (auto [s, d] : pairs) {
        oracle_hop.push_back(bfs_path(network.graph(), s, d));
        oracle_len.push_back(dijkstra_path(network.graph(), s, d));
      }

      for (const auto& spec : config.schemes) {
        auto router = network.make_router(spec.scheme, spec.slgf2_options);
        RouteAggregate& agg = point.by_scheme.at(spec.display_label());
        for (std::size_t i = 0; i < pairs.size(); ++i) {
          PathResult r = router->route(pairs[i].first, pairs[i].second,
                                       config.route_options);
          agg.record(r, &oracle_hop[i], &oracle_len[i]);
        }
      }
    }
    points.push_back(std::move(point));
  }
  return points;
}

int env_int_or(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  int value = 0;
  auto [ptr, ec] = std::from_chars(raw, raw + std::strlen(raw), value);
  if (ec != std::errc() || ptr != raw + std::strlen(raw)) return fallback;
  return value;
}

}  // namespace spr
