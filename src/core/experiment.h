#pragma once

/// \file experiment.h
/// The sweep runner behind every figure bench: vary the node count over the
/// paper's grid (400..800 step 50), draw `networks_per_point` random
/// networks per point, route `pairs_per_network` random connected interior
/// pairs with each scheme, and aggregate.
///
/// Seeding is hierarchical and deterministic: network i of point (model, n)
/// uses seed mix(base_seed, model, n, i), so every scheme routes the exact
/// same packets over the exact same networks — the comparison is paired, as
/// in the paper.
///
/// That same seeding makes every (node_count, network_index) cell fully
/// independent, so the sweep parallelizes across cells on a work-stealing
/// pool (`SweepConfig::threads`). Per-cell aggregates are merged in cell
/// order, and Summary::merge replays samples in insertion order — so the
/// parallel result is bit-identical to the serial one, thread count and
/// scheduling notwithstanding.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/network.h"

namespace spr {

/// One scheme entry in a sweep: a paper scheme plus (for SLGF2) options,
/// under a display label. Lets the ablation bench sweep SLGF2 variants.
struct SchemeSpec {
  Scheme scheme = Scheme::kSlgf2;
  Slgf2Options slgf2_options{};
  std::string label;  ///< defaults to scheme_name(scheme) when empty

  const std::string& display_label() const;
};

/// Sweep parameters. Defaults reproduce the paper's setup.
struct SweepConfig {
  DeployModel model = DeployModel::kIdeal;
  std::vector<int> node_counts = {400, 450, 500, 550, 600, 650, 700, 750, 800};
  int networks_per_point = 100;
  int pairs_per_network = 20;
  std::uint64_t base_seed = 2009;
  std::vector<SchemeSpec> schemes;
  RouteOptions route_options{};
  DeploymentConfig deployment_template{};  ///< field/range/FA knobs
  /// Worker threads for the sweep: 0 = hardware concurrency, 1 = serial on
  /// the calling thread (no pool), N = pool of N. Results are bit-identical
  /// for every value.
  int threads = 0;

  /// The paper's four schemes in figure order.
  static std::vector<SchemeSpec> paper_schemes();
};

/// Aggregates for one (node_count, scheme) cell.
struct SweepPoint {
  int node_count = 0;
  std::map<std::string, RouteAggregate> by_scheme;  ///< keyed by display label
};

/// Progress callback: (node_count, network_index, networks_total). Invoked
/// once per network cell under a mutex (never concurrently); with threads>1
/// the invocation order across cells is unspecified.
using SweepProgress = std::function<void(int, int, int)>;

/// Runs the sweep; one SweepPoint per node count, in order. Deterministic:
/// the result depends only on `config`, not on `config.threads` or timing.
std::vector<SweepPoint> run_sweep(const SweepConfig& config,
                                  const SweepProgress& progress = {});

/// The seed of network `net_index` at sweep point (model, node_count) —
/// exposed so scenarios and tests can reconstruct any cell's network.
std::uint64_t sweep_cell_seed(const SweepConfig& config, int node_count,
                              int net_index);

/// Reads an integer override from the environment (used by the benches so
/// `SPR_NETWORKS=5 ./bench_fig6_avg_hops` gives a quick pass); returns
/// `fallback` when unset or unparsable.
int env_int_or(const char* name, int fallback);

}  // namespace spr
