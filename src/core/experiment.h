#pragma once

/// \file experiment.h
/// The sweep runner behind every figure bench: vary the node count over the
/// paper's grid (400..800 step 50), draw `networks_per_point` random
/// networks per point, route `pairs_per_network` random connected interior
/// pairs with each scheme, and aggregate.
///
/// Seeding is hierarchical and deterministic: network i of point (model, n)
/// uses seed mix(base_seed, model, n, i), so every scheme routes the exact
/// same packets over the exact same networks — the comparison is paired, as
/// in the paper.
///
/// That same seeding makes every (node_count, network_index) cell fully
/// independent, so the sweep parallelizes across cells on a work-stealing
/// pool (`SweepConfig::threads`). Per-cell aggregates are merged in cell
/// order, and Summary::merge replays samples in insertion order — so the
/// parallel result is bit-identical to the serial one, thread count and
/// scheduling notwithstanding.

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.h"
#include "core/network.h"

namespace spr {

/// One scheme entry in a sweep: a paper scheme plus (for SLGF2) options,
/// under a display label. Lets the ablation bench sweep SLGF2 variants.
struct SchemeSpec {
  Scheme scheme = Scheme::kSlgf2;
  Slgf2Options slgf2_options{};
  std::string label;  ///< defaults to scheme_name(scheme) when empty

  const std::string& display_label() const;
};

/// Sweep parameters. Defaults reproduce the paper's setup.
struct SweepConfig {
  DeployModel model = DeployModel::kIdeal;
  std::vector<int> node_counts = {400, 450, 500, 550, 600, 650, 700, 750, 800};
  int networks_per_point = 100;
  int pairs_per_network = 20;
  std::uint64_t base_seed = 2009;
  std::vector<SchemeSpec> schemes;
  RouteOptions route_options{};
  DeploymentConfig deployment_template{};  ///< field/range/FA knobs
  /// Worker threads for the sweep: 0 = hardware concurrency, 1 = serial on
  /// the calling thread (no pool), N = pool of N. Results are bit-identical
  /// for every value.
  int threads = 0;
  /// Allocate per-cell scratch (the pair buffer, the oracle's grouping
  /// arrays) from a worker-local monotonic arena (util/arena.h) instead of
  /// the general heap. Results are identical either way; the knob exists
  /// for the bench_micro before/after datapoint.
  bool cell_arena = true;
  /// When both are positive, each cell's safety labeling is computed by a
  /// spatial-tile ShardedNetwork (shard/sharded_network.h) over a
  /// tile_rows x tile_cols grid and adopted into the cell's Network. The
  /// tile layer's shard-count-invariance contract makes the sweep results
  /// bit-identical to the monolithic path for every grid (tested), so this
  /// is purely an execution-strategy knob — `spr_cli sweep --tiles RxC`.
  int tile_rows = 0;
  int tile_cols = 0;

  /// The paper's four schemes in figure order.
  static std::vector<SchemeSpec> paper_schemes();
};

/// Aggregates for one (node_count, scheme) cell.
struct SweepPoint {
  int node_count = 0;
  std::map<std::string, RouteAggregate> by_scheme;  ///< keyed by display label
};

/// One (node_count, network_index) cell's aggregates, keyed like SweepPoint
/// (display label -> aggregate). The cell is the sweep's unit of
/// parallelism and — serialized (report/serialize.h) — its unit of
/// cross-process distribution.
using CellResult = std::map<std::string, RouteAggregate>;

/// A cell result tagged with its sweep coordinates, as carried by sweep
/// *slice* files (report/serialize.h) — a slice is a modular subset of a
/// sweep's cells for cross-process distribution, not to be confused with
/// the spatial tiles of shard/.
struct SliceCell {
  int node_count = 0;
  int net_index = 0;
  CellResult result;
};

/// Progress callback: (node_count, network_index, networks_total). Invoked
/// once per network cell under a mutex (never concurrently); with threads>1
/// the invocation order across cells is unspecified.
using SweepProgress = std::function<void(int, int, int)>;

/// Cost breakdown of a sweep, accumulated over all cells. The seconds are
/// wall-clock (timing-noisy, summed across workers); the counts are exact
/// and deterministic. One BFS and one Dijkstra run per *distinct source*
/// per cell — `bfs_searches` against `2 * pairs_routed` is the saving over
/// the per-pair oracle loop this pipeline replaced.
struct SweepTimings {
  double construction_seconds = 0.0;  ///< Network::create + forced structures
  double pair_draw_seconds = 0.0;     ///< connected-pair sampling (BFS probes)
  double oracle_seconds = 0.0;        ///< OracleBatch searches + extraction
  double routing_seconds = 0.0;       ///< route_batch over every scheme
  std::uint64_t bfs_searches = 0;     ///< oracle BFS trees (distinct sources)
  std::uint64_t dijkstra_searches = 0;
  std::uint64_t pairs_requested = 0;  ///< cells x pairs_per_network
  std::uint64_t pairs_routed = 0;     ///< pairs actually drawn and routed

  /// Accumulates another breakdown (the sweep's cell-order reduction).
  void merge(const SweepTimings& other);
};

/// Runs the sweep; one SweepPoint per node count, in order. Deterministic:
/// the result depends only on `config`, not on `config.threads` or timing.
/// `timings`, when non-null, receives the accumulated cost breakdown.
std::vector<SweepPoint> run_sweep(const SweepConfig& config,
                                  const SweepProgress& progress = {},
                                  SweepTimings* timings = nullptr);

/// Runs one independent sweep cell — exactly what run_sweep does for cell
/// (node_count, net_index). Exposed so slice runners and tests can compute
/// any cell out of process. `timings`, when non-null, accumulates the
/// cell's cost breakdown.
CellResult run_sweep_cell(const SweepConfig& config, int node_count,
                          int net_index, SweepTimings* timings = nullptr);

/// Runs the subset of the sweep's cells whose canonical index (point-major:
/// node_counts outer, net_index inner) is congruent to `slice_index` modulo
/// `slice_count`, in parallel per `config.threads`. The union of all slices
/// is exactly the cell set run_sweep computes.
std::vector<SliceCell> run_sweep_slice(const SweepConfig& config,
                                       int slice_index, int slice_count,
                                       SweepTimings* timings = nullptr);

/// Merges tagged cell results into sweep points, replaying run_sweep's
/// canonical cell-order reduction (node_counts outer, net_index inner) —
/// given every cell of a sweep, the result is bit-identical to running
/// run_sweep in process. Cells with a node_count not in `node_counts` are
/// ignored; every point starts with an empty aggregate per label in
/// `scheme_labels`.
std::vector<SweepPoint> merge_cell_results(
    const std::vector<int>& node_counts,
    const std::vector<std::string>& scheme_labels,
    std::vector<SliceCell> cells);

/// The (s, d) pairs cell (node_count, net_index) routes — the exact drawing
/// the sweep performs, exposed so scenarios and tests can reconstruct any
/// cell's traffic. `network` must be the cell's network (same seed). May
/// return fewer than `pairs_per_network` pairs when connected interior
/// pairs cannot be drawn; the shortfall is what RouteAggregate::requested
/// tracks.
std::vector<std::pair<NodeId, NodeId>> sweep_cell_pairs(
    const SweepConfig& config, const Network& network, int node_count,
    int net_index);

/// The seed of network `net_index` at sweep point (model, node_count) —
/// exposed so scenarios and tests can reconstruct any cell's network.
std::uint64_t sweep_cell_seed(const SweepConfig& config, int node_count,
                              int net_index);

/// Reads an integer override from the environment (used by the benches so
/// `SPR_NETWORKS=5 ./bench_fig6_avg_hops` gives a quick pass); returns
/// `fallback` when unset or unparsable.
int env_int_or(const char* name, int fallback);

/// env_int_or's 64-bit sibling for seeds: any valid uint64 is accepted;
/// malformed, negative or overflowing values return `fallback`.
std::uint64_t env_uint64_or(const char* name, std::uint64_t fallback);

/// Seconds elapsed since `start` — the wall-clock helper behind
/// SweepTimings and the scenario reports.
double seconds_since(std::chrono::steady_clock::time_point start);

}  // namespace spr
