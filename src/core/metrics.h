#pragma once

/// \file metrics.h
/// Aggregation of routing outcomes into the paper's evaluation metrics:
/// maximum hops (Fig. 5), average hops (Fig. 6), average path length
/// (Fig. 7), plus auxiliary delivery/stretch/phase statistics.

#include <cstddef>

#include "graph/graph_algos.h"
#include "routing/packet.h"
#include "stats/summary.h"

namespace spr {

/// Streaming aggregate over many routed packets of one scheme.
struct RouteAggregate {
  Summary hops;            ///< delivered packets only
  Summary length;          ///< delivered packets only, meters
  Summary stretch_hops;    ///< hops / BFS-optimal hops
  Summary stretch_length;  ///< length / Dijkstra-optimal length
  Summary perimeter_hops;  ///< per delivered packet
  Summary backup_hops;     ///< per delivered packet
  Summary local_minima;    ///< per attempted packet
  /// Packets the configuration asked for. Can exceed `attempted`: a sweep
  /// cell that fails to draw a connected interior pair routes fewer packets
  /// than configured, and that shortfall must be visible, not silent.
  std::size_t requested = 0;
  std::size_t attempted = 0;
  std::size_t delivered = 0;

  double max_hops() const noexcept { return hops.empty() ? 0.0 : hops.max(); }
  double delivery_ratio() const noexcept {
    return attempted == 0 ? 0.0
                          : static_cast<double>(delivered) /
                                static_cast<double>(attempted);
  }
  /// Requested-but-never-routed packets (0 when every configured pair was
  /// drawn successfully).
  std::size_t pair_shortfall() const noexcept {
    return requested > attempted ? requested - attempted : 0;
  }

  /// Records one packet. `oracle_hop` / `oracle_len` are the BFS/Dijkstra
  /// optima for the pair (pass nullptr to skip stretch).
  void record(const PathResult& result, const ShortestPath* oracle_hop,
              const ShortestPath* oracle_len);

  void merge(const RouteAggregate& other);
};

}  // namespace spr
