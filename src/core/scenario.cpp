#include "core/scenario.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "graph/graph_algos.h"
#include "mobility/waypoint.h"
#include "routing/gf.h"
#include "routing/lgf.h"
#include "routing/slgf.h"
#include "routing/slgf2.h"
#include "safety/incremental.h"
#include "stats/table.h"
#include "util/task_pool.h"

namespace spr {

namespace {

const char* model_tag(DeployModel model) {
  return model == DeployModel::kIdeal ? "IA" : "FA";
}

void summary_to_json(JsonWriter& w, const Summary& s) {
  w.begin_object();
  w.key("count").value(s.count());
  w.key("mean").value(s.mean());
  w.key("min").value(s.min());
  w.key("max").value(s.max());
  w.key("stddev").value(s.stddev());
  w.end_object();
}

void aggregate_to_json(JsonWriter& w, const RouteAggregate& agg) {
  w.begin_object();
  w.key("requested").value(agg.requested);
  w.key("attempted").value(agg.attempted);
  w.key("pair_shortfall").value(agg.pair_shortfall());
  w.key("delivered").value(agg.delivered);
  w.key("delivery_ratio").value(agg.delivery_ratio());
  w.key("hops");
  summary_to_json(w, agg.hops);
  w.key("length");
  summary_to_json(w, agg.length);
  w.key("stretch_hops");
  summary_to_json(w, agg.stretch_hops);
  w.key("stretch_length");
  summary_to_json(w, agg.stretch_length);
  w.key("perimeter_hops");
  summary_to_json(w, agg.perimeter_hops);
  w.key("backup_hops");
  summary_to_json(w, agg.backup_hops);
  w.key("local_minima");
  summary_to_json(w, agg.local_minima);
  w.end_object();
}

bool summaries_identical(const Summary& a, const Summary& b) {
  return a.count() == b.count() && a.sum() == b.sum() && a.mean() == b.mean() &&
         a.min() == b.min() && a.max() == b.max() &&
         a.variance() == b.variance();
}

bool aggregates_identical(const RouteAggregate& a, const RouteAggregate& b) {
  return a.requested == b.requested && a.attempted == b.attempted &&
         a.delivered == b.delivered &&
         summaries_identical(a.hops, b.hops) &&
         summaries_identical(a.length, b.length) &&
         summaries_identical(a.stretch_hops, b.stretch_hops) &&
         summaries_identical(a.stretch_length, b.stretch_length) &&
         summaries_identical(a.perimeter_hops, b.perimeter_hops) &&
         summaries_identical(a.backup_hops, b.backup_hops) &&
         summaries_identical(a.local_minima, b.local_minima);
}

/// The paper sweep config with scenario-option overrides applied.
SweepConfig figure_config(DeployModel model, const ScenarioOptions& opts) {
  SweepConfig config;
  config.model = model;
  config.networks_per_point = opts.networks > 0 ? opts.networks : 100;
  config.pairs_per_network = opts.pairs > 0 ? opts.pairs : 20;
  config.base_seed = opts.seed != 0 ? opts.seed : 2009;
  config.threads = opts.threads;
  config.schemes = SweepConfig::paper_schemes();
  return config;
}

/// Shared driver for the fig5/6/7 scenarios: runs both deployment models,
/// prints one table per panel, optionally writes one JSON report covering
/// both models.
int run_figure(const ScenarioOptions& opts, const std::string& scenario_name,
               const std::string& figure_title, const MetricFn& metric,
               int decimals) {
  JsonWriter json;
  json.begin_object();
  json.key("scenario").value(scenario_name);
  json.key("models").begin_array();

  for (DeployModel model :
       {DeployModel::kIdeal, DeployModel::kForbiddenAreas}) {
    SweepConfig config = figure_config(model, opts);
    std::printf("%s — %s model, %d networks x %d pairs per point\n",
                figure_title.c_str(), model_name(model),
                config.networks_per_point, config.pairs_per_network);
    auto start = std::chrono::steady_clock::now();
    auto points = run_sweep(config);
    double wall = seconds_since(start);

    std::vector<std::string> header{"nodes"};
    for (const auto& spec : config.schemes)
      header.push_back(spec.display_label());
    Table table(std::move(header));
    for (const auto& point : points) {
      std::vector<std::string> row{std::to_string(point.node_count)};
      for (const auto& spec : config.schemes) {
        const auto& agg = point.by_scheme.at(spec.display_label());
        row.push_back(Table::fmt(metric(agg), decimals));
      }
      table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    // Delivery context so failed routes are visible, not silently dropped.
    std::printf("delivery ratio per scheme (worst point):");
    for (const auto& spec : config.schemes) {
      double worst = 1.0;
      for (const auto& point : points) {
        worst = std::min(
            worst, point.by_scheme.at(spec.display_label()).delivery_ratio());
      }
      std::printf("  %s>=%.2f", spec.display_label().c_str(), worst);
    }
    std::printf("\n\n");

    sweep_points_to_json(json, config, points, wall);
  }
  json.end_array();
  json.end_object();
  if (!opts.json_path.empty() && !json.write_file(opts.json_path)) {
    std::fprintf(stderr, "cannot write %s\n", opts.json_path.c_str());
    return 1;
  }
  return 0;
}

int run_ablation(const ScenarioOptions& opts) {
  std::printf("== SLGF2 ablation: contribution of each mechanism (FA model) "
              "==\n\n");
  std::vector<SchemeSpec> schemes = {
      {Scheme::kSlgf, {}, "SLGF"},
      {Scheme::kSlgf2, {}, "SLGF2"},
      {Scheme::kSlgf2, {.use_either_hand = false}, "-eitherhand"},
      {Scheme::kSlgf2, {.use_backup_paths = false}, "-backup"},
      {Scheme::kSlgf2, {.limit_perimeter = false}, "-limitperim"},
  };

  SweepConfig config = figure_config(DeployModel::kForbiddenAreas, opts);
  if (opts.networks == 0) config.networks_per_point = 40;
  config.schemes = schemes;
  config.node_counts = {400, 600, 800};

  auto start = std::chrono::steady_clock::now();
  auto points = run_sweep(config);
  double wall = seconds_since(start);

  for (const char* metric :
       {"avg-hops", "avg-length", "perimeter-hops", "delivery"}) {
    std::printf("%s\n", metric);
    std::vector<std::string> header{"nodes"};
    for (const auto& s : schemes) header.push_back(s.display_label());
    Table table(std::move(header));
    for (const auto& point : points) {
      std::vector<std::string> row{std::to_string(point.node_count)};
      for (const auto& s : schemes) {
        const auto& agg = point.by_scheme.at(s.display_label());
        double value = 0.0;
        if (std::string(metric) == "avg-hops") value = agg.hops.mean();
        if (std::string(metric) == "avg-length") value = agg.length.mean();
        if (std::string(metric) == "perimeter-hops")
          value = agg.perimeter_hops.mean();
        if (std::string(metric) == "delivery") value = agg.delivery_ratio();
        row.push_back(Table::fmt(value, 2));
      }
      table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }

  if (!opts.json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.key("scenario").value("ablation");
    json.key("models").begin_array();
    sweep_points_to_json(json, config, points, wall);
    json.end_array();
    json.end_object();
    if (!json.write_file(opts.json_path)) {
      std::fprintf(stderr, "cannot write %s\n", opts.json_path.c_str());
      return 1;
    }
  }
  return 0;
}

/// Hole-field study: the FA regime the safety model targets — how much of
/// the network is labeled unsafe and what that buys each scheme.
int run_hole_field(const ScenarioOptions& opts) {
  std::printf("== Hole field: unsafe labeling share and per-scheme delivery "
              "(FA model) ==\n\n");
  SweepConfig config = figure_config(DeployModel::kForbiddenAreas, opts);
  if (opts.networks == 0) config.networks_per_point = 20;
  config.node_counts = {500, 600, 700};

  auto start = std::chrono::steady_clock::now();
  auto points = run_sweep(config);
  double wall = seconds_since(start);

  // Unsafe-node share, sampled over this sweep's own networks (the sweep
  // itself never builds the labeling for GF/LGF — that's the point of the
  // lazy Network — so sample it here explicitly). These builds run on the
  // main thread, so the adjacency and labeling fan out within each network.
  TaskPool build_pool(opts.threads);
  Table table({"nodes", "unsafe%", "GF deliv", "LGF deliv", "SLGF deliv",
               "SLGF2 deliv", "SLGF2 perim"});
  std::vector<double> unsafe_shares;
  for (const auto& point : points) {
    double unsafe_sum = 0.0;
    int sampled = std::min(config.networks_per_point, 5);
    for (int i = 0; i < sampled; ++i) {
      NetworkConfig nc;
      nc.deployment = config.deployment_template;
      nc.deployment.model = config.model;
      nc.deployment.node_count = point.node_count;
      nc.seed = sweep_cell_seed(config, point.node_count, i);
      nc.build_pool = &build_pool;
      Network net = Network::create(nc);
      unsafe_sum += static_cast<double>(net.safety().unsafe_node_count()) /
                    static_cast<double>(net.graph().size());
    }
    double unsafe_share = unsafe_sum / sampled;
    unsafe_shares.push_back(unsafe_share);
    table.add_row(
        {std::to_string(point.node_count),
         Table::fmt(100.0 * unsafe_share, 1),
         Table::fmt(point.by_scheme.at("GF").delivery_ratio()),
         Table::fmt(point.by_scheme.at("LGF").delivery_ratio()),
         Table::fmt(point.by_scheme.at("SLGF").delivery_ratio()),
         Table::fmt(point.by_scheme.at("SLGF2").delivery_ratio()),
         Table::fmt(point.by_scheme.at("SLGF2").perimeter_hops.mean())});
  }
  std::fputs(table.render().c_str(), stdout);

  if (!opts.json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.key("scenario").value("hole-field");
    json.key("unsafe_share").begin_array();
    for (double s : unsafe_shares) json.value(s);
    json.end_array();
    json.key("models").begin_array();
    sweep_points_to_json(json, config, points, wall);
    json.end_array();
    json.end_object();
    if (!json.write_file(opts.json_path)) {
      std::fprintf(stderr, "cannot write %s\n", opts.json_path.c_str());
      return 1;
    }
  }
  return 0;
}

/// Failure dynamics: kill a disc of nodes between a routable pair, update
/// the labeling incrementally, and compare each scheme before/after.
int run_failure_dynamics(const ScenarioOptions& opts) {
  int trials = opts.networks > 0 ? opts.networks : 10;
  std::uint64_t base_seed = opts.seed != 0 ? opts.seed : 3;
  const int nodes = 700;
  const double blast = 35.0;
  std::printf("== Failure dynamics: %d trials, %d nodes, %.0fm blast ==\n\n",
              trials, nodes, blast);

  const Scheme schemes[] = {Scheme::kGf, Scheme::kLgf, Scheme::kSlgf,
                            Scheme::kSlgf2};
  std::size_t delivered_before[4] = {0}, delivered_after[4] = {0};
  Summary flips, incremental_reevals;
  int connected_trials = 0;

  // Single-network trials on the main thread: build-parallelize within
  // each network (adjacency + labeling init fan out; results identical).
  TaskPool build_pool(opts.threads);
  for (int trial = 0; trial < trials; ++trial) {
    NetworkConfig config;
    config.deployment.node_count = nodes;
    config.seed = base_seed + static_cast<std::uint64_t>(trial);
    config.build_pool = &build_pool;
    Network before = Network::create(config);

    Rng rng(config.seed ^ 0xdead);
    auto [s, d] = before.random_connected_interior_pair(rng);
    if (s == kInvalidNode) continue;
    Vec2 mid =
        midpoint(before.graph().position(s), before.graph().position(d));
    std::vector<NodeId> casualties;
    for (NodeId u = 0; u < before.graph().size(); ++u) {
      if (u == s || u == d) continue;
      if (distance(before.graph().position(u), mid) <= blast) {
        casualties.push_back(u);
      }
    }

    // Shares the original graph's spatial grid — no re-bucketing.
    UnitDiskGraph dead_graph =
        before.graph().with_failures(casualties, &build_pool);
    if (!connected(dead_graph, s, d)) continue;
    ++connected_trials;

    InterestArea degraded_area(dead_graph, dead_graph.range());
    SafetyInfo degraded_info = before.safety();
    auto inc_stats = update_safety_after_failures(dead_graph, degraded_area,
                                                  casualties, degraded_info);
    flips.add(static_cast<double>(inc_stats.flips));
    incremental_reevals.add(static_cast<double>(inc_stats.reevaluations));

    PlanarOverlay degraded_overlay(dead_graph, PlanarOverlay::Kind::kGabriel);
    BoundHoleInfo degraded_boundhole(dead_graph);
    for (int k = 0; k < 4; ++k) {
      auto router_before = before.make_router(schemes[k]);
      if (router_before->route(s, d).delivered()) ++delivered_before[k];
      std::unique_ptr<Router> router_after;
      switch (schemes[k]) {
        case Scheme::kGf:
          router_after = std::make_unique<GfRouter>(
              dead_graph, degraded_overlay, &degraded_boundhole,
              GfRouter::Recovery::kBoundHole);
          break;
        case Scheme::kLgf:
          router_after = std::make_unique<LgfRouter>(dead_graph);
          break;
        case Scheme::kSlgf:
          router_after = std::make_unique<SlgfRouter>(dead_graph, degraded_info);
          break;
        default:
          router_after =
              std::make_unique<Slgf2Router>(dead_graph, degraded_info);
      }
      if (router_after->route(s, d).delivered()) ++delivered_after[k];
    }
  }

  Table table({"scheme", "delivered before", "delivered after"});
  for (int k = 0; k < 4; ++k) {
    table.add_row({scheme_name(schemes[k]),
                   std::to_string(delivered_before[k]) + "/" +
                       std::to_string(connected_trials),
                   std::to_string(delivered_after[k]) + "/" +
                       std::to_string(connected_trials)});
  }
  std::fputs(table.render().c_str(), stdout);
  if (!flips.empty()) {
    std::printf("incremental relabeling: %.1f flips, %.1f re-evaluations per "
                "failure (mean over %zu trials)\n",
                flips.mean(), incremental_reevals.mean(), flips.count());
  }

  if (!opts.json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.key("scenario").value("failure-dynamics");
    json.key("trials").value(trials);
    json.key("connected_trials").value(connected_trials);
    json.key("schemes").begin_array();
    for (int k = 0; k < 4; ++k) {
      json.begin_object();
      json.key("scheme").value(scheme_name(schemes[k]));
      json.key("delivered_before").value(delivered_before[k]);
      json.key("delivered_after").value(delivered_after[k]);
      json.end_object();
    }
    json.end_array();
    json.key("relabel_flips");
    summary_to_json(json, flips);
    json.end_object();
    if (!json.write_file(opts.json_path)) {
      std::fprintf(stderr, "cannot write %s\n", opts.json_path.c_str());
      return 1;
    }
  }
  return 0;
}

/// Mobile stream: a long-lived SLGF2 stream between fixed endpoints while
/// every other node follows a random-waypoint process.
int run_mobile_stream(const ScenarioOptions& opts) {
  int epochs = opts.networks > 0 ? opts.networks : 8;
  std::uint64_t seed = opts.seed != 0 ? opts.seed : 9;
  const double dt = 20.0;
  DeploymentConfig dc;
  dc.node_count = 600;
  std::printf("== Mobile stream: %d epochs, %d nodes, dt=%.0fs ==\n\n", epochs,
              dc.node_count, dt);

  Rng deploy_rng(seed);
  Deployment d = deploy(dc, deploy_rng);
  WaypointConfig wc;
  wc.field = dc.field;
  WaypointModel model(d.positions, wc, Rng(seed ^ 0x11));

  // Fixed endpoints: a far routable pair of the first snapshot.
  UnitDiskGraph g0(model.positions(), dc.radio_range, dc.field);
  InterestArea area0(g0, dc.radio_range);
  const auto& interior = area0.interior_nodes();
  if (interior.size() < 2) {
    std::printf("network too small for interior endpoints\n");
    return 1;
  }
  Rng pick_rng(seed ^ 0x22);
  NodeId src = kInvalidNode, dst = kInvalidNode;
  double best = -1.0;
  for (int trial = 0; trial < 64; ++trial) {
    NodeId a = interior[pick_rng.next_below(interior.size())];
    NodeId b = interior[pick_rng.next_below(interior.size())];
    if (a == b || !connected(g0, a, b)) continue;
    double dist = distance(g0.position(a), g0.position(b));
    if (dist > best) {
      best = dist;
      src = a;
      dst = b;
    }
  }
  if (src == kInvalidNode) {
    std::printf("no routable pair in the first snapshot\n");
    return 1;
  }

  Table table({"epoch", "time", "links", "delivered", "hops", "unsafe"});
  int delivered_epochs = 0;
  Summary hop_counts;
  TaskPool build_pool(opts.threads);  // per-epoch rebuilds fan out within
  for (int epoch = 0; epoch < epochs; ++epoch) {
    // Rebuild the snapshot; positions changed, so every derived structure
    // re-constitutes (the paper's argument for cheap construction).
    UnitDiskGraph g(model.positions(), dc.radio_range, dc.field, &build_pool);
    InterestArea area(g, dc.radio_range);
    SafetyInfo info = compute_safety(g, area, &build_pool);
    Slgf2Router router(g, info);
    PathResult r = router.route(src, dst);
    if (r.delivered()) {
      ++delivered_epochs;
      hop_counts.add(static_cast<double>(r.hops()));
    }
    table.add_row({std::to_string(epoch), Table::fmt(model.now(), 0),
                   std::to_string(g.edge_count()),
                   r.delivered() ? "yes" : "NO",
                   std::to_string(r.hops()),
                   std::to_string(info.unsafe_node_count())});
    model.advance(dt);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("delivered %d/%d epochs, mean hops %.1f\n", delivered_epochs,
              epochs, hop_counts.empty() ? 0.0 : hop_counts.mean());

  if (!opts.json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.key("scenario").value("mobile-stream");
    json.key("epochs").value(epochs);
    json.key("delivered_epochs").value(delivered_epochs);
    json.key("hops");
    summary_to_json(json, hop_counts);
    json.end_object();
    if (!json.write_file(opts.json_path)) {
      std::fprintf(stderr, "cannot write %s\n", opts.json_path.c_str());
      return 1;
    }
  }
  return 0;
}

/// Serializes one run's SweepTimings breakdown (object under the current
/// writer position).
void timings_to_json(JsonWriter& w, const SweepTimings& t) {
  w.begin_object();
  w.key("construction_seconds").value(t.construction_seconds);
  w.key("pair_draw_seconds").value(t.pair_draw_seconds);
  w.key("oracle_seconds").value(t.oracle_seconds);
  w.key("routing_seconds").value(t.routing_seconds);
  w.key("oracle_bfs_searches").value(t.bfs_searches);
  w.key("oracle_dijkstra_searches").value(t.dijkstra_searches);
  w.key("pairs_requested").value(t.pairs_requested);
  w.key("pairs_routed").value(t.pairs_routed);
  w.end_object();
}

/// Parallel-sweep scaling: the same sweep serial and parallel, verifying
/// bit-identical aggregates and reporting the wall-clock ratio plus the
/// construction / oracle / routing breakdown and the per-source oracle
/// saving over the per-pair search loop.
int run_sweep_scaling(const ScenarioOptions& opts) {
  SweepConfig config = figure_config(DeployModel::kIdeal, opts);
  if (opts.networks == 0) config.networks_per_point = 8;
  if (opts.pairs == 0) config.pairs_per_network = 6;
  config.node_counts = {400, 600, 800};
  int hardware = TaskPool::hardware_threads();
  int parallel_threads = opts.threads > 1 ? opts.threads : hardware;
  std::printf("== Sweep scaling: %zu points x %d networks x %d pairs, "
              "%d hardware threads ==\n\n",
              config.node_counts.size(), config.networks_per_point,
              config.pairs_per_network, hardware);

  config.threads = 1;
  auto start = std::chrono::steady_clock::now();
  SweepTimings serial_timings;
  auto serial = run_sweep(config, {}, &serial_timings);
  double serial_seconds = seconds_since(start);

  config.threads = parallel_threads;
  start = std::chrono::steady_clock::now();
  SweepTimings parallel_timings;
  auto parallel = run_sweep(config, {}, &parallel_timings);
  double parallel_seconds = seconds_since(start);

  bool identical = sweep_results_identical(serial, parallel);
  double speedup =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  std::printf("serial (threads=1):   %.2fs\n", serial_seconds);
  std::printf("parallel (threads=%d): %.2fs\n", parallel_threads,
              parallel_seconds);
  std::printf("speedup: %.2fx, aggregates bit-identical: %s\n", speedup,
              identical ? "yes" : "NO");
  // Cost breakdown (serial run: the parallel one sums worker wall-clocks).
  std::printf("serial breakdown: construction %.2fs, pair draw %.2fs, "
              "oracle %.2fs, routing %.2fs\n",
              serial_timings.construction_seconds,
              serial_timings.pair_draw_seconds,
              serial_timings.oracle_seconds, serial_timings.routing_seconds);
  std::uint64_t per_pair_searches = 2 * serial_timings.pairs_routed;
  std::uint64_t shared_searches =
      serial_timings.bfs_searches + serial_timings.dijkstra_searches;
  std::printf("oracle searches: %llu (vs %llu per-pair) for %llu pairs — "
              "one BFS + one Dijkstra per distinct source\n",
              static_cast<unsigned long long>(shared_searches),
              static_cast<unsigned long long>(per_pair_searches),
              static_cast<unsigned long long>(serial_timings.pairs_routed));
  if (serial_timings.pairs_routed < serial_timings.pairs_requested) {
    std::printf("pair shortfall: %llu of %llu requested pairs not drawn\n",
                static_cast<unsigned long long>(
                    serial_timings.pairs_requested -
                    serial_timings.pairs_routed),
                static_cast<unsigned long long>(
                    serial_timings.pairs_requested));
  }

  if (!opts.json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.key("scenario").value("sweep-scaling");
    json.key("hardware_threads").value(hardware);
    json.key("parallel_threads").value(parallel_threads);
    json.key("serial_seconds").value(serial_seconds);
    json.key("parallel_seconds").value(parallel_seconds);
    json.key("speedup").value(speedup);
    json.key("bit_identical").value(identical);
    json.key("serial_timings");
    timings_to_json(json, serial_timings);
    json.key("parallel_timings");
    timings_to_json(json, parallel_timings);
    json.key("models").begin_array();
    sweep_points_to_json(json, config, parallel, parallel_seconds);
    json.end_array();
    json.end_object();
    if (!json.write_file(opts.json_path)) {
      std::fprintf(stderr, "cannot write %s\n", opts.json_path.c_str());
      return 1;
    }
  }
  return identical ? 0 : 1;
}

}  // namespace

const char* model_name(DeployModel model) noexcept {
  return model == DeployModel::kIdeal ? "IA (uniform)" : "FA (forbidden areas)";
}

ScenarioOptions scenario_options_from_env() {
  ScenarioOptions opts;
  opts.networks = env_int_or("SPR_NETWORKS", 0);
  opts.pairs = env_int_or("SPR_PAIRS", 0);
  opts.seed = static_cast<std::uint64_t>(env_int_or("SPR_SEED", 0));
  opts.threads = env_int_or("SPR_THREADS", 0);
  if (const char* path = std::getenv("SPR_JSON"); path != nullptr && *path) {
    opts.json_path = path;
  }
  return opts;
}

void ScenarioSuite::add(Scenario scenario) {
  scenarios_.push_back(std::move(scenario));
}

const Scenario* ScenarioSuite::find(std::string_view name) const noexcept {
  for (const auto& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

int ScenarioSuite::run(std::string_view name,
                       const ScenarioOptions& options) const {
  const Scenario* scenario = find(name);
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%.*s'; available:\n",
                 static_cast<int>(name.size()), name.data());
    for (const auto& s : scenarios_) {
      std::fprintf(stderr, "  %-18s %s\n", s.name.c_str(),
                   s.description.c_str());
    }
    return 2;
  }
  return scenario->run(options);
}

ScenarioSuite& ScenarioSuite::builtin() {
  static ScenarioSuite suite = [] {
    ScenarioSuite s;
    s.add({"fig5-max-hops",
           "paper Fig. 5: maximum hops per scheme, IA + FA models",
           [](const ScenarioOptions& o) {
             std::printf("== Fig. 5: maximum number of hops of a GF, LGF, "
                         "SLGF, SLGF2 routing ==\n\n");
             return run_figure(
                 o, "fig5-max-hops", "Fig. 5",
                 [](const RouteAggregate& agg) { return agg.max_hops(); }, 0);
           }});
    s.add({"fig6-avg-hops",
           "paper Fig. 6: average hops per scheme, IA + FA models",
           [](const ScenarioOptions& o) {
             std::printf("== Fig. 6: average number of hops of a GF, LGF, "
                         "SLGF, SLGF2 routing ==\n\n");
             return run_figure(
                 o, "fig6-avg-hops", "Fig. 6",
                 [](const RouteAggregate& agg) { return agg.hops.mean(); }, 2);
           }});
    s.add({"fig7-path-length",
           "paper Fig. 7: average path length per scheme, IA + FA models",
           [](const ScenarioOptions& o) {
             std::printf("== Fig. 7: average length of a GF, LGF, SLGF, SLGF2 "
                         "routing ==\n\n");
             return run_figure(
                 o, "fig7-path-length", "Fig. 7",
                 [](const RouteAggregate& agg) { return agg.length.mean(); },
                 1);
           }});
    s.add({"ablation", "SLGF2 mechanism ablation (FA model)", run_ablation});
    s.add({"hole-field",
           "unsafe-labeling share and per-scheme delivery on large holes",
           run_hole_field});
    s.add({"failure-dynamics",
           "node-failure blast: incremental relabeling + delivery before/after",
           run_failure_dynamics});
    s.add({"mobile-stream",
           "SLGF2 stream across random-waypoint mobility epochs",
           run_mobile_stream});
    s.add({"sweep-scaling",
           "parallel vs serial sweep: wall-clock ratio + bit-identical check",
           run_sweep_scaling});
    return s;
  }();
  return suite;
}

void sweep_points_to_json(JsonWriter& w, const SweepConfig& config,
                          const std::vector<SweepPoint>& points,
                          double wall_seconds) {
  w.begin_object();
  w.key("model").value(model_tag(config.model));
  w.key("networks_per_point").value(config.networks_per_point);
  w.key("pairs_per_network").value(config.pairs_per_network);
  w.key("base_seed").value(static_cast<std::uint64_t>(config.base_seed));
  w.key("threads").value(config.threads);
  w.key("wall_seconds").value(wall_seconds);
  w.key("points").begin_array();
  for (const auto& point : points) {
    w.begin_object();
    w.key("nodes").value(point.node_count);
    w.key("schemes").begin_object();
    for (const auto& [label, agg] : point.by_scheme) {
      w.key(label);
      aggregate_to_json(w, agg);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

bool sweep_results_identical(const std::vector<SweepPoint>& a,
                             const std::vector<SweepPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].node_count != b[i].node_count) return false;
    if (a[i].by_scheme.size() != b[i].by_scheme.size()) return false;
    for (const auto& [label, agg] : a[i].by_scheme) {
      auto it = b[i].by_scheme.find(label);
      if (it == b[i].by_scheme.end()) return false;
      if (!aggregates_identical(agg, it->second)) return false;
    }
  }
  return true;
}

}  // namespace spr
