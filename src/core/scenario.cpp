#include "core/scenario.h"
// spr-analyze-file: allow(determinism-taint) timing scenarios report
// wall-clock curves (seconds, speedup, hardware threads) by design; the
// determinism contract covers statuses/anchors/aggregates, which the
// bit_identical gates in this file verify on every run.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "graph/graph_algos.h"
#include "mobility/waypoint.h"
#include "report/serialize.h"
#include "sim/stream_sim.h"
#include "routing/gf.h"
#include "routing/lgf.h"
#include "routing/slgf.h"
#include "routing/slgf2.h"
#include "safety/incremental.h"
#include "shard/sharded_network.h"
#include "stats/table.h"
#include "util/suggest.h"
#include "util/task_pool.h"

namespace spr {

namespace {

bool summaries_identical(const Summary& a, const Summary& b) {
  return a.count() == b.count() && a.sum() == b.sum() && a.mean() == b.mean() &&
         a.min() == b.min() && a.max() == b.max() &&
         a.variance() == b.variance();
}

bool aggregates_identical(const RouteAggregate& a, const RouteAggregate& b) {
  return a.requested == b.requested && a.attempted == b.attempted &&
         a.delivered == b.delivered &&
         summaries_identical(a.hops, b.hops) &&
         summaries_identical(a.length, b.length) &&
         summaries_identical(a.stretch_hops, b.stretch_hops) &&
         summaries_identical(a.stretch_length, b.stretch_length) &&
         summaries_identical(a.perimeter_hops, b.perimeter_hops) &&
         summaries_identical(a.backup_hops, b.backup_hops) &&
         summaries_identical(a.local_minima, b.local_minima);
}

/// The paper sweep config with scenario-option overrides applied.
SweepConfig figure_config(DeployModel model, const ScenarioOptions& opts) {
  SweepConfig config;
  config.model = model;
  config.networks_per_point = opts.networks > 0 ? opts.networks : 100;
  config.pairs_per_network = opts.pairs > 0 ? opts.pairs : 20;
  config.base_seed = opts.seed != 0 ? opts.seed : 2009;
  config.threads = opts.threads;
  config.schemes = SweepConfig::paper_schemes();
  return config;
}

/// The per-scheme metric series of one sweep, as a plot curve.
ReportCurve metric_curve(std::string title, const std::string& y_label,
                         const SweepConfig& config,
                         const std::vector<SweepPoint>& points,
                         const MetricFn& metric) {
  ReportCurve curve;
  curve.title = std::move(title);
  curve.x_label = "nodes";
  curve.y_label = y_label;
  for (const auto& spec : config.schemes) {
    ReportSeries series;
    series.label = spec.display_label();
    for (const auto& point : points) {
      series.points.emplace_back(
          static_cast<double>(point.node_count),
          metric(point.by_scheme.at(spec.display_label())));
    }
    curve.series.push_back(std::move(series));
  }
  return curve;
}

/// Shared driver for the fig5/6/7 scenarios: runs both deployment models,
/// records one table (and one plot curve) per panel and one sweep section
/// per model.
int run_figure(const ScenarioOptions& opts, const std::string& figure_title,
               const std::string& metric_label, const MetricFn& metric,
               int decimals, ScenarioReport& report) {
  for (DeployModel model :
       {DeployModel::kIdeal, DeployModel::kForbiddenAreas}) {
    SweepConfig config = figure_config(model, opts);
    report.textf("%s — %s model, %d networks x %d pairs per point\n",
                 figure_title.c_str(), model_name(model),
                 config.networks_per_point, config.pairs_per_network);
    auto start = std::chrono::steady_clock::now();
    auto points = run_sweep(config);
    double wall = seconds_since(start);

    std::vector<std::string> header{"nodes"};
    for (const auto& spec : config.schemes)
      header.push_back(spec.display_label());
    Table table(std::move(header));
    for (const auto& point : points) {
      std::vector<std::string> row{std::to_string(point.node_count)};
      for (const auto& spec : config.schemes) {
        const auto& agg = point.by_scheme.at(spec.display_label());
        row.push_back(Table::fmt(metric(agg), decimals));
      }
      table.add_row(std::move(row));
    }
    report.add_table(std::move(table), deploy_model_tag(model));
    // Delivery context so failed routes are visible, not silently dropped.
    std::string delivery = "delivery ratio per scheme (worst point):";
    for (const auto& spec : config.schemes) {
      double worst = 1.0;
      for (const auto& point : points) {
        worst = std::min(
            worst, point.by_scheme.at(spec.display_label()).delivery_ratio());
      }
      char buf[96];
      std::snprintf(buf, sizeof(buf), "  %s>=%.2f",
                    spec.display_label().c_str(), worst);
      delivery += buf;
    }
    report.note(std::move(delivery));
    report.text("\n");

    report.curves.push_back(metric_curve(
        figure_title + " — " + model_name(model), metric_label, config,
        points, metric));
    report.add_sweep(config, std::move(points), wall);
  }
  return 0;
}

int run_ablation(const ScenarioOptions& opts, ScenarioReport& report) {
  report.textf("== SLGF2 ablation: contribution of each mechanism (FA model) "
               "==\n\n");
  std::vector<SchemeSpec> schemes = {
      {Scheme::kSlgf, {}, "SLGF"},
      {Scheme::kSlgf2, {}, "SLGF2"},
      {Scheme::kSlgf2, {.use_either_hand = false}, "-eitherhand"},
      {Scheme::kSlgf2, {.use_backup_paths = false}, "-backup"},
      {Scheme::kSlgf2, {.limit_perimeter = false}, "-limitperim"},
  };

  SweepConfig config = figure_config(DeployModel::kForbiddenAreas, opts);
  if (opts.networks == 0) config.networks_per_point = 40;
  config.schemes = schemes;
  config.node_counts = {400, 600, 800};

  auto start = std::chrono::steady_clock::now();
  auto points = run_sweep(config);
  double wall = seconds_since(start);

  struct Metric {
    const char* name;
    MetricFn fn;
  };
  const Metric metrics[] = {
      {"avg-hops", [](const RouteAggregate& a) { return a.hops.mean(); }},
      {"avg-length", [](const RouteAggregate& a) { return a.length.mean(); }},
      {"perimeter-hops",
       [](const RouteAggregate& a) { return a.perimeter_hops.mean(); }},
      {"delivery", [](const RouteAggregate& a) { return a.delivery_ratio(); }},
  };
  for (const Metric& metric : metrics) {
    report.textf("%s\n", metric.name);
    std::vector<std::string> header{"nodes"};
    for (const auto& s : schemes) header.push_back(s.display_label());
    Table table(std::move(header));
    for (const auto& point : points) {
      std::vector<std::string> row{std::to_string(point.node_count)};
      for (const auto& s : schemes) {
        row.push_back(
            Table::fmt(metric.fn(point.by_scheme.at(s.display_label())), 2));
      }
      table.add_row(std::move(row));
    }
    report.add_table(std::move(table), metric.name);
    report.textf("\n");
    report.curves.push_back(metric_curve(
        std::string("ablation — ") + metric.name, metric.name, config, points,
        metric.fn));
  }

  report.add_sweep(config, std::move(points), wall);
  return 0;
}

/// Hole-field study: the FA regime the safety model targets — how much of
/// the network is labeled unsafe and what that buys each scheme.
int run_hole_field(const ScenarioOptions& opts, ScenarioReport& report) {
  report.textf("== Hole field: unsafe labeling share and per-scheme delivery "
               "(FA model) ==\n\n");
  SweepConfig config = figure_config(DeployModel::kForbiddenAreas, opts);
  if (opts.networks == 0) config.networks_per_point = 20;
  config.node_counts = {500, 600, 700};

  auto start = std::chrono::steady_clock::now();
  auto points = run_sweep(config);
  double wall = seconds_since(start);

  // Unsafe-node share, sampled over this sweep's own networks (the sweep
  // itself never builds the labeling for GF/LGF — that's the point of the
  // lazy Network — so sample it here explicitly). These builds run on the
  // main thread, so the adjacency and labeling fan out within each network.
  TaskPool build_pool(opts.threads);
  Table table({"nodes", "unsafe%", "GF deliv", "LGF deliv", "SLGF deliv",
               "SLGF2 deliv", "SLGF2 perim"});
  std::vector<double> unsafe_shares;
  for (const auto& point : points) {
    double unsafe_sum = 0.0;
    int sampled = std::min(config.networks_per_point, 5);
    for (int i = 0; i < sampled; ++i) {
      NetworkConfig nc;
      nc.deployment = config.deployment_template;
      nc.deployment.model = config.model;
      nc.deployment.node_count = point.node_count;
      nc.seed = sweep_cell_seed(config, point.node_count, i);
      nc.build_pool = &build_pool;
      Network net = Network::create(nc);
      unsafe_sum += static_cast<double>(net.safety().unsafe_node_count()) /
                    static_cast<double>(net.graph().size());
    }
    double unsafe_share = unsafe_sum / sampled;
    unsafe_shares.push_back(unsafe_share);
    table.add_row(
        {std::to_string(point.node_count),
         Table::fmt(100.0 * unsafe_share, 1),
         Table::fmt(point.by_scheme.at("GF").delivery_ratio()),
         Table::fmt(point.by_scheme.at("LGF").delivery_ratio()),
         Table::fmt(point.by_scheme.at("SLGF").delivery_ratio()),
         Table::fmt(point.by_scheme.at("SLGF2").delivery_ratio()),
         Table::fmt(point.by_scheme.at("SLGF2").perimeter_hops.mean())});
  }
  report.add_table(std::move(table));

  JsonValue shares = JsonValue::array();
  for (double s : unsafe_shares) shares.push(JsonValue::of(s));
  report.param("unsafe_share", std::move(shares));

  ReportCurve unsafe_curve;
  unsafe_curve.title = "hole-field — unsafe node share";
  unsafe_curve.x_label = "nodes";
  unsafe_curve.y_label = "unsafe %";
  ReportSeries share_series;
  share_series.label = "unsafe%";
  for (std::size_t i = 0; i < points.size(); ++i) {
    share_series.points.emplace_back(
        static_cast<double>(points[i].node_count), 100.0 * unsafe_shares[i]);
  }
  unsafe_curve.series.push_back(std::move(share_series));
  report.curves.push_back(std::move(unsafe_curve));
  report.curves.push_back(metric_curve(
      "hole-field — delivery ratio", "delivery ratio", config, points,
      [](const RouteAggregate& a) { return a.delivery_ratio(); }));

  report.add_sweep(config, std::move(points), wall);
  return 0;
}

/// Failure dynamics: kill a disc of nodes between a routable pair, update
/// the labeling incrementally, and compare each scheme before/after.
int run_failure_dynamics(const ScenarioOptions& opts, ScenarioReport& report) {
  int trials = opts.networks > 0 ? opts.networks : 10;
  std::uint64_t base_seed = opts.seed != 0 ? opts.seed : 3;
  const int nodes = 700;
  const double blast = 35.0;
  report.textf("== Failure dynamics: %d trials, %d nodes, %.0fm blast ==\n\n",
               trials, nodes, blast);

  const Scheme schemes[] = {Scheme::kGf, Scheme::kLgf, Scheme::kSlgf,
                            Scheme::kSlgf2};
  std::size_t delivered_before[4] = {0}, delivered_after[4] = {0};
  Summary flips, incremental_reevals;
  int connected_trials = 0;

  // Single-network trials on the main thread: build-parallelize within
  // each network (adjacency + labeling init fan out; results identical).
  TaskPool build_pool(opts.threads);
  for (int trial = 0; trial < trials; ++trial) {
    NetworkConfig config;
    config.deployment.node_count = nodes;
    config.seed = base_seed + static_cast<std::uint64_t>(trial);
    config.build_pool = &build_pool;
    Network before = Network::create(config);

    Rng rng(config.seed ^ 0xdead);
    auto [s, d] = before.random_connected_interior_pair(rng);
    if (s == kInvalidNode) continue;
    Vec2 mid =
        midpoint(before.graph().position(s), before.graph().position(d));
    std::vector<NodeId> casualties;
    for (NodeId u = 0; u < before.graph().size(); ++u) {
      if (u == s || u == d) continue;
      if (distance(before.graph().position(u), mid) <= blast) {
        casualties.push_back(u);
      }
    }

    // Shares the original graph's spatial grid — no re-bucketing.
    UnitDiskGraph dead_graph =
        before.graph().with_failures(casualties, &build_pool);
    if (!connected(dead_graph, s, d)) continue;
    ++connected_trials;

    InterestArea degraded_area(dead_graph, dead_graph.range());
    SafetyInfo degraded_info = before.safety();
    auto inc_stats = update_safety_after_failures(dead_graph, degraded_area,
                                                  casualties, degraded_info);
    flips.add(static_cast<double>(inc_stats.flips));
    incremental_reevals.add(static_cast<double>(inc_stats.reevaluations));

    PlanarOverlay degraded_overlay(dead_graph, PlanarOverlay::Kind::kGabriel);
    BoundHoleInfo degraded_boundhole(dead_graph);
    for (int k = 0; k < 4; ++k) {
      auto router_before = before.make_router(schemes[k]);
      if (router_before->route(s, d).delivered()) ++delivered_before[k];
      std::unique_ptr<Router> router_after;
      switch (schemes[k]) {
        case Scheme::kGf:
          router_after = std::make_unique<GfRouter>(
              dead_graph, degraded_overlay, &degraded_boundhole,
              GfRouter::Recovery::kBoundHole);
          break;
        case Scheme::kLgf:
          router_after = std::make_unique<LgfRouter>(dead_graph);
          break;
        case Scheme::kSlgf:
          router_after = std::make_unique<SlgfRouter>(dead_graph, degraded_info);
          break;
        default:
          router_after =
              std::make_unique<Slgf2Router>(dead_graph, degraded_info);
      }
      if (router_after->route(s, d).delivered()) ++delivered_after[k];
    }
  }

  Table table({"scheme", "delivered before", "delivered after"});
  for (int k = 0; k < 4; ++k) {
    table.add_row({scheme_name(schemes[k]),
                   std::to_string(delivered_before[k]) + "/" +
                       std::to_string(connected_trials),
                   std::to_string(delivered_after[k]) + "/" +
                       std::to_string(connected_trials)});
  }
  report.add_table(std::move(table));
  if (!flips.empty()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "incremental relabeling: %.1f flips, %.1f re-evaluations per "
                  "failure (mean over %zu trials)",
                  flips.mean(), incremental_reevals.mean(), flips.count());
    report.note(buf);
  }

  report.param("trials", JsonValue::of(trials));
  report.param("connected_trials", JsonValue::of(connected_trials));
  JsonValue scheme_results = JsonValue::array();
  for (int k = 0; k < 4; ++k) {
    JsonValue entry = JsonValue::object();
    entry.set("scheme", JsonValue::of(scheme_name(schemes[k])));
    entry.set("delivered_before",
              JsonValue::of(static_cast<std::uint64_t>(delivered_before[k])));
    entry.set("delivered_after",
              JsonValue::of(static_cast<std::uint64_t>(delivered_after[k])));
    scheme_results.push(std::move(entry));
  }
  report.param("schemes", std::move(scheme_results));
  report.param("relabel_flips", summary_stats(flips));
  return 0;
}

/// Mobile stream: a long-lived SLGF2 stream between fixed endpoints while
/// every other node follows a random-waypoint process.
int run_mobile_stream(const ScenarioOptions& opts, ScenarioReport& report) {
  int epochs = opts.networks > 0 ? opts.networks : 8;
  std::uint64_t seed = opts.seed != 0 ? opts.seed : 9;
  const double dt = 20.0;
  DeploymentConfig dc;
  dc.node_count = 600;
  report.textf("== Mobile stream: %d epochs, %d nodes, dt=%.0fs ==\n\n",
               epochs, dc.node_count, dt);

  Rng deploy_rng(seed);
  Deployment d = deploy(dc, deploy_rng);
  WaypointConfig wc;
  wc.field = dc.field;
  WaypointModel model(d.positions, wc, Rng(seed ^ 0x11));

  // Fixed endpoints: a far routable pair of the first snapshot.
  UnitDiskGraph g0(model.positions(), dc.radio_range, dc.field);
  InterestArea area0(g0, dc.radio_range);
  const auto& interior = area0.interior_nodes();
  if (interior.size() < 2) {
    report.textf("network too small for interior endpoints\n");
    report.aborted = true;
    return 1;
  }
  Rng pick_rng(seed ^ 0x22);
  NodeId src = kInvalidNode, dst = kInvalidNode;
  double best = -1.0;
  for (int trial = 0; trial < 64; ++trial) {
    NodeId a = interior[pick_rng.next_below(interior.size())];
    NodeId b = interior[pick_rng.next_below(interior.size())];
    if (a == b || !connected(g0, a, b)) continue;
    double dist = distance(g0.position(a), g0.position(b));
    if (dist > best) {
      best = dist;
      src = a;
      dst = b;
    }
  }
  if (src == kInvalidNode) {
    report.textf("no routable pair in the first snapshot\n");
    report.aborted = true;
    return 1;
  }

  Table table({"epoch", "time", "links", "delivered", "hops", "unsafe"});
  int delivered_epochs = 0;
  Summary hop_counts;
  TaskPool build_pool(opts.threads);  // per-epoch rebuilds fan out within
  for (int epoch = 0; epoch < epochs; ++epoch) {
    // Rebuild the snapshot; positions changed, so every derived structure
    // re-constitutes (the paper's argument for cheap construction).
    UnitDiskGraph g(model.positions(), dc.radio_range, dc.field, &build_pool);
    InterestArea area(g, dc.radio_range);
    SafetyInfo info = compute_safety(g, area, &build_pool);
    Slgf2Router router(g, info);
    PathResult r = router.route(src, dst);
    if (r.delivered()) {
      ++delivered_epochs;
      hop_counts.add(static_cast<double>(r.hops()));
    }
    table.add_row({std::to_string(epoch), Table::fmt(model.now(), 0),
                   std::to_string(g.edge_count()),
                   r.delivered() ? "yes" : "NO",
                   std::to_string(r.hops()),
                   std::to_string(info.unsafe_node_count())});
    model.advance(dt);
  }
  report.add_table(std::move(table));
  char buf[96];
  std::snprintf(buf, sizeof(buf), "delivered %d/%d epochs, mean hops %.1f",
                delivered_epochs, epochs,
                hop_counts.empty() ? 0.0 : hop_counts.mean());
  report.note(buf);

  report.param("epochs", JsonValue::of(epochs));
  report.param("delivered_epochs", JsonValue::of(delivered_epochs));
  report.param("hops", summary_stats(hop_counts));
  return 0;
}

/// Accumulates one stream's per-scheme totals into a running aggregate
/// (same label, Summary::merge in call order — deterministic).
void merge_stream_scheme(StreamSchemeStats& into,
                         const StreamSchemeStats& from) {
  into.injected += from.injected;
  into.delivered += from.delivered;
  into.dead_end += from.dead_end;
  into.ttl_expired += from.ttl_expired;
  into.node_failed += from.node_failed;
  into.hops.merge(from.hops);
  into.length.merge(from.length);
  into.stretch_hops.merge(from.stretch_hops);
  into.latency.merge(from.latency);
  into.replans.merge(from.replans);
  into.local_minima.merge(from.local_minima);
}

/// Streaming delivery: long-lived packet streams over StreamSim with
/// failure waves landing *between the hops* of in-flight packets. Sweeps
/// the failure fraction (share of nodes that die over the stream's
/// lifetime); SLGF/SLGF2 keep routing on incrementally relabeled safety
/// information after every wave, and each wave's incremental update is
/// cross-checked against a from-scratch compute_safety.
///
/// The report is a pure function of (options, seeds): no wall-clock or
/// thread-count values are recorded, so the JSON/CSV artifacts are
/// byte-identical across reruns and across SPR_THREADS (tests enforce
/// this).
int run_streaming_delivery(const ScenarioOptions& opts,
                           ScenarioReport& report) {
  const int networks = opts.networks > 0 ? opts.networks : 3;
  const int packets = opts.pairs > 0 ? opts.pairs : 40;
  const std::uint64_t base_seed = opts.seed != 0 ? opts.seed : 2009;
  const int nodes = 600;
  const std::vector<double> fractions = {0.0, 0.05, 0.10, 0.20, 0.30};
  const int waves_per_stream = 4;
  const double packet_interval = 1.0;
  const double hop_delay = 0.2;

  report.textf("== Streaming delivery: %d-node FA networks, %d streams x %d "
               "packets per failure fraction, %d mid-stream failure waves "
               "==\n\n",
               nodes, networks, packets, waves_per_stream);

  struct StreamCell {
    bool ok = false;         ///< produced traffic
    bool relabel_ok = true;  ///< every wave matched the from-scratch fixpoint
    StreamStats stats;
  };
  std::vector<StreamCell> cells(fractions.size() *
                                static_cast<std::size_t>(networks));

  auto run_one = [&](std::size_t ci) {
    const std::size_t fi = ci / static_cast<std::size_t>(networks);
    const double fraction = fractions[fi];
    StreamCell& cell = cells[ci];

    NetworkConfig nc;
    nc.deployment.node_count = nodes;
    nc.deployment.model = DeployModel::kForbiddenAreas;
    nc.seed = base_seed ^ ((ci + 1) * 0x9E3779B97F4A7C15ULL);
    Network net = Network::create(nc);

    Rng rng(nc.seed ^ 0x57bea);
    StreamConfig sc;
    sc.packets = packets;
    sc.packet_interval = packet_interval;
    sc.hop_delay = hop_delay;
    sc.seed = nc.seed;
    sc.verify_relabeling = true;
    // A handful of long-lived source/sink pairs, cycled over the stream.
    for (int t = 0; t < 4; ++t) {
      auto pair = net.random_connected_interior_pair(rng);
      if (pair.first != kInvalidNode) sc.pairs.push_back(pair);
    }
    if (sc.pairs.empty()) return;  // cell stays !ok (counted below)

    // The failure schedule: `fraction` of the nodes dies across
    // `waves_per_stream` waves spread over the stream's injection span,
    // never touching the stream endpoints.
    sc.waves = spread_failure_waves(
        net.graph(), sc.pairs, fraction, waves_per_stream,
        static_cast<double>(packets) * packet_interval, rng);

    StreamSim sim(std::move(net), std::move(sc));
    cell.stats = sim.run();
    cell.ok = true;
    for (const WaveRecord& record : cell.stats.waves) {
      if (record.verified && !record.matches_full_recompute) {
        cell.relabel_ok = false;
      }
    }
  };

  if (opts.threads == 1) {
    for (std::size_t ci = 0; ci < cells.size(); ++ci) run_one(ci);
  } else {
    TaskPool pool(opts.threads);
    pool.parallel_for(cells.size(), run_one);
  }

  // Per-fraction reduction in cell order — deterministic regardless of
  // which worker ran which cell.
  const auto scheme_specs = SweepConfig::paper_schemes();
  std::vector<std::vector<StreamSchemeStats>> merged(fractions.size());
  std::vector<std::size_t> wave_flips(fractions.size(), 0);
  std::vector<std::size_t> wave_reevals(fractions.size(), 0);
  std::vector<std::size_t> wave_casualties(fractions.size(), 0);
  std::size_t skipped_cells = 0;
  bool relabel_ok = true;
  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    merged[fi].resize(scheme_specs.size());
    for (std::size_t k = 0; k < scheme_specs.size(); ++k) {
      merged[fi][k].label = scheme_specs[k].display_label();
    }
    for (int ni = 0; ni < networks; ++ni) {
      const StreamCell& cell =
          cells[fi * static_cast<std::size_t>(networks) +
                static_cast<std::size_t>(ni)];
      if (!cell.ok) {
        ++skipped_cells;
        continue;
      }
      relabel_ok &= cell.relabel_ok;
      for (std::size_t k = 0; k < cell.stats.schemes.size() &&
                              k < merged[fi].size();
           ++k) {
        merge_stream_scheme(merged[fi][k], cell.stats.schemes[k]);
      }
      for (const WaveRecord& record : cell.stats.waves) {
        wave_flips[fi] += record.relabel.flips;
        wave_reevals[fi] += record.relabel.reevaluations;
        wave_casualties[fi] += record.casualties;
      }
    }
  }
  if (skipped_cells == cells.size()) {
    report.textf("no routable stream endpoints in any cell\n");
    report.aborted = true;
    return 1;
  }

  // Console table: one row per failure fraction.
  std::vector<std::string> header{"fail%"};
  for (const auto& spec : scheme_specs) {
    header.push_back(spec.display_label() + " deliv");
  }
  header.push_back("SLGF2 hops");
  header.push_back("SLGF2 stretch");
  header.push_back("relabel flips");
  Table table(std::move(header));
  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    std::vector<std::string> row{Table::fmt(100.0 * fractions[fi], 0)};
    for (std::size_t k = 0; k < merged[fi].size(); ++k) {
      row.push_back(Table::fmt(merged[fi][k].delivery_ratio()));
    }
    const StreamSchemeStats& slgf2 = merged[fi].back();
    row.push_back(Table::fmt(slgf2.hops.empty() ? 0.0 : slgf2.hops.mean()));
    row.push_back(Table::fmt(
        slgf2.stretch_hops.empty() ? 0.0 : slgf2.stretch_hops.mean()));
    row.push_back(std::to_string(wave_flips[fi]));
    table.add_row(std::move(row));
  }
  report.add_table(std::move(table));
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "incremental relabeling matched a from-scratch "
                "compute_safety at every wave: %s",
                relabel_ok ? "yes" : "NO");
  report.note(buf);
  std::snprintf(buf, sizeof(buf),
                "sweep section x axis is the failure percentage (every "
                "network has %d nodes)",
                nodes);
  report.note(buf);
  if (skipped_cells > 0) {
    std::snprintf(buf, sizeof(buf),
                  "%zu of %zu stream cells had no routable endpoints and "
                  "were skipped",
                  skipped_cells, cells.size());
    report.note(buf);
  }

  // Plot curves: per-scheme series over the failure fraction.
  struct CurveSpec {
    const char* title;
    const char* y_label;
    std::function<double(const StreamSchemeStats&)> metric;
  };
  const CurveSpec curve_specs[] = {
      {"streaming-delivery — delivery ratio", "delivery ratio",
       [](const StreamSchemeStats& s) { return s.delivery_ratio(); }},
      {"streaming-delivery — avg hops (delivered)", "hops",
       [](const StreamSchemeStats& s) {
         return s.hops.empty() ? 0.0 : s.hops.mean();
       }},
      {"streaming-delivery — hop stretch vs injection-time optimum",
       "stretch",
       [](const StreamSchemeStats& s) {
         return s.stretch_hops.empty() ? 0.0 : s.stretch_hops.mean();
       }},
  };
  for (const CurveSpec& spec : curve_specs) {
    ReportCurve curve;
    curve.title = spec.title;
    curve.x_label = "failed %";
    curve.y_label = spec.y_label;
    for (std::size_t k = 0; k < scheme_specs.size(); ++k) {
      ReportSeries series;
      series.label = scheme_specs[k].display_label();
      for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
        series.points.emplace_back(100.0 * fractions[fi],
                                   spec.metric(merged[fi][k]));
      }
      curve.series.push_back(std::move(series));
    }
    report.curves.push_back(std::move(curve));
  }

  // Sweep section so the JSON report carries the standard "models" shape:
  // one point per failure percent, per-scheme RouteAggregates built from
  // the stream totals. The point key doubles as the x axis, so here
  // "nodes" carries the failure *percentage*, not a node count — the
  // sweep_section_x_axis param and a console note flag the
  // reinterpretation for consumers of the shared shape.
  // wall_seconds/threads stay 0 by design — the report must be
  // byte-identical across reruns and thread counts.
  SweepSection section;
  section.model = DeployModel::kForbiddenAreas;
  section.networks_per_point = networks;
  section.pairs_per_network = packets;
  section.base_seed = base_seed;
  section.threads = 0;
  section.wall_seconds = 0.0;
  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    SweepPoint point;
    point.node_count = static_cast<int>(100.0 * fractions[fi] + 0.5);
    for (const StreamSchemeStats& s : merged[fi]) {
      RouteAggregate agg;
      agg.requested = s.injected;
      agg.attempted = s.injected;
      agg.delivered = s.delivered;
      agg.hops = s.hops;
      agg.length = s.length;
      agg.stretch_hops = s.stretch_hops;
      point.by_scheme.emplace(s.label, std::move(agg));
    }
    section.points.push_back(std::move(point));
  }
  report.sweeps.push_back(std::move(section));

  // Machine-readable params: config identity plus the full per-cell
  // stream stats through the typed serializer (report/serialize.h).
  report.param("nodes", JsonValue::of(nodes));
  report.param("networks_per_fraction", JsonValue::of(networks));
  report.param("packets_per_stream", JsonValue::of(packets));
  report.param("waves_per_stream", JsonValue::of(waves_per_stream));
  report.param("base_seed", JsonValue::of(base_seed));
  report.param("sweep_section_x_axis", JsonValue::of("failure_percent"));
  report.param("relabel_matches_full_recompute", JsonValue::of(relabel_ok));
  JsonValue fractions_json = JsonValue::array();
  for (double f : fractions) fractions_json.push(JsonValue::of(f));
  report.param("failure_fractions", std::move(fractions_json));
  // Per-fraction incremental-relabeling cost (summed over waves/streams),
  // aligned with failure_fractions.
  JsonValue casualties_json = JsonValue::array();
  JsonValue flips_json = JsonValue::array();
  JsonValue reevals_json = JsonValue::array();
  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    casualties_json.push(
        JsonValue::of(static_cast<std::uint64_t>(wave_casualties[fi])));
    flips_json.push(JsonValue::of(static_cast<std::uint64_t>(wave_flips[fi])));
    reevals_json.push(
        JsonValue::of(static_cast<std::uint64_t>(wave_reevals[fi])));
  }
  report.param("wave_casualties", std::move(casualties_json));
  report.param("relabel_flips", std::move(flips_json));
  report.param("relabel_reevaluations", std::move(reevals_json));
  JsonValue streams = JsonValue::array();
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    if (!cells[ci].ok) continue;
    JsonValue entry = JsonValue::object();
    entry.set("fraction",
              JsonValue::of(
                  fractions[ci / static_cast<std::size_t>(networks)]));
    entry.set("net",
              JsonValue::of(static_cast<int>(
                  ci % static_cast<std::size_t>(networks))));
    entry.set("stats", stream_stats_json(cells[ci].stats));
    streams.push(std::move(entry));
  }
  report.param("streams", std::move(streams));

  return relabel_ok ? 0 : 1;
}

/// Mobility rate: long-lived packet streams while every node follows a
/// random-waypoint process, sweeping the re-pin interval x the maximum
/// node speed. Every re-pin *continues* the snapshot incrementally
/// (Network::with_moves: relocated spatial grid, adjacency patched from
/// the edge delta, bidirectional safety update — removals demote,
/// additions promote) and is cross-checked against a from-scratch
/// compute_safety (StreamConfig::verify_relabeling).
///
/// The report is a pure function of (options, seeds): no wall-clock or
/// thread-count values are recorded, so the JSON/CSV artifacts are
/// byte-identical across reruns and across SPR_THREADS (tests enforce
/// this).
int run_mobility_rate(const ScenarioOptions& opts, ScenarioReport& report) {
  const int networks = opts.networks > 0 ? opts.networks : 2;
  const int packets = opts.pairs > 0 ? opts.pairs : 30;
  const std::uint64_t base_seed = opts.seed != 0 ? opts.seed : 2009;
  const int nodes = 500;
  const std::vector<double> intervals = {4.0, 8.0};  // re-pin period, s
  const std::vector<double> speeds = {0.5, 1.5, 3.0};  // max m/s
  const double packet_interval = 1.0;
  const double hop_delay = 0.2;

  report.textf("== Mobility rate: %d-node FA networks, %d streams x %d "
               "packets per cell, re-pin interval x speed sweep with "
               "incremental relabeling ==\n\n",
               nodes, networks, packets);

  struct MobilityCell {
    bool ok = false;         ///< produced traffic
    bool relabel_ok = true;  ///< every re-pin matched the fresh fixpoint
    StreamStats stats;
  };
  const std::size_t grid = intervals.size() * speeds.size();
  std::vector<MobilityCell> cells(grid * static_cast<std::size_t>(networks));

  auto run_one = [&](std::size_t ci) {
    const std::size_t gi = ci / static_cast<std::size_t>(networks);
    const double interval = intervals[gi / speeds.size()];
    const double speed = speeds[gi % speeds.size()];
    MobilityCell& cell = cells[ci];

    NetworkConfig nc;
    nc.deployment.node_count = nodes;
    nc.deployment.model = DeployModel::kForbiddenAreas;
    nc.seed = base_seed ^ ((ci + 1) * 0x9E3779B97F4A7C15ULL);
    Network net = Network::create(nc);

    Rng rng(nc.seed ^ 0x30b1);
    StreamConfig sc;
    sc.packets = packets;
    sc.packet_interval = packet_interval;
    sc.hop_delay = hop_delay;
    sc.seed = nc.seed;
    sc.verify_relabeling = true;
    sc.mobility_interval = interval;
    sc.mobility_dt = interval;  // virtual and waypoint time advance in step
    sc.waypoint.max_speed_mps = speed;
    sc.waypoint.min_speed_mps = speed * 0.25;
    sc.waypoint.pause_s = 2.0;
    for (int t = 0; t < 4; ++t) {
      auto pair = net.random_connected_interior_pair(rng);
      if (pair.first != kInvalidNode) sc.pairs.push_back(pair);
    }
    if (sc.pairs.empty()) return;  // cell stays !ok (counted below)

    StreamSim sim(std::move(net), std::move(sc));
    cell.stats = sim.run();
    cell.ok = true;
    for (const RepinRecord& record : cell.stats.repin_records) {
      if (record.verified && !record.matches_full_recompute) {
        cell.relabel_ok = false;
      }
    }
  };

  if (opts.threads == 1) {
    for (std::size_t ci = 0; ci < cells.size(); ++ci) run_one(ci);
  } else {
    TaskPool pool(opts.threads);
    pool.parallel_for(cells.size(), run_one);
  }

  // Per-(interval, speed) reduction in cell order — deterministic
  // regardless of which worker ran which cell.
  const auto scheme_specs = SweepConfig::paper_schemes();
  struct GridPoint {
    std::vector<StreamSchemeStats> schemes;
    std::size_t repins = 0;
    std::size_t moved = 0;
    std::size_t edges_added = 0;
    std::size_t edges_removed = 0;
    std::size_t promotions = 0;
    std::size_t demotions = 0;
    std::size_t reevaluations = 0;
    std::size_t arena_high_water = 0;  ///< max over the point's re-pins
  };
  std::vector<GridPoint> merged(grid);
  std::size_t skipped_cells = 0;
  bool relabel_ok = true;
  for (std::size_t gi = 0; gi < grid; ++gi) {
    merged[gi].schemes.resize(scheme_specs.size());
    for (std::size_t k = 0; k < scheme_specs.size(); ++k) {
      merged[gi].schemes[k].label = scheme_specs[k].display_label();
    }
    for (int ni = 0; ni < networks; ++ni) {
      const MobilityCell& cell =
          cells[gi * static_cast<std::size_t>(networks) +
                static_cast<std::size_t>(ni)];
      if (!cell.ok) {
        ++skipped_cells;
        continue;
      }
      relabel_ok &= cell.relabel_ok;
      for (std::size_t k = 0; k < cell.stats.schemes.size() &&
                              k < merged[gi].schemes.size();
           ++k) {
        merge_stream_scheme(merged[gi].schemes[k], cell.stats.schemes[k]);
      }
      merged[gi].repins += cell.stats.repins;
      for (const RepinRecord& record : cell.stats.repin_records) {
        merged[gi].moved += record.moved;
        merged[gi].edges_added += record.edges_added;
        merged[gi].edges_removed += record.edges_removed;
        merged[gi].promotions += record.relabel.promotions;
        merged[gi].demotions += record.relabel.flips;
        merged[gi].reevaluations += record.relabel.reevaluations;
        merged[gi].arena_high_water = std::max(
            merged[gi].arena_high_water, record.relabel.arena_high_water);
      }
    }
  }
  if (skipped_cells == cells.size()) {
    report.textf("no routable stream endpoints in any cell\n");
    report.aborted = true;
    return 1;
  }

  // Console table: one row per (interval, speed) grid point.
  std::vector<std::string> header{"repin s", "speed m/s"};
  for (const auto& spec : scheme_specs) {
    header.push_back(spec.display_label() + " deliv");
  }
  header.push_back("SLGF2 stretch");
  header.push_back("repins");
  header.push_back("promoted");
  header.push_back("demoted");
  Table table(std::move(header));
  for (std::size_t gi = 0; gi < grid; ++gi) {
    std::vector<std::string> row{
        Table::fmt(intervals[gi / speeds.size()], 0),
        Table::fmt(speeds[gi % speeds.size()], 1)};
    for (const auto& s : merged[gi].schemes) {
      row.push_back(Table::fmt(s.delivery_ratio()));
    }
    const StreamSchemeStats& slgf2 = merged[gi].schemes.back();
    row.push_back(Table::fmt(
        slgf2.stretch_hops.empty() ? 0.0 : slgf2.stretch_hops.mean()));
    row.push_back(std::to_string(merged[gi].repins));
    row.push_back(std::to_string(merged[gi].promotions));
    row.push_back(std::to_string(merged[gi].demotions));
    table.add_row(std::move(row));
  }
  report.add_table(std::move(table));
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "incremental with_moves relabeling matched a from-scratch "
                "compute_safety at every re-pin: %s",
                relabel_ok ? "yes" : "NO");
  report.note(buf);
  std::snprintf(buf, sizeof(buf),
                "sweep section x axis is the max waypoint speed in 0.1 m/s "
                "units (every network has %d nodes); one section per "
                "re-pin interval, in interval order",
                nodes);
  report.note(buf);
  if (skipped_cells > 0) {
    std::snprintf(buf, sizeof(buf),
                  "%zu of %zu stream cells had no routable endpoints and "
                  "were skipped",
                  skipped_cells, cells.size());
    report.note(buf);
  }

  // Plot curves: per-scheme series over speed, one curve per interval.
  struct CurveSpec {
    const char* title;
    const char* y_label;
    std::function<double(const StreamSchemeStats&)> metric;
  };
  const CurveSpec curve_specs[] = {
      {"delivery ratio", "delivery ratio",
       [](const StreamSchemeStats& s) { return s.delivery_ratio(); }},
      {"hop stretch vs injection-time optimum", "stretch",
       [](const StreamSchemeStats& s) {
         return s.stretch_hops.empty() ? 0.0 : s.stretch_hops.mean();
       }},
  };
  for (const CurveSpec& spec : curve_specs) {
    for (std::size_t ii = 0; ii < intervals.size(); ++ii) {
      ReportCurve curve;
      char title[120];
      std::snprintf(title, sizeof(title), "mobility-rate — %s (repin %.0fs)",
                    spec.title, intervals[ii]);
      curve.title = title;
      curve.x_label = "max speed (m/s)";
      curve.y_label = spec.y_label;
      for (std::size_t k = 0; k < scheme_specs.size(); ++k) {
        ReportSeries series;
        series.label = scheme_specs[k].display_label();
        for (std::size_t si = 0; si < speeds.size(); ++si) {
          series.points.emplace_back(
              speeds[si], spec.metric(merged[ii * speeds.size() + si].schemes[k]));
        }
        curve.series.push_back(std::move(series));
      }
      report.curves.push_back(std::move(curve));
    }
  }

  // Sweep sections (the standard "models" JSON shape): one per re-pin
  // interval, one point per speed. The point key carries the speed in
  // 0.1 m/s units — flagged by the sweep_section_x_axis param and a
  // console note. wall_seconds/threads stay 0 by design: the report must
  // be byte-identical across reruns and thread counts.
  for (std::size_t ii = 0; ii < intervals.size(); ++ii) {
    SweepSection section;
    section.model = DeployModel::kForbiddenAreas;
    section.networks_per_point = networks;
    section.pairs_per_network = packets;
    section.base_seed = base_seed;
    section.threads = 0;
    section.wall_seconds = 0.0;
    for (std::size_t si = 0; si < speeds.size(); ++si) {
      SweepPoint point;
      point.node_count = static_cast<int>(10.0 * speeds[si] + 0.5);
      for (const StreamSchemeStats& s :
           merged[ii * speeds.size() + si].schemes) {
        RouteAggregate agg;
        agg.requested = s.injected;
        agg.attempted = s.injected;
        agg.delivered = s.delivered;
        agg.hops = s.hops;
        agg.length = s.length;
        agg.stretch_hops = s.stretch_hops;
        point.by_scheme.emplace(s.label, std::move(agg));
      }
      section.points.push_back(std::move(point));
    }
    report.sweeps.push_back(std::move(section));
  }

  // Machine-readable params: config identity, per-grid-point relabeling
  // cost, and the full per-cell stream stats through the typed serializer.
  report.param("nodes", JsonValue::of(nodes));
  report.param("networks_per_cell", JsonValue::of(networks));
  report.param("packets_per_stream", JsonValue::of(packets));
  report.param("base_seed", JsonValue::of(base_seed));
  report.param("sweep_section_x_axis", JsonValue::of("max_speed_mps_x10"));
  report.param("relabel_matches_full_recompute", JsonValue::of(relabel_ok));
  JsonValue intervals_json = JsonValue::array();
  for (double v : intervals) intervals_json.push(JsonValue::of(v));
  report.param("repin_intervals", std::move(intervals_json));
  JsonValue speeds_json = JsonValue::array();
  for (double v : speeds) speeds_json.push(JsonValue::of(v));
  report.param("max_speeds", std::move(speeds_json));
  auto size_array = [&](auto member) {
    JsonValue out = JsonValue::array();
    for (const GridPoint& point : merged) {
      out.push(JsonValue::of(static_cast<std::uint64_t>(point.*member)));
    }
    return out;
  };
  report.param("repins", size_array(&GridPoint::repins));
  report.param("moved_nodes", size_array(&GridPoint::moved));
  report.param("edges_added", size_array(&GridPoint::edges_added));
  report.param("edges_removed", size_array(&GridPoint::edges_removed));
  report.param("relabel_promotions", size_array(&GridPoint::promotions));
  report.param("relabel_demotions", size_array(&GridPoint::demotions));
  report.param("relabel_reevaluations",
               size_array(&GridPoint::reevaluations));
  // Per-update peak (max-aggregated, so the value is thread-invariant):
  // the retained-block size after which re-pin relabeling stops touching
  // the general heap.
  report.param("relabel_arena_high_water",
               size_array(&GridPoint::arena_high_water));
  JsonValue streams = JsonValue::array();
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    if (!cells[ci].ok) continue;
    const std::size_t gi = ci / static_cast<std::size_t>(networks);
    JsonValue entry = JsonValue::object();
    entry.set("repin_interval",
              JsonValue::of(intervals[gi / speeds.size()]));
    entry.set("max_speed", JsonValue::of(speeds[gi % speeds.size()]));
    entry.set("net",
              JsonValue::of(static_cast<int>(
                  ci % static_cast<std::size_t>(networks))));
    entry.set("stats", stream_stats_json(cells[ci].stats));
    streams.push(std::move(entry));
  }
  report.param("streams", std::move(streams));

  return relabel_ok ? 0 : 1;
}


/// Spatial-tile scaling: one scaled constant-degree FA deployment labeled
/// through every tile grid x thread count, with a failure wave and a
/// mobility epoch continued incrementally on each — asserting the tile
/// layer's invariance contract (every grid bit-identical to the 1x1 run,
/// and the 1x1 run to the monolithic compute_safety) and reporting the
/// tiles x threads timing curve. `--networks K` scales the field to
/// K*1000 nodes (default 10, i.e. 10^4; the million-node datapoint is
/// `--networks 1000`).
int run_tile_scaling(const ScenarioOptions& opts, ScenarioReport& report) {
  const int nodes = (opts.networks > 0 ? opts.networks : 10) * 1000;
  const std::uint64_t seed = opts.seed != 0 ? opts.seed : 2009;
  const int hardware = TaskPool::hardware_threads();
  const int parallel_threads = opts.threads > 1 ? opts.threads : hardware;

  // Constant mean degree across sizes: field side grows with sqrt(n/600),
  // forbidden areas scale with the field (bench_micro's scaling rule).
  DeploymentConfig dc;
  dc.node_count = nodes;
  dc.model = DeployModel::kForbiddenAreas;
  const double scale = std::sqrt(static_cast<double>(nodes) / 600.0);
  if (scale > 1.0) {
    dc.field = Rect::from_bounds({0.0, 0.0}, {200.0 * scale, 200.0 * scale});
    dc.min_forbidden_extent *= scale;
    dc.max_forbidden_extent *= scale;
    dc.forbidden_margin *= scale;
  }
  Rng rng(seed);
  Deployment dep = deploy(dc, rng);
  TaskPool pool(parallel_threads);

  auto start = std::chrono::steady_clock::now();
  UnitDiskGraph global(std::move(dep.positions), dep.radio_range, dep.field,
                       &pool);
  const double graph_seconds = seconds_since(start);
  report.textf("== Tile scaling: %d nodes (FA, %.0fm field), %d hardware "
               "threads ==\n\n",
               nodes, dep.field.width(), hardware);
  report.textf("global unit-disk graph: %.2fs (%zu links)\n", graph_seconds,
               global.edge_count());

  // One failure wave (0.5%% of the nodes) and one mobility epoch (every
  // node jitters within the halo slack's fast-path drift bound), fixed up
  // front so every grid sees the identical sequence.
  Rng wave_rng(seed ^ 0x7713);
  std::vector<NodeId> casualties;
  const std::size_t wave_size =
      std::max<std::size_t>(1, static_cast<std::size_t>(nodes) / 200);
  while (casualties.size() < wave_size) {
    NodeId u = static_cast<NodeId>(wave_rng.next_below(global.size()));
    if (std::find(casualties.begin(), casualties.end(), u) ==
        casualties.end()) {
      casualties.push_back(u);
    }
  }
  std::vector<Vec2> moved = global.positions();
  for (Vec2& p : moved) {
    p.x = std::clamp(p.x + wave_rng.uniform(-4.0, 4.0), dep.field.lo().x,
                     dep.field.hi().x);
    p.y = std::clamp(p.y + wave_rng.uniform(-4.0, 4.0), dep.field.lo().y,
                     dep.field.hi().y);
  }

  struct GridRun {
    int side = 0;
    int threads = 0;
    double build_seconds = 0.0;
    double label_seconds = 0.0;
    double failure_seconds = 0.0;
    double move_seconds = 0.0;
    ShardStats stats;
  };
  const int sides[] = {1, 2, 4};
  const int thread_counts[] = {1, parallel_threads};
  std::vector<GridRun> runs;
  // Per-stage reference labelings from the 1x1 serial run (the first).
  SafetyInfo ref_label, ref_failed, ref_moved;
  bool identical = true;

  for (int threads : thread_counts) {
    TaskPool run_pool(threads);
    for (int side : sides) {
      GridRun run;
      run.side = side;
      run.threads = threads;
      ShardedNetwork::Config config;
      config.tile_rows = side;
      config.tile_cols = side;
      start = std::chrono::steady_clock::now();
      ShardedNetwork sharded(global, /*edge_band=*/-1.0, config,
                             threads > 1 ? &run_pool : nullptr);
      run.build_seconds = seconds_since(start);
      start = std::chrono::steady_clock::now();
      const SafetyInfo& labeled = sharded.safety();
      run.label_seconds = seconds_since(start);
      if (runs.empty()) {
        ref_label = labeled;
      } else {
        identical &= labeled == ref_label;
      }
      start = std::chrono::steady_clock::now();
      sharded.apply_failures(casualties);
      run.failure_seconds = seconds_since(start);
      if (runs.empty()) {
        ref_failed = sharded.safety();
      } else {
        identical &= sharded.safety() == ref_failed;
      }
      start = std::chrono::steady_clock::now();
      sharded.apply_moves(moved);
      run.move_seconds = seconds_since(start);
      run.stats = sharded.last_stats();
      if (runs.empty()) {
        ref_moved = sharded.safety();
      } else {
        identical &= sharded.safety() == ref_moved;
      }
      runs.push_back(run);
    }
  }

  // Belt and braces under the 1x1-reference scheme: the initial labeling
  // must also equal the monolithic kernel's.
  {
    InterestArea area(global, global.range());
    identical &= ref_label == compute_safety(global, area, &pool);
  }

  Table table({"tiles", "threads", "build s", "label s", "failure s",
               "move s", "halo demotions", "exch rounds"});
  for (const GridRun& run : runs) {
    table.add_row({std::to_string(run.side) + "x" + std::to_string(run.side),
                   std::to_string(run.threads),
                   Table::fmt(run.build_seconds),
                   Table::fmt(run.label_seconds),
                   Table::fmt(run.failure_seconds),
                   Table::fmt(run.move_seconds),
                   std::to_string(run.stats.halo_demotions),
                   std::to_string(run.stats.exchange_rounds)});
  }
  report.add_table(std::move(table));
  report.textf("\nall grids and thread counts bit-identical (statuses and "
               "anchors, after labeling, failure wave and mobility epoch): "
               "%s\n",
               identical ? "yes" : "NO");

  for (const char* metric : {"label", "move"}) {
    ReportCurve curve;
    curve.title = std::string("tile scaling — ") + metric + " seconds";
    curve.x_label = "tiles";
    curve.y_label = "seconds";
    for (int threads : thread_counts) {
      ReportSeries series;
      series.label = std::to_string(threads) + " thread(s)";
      for (const GridRun& run : runs) {
        if (run.threads != threads) continue;
        series.points.emplace_back(
            static_cast<double>(run.side * run.side),
            std::strcmp(metric, "label") == 0 ? run.label_seconds
                                              : run.move_seconds);
      }
      curve.series.push_back(std::move(series));
    }
    report.curves.push_back(std::move(curve));
  }

  report.param("nodes", JsonValue::of(nodes));
  report.param("base_seed", JsonValue::of(seed));
  report.param("hardware_threads", JsonValue::of(hardware));
  report.param("parallel_threads", JsonValue::of(parallel_threads));
  report.param("graph_seconds", JsonValue::of(graph_seconds));
  report.param("wave_size", JsonValue::of(
                   static_cast<std::uint64_t>(casualties.size())));
  report.param("bit_identical", JsonValue::of(identical));
  JsonValue runs_json = JsonValue::array();
  for (const GridRun& run : runs) {
    JsonValue entry = JsonValue::object();
    entry.set("tiles", JsonValue::of(run.side * run.side));
    entry.set("threads", JsonValue::of(run.threads));
    entry.set("build_seconds", JsonValue::of(run.build_seconds));
    entry.set("label_seconds", JsonValue::of(run.label_seconds));
    entry.set("failure_seconds", JsonValue::of(run.failure_seconds));
    entry.set("move_seconds", JsonValue::of(run.move_seconds));
    entry.set("halo_demotions", JsonValue::of(
                  static_cast<std::uint64_t>(run.stats.halo_demotions)));
    entry.set("halo_raises", JsonValue::of(
                  static_cast<std::uint64_t>(run.stats.halo_raises)));
    entry.set("exchange_rounds", JsonValue::of(
                  static_cast<std::uint64_t>(run.stats.exchange_rounds)));
    runs_json.push(std::move(entry));
  }
  report.param("runs", std::move(runs_json));
  return identical ? 0 : 1;
}

/// Parallel-sweep scaling: the same sweep serial and parallel, verifying
/// bit-identical aggregates and reporting the wall-clock ratio plus the
/// construction / oracle / routing breakdown and the per-source oracle
/// saving over the per-pair search loop.
int run_sweep_scaling(const ScenarioOptions& opts, ScenarioReport& report) {
  SweepConfig config = figure_config(DeployModel::kIdeal, opts);
  if (opts.networks == 0) config.networks_per_point = 8;
  if (opts.pairs == 0) config.pairs_per_network = 6;
  config.node_counts = {400, 600, 800};
  int hardware = TaskPool::hardware_threads();
  int parallel_threads = opts.threads > 1 ? opts.threads : hardware;
  report.textf("== Sweep scaling: %zu points x %d networks x %d pairs, "
               "%d hardware threads ==\n\n",
               config.node_counts.size(), config.networks_per_point,
               config.pairs_per_network, hardware);

  config.threads = 1;
  auto start = std::chrono::steady_clock::now();
  SweepTimings serial_timings;
  auto serial = run_sweep(config, {}, &serial_timings);
  double serial_seconds = seconds_since(start);

  config.threads = parallel_threads;
  start = std::chrono::steady_clock::now();
  SweepTimings parallel_timings;
  auto parallel = run_sweep(config, {}, &parallel_timings);
  double parallel_seconds = seconds_since(start);

  bool identical = sweep_results_identical(serial, parallel);
  double speedup =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  report.textf("serial (threads=1):   %.2fs\n", serial_seconds);
  report.textf("parallel (threads=%d): %.2fs\n", parallel_threads,
               parallel_seconds);
  report.textf("speedup: %.2fx, aggregates bit-identical: %s\n", speedup,
               identical ? "yes" : "NO");
  // Cost breakdown (serial run: the parallel one sums worker wall-clocks).
  report.textf("serial breakdown: construction %.2fs, pair draw %.2fs, "
               "oracle %.2fs, routing %.2fs\n",
               serial_timings.construction_seconds,
               serial_timings.pair_draw_seconds,
               serial_timings.oracle_seconds, serial_timings.routing_seconds);
  std::uint64_t per_pair_searches = 2 * serial_timings.pairs_routed;
  std::uint64_t shared_searches =
      serial_timings.bfs_searches + serial_timings.dijkstra_searches;
  report.textf("oracle searches: %llu (vs %llu per-pair) for %llu pairs — "
               "one BFS + one Dijkstra per distinct source\n",
               static_cast<unsigned long long>(shared_searches),
               static_cast<unsigned long long>(per_pair_searches),
               static_cast<unsigned long long>(serial_timings.pairs_routed));
  if (serial_timings.pairs_routed < serial_timings.pairs_requested) {
    report.textf("pair shortfall: %llu of %llu requested pairs not drawn\n",
                 static_cast<unsigned long long>(
                     serial_timings.pairs_requested -
                     serial_timings.pairs_routed),
                 static_cast<unsigned long long>(
                     serial_timings.pairs_requested));
  }

  report.param("hardware_threads", JsonValue::of(hardware));
  report.param("parallel_threads", JsonValue::of(parallel_threads));
  report.param("serial_seconds", JsonValue::of(serial_seconds));
  report.param("parallel_seconds", JsonValue::of(parallel_seconds));
  report.param("speedup", JsonValue::of(speedup));
  report.param("bit_identical", JsonValue::of(identical));
  report.add_timings("serial_timings", serial_timings);
  report.add_timings("parallel_timings", parallel_timings);
  report.add_sweep(config, std::move(parallel), parallel_seconds);
  return identical ? 0 : 1;
}

}  // namespace

const char* model_name(DeployModel model) noexcept {
  return model == DeployModel::kIdeal ? "IA (uniform)" : "FA (forbidden areas)";
}

ScenarioOptions scenario_options_from_env() {
  ScenarioOptions opts;
  // Malformed and overflowing values already fall back inside env_int_or;
  // negative counts are meaningless, so they fall back to the defaults too.
  opts.networks = std::max(0, env_int_or("SPR_NETWORKS", 0));
  opts.pairs = std::max(0, env_int_or("SPR_PAIRS", 0));
  opts.seed = env_uint64_or("SPR_SEED", 0);
  opts.threads = std::max(0, env_int_or("SPR_THREADS", 0));
  auto env_string = [](const char* name) -> std::string {
    const char* raw = std::getenv(name);
    return raw != nullptr ? std::string(raw) : std::string();
  };
  opts.formats = env_string("SPR_FORMATS");
  opts.json_path = env_string("SPR_JSON");
  opts.csv_path = env_string("SPR_CSV");
  opts.svg_path = env_string("SPR_SVG");
  return opts;
}

void ScenarioSuite::add(Scenario scenario) {
  scenarios_.push_back(std::move(scenario));
}

const Scenario* ScenarioSuite::find(std::string_view name) const noexcept {
  for (const auto& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<std::string> ScenarioSuite::suggestions(
    std::string_view name) const {
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const auto& s : scenarios_) names.push_back(s.name);
  return near_matches(name, names);
}

namespace {

/// The sinks `options` selects, with per-scenario default paths for
/// formats requested without an explicit one.
std::vector<std::unique_ptr<ReportSink>> make_sinks(
    const ScenarioOptions& options, const std::string& scenario_name,
    std::string* error) {
  std::vector<ReportFormat> formats;
  if (!parse_report_formats(options.formats, formats, error)) return {};
  auto enabled = [&](ReportFormat f) {
    return std::find(formats.begin(), formats.end(), f) != formats.end();
  };
  // An empty list means console; an explicit output path enables its sink
  // either way (SPR_JSON / --json predate --format and keep working).
  if (formats.empty()) formats.push_back(ReportFormat::kConsole);
  if (!options.json_path.empty() && !enabled(ReportFormat::kJson)) {
    formats.push_back(ReportFormat::kJson);
  }
  if (!options.csv_path.empty() && !enabled(ReportFormat::kCsv)) {
    formats.push_back(ReportFormat::kCsv);
  }
  if (!options.svg_path.empty() && !enabled(ReportFormat::kSvg)) {
    formats.push_back(ReportFormat::kSvg);
  }

  std::vector<std::unique_ptr<ReportSink>> sinks;
  for (ReportFormat format : formats) {
    switch (format) {
      case ReportFormat::kConsole:
        sinks.push_back(std::make_unique<ConsoleSink>());
        break;
      case ReportFormat::kJson:
        sinks.push_back(std::make_unique<JsonSink>(
            !options.json_path.empty() ? options.json_path
                                       : scenario_name + ".json"));
        break;
      case ReportFormat::kCsv:
        sinks.push_back(std::make_unique<CsvSink>(
            !options.csv_path.empty() ? options.csv_path
                                      : scenario_name + ".csv"));
        break;
      case ReportFormat::kSvg:
        sinks.push_back(std::make_unique<SvgSink>(
            !options.svg_path.empty() ? options.svg_path
                                      : scenario_name + ".svg"));
        break;
    }
  }
  return sinks;
}

}  // namespace

int ScenarioSuite::run(std::string_view name,
                       const ScenarioOptions& options) const {
  const Scenario* scenario = find(name);
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%.*s'",
                 static_cast<int>(name.size()), name.data());
    auto near_matches = suggestions(name);
    if (!near_matches.empty()) {
      std::fprintf(stderr, "; did you mean:\n");
      for (const auto& s : near_matches) {
        std::fprintf(stderr, "  %s\n", s.c_str());
      }
      std::fprintf(stderr, "available:\n");
    } else {
      std::fprintf(stderr, "; available:\n");
    }
    for (const auto& s : scenarios_) {
      std::fprintf(stderr, "  %-18s %s\n", s.name.c_str(),
                   s.description.c_str());
    }
    return 2;
  }

  std::string sink_error;
  auto sinks = make_sinks(options, scenario->name, &sink_error);
  if (sinks.empty()) {
    std::fprintf(stderr, "%s\n", sink_error.c_str());
    return 2;
  }

  ScenarioReport report;
  report.scenario = scenario->name;
  int code = scenario->build(options, report);

  // An aborted report only carries its failure message in the console
  // blocks; if the user selected structured sinks only, route those blocks
  // to stderr so the failure isn't silent.
  auto is_console_sink = [](const std::unique_ptr<ReportSink>& sink) {
    return std::string_view(sink->name()) == "console";
  };
  if (report.aborted &&
      std::none_of(sinks.begin(), sinks.end(), is_console_sink)) {
    ConsoleSink(stderr).emit(report);
  }

  for (const auto& sink : sinks) {
    // The console stream always prints (it carries the scenario's own
    // failure messages); structured sinks skip aborted half-built reports.
    bool is_console = is_console_sink(sink);
    if (report.aborted && !is_console) continue;
    if (!sink->emit(report)) {
      std::string destination = sink->destination();
      std::fprintf(stderr, "cannot write %s\n",
                   destination.empty() ? sink->name() : destination.c_str());
      if (code == 0) code = 1;
    }
  }
  return code;
}

ScenarioSuite& ScenarioSuite::builtin() {
  static ScenarioSuite suite = [] {
    ScenarioSuite s;
    s.add({"fig5-max-hops",
           "paper Fig. 5: maximum hops per scheme, IA + FA models",
           [](const ScenarioOptions& o, ScenarioReport& r) {
             r.textf("== Fig. 5: maximum number of hops of a GF, LGF, "
                     "SLGF, SLGF2 routing ==\n\n");
             return run_figure(
                 o, "Fig. 5", "max hops",
                 [](const RouteAggregate& agg) { return agg.max_hops(); }, 0,
                 r);
           }});
    s.add({"fig6-avg-hops",
           "paper Fig. 6: average hops per scheme, IA + FA models",
           [](const ScenarioOptions& o, ScenarioReport& r) {
             r.textf("== Fig. 6: average number of hops of a GF, LGF, "
                     "SLGF, SLGF2 routing ==\n\n");
             return run_figure(
                 o, "Fig. 6", "avg hops",
                 [](const RouteAggregate& agg) { return agg.hops.mean(); }, 2,
                 r);
           }});
    s.add({"fig7-path-length",
           "paper Fig. 7: average path length per scheme, IA + FA models",
           [](const ScenarioOptions& o, ScenarioReport& r) {
             r.textf("== Fig. 7: average length of a GF, LGF, SLGF, SLGF2 "
                     "routing ==\n\n");
             return run_figure(
                 o, "Fig. 7", "avg path length (m)",
                 [](const RouteAggregate& agg) { return agg.length.mean(); },
                 1, r);
           }});
    s.add({"ablation", "SLGF2 mechanism ablation (FA model)", run_ablation});
    s.add({"hole-field",
           "unsafe-labeling share and per-scheme delivery on large holes",
           run_hole_field});
    s.add({"failure-dynamics",
           "node-failure blast: incremental relabeling + delivery before/after",
           run_failure_dynamics});
    s.add({"mobile-stream",
           "SLGF2 stream across random-waypoint mobility epochs",
           run_mobile_stream});
    s.add({"streaming-delivery",
           "discrete-event packet streams with mid-stream failure waves and "
           "incremental relabeling",
           run_streaming_delivery});
    s.add({"mobility-rate",
           "re-pin interval x speed sweep: incremental with_moves relabeling "
           "under random-waypoint motion",
           run_mobility_rate});
    s.add({"sweep-scaling",
           "parallel vs serial sweep: wall-clock ratio + bit-identical check",
           run_sweep_scaling});
    s.add({"tile-scaling",
           "spatial-tile labeling + failure wave + mobility epoch across "
           "tile grids x threads: timing curve + bit-identity gate",
           run_tile_scaling});
    return s;
  }();
  return suite;
}

bool sweep_results_identical(const std::vector<SweepPoint>& a,
                             const std::vector<SweepPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].node_count != b[i].node_count) return false;
    if (a[i].by_scheme.size() != b[i].by_scheme.size()) return false;
    for (const auto& [label, agg] : a[i].by_scheme) {
      auto it = b[i].by_scheme.find(label);
      if (it == b[i].by_scheme.end()) return false;
      if (!aggregates_identical(agg, it->second)) return false;
    }
  }
  return true;
}

}  // namespace spr
