#include "core/network.h"

#include "graph/graph_algos.h"
#include "routing/gf.h"
#include "routing/lgf.h"
#include "routing/slgf.h"

namespace spr {

const char* scheme_name(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::kGf: return "GF";
    case Scheme::kGfFace: return "GF/face";
    case Scheme::kLgf: return "LGF";
    case Scheme::kSlgf: return "SLGF";
    case Scheme::kSlgf2: return "SLGF2";
  }
  return "?";
}

Network Network::create(const NetworkConfig& config) {
  Rng rng(config.seed);
  Deployment d = deploy(config.deployment, rng);
  return Network(std::move(d), config.edge_band);
}

Network::Network(Deployment deployment, double edge_band)
    : deployment_(std::move(deployment)) {
  double band = edge_band < 0.0 ? deployment_.radio_range : edge_band;
  graph_ = std::make_unique<UnitDiskGraph>(deployment_.positions,
                                           deployment_.radio_range,
                                           deployment_.field);
  interest_area_ = std::make_unique<InterestArea>(*graph_, band);
  safety_ = compute_safety(*graph_, *interest_area_);
  overlay_ = std::make_unique<PlanarOverlay>(*graph_, PlanarOverlay::Kind::kGabriel);
  boundhole_ = std::make_unique<BoundHoleInfo>(*graph_);
}

std::unique_ptr<Router> Network::make_router(Scheme scheme,
                                             Slgf2Options slgf2_options) const {
  switch (scheme) {
    case Scheme::kGf:
      return std::make_unique<GfRouter>(*graph_, *overlay_, boundhole_.get(),
                                        GfRouter::Recovery::kBoundHole);
    case Scheme::kGfFace:
      return std::make_unique<GfRouter>(*graph_, *overlay_, nullptr,
                                        GfRouter::Recovery::kFace);
    case Scheme::kLgf:
      return std::make_unique<LgfRouter>(*graph_);
    case Scheme::kSlgf:
      return std::make_unique<SlgfRouter>(*graph_, safety_);
    case Scheme::kSlgf2:
      return std::make_unique<Slgf2Router>(*graph_, safety_, slgf2_options);
  }
  return nullptr;
}

std::pair<NodeId, NodeId> Network::random_interior_pair(Rng& rng) const {
  const auto& interior = interest_area_->interior_nodes();
  if (interior.size() < 2) return {kInvalidNode, kInvalidNode};
  NodeId s = interior[rng.next_below(interior.size())];
  NodeId d = s;
  while (d == s) d = interior[rng.next_below(interior.size())];
  return {s, d};
}

std::pair<NodeId, NodeId> Network::random_connected_interior_pair(
    Rng& rng, int max_tries) const {
  std::pair<NodeId, NodeId> pair{kInvalidNode, kInvalidNode};
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    pair = random_interior_pair(rng);
    if (pair.first == kInvalidNode) return pair;
    if (connected(*graph_, pair.first, pair.second)) return pair;
  }
  return pair;
}

}  // namespace spr
