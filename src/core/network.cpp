#include "core/network.h"

#include "graph/graph_algos.h"
#include "routing/gf.h"
#include "routing/lgf.h"
#include "routing/slgf.h"

namespace spr {

const char* scheme_name(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::kGf: return "GF";
    case Scheme::kGfFace: return "GF/face";
    case Scheme::kLgf: return "LGF";
    case Scheme::kSlgf: return "SLGF";
    case Scheme::kSlgf2: return "SLGF2";
  }
  return "?";
}

unsigned Network::needs_for(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::kGf: return kNeedsNone;  // recovery structures resolve lazily
    case Scheme::kGfFace: return kNeedsOverlay;
    case Scheme::kLgf: return kNeedsNone;
    case Scheme::kSlgf: return kNeedsSafety;
    case Scheme::kSlgf2: return kNeedsSafety;
  }
  return kNeedsNone;
}

Network Network::create(const NetworkConfig& config) {
  Rng rng(config.seed);
  Deployment d = deploy(config.deployment, rng);
  return Network(std::move(d), config.edge_band, config.build_pool);
}

Network::Network(Deployment deployment, double edge_band, TaskPool* build_pool)
    : deployment_(std::move(deployment)),
      build_pool_(build_pool),
      lazy_(std::make_unique<LazyState>()) {
  band_ = edge_band < 0.0 ? deployment_.radio_range : edge_band;
  graph_ = std::make_unique<UnitDiskGraph>(deployment_.positions,
                                           deployment_.radio_range,
                                           deployment_.field, build_pool_);
  interest_area_ = std::make_unique<InterestArea>(*graph_, band_);
}

Network::Network(DerivedTag, const Network& base, UnitDiskGraph graph)
    : deployment_(base.deployment_),
      build_pool_(base.build_pool_),
      band_(base.band_),
      lazy_(std::make_unique<LazyState>()) {
  graph_ = std::make_unique<UnitDiskGraph>(std::move(graph));
  // Moved siblings carry new coordinates; keep the deployment in sync (a
  // no-op copy for failure siblings, whose positions are identical).
  deployment_.positions = graph_->positions();
  interest_area_ = std::make_unique<InterestArea>(*graph_, band_);
}

Network Network::with_failures(const std::vector<NodeId>& failed,
                               IncrementalStats* stats) const {
  Network degraded(DerivedTag{}, *this, graph_->with_failures(failed, build_pool_));
  if (stats != nullptr) *stats = IncrementalStats{};
  if (has_safety()) {
    // Continue the old fixpoint instead of recomputing it: failures only
    // remove safe-neighbor support (monotone 1 -> 0), so the incremental
    // worklist seeded from the failed nodes' neighborhoods reaches exactly
    // the labeling compute_safety would produce on the degraded graph.
    auto info = std::make_unique<SafetyInfo>(*lazy_->safety);
    IncrementalStats update = update_safety_after_failures(
        *degraded.graph_, *degraded.interest_area_, failed, *info,
        build_pool_);
    if (stats != nullptr) *stats = update;
    std::call_once(degraded.lazy_->safety_once, [&] {
      degraded.lazy_->safety = std::move(info);
      degraded.lazy_->safety_built.store(true, std::memory_order_release);
    });
  }
  return degraded;
}

Network Network::with_moves(const std::vector<Vec2>& positions,
                            IncrementalStats* stats, EdgeDiff* diff) const {
  Network moved(DerivedTag{}, *this,
                graph_->with_moves(positions, diff, build_pool_));
  if (stats != nullptr) *stats = IncrementalStats{};
  if (has_safety()) {
    // Continue the old fixpoint through the bidirectional updater instead
    // of recomputing it: removals demote from the move frontier, additions
    // promote by re-raising the touched unsafe clusters, and the demotion
    // worklist closes onto exactly the labeling compute_safety would
    // produce on the moved graph.
    auto info = std::make_unique<SafetyInfo>(*lazy_->safety);
    IncrementalStats update = update_safety_after_moves(
        *graph_, *interest_area_, *moved.graph_, *moved.interest_area_, *info,
        build_pool_);
    if (stats != nullptr) *stats = update;
    std::call_once(moved.lazy_->safety_once, [&] {
      moved.lazy_->safety = std::move(info);
      moved.lazy_->safety_built.store(true, std::memory_order_release);
    });
  }
  return moved;
}

bool Network::adopt_safety(SafetyInfo info) const {
  bool installed = false;
  std::call_once(lazy_->safety_once, [&] {
    lazy_->safety = std::make_unique<SafetyInfo>(std::move(info));
    lazy_->safety_built.store(true, std::memory_order_release);
    installed = true;
  });
  return installed;
}

const SafetyInfo& Network::safety() const {
  std::call_once(lazy_->safety_once, [this] {
    lazy_->safety = std::make_unique<SafetyInfo>(
        compute_safety(*graph_, *interest_area_, build_pool_));
    lazy_->safety_built.store(true, std::memory_order_release);
  });
  return *lazy_->safety;
}

const PlanarOverlay& Network::overlay() const {
  std::call_once(lazy_->overlay_once, [this] {
    lazy_->overlay =
        std::make_unique<PlanarOverlay>(*graph_, PlanarOverlay::Kind::kGabriel);
    lazy_->overlay_built.store(true, std::memory_order_release);
  });
  return *lazy_->overlay;
}

const BoundHoleInfo& Network::boundhole() const {
  std::call_once(lazy_->boundhole_once, [this] {
    lazy_->boundhole = std::make_unique<BoundHoleInfo>(*graph_);
    lazy_->boundhole_built.store(true, std::memory_order_release);
  });
  return *lazy_->boundhole;
}

bool Network::has_safety() const noexcept {
  return lazy_->safety_built.load(std::memory_order_acquire);
}

bool Network::has_overlay() const noexcept {
  return lazy_->overlay_built.load(std::memory_order_acquire);
}

bool Network::has_boundhole() const noexcept {
  return lazy_->boundhole_built.load(std::memory_order_acquire);
}

void Network::force(unsigned needs) const {
  if (needs & kNeedsSafety) safety();
  if (needs & kNeedsOverlay) overlay();
  if (needs & kNeedsBoundhole) boundhole();
}

std::unique_ptr<Router> Network::make_router(Scheme scheme,
                                             Slgf2Options slgf2_options) const {
  force(needs_for(scheme));
  switch (scheme) {
    case Scheme::kGf:
      // Lazy recovery: the overlay/BOUNDHOLE build only if a packet actually
      // gets stuck, so pure-greedy traffic constructs neither.
      return std::make_unique<GfRouter>(
          *graph_, [this]() -> const PlanarOverlay& { return overlay(); },
          [this]() -> const BoundHoleInfo* { return &boundhole(); },
          GfRouter::Recovery::kBoundHole);
    case Scheme::kGfFace:
      return std::make_unique<GfRouter>(*graph_, overlay(), nullptr,
                                        GfRouter::Recovery::kFace);
    case Scheme::kLgf:
      return std::make_unique<LgfRouter>(*graph_);
    case Scheme::kSlgf:
      return std::make_unique<SlgfRouter>(*graph_, safety());
    case Scheme::kSlgf2:
      return std::make_unique<Slgf2Router>(*graph_, safety(), slgf2_options);
  }
  return nullptr;
}

std::pair<NodeId, NodeId> Network::random_interior_pair(Rng& rng) const {
  const auto& interior = interest_area_->interior_nodes();
  if (interior.size() < 2) return {kInvalidNode, kInvalidNode};
  NodeId s = interior[rng.next_below(interior.size())];
  NodeId d = s;
  while (d == s) d = interior[rng.next_below(interior.size())];
  return {s, d};
}

std::pair<NodeId, NodeId> Network::random_connected_interior_pair(
    Rng& rng, int max_tries) const {
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    auto pair = random_interior_pair(rng);
    if (pair.first == kInvalidNode) return pair;
    if (connected(*graph_, pair.first, pair.second)) return pair;
  }
  // No connected pair within budget: report failure rather than handing
  // back the last (disconnected) sample — routing a known-hopeless pair
  // would bias delivery metrics while the pair-shortfall accounting shows
  // a full sample.
  return {kInvalidNode, kInvalidNode};
}

}  // namespace spr
