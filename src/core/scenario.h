#pragma once

/// \file scenario.h
/// ScenarioSuite: the shared runner behind the figure benches, the CLI and
/// CI. A scenario is a named, parameterized experiment (a paper figure, a
/// hole-field study, failure dynamics, a mobile stream, the parallel-sweep
/// scaling check). Scenarios don't print: each builds a typed
/// ScenarioReport (report/report.h) and the suite renders it through the
/// selected ReportSink backends (report/sink.h) — console tables by
/// default, plus JSON / CSV / SVG when requested via
/// `ScenarioOptions::formats` (`--format`, `SPR_FORMATS`) or an explicit
/// output path.
///
/// Trade-off of the report model: the console stream renders after the
/// scenario completes, so a paper-scale sweep prints nothing while it
/// runs (the old printf path streamed per model). Pass smaller
/// `networks`/`pairs` for interactive runs, or watch the JSON/CSV
/// artifacts.
///
///   spr::ScenarioOptions opts = spr::scenario_options_from_env();
///   return spr::ScenarioSuite::builtin().run("fig6-avg-hops", opts);

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.h"
#include "report/report.h"
#include "report/sink.h"

namespace spr {

/// Cross-scenario knobs. Zero / empty means "use the scenario's default".
struct ScenarioOptions {
  int networks = 0;        ///< networks per sweep point
  int pairs = 0;           ///< pairs per network
  std::uint64_t seed = 0;  ///< base seed
  int threads = 0;         ///< sweep threads: 0 = hardware, 1 = serial
  /// Comma-separated sink selection ("console,json,csv,svg"). Empty means
  /// console, plus any sink whose explicit path below is set.
  std::string formats;
  std::string json_path;  ///< non-empty: write the JSON report here
  std::string csv_path;   ///< non-empty: write CSV table exports here
  std::string svg_path;   ///< non-empty: write the SVG sweep plot here
};

/// Options from the environment: SPR_NETWORKS, SPR_PAIRS, SPR_SEED,
/// SPR_THREADS, SPR_FORMATS, SPR_JSON, SPR_CSV, SPR_SVG. Unset variables
/// leave the scenario defaults; malformed, negative or overflowing numbers
/// fall back to the defaults too (never UB, never silent garbage).
ScenarioOptions scenario_options_from_env();

/// One registered scenario. `build` fills the report and returns a process
/// exit code; it must not print (the suite renders the report through the
/// selected sinks afterwards).
struct Scenario {
  std::string name;
  std::string description;
  std::function<int(const ScenarioOptions&, ScenarioReport&)> build;
};

/// A registry of scenarios, looked up by name.
class ScenarioSuite {
 public:
  /// The process-wide suite with every built-in scenario registered
  /// (paper figures, ablation, hole-field, failure-dynamics, mobile-stream,
  /// sweep-scaling).
  static ScenarioSuite& builtin();

  void add(Scenario scenario);
  const Scenario* find(std::string_view name) const noexcept;
  const std::vector<Scenario>& scenarios() const noexcept {
    return scenarios_;
  }

  /// Registered names close to `name` (prefix or small edit distance),
  /// best match first — the "did you mean" list behind run()'s unknown-name
  /// message.
  std::vector<std::string> suggestions(std::string_view name) const;

  /// Runs the named scenario and renders its report through the sinks
  /// `options` selects; 2 (plus a message with near-match suggestions to
  /// stderr) when the name is unknown, 1 when a sink cannot write its
  /// output.
  int run(std::string_view name, const ScenarioOptions& options = {}) const;

 private:
  std::vector<Scenario> scenarios_;
};

/// Extracts the number a figure plots from one (scheme, point) aggregate.
using MetricFn = std::function<double(const RouteAggregate&)>;

/// Display name of a deployment model ("IA (uniform)" / "FA (forbidden
/// areas)"), shared by the scenarios and the benches.
const char* model_name(DeployModel model) noexcept;

/// Exact equality of two sweep results (bitwise on every summary moment);
/// the determinism check behind the sweep-scaling scenario, the shard
/// merge acceptance tests, and the parallel-sweep tests.
bool sweep_results_identical(const std::vector<SweepPoint>& a,
                             const std::vector<SweepPoint>& b);

}  // namespace spr
