#pragma once

/// \file scenario.h
/// ScenarioSuite: the shared runner behind the figure benches, the CLI and
/// CI. A scenario is a named, parameterized experiment (a paper figure, a
/// hole-field study, failure dynamics, a mobile stream, the parallel-sweep
/// scaling check); every scenario prints its human-readable tables and,
/// when `ScenarioOptions::json_path` is set, also emits a machine-readable
/// JSON report — the artifact CI uploads.
///
///   spr::ScenarioOptions opts = spr::scenario_options_from_env();
///   return spr::ScenarioSuite::builtin().run("fig6-avg-hops", opts);

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.h"
#include "util/json.h"

namespace spr {

/// Cross-scenario knobs. Zero / empty means "use the scenario's default".
struct ScenarioOptions {
  int networks = 0;        ///< networks per sweep point
  int pairs = 0;           ///< pairs per network
  std::uint64_t seed = 0;  ///< base seed
  int threads = 0;         ///< sweep threads: 0 = hardware, 1 = serial
  std::string json_path;   ///< non-empty: also write a JSON report here
};

/// Options from the environment: SPR_NETWORKS, SPR_PAIRS, SPR_SEED,
/// SPR_THREADS, SPR_JSON. Unset variables leave the scenario defaults.
ScenarioOptions scenario_options_from_env();

/// One registered scenario. `run` returns a process exit code.
struct Scenario {
  std::string name;
  std::string description;
  std::function<int(const ScenarioOptions&)> run;
};

/// A registry of scenarios, looked up by name.
class ScenarioSuite {
 public:
  /// The process-wide suite with every built-in scenario registered
  /// (paper figures, ablation, hole-field, failure-dynamics, mobile-stream,
  /// sweep-scaling).
  static ScenarioSuite& builtin();

  void add(Scenario scenario);
  const Scenario* find(std::string_view name) const noexcept;
  const std::vector<Scenario>& scenarios() const noexcept {
    return scenarios_;
  }

  /// Runs the named scenario; 2 (plus a message to stderr) when unknown.
  int run(std::string_view name, const ScenarioOptions& options = {}) const;

 private:
  std::vector<Scenario> scenarios_;
};

/// Extracts the number a figure plots from one (scheme, point) aggregate.
using MetricFn = std::function<double(const RouteAggregate&)>;

/// Display name of a deployment model ("IA (uniform)" / "FA (forbidden
/// areas)"), shared by the scenarios and the benches.
const char* model_name(DeployModel model) noexcept;

/// Serializes one sweep's aggregates under the writer's current container
/// position (emits an object). Shared by scenarios, benches and tests.
void sweep_points_to_json(JsonWriter& w, const SweepConfig& config,
                          const std::vector<SweepPoint>& points,
                          double wall_seconds);

/// Exact equality of two sweep results (bitwise on every summary moment);
/// the determinism check behind the sweep-scaling scenario and tests.
bool sweep_results_identical(const std::vector<SweepPoint>& a,
                             const std::vector<SweepPoint>& b);

}  // namespace spr
