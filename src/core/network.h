#pragma once

/// \file network.h
/// The top-level facade: one deployed WASN with the structures the routers
/// need (unit-disk adjacency, interest area, safety information, planar
/// overlay, BOUNDHOLE boundaries) and a router factory.
///
/// Construction is two-tier. The *core* — deployment, unit-disk graph and
/// interest area — is built eagerly; everything routers may or may not need
/// (safety labeling, planar overlay, BOUNDHOLE) is *lazy*: memoized on first
/// access behind std::call_once, so concurrent sweep workers can share a
/// network safely and a scheme only ever pays for the structures it uses.
/// `make_router` forces exactly `needs_for(scheme)`; GF wires the network's
/// lazy accessors into the router so even its recovery structures are built
/// only if a packet actually hits a local minimum.
///
/// Typical use:
///
///   spr::NetworkConfig config;
///   config.deployment.node_count = 600;
///   config.seed = 42;
///   spr::Network net = spr::Network::create(config);
///   auto router = net.make_router(spr::Scheme::kSlgf2);
///   auto [s, d] = net.random_connected_interior_pair(rng);
///   spr::PathResult r = router->route(s, d);

#include <atomic>
#include <memory>
#include <mutex>
#include <utility>

#include "deploy/deployment.h"
#include "deploy/interest_area.h"
#include "graph/planar.h"
#include "graph/unit_disk.h"
#include "routing/boundhole.h"
#include "routing/router.h"
#include "routing/slgf2.h"
#include "safety/incremental.h"
#include "safety/labeling.h"

namespace spr {

/// The routing schemes of the paper's evaluation (Figs. 5-7) plus the pure
/// face-routing GF variant.
enum class Scheme { kGf, kGfFace, kLgf, kSlgf, kSlgf2 };

/// Scheme display name ("GF", "LGF", "SLGF", "SLGF2", "GF/face").
const char* scheme_name(Scheme scheme) noexcept;

/// Parameters for drawing a network.
struct NetworkConfig {
  DeploymentConfig deployment;
  std::uint64_t seed = 1;
  /// Edge-node band around the hull; negative means one radio range.
  double edge_band = -1.0;
  /// Non-owning pool for *within-network* build parallelism: unit-disk
  /// adjacency and the safety-labeling initialization fan out over it with
  /// deterministic (node-id-ordered) merges, so the network is bit-identical
  /// for every thread count. Must outlive the Network (lazy structures may
  /// build late). Leave null when networks are themselves built on pool
  /// workers (the sweep cells do) — nesting would deadlock the pool.
  TaskPool* build_pool = nullptr;
};

/// One concrete network. Derived structures build on demand (see file
/// comment); accessors hand out stable references — the memoized objects
/// live until the network is destroyed.
class Network {
 public:
  /// Which derived structures a consumer requires (bitmask).
  enum Needs : unsigned {
    kNeedsNone = 0,
    kNeedsSafety = 1u << 0,     ///< safety labeling (SLGF/SLGF2)
    kNeedsOverlay = 1u << 1,    ///< planar overlay (face recovery)
    kNeedsBoundhole = 1u << 2,  ///< BOUNDHOLE boundaries (GF recovery)
  };

  /// The structures `make_router(scheme)` forces eagerly. GF resolves its
  /// recovery structures lazily, so it reports kNeedsNone here.
  static unsigned needs_for(Scheme scheme) noexcept;

  /// Draws a deployment from `config` and builds the core (graph + interest
  /// area). Derived structures stay unbuilt until accessed.
  static Network create(const NetworkConfig& config);

  /// Builds from an existing deployment (e.g. hand-crafted in tests).
  explicit Network(Deployment deployment, double edge_band = -1.0,
                   TaskPool* build_pool = nullptr);

  const Deployment& deployment() const noexcept { return deployment_; }
  const UnitDiskGraph& graph() const noexcept { return *graph_; }
  const InterestArea& interest_area() const noexcept { return *interest_area_; }

  /// The resolved edge-node band (meters) this network was built with —
  /// what a caller rebuilding a sibling snapshot (e.g. a mobility re-pin)
  /// passes as `edge_band` to reproduce the same interest area.
  double edge_band() const noexcept { return band_; }

  /// Lazy, memoized, thread-safe: built on first call, then cached.
  const SafetyInfo& safety() const;

  /// Installs an externally-computed safety labeling (`info.size()` must be
  /// `graph().size()`) so `safety()` returns it instead of building one —
  /// the spatial-tile sweep path injects the halo-exchanged labeling here,
  /// which is bit-identical to what `safety()` would compute (the tile
  /// layer's invariance contract). No-op if the labeling was already built
  /// or adopted; returns whether `info` was installed.
  bool adopt_safety(SafetyInfo info) const;
  const PlanarOverlay& overlay() const;
  const BoundHoleInfo& boundhole() const;

  /// Whether the corresponding lazy structure has been built (observation
  /// only — never triggers a build). Used by tests and cost accounting.
  bool has_safety() const noexcept;
  bool has_overlay() const noexcept;
  bool has_boundhole() const noexcept;

  /// Builds the requested structures now (bitwise-or of Needs). Useful to
  /// front-load construction cost before timing-sensitive routing.
  void force(unsigned needs) const;

  /// Instantiates a router bound to this network's structures, forcing only
  /// `needs_for(scheme)`. The network must outlive the router.
  /// `slgf2_options` applies to kSlgf2 only.
  std::unique_ptr<Router> make_router(Scheme scheme,
                                      Slgf2Options slgf2_options = {}) const;

  /// A degraded copy of this network: `failed` nodes marked dead (positions
  /// kept, edges removed — UnitDiskGraph::with_failures, sharing the
  /// spatial grid) and the interest area recomputed over the degraded
  /// graph. If this network's safety labeling has been built, the copy's
  /// labeling is derived from it by the *incremental* updater
  /// (update_safety_after_failures) instead of a from-scratch
  /// compute_safety — identical statuses and anchors (tests enforce
  /// equality with the from-scratch fixpoint) while touching only the
  /// failures' neighborhood; `stats`, when non-null, receives what the
  /// update touched (zeroed when the labeling was never built and so stays
  /// lazy). Failure waves chain: calling with_failures on an
  /// already-degraded network applies the next wave the same way. The
  /// planar overlay and BOUNDHOLE structures stay lazy in the copy.
  Network with_failures(const std::vector<NodeId>& failed,
                        IncrementalStats* stats = nullptr) const;

  /// A moved copy of this network: the same node set at `positions`
  /// (`positions.size()` must equal `graph().size()`), built incrementally —
  /// the spatial grid is relocated and the adjacency patched from the edge
  /// delta (`UnitDiskGraph::with_moves`) instead of rebuilt, prior
  /// casualties stay dead, and the edge band carries over (the interest
  /// area itself is re-derived: the hull moves with the nodes). If this
  /// network's safety labeling has been built, the copy's labeling
  /// *continues* from it through the bidirectional updater
  /// (update_safety_after_moves): removals demote, additions promote, and
  /// the result equals a from-scratch compute_safety on the moved graph —
  /// statuses and anchors (tests enforce equality at every re-pin epoch).
  /// `stats`, when non-null, receives what the update touched (zeroed when
  /// the labeling was never built and so stays lazy); `diff`, when
  /// non-null, receives the added/removed unit-disk edges. Moves and
  /// failure waves chain in any order.
  Network with_moves(const std::vector<Vec2>& positions,
                     IncrementalStats* stats = nullptr,
                     EdgeDiff* diff = nullptr) const;

  /// Uniformly random interior source/destination pair, s != d.
  std::pair<NodeId, NodeId> random_interior_pair(Rng& rng) const;

  /// As above, resampled (up to `max_tries`) until the pair is connected in
  /// the unit-disk graph; {kInvalidNode, kInvalidNode} when none is found
  /// (callers must check — the sweep counts it as a pair shortfall).
  std::pair<NodeId, NodeId> random_connected_interior_pair(
      Rng& rng, int max_tries = 64) const;

 private:
  /// Tag-dispatched constructor behind with_failures: adopts a pre-built
  /// (degraded) graph instead of building one from the deployment.
  struct DerivedTag {};
  Network(DerivedTag, const Network& base, UnitDiskGraph graph);

  /// Heap-allocated so Network stays movable (std::once_flag is not).
  /// The `*_built` flags let has_*() observe without racing the builders.
  struct LazyState {
    std::once_flag safety_once, overlay_once, boundhole_once;
    std::unique_ptr<SafetyInfo> safety;
    std::unique_ptr<PlanarOverlay> overlay;
    std::unique_ptr<BoundHoleInfo> boundhole;
    std::atomic<bool> safety_built{false};
    std::atomic<bool> overlay_built{false};
    std::atomic<bool> boundhole_built{false};
  };

  Deployment deployment_;
  TaskPool* build_pool_ = nullptr;  ///< non-owning; see NetworkConfig
  double band_ = 0.0;               ///< resolved edge band (meters)
  std::unique_ptr<UnitDiskGraph> graph_;
  std::unique_ptr<InterestArea> interest_area_;
  std::unique_ptr<LazyState> lazy_;
};

}  // namespace spr
