#pragma once

/// \file network.h
/// The top-level facade: one deployed WASN with every precomputed structure
/// the routers need (unit-disk adjacency, interest area, safety information,
/// planar overlay, BOUNDHOLE boundaries) and a router factory.
///
/// Typical use:
///
///   spr::NetworkConfig config;
///   config.deployment.node_count = 600;
///   config.seed = 42;
///   spr::Network net = spr::Network::create(config);
///   auto router = net.make_router(spr::Scheme::kSlgf2);
///   auto [s, d] = net.random_connected_interior_pair(rng);
///   spr::PathResult r = router->route(s, d);

#include <memory>
#include <utility>

#include "deploy/deployment.h"
#include "deploy/interest_area.h"
#include "graph/planar.h"
#include "graph/unit_disk.h"
#include "routing/boundhole.h"
#include "routing/router.h"
#include "routing/slgf2.h"
#include "safety/labeling.h"

namespace spr {

/// The routing schemes of the paper's evaluation (Figs. 5-7) plus the pure
/// face-routing GF variant.
enum class Scheme { kGf, kGfFace, kLgf, kSlgf, kSlgf2 };

/// Scheme display name ("GF", "LGF", "SLGF", "SLGF2", "GF/face").
const char* scheme_name(Scheme scheme) noexcept;

/// Parameters for drawing a network.
struct NetworkConfig {
  DeploymentConfig deployment;
  std::uint64_t seed = 1;
  /// Edge-node band around the hull; negative means one radio range.
  double edge_band = -1.0;
};

/// One concrete network with all derived structures.
class Network {
 public:
  /// Draws a deployment from `config` and builds everything.
  static Network create(const NetworkConfig& config);

  /// Builds from an existing deployment (e.g. hand-crafted in tests).
  explicit Network(Deployment deployment, double edge_band = -1.0);

  const Deployment& deployment() const noexcept { return deployment_; }
  const UnitDiskGraph& graph() const noexcept { return *graph_; }
  const InterestArea& interest_area() const noexcept { return *interest_area_; }
  const SafetyInfo& safety() const noexcept { return safety_; }
  const PlanarOverlay& overlay() const noexcept { return *overlay_; }
  const BoundHoleInfo& boundhole() const noexcept { return *boundhole_; }

  /// Instantiates a router bound to this network's structures. The network
  /// must outlive the router. `slgf2_options` applies to kSlgf2 only.
  std::unique_ptr<Router> make_router(Scheme scheme,
                                      Slgf2Options slgf2_options = {}) const;

  /// Uniformly random interior source/destination pair, s != d.
  std::pair<NodeId, NodeId> random_interior_pair(Rng& rng) const;

  /// As above, resampled (up to `max_tries`) until the pair is connected in
  /// the unit-disk graph; falls back to the last sample when none is found.
  std::pair<NodeId, NodeId> random_connected_interior_pair(
      Rng& rng, int max_tries = 64) const;

 private:
  Deployment deployment_;
  std::unique_ptr<UnitDiskGraph> graph_;
  std::unique_ptr<InterestArea> interest_area_;
  SafetyInfo safety_;
  std::unique_ptr<PlanarOverlay> overlay_;
  std::unique_ptr<BoundHoleInfo> boundhole_;
};

}  // namespace spr
