#include "deploy/deployment.h"

#include <algorithm>
#include <cmath>

#include "geometry/angle.h"

namespace spr {

bool Deployment::in_forbidden_area(Vec2 p) const noexcept {
  for (const Polygon& area : forbidden_areas) {
    if (area.contains(p)) return true;
  }
  return false;
}

namespace {

Polygon random_forbidden_polygon(const DeploymentConfig& config, Rng& rng) {
  Rect inner = config.field.inflated(-config.forbidden_margin);
  Vec2 center{rng.uniform(inner.lo().x, inner.hi().x),
              rng.uniform(inner.lo().y, inner.hi().y)};
  double extent = rng.uniform(config.min_forbidden_extent,
                              config.max_forbidden_extent);
  if (rng.chance(config.irregular_fraction)) {
    // Star-shaped irregular polygon: random radii around the center.
    int sides = rng.uniform_int(5, 9);
    std::vector<Vec2> vs;
    vs.reserve(static_cast<size_t>(sides));
    for (int i = 0; i < sides; ++i) {
      double angle = kTwoPi * i / sides;
      double radius = 0.5 * extent * rng.uniform(0.55, 1.0);
      vs.push_back({center.x + radius * std::cos(angle),
                    center.y + radius * std::sin(angle)});
    }
    return Polygon(std::move(vs));
  }
  double w = extent * rng.uniform(0.6, 1.0);
  double h = extent * rng.uniform(0.6, 1.0);
  return Polygon::from_rect(
      Rect::from_corners({center.x - w / 2, center.y - h / 2},
                         {center.x + w / 2, center.y + h / 2}));
}

}  // namespace

Deployment deploy(const DeploymentConfig& config, Rng& rng) {
  Deployment out;
  out.field = config.field;
  out.radio_range = config.radio_range;

  if (config.model == DeployModel::kForbiddenAreas) {
    int count = rng.uniform_int(config.min_forbidden_areas,
                                config.max_forbidden_areas);
    out.forbidden_areas.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
      out.forbidden_areas.push_back(random_forbidden_polygon(config, rng));
    }
  }

  out.positions.reserve(static_cast<size_t>(config.node_count));
  // Rejection sampling; forbidden areas cover a bounded field fraction, so
  // this terminates quickly. A hard cap guards against pathological configs.
  const int max_attempts = config.node_count * 1000;
  int attempts = 0;
  while (static_cast<int>(out.positions.size()) < config.node_count &&
         attempts++ < max_attempts) {
    Vec2 p{rng.uniform(config.field.lo().x, config.field.hi().x),
           rng.uniform(config.field.lo().y, config.field.hi().y)};
    if (!out.in_forbidden_area(p)) out.positions.push_back(p);
  }
  return out;
}

Deployment deploy_perturbed_grid(const DeploymentConfig& config, Rng& rng,
                                 double jitter_fraction) {
  Deployment out;
  out.field = config.field;
  out.radio_range = config.radio_range;

  int per_side = std::max(
      1, static_cast<int>(std::round(std::sqrt(config.node_count))));
  double dx = config.field.width() / per_side;
  double dy = config.field.height() / per_side;
  out.positions.reserve(static_cast<size_t>(per_side) * per_side);
  for (int row = 0; row < per_side; ++row) {
    for (int col = 0; col < per_side; ++col) {
      double cx = config.field.lo().x + (col + 0.5) * dx;
      double cy = config.field.lo().y + (row + 0.5) * dy;
      double jx = rng.uniform(-jitter_fraction, jitter_fraction) * dx;
      double jy = rng.uniform(-jitter_fraction, jitter_fraction) * dy;
      out.positions.push_back({cx + jx, cy + jy});
    }
  }
  return out;
}

}  // namespace spr
