#pragma once

/// \file rng.h
/// Deterministic pseudo-random number generation. Every experiment seeds its
/// own generator so that networks, source/destination picks and failures are
/// reproducible bit-for-bit across runs and platforms (we avoid
/// std::uniform_* distributions, whose output is implementation-defined).

#include <cstdint>

namespace spr {

/// xoshiro256++ generator seeded via SplitMix64. Small, fast, and with
/// well-understood statistical quality; not for cryptographic use.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  /// Raw 64 random bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n); n > 0.
  std::uint64_t next_below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) noexcept;

  /// Bernoulli trial.
  bool chance(double probability) noexcept;

  /// Derives an independent stream for a labeled sub-experiment; mixing the
  /// label keeps parallel streams uncorrelated.
  Rng fork(std::uint64_t label) const noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace spr
