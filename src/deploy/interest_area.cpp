#include "deploy/interest_area.h"

#include <algorithm>

#include "geometry/hull.h"

namespace spr {

InterestArea::InterestArea(const UnitDiskGraph& g, double edge_band) {
  hull_ = convex_hull(g.positions());
  edge_.assign(g.size(), false);
  for (NodeId u = 0; u < g.size(); ++u) {
    edge_[u] = distance_to_hull_boundary(hull_, g.position(u)) <= edge_band;
  }
  for (NodeId u = 0; u < g.size(); ++u) {
    if (!edge_[u] && g.alive(u)) interior_.push_back(u);
  }
}

InterestArea::InterestArea(const UnitDiskGraph& g,
                           std::vector<bool> edge_flags, std::vector<Vec2> hull)
    : edge_(std::move(edge_flags)), hull_(std::move(hull)) {
  edge_.resize(g.size(), false);
  for (NodeId u = 0; u < g.size(); ++u) {
    if (!edge_[u] && g.alive(u)) interior_.push_back(u);
  }
}

std::size_t InterestArea::edge_count() const noexcept {
  return static_cast<std::size_t>(std::count(edge_.begin(), edge_.end(), true));
}

}  // namespace spr
