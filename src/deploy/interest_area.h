#pragma once

/// \file interest_area.h
/// The interest area and edge-node classification (paper Section 3).
///
/// "We assume that all of the communication actions occur inside the
///  interest area. This area is an inner part of the deployment area
///  encircled by the edge of networks, which can easily be built by the hull
///  algorithm. In our labeling process, each edge node will always keep its
///  status tuple as (1,1,1,1)."
///
/// We classify a node as an *edge node* when it lies on the convex hull of
/// the deployment or within `edge_band` of the hull boundary (default: one
/// radio range). Sources and destinations are drawn from the complementary
/// set of interior nodes.

#include <vector>

#include "geometry/vec2.h"
#include "graph/node.h"
#include "graph/unit_disk.h"

namespace spr {

/// Edge/interior classification of one network.
class InterestArea {
 public:
  /// Classifies nodes of `g`; `edge_band` is the distance from the hull
  /// boundary within which a node counts as an edge node.
  InterestArea(const UnitDiskGraph& g, double edge_band);

  /// Adopts a precomputed classification (`edge_flags.size() == g.size()`),
  /// deriving the interior set from it. Used by the spatial-tile layer: a
  /// tile's local view must pin exactly the nodes the *global* hull pins
  /// (plus its halo ghosts), which a locally-computed hull cannot reproduce.
  /// `hull`, normally the global hull, is stored verbatim and may be empty.
  InterestArea(const UnitDiskGraph& g, std::vector<bool> edge_flags,
               std::vector<Vec2> hull);

  bool is_edge_node(NodeId u) const noexcept { return edge_[u]; }

  /// Interior node ids (candidate sources/destinations).
  const std::vector<NodeId>& interior_nodes() const noexcept { return interior_; }

  /// Hull vertices of the deployment, CCW.
  const std::vector<Vec2>& hull() const noexcept { return hull_; }

  std::size_t edge_count() const noexcept;

 private:
  std::vector<bool> edge_;
  std::vector<NodeId> interior_;
  std::vector<Vec2> hull_;
};

}  // namespace spr
