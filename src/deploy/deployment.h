#pragma once

/// \file deployment.h
/// The paper's two deployment models (Section 5):
///
///  * IA ("ideal"): nodes placed uniformly at random over the field; holes
///    arise only from locally sparse deployment and are small.
///  * FA ("forbidden areas"): random no-deploy regions (possibly irregular)
///    are placed first and nodes are sampled uniformly outside them; this
///    produces the larger holes the paper uses to stress recovery.
///
/// Defaults mirror the paper: 200 m x 200 m field, 20 m radio range,
/// 400..800 nodes.

#include <vector>

#include "deploy/rng.h"
#include "geometry/polygon.h"
#include "geometry/rect.h"
#include "geometry/vec2.h"

namespace spr {

/// Which deployment model to use.
enum class DeployModel { kIdeal, kForbiddenAreas };

/// Parameters for a deployment draw.
struct DeploymentConfig {
  Rect field = Rect::from_bounds({0.0, 0.0}, {200.0, 200.0});
  int node_count = 600;
  double radio_range = 20.0;
  DeployModel model = DeployModel::kIdeal;

  // FA-model knobs. The paper leaves the forbidden-area geometry
  // unspecified ("randomly set some forbidden areas ... to study the impact
  // of larger holes"); these defaults are calibrated so that the holes are
  // large enough to be routed around rather than absorbed by density —
  // see DESIGN.md and EXPERIMENTS.md.
  int min_forbidden_areas = 3;
  int max_forbidden_areas = 5;
  double min_forbidden_extent = 45.0;  ///< meters, per axis / radius
  double max_forbidden_extent = 90.0;
  /// Fraction of forbidden areas drawn as irregular polygons (the rest are
  /// axis-aligned rectangles). The paper notes the areas "may be irregular".
  double irregular_fraction = 0.5;
  /// Forbidden areas are kept inside the field inset by this margin so that
  /// the network edge stays populated.
  double forbidden_margin = 20.0;
};

/// A concrete deployment: node positions plus the forbidden areas (empty for
/// the IA model).
struct Deployment {
  std::vector<Vec2> positions;
  std::vector<Polygon> forbidden_areas;
  Rect field;
  double radio_range = 0.0;

  /// True when `p` lies inside any forbidden area.
  bool in_forbidden_area(Vec2 p) const noexcept;
};

/// Draws a deployment according to `config` using `rng`. Positions are
/// i.i.d. uniform over the allowed region (rejection sampling for FA).
Deployment deploy(const DeploymentConfig& config, Rng& rng);

/// Deterministic perturbed-grid deployment (regular coverage with jitter);
/// used by tests that need hole-free fields.
Deployment deploy_perturbed_grid(const DeploymentConfig& config, Rng& rng,
                                 double jitter_fraction = 0.25);

}  // namespace spr
