#include "deploy/rng.h"

namespace spr {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded generation with rejection.
  if (n == 0) return 0;
  std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = next_u64();
    unsigned __int128 m = static_cast<unsigned __int128>(r) * n;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

int Rng::uniform_int(int lo, int hi) noexcept {
  return lo + static_cast<int>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
}

bool Rng::chance(double probability) noexcept {
  return next_double() < probability;
}

Rng Rng::fork(std::uint64_t label) const noexcept {
  // Mix current state with the label through SplitMix64 for independence.
  std::uint64_t mix = state_[0] ^ (label * 0x9E3779B97F4A7C15ULL);
  std::uint64_t sm = mix;
  splitmix64(sm);
  return Rng(sm ^ state_[2]);
}

}  // namespace spr
