#pragma once

/// \file node.h
/// Node identity. Nodes are dense indices into a network's position table;
/// kInvalidNode marks "no node" results from successor selections.

#include <cstdint>
#include <limits>

namespace spr {

/// Dense node index within one network instance.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

}  // namespace spr
