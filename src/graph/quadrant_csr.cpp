#include "graph/quadrant_csr.h"

#include <cassert>
#include <cstring>

#include "graph/unit_disk.h"
#include "util/task_pool.h"

namespace spr {

void QuadrantZones::bucket_row(const UnitDiskGraph& g, NodeId u,
                               std::uint32_t row_begin) {
  const Vec2 pu = g.position(u);
  auto nbrs = g.neighbors(u);

  // Stable two-pass counting split per direction: counts, then cursors,
  // then placement in id order — each bucket ends up ascending because the
  // adjacency row is.
  std::uint32_t fwd_count[4] = {0, 0, 0, 0};
  std::uint32_t rev_count[4] = {0, 0, 0, 0};
  for (NodeId v : nbrs) {
    const Vec2 pv = g.position(v);
    ++fwd_count[zone_index(zone_type(pu, pv))];
    ++rev_count[zone_index(zone_type(pv, pu))];
  }
  std::uint32_t fwd_cursor[4], rev_cursor[4];
  std::uint32_t facc = row_begin, racc = row_begin;
  const std::size_t base = static_cast<std::size_t>(u) * 4;
  for (int q = 0; q < 4; ++q) {
    fwd_cursor[q] = facc;
    facc += fwd_count[q];
    fwd_end_[base + q] = facc;
    rev_cursor[q] = racc;
    racc += rev_count[q];
    rev_end_[base + q] = racc;
  }
  for (NodeId v : nbrs) {
    const Vec2 pv = g.position(v);
    fwd_ids_[fwd_cursor[zone_index(zone_type(pu, pv))]++] = v;
    rev_ids_[rev_cursor[zone_index(zone_type(pv, pu))]++] = v;
  }
}

QuadrantZones QuadrantZones::build(const UnitDiskGraph& g, TaskPool* pool) {
  QuadrantZones z;
  const std::size_t n = g.size();
  const std::size_t edges = g.directed_edge_count();
  assert(edges <= UINT32_MAX);
  z.fwd_ids_.resize(edges);
  z.rev_ids_.resize(edges);
  z.fwd_end_.resize(4 * n);
  z.rev_end_.resize(4 * n);
  parallel_for_blocked(pool, n, 512,
                       [&](std::size_t range_begin, std::size_t range_end) {
                         for (NodeId u = static_cast<NodeId>(range_begin);
                              u < static_cast<NodeId>(range_end); ++u) {
                           z.bucket_row(g, u, static_cast<std::uint32_t>(
                                                  g.neighbor_offset(u)));
                         }
                       });
  return z;
}

QuadrantZones QuadrantZones::patch(const UnitDiskGraph& g,
                                   const UnitDiskGraph& old_graph,
                                   const QuadrantZones& old_zones,
                                   const std::vector<bool>& stale) {
  QuadrantZones z;
  const std::size_t n = g.size();
  const std::size_t edges = g.directed_edge_count();
  assert(edges <= UINT32_MAX);
  assert(old_zones.size() == n && stale.size() >= n);
  z.fwd_ids_.resize(edges);
  z.rev_ids_.resize(edges);
  z.fwd_end_.resize(4 * n);
  z.rev_end_.resize(4 * n);
  for (NodeId u = 0; u < n; ++u) {
    const auto row_begin = static_cast<std::uint32_t>(g.neighbor_offset(u));
    if (stale[u]) {
      z.bucket_row(g, u, row_begin);
      continue;
    }
    // Unchanged row: same ids, same zones — copy the block and shift the
    // bucket ends by however much the rows before this one grew or shrank.
    const auto old_begin =
        static_cast<std::uint32_t>(old_graph.neighbor_offset(u));
    const std::size_t deg = g.degree(u);
    assert(deg == old_graph.degree(u));
    if (deg > 0) {
      std::memcpy(z.fwd_ids_.data() + row_begin,
                  old_zones.fwd_ids_.data() + old_begin, deg * sizeof(NodeId));
      std::memcpy(z.rev_ids_.data() + row_begin,
                  old_zones.rev_ids_.data() + old_begin, deg * sizeof(NodeId));
    }
    const std::size_t base = static_cast<std::size_t>(u) * 4;
    for (int q = 0; q < 4; ++q) {
      z.fwd_end_[base + q] = old_zones.fwd_end_[base + q] - old_begin + row_begin;
      z.rev_end_[base + q] = old_zones.rev_end_[base + q] - old_begin + row_begin;
    }
  }
  return z;
}

}  // namespace spr
