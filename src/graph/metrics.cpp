#include "graph/metrics.h"

#include <algorithm>
#include <limits>

#include "deploy/rng.h"
#include "graph/graph_algos.h"

namespace spr {

DegreeStats degree_stats(const UnitDiskGraph& g) {
  DegreeStats out;
  if (g.size() == 0) return out;
  out.min = std::numeric_limits<std::size_t>::max();
  double sum = 0.0;
  for (NodeId u = 0; u < g.size(); ++u) {
    std::size_t deg = g.degree(u);
    sum += static_cast<double>(deg);
    out.min = std::min(out.min, deg);
    out.max = std::max(out.max, deg);
    if (deg >= out.histogram.size()) out.histogram.resize(deg + 1, 0);
    ++out.histogram[deg];
  }
  out.mean = sum / static_cast<double>(g.size());
  return out;
}

double largest_component_fraction(const UnitDiskGraph& g) {
  std::size_t alive = 0;
  for (NodeId u = 0; u < g.size(); ++u) {
    if (g.alive(u)) ++alive;
  }
  if (alive == 0) return 0.0;
  return static_cast<double>(largest_component(g).size()) /
         static_cast<double>(alive);
}

namespace {
/// Farthest node from `source` and its hop distance, by BFS.
std::pair<NodeId, std::size_t> farthest(const UnitDiskGraph& g, NodeId source) {
  auto dist = bfs_hops(g, source);
  NodeId best = source;
  std::size_t best_dist = 0;
  for (NodeId u = 0; u < g.size(); ++u) {
    if (dist[u] == std::numeric_limits<std::size_t>::max()) continue;
    if (dist[u] > best_dist) {
      best_dist = dist[u];
      best = u;
    }
  }
  return {best, best_dist};
}
}  // namespace

std::size_t hop_diameter(const UnitDiskGraph& g) {
  auto component = largest_component(g);
  std::size_t diameter = 0;
  for (NodeId u : component) {
    diameter = std::max(diameter, farthest(g, u).second);
  }
  return diameter;
}

std::size_t hop_diameter_estimate(const UnitDiskGraph& g) {
  auto component = largest_component(g);
  if (component.empty()) return 0;
  auto [far_node, first] = farthest(g, component.front());
  auto [_, second] = farthest(g, far_node);
  return std::max(first, second);
}

double average_hop_distance(const UnitDiskGraph& g, std::size_t samples,
                            std::uint64_t seed) {
  auto component = largest_component(g);
  if (component.size() < 2) return 0.0;
  Rng rng(seed);
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    NodeId s = component[rng.next_below(component.size())];
    NodeId d = component[rng.next_below(component.size())];
    if (s == d) continue;
    auto dist = bfs_hops(g, s);
    if (dist[d] == std::numeric_limits<std::size_t>::max()) continue;
    sum += static_cast<double>(dist[d]);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

}  // namespace spr
