#pragma once

/// \file unit_disk.h
/// The wireless substrate: a unit-disk graph G = (V, E) where an undirected
/// edge uv exists iff |L(u) - L(v)| <= range (all sensors share one
/// communication range, as the paper assumes).

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "geometry/rect.h"
#include "geometry/vec2.h"
#include "graph/node.h"
#include "graph/quadrant_csr.h"

namespace spr {

class SpatialGrid;
class TaskPool;

/// The edge delta between a graph and a moved sibling: the unit-disk edges
/// that appeared and disappeared when a subset of nodes changed position.
/// Pairs are normalized (first < second) and sorted ascending, so the diff
/// is deterministic regardless of which endpoint moved.
struct EdgeDiff {
  std::vector<std::pair<NodeId, NodeId>> added;
  std::vector<std::pair<NodeId, NodeId>> removed;
  std::size_t moved_nodes = 0;  ///< points whose coordinates changed
};

/// Whether `diff` satisfies the normalization contract: every pair has
/// first < second, both lists are sorted ascending and duplicate-free, and
/// no pair appears in both (an edge cannot be added and removed by one
/// epoch). `with_moves` DCHECKs this on every diff it emits; consumers
/// patching state from an externally supplied diff should too.
bool edge_diff_normalized(const EdgeDiff& diff);

/// Immutable unit-disk graph over a fixed set of node positions.
///
/// Neighbor lists are stored in CSR form and sorted by node id. The optional
/// `alive` mask models failed nodes: dead nodes keep their position but have
/// no incident edges (used by the failure-dynamics example and tests).
///
/// Construction can be parallelized by passing a `build_pool`: the per-node
/// radius queries fan out over the pool and the sorted per-node lists merge
/// into CSR in node-id order, so the resulting graph is bit-identical to a
/// serial build. The pool is only used during construction (never stored).
/// Callers running *on* a pool worker (e.g. sweep cells) must pass nullptr —
/// blocking on the same pool from one of its workers deadlocks.
class UnitDiskGraph {
 public:
  /// Builds adjacency with a spatial grid; O(n + |E|) expected.
  UnitDiskGraph(std::vector<Vec2> positions, double range, Rect bounds,
                TaskPool* build_pool = nullptr);

  /// As above with an aliveness mask (`alive.size() == positions.size()`).
  UnitDiskGraph(std::vector<Vec2> positions, double range, Rect bounds,
                const std::vector<bool>& alive, TaskPool* build_pool = nullptr);

  /// Adopts fully-formed CSR arrays instead of running radius queries — the
  /// spatial-tile layer builds shard-local and glued global graphs this way
  /// (rows already filtered/remapped from an existing graph). The caller
  /// guarantees the CSR invariants: `offsets` has `positions.size() + 1`
  /// ascending entries, every row is sorted ascending, and dead nodes have
  /// empty rows. A spatial grid over `positions` is built here (it backs
  /// `grid()` queries and `with_moves` relocation).
  static UnitDiskGraph from_parts(std::vector<Vec2> positions, double range,
                                  Rect bounds, std::vector<bool> alive,
                                  std::vector<std::size_t> offsets,
                                  std::vector<NodeId> adjacency);

  std::size_t size() const noexcept { return positions_.size(); }
  double range() const noexcept { return range_; }
  Rect bounds() const noexcept { return bounds_; }

  Vec2 position(NodeId u) const noexcept { return positions_[u]; }
  const std::vector<Vec2>& positions() const noexcept { return positions_; }
  bool alive(NodeId u) const noexcept { return alive_[u]; }

  /// Sorted neighbor ids of u (N(u) in the paper). Dead nodes have none.
  std::span<const NodeId> neighbors(NodeId u) const noexcept {
    return {adjacency_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  std::size_t degree(NodeId u) const noexcept {
    return offsets_[u + 1] - offsets_[u];
  }

  /// Start of u's row in the flat adjacency array (CSR offset). Row blocks
  /// pack back-to-back in id order; QuadrantZones mirrors this layout.
  std::size_t neighbor_offset(NodeId u) const noexcept { return offsets_[u]; }

  /// Total directed adjacency entries (2 * edge_count()).
  std::size_t directed_edge_count() const noexcept { return adjacency_.size(); }

  /// The quadrant-bucketed neighbor view (graph/quadrant_csr.h) of this
  /// topology epoch: lazy, memoized, thread-safe — built on first call.
  /// `with_failures` / `with_moves` siblings inherit it *patched* (stale
  /// rows re-bucketed, the rest block-copied) instead of rebuilt whenever
  /// the parent had built it, so steady-state failure waves and mobility
  /// re-pins never pay a full re-bucketing. `build_pool` parallelizes a
  /// first-call build (bit-identical to serial); ignored once built.
  const QuadrantZones& zones(TaskPool* build_pool = nullptr) const;

  /// Whether zones() has been built (observation only — never builds).
  bool has_zones() const noexcept;

  bool are_neighbors(NodeId u, NodeId v) const noexcept;

  std::size_t edge_count() const noexcept { return adjacency_.size() / 2; }
  double average_degree() const noexcept;

  /// A copy of this graph with the given nodes marked dead (edges removed).
  /// Reuses this graph's spatial grid (positions are identical), so repeated
  /// failure batches never re-bucket the point set.
  UnitDiskGraph with_failures(const std::vector<NodeId>& failed,
                              TaskPool* build_pool = nullptr) const;

  /// A copy of this graph over moved node positions, built *incrementally*:
  /// the spatial grid is copied and `SpatialGrid::relocate`d (unmoved points
  /// never re-bucket), only moved nodes re-run their radius query, and the
  /// neighbor lists of unmoved nodes are patched from the edge delta — the
  /// resulting CSR is bit-identical to a from-scratch build over
  /// `new_positions` (tests enforce offsets+adjacency equality). Aliveness
  /// carries over: dead nodes move but stay edgeless. `new_positions` must
  /// have exactly size() entries. `diff`, when non-null, receives the
  /// added/removed edge sets (alive endpoints only). With a `build_pool` the
  /// moved nodes' radius queries fan out (deterministic id-ordered merge).
  UnitDiskGraph with_moves(const std::vector<Vec2>& new_positions,
                           EdgeDiff* diff = nullptr,
                           TaskPool* build_pool = nullptr) const;

  /// The spatial index the adjacency was built with; shared across
  /// `with_failures` copies.
  const SpatialGrid& grid() const noexcept { return *grid_; }

 private:
  UnitDiskGraph(std::vector<Vec2> positions, double range, Rect bounds,
                const std::vector<bool>& alive,
                std::shared_ptr<const SpatialGrid> grid, TaskPool* build_pool);

  /// Adopts fully built CSR arrays (the with_moves patch path).
  struct PatchedTag {};
  UnitDiskGraph(PatchedTag, std::vector<Vec2> positions, double range,
                Rect bounds, std::shared_ptr<const SpatialGrid> grid,
                std::vector<bool> alive, std::vector<std::size_t> offsets,
                std::vector<NodeId> adjacency);

  void build(const std::vector<bool>& alive, TaskPool* build_pool);

  /// Installs a pre-built quadrant view (the with_failures/with_moves patch
  /// path); zones() then never rebuilds it.
  void adopt_zones(QuadrantZones zones) const;

  /// Lazily built quadrant view. Heap-held behind shared_ptr so the graph
  /// stays movable/copyable (copies share the cache — positions and
  /// adjacency are identical by construction).
  struct ZonesCache {
    std::once_flag once;
    std::atomic<bool> built{false};
    QuadrantZones zones;
  };

  std::vector<Vec2> positions_;
  double range_;
  Rect bounds_;
  std::shared_ptr<const SpatialGrid> grid_;
  std::vector<bool> alive_;
  std::vector<std::size_t> offsets_;  // size() + 1 entries
  std::vector<NodeId> adjacency_;
  mutable std::shared_ptr<ZonesCache> zones_cache_;
};

}  // namespace spr
