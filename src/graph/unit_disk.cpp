#include "graph/unit_disk.h"

#include <algorithm>

#include "graph/spatial_grid.h"
#include "util/task_pool.h"

namespace spr {

UnitDiskGraph::UnitDiskGraph(std::vector<Vec2> positions, double range,
                             Rect bounds, TaskPool* build_pool)
    : positions_(std::move(positions)), range_(range), bounds_(bounds) {
  build(std::vector<bool>(positions_.size(), true), build_pool);
}

UnitDiskGraph::UnitDiskGraph(std::vector<Vec2> positions, double range,
                             Rect bounds, const std::vector<bool>& alive,
                             TaskPool* build_pool)
    : positions_(std::move(positions)), range_(range), bounds_(bounds) {
  build(alive, build_pool);
}

UnitDiskGraph::UnitDiskGraph(std::vector<Vec2> positions, double range,
                             Rect bounds, const std::vector<bool>& alive,
                             std::shared_ptr<const SpatialGrid> grid,
                             TaskPool* build_pool)
    : positions_(std::move(positions)),
      range_(range),
      bounds_(bounds),
      grid_(std::move(grid)) {
  build(alive, build_pool);
}

void UnitDiskGraph::build(const std::vector<bool>& alive,
                          TaskPool* build_pool) {
  alive_ = alive;
  alive_.resize(positions_.size(), true);
  const std::size_t n = positions_.size();
  offsets_.assign(n + 1, 0);
  adjacency_.clear();
  if (grid_ == nullptr) {
    grid_ = std::make_shared<SpatialGrid>(positions_, bounds_, range_);
  }
  if (n == 0) return;

  // Per-node radius queries are independent; with a pool they fan out in
  // fixed-size blocks (one scratch buffer per block, not per node). Every
  // node writes only its own list, so the id-ordered CSR merge below is
  // bit-identical to the serial build regardless of thread count.
  std::vector<std::vector<NodeId>> neighbor_lists(n);
  parallel_for_blocked(
      build_pool, n, 256, [&](std::size_t range_begin, std::size_t range_end) {
        std::vector<NodeId> scratch;
        for (NodeId u = static_cast<NodeId>(range_begin);
             u < static_cast<NodeId>(range_end); ++u) {
          if (!alive_[u]) continue;
          scratch.clear();
          grid_->query_radius(positions_[u], range_, u, scratch);
          auto& list = neighbor_lists[u];
          for (NodeId v : scratch) {
            if (alive_[v]) list.push_back(v);
          }
          std::sort(list.begin(), list.end());
        }
      });

  std::size_t total = 0;
  for (NodeId u = 0; u < n; ++u) {
    offsets_[u] = total;
    total += neighbor_lists[u].size();
  }
  offsets_[n] = total;
  adjacency_.reserve(total);
  for (NodeId u = 0; u < n; ++u) {
    adjacency_.insert(adjacency_.end(), neighbor_lists[u].begin(),
                      neighbor_lists[u].end());
  }
}

bool UnitDiskGraph::are_neighbors(NodeId u, NodeId v) const noexcept {
  auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double UnitDiskGraph::average_degree() const noexcept {
  if (positions_.empty()) return 0.0;
  return static_cast<double>(adjacency_.size()) /
         static_cast<double>(positions_.size());
}

UnitDiskGraph UnitDiskGraph::with_failures(const std::vector<NodeId>& failed,
                                           TaskPool* build_pool) const {
  std::vector<bool> alive = alive_;
  for (NodeId u : failed) {
    if (u < alive.size()) alive[u] = false;
  }
  // Positions are unchanged, so the copy shares this graph's grid instead of
  // re-bucketing all points for every failure batch.
  return UnitDiskGraph(positions_, range_, bounds_, alive, grid_, build_pool);
}

}  // namespace spr
