#include "graph/unit_disk.h"

#include <algorithm>

#include "graph/spatial_grid.h"
#include "util/check.h"
#include "util/task_pool.h"

namespace spr {

bool edge_diff_normalized(const EdgeDiff& diff) {
  auto normalized = [](const std::vector<std::pair<NodeId, NodeId>>& pairs) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (pairs[i].first >= pairs[i].second) return false;
      if (i > 0 && !(pairs[i - 1] < pairs[i])) return false;
    }
    return true;
  };
  if (!normalized(diff.added) || !normalized(diff.removed)) return false;
  // Both lists are sorted, so one tandem walk finds any common pair.
  std::size_t ai = 0, ri = 0;
  while (ai < diff.added.size() && ri < diff.removed.size()) {
    if (diff.added[ai] == diff.removed[ri]) return false;
    if (diff.added[ai] < diff.removed[ri]) {
      ++ai;
    } else {
      ++ri;
    }
  }
  return true;
}

UnitDiskGraph::UnitDiskGraph(std::vector<Vec2> positions, double range,
                             Rect bounds, TaskPool* build_pool)
    : positions_(std::move(positions)), range_(range), bounds_(bounds) {
  build(std::vector<bool>(positions_.size(), true), build_pool);
}

UnitDiskGraph::UnitDiskGraph(std::vector<Vec2> positions, double range,
                             Rect bounds, const std::vector<bool>& alive,
                             TaskPool* build_pool)
    : positions_(std::move(positions)), range_(range), bounds_(bounds) {
  build(alive, build_pool);
}

UnitDiskGraph::UnitDiskGraph(std::vector<Vec2> positions, double range,
                             Rect bounds, const std::vector<bool>& alive,
                             std::shared_ptr<const SpatialGrid> grid,
                             TaskPool* build_pool)
    : positions_(std::move(positions)),
      range_(range),
      bounds_(bounds),
      grid_(std::move(grid)) {
  build(alive, build_pool);
}

UnitDiskGraph UnitDiskGraph::from_parts(std::vector<Vec2> positions,
                                        double range, Rect bounds,
                                        std::vector<bool> alive,
                                        std::vector<std::size_t> offsets,
                                        std::vector<NodeId> adjacency) {
  // The cheap always-on shape checks; the per-row CSR contract (ascending
  // offsets, sorted rows, in-range ids) is a full scan and stays debug-only.
  SPR_CHECK(offsets.size() == positions.size() + 1,
            "from_parts: ", offsets.size(), " offsets for ", positions.size(),
            " positions");
  SPR_CHECK(alive.size() == positions.size(), "from_parts: ", alive.size(),
            " alive flags for ", positions.size(), " positions");
  SPR_CHECK(offsets.empty() || offsets.back() == adjacency.size(),
            "from_parts: final offset ", offsets.back(), " != adjacency size ",
            adjacency.size());
  if (kDchecksEnabled) {
    for (std::size_t u = 0; u + 1 < offsets.size(); ++u) {
      SPR_DCHECK(offsets[u] <= offsets[u + 1],
                 "from_parts: offsets not ascending at row ", u);
      for (std::size_t i = offsets[u]; i < offsets[u + 1]; ++i) {
        SPR_DCHECK(adjacency[i] < positions.size(),
                   "from_parts: row ", u, " references node ", adjacency[i],
                   " outside the ", positions.size(), "-node graph");
        SPR_DCHECK(i == offsets[u] || adjacency[i - 1] < adjacency[i],
                   "from_parts: row ", u, " not strictly ascending at entry ",
                   i - offsets[u]);
      }
    }
  }
  auto grid = std::make_shared<SpatialGrid>(positions, bounds, range);
  return UnitDiskGraph(PatchedTag{}, std::move(positions), range, bounds,
                       std::move(grid), std::move(alive), std::move(offsets),
                       std::move(adjacency));
}

const QuadrantZones& UnitDiskGraph::zones(TaskPool* build_pool) const {
  ZonesCache& cache = *zones_cache_;
  std::call_once(cache.once, [&] {
    // Skips the build when a with_failures/with_moves patch installed the
    // zones eagerly (adopt_zones runs during construction, pre-publication).
    if (!cache.built.load(std::memory_order_acquire)) {
      cache.zones = QuadrantZones::build(*this, build_pool);
      cache.built.store(true, std::memory_order_release);
    }
  });
  return cache.zones;
}

bool UnitDiskGraph::has_zones() const noexcept {
  return zones_cache_ != nullptr &&
         zones_cache_->built.load(std::memory_order_acquire);
}

void UnitDiskGraph::adopt_zones(QuadrantZones zones) const {
  zones_cache_->zones = std::move(zones);
  zones_cache_->built.store(true, std::memory_order_release);
}

void UnitDiskGraph::build(const std::vector<bool>& alive,
                          TaskPool* build_pool) {
  zones_cache_ = std::make_shared<ZonesCache>();
  alive_ = alive;
  alive_.resize(positions_.size(), true);
  const std::size_t n = positions_.size();
  offsets_.assign(n + 1, 0);
  adjacency_.clear();
  if (grid_ == nullptr) {
    grid_ = std::make_shared<SpatialGrid>(positions_, bounds_, range_);
  }
  if (n == 0) return;

  // Per-node radius queries are independent; with a pool they fan out in
  // fixed-size blocks (one scratch buffer per block, not per node). Every
  // node writes only its own list, so the id-ordered CSR merge below is
  // bit-identical to the serial build regardless of thread count.
  std::vector<std::vector<NodeId>> neighbor_lists(n);
  parallel_for_blocked(
      build_pool, n, 256, [&](std::size_t range_begin, std::size_t range_end) {
        std::vector<NodeId> scratch;
        for (NodeId u = static_cast<NodeId>(range_begin);
             u < static_cast<NodeId>(range_end); ++u) {
          if (!alive_[u]) continue;
          scratch.clear();
          grid_->query_radius(positions_[u], range_, u, scratch);
          auto& list = neighbor_lists[u];
          for (NodeId v : scratch) {
            if (alive_[v]) list.push_back(v);
          }
          std::sort(list.begin(), list.end());
        }
      });

  std::size_t total = 0;
  for (NodeId u = 0; u < n; ++u) {
    offsets_[u] = total;
    total += neighbor_lists[u].size();
  }
  offsets_[n] = total;
  adjacency_.reserve(total);
  for (NodeId u = 0; u < n; ++u) {
    adjacency_.insert(adjacency_.end(), neighbor_lists[u].begin(),
                      neighbor_lists[u].end());
  }
}

bool UnitDiskGraph::are_neighbors(NodeId u, NodeId v) const noexcept {
  auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double UnitDiskGraph::average_degree() const noexcept {
  if (positions_.empty()) return 0.0;
  return static_cast<double>(adjacency_.size()) /
         static_cast<double>(positions_.size());
}

UnitDiskGraph::UnitDiskGraph(PatchedTag, std::vector<Vec2> positions,
                             double range, Rect bounds,
                             std::shared_ptr<const SpatialGrid> grid,
                             std::vector<bool> alive,
                             std::vector<std::size_t> offsets,
                             std::vector<NodeId> adjacency)
    : positions_(std::move(positions)),
      range_(range),
      bounds_(bounds),
      grid_(std::move(grid)),
      alive_(std::move(alive)),
      offsets_(std::move(offsets)),
      adjacency_(std::move(adjacency)),
      zones_cache_(std::make_shared<ZonesCache>()) {}

UnitDiskGraph UnitDiskGraph::with_moves(const std::vector<Vec2>& new_positions,
                                        EdgeDiff* diff,
                                        TaskPool* build_pool) const {
  const std::size_t n = positions_.size();
  if (diff != nullptr) *diff = EdgeDiff{};

  // Which nodes actually moved (exact coordinate comparison: the waypoint
  // process hands back untouched doubles for paused nodes).
  std::vector<NodeId> moved;
  for (NodeId u = 0; u < n && u < new_positions.size(); ++u) {
    if (!(new_positions[u] == positions_[u])) moved.push_back(u);
  }
  if (diff != nullptr) diff->moved_nodes = moved.size();
  std::vector<Vec2> positions(new_positions);
  positions.resize(n, Vec2{});
  for (std::size_t i = new_positions.size(); i < n; ++i) {
    positions[i] = positions_[i];
  }

  // Adaptive cutover: when most nodes moved (whole-field mobility epochs),
  // every neighbor list re-queries anyway, so the grid-relocation and
  // list-patching machinery is pure overhead — a from-scratch build is the
  // optimal "patch". The result is bit-identical either way (tests assert
  // both paths against fresh builds); only the edge delta still needs the
  // tandem walk.
  if (2 * moved.size() > n) {
    UnitDiskGraph fresh(positions, range_, bounds_, alive_, nullptr,
                        build_pool);
    // Whole-field motion leaves almost every quadrant row stale, so the
    // "patch" of the quadrant view is a fresh build too — done eagerly
    // because a built parent view means the safety continuation needs it.
    if (has_zones()) {
      fresh.adopt_zones(QuadrantZones::build(fresh, build_pool));
    }
    if (diff != nullptr) {
      for (NodeId u = 0; u < n; ++u) {
        auto old_list = neighbors(u);
        auto new_list = fresh.neighbors(u);
        std::size_t oi = 0, ni = 0;
        while (oi < old_list.size() || ni < new_list.size()) {
          NodeId vo = oi < old_list.size() ? old_list[oi] : kInvalidNode;
          NodeId vn = ni < new_list.size() ? new_list[ni] : kInvalidNode;
          if (vn == kInvalidNode || (vo != kInvalidNode && vo < vn)) {
            if (vo > u) diff->removed.emplace_back(u, vo);
            ++oi;
          } else if (vo == kInvalidNode || vn < vo) {
            if (vn > u) diff->added.emplace_back(u, vn);
            ++ni;
          } else {
            ++oi;
            ++ni;
          }
        }
      }
      SPR_DCHECK(edge_diff_normalized(*diff),
                 "with_moves cutover emitted a non-normalized EdgeDiff");
    }
    return fresh;
  }

  // Relocate a private copy of the grid: unmoved points keep their buckets.
  auto grid = std::make_shared<SpatialGrid>(*grid_);
  {
    std::vector<Vec2> moved_positions;
    moved_positions.reserve(moved.size());
    for (NodeId u : moved) moved_positions.push_back(positions[u]);
    grid->relocate(moved, moved_positions);
  }

  if (moved.empty()) {
    UnitDiskGraph same(PatchedTag{}, std::move(positions), range_, bounds_,
                       std::move(grid), alive_, offsets_, adjacency_);
    same.zones_cache_ = zones_cache_;  // identical topology: share the view
    return same;
  }

  // Fresh neighbor lists for the moved nodes only (alive ones; dead nodes
  // stay edgeless wherever they are).
  std::vector<bool> is_moved(n, false);
  for (NodeId u : moved) is_moved[u] = true;
  std::vector<std::vector<NodeId>> moved_lists(moved.size());
  parallel_for_blocked(
      build_pool, moved.size(), 64,
      [&](std::size_t range_begin, std::size_t range_end) {
        std::vector<NodeId> scratch;
        for (std::size_t i = range_begin; i < range_end; ++i) {
          NodeId u = moved[i];
          if (!alive_[u]) continue;
          scratch.clear();
          grid->query_radius(positions[u], range_, u, scratch);
          auto& list = moved_lists[i];
          for (NodeId v : scratch) {
            if (alive_[v]) list.push_back(v);
          }
          std::sort(list.begin(), list.end());
        }
      });

  // The edge delta, from a tandem walk of each moved node's old and new
  // sorted lists. Edges between two moved endpoints show up in both walks;
  // normalizing to (min, max) and deduping on the lower endpoint keeps one
  // record. Unmoved partners collect per-node patch lists.
  std::vector<std::pair<NodeId, NodeId>> drops, adds;  // (unmoved v, moved u)
  auto record = [&](std::vector<std::pair<NodeId, NodeId>>* out, NodeId u,
                    NodeId v, std::vector<std::pair<NodeId, NodeId>>& patch) {
    if (!is_moved[v]) {
      patch.emplace_back(v, u);
    } else if (v < u) {
      return;  // the walk from v records this moved-moved edge
    }
    if (out != nullptr) {
      out->emplace_back(std::min(u, v), std::max(u, v));
    }
  };
  EdgeDiff local_diff;
  EdgeDiff* d = diff != nullptr ? diff : &local_diff;
  for (std::size_t i = 0; i < moved.size(); ++i) {
    NodeId u = moved[i];
    auto old_list = neighbors(u);
    const auto& new_list = moved_lists[i];
    std::size_t oi = 0, ni = 0;
    while (oi < old_list.size() || ni < new_list.size()) {
      if (ni == new_list.size() ||
          (oi < old_list.size() && old_list[oi] < new_list[ni])) {
        record(&d->removed, u, old_list[oi], drops);
        ++oi;
      } else if (oi == old_list.size() || new_list[ni] < old_list[oi]) {
        record(&d->added, u, new_list[ni], adds);
        ++ni;
      } else {
        ++oi;
        ++ni;
      }
    }
  }
  std::sort(d->added.begin(), d->added.end());
  d->added.erase(std::unique(d->added.begin(), d->added.end()),
                 d->added.end());
  std::sort(d->removed.begin(), d->removed.end());
  d->removed.erase(std::unique(d->removed.begin(), d->removed.end()),
                   d->removed.end());
  SPR_DCHECK(edge_diff_normalized(*d),
             "with_moves patch path emitted a non-normalized EdgeDiff");
  std::sort(drops.begin(), drops.end());
  std::sort(adds.begin(), adds.end());

  // Assemble the patched CSR in node-id order: moved nodes take their fresh
  // lists, unmoved touched nodes merge (old minus drops) with adds, and
  // untouched nodes block-copy their old span.
  std::vector<std::size_t> offsets(n + 1, 0);
  std::vector<NodeId> adjacency;
  adjacency.reserve(adjacency_.size() + 2 * d->added.size());
  std::size_t di = 0, ai = 0;
  std::size_t moved_cursor = 0;
  for (NodeId u = 0; u < n; ++u) {
    offsets[u] = adjacency.size();
    if (is_moved[u]) {
      const auto& list = moved_lists[moved_cursor++];
      adjacency.insert(adjacency.end(), list.begin(), list.end());
      continue;
    }
    auto old_list = neighbors(u);
    bool touched = (di < drops.size() && drops[di].first == u) ||
                   (ai < adds.size() && adds[ai].first == u);
    if (!touched) {
      adjacency.insert(adjacency.end(), old_list.begin(), old_list.end());
      continue;
    }
    std::size_t oi = 0;
    while (oi < old_list.size() || (ai < adds.size() && adds[ai].first == u)) {
      NodeId old_next = kInvalidNode;
      while (oi < old_list.size()) {
        if (di < drops.size() && drops[di].first == u &&
            drops[di].second == old_list[oi]) {
          ++di;
          ++oi;
          continue;
        }
        old_next = old_list[oi];
        break;
      }
      NodeId add_next = (ai < adds.size() && adds[ai].first == u)
                            ? adds[ai].second
                            : kInvalidNode;
      if (old_next == kInvalidNode && add_next == kInvalidNode) break;
      if (add_next == kInvalidNode ||
          (old_next != kInvalidNode && old_next < add_next)) {
        adjacency.push_back(old_next);
        ++oi;
      } else {
        adjacency.push_back(add_next);
        ++ai;
      }
    }
    while (di < drops.size() && drops[di].first == u) ++di;
  }
  offsets[n] = adjacency.size();

  UnitDiskGraph out(PatchedTag{}, std::move(positions), range_, bounds_,
                    std::move(grid), alive_, std::move(offsets),
                    std::move(adjacency));
  // Carry the quadrant view across the epoch: a row is stale iff its node
  // moved, a (old or new) neighbor moved, or its adjacency changed — and
  // adjacency only ever changes at a moved endpoint, so the moved nodes'
  // old and new neighborhoods cover every case.
  if (has_zones()) {
    std::vector<bool> stale(n, false);
    for (std::size_t i = 0; i < moved.size(); ++i) {
      NodeId u = moved[i];
      stale[u] = true;
      for (NodeId v : neighbors(u)) stale[v] = true;
      for (NodeId v : moved_lists[i]) stale[v] = true;
    }
    out.adopt_zones(QuadrantZones::patch(out, *this, zones_cache_->zones, stale));
  }
  return out;
}

UnitDiskGraph UnitDiskGraph::with_failures(const std::vector<NodeId>& failed,
                                           TaskPool* build_pool) const {
  std::vector<bool> alive = alive_;
  for (NodeId u : failed) {
    if (u < alive.size()) alive[u] = false;
  }
  // Positions are unchanged, so the copy shares this graph's grid instead of
  // re-bucketing all points for every failure batch.
  UnitDiskGraph out(positions_, range_, bounds_, alive, grid_, build_pool);
  // Positions don't change under failures, so only the rows whose neighbor
  // list changed — the casualties and their ex-neighbors — go stale in the
  // quadrant view; everyone else block-copies.
  if (has_zones()) {
    std::vector<bool> stale(positions_.size(), false);
    for (NodeId u : failed) {
      if (u >= positions_.size()) continue;
      stale[u] = true;
      for (NodeId v : neighbors(u)) stale[v] = true;
    }
    out.adopt_zones(QuadrantZones::patch(out, *this, zones_cache_->zones, stale));
  }
  return out;
}

}  // namespace spr
