#pragma once

/// \file planar.h
/// Local planarization of the unit-disk graph. The perimeter phases of
/// GF/GPSR-style recovery traverse faces of a planar subgraph that keeps the
/// connectivity of the original network; we provide the two standard
/// distributed constructions:
///
///  * Gabriel graph (GG): keep uv iff no witness w lies inside the closed
///    disc with diameter uv. Preserves connectivity of the UDG.
///  * Relative neighborhood graph (RNG): keep uv iff no witness w with
///    max(|uw|, |vw|) < |uv|. A subgraph of GG, also connectivity-preserving.
///
/// Both are computable from 1-hop neighbor information only, matching the
/// paper's fully-distributed setting.

#include <vector>

#include "graph/unit_disk.h"

namespace spr {

/// Planar overlay: per-node sorted neighbor lists restricted to kept edges.
class PlanarOverlay {
 public:
  enum class Kind { kGabriel, kRng };

  /// Builds the overlay from local tests on `g`.
  PlanarOverlay(const UnitDiskGraph& g, Kind kind);

  Kind kind() const noexcept { return kind_; }

  std::span<const NodeId> neighbors(NodeId u) const noexcept {
    return {adjacency_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  bool are_neighbors(NodeId u, NodeId v) const noexcept;
  std::size_t edge_count() const noexcept { return adjacency_.size() / 2; }

 private:
  Kind kind_;
  std::vector<std::size_t> offsets_;
  std::vector<NodeId> adjacency_;
};

/// True when edge uv survives the Gabriel test in `g` (u, v must be
/// neighbors). Exposed for tests and for the per-hop local variant.
bool gabriel_keeps_edge(const UnitDiskGraph& g, NodeId u, NodeId v);

/// True when edge uv survives the RNG test in `g`.
bool rng_keeps_edge(const UnitDiskGraph& g, NodeId u, NodeId v);

/// Exhaustively checks that no two overlay edges cross properly. O(E^2);
/// intended for tests.
bool overlay_is_planar(const UnitDiskGraph& g, const PlanarOverlay& overlay);

/// True when the overlay connects the same node pairs as `g` (component
/// structure preserved). O(V + E); intended for tests.
bool overlay_preserves_connectivity(const UnitDiskGraph& g,
                                    const PlanarOverlay& overlay);

}  // namespace spr
