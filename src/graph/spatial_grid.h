#pragma once

/// \file spatial_grid.h
/// Uniform hash grid over the deployment field, used to build unit-disk
/// adjacency in O(n) expected time and to answer range queries.

#include <vector>

#include "geometry/rect.h"
#include "geometry/vec2.h"
#include "graph/node.h"

namespace spr {

/// Buckets points into square cells of side `cell_size` covering `bounds`.
///
/// The grid owns a copy of the point set, so it stays valid independently of
/// the caller's vector — UnitDiskGraph shares one grid across every
/// `with_failures` copy (the positions never change, only aliveness).
class SpatialGrid {
 public:
  /// Builds the grid over all `points`. `cell_size` should be >= the query
  /// radius for single-ring neighbor queries (we use the radio range).
  SpatialGrid(std::vector<Vec2> points, Rect bounds, double cell_size);

  /// Appends to `out` the ids of all points within `radius` of `center`
  /// (excluding `exclude`, pass kInvalidNode to keep everything).
  void query_radius(Vec2 center, double radius, NodeId exclude,
                    std::vector<NodeId>& out) const;

  /// Ids of all points inside the axis-aligned rectangle.
  void query_rect(const Rect& r, std::vector<NodeId>& out) const;

  int cols() const noexcept { return cols_; }
  int rows() const noexcept { return rows_; }
  std::size_t point_count() const noexcept { return points_.size(); }

 private:
  int cell_col(double x) const noexcept;
  int cell_row(double y) const noexcept;
  const std::vector<NodeId>& cell(int col, int row) const noexcept {
    return cells_[static_cast<size_t>(row) * static_cast<size_t>(cols_) +
                  static_cast<size_t>(col)];
  }

  std::vector<Vec2> points_;
  Rect bounds_;
  double cell_size_;
  int cols_, rows_;
  std::vector<std::vector<NodeId>> cells_;
};

}  // namespace spr
