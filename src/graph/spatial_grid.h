#pragma once

/// \file spatial_grid.h
/// Uniform hash grid over the deployment field, used to build unit-disk
/// adjacency in O(n) expected time and to answer range queries.

#include <span>
#include <vector>

#include "geometry/rect.h"
#include "geometry/vec2.h"
#include "graph/node.h"

namespace spr {

/// Buckets points into square cells of side `cell_size` covering `bounds`.
///
/// The grid owns a copy of the point set, so it stays valid independently of
/// the caller's vector — UnitDiskGraph shares one grid across every
/// `with_failures` copy (the positions never change, only aliveness).
///
/// Cell contents are stored in CSR form (one flat id array plus per-cell
/// offsets) rather than a vector-of-vectors: one allocation, contiguous
/// scans across neighboring cells, and ~2 words per cell of overhead
/// instead of a vector header each.
class SpatialGrid {
 public:
  /// Builds the grid over all `points`. `cell_size` should be >= the query
  /// radius for single-ring neighbor queries (we use the radio range).
  SpatialGrid(std::vector<Vec2> points, Rect bounds, double cell_size);

  /// Appends to `out` the ids of all points within `radius` of `center`
  /// (excluding `exclude`, pass kInvalidNode to keep everything).
  void query_radius(Vec2 center, double radius, NodeId exclude,
                    std::vector<NodeId>& out) const;

  /// Ids of all points inside the axis-aligned rectangle.
  void query_rect(const Rect& r, std::vector<NodeId>& out) const;

  /// Moves the points `ids[i] -> new_positions[i]` (parallel spans) to new
  /// coordinates *without* re-bucketing the unmoved points: cells whose
  /// membership did not change are block-copied, and only the moved points
  /// pay the cell-index recomputation. Each cell's ids stay sorted
  /// ascending, so the relocated grid is indistinguishable from one built
  /// from scratch over the new point set (tests enforce query equality).
  ///
  /// The grid is shared across `UnitDiskGraph` snapshots via shared_ptr —
  /// mutate only a freshly copied grid (UnitDiskGraph::with_moves does).
  void relocate(std::span<const NodeId> ids,
                std::span<const Vec2> new_positions);

  /// The stored coordinate of one point.
  Vec2 position(NodeId id) const noexcept { return points_[id]; }

  int cols() const noexcept { return cols_; }
  int rows() const noexcept { return rows_; }
  std::size_t point_count() const noexcept { return points_.size(); }

 private:
  int cell_col(double x) const noexcept;
  int cell_row(double y) const noexcept;
  /// The ids bucketed into cell (col, row), ascending.
  std::span<const NodeId> cell(int col, int row) const noexcept {
    std::size_t i = static_cast<size_t>(row) * static_cast<size_t>(cols_) +
                    static_cast<size_t>(col);
    return {cell_ids_.data() + cell_offsets_[i],
            cell_offsets_[i + 1] - cell_offsets_[i]};
  }

  std::vector<Vec2> points_;
  Rect bounds_;
  double cell_size_;
  int cols_, rows_;
  std::vector<std::size_t> cell_offsets_;  ///< cols*rows + 1 entries
  std::vector<NodeId> cell_ids_;           ///< point ids grouped by cell
};

}  // namespace spr
