#pragma once

/// \file graph_algos.h
/// Reference graph algorithms over the unit-disk substrate: BFS hop counts,
/// Dijkstra Euclidean shortest paths, and connectivity. These are the
/// oracles the benches use to compute stretch; the routers never consult
/// them (they are strictly local, as in the paper).

#include <optional>
#include <vector>

#include "graph/node.h"
#include "graph/unit_disk.h"

namespace spr {

/// Result of a single-source search.
struct ShortestPath {
  std::vector<NodeId> path;  ///< s ... d inclusive; empty when unreachable
  double length = 0.0;       ///< sum of Euclidean edge lengths
  std::size_t hops() const noexcept { return path.empty() ? 0 : path.size() - 1; }
};

/// Hop counts from `source` to every node (SIZE_MAX when unreachable).
std::vector<std::size_t> bfs_hops(const UnitDiskGraph& g, NodeId source);

/// Hop-optimal path (BFS tree); empty path when unreachable.
ShortestPath bfs_path(const UnitDiskGraph& g, NodeId source, NodeId target);

/// Euclidean-length-optimal path (Dijkstra); empty path when unreachable.
ShortestPath dijkstra_path(const UnitDiskGraph& g, NodeId source, NodeId target);

/// Component label per node (dead nodes get their own singleton labels).
std::vector<int> connected_components(const UnitDiskGraph& g);

/// True when u and v are in the same component.
bool connected(const UnitDiskGraph& g, NodeId u, NodeId v);

/// Ids of the largest connected component.
std::vector<NodeId> largest_component(const UnitDiskGraph& g);

}  // namespace spr
