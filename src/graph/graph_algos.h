#pragma once

/// \file graph_algos.h
/// Reference graph algorithms over the unit-disk substrate: BFS hop counts,
/// Dijkstra Euclidean shortest paths, and connectivity. These are the
/// oracles the benches use to compute stretch; the routers never consult
/// them (they are strictly local, as in the paper).
///
/// The oracle machinery is batched: a `ShortestPathTree` is one full
/// single-source search whose parent array answers *every* target via
/// `extract`, and an `OracleBatch` groups a span of (s, d) pairs by source
/// so each distinct source costs exactly one BFS and one Dijkstra shared by
/// all of its destinations. The per-pair `bfs_path` / `dijkstra_path`
/// entry points are thin wrappers over a single-use tree.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/node.h"
#include "graph/unit_disk.h"

namespace spr {

/// Result of a single-source search.
struct ShortestPath {
  std::vector<NodeId> path;  ///< s ... d inclusive; empty when unreachable
  double length = 0.0;       ///< sum of Euclidean edge lengths
  std::size_t hops() const noexcept { return path.empty() ? 0 : path.size() - 1; }
};

/// Process-wide count of single-source tree searches, the hook behind the
/// "one search per distinct source" assertions in tests and the sweep
/// benches. Every `ShortestPathTree` construction increments one counter
/// (the per-pair wrappers build a tree, so they count too); `bfs_hops` and
/// the connectivity helpers do not.
struct OracleSearchCounts {
  std::uint64_t bfs_trees = 0;
  std::uint64_t dijkstra_trees = 0;
};

/// Snapshot of the process-wide counters (atomic, safe under sweeps).
OracleSearchCounts oracle_search_counts() noexcept;

/// Resets both counters to zero (tests and bench sections).
void reset_oracle_search_counts() noexcept;

/// One single-source search, memoized as a parent array: BFS (hop-optimal)
/// or Dijkstra (Euclidean-length-optimal). Answers any number of targets
/// without re-searching; `extract(t)` yields exactly the path the per-pair
/// `bfs_path(g, s, t)` / `dijkstra_path(g, s, t)` would return.
///
/// `stop_at` bounds the search: the frontier halts once that node is
/// settled, which is what the per-pair wrappers use to keep their old
/// early-exit cost. A stopped tree is only valid for targets settled
/// before the stop (in particular `stop_at` itself); batch consumers that
/// extract many targets must build the full tree (the default).
class ShortestPathTree {
 public:
  enum class Metric { kHops, kLength };

  ShortestPathTree(const UnitDiskGraph& g, NodeId source, Metric metric,
                   NodeId stop_at = kInvalidNode);

  NodeId source() const noexcept { return source_; }
  Metric metric() const noexcept { return metric_; }

  bool reached(NodeId target) const noexcept {
    if (target >= parent_.size()) return false;  // also: invalid source
    return target == source_ || parent_[target] != kInvalidNode;
  }

  /// Tree parent of `target` (kInvalidNode for the source and unreached).
  NodeId parent(NodeId target) const noexcept { return parent_[target]; }

  /// The s..target path along the tree; empty when unreachable. Identical
  /// (nodes and floating-point length) to the per-pair search result.
  ShortestPath extract(NodeId target) const;

 private:
  const UnitDiskGraph* g_;
  NodeId source_;
  Metric metric_;
  std::vector<NodeId> parent_;
};

class Arena;

/// The shared-frontier oracle for a batch of (source, destination) pairs:
/// groups the span by source and runs one BFS tree and one Dijkstra tree
/// per *distinct* source, then extracts the per-pair optima. Replaces the
/// two-searches-per-pair loop in the sweep cells.
class OracleBatch {
 public:
  /// Which per-pair optima to compute. `kHopsOnly` skips the Dijkstra
  /// trees entirely — one BFS per distinct source is the whole cost, and
  /// `length_optimal` must not be consulted. The streaming simulator's
  /// stretch oracle only needs hop counts, so it halves the search work
  /// this way; the sweep cells need both.
  enum class Metrics { kBoth, kHopsOnly };

  OracleBatch(const UnitDiskGraph& g,
              std::span<const std::pair<NodeId, NodeId>> pairs);

  /// As above, with the transient grouping scratch (slot map, CSR group
  /// arrays) bump-allocated from `scratch` instead of the general heap —
  /// the sweep cells pass their per-cell arena (util/arena.h). Results are
  /// identical; null falls back to heap scratch.
  OracleBatch(const UnitDiskGraph& g,
              std::span<const std::pair<NodeId, NodeId>> pairs,
              Arena* scratch, Metrics metrics = Metrics::kBoth);

  std::size_t size() const noexcept { return hop_optimal_.size(); }
  std::size_t distinct_sources() const noexcept { return distinct_sources_; }

  /// BFS / Dijkstra optimum of pairs[i]; empty path when unreachable.
  const ShortestPath& hop_optimal(std::size_t i) const noexcept {
    return hop_optimal_[i];
  }
  /// Only valid for a `kBoth` batch.
  const ShortestPath& length_optimal(std::size_t i) const noexcept {
    return length_optimal_[i];
  }

 private:
  std::vector<ShortestPath> hop_optimal_;
  std::vector<ShortestPath> length_optimal_;
  std::size_t distinct_sources_ = 0;
};

/// Hop counts from `source` to every node (SIZE_MAX when unreachable).
std::vector<std::size_t> bfs_hops(const UnitDiskGraph& g, NodeId source);

/// Hop-optimal path (BFS tree); empty path when unreachable.
ShortestPath bfs_path(const UnitDiskGraph& g, NodeId source, NodeId target);

/// Euclidean-length-optimal path (Dijkstra); empty path when unreachable.
ShortestPath dijkstra_path(const UnitDiskGraph& g, NodeId source, NodeId target);

/// Component label per node (dead nodes get their own singleton labels).
std::vector<int> connected_components(const UnitDiskGraph& g);

/// True when u and v are in the same component.
bool connected(const UnitDiskGraph& g, NodeId u, NodeId v);

/// Ids of the largest connected component.
std::vector<NodeId> largest_component(const UnitDiskGraph& g);

}  // namespace spr
