#include "graph/spatial_grid.h"

#include <algorithm>
#include <cmath>

namespace spr {

SpatialGrid::SpatialGrid(std::vector<Vec2> points, Rect bounds,
                         double cell_size)
    : points_(std::move(points)), bounds_(bounds), cell_size_(cell_size) {
  cols_ = std::max(1, static_cast<int>(std::ceil(bounds.width() / cell_size_)));
  rows_ = std::max(1, static_cast<int>(std::ceil(bounds.height() / cell_size_)));
  const std::size_t cell_count =
      static_cast<size_t>(cols_) * static_cast<size_t>(rows_);

  // CSR build: count per cell, prefix-sum into offsets, then fill. Filling
  // in ascending id order keeps each cell's ids sorted.
  auto cell_index = [&](Vec2 p) {
    return static_cast<size_t>(cell_row(p.y)) * static_cast<size_t>(cols_) +
           static_cast<size_t>(cell_col(p.x));
  };
  std::vector<std::size_t> counts(cell_count, 0);
  for (const Vec2& p : points_) ++counts[cell_index(p)];
  cell_offsets_.assign(cell_count + 1, 0);
  for (std::size_t i = 0; i < cell_count; ++i) {
    cell_offsets_[i + 1] = cell_offsets_[i] + counts[i];
  }
  cell_ids_.resize(points_.size());
  std::vector<std::size_t> cursor(cell_offsets_.begin(),
                                  cell_offsets_.end() - 1);
  for (NodeId id = 0; id < points_.size(); ++id) {
    cell_ids_[cursor[cell_index(points_[id])]++] = id;
  }
}

int SpatialGrid::cell_col(double x) const noexcept {
  int c = static_cast<int>((x - bounds_.lo().x) / cell_size_);
  return std::clamp(c, 0, cols_ - 1);
}

int SpatialGrid::cell_row(double y) const noexcept {
  int r = static_cast<int>((y - bounds_.lo().y) / cell_size_);
  return std::clamp(r, 0, rows_ - 1);
}

void SpatialGrid::query_radius(Vec2 center, double radius, NodeId exclude,
                               std::vector<NodeId>& out) const {
  int c0 = cell_col(center.x - radius), c1 = cell_col(center.x + radius);
  int r0 = cell_row(center.y - radius), r1 = cell_row(center.y + radius);
  double radius_sq = radius * radius;
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) {
      for (NodeId id : cell(c, r)) {
        if (id == exclude) continue;
        if (distance_sq(points_[id], center) <= radius_sq) out.push_back(id);
      }
    }
  }
}

void SpatialGrid::query_rect(const Rect& rect, std::vector<NodeId>& out) const {
  int c0 = cell_col(rect.lo().x), c1 = cell_col(rect.hi().x);
  int r0 = cell_row(rect.lo().y), r1 = cell_row(rect.hi().y);
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) {
      for (NodeId id : cell(c, r)) {
        if (rect.contains(points_[id])) out.push_back(id);
      }
    }
  }
}

}  // namespace spr
