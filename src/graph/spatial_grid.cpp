#include "graph/spatial_grid.h"

#include <algorithm>
#include <cmath>

namespace spr {

SpatialGrid::SpatialGrid(std::vector<Vec2> points, Rect bounds,
                         double cell_size)
    : points_(std::move(points)), bounds_(bounds), cell_size_(cell_size) {
  cols_ = std::max(1, static_cast<int>(std::ceil(bounds.width() / cell_size_)));
  rows_ = std::max(1, static_cast<int>(std::ceil(bounds.height() / cell_size_)));
  const std::size_t cell_count =
      static_cast<size_t>(cols_) * static_cast<size_t>(rows_);

  // CSR build: count per cell, prefix-sum into offsets, then fill. Filling
  // in ascending id order keeps each cell's ids sorted.
  auto cell_index = [&](Vec2 p) {
    return static_cast<size_t>(cell_row(p.y)) * static_cast<size_t>(cols_) +
           static_cast<size_t>(cell_col(p.x));
  };
  std::vector<std::size_t> counts(cell_count, 0);
  for (const Vec2& p : points_) ++counts[cell_index(p)];
  cell_offsets_.assign(cell_count + 1, 0);
  for (std::size_t i = 0; i < cell_count; ++i) {
    cell_offsets_[i + 1] = cell_offsets_[i] + counts[i];
  }
  cell_ids_.resize(points_.size());
  std::vector<std::size_t> cursor(cell_offsets_.begin(),
                                  cell_offsets_.end() - 1);
  for (NodeId id = 0; id < points_.size(); ++id) {
    cell_ids_[cursor[cell_index(points_[id])]++] = id;
  }
}

void SpatialGrid::relocate(std::span<const NodeId> ids,
                           std::span<const Vec2> new_positions) {
  auto cell_index = [&](Vec2 p) {
    return static_cast<size_t>(cell_row(p.y)) * static_cast<size_t>(cols_) +
           static_cast<size_t>(cell_col(p.x));
  };

  // Per moved point: the cell it leaves and the cell it joins. Points that
  // stay in their cell only need the coordinate update.
  std::vector<std::pair<std::size_t, NodeId>> leavers, joiners;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    NodeId id = ids[i];
    if (id >= points_.size()) continue;
    std::size_t from = cell_index(points_[id]);
    std::size_t to = cell_index(new_positions[i]);
    points_[id] = new_positions[i];
    if (from != to) {
      leavers.emplace_back(from, id);
      joiners.emplace_back(to, id);
    }
  }
  if (leavers.empty()) return;
  std::sort(leavers.begin(), leavers.end());
  std::sort(joiners.begin(), joiners.end());

  // One compaction pass over the cells: untouched cells block-copy, touched
  // cells merge (old ids minus leavers) with their sorted joiners. Both
  // inputs are ascending, so each cell stays sorted.
  const std::size_t cell_count =
      static_cast<size_t>(cols_) * static_cast<size_t>(rows_);
  std::vector<std::size_t> new_offsets(cell_count + 1, 0);
  std::vector<NodeId> new_ids(cell_ids_.size());
  std::size_t li = 0, ji = 0, write = 0;
  for (std::size_t c = 0; c < cell_count; ++c) {
    new_offsets[c] = write;
    std::span<const NodeId> old_ids{cell_ids_.data() + cell_offsets_[c],
                                    cell_offsets_[c + 1] - cell_offsets_[c]};
    bool touched = (li < leavers.size() && leavers[li].first == c) ||
                   (ji < joiners.size() && joiners[ji].first == c);
    if (!touched) {
      std::copy(old_ids.begin(), old_ids.end(), new_ids.begin() + write);
      write += old_ids.size();
      continue;
    }
    std::size_t oi = 0;
    while (oi < old_ids.size() || (ji < joiners.size() && joiners[ji].first == c)) {
      // Next survivor from the old list (skipping this cell's leavers).
      NodeId old_next = kInvalidNode;
      while (oi < old_ids.size()) {
        if (li < leavers.size() && leavers[li].first == c &&
            leavers[li].second == old_ids[oi]) {
          ++li;
          ++oi;
          continue;
        }
        old_next = old_ids[oi];
        break;
      }
      NodeId join_next = (ji < joiners.size() && joiners[ji].first == c)
                             ? joiners[ji].second
                             : kInvalidNode;
      if (old_next == kInvalidNode && join_next == kInvalidNode) break;
      if (join_next == kInvalidNode ||
          (old_next != kInvalidNode && old_next < join_next)) {
        new_ids[write++] = old_next;
        ++oi;
      } else {
        new_ids[write++] = join_next;
        ++ji;
      }
    }
    // Any leavers of this cell not consumed above (they sorted past the old
    // scan) have been skipped already; advance over stragglers defensively.
    while (li < leavers.size() && leavers[li].first == c) ++li;
  }
  new_offsets[cell_count] = write;
  cell_offsets_ = std::move(new_offsets);
  cell_ids_ = std::move(new_ids);
}

int SpatialGrid::cell_col(double x) const noexcept {
  int c = static_cast<int>((x - bounds_.lo().x) / cell_size_);
  return std::clamp(c, 0, cols_ - 1);
}

int SpatialGrid::cell_row(double y) const noexcept {
  int r = static_cast<int>((y - bounds_.lo().y) / cell_size_);
  return std::clamp(r, 0, rows_ - 1);
}

void SpatialGrid::query_radius(Vec2 center, double radius, NodeId exclude,
                               std::vector<NodeId>& out) const {
  int c0 = cell_col(center.x - radius), c1 = cell_col(center.x + radius);
  int r0 = cell_row(center.y - radius), r1 = cell_row(center.y + radius);
  double radius_sq = radius * radius;
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) {
      for (NodeId id : cell(c, r)) {
        if (id == exclude) continue;
        if (distance_sq(points_[id], center) <= radius_sq) out.push_back(id);
      }
    }
  }
}

void SpatialGrid::query_rect(const Rect& rect, std::vector<NodeId>& out) const {
  int c0 = cell_col(rect.lo().x), c1 = cell_col(rect.hi().x);
  int r0 = cell_row(rect.lo().y), r1 = cell_row(rect.hi().y);
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) {
      for (NodeId id : cell(c, r)) {
        if (rect.contains(points_[id])) out.push_back(id);
      }
    }
  }
}

}  // namespace spr
