#pragma once

/// \file metrics.h
/// Structural metrics of a deployed network, used by the benches' context
/// lines and by tests that sanity-check deployments (degree distribution,
/// hop diameter, connectivity fraction).

#include <cstddef>
#include <vector>

#include "graph/unit_disk.h"

namespace spr {

/// Degree distribution summary.
struct DegreeStats {
  double mean = 0.0;
  std::size_t min = 0;
  std::size_t max = 0;
  std::vector<std::size_t> histogram;  ///< histogram[k] = #nodes of degree k
};

DegreeStats degree_stats(const UnitDiskGraph& g);

/// Fraction of alive nodes in the largest connected component.
double largest_component_fraction(const UnitDiskGraph& g);

/// Exact hop diameter of the largest component (max BFS eccentricity).
/// O(n * (n + E)) — intended for analysis, not hot paths.
std::size_t hop_diameter(const UnitDiskGraph& g);

/// Approximate hop diameter by double-sweep BFS (lower bound, usually
/// tight); O(n + E).
std::size_t hop_diameter_estimate(const UnitDiskGraph& g);

/// Average hop count between random connected pairs, sampled.
double average_hop_distance(const UnitDiskGraph& g, std::size_t samples,
                            std::uint64_t seed);

}  // namespace spr
