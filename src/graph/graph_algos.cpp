#include "graph/graph_algos.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace spr {

std::vector<std::size_t> bfs_hops(const UnitDiskGraph& g, NodeId source) {
  constexpr auto kUnreached = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(g.size(), kUnreached);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

namespace {
ShortestPath reconstruct(const UnitDiskGraph& g,
                         const std::vector<NodeId>& parent, NodeId source,
                         NodeId target) {
  ShortestPath result;
  if (parent[target] == kInvalidNode && target != source) return result;
  for (NodeId v = target; v != source; v = parent[v]) result.path.push_back(v);
  result.path.push_back(source);
  std::reverse(result.path.begin(), result.path.end());
  for (std::size_t i = 1; i < result.path.size(); ++i) {
    result.length +=
        distance(g.position(result.path[i - 1]), g.position(result.path[i]));
  }
  return result;
}
}  // namespace

ShortestPath bfs_path(const UnitDiskGraph& g, NodeId source, NodeId target) {
  std::vector<NodeId> parent(g.size(), kInvalidNode);
  std::vector<bool> seen(g.size(), false);
  std::queue<NodeId> frontier;
  seen[source] = true;
  frontier.push(source);
  while (!frontier.empty() && !seen[target]) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : g.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        parent[v] = u;
        frontier.push(v);
      }
    }
  }
  if (!seen[target]) return {};
  return reconstruct(g, parent, source, target);
}

ShortestPath dijkstra_path(const UnitDiskGraph& g, NodeId source, NodeId target) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.size(), kInf);
  std::vector<NodeId> parent(g.size(), kInvalidNode);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == target) break;
    for (NodeId v : g.neighbors(u)) {
      double nd = d + distance(g.position(u), g.position(v));
      if (nd < dist[v]) {
        dist[v] = nd;
        parent[v] = u;
        heap.emplace(nd, v);
      }
    }
  }
  if (dist[target] == kInf) return {};
  return reconstruct(g, parent, source, target);
}

std::vector<int> connected_components(const UnitDiskGraph& g) {
  std::vector<int> label(g.size(), -1);
  int next = 0;
  std::queue<NodeId> frontier;
  for (NodeId s = 0; s < g.size(); ++s) {
    if (label[s] != -1) continue;
    label[s] = next;
    frontier.push(s);
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : g.neighbors(u)) {
        if (label[v] == -1) {
          label[v] = next;
          frontier.push(v);
        }
      }
    }
    ++next;
  }
  return label;
}

bool connected(const UnitDiskGraph& g, NodeId u, NodeId v) {
  if (u == v) return true;
  auto dist = bfs_hops(g, u);
  return dist[v] != std::numeric_limits<std::size_t>::max();
}

std::vector<NodeId> largest_component(const UnitDiskGraph& g) {
  auto label = connected_components(g);
  int max_label = 0;
  for (int l : label) max_label = std::max(max_label, l);
  std::vector<std::size_t> count(static_cast<size_t>(max_label) + 1, 0);
  for (NodeId u = 0; u < g.size(); ++u) {
    if (g.alive(u)) ++count[static_cast<size_t>(label[u])];
  }
  int best = static_cast<int>(
      std::max_element(count.begin(), count.end()) - count.begin());
  std::vector<NodeId> out;
  for (NodeId u = 0; u < g.size(); ++u) {
    if (label[u] == best && g.alive(u)) out.push_back(u);
  }
  return out;
}

}  // namespace spr
