#include "graph/graph_algos.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <queue>

#include "util/arena.h"

namespace spr {

namespace {
std::atomic<std::uint64_t> g_bfs_trees{0};
std::atomic<std::uint64_t> g_dijkstra_trees{0};
}  // namespace

OracleSearchCounts oracle_search_counts() noexcept {
  return {g_bfs_trees.load(std::memory_order_relaxed),
          g_dijkstra_trees.load(std::memory_order_relaxed)};
}

void reset_oracle_search_counts() noexcept {
  g_bfs_trees.store(0, std::memory_order_relaxed);
  g_dijkstra_trees.store(0, std::memory_order_relaxed);
}

std::vector<std::size_t> bfs_hops(const UnitDiskGraph& g, NodeId source) {
  constexpr auto kUnreached = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(g.size(), kUnreached);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

ShortestPathTree::ShortestPathTree(const UnitDiskGraph& g, NodeId source,
                                   Metric metric, NodeId stop_at)
    : g_(&g), source_(source), metric_(metric) {
  parent_.assign(g.size(), kInvalidNode);
  if (source >= g.size()) return;  // invalid source: everything unreachable
  if (stop_at >= g.size()) stop_at = kInvalidNode;  // out-of-range: full tree
  if (metric == Metric::kHops) {
    g_bfs_trees.fetch_add(1, std::memory_order_relaxed);
    std::vector<bool> seen(g.size(), false);
    std::queue<NodeId> frontier;
    seen[source] = true;
    frontier.push(source);
    while (!frontier.empty() &&
           (stop_at == kInvalidNode || !seen[stop_at])) {
      NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : g.neighbors(u)) {
        if (!seen[v]) {
          seen[v] = true;
          parent_[v] = u;
          frontier.push(v);
        }
      }
    }
  } else {
    g_dijkstra_trees.fetch_add(1, std::memory_order_relaxed);
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(g.size(), kInf);
    using Entry = std::pair<double, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    dist[source] = 0.0;
    heap.emplace(0.0, source);
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u]) continue;
      if (u == stop_at) break;
      for (NodeId v : g.neighbors(u)) {
        double nd = d + distance(g.position(u), g.position(v));
        if (nd < dist[v]) {
          dist[v] = nd;
          parent_[v] = u;
          heap.emplace(nd, v);
        }
      }
    }
  }
}

ShortestPath ShortestPathTree::extract(NodeId target) const {
  ShortestPath result;
  if (target >= parent_.size() || !reached(target)) return result;
  for (NodeId v = target; v != source_; v = parent_[v]) result.path.push_back(v);
  result.path.push_back(source_);
  std::reverse(result.path.begin(), result.path.end());
  for (std::size_t i = 1; i < result.path.size(); ++i) {
    result.length +=
        distance(g_->position(result.path[i - 1]), g_->position(result.path[i]));
  }
  return result;
}

namespace {

/// OracleBatch's grouping + search body, shared by the heap- and
/// arena-scratch constructors. Groups pair indices by source in CSR form
/// (counts -> offsets -> fill; first-appearance slot order, pair order
/// within a slot), then runs one BFS + one Dijkstra per distinct source.
/// All four scratch vectors are passed in empty with the desired allocator.
template <typename SizeVec, typename NodeVec>
std::size_t build_oracles(const UnitDiskGraph& g,
                          std::span<const std::pair<NodeId, NodeId>> pairs,
                          SizeVec slot_of, SizeVec count, SizeVec grouped,
                          NodeVec sources,
                          std::vector<ShortestPath>& hop_optimal,
                          std::vector<ShortestPath>& length_optimal,
                          OracleBatch::Metrics metrics) {
  bool want_length = metrics == OracleBatch::Metrics::kBoth;
  hop_optimal.resize(pairs.size());
  if (want_length) length_optimal.resize(pairs.size());

  slot_of.assign(g.size(), SIZE_MAX);
  std::size_t valid = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    NodeId s = pairs[i].first;
    if (s >= g.size()) continue;  // invalid source: optima stay empty
    if (slot_of[s] == SIZE_MAX) {
      slot_of[s] = sources.size();
      sources.push_back(s);
      count.push_back(0);
    }
    ++count[slot_of[s]];
    ++valid;
  }

  // `count` becomes the slot's cursor into `grouped`; the running prefix
  // sum in `begin` marks each slot's segment start.
  grouped.resize(valid);
  std::size_t begin = 0;
  for (std::size_t si = 0; si < count.size(); ++si) {
    std::size_t slot_count = count[si];
    count[si] = begin;
    begin += slot_count;
  }
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    NodeId s = pairs[i].first;
    if (s >= g.size()) continue;
    grouped[count[slot_of[s]]++] = i;
  }

  // One BFS + one Dijkstra per distinct source; the trees are transient —
  // only the per-pair extracted optima are kept (matching the memory
  // profile of the per-pair loop this replaces). A source with a single
  // destination keeps the per-pair early exit via stop_at, so the batch is
  // never more work than the loop it replaced.
  for (std::size_t si = 0; si < sources.size(); ++si) {
    std::size_t seg_begin = si == 0 ? 0 : count[si - 1];
    std::size_t seg_end = count[si];
    NodeId stop_at = seg_end - seg_begin == 1 ? pairs[grouped[seg_begin]].second
                                              : kInvalidNode;
    ShortestPathTree hop_tree(g, sources[si], ShortestPathTree::Metric::kHops,
                              stop_at);
    if (want_length) {
      ShortestPathTree len_tree(g, sources[si],
                                ShortestPathTree::Metric::kLength, stop_at);
      for (std::size_t gi = seg_begin; gi < seg_end; ++gi) {
        std::size_t i = grouped[gi];
        hop_optimal[i] = hop_tree.extract(pairs[i].second);
        length_optimal[i] = len_tree.extract(pairs[i].second);
      }
    } else {
      for (std::size_t gi = seg_begin; gi < seg_end; ++gi) {
        std::size_t i = grouped[gi];
        hop_optimal[i] = hop_tree.extract(pairs[i].second);
      }
    }
  }
  return sources.size();
}

}  // namespace

OracleBatch::OracleBatch(const UnitDiskGraph& g,
                         std::span<const std::pair<NodeId, NodeId>> pairs)
    : OracleBatch(g, pairs, nullptr) {}

OracleBatch::OracleBatch(const UnitDiskGraph& g,
                         std::span<const std::pair<NodeId, NodeId>> pairs,
                         Arena* scratch, Metrics metrics) {
  if (scratch == nullptr) {
    distinct_sources_ = build_oracles(g, pairs, std::vector<std::size_t>{},
                                      std::vector<std::size_t>{},
                                      std::vector<std::size_t>{},
                                      std::vector<NodeId>{}, hop_optimal_,
                                      length_optimal_, metrics);
    return;
  }
  ArenaAllocator<std::size_t> salloc(*scratch);
  ArenaAllocator<NodeId> nalloc(*scratch);
  distinct_sources_ = build_oracles(
      g, pairs, ArenaVector<std::size_t>(salloc),
      ArenaVector<std::size_t>(salloc), ArenaVector<std::size_t>(salloc),
      ArenaVector<NodeId>(nalloc), hop_optimal_, length_optimal_, metrics);
}

ShortestPath bfs_path(const UnitDiskGraph& g, NodeId source, NodeId target) {
  return ShortestPathTree(g, source, ShortestPathTree::Metric::kHops, target)
      .extract(target);
}

ShortestPath dijkstra_path(const UnitDiskGraph& g, NodeId source, NodeId target) {
  return ShortestPathTree(g, source, ShortestPathTree::Metric::kLength, target)
      .extract(target);
}

std::vector<int> connected_components(const UnitDiskGraph& g) {
  std::vector<int> label(g.size(), -1);
  int next = 0;
  std::queue<NodeId> frontier;
  for (NodeId s = 0; s < g.size(); ++s) {
    if (label[s] != -1) continue;
    label[s] = next;
    frontier.push(s);
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : g.neighbors(u)) {
        if (label[v] == -1) {
          label[v] = next;
          frontier.push(v);
        }
      }
    }
    ++next;
  }
  return label;
}

bool connected(const UnitDiskGraph& g, NodeId u, NodeId v) {
  if (u == v) return true;
  auto dist = bfs_hops(g, u);
  return dist[v] != std::numeric_limits<std::size_t>::max();
}

std::vector<NodeId> largest_component(const UnitDiskGraph& g) {
  auto label = connected_components(g);
  int max_label = 0;
  for (int l : label) max_label = std::max(max_label, l);
  std::vector<std::size_t> count(static_cast<size_t>(max_label) + 1, 0);
  for (NodeId u = 0; u < g.size(); ++u) {
    if (g.alive(u)) ++count[static_cast<size_t>(label[u])];
  }
  int best = static_cast<int>(
      std::max_element(count.begin(), count.end()) - count.begin());
  std::vector<NodeId> out;
  for (NodeId u = 0; u < g.size(); ++u) {
    if (label[u] == best && g.alive(u)) out.push_back(u);
  }
  return out;
}

}  // namespace spr
