#pragma once

/// \file quadrant_csr.h
/// Quadrant-bucketed neighbor CSR: the flat geometry-free substrate of the
/// safety-labeling kernel.
///
/// Definition 1's inner loops are all of the form "every neighbor of u
/// inside Q_t(u)" (the flip test) or "every neighbor w that sees u inside
/// Q_t(w)" (the flip fan-out). Both were scalar scans of the full neighbor
/// list with an `in_quadrant` position test per visit. This structure
/// groups each node's sorted neighbor list into four contiguous ranges per
/// direction once per topology epoch, so every inner loop becomes a
/// branch-light walk of a contiguous id range with zero geometry calls:
///
///  * `members(u, t)`   — neighbors v with zone_type(L(u), L(v)) == t,
///                        i.e. N(u) ∩ Q_t(u);
///  * `observers(u, t)` — neighbors w with zone_type(L(w), L(u)) == t,
///                        i.e. the w whose Q_t(w) contains u.
///
/// The two views are distinct buckets (not each other's opposites): the
/// half-open quadrant boundary convention means zone_type(v, u) is *not*
/// always opposite_zone(zone_type(u, v)) when the pair shares an axis.
///
/// Both views store ids ascending within each bucket (a stable split of the
/// already-sorted adjacency row), so walks are deterministic and identical
/// to a filtered scan of `UnitDiskGraph::neighbors`.
///
/// Rows pack back-to-back in node-id order exactly like the adjacency CSR,
/// so only the four per-row bucket *end* offsets need storing: a row starts
/// where the previous row ends. `patch` rebuilds only the rows whose
/// adjacency or endpoint positions changed and block-copies the rest,
/// which is how `UnitDiskGraph::with_failures`/`with_moves` carry the
/// structure across topology epochs without rebuilding it (bit-identical
/// to a fresh build; tests enforce equality).

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/quadrant.h"
#include "graph/node.h"

namespace spr {

class UnitDiskGraph;
class TaskPool;

class QuadrantZones {
 public:
  QuadrantZones() = default;

  /// Buckets every row of `g`. With a `pool` the per-row bucketing fans out
  /// (each row writes only its own block, so the result is bit-identical to
  /// a serial build).
  static QuadrantZones build(const UnitDiskGraph& g, TaskPool* pool = nullptr);

  /// Buckets `g` reusing `old_zones` built for `old_graph`: rows not marked
  /// `stale` block-copy from the old structure (their adjacency and both
  /// endpoints' positions are unchanged), stale rows re-bucket. The caller
  /// must mark every row whose neighbor list changed or whose own / whose
  /// neighbors' positions changed.
  static QuadrantZones patch(const UnitDiskGraph& g,
                             const UnitDiskGraph& old_graph,
                             const QuadrantZones& old_zones,
                             const std::vector<bool>& stale);

  /// N(u) ∩ Q_t(u), ascending ids.
  std::span<const NodeId> members(NodeId u, ZoneType t) const noexcept {
    const std::size_t i = static_cast<std::size_t>(u) * 4 +
                          static_cast<std::size_t>(zone_index(t));
    const std::uint32_t begin = i == 0 ? 0 : fwd_end_[i - 1];
    return {fwd_ids_.data() + begin, fwd_end_[i] - begin};
  }

  /// The neighbors w of u with u ∈ Q_t(w), ascending ids.
  std::span<const NodeId> observers(NodeId u, ZoneType t) const noexcept {
    const std::size_t i = static_cast<std::size_t>(u) * 4 +
                          static_cast<std::size_t>(zone_index(t));
    const std::uint32_t begin = i == 0 ? 0 : rev_end_[i - 1];
    return {rev_ids_.data() + begin, rev_end_[i] - begin};
  }

  std::size_t size() const noexcept { return fwd_end_.size() / 4; }
  bool empty() const noexcept { return fwd_end_.empty(); }

  bool operator==(const QuadrantZones&) const noexcept = default;

 private:
  void bucket_row(const UnitDiskGraph& g, NodeId u, std::uint32_t row_begin);

  std::vector<NodeId> fwd_ids_;           ///< |directed edges| member ids
  std::vector<NodeId> rev_ids_;           ///< |directed edges| observer ids
  std::vector<std::uint32_t> fwd_end_;    ///< 4n absolute bucket ends
  std::vector<std::uint32_t> rev_end_;    ///< 4n absolute bucket ends
};

}  // namespace spr
