#include "graph/planar.h"

#include <algorithm>
#include <queue>

#include "geometry/segment.h"

namespace spr {

bool gabriel_keeps_edge(const UnitDiskGraph& g, NodeId u, NodeId v) {
  Vec2 pu = g.position(u), pv = g.position(v);
  Vec2 m = midpoint(pu, pv);
  double radius_sq = distance_sq(pu, pv) * 0.25;
  // Witnesses must be common-range candidates; checking u's neighbors
  // suffices because any point in the diameter disc is within |uv| of u.
  for (NodeId w : g.neighbors(u)) {
    if (w == v) continue;
    if (distance_sq(g.position(w), m) < radius_sq - 1e-12) return false;
  }
  for (NodeId w : g.neighbors(v)) {
    if (w == u) continue;
    if (distance_sq(g.position(w), m) < radius_sq - 1e-12) return false;
  }
  return true;
}

bool rng_keeps_edge(const UnitDiskGraph& g, NodeId u, NodeId v) {
  Vec2 pu = g.position(u), pv = g.position(v);
  double d_uv = distance(pu, pv);
  for (NodeId w : g.neighbors(u)) {
    if (w == v) continue;
    Vec2 pw = g.position(w);
    if (std::max(distance(pu, pw), distance(pv, pw)) < d_uv - 1e-12) return false;
  }
  for (NodeId w : g.neighbors(v)) {
    if (w == u) continue;
    Vec2 pw = g.position(w);
    if (std::max(distance(pu, pw), distance(pv, pw)) < d_uv - 1e-12) return false;
  }
  return true;
}

PlanarOverlay::PlanarOverlay(const UnitDiskGraph& g, Kind kind) : kind_(kind) {
  const std::size_t n = g.size();
  std::vector<std::vector<NodeId>> kept(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (v < u) continue;  // test each undirected edge once
      bool keep = kind == Kind::kGabriel ? gabriel_keeps_edge(g, u, v)
                                         : rng_keeps_edge(g, u, v);
      if (keep) {
        kept[u].push_back(v);
        kept[v].push_back(u);
      }
    }
  }
  offsets_.assign(n + 1, 0);
  std::size_t total = 0;
  for (NodeId u = 0; u < n; ++u) {
    std::sort(kept[u].begin(), kept[u].end());
    offsets_[u] = total;
    total += kept[u].size();
  }
  offsets_[n] = total;
  adjacency_.reserve(total);
  for (NodeId u = 0; u < n; ++u) {
    adjacency_.insert(adjacency_.end(), kept[u].begin(), kept[u].end());
  }
}

bool PlanarOverlay::are_neighbors(NodeId u, NodeId v) const noexcept {
  auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

bool overlay_is_planar(const UnitDiskGraph& g, const PlanarOverlay& overlay) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < g.size(); ++u) {
    for (NodeId v : overlay.neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    Segment si{g.position(edges[i].first), g.position(edges[i].second)};
    for (std::size_t j = i + 1; j < edges.size(); ++j) {
      // Edges sharing an endpoint cannot cross properly; skip cheaply.
      if (edges[i].first == edges[j].first || edges[i].first == edges[j].second ||
          edges[i].second == edges[j].first || edges[i].second == edges[j].second) {
        continue;
      }
      Segment sj{g.position(edges[j].first), g.position(edges[j].second)};
      if (segments_cross_properly(si, sj)) return false;
    }
  }
  return true;
}

bool overlay_preserves_connectivity(const UnitDiskGraph& g,
                                    const PlanarOverlay& overlay) {
  const std::size_t n = g.size();
  // Union components of the overlay, then check every UDG edge joins nodes
  // in the same overlay component.
  std::vector<int> label(n, -1);
  int next = 0;
  std::queue<NodeId> frontier;
  for (NodeId s = 0; s < n; ++s) {
    if (label[s] != -1) continue;
    label[s] = next;
    frontier.push(s);
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : overlay.neighbors(u)) {
        if (label[v] == -1) {
          label[v] = next;
          frontier.push(v);
        }
      }
    }
    ++next;
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (label[u] != label[v]) return false;
    }
  }
  return true;
}

}  // namespace spr
