#include "sim/stream_sim.h"

#include <algorithm>
#include <numeric>

#include "graph/graph_algos.h"
#include "sim/event_queue.h"

namespace spr {

namespace {

StreamOutcome outcome_of(RouteStatus status) noexcept {
  switch (status) {
    case RouteStatus::kDelivered: return StreamOutcome::kDelivered;
    case RouteStatus::kTtlExpired: return StreamOutcome::kTtlExpired;
    case RouteStatus::kDeadEnd: return StreamOutcome::kDeadEnd;
  }
  return StreamOutcome::kDeadEnd;
}

WaypointConfig pin_field(WaypointConfig wc, const Rect& field) {
  wc.field = field;  // the waypoint process roams exactly the deployed field
  return wc;
}

constexpr std::size_t kNoOracle = static_cast<std::size_t>(-1);

}  // namespace

std::vector<StreamWave> spread_failure_waves(
    const UnitDiskGraph& g,
    std::span<const std::pair<NodeId, NodeId>> endpoints, double fraction,
    int waves, double span, Rng& rng) {
  std::vector<StreamWave> out;
  std::size_t total = static_cast<std::size_t>(
      std::max(0.0, fraction) * static_cast<double>(g.size()) + 0.5);
  if (total == 0 || waves <= 0) return out;
  std::vector<NodeId> candidates;
  candidates.reserve(g.size());
  for (NodeId u = 0; u < g.size(); ++u) {
    bool endpoint = false;
    for (const auto& [s, d] : endpoints) endpoint |= (u == s || u == d);
    if (!endpoint) candidates.push_back(u);
  }
  total = std::min(total, candidates.size());
  for (int w = 0; w < waves; ++w) {
    StreamWave wave;
    wave.time =
        span * static_cast<double>(w + 1) / static_cast<double>(waves + 1);
    std::size_t share =
        total / static_cast<std::size_t>(waves) +
        (static_cast<std::size_t>(w) < total % static_cast<std::size_t>(waves)
             ? 1
             : 0);
    for (std::size_t c = 0; c < share && !candidates.empty(); ++c) {
      std::size_t pick = rng.next_below(candidates.size());
      wave.casualties.push_back(candidates[pick]);
      candidates[pick] = candidates.back();
      candidates.pop_back();
    }
    out.push_back(std::move(wave));
  }
  return out;
}

/// One scheme's copy of one packet.
struct StreamSim::Flight {
  StreamOutcome outcome = StreamOutcome::kInFlight;
  std::unique_ptr<RouteStepper> stepper;  ///< null once finished
  std::size_t hops = 0;          ///< across re-planned segments
  double length = 0.0;           ///< across re-planned segments, meters
  std::size_t local_minima = 0;  ///< across re-planned segments
  std::size_t replans = 0;       ///< steppers rebuilt mid-flight
  double finish_time = 0.0;
};

/// One injected packet: shared endpoints + oracle, one Flight per scheme.
struct StreamSim::Packet {
  double inject_time = 0.0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::size_t oracle_hops = 0;  ///< BFS optimum at injection; 0 = unreachable
  bool injected = false;
  std::vector<Flight> flights;
};

StreamSim::StreamSim(Network initial, StreamConfig config)
    : net_(std::move(initial)),
      config_(std::move(config)),
      mobility_(net_.deployment().positions,
                pin_field(config_.waypoint, net_.deployment().field),
                Rng(config_.seed ^ 0x5712)) {
  if (config_.schemes.empty()) config_.schemes = SweepConfig::paper_schemes();
  if (config_.packets < 0) config_.packets = 0;
  // No endpoints means no traffic: clamp the packet count so the mobility
  // re-pin loop (which keeps firing while injections remain) terminates.
  if (config_.pairs.empty()) config_.packets = 0;
  // Force every structure the scheme set needs now, so the first failure
  // wave continues an already-built safety fixpoint incrementally instead
  // of triggering a from-scratch build mid-stream.
  unsigned needs = Network::kNeedsNone;
  for (const auto& spec : config_.schemes) {
    needs |= Network::needs_for(spec.scheme);
  }
  net_.force(needs);
  rebuild_routers();
  packets_.resize(static_cast<std::size_t>(config_.packets));
  for (std::size_t p = 0; p < packets_.size(); ++p) {
    Packet& packet = packets_[p];
    packet.flights.resize(config_.schemes.size());
    if (!config_.pairs.empty()) {
      const auto& pair = config_.pairs[p % config_.pairs.size()];
      packet.src = pair.first;
      packet.dst = pair.second;
    }
  }
}

StreamSim::~StreamSim() = default;

void StreamSim::rebuild_routers() {
  routers_.clear();
  routers_.reserve(config_.schemes.size());
  for (const auto& spec : config_.schemes) {
    routers_.push_back(net_.make_router(spec.scheme, spec.slgf2_options));
  }
}

void StreamSim::harvest(Flight& flight) {
  PathResult segment = flight.stepper->take_result();
  flight.hops += segment.hops();
  flight.length += segment.length;
  flight.local_minima += segment.local_minima;
}

void StreamSim::finalize(Flight& flight, StreamOutcome outcome, double now) {
  flight.stepper.reset();
  flight.outcome = outcome;
  flight.finish_time = now;
}

void StreamSim::replan_flights(double now, std::size_t* in_flight,
                               std::size_t* dropped) {
  for (auto& packet : packets_) {
    if (!packet.injected) continue;
    for (std::size_t k = 0; k < packet.flights.size(); ++k) {
      Flight& flight = packet.flights[k];
      if (flight.outcome != StreamOutcome::kInFlight ||
          flight.stepper == nullptr) {
        continue;
      }
      // The header state is gone with the old substrate; the packet
      // re-plans from wherever it is, with whatever TTL it has left.
      NodeId at = flight.stepper->current();
      std::size_t budget = flight.stepper->ttl_remaining();
      harvest(flight);
      if (!net_.graph().alive(at)) {
        if (dropped != nullptr) ++*dropped;
        finalize(flight, StreamOutcome::kNodeFailed, now);
        continue;
      }
      if (in_flight != nullptr) ++*in_flight;
      ++flight.replans;
      flight.stepper = routers_[k]->make_stepper(at, packet.dst,
                                                 config_.route_options, budget);
      if (!flight.stepper->in_flight()) {
        // Degenerate re-plan (already at the destination / spent budget).
        RouteStatus status = flight.stepper->result().status;
        harvest(flight);
        finalize(flight, outcome_of(status), now);
      }
      // The flight's pending hop event keeps firing and will step the new
      // stepper — no event surgery needed.
    }
  }
}

StreamStats StreamSim::run() {
  if (ran_) return stats_;
  ran_ = true;

  struct Ev {
    enum class Kind : unsigned char { kInject, kHop, kWave, kRepin };
    Kind kind = Kind::kInject;
    std::size_t index = 0;  ///< packet / flight / wave id (kind-dependent)
  };
  EventQueue<Ev> queue;
  SimClock clock;

  const std::size_t n_schemes = config_.schemes.size();
  stats_.schemes.resize(n_schemes);
  for (std::size_t k = 0; k < n_schemes; ++k) {
    stats_.schemes[k].label = config_.schemes[k].display_label();
  }

  // Flight ids are packet-major so one hop event addresses one copy.
  auto flight_id = [n_schemes](std::size_t p, std::size_t k) {
    return p * n_schemes + k;
  };

  // Schedule the whole input timeline up front: injections, then the
  // failure waves (in time order), then the first mobility re-pin.
  // Same-instant ties resolve deterministically by push order: an
  // injection due exactly at a wave's timestamp fires before it (pushed
  // here, earlier), while a hop event due at that instant fires after it
  // (hops are pushed mid-run, so they carry later sequence numbers) — the
  // packet steps its re-planned stepper on the degraded substrate.
  if (!config_.pairs.empty()) {
    oracle_cache_.assign(config_.pairs.size(), kNoOracle);
    for (std::size_t p = 0; p < packets_.size(); ++p) {
      queue.push(static_cast<double>(p) * config_.packet_interval,
                 Ev{Ev::Kind::kInject, p});
    }
  }
  std::vector<std::size_t> wave_order(config_.waves.size());
  std::iota(wave_order.begin(), wave_order.end(), std::size_t{0});
  std::stable_sort(wave_order.begin(), wave_order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return config_.waves[a].time < config_.waves[b].time;
                   });
  for (std::size_t wi : wave_order) {
    queue.push(config_.waves[wi].time, Ev{Ev::Kind::kWave, wi});
  }
  if (config_.mobility_interval > 0.0 && !packets_.empty()) {
    queue.push(config_.mobility_interval, Ev{Ev::Kind::kRepin, 0});
  }

  std::size_t injected_count = 0;
  auto any_in_flight = [this] {
    for (const auto& packet : packets_) {
      if (!packet.injected) continue;
      for (const auto& flight : packet.flights) {
        if (flight.outcome == StreamOutcome::kInFlight) return true;
      }
    }
    return false;
  };

  while (!queue.empty()) {
    auto timed = queue.pop();
    clock.advance_to(timed.time);
    const double now = clock.now();
    ++stats_.events;

    switch (timed.event.kind) {
      case Ev::Kind::kInject: {
        Packet& packet = packets_[timed.event.index];
        packet.injected = true;
        packet.inject_time = now;
        ++injected_count;
        // The hop-optimal baseline is pinned at injection time: stretch
        // measures what the scheme paid relative to the network the packet
        // was handed to, before any mid-flight wave degraded it. Packets
        // cycle over few pairs, so the BFS is cached per pair until the
        // next topology change.
        if (packet.src < net_.graph().size() &&
            packet.dst < net_.graph().size() &&
            net_.graph().alive(packet.src)) {
          std::size_t& cached =
              oracle_cache_[timed.event.index % config_.pairs.size()];
          if (cached == kNoOracle) {
            cached = bfs_path(net_.graph(), packet.src, packet.dst).hops();
          }
          packet.oracle_hops = cached;
        }
        for (std::size_t k = 0; k < n_schemes; ++k) {
          Flight& flight = packet.flights[k];
          if (packet.src >= net_.graph().size() ||
              !net_.graph().alive(packet.src)) {
            finalize(flight, StreamOutcome::kNodeFailed, now);
            continue;
          }
          flight.stepper = routers_[k]->make_stepper(packet.src, packet.dst,
                                                     config_.route_options);
          if (!flight.stepper->in_flight()) {
            RouteStatus status = flight.stepper->result().status;
            harvest(flight);
            finalize(flight, outcome_of(status), now);
            continue;
          }
          queue.push(now + config_.hop_delay,
                     Ev{Ev::Kind::kHop, flight_id(timed.event.index, k)});
        }
        break;
      }
      case Ev::Kind::kHop: {
        std::size_t p = timed.event.index / n_schemes;
        std::size_t k = timed.event.index % n_schemes;
        Flight& flight = packets_[p].flights[k];
        // Stale events for copies dropped by a wave just evaporate.
        if (flight.outcome != StreamOutcome::kInFlight ||
            flight.stepper == nullptr) {
          break;
        }
        if (flight.stepper->step()) {
          queue.push(now + config_.hop_delay,
                     Ev{Ev::Kind::kHop, timed.event.index});
        } else {
          RouteStatus status = flight.stepper->result().status;
          harvest(flight);
          finalize(flight, outcome_of(status), now);
        }
        break;
      }
      case Ev::Kind::kWave: {
        const StreamWave& wave = config_.waves[timed.event.index];
        std::vector<NodeId> casualties;
        casualties.reserve(wave.casualties.size());
        for (NodeId u : wave.casualties) {
          if (u < net_.graph().size() && net_.graph().alive(u)) {
            casualties.push_back(u);
          }
        }
        WaveRecord record;
        record.time = now;
        record.casualties = casualties.size();
        if (casualties.empty()) {
          // Nothing actually died (already dead / out of range / an empty
          // schedule slot): record the wave but leave the substrate and
          // every in-flight header untouched — a no-op wave must not
          // force phantom re-plans.
          stats_.waves.push_back(std::move(record));
          break;
        }
        routers_.clear();  // routers reference the outgoing substrate
        Network degraded = net_.with_failures(casualties, &record.relabel);
        if (config_.verify_relabeling && degraded.has_safety()) {
          SafetyInfo fresh =
              compute_safety(degraded.graph(), degraded.interest_area());
          record.verified = true;
          record.matches_full_recompute = fresh == degraded.safety();
        }
        net_ = std::move(degraded);
        std::fill(oracle_cache_.begin(), oracle_cache_.end(), kNoOracle);
        rebuild_routers();
        replan_flights(now, &record.packets_in_flight,
                       &record.packets_dropped);
        stats_.waves.push_back(std::move(record));
        break;
      }
      case Ev::Kind::kRepin: {
        // Positions changed: the snapshot *continues incrementally*
        // (Network::with_moves) — the spatial grid relocates, the
        // adjacency is patched from the edge delta, and the safety
        // labeling continues bidirectionally from the previous fixpoint
        // (update_safety_after_moves: removals demote, additions promote).
        // The paper's periodic reconstruction regime collapsed into a
        // local update wave. Nodes killed by earlier failure waves stay
        // dead (aliveness carries over) and the interest-area band
        // carries over.
        mobility_.advance(config_.mobility_dt);
        routers_.clear();
        RepinRecord record;
        record.time = now;
        EdgeDiff diff;
        Network moved =
            net_.with_moves(mobility_.positions(), &record.relabel, &diff);
        record.moved = diff.moved_nodes;
        record.edges_added = diff.added.size();
        record.edges_removed = diff.removed.size();
        if (config_.verify_relabeling && moved.has_safety()) {
          SafetyInfo fresh =
              compute_safety(moved.graph(), moved.interest_area());
          record.verified = true;
          record.matches_full_recompute = fresh == moved.safety();
        }
        net_ = std::move(moved);
        std::fill(oracle_cache_.begin(), oracle_cache_.end(), kNoOracle);
        rebuild_routers();
        replan_flights(now, &record.packets_in_flight,
                       &record.packets_dropped);
        ++stats_.repins;
        stats_.repin_records.push_back(std::move(record));
        if (injected_count < packets_.size() || any_in_flight()) {
          queue.push(now + config_.mobility_interval, Ev{Ev::Kind::kRepin, 0});
        }
        break;
      }
    }
  }

  stats_.virtual_time = clock.now();

  // Per-scheme totals, accumulated in packet order — a deterministic
  // reduction independent of how the event timeline interleaved.
  for (const auto& packet : packets_) {
    if (!packet.injected) continue;
    for (std::size_t k = 0; k < n_schemes; ++k) {
      const Flight& flight = packet.flights[k];
      StreamSchemeStats& s = stats_.schemes[k];
      ++s.injected;
      s.replans.add(static_cast<double>(flight.replans));
      s.local_minima.add(static_cast<double>(flight.local_minima));
      switch (flight.outcome) {
        case StreamOutcome::kDelivered:
          ++s.delivered;
          s.hops.add(static_cast<double>(flight.hops));
          s.length.add(flight.length);
          if (packet.oracle_hops > 0) {
            s.stretch_hops.add(static_cast<double>(flight.hops) /
                               static_cast<double>(packet.oracle_hops));
          }
          s.latency.add(flight.finish_time - packet.inject_time);
          break;
        case StreamOutcome::kTtlExpired:
          ++s.ttl_expired;
          break;
        case StreamOutcome::kNodeFailed:
          ++s.node_failed;
          break;
        case StreamOutcome::kDeadEnd:
        case StreamOutcome::kInFlight:  // unreachable: the queue drained
          ++s.dead_end;
          break;
      }
    }
  }
  return stats_;
}

}  // namespace spr
