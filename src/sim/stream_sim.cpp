#include "sim/stream_sim.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <optional>

#include "graph/graph_algos.h"
#include "sim/event_queue.h"
#include "sim/tick_scheduler.h"
#include "util/flat_map.h"
#include "util/task_pool.h"

namespace spr {

namespace {

StreamOutcome outcome_of(RouteStatus status) noexcept {
  switch (status) {
    case RouteStatus::kDelivered: return StreamOutcome::kDelivered;
    case RouteStatus::kTtlExpired: return StreamOutcome::kTtlExpired;
    case RouteStatus::kDeadEnd: return StreamOutcome::kDeadEnd;
  }
  return StreamOutcome::kDeadEnd;
}

WaypointConfig pin_field(WaypointConfig wc, const Rect& field) {
  wc.field = field;  // the waypoint process roams exactly the deployed field
  return wc;
}

constexpr std::size_t kNoOracle = static_cast<std::size_t>(-1);

}  // namespace

std::vector<StreamWave> spread_failure_waves(
    const UnitDiskGraph& g,
    std::span<const std::pair<NodeId, NodeId>> endpoints, double fraction,
    int waves, double span, Rng& rng) {
  std::vector<StreamWave> out;
  std::size_t total = static_cast<std::size_t>(
      std::max(0.0, fraction) * static_cast<double>(g.size()) + 0.5);
  if (total == 0 || waves <= 0) return out;
  std::vector<NodeId> candidates;
  candidates.reserve(g.size());
  for (NodeId u = 0; u < g.size(); ++u) {
    bool endpoint = false;
    for (const auto& [s, d] : endpoints) endpoint |= (u == s || u == d);
    if (!endpoint) candidates.push_back(u);
  }
  total = std::min(total, candidates.size());
  for (int w = 0; w < waves; ++w) {
    StreamWave wave;
    wave.time =
        span * static_cast<double>(w + 1) / static_cast<double>(waves + 1);
    std::size_t share =
        total / static_cast<std::size_t>(waves) +
        (static_cast<std::size_t>(w) < total % static_cast<std::size_t>(waves)
             ? 1
             : 0);
    for (std::size_t c = 0; c < share && !candidates.empty(); ++c) {
      std::size_t pick = rng.next_below(candidates.size());
      wave.casualties.push_back(candidates[pick]);
      candidates[pick] = candidates.back();
      candidates.pop_back();
    }
    out.push_back(std::move(wave));
  }
  return out;
}

/// One scheme's copy of one packet.
struct StreamSim::Flight {
  StreamOutcome outcome = StreamOutcome::kInFlight;
  std::unique_ptr<RouteStepper> stepper;  ///< null once finished
  std::size_t hops = 0;          ///< across re-planned segments
  double length = 0.0;           ///< across re-planned segments, meters
  std::size_t local_minima = 0;  ///< across re-planned segments
  std::size_t replans = 0;       ///< steppers rebuilt mid-flight
  double finish_time = 0.0;
};

/// One injected packet: shared endpoints + oracle, one Flight per scheme.
struct StreamSim::Packet {
  double inject_time = 0.0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::size_t oracle_hops = 0;  ///< BFS optimum at injection; 0 = unreachable
  bool injected = false;
  std::vector<Flight> flights;
};

/// The flight-record engine's state: Flight/Packet unrolled into parallel
/// arrays. Flight f = p * n_schemes + k is scheme k's copy of packet p, so
/// one tick-batch id addresses one copy and the final reduction walks the
/// arrays in exactly the legacy packet-major order. Stepper slots are
/// pooled: armed in place via Router::restart_stepper at injection and at
/// re-plans, released when the flight terminates — after the ramp-up the
/// steady state allocates nothing.
struct StreamSim::Records {
  // Per packet.
  std::vector<double> inject_time;
  std::vector<NodeId> src;
  std::vector<NodeId> dst;
  std::vector<std::size_t> oracle_hops;  ///< BFS optimum; 0 = unreachable
  std::vector<unsigned char> injected;
  // Per flight (packet-major).
  std::vector<StreamOutcome> outcome;
  std::vector<std::uint32_t> hops;          ///< across re-planned segments
  std::vector<std::uint32_t> local_minima;  ///< across re-planned segments
  std::vector<std::uint32_t> replans;
  std::vector<double> length;  ///< across re-planned segments, meters
  std::vector<double> finish_time;
  std::vector<RouteStepper> steppers;  ///< pooled slots, released when done
};

StreamSim::StreamSim(Network initial, StreamConfig config)
    : net_(std::move(initial)),
      config_(std::move(config)),
      mobility_(net_.deployment().positions,
                pin_field(config_.waypoint, net_.deployment().field),
                Rng(config_.seed ^ 0x5712)) {
  if (config_.schemes.empty()) config_.schemes = SweepConfig::paper_schemes();
  if (config_.packets < 0) config_.packets = 0;
  // No endpoints means no traffic: clamp the packet count so the mobility
  // re-pin loop (which keeps firing while injections remain) terminates.
  if (config_.pairs.empty()) config_.packets = 0;
  // Force every structure the scheme set needs now, so the first failure
  // wave continues an already-built safety fixpoint incrementally instead
  // of triggering a from-scratch build mid-stream.
  unsigned needs = Network::kNeedsNone;
  for (const auto& spec : config_.schemes) {
    needs |= Network::needs_for(spec.scheme);
  }
  net_.force(needs);
  rebuild_routers();
}

StreamSim::~StreamSim() = default;

void StreamSim::rebuild_routers() {
  routers_.clear();
  routers_.reserve(config_.schemes.size());
  for (const auto& spec : config_.schemes) {
    routers_.push_back(net_.make_router(spec.scheme, spec.slgf2_options));
  }
}

void StreamSim::harvest(Flight& flight) {
  PathResult segment = flight.stepper->take_result();
  flight.hops += segment.hops();
  flight.length += segment.length;
  flight.local_minima += segment.local_minima;
}

void StreamSim::finalize(Flight& flight, StreamOutcome outcome, double now) {
  flight.stepper.reset();
  flight.outcome = outcome;
  flight.finish_time = now;
}

void StreamSim::replan_flights(double now, std::size_t* in_flight,
                               std::size_t* dropped) {
  for (auto& packet : packets_) {
    if (!packet.injected) continue;
    for (std::size_t k = 0; k < packet.flights.size(); ++k) {
      Flight& flight = packet.flights[k];
      if (flight.outcome != StreamOutcome::kInFlight ||
          flight.stepper == nullptr) {
        continue;
      }
      // The header state is gone with the old substrate; the packet
      // re-plans from wherever it is, with whatever TTL it has left.
      NodeId at = flight.stepper->current();
      std::size_t budget = flight.stepper->ttl_remaining();
      harvest(flight);
      if (!net_.graph().alive(at)) {
        if (dropped != nullptr) ++*dropped;
        finalize(flight, StreamOutcome::kNodeFailed, now);
        --live_;
        continue;
      }
      if (in_flight != nullptr) ++*in_flight;
      ++flight.replans;
      flight.stepper = routers_[k]->make_stepper(at, packet.dst,
                                                 config_.route_options, budget);
      if (!flight.stepper->in_flight()) {
        // Degenerate re-plan (already at the destination / spent budget).
        RouteStatus status = flight.stepper->result().status;
        harvest(flight);
        finalize(flight, outcome_of(status), now);
        --live_;
      }
      // The flight's pending hop event keeps firing and will step the new
      // stepper — no event surgery needed.
    }
  }
}

void StreamSim::build_epoch_oracle() {
  oracle_ready_ = true;
  // Eligibility is exactly the legacy per-pair guard at injection time:
  // in-range endpoints and a live source. It depends only on the pair and
  // the substrate, so it is constant within a topology epoch.
  std::vector<std::pair<NodeId, NodeId>> eligible;
  std::vector<std::size_t> which;
  eligible.reserve(config_.pairs.size());
  which.reserve(config_.pairs.size());
  for (std::size_t i = 0; i < config_.pairs.size(); ++i) {
    const auto& [s, d] = config_.pairs[i];
    if (s < net_.graph().size() && d < net_.graph().size() &&
        net_.graph().alive(s)) {
      which.push_back(i);
      eligible.push_back({s, d});
    } else {
      oracle_cache_[i] = kNoOracle;
    }
  }
  // One BFS per distinct source for the whole epoch, instead of one
  // bfs_path per pair in the inject handler. Tree extraction is identical
  // to the per-pair search, so the cached hop counts are byte-for-byte
  // what the lazy fill produced.
  OracleBatch batch(net_.graph(), eligible, nullptr,
                    OracleBatch::Metrics::kHopsOnly);
  for (std::size_t j = 0; j < which.size(); ++j) {
    oracle_cache_[which[j]] = batch.hop_optimal(j).hops();
  }
}

StreamStats StreamSim::run() {
  if (ran_) return stats_;
  ran_ = true;
  stats_.schemes.resize(config_.schemes.size());
  for (std::size_t k = 0; k < config_.schemes.size(); ++k) {
    stats_.schemes[k].label = config_.schemes[k].display_label();
  }
  if (config_.engine == StreamEngine::kPerHopEvents) {
    run_per_hop();
  } else {
    run_flight_record();
  }
  return stats_;
}

void StreamSim::run_per_hop() {
  struct Ev {
    enum class Kind : unsigned char { kInject, kHop, kWave, kRepin };
    Kind kind = Kind::kInject;
    std::size_t index = 0;  ///< packet / flight / wave id (kind-dependent)
  };
  EventQueue<Ev> queue;
  SimClock clock;

  const std::size_t n_schemes = config_.schemes.size();
  packets_.resize(static_cast<std::size_t>(config_.packets));
  for (std::size_t p = 0; p < packets_.size(); ++p) {
    Packet& packet = packets_[p];
    packet.flights.resize(n_schemes);
    const auto& pair = config_.pairs[p % config_.pairs.size()];
    packet.src = pair.first;
    packet.dst = pair.second;
  }

  // Flight ids are packet-major so one hop event addresses one copy.
  auto flight_id = [n_schemes](std::size_t p, std::size_t k) {
    return p * n_schemes + k;
  };

  // Schedule the whole input timeline up front: injections, then the
  // failure waves (in time order), then the first mobility re-pin.
  // Same-instant ties resolve deterministically by push order: an
  // injection due exactly at a wave's timestamp fires before it (pushed
  // here, earlier), while a hop event due at that instant fires after it
  // (hops are pushed mid-run, so they carry later sequence numbers) — the
  // packet steps its re-planned stepper on the degraded substrate.
  if (!config_.pairs.empty()) {
    oracle_cache_.assign(config_.pairs.size(), kNoOracle);
    oracle_ready_ = false;
    for (std::size_t p = 0; p < packets_.size(); ++p) {
      queue.push(static_cast<double>(p) * config_.packet_interval,
                 Ev{Ev::Kind::kInject, p});
    }
  }
  std::vector<std::size_t> wave_order(config_.waves.size());
  std::iota(wave_order.begin(), wave_order.end(), std::size_t{0});
  std::stable_sort(wave_order.begin(), wave_order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return config_.waves[a].time < config_.waves[b].time;
                   });
  for (std::size_t wi : wave_order) {
    queue.push(config_.waves[wi].time, Ev{Ev::Kind::kWave, wi});
  }
  if (config_.mobility_interval > 0.0 && !packets_.empty()) {
    queue.push(config_.mobility_interval, Ev{Ev::Kind::kRepin, 0});
  }

  std::size_t injected_count = 0;
  live_ = 0;  // maintained at inject/finalize; replaces the O(packets x
              // schemes) any_in_flight rescan the repin loop used to do

  while (!queue.empty()) {
    auto timed = queue.pop();
    clock.advance_to(timed.time);
    const double now = clock.now();
    ++stats_.events;

    switch (timed.event.kind) {
      case Ev::Kind::kInject: {
        Packet& packet = packets_[timed.event.index];
        packet.injected = true;
        packet.inject_time = now;
        ++injected_count;
        // The hop-optimal baseline is pinned at injection time: stretch
        // measures what the scheme paid relative to the network the packet
        // was handed to, before any mid-flight wave degraded it. Packets
        // cycle over few pairs, so the whole epoch's oracles are batched
        // at the first injection after each topology change (one BFS per
        // distinct source).
        if (packet.src < net_.graph().size() &&
            packet.dst < net_.graph().size() &&
            net_.graph().alive(packet.src)) {
          if (!oracle_ready_) build_epoch_oracle();
          std::size_t cached =
              oracle_cache_[timed.event.index % config_.pairs.size()];
          packet.oracle_hops = cached == kNoOracle ? 0 : cached;
        }
        for (std::size_t k = 0; k < n_schemes; ++k) {
          Flight& flight = packet.flights[k];
          if (packet.src >= net_.graph().size() ||
              !net_.graph().alive(packet.src)) {
            finalize(flight, StreamOutcome::kNodeFailed, now);
            continue;
          }
          flight.stepper = routers_[k]->make_stepper(packet.src, packet.dst,
                                                     config_.route_options);
          if (!flight.stepper->in_flight()) {
            RouteStatus status = flight.stepper->result().status;
            harvest(flight);
            finalize(flight, outcome_of(status), now);
            continue;
          }
          queue.push(now + config_.hop_delay,
                     Ev{Ev::Kind::kHop, flight_id(timed.event.index, k)});
          ++live_;
        }
        break;
      }
      case Ev::Kind::kHop: {
        std::size_t p = timed.event.index / n_schemes;
        std::size_t k = timed.event.index % n_schemes;
        Flight& flight = packets_[p].flights[k];
        // Stale events for copies dropped by a wave just evaporate.
        if (flight.outcome != StreamOutcome::kInFlight ||
            flight.stepper == nullptr) {
          break;
        }
        if (flight.stepper->step()) {
          queue.push(now + config_.hop_delay,
                     Ev{Ev::Kind::kHop, timed.event.index});
        } else {
          RouteStatus status = flight.stepper->result().status;
          harvest(flight);
          finalize(flight, outcome_of(status), now);
          --live_;
        }
        break;
      }
      case Ev::Kind::kWave: {
        const StreamWave& wave = config_.waves[timed.event.index];
        std::vector<NodeId> casualties;
        casualties.reserve(wave.casualties.size());
        for (NodeId u : wave.casualties) {
          if (u < net_.graph().size() && net_.graph().alive(u)) {
            casualties.push_back(u);
          }
        }
        WaveRecord record;
        record.time = now;
        record.casualties = casualties.size();
        if (casualties.empty()) {
          // Nothing actually died (already dead / out of range / an empty
          // schedule slot): record the wave but leave the substrate and
          // every in-flight header untouched — a no-op wave must not
          // force phantom re-plans.
          stats_.waves.push_back(std::move(record));
          break;
        }
        routers_.clear();  // routers reference the outgoing substrate
        Network degraded = net_.with_failures(casualties, &record.relabel);
        if (config_.verify_relabeling && degraded.has_safety()) {
          SafetyInfo fresh =
              compute_safety(degraded.graph(), degraded.interest_area());
          record.verified = true;
          record.matches_full_recompute = fresh == degraded.safety();
        }
        net_ = std::move(degraded);
        std::fill(oracle_cache_.begin(), oracle_cache_.end(), kNoOracle);
        oracle_ready_ = false;
        rebuild_routers();
        replan_flights(now, &record.packets_in_flight,
                       &record.packets_dropped);
        stats_.waves.push_back(std::move(record));
        break;
      }
      case Ev::Kind::kRepin: {
        // Positions changed: the snapshot *continues incrementally*
        // (Network::with_moves) — the spatial grid relocates, the
        // adjacency is patched from the edge delta, and the safety
        // labeling continues bidirectionally from the previous fixpoint
        // (update_safety_after_moves: removals demote, additions promote).
        // The paper's periodic reconstruction regime collapsed into a
        // local update wave. Nodes killed by earlier failure waves stay
        // dead (aliveness carries over) and the interest-area band
        // carries over.
        mobility_.advance(config_.mobility_dt);
        routers_.clear();
        RepinRecord record;
        record.time = now;
        EdgeDiff diff;
        Network moved =
            net_.with_moves(mobility_.positions(), &record.relabel, &diff);
        record.moved = diff.moved_nodes;
        record.edges_added = diff.added.size();
        record.edges_removed = diff.removed.size();
        if (config_.verify_relabeling && moved.has_safety()) {
          SafetyInfo fresh =
              compute_safety(moved.graph(), moved.interest_area());
          record.verified = true;
          record.matches_full_recompute = fresh == moved.safety();
        }
        net_ = std::move(moved);
        std::fill(oracle_cache_.begin(), oracle_cache_.end(), kNoOracle);
        oracle_ready_ = false;
        rebuild_routers();
        replan_flights(now, &record.packets_in_flight,
                       &record.packets_dropped);
        ++stats_.repins;
        stats_.repin_records.push_back(std::move(record));
        if (injected_count < packets_.size() || live_ > 0) {
          queue.push(now + config_.mobility_interval, Ev{Ev::Kind::kRepin, 0});
        }
        break;
      }
    }
  }

  stats_.virtual_time = clock.now();

  // Per-scheme totals, accumulated in packet order — a deterministic
  // reduction independent of how the event timeline interleaved.
  for (const auto& packet : packets_) {
    if (!packet.injected) continue;
    for (std::size_t k = 0; k < n_schemes; ++k) {
      const Flight& flight = packet.flights[k];
      StreamSchemeStats& s = stats_.schemes[k];
      ++s.injected;
      s.replans.add(static_cast<double>(flight.replans));
      s.local_minima.add(static_cast<double>(flight.local_minima));
      switch (flight.outcome) {
        case StreamOutcome::kDelivered:
          ++s.delivered;
          s.hops.add(static_cast<double>(flight.hops));
          s.length.add(flight.length);
          if (packet.oracle_hops > 0) {
            s.stretch_hops.add(static_cast<double>(flight.hops) /
                               static_cast<double>(packet.oracle_hops));
          }
          s.latency.add(flight.finish_time - packet.inject_time);
          break;
        case StreamOutcome::kTtlExpired:
          ++s.ttl_expired;
          break;
        case StreamOutcome::kNodeFailed:
          ++s.node_failed;
          break;
        case StreamOutcome::kDeadEnd:
        case StreamOutcome::kInFlight:  // unreachable: the queue drained
          ++s.dead_end;
          break;
      }
    }
  }
}

void StreamSim::run_flight_record() {
  struct Ev {
    enum class Kind : unsigned char { kInject, kTick, kWave, kRepin };
    Kind kind = Kind::kInject;
    std::size_t index = 0;  ///< packet / tick-bucket slot / wave id
  };
  EventQueue<Ev> queue;
  SimClock clock;

  const std::size_t n_schemes = config_.schemes.size();
  const std::size_t n_packets = static_cast<std::size_t>(config_.packets);
  const std::size_t n_flights = n_packets * n_schemes;

  rec_ = std::make_unique<Records>();
  Records& rec = *rec_;
  rec.inject_time.assign(n_packets, 0.0);
  rec.src.assign(n_packets, kInvalidNode);
  rec.dst.assign(n_packets, kInvalidNode);
  rec.oracle_hops.assign(n_packets, 0);
  rec.injected.assign(n_packets, 0);
  rec.outcome.assign(n_flights, StreamOutcome::kInFlight);
  rec.hops.assign(n_flights, 0);
  rec.local_minima.assign(n_flights, 0);
  rec.replans.assign(n_flights, 0);
  rec.length.assign(n_flights, 0.0);
  rec.finish_time.assign(n_flights, 0.0);
  rec.steppers.resize(n_flights);
  for (std::size_t p = 0; p < n_packets; ++p) {
    const auto& pair = config_.pairs[p % config_.pairs.size()];
    rec.src[p] = pair.first;
    rec.dst[p] = pair.second;
  }

  // Stepping is read-only on the shared router/network structures: every
  // scheme's eager needs are forced in the constructor, and GF's lazy
  // recovery caches resolve atomically through Network's call_once
  // accessors, so each tick's batch can fan out across a pool without any
  // up-front priming; the merge below is serial and batch-ordered, so the
  // run is bit-identical across thread counts.
  std::optional<TaskPool> pool;
  if (config_.threads > 1) pool.emplace(config_.threads);

  // Flight records only reduce aggregates, so the steppers run with path
  // recording off (`hops_taken` replaces `result().hops()`): no per-walk
  // buffer growth, and a finished flight's slot shrinks to its header.
  auto harvest_record = [&rec](std::size_t f) {
    const RouteStepper& slot = rec.steppers[f];
    const PathResult& segment = slot.result();
    rec.hops[f] += static_cast<std::uint32_t>(slot.hops_taken());
    rec.length[f] += segment.length;
    rec.local_minima[f] += static_cast<std::uint32_t>(segment.local_minima);
  };
  auto finalize_record = [&rec](std::size_t f, StreamOutcome outcome,
                                double when) {
    rec.outcome[f] = outcome;
    rec.finish_time[f] = when;
    rec.steppers[f].release();  // header + buffers, like the legacy reset
  };

  // The tick ring: flights due at the same exact instant share one bucket
  // and one kTick heap event, pushed when the bucket is created — i.e. at
  // the same pop instant the legacy engine pushed that time's first hop
  // event, so tick-vs-control tie order inherits the legacy (time, seq)
  // semantics.
  TickBuckets ticks(256);
  auto schedule_flight = [&ticks, &queue](std::size_t f, double when) {
    TickBuckets::Scheduled scheduled =
        ticks.schedule(when, static_cast<std::uint32_t>(f));
    if (scheduled.created) {
      queue.push(when, Ev{Ev::Kind::kTick, scheduled.slot});
    }
  };

  // Re-plans on a new substrate, mirroring the legacy replan_flights over
  // the SoA records. Pending tick-batch entries keep firing and are
  // filtered as stale once a flight finalizes — no ring surgery.
  auto replan_records = [&](double when, std::size_t* in_flight,
                            std::size_t* dropped) {
    for (std::size_t p = 0; p < n_packets; ++p) {
      if (!rec.injected[p]) continue;
      for (std::size_t k = 0; k < n_schemes; ++k) {
        std::size_t f = p * n_schemes + k;
        if (rec.outcome[f] != StreamOutcome::kInFlight) continue;
        RouteStepper& slot = rec.steppers[f];
        NodeId at = slot.current();
        std::size_t budget = slot.ttl_remaining();
        harvest_record(f);
        if (!net_.graph().alive(at)) {
          ++*dropped;
          finalize_record(f, StreamOutcome::kNodeFailed, when);
          --live_;
          continue;
        }
        ++*in_flight;
        ++rec.replans[f];
        routers_[k]->restart_stepper(slot, at, rec.dst[p],
                                     config_.route_options, budget);
        slot.set_record_path(false);
        if (!slot.in_flight()) {
          // Degenerate re-plan (already at the destination / spent budget).
          RouteStatus status = slot.result().status;
          harvest_record(f);
          finalize_record(f, outcome_of(status), when);
          --live_;
        }
      }
    }
  };

  // The input timeline, scheduled up front exactly as in the legacy
  // engine: injections, failure waves in time order, the first re-pin.
  if (!config_.pairs.empty()) {
    oracle_cache_.assign(config_.pairs.size(), kNoOracle);
    oracle_ready_ = false;
    for (std::size_t p = 0; p < n_packets; ++p) {
      queue.push(static_cast<double>(p) * config_.packet_interval,
                 Ev{Ev::Kind::kInject, p});
    }
  }
  std::vector<std::size_t> wave_order(config_.waves.size());
  std::iota(wave_order.begin(), wave_order.end(), std::size_t{0});
  std::stable_sort(wave_order.begin(), wave_order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return config_.waves[a].time < config_.waves[b].time;
                   });
  for (std::size_t wi : wave_order) {
    queue.push(config_.waves[wi].time, Ev{Ev::Kind::kWave, wi});
  }
  if (config_.mobility_interval > 0.0 && n_packets > 0) {
    queue.push(config_.mobility_interval, Ev{Ev::Kind::kRepin, 0});
  }

  // Epoch barriers: the only events that can change what a flight observes
  // are the substrate mutations (waves and re-pins) — injections spawn new
  // flights but never touch active ones. Between one barrier and the next,
  // every flight's walk is a pure function of its own state, so a tick
  // batch may fast-forward each flight through ALL its hop instants
  // strictly before the barrier instead of one hop per tick. The instant
  // sequence accumulates iteratively (t = t + hop_delay), exactly as the
  // per-hop engine pushes hop events, so finish times stay bit-identical;
  // a hop instant that lands exactly on the barrier is not taken — the
  // survivor parks there and the barrier event (earlier seq, pushed at
  // setup / the previous re-pin) fires first, as in the legacy heap order.
  constexpr double kNoBarrier = std::numeric_limits<double>::infinity();
  std::vector<double> wave_times;
  wave_times.reserve(wave_order.size());
  for (std::size_t wi : wave_order) {
    wave_times.push_back(config_.waves[wi].time);
  }
  std::size_t wave_cursor = 0;
  double next_repin = config_.mobility_interval > 0.0 && n_packets > 0
                          ? config_.mobility_interval
                          : kNoBarrier;
  auto next_barrier = [&]() {
    double b = next_repin;
    if (wave_cursor < wave_times.size()) {
      b = std::min(b, wave_times[wave_cursor]);
    }
    return b;
  };

  // Walk memo: scheme copies with identical endpoints injected into the
  // same epoch take the same deterministic walk (restart_stepper is
  // bit-identical to a fresh stepper, property-tested per scheme), so the
  // first copy steps it and later copies replay the recorded aggregates —
  // traffic cycling over few pairs pays one routed walk per (scheme, pair)
  // per epoch instead of one per flight. Replay re-accumulates the hop
  // instants iteratively, so finish times and latencies stay bit-identical;
  // a walk that would cross the epoch barrier is not replayed (the copy
  // steps for real and parks, keeping its own header state). Cleared at
  // every substrate change alongside rebuild_routers().
  struct WalkMemo {
    RouteStatus status = RouteStatus::kDeadEnd;
    std::uint32_t hops = 0;
    std::uint32_t local_minima = 0;
    /// step() calls of the walk: hops, plus one for the terminal
    /// no-move call of a dead end — the count of hop instants occupied.
    std::uint32_t step_calls = 0;
    double length = 0.0;
  };
  FlatMap64<WalkMemo> walk_memo;
  const std::size_t n_nodes = net_.graph().size();
  // The injective (scheme, src, dst) -> u64 encoding needs
  // n_schemes * n_nodes^2 to fit; beyond that the memo just switches off.
  const bool memo_ok =
      n_nodes > 0 && n_schemes <= (~std::uint64_t{0} - 1) / n_nodes / n_nodes;
  auto memo_key = [n_nodes](std::size_t k, NodeId s, NodeId d) {
    return (static_cast<std::uint64_t>(k) * n_nodes + s) * n_nodes + d;
  };

  std::size_t injected_count = 0;
  live_ = 0;
  std::vector<std::uint32_t> active;  // this tick's surviving batch
  std::vector<double> finish_at;      // per-active final-step instant
  // The latest fast-forwarded terminal instant. The legacy engine's clock
  // ends on its last heap event — the slowest flight's terminal hop — but
  // fast-forwarded hops never become heap events, so that instant is
  // tracked here and folded into virtual_time after the drain.
  double final_instant = 0.0;

  while (!queue.empty()) {
    auto timed = queue.pop();
    clock.advance_to(timed.time);
    const double now = clock.now();
    ++stats_.events;

    switch (timed.event.kind) {
      case Ev::Kind::kInject: {
        const std::size_t p = timed.event.index;
        rec.injected[p] = 1;
        rec.inject_time[p] = now;
        ++injected_count;
        if (rec.src[p] < net_.graph().size() &&
            rec.dst[p] < net_.graph().size() &&
            net_.graph().alive(rec.src[p])) {
          if (!oracle_ready_) build_epoch_oracle();
          std::size_t cached = oracle_cache_[p % config_.pairs.size()];
          rec.oracle_hops[p] = cached == kNoOracle ? 0 : cached;
        }
        for (std::size_t k = 0; k < n_schemes; ++k) {
          std::size_t f = p * n_schemes + k;
          if (rec.src[p] >= net_.graph().size() ||
              !net_.graph().alive(rec.src[p])) {
            finalize_record(f, StreamOutcome::kNodeFailed, now);
            continue;
          }
          RouteStepper& slot = rec.steppers[f];
          const double barrier = next_barrier();
          const std::uint64_t key =
              memo_ok ? memo_key(k, rec.src[p], rec.dst[p]) : 0;
          if (memo_ok) {
            // A stored walk is always non-degenerate (it armed in flight),
            // and degeneracy depends only on (s, d, graph size), which the
            // memo's epoch holds fixed — so a hit can skip arming entirely.
            if (const WalkMemo* m = walk_memo.find(key)) {
              double t = now + config_.hop_delay;
              bool fits = t < barrier;
              for (std::uint32_t c = 1; fits && c < m->step_calls; ++c) {
                t += config_.hop_delay;
                fits = t < barrier;
              }
              if (fits) {  // the whole walk lands inside this epoch
                rec.hops[f] += m->hops;
                rec.length[f] += m->length;
                rec.local_minima[f] += m->local_minima;
                finalize_record(f, outcome_of(m->status), t);
                final_instant = std::max(final_instant, t);
                continue;
              }
              // Crosses the barrier: the flight must park with real header
              // state mid-walk, so it steps for real below.
            }
          }
          routers_[k]->restart_stepper(slot, rec.src[p], rec.dst[p],
                                       config_.route_options);
          slot.set_record_path(false);
          if (!slot.in_flight()) {
            RouteStatus status = slot.result().status;
            harvest_record(f);
            finalize_record(f, outcome_of(status), now);
            continue;
          }
          // Fast-forward the fresh flight through its epoch right here,
          // while its slot and header are cache-hot: injections are not
          // barriers, so every hop instant strictly before the next
          // barrier may execute now (the same instant walk as the kTick
          // loop below, starting at now + hop_delay). A flight that never
          // meets a barrier never enters the tick ring at all.
          double t = now + config_.hop_delay;
          for (;;) {
            if (!(t < barrier)) {  // parked; the tick ring takes over
              schedule_flight(f, t);
              ++live_;
              break;
            }
            if (!slot.step()) {  // terminal step executed at instant t
              RouteStatus status = slot.result().status;
              if (memo_ok) {
                WalkMemo& m = walk_memo.find_or_insert(key, WalkMemo{});
                m.status = status;
                m.hops = static_cast<std::uint32_t>(slot.hops_taken());
                m.local_minima =
                    static_cast<std::uint32_t>(slot.result().local_minima);
                // A dead end's terminal step() call moves nothing but
                // occupies one hop instant; delivery / TTL expiry happen on
                // a counted hop.
                m.step_calls =
                    m.hops + (status == RouteStatus::kDeadEnd ? 1u : 0u);
                m.length = slot.result().length;
              }
              harvest_record(f);
              finalize_record(f, outcome_of(status), t);
              final_instant = std::max(final_instant, t);
              break;
            }
            t += config_.hop_delay;
          }
        }
        break;
      }
      case Ev::Kind::kTick: {
        // One epoch round: every copy due at this instant advances through
        // every hop instant strictly before the next barrier (see above).
        // Stale ids (finalized by a wave/re-pin since they were scheduled)
        // evaporate, like the legacy engine's stale hop events.
        const std::vector<std::uint32_t>& batch =
            ticks.take(static_cast<std::uint32_t>(timed.event.index));
        active.clear();
        for (std::uint32_t f : batch) {
          if (rec.outcome[f] == StreamOutcome::kInFlight) active.push_back(f);
        }
        const double barrier = next_barrier();
        const double hop_delay = config_.hop_delay;
        finish_at.assign(active.size(), 0.0);
        // Every flight walks the same instant sequence t0 = now,
        // t_{j+1} = t_j + hop_delay, so each one that outlives the epoch
        // parks at the same first instant >= barrier and the whole batch
        // re-buckets together.
        auto advance_flight = [&rec, &finish_at, &active, now, barrier,
                               hop_delay](std::size_t i) {
          RouteStepper& slot = rec.steppers[active[i]];
          double t = now;
          while (slot.step()) {
            const double tn = t + hop_delay;
            if (!(tn < barrier)) return;  // parked; merge re-buckets it
            t = tn;
          }
          finish_at[i] = t;  // instant of the final (terminal) step
        };
        // Step phase: flights are independent between barriers — disjoint
        // per-flight state, read-only shared substrate. The grain scales
        // with the batch (a few blocks per worker) so a 10^5-flight tick
        // submits tens of tasks, not thousands; work stealing absorbs the
        // per-flight epoch-length imbalance.
        constexpr std::size_t kMinGrain = 32;
        if (pool.has_value() && active.size() >= 2 * kMinGrain) {
          const std::size_t grain =
              std::max(kMinGrain, active.size() / (pool->thread_count() * 4));
          parallel_for_blocked(&*pool, active.size(), grain,
                               [&advance_flight](std::size_t begin,
                                                 std::size_t end) {
                                 for (std::size_t i = begin; i < end; ++i) {
                                   advance_flight(i);
                                 }
                               });
        } else {
          for (std::size_t i = 0; i < active.size(); ++i) advance_flight(i);
        }
        // The shared park instant: first hop instant >= barrier, by the
        // same iterative accumulation as advance_flight. Only needed when a
        // survivor exists, which requires a finite barrier and a growing
        // instant sequence (hop_delay 0 steps flights to terminal at one
        // instant, as the legacy engine's same-time event chain does).
        double park = now + hop_delay;
        if (hop_delay > 0.0 && barrier != kNoBarrier) {
          while (park < barrier) park += hop_delay;
        }
        // Merge phase, serial in batch (= legacy pop) order: survivors
        // reschedule at the park instant, finished flights finalize at
        // their recorded terminal instants.
        for (std::size_t i = 0; i < active.size(); ++i) {
          const std::uint32_t f = active[i];
          RouteStepper& slot = rec.steppers[f];
          if (slot.in_flight()) {
            schedule_flight(f, park);
          } else {
            RouteStatus status = slot.result().status;
            harvest_record(f);
            finalize_record(f, outcome_of(status), finish_at[i]);
            final_instant = std::max(final_instant, finish_at[i]);
            --live_;
          }
        }
        break;
      }
      case Ev::Kind::kWave: {
        ++wave_cursor;  // this barrier has fired, whether or not it bites
        const StreamWave& wave = config_.waves[timed.event.index];
        std::vector<NodeId> casualties;
        casualties.reserve(wave.casualties.size());
        for (NodeId u : wave.casualties) {
          if (u < net_.graph().size() && net_.graph().alive(u)) {
            casualties.push_back(u);
          }
        }
        WaveRecord record;
        record.time = now;
        record.casualties = casualties.size();
        if (casualties.empty()) {
          // A no-op wave leaves the substrate and every in-flight header
          // untouched (see run_per_hop).
          stats_.waves.push_back(std::move(record));
          break;
        }
        routers_.clear();  // routers reference the outgoing substrate
        Network degraded = net_.with_failures(casualties, &record.relabel);
        if (config_.verify_relabeling && degraded.has_safety()) {
          SafetyInfo fresh =
              compute_safety(degraded.graph(), degraded.interest_area());
          record.verified = true;
          record.matches_full_recompute = fresh == degraded.safety();
        }
        net_ = std::move(degraded);
        std::fill(oracle_cache_.begin(), oracle_cache_.end(), kNoOracle);
        oracle_ready_ = false;
        rebuild_routers();
        walk_memo.clear();  // memoized walks referenced the old substrate
        replan_records(now, &record.packets_in_flight,
                       &record.packets_dropped);
        stats_.waves.push_back(std::move(record));
        break;
      }
      case Ev::Kind::kRepin: {
        // Incremental substrate continuation under mobility — identical to
        // run_per_hop's handler (see the comment there).
        mobility_.advance(config_.mobility_dt);
        routers_.clear();
        RepinRecord record;
        record.time = now;
        EdgeDiff diff;
        Network moved =
            net_.with_moves(mobility_.positions(), &record.relabel, &diff);
        record.moved = diff.moved_nodes;
        record.edges_added = diff.added.size();
        record.edges_removed = diff.removed.size();
        if (config_.verify_relabeling && moved.has_safety()) {
          SafetyInfo fresh =
              compute_safety(moved.graph(), moved.interest_area());
          record.verified = true;
          record.matches_full_recompute = fresh == moved.safety();
        }
        net_ = std::move(moved);
        std::fill(oracle_cache_.begin(), oracle_cache_.end(), kNoOracle);
        oracle_ready_ = false;
        rebuild_routers();
        walk_memo.clear();  // memoized walks referenced the old substrate
        replan_records(now, &record.packets_in_flight,
                       &record.packets_dropped);
        ++stats_.repins;
        stats_.repin_records.push_back(std::move(record));
        if (injected_count < n_packets || live_ > 0) {
          next_repin = now + config_.mobility_interval;
          queue.push(next_repin, Ev{Ev::Kind::kRepin, 0});
        } else {
          next_repin = kNoBarrier;
        }
        break;
      }
    }
  }

  stats_.virtual_time = std::max(clock.now(), final_instant);

  // Per-scheme totals in packet-major order — the same deterministic
  // reduction as run_per_hop, over the SoA arrays.
  for (std::size_t p = 0; p < n_packets; ++p) {
    if (!rec.injected[p]) continue;
    for (std::size_t k = 0; k < n_schemes; ++k) {
      std::size_t f = p * n_schemes + k;
      StreamSchemeStats& s = stats_.schemes[k];
      ++s.injected;
      s.replans.add(static_cast<double>(rec.replans[f]));
      s.local_minima.add(static_cast<double>(rec.local_minima[f]));
      switch (rec.outcome[f]) {
        case StreamOutcome::kDelivered:
          ++s.delivered;
          s.hops.add(static_cast<double>(rec.hops[f]));
          s.length.add(rec.length[f]);
          if (rec.oracle_hops[p] > 0) {
            s.stretch_hops.add(static_cast<double>(rec.hops[f]) /
                               static_cast<double>(rec.oracle_hops[p]));
          }
          s.latency.add(rec.finish_time[f] - rec.inject_time[p]);
          break;
        case StreamOutcome::kTtlExpired:
          ++s.ttl_expired;
          break;
        case StreamOutcome::kNodeFailed:
          ++s.node_failed;
          break;
        case StreamOutcome::kDeadEnd:
        case StreamOutcome::kInFlight:  // unreachable: the queue drained
          ++s.dead_end;
          break;
      }
    }
  }
}

}  // namespace spr
