#include "sim/engine.h"

namespace spr {

std::string EngineStats::to_string() const {
  return "rounds=" + std::to_string(rounds) + " " + counters_string();
}

}  // namespace spr
