#include "sim/engine.h"

#include <sstream>

namespace spr {

std::string EngineStats::to_string() const {
  std::ostringstream out;
  out << "rounds=" << rounds << " broadcasts=" << broadcasts
      << " receptions=" << message_receptions;
  return out.str();
}

}  // namespace spr
