#pragma once

/// \file tick_scheduler.h
/// TickBuckets: the bucketed tick scheduler behind StreamSim's flight-record
/// engine. When every in-flight copy advances on the same `hop_delay`, the
/// per-hop heap events of a discrete-event queue are pure overhead: at 10^5
/// concurrent flights a run performs hundreds of millions of
/// `push_heap`/`pop_heap` operations whose pop order carries no information
/// (flights are independent between topology events). TickBuckets collapses
/// them: all flights due at the same *exact* double timestamp share one
/// bucket, and the owning EventQueue carries a single tick event per bucket
/// — so the heap holds sparse control events (injections, failure waves,
/// mobility re-pins) plus one entry per distinct tick time, not one per
/// flight-hop.
///
/// Equivalence contract (property-tested against a per-item EventQueue in
/// tests/sim_tick_scheduler_test.cpp): scheduling item i at time t and
/// draining tick events through `take` advances exactly the items a
/// per-item heap would advance at t, in schedule order within the instant.
/// Times are keyed on their exact bit pattern — two flights share a bucket
/// iff their per-hop accumulation chains produced bit-equal doubles, which
/// is precisely when the reference heap would pop them at an equal `time`.
/// Heap tie order relative to control events is preserved by construction:
/// the tick event for a bucket is pushed when the bucket is *created*,
/// i.e. at the same pop instant the first per-hop event for that time
/// would have been pushed, so it carries an equivalent FIFO sequence
/// number in the shared EventQueue.
///
/// Buckets and their id vectors are recycled through a free list: after the
/// initial ramp-up the scheduler performs zero steady-state allocation.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/flat_map.h"

namespace spr {

class TickBuckets {
 public:
  /// Result of `schedule`: when `created` is set the caller must push one
  /// tick event for this time into its event queue, carrying `slot`.
  struct Scheduled {
    bool created = false;
    std::uint32_t slot = 0;
  };

  /// Pre-sizes the time index for about `expected` live buckets.
  explicit TickBuckets(std::size_t expected = 0) : index_(expected) {}

  /// Adds `id` to the batch due at exactly `when` (bit-pattern keyed).
  /// Creates the bucket when no live one exists for that time — including
  /// when an earlier bucket at the same timestamp was already taken, which
  /// mirrors the reference heap (a zero-delay reschedule lands behind the
  /// current instant in FIFO order, not inside it).
  Scheduled schedule(double when, std::uint32_t id) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(when);
    std::uint32_t& slot = index_.find_or_insert(bits, kNoBucket);
    // The index is never erased from, so `slot` can be stale: the bucket it
    // named may have been taken and recycled for a different time. A bucket
    // is joinable only if it still owns these exact time bits and has not
    // fired yet.
    if (slot != kNoBucket && buckets_[slot].time_bits == bits &&
        !buckets_[slot].taken) {
      buckets_[slot].ids.push_back(id);
      return {false, slot};
    }
    if (free_.empty()) {
      slot = static_cast<std::uint32_t>(buckets_.size());
      buckets_.emplace_back();
    } else {
      slot = free_.back();
      free_.pop_back();
      buckets_[slot].taken = false;
    }
    buckets_[slot].time_bits = bits;
    buckets_[slot].ids.push_back(id);
    return {true, slot};
  }

  /// The batch for a fired tick event, in schedule order. The returned
  /// vector stays valid until the next `take`; the bucket is recycled
  /// immediately, so scheduling into the same timestamp afterwards starts
  /// a fresh bucket.
  std::vector<std::uint32_t>& take(std::uint32_t slot) {
    SPR_CHECK(slot < buckets_.size() && !buckets_[slot].taken,
              "TickBuckets::take: slot ", slot, " not live");
    Bucket& bucket = buckets_[slot];
    current_.clear();
    current_.swap(bucket.ids);  // old current_ capacity recycles into the slot
    bucket.taken = true;
    free_.push_back(slot);
    // Quiescence compaction: with no live bucket left, stale index entries
    // serve nothing — drop them so long runs with drain gaps stay small.
    if (free_.size() == buckets_.size()) index_.clear();
    return current_;
  }

  /// Ids scheduled and not yet taken (live flights on the ring).
  std::size_t pending() const noexcept {
    std::size_t n = 0;
    for (const Bucket& bucket : buckets_) {
      if (!bucket.taken) n += bucket.ids.size();
    }
    return n;
  }

  /// Live (not yet taken) buckets.
  std::size_t live_buckets() const noexcept {
    return buckets_.size() - free_.size();
  }

 private:
  static constexpr std::uint32_t kNoBucket = ~std::uint32_t{0};

  struct Bucket {
    std::vector<std::uint32_t> ids;
    std::uint64_t time_bits = 0;  ///< exact time this bucket currently owns
    bool taken = false;
  };

  FlatMap64<std::uint32_t> index_;  ///< exact time bits -> bucket slot
  std::vector<Bucket> buckets_;
  std::vector<std::uint32_t> free_;
  std::vector<std::uint32_t> current_;  ///< last taken batch
};

}  // namespace spr
