#pragma once

/// \file async_engine.h
/// Event-driven asynchronous message-passing engine. The paper presents its
/// protocols in a synchronous round model "to simplify the discussion" and
/// notes they extend to asynchronous systems; this engine provides that
/// setting: every broadcast is delivered per-link after an independent
/// random delay, and nodes are activated per message, in delivery order.
///
/// Used to validate that the safety-information construction converges to
/// the same fixpoint without round synchronization (tests) and by the
/// failure-dynamics example.

#include <cstddef>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <string>
#include <vector>

#include "deploy/rng.h"
#include "graph/unit_disk.h"

namespace spr {

/// Totals reported by an asynchronous run.
struct AsyncEngineStats {
  std::size_t activations = 0;   ///< process invocations
  std::size_t broadcasts = 0;    ///< broadcast operations
  std::size_t receptions = 0;    ///< per-link deliveries
  double virtual_time = 0.0;     ///< timestamp of the last event

  std::string to_string() const;
};

/// Asynchronous engine carrying payloads of type `Payload`.
template <typename Payload>
class AsyncEngine {
 public:
  struct Incoming {
    NodeId sender;
    Payload payload;
  };

  /// Node behaviour: invoked once at time 0 with no message (inbox empty)
  /// and once per delivered message afterwards. Returning a payload
  /// broadcasts it to all neighbors, each with an independent delay drawn
  /// uniformly from [min_delay, max_delay).
  ///
  /// Links are FIFO: two messages sent over the same (sender, receiver)
  /// link are delivered in send order (a later send is scheduled no earlier
  /// than the link's previously scheduled delivery). Without this, a stale
  /// state broadcast could overwrite a newer one in a receiver's cache and
  /// protocols relying on last-writer-wins caches would not converge.
  using Process = std::function<std::optional<Payload>(
      NodeId self, double now, std::optional<Incoming> message)>;

  AsyncEngine(const UnitDiskGraph& graph, Rng& rng, double min_delay = 0.5,
              double max_delay = 1.5)
      : graph_(graph), rng_(rng), min_delay_(min_delay), max_delay_(max_delay) {}

  /// Runs until the event queue drains or `max_events` deliveries.
  AsyncEngineStats run(const Process& process, std::size_t max_events) {
    AsyncEngineStats stats;
    // Min-heap on delivery time; sequence number breaks ties FIFO so runs
    // are deterministic for a given Rng.
    struct Event {
      double time;
      std::uint64_t seq;
      NodeId target;
      Incoming message;
    };
    auto later = [](const Event& a, const Event& b) {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    };
    std::priority_queue<Event, std::vector<Event>, decltype(later)> queue(later);
    std::uint64_t seq = 0;

    // FIFO enforcement: last scheduled delivery time per directed link.
    std::unordered_map<std::uint64_t, double> link_clock;
    auto link_key = [n = graph_.size()](NodeId from, NodeId to) {
      return static_cast<std::uint64_t>(from) * n + to;
    };

    auto broadcast = [&](NodeId from, double now, const Payload& payload) {
      ++stats.broadcasts;
      for (NodeId v : graph_.neighbors(from)) {
        double delay = rng_.uniform(min_delay_, max_delay_);
        double& clock = link_clock[link_key(from, v)];
        double when = std::max(now + delay, clock + 1e-9);
        clock = when;
        queue.push(Event{when, seq++, v, Incoming{from, payload}});
      }
    };

    // Initial activation of every alive node at time 0.
    for (NodeId u = 0; u < graph_.size(); ++u) {
      if (!graph_.alive(u)) continue;
      ++stats.activations;
      if (auto out = process(u, 0.0, std::nullopt)) broadcast(u, 0.0, *out);
    }

    std::size_t events = 0;
    while (!queue.empty() && events++ < max_events) {
      Event event = queue.top();
      queue.pop();
      ++stats.receptions;
      stats.virtual_time = event.time;
      if (!graph_.alive(event.target)) continue;
      ++stats.activations;
      if (auto out = process(event.target, event.time, event.message)) {
        broadcast(event.target, event.time, *out);
      }
    }
    return stats;
  }

 private:
  const UnitDiskGraph& graph_;
  Rng& rng_;
  double min_delay_;
  double max_delay_;
};

}  // namespace spr
