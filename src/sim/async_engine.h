#pragma once

/// \file async_engine.h
/// Event-driven asynchronous message-passing engine. The paper presents its
/// protocols in a synchronous round model "to simplify the discussion" and
/// notes they extend to asynchronous systems; this engine provides that
/// setting: every broadcast is delivered per-link after an independent
/// random delay, and nodes are activated per message, in delivery order.
///
/// The event queue, virtual clock and FIFO-link delay model live in the
/// shared discrete-event core (sim/event_queue.h); this engine is a thin
/// protocol driver over them. Used to validate that the safety-information
/// construction converges to the same fixpoint without round
/// synchronization (tests) and by the failure-dynamics example.

#include <cstddef>
#include <functional>
#include <optional>
#include <string>

#include "deploy/rng.h"
#include "graph/unit_disk.h"
#include "sim/event_queue.h"

namespace spr {

/// Totals reported by an asynchronous run. Broadcast/reception counters
/// live in the shared SimStats base.
struct AsyncEngineStats : SimStats {
  std::size_t activations = 0;  ///< process invocations
  double virtual_time = 0.0;    ///< timestamp of the last event

  std::string to_string() const;
};

/// Asynchronous engine carrying payloads of type `Payload`.
template <typename Payload>
class AsyncEngine {
 public:
  struct Incoming {
    NodeId sender;
    Payload payload;
  };

  /// Node behaviour: invoked once at time 0 with no message (inbox empty)
  /// and once per delivered message afterwards. Returning a payload
  /// broadcasts it to all neighbors, each with an independent delay drawn
  /// uniformly from [min_delay, max_delay); links are FIFO (see
  /// FifoLinkDelays).
  using Process = std::function<std::optional<Payload>(
      NodeId self, double now, std::optional<Incoming> message)>;

  AsyncEngine(const UnitDiskGraph& graph, Rng& rng, double min_delay = 0.5,
              double max_delay = 1.5)
      : graph_(graph), rng_(rng), min_delay_(min_delay), max_delay_(max_delay) {}

  /// Runs until the event queue drains or `max_events` deliveries.
  AsyncEngineStats run(const Process& process, std::size_t max_events) {
    struct Delivery {
      NodeId target;
      Incoming message;
    };
    AsyncEngineStats stats;
    EventQueue<Delivery> queue;
    SimClock clock;
    FifoLinkDelays links(graph_.size(), min_delay_, max_delay_);

    auto broadcast = [&](NodeId from, double now, const Payload& payload) {
      ++stats.broadcasts;
      for (NodeId v : graph_.neighbors(from)) {
        queue.push(links.schedule(from, v, now, rng_),
                   Delivery{v, Incoming{from, payload}});
      }
    };

    // Initial activation of every alive node at time 0.
    for (NodeId u = 0; u < graph_.size(); ++u) {
      if (!graph_.alive(u)) continue;
      ++stats.activations;
      if (auto out = process(u, 0.0, std::nullopt)) broadcast(u, 0.0, *out);
    }

    std::size_t events = 0;
    while (!queue.empty() && events++ < max_events) {
      auto timed = queue.pop();
      ++stats.receptions;
      clock.advance_to(timed.time);
      stats.virtual_time = clock.now();
      if (!graph_.alive(timed.event.target)) continue;
      ++stats.activations;
      if (auto out = process(timed.event.target, timed.time,
                             timed.event.message)) {
        broadcast(timed.event.target, timed.time, *out);
      }
    }
    return stats;
  }

 private:
  const UnitDiskGraph& graph_;
  Rng& rng_;
  double min_delay_;
  double max_delay_;
};

}  // namespace spr
